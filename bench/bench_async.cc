// EXP-13 (extension; Gillet-Hanusse direction): asynchronous execution.
//
// The compact elimination under adversarial message delays: correctness
// is delay-independent (monotone chaotic iteration), so the table reports
// what asynchrony actually costs — messages and virtual makespan — next
// to the synchronous run-to-convergence (Montresor) totals.
#include <cstdio>

#include "core/async.h"
#include "core/montresor.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/rng.h"
#include "util/table.h"

using kcore::graph::NodeId;

int main() {
  std::printf(
      "EXP-13: asynchronous compact elimination vs synchronous "
      "run-to-convergence\n\n");
  kcore::util::Table t({"graph", "n", "max delay", "async msgs",
                        "sync msgs", "async/sync", "virtual makespan",
                        "exact?"});
  kcore::util::Rng grng(61);
  struct Case {
    const char* name;
    kcore::graph::Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"ba-2000", kcore::graph::BarabasiAlbert(2000, 3, grng)});
  cases.push_back({"er-2000",
                   kcore::graph::ErdosRenyiGnp(2000, 8.0 / 2000, grng)});
  cases.push_back({"cycle-2000", kcore::graph::Cycle(2000)});
  for (const Case& c : cases) {
    const auto exact = kcore::seq::WeightedCoreness(c.g);
    const auto sync = kcore::core::RunToConvergence(c.g);
    for (double delay : {1.0, 8.0, 64.0}) {
      kcore::util::Rng rng(71);
      const auto r = kcore::core::RunAsyncCoreness(c.g, rng, delay);
      bool ok = true;
      for (NodeId v = 0; v < c.g.num_nodes(); ++v) {
        if (std::abs(r.b[v] - exact[v]) > 1e-9) ok = false;
      }
      t.Row()
          .Str(c.name)
          .UInt(c.g.num_nodes())
          .Dbl(delay, 0)
          .UInt(r.stats.messages_delivered)
          .UInt(sync.totals.messages)
          .Dbl(static_cast<double>(r.stats.messages_delivered) /
                   static_cast<double>(sync.totals.messages),
               3)
          .Dbl(r.stats.virtual_makespan, 1)
          .Str(ok ? "yes" : "NO");
    }
  }
  t.Print();
  std::printf(
      "\nShape check: 'exact?' is yes for every delay (correctness is "
      "schedule-independent); async messages are far below the broadcast-"
      "every-round synchronous total because nodes only speak on change.\n");
  return 0;
}
