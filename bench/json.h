// Minimal JSON emitter for committed bench result files (BENCH_*.json).
//
// A JsonDoc is one bench run: a top-level object with the bench name and
// a "rows" array of flat objects. The writer emits one row per line so a
// re-run produces a clean, line-oriented git diff — the committed file's
// history IS the perf trajectory (see ROADMAP.md item 2). No parsing, no
// nesting: benches only ever append flat rows.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace kcore::bench {

class JsonRow {
 public:
  JsonRow& Str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escape(value) + "\"");
    return *this;
  }
  JsonRow& Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRow& Int(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  std::string Render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + Escape(fields_[i].first) + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

class JsonDoc {
 public:
  explicit JsonDoc(std::string bench_name) : name_(std::move(bench_name)) {}

  JsonRow& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string Render() const {
    std::string out = "{\"bench\": \"" + name_ + "\", \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += "  " + rows_[i].Render();
      if (i + 1 < rows_.size()) out += ",";
      out += "\n";
    }
    out += "]}\n";
    return out;
  }

  // Overwrites `path` with the full document. False on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = Render();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  std::string name_;
  std::vector<JsonRow> rows_;
};

}  // namespace kcore::bench
