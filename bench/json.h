// Minimal JSON emitter for committed bench result files (BENCH_*.json).
//
// A JsonDoc is one bench run: a top-level object with the bench name and
// a "rows" array of flat objects. The writer emits one row per line so a
// re-run produces a clean, line-oriented git diff — the committed file's
// history IS the perf trajectory (see ROADMAP.md item 2). No parsing, no
// nesting: benches only ever append flat rows.
//
// Correctness contract (tests/json_test.cc pins it):
//   * output is valid JSON for EVERY double — NaN and +-Inf, which JSON
//     has no literal for, are emitted as null rather than the bare
//     `nan`/`inf` tokens printf produces;
//   * number formatting goes through std::to_chars, which is
//     locale-independent by definition (a global LC_NUMERIC with a comma
//     decimal separator must not corrupt the file) and produces the
//     shortest representation that round-trips the exact double, so a
//     re-run that computes the same value diffs clean at full precision;
//   * row handles returned by AddRow() stay valid for the lifetime of
//     the document (rows live in a deque — no reallocation moves them).
#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <deque>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

namespace kcore::bench {

namespace internal {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// Locale-independent shortest-round-trip rendering; null for values JSON
// cannot represent.
inline std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "null";  // cannot happen with a 64B buffer
  return std::string(buf, ptr);
}

}  // namespace internal

class JsonRow {
 public:
  JsonRow& Str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + internal::JsonEscape(value) + "\"");
    return *this;
  }
  JsonRow& Num(const std::string& key, double value) {
    fields_.emplace_back(key, internal::JsonNumber(value));
    return *this;
  }
  JsonRow& Int(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRow& Bool(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  std::string Render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + internal::JsonEscape(fields_[i].first) +
             "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

class JsonDoc {
 public:
  explicit JsonDoc(std::string bench_name) : name_(std::move(bench_name)) {}

  // The reference stays valid until the document is destroyed (deque
  // storage): callers may hold several row handles and fill them
  // interleaved.
  JsonRow& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string Render() const {
    std::string out =
        "{\"bench\": \"" + internal::JsonEscape(name_) + "\", \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += "  " + rows_[i].Render();
      if (i + 1 < rows_.size()) out += ",";
      out += "\n";
    }
    out += "]}\n";
    return out;
  }

  // Overwrites `path` with the full document. False on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = Render();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  std::string name_;
  std::deque<JsonRow> rows_;
};

}  // namespace kcore::bench
