// EXP-2 (Conclusion's empirical claim): the approximation ratio converges
// to 2(1+eps) in far fewer rounds than the worst-case bound
// T = ceil(log_{1+eps} n) suggests — on realistic graphs.
//
// For each workload and eps, reports the first round at which the MAX
// ratio over all nodes drops to 2(1+eps), next to the theoretical T.
// Expected shape: measured << theory on all workloads; the tree/path
// gadgets (EXP-5/6) are the counterexamples where this fails.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "core/compact.h"
#include "seq/kcore.h"
#include "util/table.h"

using kcore::graph::NodeId;

namespace {

// First t with max_v beta^t(v)/c(v) <= target, or -1.
int FirstRoundBelow(const kcore::core::CompactResult& res,
                    const std::vector<double>& core, double target) {
  for (std::size_t t = 0; t < res.b_rounds.size(); ++t) {
    double worst = 0.0;
    for (NodeId v = 0; v < core.size(); ++v) {
      if (core[v] > 0) worst = std::max(worst, res.b_rounds[t][v] / core[v]);
    }
    if (worst <= target + 1e-9) return static_cast<int>(t);
  }
  return -1;
}

}  // namespace

// First t with mean_v beta^t(v)/c(v) <= target, or -1.
int FirstRoundMeanBelow(const kcore::core::CompactResult& res,
                        const std::vector<double>& core, double target) {
  for (std::size_t t = 0; t < res.b_rounds.size(); ++t) {
    double sum = 0.0;
    std::size_t cnt = 0;
    for (NodeId v = 0; v < core.size(); ++v) {
      if (core[v] > 0) {
        sum += res.b_rounds[t][v] / core[v];
        ++cnt;
      }
    }
    if (cnt == 0 || sum / static_cast<double>(cnt) <= target + 1e-9) {
      return static_cast<int>(t);
    }
  }
  return -1;
}

int main() {
  std::printf(
      "EXP-2: rounds to reach max-ratio 2(1+eps) vs the worst-case bound "
      "(Conclusion's empirical claim)\n\n");
  kcore::util::Table t({"graph", "n", "eps", "T theory", "rounds measured",
                        "speedup", "final max ratio"});
  for (const auto& w : kcore::bench::StandardSuite()) {
    const auto& g = w.graph;
    const auto core = kcore::seq::WeightedCoreness(g);
    for (double eps : {0.5, 0.1, 0.01}) {
      const int T_theory = kcore::core::RoundsForEpsilon(g.num_nodes(), eps);
      kcore::core::CompactOptions opts;
      // Cap the run: the claim is that convergence happens way earlier.
      opts.rounds = std::min(T_theory, 64);
      opts.record_rounds = true;
      const auto res = kcore::core::RunCompactElimination(g, opts);
      const int measured = FirstRoundBelow(res, core, 2.0 * (1 + eps));
      double final_worst = 0.0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (core[v] > 0) {
          final_worst = std::max(final_worst, res.b[v] / core[v]);
        }
      }
      t.Row()
          .Str(w.name)
          .UInt(g.num_nodes())
          .Dbl(eps, 2)
          .Int(T_theory)
          .Str(measured >= 0 ? std::to_string(measured) : ">64")
          .Str(measured > 0
                   ? kcore::util::FormatDouble(
                         static_cast<double>(T_theory) / measured, 1) + "x"
                   : "-")
          .Dbl(final_worst, 3);
    }
  }
  t.Print();

  // The Conclusion's open question: does the AVERAGE ratio converge even
  // faster than the max ratio (suggesting better average-case round
  // bounds)? Measure both on the same runs.
  std::printf(
      "\nEXP-2b (Conclusion's open question): average vs max ratio "
      "convergence, eps = 0.1\n\n");
  kcore::util::Table t2({"graph", "n", "rounds: mean<=1.1", "rounds: mean<=2.2",
                         "rounds: max<=2.2", "mean lags max?"});
  for (const auto& w : kcore::bench::StandardSuite()) {
    const auto& g = w.graph;
    const auto core = kcore::seq::WeightedCoreness(g);
    kcore::core::CompactOptions opts;
    opts.rounds = 64;
    opts.record_rounds = true;
    const auto res = kcore::core::RunCompactElimination(g, opts);
    const int mean_11 = FirstRoundMeanBelow(res, core, 1.1);
    const int mean_22 = FirstRoundMeanBelow(res, core, 2.2);
    const int max_22 = FirstRoundBelow(res, core, 2.2);
    t2.Row()
        .Str(w.name)
        .UInt(g.num_nodes())
        .Int(mean_11)
        .Int(mean_22)
        .Int(max_22)
        .Str(mean_22 <= max_22 ? "no (mean first)" : "yes");
  }
  t2.Print();
  std::printf(
      "\nShape check: 'rounds measured' should be much smaller than "
      "'T theory' on every realistic workload; the mean ratio reaches the "
      "guarantee no later than the max — and even mean<=1.1 is cheap — "
      "supporting the paper's average-case conjecture.\n");
  return 0;
}
