// EXP-10 (the title claim): breaking the diameter barrier.
//
// Head-to-head on the same inputs:
//   * Sarma et al.-style strong densest subset — O(D log n) rounds
//     (global BFS + per-pass global density aggregation);
//   * the paper's weak densest subset (Algorithms 2+4+5+6) — O(log n)
//     rounds, diameter-independent.
//
// Workloads sweep the diameter: low-diameter expanders (BA), medium
// (grid), and the adversarial high-diameter cycle family. Expected
// shape: the baseline's rounds track D while ours stay flat in log n;
// both deliver the 2(1+eps)-quality subset.
#include <cstdio>
#include <string>
#include <vector>

#include "core/densest.h"
#include "core/sarma.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "seq/densest_exact.h"
#include "util/rng.h"
#include "util/table.h"

using kcore::graph::Graph;
using kcore::graph::NodeId;

int main() {
  std::printf(
      "EXP-10: diameter barrier — rounds of the weak (ours) vs strong "
      "(Sarma-style) distributed densest subset, gamma = 3 / eps = 0.5\n\n");

  struct Case {
    std::string name;
    Graph graph;
  };
  std::vector<Case> cases;
  {
    kcore::util::Rng rng(31);
    cases.push_back({"ba-1000", kcore::graph::BarabasiAlbert(1000, 3, rng)});
    cases.push_back({"ba-4000", kcore::graph::BarabasiAlbert(4000, 3, rng)});
    cases.push_back({"grid-32x32", kcore::graph::Grid(32, 32)});
    cases.push_back({"grid-64x64", kcore::graph::Grid(64, 64)});
    cases.push_back({"cycle-1000", kcore::graph::Cycle(1000)});
    cases.push_back({"cycle-4000", kcore::graph::Cycle(4000)});
  }

  kcore::util::Table t({"graph", "n", "diam>=", "ours rounds",
                        "baseline rounds", "baseline/ours",
                        "ours dens/rho*", "baseline dens/rho*"});
  for (const Case& c : cases) {
    const Graph& g = c.graph;
    const double rho = kcore::seq::MaxDensity(g);
    const auto ours = kcore::core::RunWeakDensest(g, 3.0);
    const auto base = kcore::core::RunSarmaDensest(g, 0.5);
    const auto diam = kcore::graph::DoubleSweepDiameterLowerBound(g);
    t.Row()
        .Str(c.name)
        .UInt(g.num_nodes())
        .UInt(diam)
        .Int(ours.rounds_total)
        .Int(base.rounds_total)
        .Dbl(static_cast<double>(base.rounds_total) /
                 static_cast<double>(ours.rounds_total),
             2)
        .Dbl(rho > 0 ? ours.best_density / rho : 1.0, 3)
        .Dbl(rho > 0 ? base.density / rho : 1.0, 3);
  }
  t.Print();
  std::printf(
      "\nShape check: 'baseline rounds' grows with the diameter (cycle "
      "rows explode) while 'ours rounds' stays ~4 log n; both density "
      "columns stay >= 1/(2(1+eps)) resp. 1/gamma.\n");
  return 0;
}
