// EXP-3 (Theorem I.2 / Corollary III.12): distributed min-max edge
// orientation quality.
//
// Three tables:
//   (a) weighted workloads: achieved max load vs the LP lower bound rho*
//       as T grows (the guarantee is 2 n^{1/T} rho*);
//   (b) unweighted workloads: comparison against the EXACT optimum
//       (flow-based; the polynomial special case);
//   (c) feasibility accounting: conflicts resolved, uncovered edges
//       (Lemma III.11 says 0), certificate load <= beta_T(v).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "core/compact.h"
#include "core/orientation.h"
#include "graph/generators.h"
#include "seq/densest_exact.h"
#include "seq/orientation_exact.h"
#include "util/rng.h"
#include "util/table.h"

using kcore::graph::NodeId;

int main() {
  std::printf("EXP-3: min-max edge orientation (Theorem I.2)\n\n");
  std::printf("(a) weighted graphs: load vs rho* as T grows\n\n");
  kcore::util::Table ta({"graph", "n", "T", "max load", "rho*", "load/rho*",
                         "bound 2n^(1/T)", "holds"});
  kcore::util::Rng rng(7);
  for (const auto& w : kcore::bench::StandardSuite(0.5, 3)) {
    // Heavy-tailed dyadic weights (exact arithmetic for the invariants).
    const kcore::graph::Graph g = kcore::graph::QuantizeWeightsDyadic(
        kcore::graph::WithParetoWeights(w.graph, 1.0, 1.8, rng));
    const double rho = kcore::seq::MaxDensity(g);
    if (rho <= 0) continue;
    const int T_full = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
    for (int T : {1, 2, 4, 8, T_full}) {
      if (T > T_full) continue;
      const auto r = kcore::core::RunDistributedOrientation(g, T);
      const double bound =
          2.0 * std::pow(static_cast<double>(g.num_nodes()),
                         1.0 / static_cast<double>(T));
      ta.Row()
          .Str(w.name)
          .UInt(g.num_nodes())
          .Int(T)
          .Dbl(r.orientation.max_load, 2)
          .Dbl(rho, 2)
          .Dbl(r.orientation.max_load / rho, 3)
          .Dbl(bound, 3)
          .Str(r.orientation.max_load <= bound * rho + 1e-6 &&
                       r.uncovered == 0
                   ? "yes"
                   : "NO");
    }
  }
  ta.Print();

  std::printf(
      "\n(b) unweighted graphs: against the exact optimum "
      "(binary search + flow)\n\n");
  kcore::util::Table tb({"graph", "n", "m", "OPT", "ours", "ours/OPT",
                         "guarantee 2(1+eps)"});
  for (const auto& w : kcore::bench::SmallSuite(5)) {
    const auto& g = w.graph;
    const auto exact = kcore::seq::ExactMinMaxOrientationUnweighted(g);
    const double eps = 0.5;
    const int T = kcore::core::RoundsForEpsilon(g.num_nodes(), eps);
    const auto ours = kcore::core::RunDistributedOrientation(g, T);
    tb.Row()
        .Str(w.name)
        .UInt(g.num_nodes())
        .UInt(g.num_edges())
        .UInt(exact.opt)
        .Dbl(ours.orientation.max_load, 1)
        .Dbl(exact.opt > 0
                 ? ours.orientation.max_load / static_cast<double>(exact.opt)
                 : 1.0,
             3)
        .Dbl(2.0 * (1 + eps), 1);
  }
  tb.Print();

  std::printf("\n(c) feasibility accounting (Lemma III.11)\n\n");
  kcore::util::Table tc({"graph", "edges", "conflicts", "uncovered",
                         "max load_v/b_v", "rounds", "messages"});
  for (const auto& w : kcore::bench::StandardSuite(0.5, 9)) {
    const auto& g = w.graph;
    const int T = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
    const auto r = kcore::core::RunDistributedOrientation(g, T);
    double worst_cert = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (r.b[v] > 0) {
        worst_cert = std::max(worst_cert, r.orientation.loads[v] / r.b[v]);
      }
    }
    tc.Row()
        .Str(w.name)
        .UInt(g.num_edges())
        .UInt(r.conflicts)
        .UInt(r.uncovered)
        .Dbl(worst_cert, 3)
        .Int(r.rounds)
        .UInt(r.totals.messages);
  }
  tc.Print();
  std::printf(
      "\nShape check: uncovered = 0 everywhere; load/rho* <= 2(1+eps); "
      "certificate ratio <= 1.\n");
  return 0;
}
