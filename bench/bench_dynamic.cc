// EXP-12 (extension; Aridhi et al. direction): incremental coreness
// maintenance under edge churn.
//
// Two workloads against from-scratch recomputation:
//   (a) random-edge churn — inserts/deletes between random endpoints.
//       In a sparse BA graph (min degree = attach) the k-core is fragile,
//       so single deletions can LEGITIMATELY cascade through a large
//       subcore; the table shows the honest cascade sizes.
//   (b) pendant churn — attach/detach degree-1 nodes at the hub: the
//       provably local case (worklist touches the hub neighborhood only).
#include <cstdio>

#include "dynamic/maintain.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

using kcore::graph::NodeId;

int main() {
  std::printf(
      "EXP-12: dynamic coreness maintenance vs from-scratch recompute\n\n"
      "(a) random-edge churn (cascades are genuine: sparse cores are "
      "fragile)\n\n");
  kcore::util::Table t({"n", "updates", "mean recomp/delete",
                        "mean changed/insert", "maintain ms/update",
                        "scratch ms/recompute"});
  for (const NodeId n : {500u, 2000u, 8000u}) {
    kcore::util::Rng rng(51 + n);
    const kcore::graph::Graph g = kcore::graph::BarabasiAlbert(n, 3, rng);
    kcore::dynamic::DynamicCoreMaintenance m(g);

    std::vector<std::pair<NodeId, NodeId>> inserted;
    std::vector<double> del_recomputes;
    std::vector<double> ins_changed;
    const int updates = 200;
    kcore::util::Timer timer;
    for (int i = 0; i < updates; ++i) {
      if (!inserted.empty() && i % 2 == 1) {
        const auto [u, v] = inserted.back();
        inserted.pop_back();
        const auto s = m.DeleteEdge(u, v);
        del_recomputes.push_back(static_cast<double>(s.recomputations));
      } else {
        const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
        NodeId v = static_cast<NodeId>(rng.NextBounded(n));
        if (u == v) v = (v + 1) % n;
        const auto s = m.InsertEdge(u, v);
        ins_changed.push_back(static_cast<double>(s.changed));
        inserted.emplace_back(u, v);
      }
    }
    const double maintain_ms = timer.Millis() / updates;

    timer.Reset();
    const auto scratch = kcore::seq::WeightedCoreness(m.Snapshot());
    const double scratch_ms = timer.Millis();
    (void)scratch;

    t.Row()
        .UInt(n)
        .Int(updates)
        .Dbl(kcore::util::Summarize(del_recomputes).mean, 1)
        .Dbl(kcore::util::Summarize(ins_changed).mean, 1)
        .Dbl(maintain_ms, 3)
        .Dbl(scratch_ms, 3);
  }
  t.Print();

  std::printf(
      "\n(b) pendant churn at the hub (the provably-local case)\n\n");
  kcore::util::Table t2({"n", "mean recomp/delete", "p99 recomp/delete",
                         "hub degree"});
  for (const NodeId n : {2000u, 8000u}) {
    kcore::util::Rng rng(81 + n);
    const kcore::graph::Graph g = kcore::graph::BarabasiAlbert(n, 3, rng);
    kcore::dynamic::DynamicCoreMaintenance m(n + 64);
    for (const auto& e : g.edges()) m.InsertEdge(e.u, e.v, e.w);
    std::vector<double> recomputes;
    for (NodeId i = 0; i < 64; ++i) {
      const NodeId pendant = n + i;
      m.InsertEdge(0, pendant);
      const auto s = m.DeleteEdge(0, pendant);
      recomputes.push_back(static_cast<double>(s.recomputations));
    }
    const auto summary = kcore::util::Summarize(recomputes);
    t2.Row()
        .UInt(n)
        .Dbl(summary.mean, 1)
        .Dbl(summary.p99, 1)
        .UInt(g.Degree(0));
  }
  t2.Print();
  std::printf(
      "\nShape check: pendant-churn recomputations track the hub degree "
      "and do not grow with n; random churn shows the true (fragile-core) "
      "cascade sizes; maintain ms/update < scratch ms everywhere.\n");
  return 0;
}
