// EXP-12 (extension; Aridhi et al. direction): incremental coreness
// maintenance under edge churn.
//
// Three experiments:
//   (a) random-edge churn — inserts/deletes between random endpoints.
//       In a sparse BA graph (min degree = attach) the k-core is fragile,
//       so single deletions can LEGITIMATELY cascade through a large
//       subcore; the table shows the honest cascade sizes.
//   (b) pendant churn — attach/detach degree-1 nodes at the hub: the
//       provably local case (worklist touches the hub neighborhood only).
//   (c) sustained load through the streaming coreness server: an
//       in-process CorenessServer seeded with a power-law graph, driven
//       over its Unix socket by CorenessClient with adversarial update
//       mixes. Reports sustained updates/sec and query latency
//       percentiles vs from-scratch WeightedCoreness, and with --json
//       writes the rows to a BENCH_dynamic.json results file.
//
// Flags: --n=N --updates=U --batch-size=K --queries=Q --seed=S
//        --json=PATH --help
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/json.h"
#include "dynamic/client.h"
#include "dynamic/maintain.h"
#include "dynamic/server.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

using kcore::graph::NodeId;

namespace {

constexpr const char kUsage[] =
    "usage: bench_dynamic [options]\n"
    "\n"
    "  --n=N            server-section graph size (default 2000)\n"
    "  --updates=U      updates per server mix (default 1000)\n"
    "  --batch-size=K   updates per frame (default 20)\n"
    "  --queries=Q      timed point queries per mix (default 300)\n"
    "  --seed=S         workload seed (default 9)\n"
    "  --json=PATH      write results as JSON (the BENCH_dynamic.json row "
    "format)\n"
    "  --help           this text\n";

struct MixResult {
  std::string mix;
  std::uint64_t applied = 0;
  std::uint64_t recomputations = 0;
  std::uint64_t changed = 0;
  double update_seconds = 0.0;
  kcore::util::Summary query_ms;
  double scratch_ms = 0.0;
  std::size_t seed_edges = 0;
};

// Drives `updates` edge updates through a fresh server seeded with a
// power-law graph, using `next_op` to produce the adversarial mix.
// Point queries are interleaved and timed individually.
template <typename NextOp>
MixResult RunServerMix(const std::string& mix, NodeId n, int updates,
                       int batch_size, int queries, std::uint64_t seed,
                       NextOp&& next_op) {
  kcore::util::Rng rng(seed);
  const kcore::graph::Graph g =
      kcore::graph::PowerLawConfiguration(n, 2.3, 2, 60, rng);

  kcore::dynamic::ServerOptions opts;
  opts.socket_path =
      "/tmp/kcore_bench_dyn_" + std::to_string(::getpid()) + ".sock";
  opts.initial_nodes = n;
  kcore::dynamic::CorenessServer server(opts, g);
  if (!server.Start()) {
    std::fprintf(stderr, "bench_dynamic: cannot start server on %s\n",
                 opts.socket_path.c_str());
    std::exit(1);
  }
  kcore::dynamic::CorenessClient client;
  if (!client.ConnectWithRetry(opts.socket_path, 50, 20)) {
    std::fprintf(stderr, "bench_dynamic: cannot connect: %s\n",
                 client.last_error().c_str());
    std::exit(1);
  }

  MixResult r;
  r.mix = mix;
  r.seed_edges = g.num_edges();
  std::vector<kcore::dynamic::EdgeUpdate> batch;
  std::vector<double> query_ms;
  const int batches = (updates + batch_size - 1) / batch_size;
  const int queries_per_batch = std::max(1, queries / std::max(1, batches));
  int remaining = updates;
  while (remaining > 0) {
    batch.clear();
    const int k = std::min(batch_size, remaining);
    for (int i = 0; i < k; ++i) batch.push_back(next_op(rng));
    remaining -= k;
    kcore::util::Timer t;
    const auto ack = client.ApplyUpdates(batch);
    r.update_seconds += t.Seconds();
    if (!ack) {
      std::fprintf(stderr, "bench_dynamic: batch failed: %s\n",
                   client.last_error().c_str());
      std::exit(1);
    }
    r.applied += ack->applied;
    r.recomputations += ack->recomputations;
    r.changed += ack->changed;
    for (int q = 0; q < queries_per_batch; ++q) {
      const NodeId id = static_cast<NodeId>(rng.NextBounded(n));
      kcore::util::Timer qt;
      if (!client.QueryCoreness({&id, 1})) {
        std::fprintf(stderr, "bench_dynamic: query failed: %s\n",
                     client.last_error().c_str());
        std::exit(1);
      }
      query_ms.push_back(qt.Millis());
    }
  }
  r.query_ms = kcore::util::Summarize(query_ms);

  // From-scratch baseline: one full WeightedCoreness pass over the
  // (comparably sized) seed graph — what a non-incremental system would
  // pay per update to keep exact coreness fresh.
  kcore::util::Timer t;
  const auto scratch = kcore::seq::WeightedCoreness(g);
  r.scratch_ms = t.Millis();
  (void)scratch;

  client.Shutdown();
  server.Wait();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  kcore::util::Flags flags;
  flags.Parse(argc, argv);
  if (flags.Has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const NodeId n_server = static_cast<NodeId>(flags.GetInt("n", 2000));
  const int updates_server =
      static_cast<int>(flags.GetInt("updates", 1000));
  const int batch_size = static_cast<int>(flags.GetInt("batch-size", 20));
  const int queries = static_cast<int>(flags.GetInt("queries", 300));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 9));

  std::printf(
      "EXP-12: dynamic coreness maintenance vs from-scratch recompute\n\n"
      "(a) random-edge churn (cascades are genuine: sparse cores are "
      "fragile)\n\n");
  kcore::util::Table t({"n", "updates", "mean recomp/delete",
                        "mean changed/insert", "maintain ms/update",
                        "scratch ms/recompute"});
  for (const NodeId n : {500u, 2000u, 8000u}) {
    kcore::util::Rng rng(51 + n);
    const kcore::graph::Graph g = kcore::graph::BarabasiAlbert(n, 3, rng);
    kcore::dynamic::DynamicCoreMaintenance m(g);

    std::vector<std::pair<NodeId, NodeId>> inserted;
    std::vector<double> del_recomputes;
    std::vector<double> ins_changed;
    const int updates = 200;
    kcore::util::Timer timer;
    for (int i = 0; i < updates; ++i) {
      if (!inserted.empty() && i % 2 == 1) {
        const auto [u, v] = inserted.back();
        inserted.pop_back();
        const auto s = m.DeleteEdge(u, v);
        del_recomputes.push_back(static_cast<double>(s.recomputations));
      } else {
        const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
        NodeId v = static_cast<NodeId>(rng.NextBounded(n));
        if (u == v) v = (v + 1) % n;
        const auto s = m.InsertEdge(u, v);
        ins_changed.push_back(static_cast<double>(s.changed));
        inserted.emplace_back(u, v);
      }
    }
    const double maintain_ms = timer.Millis() / updates;

    timer.Reset();
    const auto scratch = kcore::seq::WeightedCoreness(m.Snapshot());
    const double scratch_ms = timer.Millis();
    (void)scratch;

    t.Row()
        .UInt(n)
        .Int(updates)
        .Dbl(kcore::util::Summarize(del_recomputes).mean, 1)
        .Dbl(kcore::util::Summarize(ins_changed).mean, 1)
        .Dbl(maintain_ms, 3)
        .Dbl(scratch_ms, 3);
  }
  t.Print();

  std::printf(
      "\n(b) pendant churn at the hub (the provably-local case)\n\n");
  kcore::util::Table t2({"n", "mean recomp/delete", "p99 recomp/delete",
                         "hub degree"});
  for (const NodeId n : {2000u, 8000u}) {
    kcore::util::Rng rng(81 + n);
    const kcore::graph::Graph g = kcore::graph::BarabasiAlbert(n, 3, rng);
    kcore::dynamic::DynamicCoreMaintenance m(n + 64);
    for (const auto& e : g.edges()) m.InsertEdge(e.u, e.v, e.w);
    std::vector<double> recomputes;
    for (NodeId i = 0; i < 64; ++i) {
      const NodeId pendant = n + i;
      m.InsertEdge(0, pendant);
      const auto s = m.DeleteEdge(0, pendant);
      recomputes.push_back(static_cast<double>(s.recomputations));
    }
    const auto summary = kcore::util::Summarize(recomputes);
    t2.Row()
        .UInt(n)
        .Dbl(summary.mean, 1)
        .Dbl(summary.p99, 1)
        .UInt(g.Degree(0));
  }
  t2.Print();

  std::printf(
      "\n(c) sustained load through the streaming coreness server "
      "(n=%u, %d updates/mix, batch=%d)\n\n",
      n_server, updates_server, batch_size);

  // Mix state shared by the op generators. Deletes always name a live
  // edge so nothing is rejected and every op does maintenance work.
  std::vector<kcore::dynamic::EdgeUpdate> live;
  NodeId next_pendant = n_server;
  const auto uniform_churn = [&live, n_server](kcore::util::Rng& rng) {
    if (!live.empty() && rng.NextBool(0.4)) {
      const std::size_t idx = rng.NextBounded(live.size());
      kcore::dynamic::EdgeUpdate op = live[idx];
      op.kind = kcore::dynamic::EdgeUpdate::Kind::kDelete;
      live[idx] = live.back();
      live.pop_back();
      return op;
    }
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n_server));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n_server));
    if (u == v) v = (v + 1) % n_server;
    const kcore::dynamic::EdgeUpdate op{
        kcore::dynamic::EdgeUpdate::Kind::kInsert, u, v, 1.0};
    live.push_back(op);
    return op;
  };
  // Adversarial: all churn lands inside the densest region (the 32
  // highest-ids double as stand-ins for hubs after the power-law sort
  // below), so every update pounds the top core.
  std::vector<NodeId> hubs;
  const auto hub_stress = [&live, &hubs](kcore::util::Rng& rng) {
    if (!live.empty() && rng.NextBool(0.45)) {
      const std::size_t idx = rng.NextBounded(live.size());
      kcore::dynamic::EdgeUpdate op = live[idx];
      op.kind = kcore::dynamic::EdgeUpdate::Kind::kDelete;
      live[idx] = live.back();
      live.pop_back();
      return op;
    }
    const NodeId u = hubs[rng.NextBounded(hubs.size())];
    NodeId v = hubs[rng.NextBounded(hubs.size())];
    if (u == v) v = hubs[(rng.NextBounded(hubs.size()) + 1) % hubs.size()];
    if (u == v) v = hubs[0] == u ? hubs[1] : hubs[0];
    const kcore::dynamic::EdgeUpdate op{
        kcore::dynamic::EdgeUpdate::Kind::kInsert, u, v, 1.0};
    live.push_back(op);
    return op;
  };
  const auto pendant_churn = [&live, &next_pendant](kcore::util::Rng& rng) {
    (void)rng;
    if (!live.empty()) {
      kcore::dynamic::EdgeUpdate op = live.back();
      live.pop_back();
      op.kind = kcore::dynamic::EdgeUpdate::Kind::kDelete;
      return op;
    }
    const kcore::dynamic::EdgeUpdate op{
        kcore::dynamic::EdgeUpdate::Kind::kInsert, 0, next_pendant++, 1.0};
    live.push_back(op);
    return op;
  };

  {
    // The hub list: recreate the seed graph deterministically (same seed
    // as RunServerMix) and take the highest-degree nodes.
    kcore::util::Rng rng(seed);
    const kcore::graph::Graph g =
        kcore::graph::PowerLawConfiguration(n_server, 2.3, 2, 60, rng);
    std::vector<NodeId> ids(g.num_nodes());
    for (NodeId i = 0; i < g.num_nodes(); ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(), [&g](NodeId a, NodeId b) {
      return g.Degree(a) > g.Degree(b);
    });
    hubs.assign(ids.begin(), ids.begin() + std::min<std::size_t>(32, ids.size()));
  }

  std::vector<MixResult> results;
  live.clear();
  results.push_back(RunServerMix("uniform-churn", n_server, updates_server,
                                 batch_size, queries, seed, uniform_churn));
  live.clear();
  results.push_back(RunServerMix("hub-stress", n_server, updates_server,
                                 batch_size, queries, seed, hub_stress));
  live.clear();
  results.push_back(RunServerMix("pendant-churn", n_server, updates_server,
                                 batch_size, queries, seed, pendant_churn));

  kcore::util::Table t3({"mix", "updates/s", "recomp/update",
                         "query ms p50", "query ms p90", "query ms p99",
                         "scratch ms", "updates per scratch"});
  for (const MixResult& r : results) {
    const double ups =
        static_cast<double>(r.applied) /
        (r.update_seconds > 0 ? r.update_seconds : 1e-9);
    t3.Row()
        .Str(r.mix)
        .Dbl(ups, 0)
        .Dbl(static_cast<double>(r.recomputations) /
                 std::max<std::uint64_t>(1, r.applied),
             1)
        .Dbl(r.query_ms.p50, 4)
        .Dbl(r.query_ms.p90, 4)
        .Dbl(r.query_ms.p99, 4)
        .Dbl(r.scratch_ms, 3)
        .Dbl(ups * r.scratch_ms / 1e3, 0);
  }
  t3.Print();
  std::printf(
      "\nShape check: pendant-churn recomputations track the hub degree "
      "and do not grow with n; random churn shows the true (fragile-core) "
      "cascade sizes; 'updates per scratch' is how many incremental "
      "updates fit in one from-scratch recompute — the incremental win.\n");

  if (flags.Has("json")) {
    kcore::bench::JsonDoc doc("dynamic");
    for (const MixResult& r : results) {
      const double ups =
          static_cast<double>(r.applied) /
          (r.update_seconds > 0 ? r.update_seconds : 1e-9);
      doc.AddRow()
          .Str("mix", r.mix)
          .Int("n", static_cast<long long>(n_server))
          .Int("seed_edges", static_cast<long long>(r.seed_edges))
          .Int("updates", static_cast<long long>(r.applied))
          .Int("batch_size", batch_size)
          .Num("updates_per_sec", ups)
          .Num("recomputations_per_update",
               static_cast<double>(r.recomputations) /
                   std::max<std::uint64_t>(1, r.applied))
          .Num("changed_per_update",
               static_cast<double>(r.changed) /
                   std::max<std::uint64_t>(1, r.applied))
          .Num("query_ms_p50", r.query_ms.p50)
          .Num("query_ms_p90", r.query_ms.p90)
          .Num("query_ms_p99", r.query_ms.p99)
          .Num("scratch_ms", r.scratch_ms)
          .Num("updates_per_scratch", ups * r.scratch_ms / 1e3);
    }
    const std::string path = flags.GetString("json");
    if (!doc.WriteFile(path)) {
      std::fprintf(stderr, "bench_dynamic: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
