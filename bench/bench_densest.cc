// EXP-4 (Theorem I.3 / Lemma IV.4): distributed weak densest subset.
//
// For each workload and gamma, reports the best returned subset density
// against the exact rho* (flow) and the Charikar centralized 2-approx,
// the number of disjoint subsets returned, and the round budget of each
// phase. Expected shape: best density >= rho*/gamma always, usually much
// closer; rounds ~ 4T + O(1) with T = ceil(log n / log(gamma/2)).
#include <cstdio>

#include "bench/common.h"
#include "core/compact.h"
#include "core/densest.h"
#include "seq/charikar.h"
#include "seq/densest_exact.h"
#include "util/table.h"

int main() {
  std::printf("EXP-4: weak densest subset (Theorem I.3)\n\n");
  kcore::util::Table t({"graph", "n", "gamma", "rho*", "charikar", "best S_i",
                        "best/rho*", "rho*/gamma", "#subsets",
                        "rounds (p1+p2+p3+p4)", "holds"});
  for (const auto& w : kcore::bench::StandardSuite(0.5, 11)) {
    const auto& g = w.graph;
    const double rho = kcore::seq::MaxDensity(g);
    const double charikar = kcore::seq::CharikarDensest(g).density;
    for (double gamma : {2.5, 3.0, 4.0}) {
      const auto r = kcore::core::RunWeakDensest(g, gamma);
      char rounds[64];
      std::snprintf(rounds, sizeof(rounds), "%d+%d+%d+%d=%d",
                    r.rounds_phase1, r.rounds_phase2, r.rounds_phase3,
                    r.rounds_phase4, r.rounds_total);
      t.Row()
          .Str(w.name)
          .UInt(g.num_nodes())
          .Dbl(gamma, 1)
          .Dbl(rho, 3)
          .Dbl(charikar, 3)
          .Dbl(r.best_density, 3)
          .Dbl(rho > 0 ? r.best_density / rho : 1.0, 3)
          .Dbl(rho / gamma, 3)
          .UInt(r.subsets.size())
          .Str(rounds)
          .Str(r.best_density * gamma + 1e-7 >= rho ? "yes" : "NO");
    }
  }
  t.Print();
  std::printf(
      "\nShape check: best/rho* >= 1/gamma everywhere (Definition IV.1); "
      "typically best/rho* is close to 1.\n");
  return 0;
}
