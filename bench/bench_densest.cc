// EXP-4 (Theorem I.3 / Lemma IV.4): distributed weak densest subset.
//
// For each workload and gamma, reports the best returned subset density
// against the exact rho* (flow) and the Charikar centralized 2-approx,
// the number of disjoint subsets returned, and the round budget of each
// phase. Expected shape: best density >= rho*/gamma always, usually much
// closer; rounds ~ 4T + O(1) with T = ceil(log n / log(gamma/2)).
//
// An [engine] section times the four-phase pipeline on the engine's
// parallel/transport axes — sequential reference vs 8 threads, the
// serialized transport, and a 2-rank multi-process run with per-rank
// compute — and cross-checks every row against the sequential run
// (surviving numbers bitwise, leaders, selections, subset densities), so
// a scaling win can never hide a correctness regression.
//
// --json=PATH writes every section's rows to the committed
// BENCH_densest.json results file (the bench/json.h trajectory
// convention).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/json.h"
#include "core/compact.h"
#include "core/densest.h"
#include "distsim/transport.h"
#include "seq/charikar.h"
#include "seq/densest_exact.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

constexpr const char kUsage[] =
    "usage: bench_densest [options]\n"
    "\n"
    "  --json=PATH  write all rows as JSON (the BENCH_densest.json row\n"
    "               format)\n"
    "  --help       this text\n";

bool SameResult(const kcore::core::WeakDensestResult& a,
                const kcore::core::WeakDensestResult& b) {
  if (a.b != b.b || a.leader_of != b.leader_of || a.selected != b.selected ||
      a.best_density != b.best_density ||
      a.subsets.size() != b.subsets.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.subsets.size(); ++i) {
    if (a.subsets[i].leader != b.subsets[i].leader ||
        a.subsets[i].members != b.subsets[i].members ||
        a.subsets[i].density != b.subsets[i].density) {
      return false;
    }
  }
  return true;
}

int RunEngineSection(kcore::bench::JsonDoc* doc) {
  kcore::util::Rng rng(13);
  const kcore::graph::Graph g = kcore::graph::BarabasiAlbert(2000, 4, rng);
  const double gamma = 3.0;
  std::printf(
      "\n[engine] four-phase pipeline on BA n=%u m=%zu, gamma=%.1f\n",
      g.num_nodes(), g.num_edges(), gamma);

  struct Config {
    const char* label;
    kcore::distsim::TransportKind transport;
    int threads;
    int ranks;
    bool per_rank;
  };
  const Config configs[] = {
      {"shared/1thr", kcore::distsim::TransportKind::kSharedMemory, 1, 1,
       false},
      {"shared/8thr", kcore::distsim::TransportKind::kSharedMemory, 8, 1,
       false},
      {"serialized/8thr", kcore::distsim::TransportKind::kSerialized, 8, 1,
       false},
      {"process/2ranks/per-rank", kcore::distsim::TransportKind::kProcess, 2,
       2, true},
  };
  kcore::util::Table t({"config", "threads", "ranks", "seconds",
                        "rounds_per_sec", "speedup", "bit_identical"});
  kcore::core::WeakDensestResult reference;
  double seq_seconds = 0.0;
  bool ok = true;
  for (const Config& c : configs) {
    kcore::core::WeakDensestOptions opts;
    opts.gamma = gamma;
    opts.num_threads = c.threads;
    opts.transport = c.transport;
    opts.ranks = c.ranks;
    opts.per_rank_compute = c.per_rank;
    double best = -1.0;
    kcore::core::WeakDensestResult res;
    for (int rep = 0; rep < 3; ++rep) {
      kcore::util::Timer timer;
      res = kcore::core::RunWeakDensest(g, opts);
      const double s = timer.Seconds();
      if (best < 0.0 || s < best) best = s;
    }
    if (seq_seconds == 0.0) {
      seq_seconds = best;
      reference = res;
    }
    const bool same = SameResult(res, reference);
    ok &= same;
    const double rps = static_cast<double>(res.rounds_total) / best;
    t.Row()
        .Str(c.label)
        .Int(c.threads)
        .Int(c.ranks)
        .Dbl(best, 3)
        .Dbl(rps, 1)
        .Dbl(seq_seconds / best, 2)
        .Str(same ? "yes" : "NO — BUG");
    if (doc != nullptr) {
      doc->AddRow()
          .Str("section", "engine")
          .Str("config", c.label)
          .Int("n", g.num_nodes())
          .Int("edges", static_cast<long long>(g.num_edges()))
          .Int("threads", c.threads)
          .Int("ranks", c.ranks)
          .Bool("per_rank", c.per_rank)
          .Int("rounds", res.rounds_total)
          .Num("seconds", best)
          .Num("rounds_per_sec", rps)
          .Num("speedup", seq_seconds / best)
          .Bool("bit_identical", same);
    }
  }
  t.Print();
  if (!ok) {
    std::fprintf(stderr, "engine rows diverged from the sequential run\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  kcore::util::Flags flags;
  flags.Parse(argc, argv);
  if (flags.Has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  kcore::bench::JsonDoc doc("densest");
  kcore::bench::JsonDoc* docp = flags.Has("json") ? &doc : nullptr;

  std::printf("EXP-4: weak densest subset (Theorem I.3)\n\n");
  kcore::util::Table t({"graph", "n", "gamma", "rho*", "charikar", "best S_i",
                        "best/rho*", "rho*/gamma", "#subsets",
                        "rounds (p1+p2+p3+p4)", "holds"});
  for (const auto& w : kcore::bench::StandardSuite(0.5, 11)) {
    const auto& g = w.graph;
    const double rho = kcore::seq::MaxDensity(g);
    const double charikar = kcore::seq::CharikarDensest(g).density;
    for (double gamma : {2.5, 3.0, 4.0}) {
      const auto r = kcore::core::RunWeakDensest(g, gamma);
      char rounds[64];
      std::snprintf(rounds, sizeof(rounds), "%d+%d+%d+%d=%d",
                    r.rounds_phase1, r.rounds_phase2, r.rounds_phase3,
                    r.rounds_phase4, r.rounds_total);
      const bool holds = r.best_density * gamma + 1e-7 >= rho;
      t.Row()
          .Str(w.name)
          .UInt(g.num_nodes())
          .Dbl(gamma, 1)
          .Dbl(rho, 3)
          .Dbl(charikar, 3)
          .Dbl(r.best_density, 3)
          .Dbl(rho > 0 ? r.best_density / rho : 1.0, 3)
          .Dbl(rho / gamma, 3)
          .UInt(r.subsets.size())
          .Str(rounds)
          .Str(holds ? "yes" : "NO");
      if (docp != nullptr) {
        docp->AddRow()
            .Str("section", "quality")
            .Str("graph", w.name)
            .Int("n", g.num_nodes())
            .Num("gamma", gamma)
            .Num("rho_star", rho)
            .Num("charikar", charikar)
            .Num("best_density", r.best_density)
            .Int("subsets", static_cast<long long>(r.subsets.size()))
            .Int("rounds_total", r.rounds_total)
            .Bool("holds", holds);
      }
    }
  }
  t.Print();
  std::printf(
      "\nShape check: best/rho* >= 1/gamma everywhere (Definition IV.1); "
      "typically best/rho* is close to 1.\n");

  if (int rc = RunEngineSection(docp)) return rc;

  if (docp != nullptr) {
    const std::string path = flags.GetString("json");
    if (!doc.WriteFile(path)) {
      std::fprintf(stderr, "bench_densest: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
