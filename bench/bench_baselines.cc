// EXP-8 (Section I.A comparisons): our fixed-T protocols vs the
// run-to-convergence baseline (Montresor et al.) and the two-phase
// orientation baseline (Barenboim–Elkin-style).
//
//   (a) coreness: rounds-to-EXACT (Montresor fixpoint) vs rounds-to-
//       2(1+eps) (Theorem I.1) and the message totals of both;
//   (b) orientation: primal-dual 2(1+eps) quality vs two-phase 2(2+eps).
//
// Expected shape: exact convergence costs multiples of the approximate
// round budget (and Omega(n) on the adversarial path); the primal-dual
// orientation dominates the two-phase baseline.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "core/compact.h"
#include "core/montresor.h"
#include "core/orientation.h"
#include "core/two_phase.h"
#include "graph/generators.h"
#include "seq/densest_exact.h"
#include "seq/kcore.h"
#include "util/rng.h"
#include "util/table.h"

using kcore::graph::NodeId;

int main() {
  std::printf("EXP-8a: ours (2(1+eps), fixed T) vs Montresor (exact)\n\n");
  kcore::util::Table ta({"graph", "n", "T ours (eps=0.5)", "msgs ours",
                         "rounds exact", "msgs exact", "round savings"});
  auto suite = kcore::bench::StandardSuite(0.5, 21);
  {
    // Adversarial instance: the long path (Omega(n) exact convergence).
    kcore::bench::Workload path{"path-gadget", kcore::graph::Path(2001)};
    suite.push_back(std::move(path));
  }
  for (const auto& w : suite) {
    const auto& g = w.graph;
    const int T = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
    kcore::core::CompactOptions opts;
    opts.rounds = T;
    const auto ours = kcore::core::RunCompactElimination(g, opts);
    const auto exact = kcore::core::RunToConvergence(g);
    ta.Row()
        .Str(w.name)
        .UInt(g.num_nodes())
        .Int(T)
        .UInt(ours.totals.messages)
        .Int(exact.last_change_round)
        .UInt(exact.totals.messages)
        .Str(kcore::util::FormatDouble(
                 static_cast<double>(exact.last_change_round) /
                     std::max(1, T),
                 1) +
             "x");
  }
  ta.Print();

  std::printf("\nEXP-8b: orientation — primal-dual vs two-phase baseline\n\n");
  kcore::util::Table tb({"graph", "rho*", "primal-dual load", "two-phase load",
                         "pd/rho*", "tp/rho*", "tp/pd"});
  kcore::util::Rng rng(23);
  for (const auto& w : kcore::bench::StandardSuite(0.5, 23)) {
    const kcore::graph::Graph g = kcore::graph::QuantizeWeightsDyadic(
        kcore::graph::WithParetoWeights(w.graph, 1.0, 1.8, rng));
    const double rho = kcore::seq::MaxDensity(g);
    if (rho <= 0) continue;
    const int T = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
    const auto pd = kcore::core::RunDistributedOrientation(g, T);
    const auto tp = kcore::core::RunTwoPhaseOrientation(g, T, 0.5);
    tb.Row()
        .Str(w.name)
        .Dbl(rho, 2)
        .Dbl(pd.orientation.max_load, 2)
        .Dbl(tp.orientation.max_load, 2)
        .Dbl(pd.orientation.max_load / rho, 3)
        .Dbl(tp.orientation.max_load / rho, 3)
        .Dbl(tp.orientation.max_load / pd.orientation.max_load, 3);
  }
  tb.Print();
  std::printf(
      "\nShape check: 'round savings' is large (Omega(n/log n) on the path "
      "gadget); tp/pd >= 1 on average (primal-dual wins).\n");
  return 0;
}
