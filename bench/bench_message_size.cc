// EXP-7 (Corollary III.10 / Section II message-size discussion): the
// Lambda-discretization tradeoff.
//
// With Lambda = powers of (1+lambda), each broadcast value comes from an
// alphabet of size log_{1+lambda}(max degree) — CONGEST-sized messages —
// at the cost of an extra (1+lambda) factor in the guarantee. Reported
// per lambda: worst-case quality inflation vs the exact run, the peak and
// mean number of distinct broadcast values per round (the alphabet
// actually used), and the sandwich check of Corollary III.10.
//
// --json=PATH writes one row per (graph, lambda) to a committed
// BENCH_message_size.json results file (same trajectory convention as
// BENCH_dynamic.json).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/json.h"
#include "core/compact.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

using kcore::graph::NodeId;

namespace {

constexpr const char kUsage[] =
    "usage: bench_message_size [options]\n"
    "\n"
    "  --json=PATH   write results as JSON (the BENCH_message_size.json "
    "row format)\n"
    "  --help        this text\n";

}  // namespace

int main(int argc, char** argv) {
  kcore::util::Flags flags;
  flags.Parse(argc, argv);
  if (flags.Has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  kcore::bench::JsonDoc doc("message_size");
  kcore::bench::JsonDoc* docp = flags.Has("json") ? &doc : nullptr;

  std::printf("EXP-7: Lambda-discretization (Corollary III.10)\n\n");
  kcore::util::Table t({"graph", "lambda", "max b_l/b_exact", "min b_l/b_exact",
                        "peak distinct/round", "mean distinct/round",
                        "alphabet bits", "sandwich holds"});
  kcore::util::Rng wrng(13);
  for (const auto& w : kcore::bench::StandardSuite(0.5, 13)) {
    const kcore::graph::Graph g =
        kcore::graph::WithDyadicWeights(w.graph, 0.5, 4.0, wrng);
    const int T = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
    kcore::core::CompactOptions exact_opts;
    exact_opts.rounds = T;
    const auto exact = kcore::core::RunCompactElimination(g, exact_opts);
    for (double lambda : {0.0, 0.01, 0.1, 0.5, 1.0}) {
      kcore::core::CompactOptions opts;
      opts.rounds = T;
      opts.lambda = lambda;
      const auto res = kcore::core::RunCompactElimination(g, opts);
      double max_ratio = 0.0;
      double min_ratio = 1e300;
      bool sandwich = true;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (exact.b[v] <= 0) continue;
        const double ratio = res.b[v] / exact.b[v];
        max_ratio = std::max(max_ratio, ratio);
        min_ratio = std::min(min_ratio, ratio);
        // Corollary III.10: b_exact/(1+lambda) <= b_lambda <= b_exact.
        if (res.b[v] > exact.b[v] + 1e-9 ||
            res.b[v] * (1 + lambda) < exact.b[v] * (1 - 1e-9)) {
          sandwich = false;
        }
      }
      std::size_t peak = 0;
      double mean = 0.0;
      for (const auto& h : res.history) {
        peak = std::max(peak, h.distinct_values);
        mean += static_cast<double>(h.distinct_values);
      }
      mean /= static_cast<double>(res.history.size());
      t.Row()
          .Str(w.name)
          .Dbl(lambda, 2)
          .Dbl(max_ratio, 4)
          .Dbl(min_ratio, 4)
          .UInt(peak)
          .Dbl(mean, 1)
          .Dbl(peak > 1 ? std::log2(static_cast<double>(peak)) : 0.0, 1)
          .Str(sandwich ? "yes" : "NO");
      if (docp != nullptr) {
        docp->AddRow()
            .Str("graph", w.name)
            .Int("n", g.num_nodes())
            .Int("edges", static_cast<long long>(g.num_edges()))
            .Int("rounds", T)
            .Num("lambda", lambda)
            .Num("max_ratio", max_ratio)
            .Num("min_ratio", min_ratio)
            .Int("peak_distinct_per_round", static_cast<long long>(peak))
            .Num("mean_distinct_per_round", mean)
            .Num("alphabet_bits",
                 peak > 1 ? std::log2(static_cast<double>(peak)) : 0.0)
            .Bool("sandwich_holds", sandwich);
      }
    }
  }
  t.Print();
  std::printf(
      "\nShape check: larger lambda shrinks the per-round alphabet "
      "(CONGEST-friendly) while min ratio stays >= 1/(1+lambda).\n");

  // Per-rank broadcast fan-out: with node slices owned by R ranks, a
  // broadcasting node ships ONE copy of its payload to each remote rank
  // that owns at least one neighbor, instead of one copy per remote
  // neighbor. The engine prices both under any transport once ranks > 1
  // (the analytic census; the conformance battery pins it byte-for-byte
  // against the bytes the forked per-rank workers actually move), so
  // the sweep runs on the in-process transport. The win grows with
  // density: on a complete graph every rank owns neighbors of everyone,
  // so per-neighbor cost scales with n while fan-out scales with R.
  std::printf("\nPer-rank broadcast fan-out (one copy per neighbor-owning "
              "rank)\n\n");
  kcore::util::Table ft({"graph", "ranks", "fanout bytes", "per-nbr bytes",
                         "reduction"});
  struct FanGraph {
    std::string name;
    kcore::graph::Graph g;
  };
  std::vector<FanGraph> fan_graphs;
  for (const auto& w : kcore::bench::StandardSuite(0.5, 13)) {
    fan_graphs.push_back({w.name, w.graph});
  }
  fan_graphs.push_back({"complete-128", kcore::graph::Complete(128)});
  {
    kcore::util::Rng rng(17);
    fan_graphs.push_back(
        {"dense-gnp-256",
         kcore::graph::ErdosRenyiGnp(256, 0.5, rng)});
  }
  for (const auto& fg : fan_graphs) {
    const int T = kcore::core::RoundsForEpsilon(fg.g.num_nodes(), 0.5);
    for (int ranks : {4, 8}) {
      kcore::core::CompactOptions opts;
      opts.rounds = T;
      opts.ranks = ranks;
      const auto res = kcore::core::RunCompactElimination(fg.g, opts);
      const std::size_t fanout = res.totals.bcast_bytes_sent;
      const std::size_t per_nbr = res.totals.bcast_bytes_per_neighbor;
      const double reduction =
          fanout > 0 ? static_cast<double>(per_nbr) /
                           static_cast<double>(fanout)
                     : 1.0;
      ft.Row()
          .Str(fg.name)
          .Int(ranks)
          .UInt(fanout)
          .UInt(per_nbr)
          .Dbl(reduction, 2);
      if (docp != nullptr) {
        docp->AddRow()
            .Str("section", "per_rank_fanout")
            .Str("graph", fg.name)
            .Int("n", fg.g.num_nodes())
            .Int("edges", static_cast<long long>(fg.g.num_edges()))
            .Int("rounds", T)
            .Int("ranks", ranks)
            .Int("bcast_fanout_bytes", static_cast<long long>(fanout))
            .Int("bcast_per_neighbor_bytes",
                 static_cast<long long>(per_nbr))
            .Num("reduction", reduction);
      }
    }
  }
  ft.Print();
  std::printf(
      "\nShape check: reduction ~1x on sparse graphs (few neighbors per "
      "remote rank) and approaches n/(ranks-1) on dense ones.\n");
  if (docp != nullptr) {
    const std::string path = flags.GetString("json");
    if (!doc.WriteFile(path)) {
      std::fprintf(stderr, "bench_message_size: cannot write %s\n",
                   path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
