// Shared workload definitions for the experiment harness.
//
// The suite stands in for the real-world datasets of the paper's
// full-version experiments (see DESIGN.md, substitutions table): the
// heavy-tailed / community-structured models reproduce the degree
// structure that drives the empirical convergence behaviour.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace kcore::bench {

struct Workload {
  std::string name;
  graph::Graph graph;
};

// The standard suite. `scale` multiplies the baseline sizes (1 = default).
inline std::vector<Workload> StandardSuite(double scale = 1.0,
                                           std::uint64_t seed = 1) {
  util::Rng rng(seed);
  const auto sz = [scale](double base) {
    return static_cast<graph::NodeId>(base * scale);
  };
  std::vector<Workload> suite;
  suite.push_back({"ba-pref-attach", graph::BarabasiAlbert(sz(4000), 4, rng)});
  suite.push_back(
      {"powerlaw-config",
       graph::PowerLawConfiguration(sz(4000), 2.3, 2, 80, rng)});
  suite.push_back({"erdos-renyi", graph::ErdosRenyiGnp(
                                      sz(4000), 10.0 / (sz(4000)), rng)});
  suite.push_back({"rmat", graph::Rmat(12, 6.0, 0.57, 0.19, 0.19, rng)});
  suite.push_back(
      {"communities", graph::PlantedPartition(sz(1200), 8, 0.12, 0.002, rng)});
  suite.push_back({"small-world", graph::WattsStrogatz(sz(4000), 4, 0.1, rng)});
  return suite;
}

// Smaller suite for experiments that need exact maximal densities r(v)
// (the full diminishingly-dense decomposition is flow-heavy).
inline std::vector<Workload> SmallSuite(std::uint64_t seed = 2) {
  util::Rng rng(seed);
  std::vector<Workload> suite;
  suite.push_back({"ba-small", graph::BarabasiAlbert(400, 3, rng)});
  suite.push_back({"er-small", graph::ErdosRenyiGnp(400, 0.025, rng)});
  suite.push_back(
      {"comm-small", graph::PlantedPartition(300, 5, 0.2, 0.01, rng)});
  return suite;
}

}  // namespace kcore::bench
