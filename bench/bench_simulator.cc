// EXP-9: simulator throughput (google-benchmark).
//
// The LOCAL-model engine is the substrate for every experiment; this
// bench reports edge-rounds/sec for the compact elimination protocol and
// raw engine stepping across graph sizes, so the cost model behind the
// other experiments is explicit.
#include <benchmark/benchmark.h>

#include "core/compact.h"
#include "core/orientation.h"
#include "distsim/engine.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/rng.h"

namespace {

using kcore::graph::Graph;

Graph MakeBa(std::int64_t n) {
  kcore::util::Rng rng(static_cast<std::uint64_t>(n));
  return kcore::graph::BarabasiAlbert(static_cast<kcore::graph::NodeId>(n), 4,
                                      rng);
}

void BM_CompactElimination(benchmark::State& state) {
  const Graph g = MakeBa(state.range(0));
  const int T = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
  for (auto _ : state) {
    kcore::core::CompactOptions opts;
    opts.rounds = T;
    benchmark::DoNotOptimize(kcore::core::RunCompactElimination(g, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()) * T);
  state.counters["edge_rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()) * T),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CompactElimination)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_OrientationPipeline(benchmark::State& state) {
  const Graph g = MakeBa(state.range(0));
  const int T = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kcore::core::RunDistributedOrientation(g, T));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()) * T);
}
BENCHMARK(BM_OrientationPipeline)->Arg(1000)->Arg(4000);

// Raw engine overhead: a protocol that only re-broadcasts one value.
class EchoProtocol : public kcore::distsim::Protocol {
 public:
  void Init(kcore::distsim::NodeContext& ctx) override {
    ctx.Broadcast({1.0});
  }
  void Round(kcore::distsim::NodeContext& ctx) override {
    double sum = 0.0;
    for (std::size_t i = 0; i < ctx.neighbors().size(); ++i) {
      const kcore::distsim::Payload* p = ctx.NeighborBroadcast(i);
      if (p != nullptr) sum += (*p)[0];
    }
    benchmark::DoNotOptimize(sum);
    ctx.Broadcast({1.0});
  }
};

void BM_EngineStep(benchmark::State& state) {
  const Graph g = MakeBa(state.range(0));
  for (auto _ : state) {
    kcore::distsim::Engine engine(g);
    EchoProtocol proto;
    engine.Run(proto, 10);
    benchmark::DoNotOptimize(engine.totals().messages);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()) * 10);
}
BENCHMARK(BM_EngineStep)->Arg(1000)->Arg(8000);

void BM_WeightedCorenessExact(benchmark::State& state) {
  const Graph g = MakeBa(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kcore::seq::WeightedCoreness(g));
  }
}
BENCHMARK(BM_WeightedCorenessExact)->Arg(4000)->Arg(16000);

}  // namespace

BENCHMARK_MAIN();
