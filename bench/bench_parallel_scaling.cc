// Thread-scaling of the parallel round scheduler — BOTH phases.
//
// Two workloads on a heavy-tailed graph, each run with the engine's
// thread pool at 1, 2, 4, and 8 workers:
//
//   compute-heavy:  compact elimination (Algorithm 2) — per-node Update
//                   dominates; the collect phase is light.
//   collect-heavy:  a randomized gossip protocol (per-node RNG streams,
//                   variable-size broadcasts plus p2p sends every round)
//                   — the round census + two-pass p2p delivery dominate,
//                   so this row moves only because CollectRound itself is
//                   sharded now, not just the compute sweep.
//
// Reported rounds/sec therefore include the collect phase. Because the
// scheduler is deterministic end to end, every thread count computes
// bit-identical results — verified per row so a scaling win can never
// hide a correctness regression. Note: speedups only materialize when
// the machine actually has the cores; on a 1-core container every row
// degenerates to ~1x and that is the expected reading, not a bug.
//
// A third section probes the shard-load balancer on skewed graphs (star,
// power-law, BA): per-shard degree+1 weight under the equal-count split
// vs ThreadPool::WeightedShardBounds. The spread column (max shard
// weight / mean) is a pure partition property, so it reads the same on
// any machine — on a star the equal-count split leaves shard 0 carrying
// nearly everything and the weighted split flattens it. A balanced
// gossip run (1-thread vs 8-thread weighted, rebalancing every 4 rounds)
// rides along as a determinism cross-check on exactly these graphs —
// with both the shared-memory and the serialized (alltoallv-style)
// transports, reporting the serialized rows' real wire volume.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/compact.h"
#include "distsim/engine.h"
#include "distsim/thread_pool.h"
#include "distsim/transport.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace kcore;

constexpr std::uint64_t kMasterSeed = 2019;  // engine RNG-stream seed knob

// Collect-stressor: every node draws from its private stream
// (NodeContext::Rng), broadcasts a 1-4 entry payload, and sends a p2p
// message to one random neighbor each round. Inbox contents are folded
// into per-node digests so cross-thread-count runs can be compared.
class GossipStress : public distsim::Protocol {
 public:
  explicit GossipStress(graph::NodeId n)
      : value_(n, 0.0), digest_(n, 0xcbf29ce484222325ULL) {}

  void Init(distsim::NodeContext& ctx) override {
    value_[ctx.id()] = ctx.Rng().NextDouble();
    ctx.Broadcast({value_[ctx.id()]});
  }

  void Round(distsim::NodeContext& ctx) override {
    const graph::NodeId v = ctx.id();
    std::uint64_t& h = digest_[v];
    for (const distsim::InMessage& m : ctx.Messages()) {
      h = h * 0x100000001b3ULL ^ m.from;
      value_[v] += m.payload[0];
    }
    const auto nbrs = ctx.neighbors();
    if (!nbrs.empty()) {
      const std::size_t pick = ctx.Rng().NextBounded(nbrs.size());
      ctx.Send(nbrs[pick].to, {value_[v]});
    }
    distsim::Payload p;
    const std::size_t len = 1 + v % 4;
    for (std::size_t k = 0; k < len; ++k) p.push_back(value_[v] + k);
    ctx.Broadcast(std::move(p));
  }

  const std::vector<std::uint64_t>& digest() const { return digest_; }

 private:
  std::vector<double> value_;
  std::vector<std::uint64_t> digest_;
};

int RunComputeHeavy(const graph::Graph& g) {
  const int T = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  std::printf(
      "\n[compute-heavy] compact elimination, T=%d rounds, eps=0.5\n", T);

  core::CompactOptions base;
  base.rounds = T;
  base.num_threads = 1;
  base.seed = kMasterSeed;
  const core::CompactResult reference = core::RunCompactElimination(g, base);

  util::Table table({"threads", "seconds", "rounds_per_sec", "speedup",
                     "deterministic"});
  double seq_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    core::CompactOptions opts = base;
    opts.num_threads = threads;
    // Best of 3 runs: the pool is recreated per run, so pool spin-up is
    // included — that is the cost real callers pay.
    double best = -1.0;
    std::vector<double> b;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer timer;
      core::CompactResult res = core::RunCompactElimination(g, opts);
      const double s = timer.Seconds();
      if (best < 0.0 || s < best) best = s;
      b = std::move(res.b);
    }
    if (threads == 1) seq_seconds = best;
    table.Row()
        .Int(threads)
        .Dbl(best, 3)
        .Dbl(static_cast<double>(T) / best, 1)
        .Dbl(seq_seconds / best, 2)
        .Str(b == reference.b ? "yes" : "NO — BUG");
    if (b != reference.b) {
      std::fprintf(stderr, "determinism violation at %d threads\n", threads);
      return 1;
    }
  }
  table.Print();
  return 0;
}

int RunCollectHeavy(const graph::Graph& g, int rounds) {
  std::printf(
      "\n[collect-heavy] randomized gossip (broadcast + p2p + per-node "
      "RNG), %d rounds, master seed %llu\n",
      rounds, static_cast<unsigned long long>(kMasterSeed));

  std::vector<std::uint64_t> reference;
  util::Table table({"threads", "seconds", "rounds_per_sec", "speedup",
                     "deterministic"});
  double seq_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double best = -1.0;
    std::vector<std::uint64_t> digest;
    for (int rep = 0; rep < 3; ++rep) {
      GossipStress proto(g.num_nodes());
      distsim::Engine engine(g, threads);
      engine.SetSeed(kMasterSeed);
      util::Timer timer;
      engine.Start(proto);
      for (int t = 0; t < rounds; ++t) engine.Step(proto);
      const double s = timer.Seconds();
      if (best < 0.0 || s < best) best = s;
      digest = proto.digest();
    }
    if (threads == 1) {
      seq_seconds = best;
      reference = digest;
    }
    table.Row()
        .Int(threads)
        .Dbl(best, 3)
        .Dbl(static_cast<double>(rounds) / best, 1)
        .Dbl(seq_seconds / best, 2)
        .Str(digest == reference ? "yes" : "NO — BUG");
    if (digest != reference) {
      std::fprintf(stderr, "determinism violation at %d threads\n", threads);
      return 1;
    }
  }
  table.Print();
  return 0;
}

// Per-shard degree+1 load of a partition; spread = max / mean. The
// number the balancer exists to shrink.
struct ShardLoad {
  std::uint64_t max = 0;
  double mean = 0.0;
  double spread() const { return mean > 0.0 ? static_cast<double>(max) / mean : 0.0; }
};

ShardLoad LoadOf(const std::vector<std::uint64_t>& weights,
                 const std::vector<std::uint64_t>& bounds) {
  ShardLoad out;
  const int shards = static_cast<int>(bounds.size()) - 1;
  std::uint64_t total = 0;
  for (int s = 0; s < shards; ++s) {
    std::uint64_t w = 0;
    for (std::uint64_t i = bounds[s]; i < bounds[s + 1]; ++i) w += weights[i];
    out.max = std::max(out.max, w);
    total += w;
  }
  out.mean = static_cast<double>(total) / shards;
  return out;
}

void ShardSpreadRows(util::Table& table, const char* name,
                     const graph::Graph& g, int shards) {
  std::vector<std::uint64_t> w(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    w[v] = static_cast<std::uint64_t>(g.Degree(v)) + 1;
  }
  std::vector<std::uint64_t> equal(static_cast<std::size_t>(shards) + 1);
  for (int s = 0; s < shards; ++s) {
    equal[s] = distsim::ThreadPool::ShardBounds(0, w.size(), s, shards).first;
  }
  equal[shards] = w.size();
  const std::vector<std::uint64_t> weighted =
      distsim::ThreadPool::WeightedShardBounds(w, shards);
  const ShardLoad le = LoadOf(w, equal);
  const ShardLoad lw = LoadOf(w, weighted);
  table.Row()
      .Str(name)
      .Str("equal-count")
      .UInt(le.max)
      .Dbl(le.mean, 1)
      .Dbl(le.spread(), 2);
  table.Row()
      .Str(name)
      .Str("weighted")
      .UInt(lw.max)
      .Dbl(lw.mean, 1)
      .Dbl(lw.spread(), 2);
}

// Gossip on a skewed graph, 1-thread reference vs 8 threads with
// degree-weighted shards rebuilt every 4 rounds — the determinism
// contract exercised on the partition shapes balancing produces, for
// BOTH transports. The serialized row also reports the wire volume it
// packed (bytes_sent must equal bytes_received, and be independent of
// the thread count — cross-checked against a 1-thread serialized run).
int RunBalancedDeterminism(const graph::Graph& g, const char* name,
                           int rounds) {
  GossipStress ref(g.num_nodes());
  distsim::Engine e1(g, 1);
  e1.SetSeed(kMasterSeed);
  e1.Start(ref);
  for (int t = 0; t < rounds; ++t) e1.Step(ref);

  const auto run_threaded = [&](GossipStress& proto,
                                distsim::TransportKind kind) {
    auto engine = std::make_unique<distsim::Engine>(g, 8);
    engine->SetSeed(kMasterSeed);
    // Shard even below the engine's default 256-node cutoff, so the
    // cross-check exercises the threaded path at any bench size.
    engine->SetParallelCutoff(1);
    engine->SetShardBalancing(true);
    engine->SetRebalanceInterval(4);
    engine->SetTransport(distsim::MakeTransport(kind));
    engine->Start(proto);
    for (int t = 0; t < rounds; ++t) engine->Step(proto);
    return engine;
  };

  GossipStress bal(g.num_nodes());
  const auto e8 = run_threaded(bal, distsim::TransportKind::kSharedMemory);
  const bool shm_ok = ref.digest() == bal.digest();
  std::printf("  %-10s balanced 8-thread shared:     %s (bytes_sent=%zu)\n",
              name, shm_ok ? "bit-identical" : "MISMATCH — BUG",
              e8->totals().bytes_sent);

  GossipStress ser(g.num_nodes());
  const auto es = run_threaded(ser, distsim::TransportKind::kSerialized);
  const distsim::Totals st = es->totals();
  // A 1-thread serialized run pins the byte counts' partition
  // independence.
  GossipStress ser1(g.num_nodes());
  distsim::Engine es1(g, 1);
  es1.SetSeed(kMasterSeed);
  es1.SetTransport(
      distsim::MakeTransport(distsim::TransportKind::kSerialized));
  es1.Start(ser1);
  for (int t = 0; t < rounds; ++t) es1.Step(ser1);
  const bool ser_ok = ref.digest() == ser.digest() &&
                      st.bytes_sent == st.bytes_received &&
                      st.bytes_sent == es1.totals().bytes_sent &&
                      st.bytes_sent > 0;
  std::printf("  %-10s balanced 8-thread serialized: %s (bytes_sent=%zu)\n",
              name, ser_ok ? "bit-identical" : "MISMATCH — BUG",
              st.bytes_sent);

  // The multi-process backend: 4 forked worker ranks under a sequential
  // engine (ranks are orthogonal to threads), every staged byte crossing
  // real process boundaries over socketpairs. Byte accounting must match
  // the serialized run exactly — the segment encoding is shared.
  GossipStress proc(g.num_nodes());
  distsim::Engine ep(g, 1);
  ep.SetSeed(kMasterSeed);
  ep.SetTransport(distsim::MakeTransport(distsim::TransportKind::kProcess));
  ep.SetRankCount(4);
  ep.Start(proc);
  for (int t = 0; t < rounds; ++t) ep.Step(proc);
  const distsim::Totals pt = ep.totals();
  const bool proc_ok = ref.digest() == proc.digest() &&
                       pt.bytes_sent == pt.bytes_received &&
                       pt.bytes_sent == st.bytes_sent;
  std::printf("  %-10s 4-rank process exchange:      %s (bytes_sent=%zu)\n",
              name, proc_ok ? "bit-identical" : "MISMATCH — BUG",
              pt.bytes_sent);
  return shm_ok && ser_ok && proc_ok ? 0 : 1;
}

int RunShardBalance(const graph::Graph& ba) {
  constexpr int kShards = 8;
  std::printf(
      "\n[shard-balance] per-shard degree+1 load, equal-count vs weighted "
      "partition, %d shards\n", kShards);
  const graph::NodeId n = ba.num_nodes();
  const graph::Graph star = graph::Star(n);
  util::Rng rng(11);
  const graph::Graph pl = graph::PowerLawConfiguration(
      n, 2.1, 2, std::max<graph::NodeId>(4, n / 10), rng);

  util::Table table({"graph", "partition", "max_shard_w", "mean_shard_w",
                     "spread"});
  ShardSpreadRows(table, "star", star, kShards);
  ShardSpreadRows(table, "power-law", pl, kShards);
  ShardSpreadRows(table, "ba", ba, kShards);
  table.Print();

  std::printf("\n  determinism cross-check (30 rounds of gossip):\n");
  if (int rc = RunBalancedDeterminism(star, "star", 30)) return rc;
  if (int rc = RunBalancedDeterminism(pl, "power-law", 30)) return rc;
  return RunBalancedDeterminism(ba, "ba", 30);
}

}  // namespace

int main(int argc, char** argv) {
  long long requested = 100000;
  if (argc > 1) requested = std::atoll(argv[1]);
  if (requested < 16 || requested > 50000000) {
    std::fprintf(stderr, "usage: %s [num_nodes in 16..50000000]\n", argv[0]);
    return 2;
  }
  const graph::NodeId n = static_cast<graph::NodeId>(requested);

  util::Rng rng(7);
  util::Timer gen_timer;
  const graph::Graph g = graph::BarabasiAlbert(n, 4, rng);
  std::printf("graph: BA n=%u m=%zu (generated in %.2fs)\n", g.num_nodes(),
              g.num_edges(), gen_timer.Seconds());

  if (int rc = RunComputeHeavy(g)) return rc;
  if (int rc = RunCollectHeavy(g, /*rounds=*/30)) return rc;
  return RunShardBalance(g);
}
