// Thread-scaling of the parallel round scheduler.
//
// Runs the compact elimination protocol (Algorithm 2) on a 100k-node
// heavy-tailed graph with the engine's thread pool at 1, 2, 4, and 8
// workers and reports rounds/sec plus speedup over the sequential run.
// Because the scheduler is deterministic, every configuration computes the
// same surviving numbers — verified here so a scaling win can never hide
// a correctness regression. Note: speedups only materialize when the
// machine actually has the cores; on a 1-core container every row
// degenerates to ~1x and that is the expected reading, not a bug.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/compact.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace kcore;

  long long requested = 100000;
  if (argc > 1) requested = std::atoll(argv[1]);
  if (requested < 16 || requested > 50000000) {
    std::fprintf(stderr, "usage: %s [num_nodes in 16..50000000]\n", argv[0]);
    return 2;
  }
  const graph::NodeId n = static_cast<graph::NodeId>(requested);

  util::Rng rng(7);
  util::Timer gen_timer;
  const graph::Graph g = graph::BarabasiAlbert(n, 4, rng);
  std::printf("graph: BA n=%u m=%zu (generated in %.2fs)\n", g.num_nodes(),
              g.num_edges(), gen_timer.Seconds());

  const int T = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  std::printf("protocol: compact elimination, T=%d rounds, eps=0.5\n\n", T);

  // Warm-up + reference result at 1 thread.
  core::CompactOptions base;
  base.rounds = T;
  base.num_threads = 1;
  const core::CompactResult reference = core::RunCompactElimination(g, base);

  util::Table table({"threads", "seconds", "rounds_per_sec", "speedup",
                     "deterministic"});
  double seq_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    core::CompactOptions opts = base;
    opts.num_threads = threads;
    // Best of 3 runs: the pool is recreated per run, so pool spin-up is
    // included — that is the cost real callers pay.
    double best = -1.0;
    std::vector<double> b;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer timer;
      core::CompactResult res = core::RunCompactElimination(g, opts);
      const double s = timer.Seconds();
      if (best < 0.0 || s < best) best = s;
      b = std::move(res.b);
    }
    if (threads == 1) seq_seconds = best;
    table.Row()
        .Int(threads)
        .Dbl(best, 3)
        .Dbl(static_cast<double>(T) / best, 1)
        .Dbl(seq_seconds / best, 2)
        .Str(b == reference.b ? "yes" : "NO — BUG");
    if (b != reference.b) {
      std::fprintf(stderr, "determinism violation at %d threads\n", threads);
      return 1;
    }
  }
  table.Print();
  return 0;
}
