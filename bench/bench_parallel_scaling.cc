// Thread-scaling of the parallel round scheduler — BOTH phases.
//
// Two workloads on a heavy-tailed graph, each run with the engine's
// thread pool at 1, 2, 4, and 8 workers:
//
//   compute-heavy:  compact elimination (Algorithm 2) — per-node Update
//                   dominates; the collect phase is light.
//   collect-heavy:  a randomized gossip protocol (per-node RNG streams,
//                   variable-size broadcasts plus p2p sends every round)
//                   — the round census + two-pass p2p delivery dominate,
//                   so this row moves only because CollectRound itself is
//                   sharded now, not just the compute sweep.
//
// Reported rounds/sec therefore include the collect phase. Because the
// scheduler is deterministic end to end, every thread count computes
// bit-identical results — verified per row so a scaling win can never
// hide a correctness regression. Note: speedups only materialize when
// the machine actually has the cores; on a 1-core container every row
// degenerates to ~1x and that is the expected reading, not a bug.
//
// A third section probes the shard-load balancer on skewed graphs (star,
// power-law, BA): per-shard degree+1 weight under the equal-count split
// vs ThreadPool::WeightedShardBounds. The spread column (max shard
// weight / mean) is a pure partition property, so it reads the same on
// any machine — on a star the equal-count split leaves shard 0 carrying
// nearly everything and the weighted split flattens it. A balanced
// gossip run (1-thread vs 8-thread weighted, rebalancing every 4 rounds)
// rides along as a determinism cross-check on exactly these graphs —
// with both the shared-memory and the serialized (alltoallv-style)
// transports, reporting the serialized rows' real wire volume.
//
// A fourth section (--ingest-edges) is the huge-graph ingestion bench
// (ROADMAP item 2): a synthetic BA graph of the requested edge count is
// written in BOTH on-disk formats, loaded back through the line-by-line
// text parser and the mmap binary loader (graph/binio.h), and the loaded
// graph — verified bit-identical across the two paths by edge-stream
// hash — is pushed through Compact and Montresor. Rank-sliced loads
// (LoadBinarySlice over the engine's rank-bounds arithmetic) ride along
// with a coverage check. Reported: edges/sec per format, per-rank slice
// sizes, rounds/sec for both algorithms at this scale.
//
// --json=PATH writes every section's rows to a committed
// BENCH_parallel_scaling.json results file (same trajectory convention
// as BENCH_dynamic.json).
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/json.h"
#include "core/compact.h"
#include "core/montresor.h"
#include "distsim/engine.h"
#include "distsim/thread_pool.h"
#include "distsim/transport.h"
#include "graph/binio.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace kcore;

constexpr std::uint64_t kMasterSeed = 2019;  // engine RNG-stream seed knob

constexpr const char kUsage[] =
    "usage: bench_parallel_scaling [options] [num_nodes]\n"
    "\n"
    "  --n=N             scaling-section graph size, 16..50000000\n"
    "                    (default 100000; a positional argument works too)\n"
    "  --ingest-edges=M  ingestion-section synthetic graph size in edges;\n"
    "                    0 skips the section (default 10000000)\n"
    "  --ranks=R         rank-sliced loads in the ingestion section\n"
    "                    (default 4)\n"
    "  --json=PATH       write all rows as JSON (the\n"
    "                    BENCH_parallel_scaling.json row format)\n"
    "  --help            this text\n";

// Collect-stressor: every node draws from its private stream
// (NodeContext::Rng), broadcasts a 1-4 entry payload, and sends a p2p
// message to one random neighbor each round. Inbox contents are folded
// into per-node digests so cross-thread-count runs can be compared.
class GossipStress : public distsim::Protocol {
 public:
  explicit GossipStress(graph::NodeId n)
      : value_(n, 0.0), digest_(n, 0xcbf29ce484222325ULL) {}

  void Init(distsim::NodeContext& ctx) override {
    value_[ctx.id()] = ctx.Rng().NextDouble();
    ctx.Broadcast({value_[ctx.id()]});
  }

  void Round(distsim::NodeContext& ctx) override {
    const graph::NodeId v = ctx.id();
    std::uint64_t& h = digest_[v];
    for (const distsim::InMessage& m : ctx.Messages()) {
      h = h * 0x100000001b3ULL ^ m.from;
      value_[v] += m.payload[0];
    }
    const auto nbrs = ctx.neighbors();
    if (!nbrs.empty()) {
      const std::size_t pick = ctx.Rng().NextBounded(nbrs.size());
      ctx.Send(nbrs[pick].to, {value_[v]});
    }
    distsim::Payload p;
    const std::size_t len = 1 + v % 4;
    for (std::size_t k = 0; k < len; ++k) p.push_back(value_[v] + k);
    ctx.Broadcast(std::move(p));
  }

  const std::vector<std::uint64_t>& digest() const { return digest_; }

 private:
  std::vector<double> value_;
  std::vector<std::uint64_t> digest_;
};

int RunComputeHeavy(const graph::Graph& g, bench::JsonDoc* doc) {
  const int T = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  std::printf(
      "\n[compute-heavy] compact elimination, T=%d rounds, eps=0.5\n", T);

  core::CompactOptions base;
  base.rounds = T;
  base.num_threads = 1;
  base.seed = kMasterSeed;
  const core::CompactResult reference = core::RunCompactElimination(g, base);

  util::Table table({"threads", "seconds", "rounds_per_sec", "speedup",
                     "deterministic"});
  double seq_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    core::CompactOptions opts = base;
    opts.num_threads = threads;
    // Best of 3 runs: the pool is recreated per run, so pool spin-up is
    // included — that is the cost real callers pay.
    double best = -1.0;
    std::vector<double> b;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer timer;
      core::CompactResult res = core::RunCompactElimination(g, opts);
      const double s = timer.Seconds();
      if (best < 0.0 || s < best) best = s;
      b = std::move(res.b);
    }
    if (threads == 1) seq_seconds = best;
    table.Row()
        .Int(threads)
        .Dbl(best, 3)
        .Dbl(static_cast<double>(T) / best, 1)
        .Dbl(seq_seconds / best, 2)
        .Str(b == reference.b ? "yes" : "NO — BUG");
    if (doc != nullptr) {
      doc->AddRow()
          .Str("section", "compute-heavy")
          .Int("n", g.num_nodes())
          .Int("edges", static_cast<long long>(g.num_edges()))
          .Int("threads", threads)
          .Int("rounds", T)
          .Num("seconds", best)
          .Num("rounds_per_sec", static_cast<double>(T) / best)
          .Num("speedup", seq_seconds / best)
          .Bool("deterministic", b == reference.b);
    }
    if (b != reference.b) {
      std::fprintf(stderr, "determinism violation at %d threads\n", threads);
      return 1;
    }
  }
  table.Print();
  return 0;
}

int RunCollectHeavy(const graph::Graph& g, int rounds, bench::JsonDoc* doc) {
  std::printf(
      "\n[collect-heavy] randomized gossip (broadcast + p2p + per-node "
      "RNG), %d rounds, master seed %llu\n",
      rounds, static_cast<unsigned long long>(kMasterSeed));

  std::vector<std::uint64_t> reference;
  util::Table table({"threads", "seconds", "rounds_per_sec", "speedup",
                     "deterministic"});
  double seq_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double best = -1.0;
    std::vector<std::uint64_t> digest;
    for (int rep = 0; rep < 3; ++rep) {
      GossipStress proto(g.num_nodes());
      distsim::Engine engine(g, threads);
      engine.SetSeed(kMasterSeed);
      util::Timer timer;
      engine.Start(proto);
      for (int t = 0; t < rounds; ++t) engine.Step(proto);
      const double s = timer.Seconds();
      if (best < 0.0 || s < best) best = s;
      digest = proto.digest();
    }
    if (threads == 1) {
      seq_seconds = best;
      reference = digest;
    }
    table.Row()
        .Int(threads)
        .Dbl(best, 3)
        .Dbl(static_cast<double>(rounds) / best, 1)
        .Dbl(seq_seconds / best, 2)
        .Str(digest == reference ? "yes" : "NO — BUG");
    if (doc != nullptr) {
      doc->AddRow()
          .Str("section", "collect-heavy")
          .Int("n", g.num_nodes())
          .Int("edges", static_cast<long long>(g.num_edges()))
          .Int("threads", threads)
          .Int("rounds", rounds)
          .Num("seconds", best)
          .Num("rounds_per_sec", static_cast<double>(rounds) / best)
          .Num("speedup", seq_seconds / best)
          .Bool("deterministic", digest == reference);
    }
    if (digest != reference) {
      std::fprintf(stderr, "determinism violation at %d threads\n", threads);
      return 1;
    }
  }
  table.Print();
  return 0;
}

// Per-shard degree+1 load of a partition; spread = max / mean. The
// number the balancer exists to shrink.
struct ShardLoad {
  std::uint64_t max = 0;
  double mean = 0.0;
  double spread() const { return mean > 0.0 ? static_cast<double>(max) / mean : 0.0; }
};

ShardLoad LoadOf(const std::vector<std::uint64_t>& weights,
                 const std::vector<std::uint64_t>& bounds) {
  ShardLoad out;
  const int shards = static_cast<int>(bounds.size()) - 1;
  std::uint64_t total = 0;
  for (int s = 0; s < shards; ++s) {
    std::uint64_t w = 0;
    for (std::uint64_t i = bounds[s]; i < bounds[s + 1]; ++i) w += weights[i];
    out.max = std::max(out.max, w);
    total += w;
  }
  out.mean = static_cast<double>(total) / shards;
  return out;
}

void ShardSpreadRows(util::Table& table, const char* name,
                     const graph::Graph& g, int shards,
                     bench::JsonDoc* doc) {
  std::vector<std::uint64_t> w(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    w[v] = static_cast<std::uint64_t>(g.Degree(v)) + 1;
  }
  std::vector<std::uint64_t> equal(static_cast<std::size_t>(shards) + 1);
  for (int s = 0; s < shards; ++s) {
    equal[s] = distsim::ThreadPool::ShardBounds(0, w.size(), s, shards).first;
  }
  equal[shards] = w.size();
  const std::vector<std::uint64_t> weighted =
      distsim::ThreadPool::WeightedShardBounds(w, shards);
  const ShardLoad le = LoadOf(w, equal);
  const ShardLoad lw = LoadOf(w, weighted);
  table.Row()
      .Str(name)
      .Str("equal-count")
      .UInt(le.max)
      .Dbl(le.mean, 1)
      .Dbl(le.spread(), 2);
  table.Row()
      .Str(name)
      .Str("weighted")
      .UInt(lw.max)
      .Dbl(lw.mean, 1)
      .Dbl(lw.spread(), 2);
  if (doc != nullptr) {
    for (const auto& [partition, load] :
         {std::pair{"equal-count", le}, std::pair{"weighted", lw}}) {
      doc->AddRow()
          .Str("section", "shard-balance")
          .Str("graph", name)
          .Str("partition", partition)
          .Int("shards", shards)
          .Int("max_shard_w", static_cast<long long>(load.max))
          .Num("mean_shard_w", load.mean)
          .Num("spread", load.spread());
    }
  }
}

// Gossip on a skewed graph, 1-thread reference vs 8 threads with
// degree-weighted shards rebuilt every 4 rounds — the determinism
// contract exercised on the partition shapes balancing produces, for
// BOTH transports. The serialized row also reports the wire volume it
// packed (bytes_sent must equal bytes_received, and be independent of
// the thread count — cross-checked against a 1-thread serialized run).
int RunBalancedDeterminism(const graph::Graph& g, const char* name,
                           int rounds, bench::JsonDoc* doc) {
  GossipStress ref(g.num_nodes());
  distsim::Engine e1(g, 1);
  e1.SetSeed(kMasterSeed);
  e1.Start(ref);
  for (int t = 0; t < rounds; ++t) e1.Step(ref);

  const auto run_threaded = [&](GossipStress& proto,
                                distsim::TransportKind kind) {
    auto engine = std::make_unique<distsim::Engine>(g, 8);
    engine->SetSeed(kMasterSeed);
    // Shard even below the engine's default 256-node cutoff, so the
    // cross-check exercises the threaded path at any bench size.
    engine->SetParallelCutoff(1);
    engine->SetShardBalancing(true);
    engine->SetRebalanceInterval(4);
    engine->SetTransport(distsim::MakeTransport(kind));
    engine->Start(proto);
    for (int t = 0; t < rounds; ++t) engine->Step(proto);
    return engine;
  };

  GossipStress bal(g.num_nodes());
  const auto e8 = run_threaded(bal, distsim::TransportKind::kSharedMemory);
  const bool shm_ok = ref.digest() == bal.digest();
  std::printf("  %-10s balanced 8-thread shared:     %s (bytes_sent=%zu)\n",
              name, shm_ok ? "bit-identical" : "MISMATCH — BUG",
              e8->totals().bytes_sent);

  GossipStress ser(g.num_nodes());
  const auto es = run_threaded(ser, distsim::TransportKind::kSerialized);
  const distsim::Totals st = es->totals();
  // A 1-thread serialized run pins the byte counts' partition
  // independence.
  GossipStress ser1(g.num_nodes());
  distsim::Engine es1(g, 1);
  es1.SetSeed(kMasterSeed);
  es1.SetTransport(
      distsim::MakeTransport(distsim::TransportKind::kSerialized));
  es1.Start(ser1);
  for (int t = 0; t < rounds; ++t) es1.Step(ser1);
  const bool ser_ok = ref.digest() == ser.digest() &&
                      st.bytes_sent == st.bytes_received &&
                      st.bytes_sent == es1.totals().bytes_sent &&
                      st.bytes_sent > 0;
  std::printf("  %-10s balanced 8-thread serialized: %s (bytes_sent=%zu)\n",
              name, ser_ok ? "bit-identical" : "MISMATCH — BUG",
              st.bytes_sent);

  // The multi-process backend: 4 forked worker ranks under a sequential
  // engine (ranks are orthogonal to threads), every staged byte crossing
  // real process boundaries over socketpairs. Byte accounting must match
  // the serialized run exactly — the segment encoding is shared.
  GossipStress proc(g.num_nodes());
  distsim::Engine ep(g, 1);
  ep.SetSeed(kMasterSeed);
  ep.SetTransport(distsim::MakeTransport(distsim::TransportKind::kProcess));
  ep.SetRankCount(4);
  ep.Start(proc);
  for (int t = 0; t < rounds; ++t) ep.Step(proc);
  const distsim::Totals pt = ep.totals();
  const bool proc_ok = ref.digest() == proc.digest() &&
                       pt.bytes_sent == pt.bytes_received &&
                       pt.bytes_sent == st.bytes_sent;
  std::printf("  %-10s 4-rank process exchange:      %s (bytes_sent=%zu)\n",
              name, proc_ok ? "bit-identical" : "MISMATCH — BUG",
              pt.bytes_sent);
  if (doc != nullptr) {
    const auto add = [&](const char* transport, std::size_t bytes, bool ok) {
      doc->AddRow()
          .Str("section", "balanced-determinism")
          .Str("graph", name)
          .Str("transport", transport)
          .Int("rounds", rounds)
          .Int("bytes_sent", static_cast<long long>(bytes))
          .Bool("deterministic", ok);
    };
    add("shared", e8->totals().bytes_sent, shm_ok);
    add("serialized", st.bytes_sent, ser_ok);
    add("process", pt.bytes_sent, proc_ok);
  }
  return shm_ok && ser_ok && proc_ok ? 0 : 1;
}

int RunShardBalance(const graph::Graph& ba, bench::JsonDoc* doc) {
  constexpr int kShards = 8;
  std::printf(
      "\n[shard-balance] per-shard degree+1 load, equal-count vs weighted "
      "partition, %d shards\n", kShards);
  const graph::NodeId n = ba.num_nodes();
  const graph::Graph star = graph::Star(n);
  util::Rng rng(11);
  const graph::Graph pl = graph::PowerLawConfiguration(
      n, 2.1, 2, std::max<graph::NodeId>(4, n / 10), rng);

  util::Table table({"graph", "partition", "max_shard_w", "mean_shard_w",
                     "spread"});
  ShardSpreadRows(table, "star", star, kShards, doc);
  ShardSpreadRows(table, "power-law", pl, kShards, doc);
  ShardSpreadRows(table, "ba", ba, kShards, doc);
  table.Print();

  std::printf("\n  determinism cross-check (30 rounds of gossip):\n");
  if (int rc = RunBalancedDeterminism(star, "star", 30, doc)) return rc;
  if (int rc = RunBalancedDeterminism(pl, "power-law", 30, doc)) return rc;
  return RunBalancedDeterminism(ba, "ba", 30, doc);
}

// Order-sensitive FNV-1a over the edge stream (endpoints + weight bit
// patterns). Two loads are "bit-identical" iff n and this hash agree —
// letting the bench compare a text load against a binary load without
// holding both multi-hundred-MB graphs in memory at once.
std::uint64_t EdgeStreamHash(const graph::Graph& g) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t x) {
    h = (h ^ x) * 0x100000001b3ULL;
  };
  mix(g.num_nodes());
  for (const graph::Edge& e : g.edges()) {
    mix(e.u);
    mix(e.v);
    std::uint64_t wbits = 0;
    std::memcpy(&wbits, &e.w, sizeof(wbits));
    mix(wbits);
  }
  return h;
}

// The huge-graph ingestion bench (ROADMAP item 2): text parser vs mmap
// binary loader on a BA graph of ~target_edges edges, rank-sliced loads,
// then Compact + Montresor at that scale.
int RunIngestion(std::uint64_t target_edges, int ranks,
                 bench::JsonDoc* doc) {
  const graph::NodeId n = static_cast<graph::NodeId>(
      std::max<std::uint64_t>(16, target_edges / 4));
  std::printf("\n[ingestion] BA n=%u (targeting %llu edges), %d ranks\n", n,
              static_cast<unsigned long long>(target_edges), ranks);

  const std::string stem =
      "/tmp/kcore_bench_ingest_" + std::to_string(::getpid());
  const std::string bin_path = stem + ".bin";
  const std::string txt_path = stem + ".txt";

  std::uint64_t want_hash = 0;
  std::size_t m = 0;
  double save_bin_s = 0.0;
  double save_txt_s = 0.0;
  {
    util::Rng rng(7);
    util::Timer gen;
    const graph::Graph g = graph::BarabasiAlbert(n, 4, rng);
    m = g.num_edges();
    std::printf("  generated m=%zu in %.2fs\n", m, gen.Seconds());
    want_hash = EdgeStreamHash(g);
    util::Timer tb;
    if (!graph::SaveBinary(g, bin_path)) return 1;
    save_bin_s = tb.Seconds();
    util::Timer tt;
    if (!graph::SaveEdgeList(g, txt_path)) return 1;
    save_txt_s = tt.Seconds();
  }  // the generated graph is gone before any load is timed

  util::Table table({"path", "seconds", "edges_per_sec", "bit_identical"});
  const auto row = [&](const char* path, double seconds, bool same) {
    const double eps = static_cast<double>(m) / seconds;
    table.Row().Str(path).Dbl(seconds, 3).Dbl(eps, 0).Str(
        same ? "yes" : "NO — BUG");
    if (doc != nullptr) {
      doc->AddRow()
          .Str("section", "ingest-load")
          .Str("path", path)
          .Int("n", n)
          .Int("edges", static_cast<long long>(m))
          .Num("seconds", seconds)
          .Num("edges_per_sec", eps)
          .Bool("bit_identical", same);
    }
    return same;
  };

  bool ok = true;
  {
    util::Timer t;
    const auto text = graph::LoadEdgeList(txt_path, /*merge_parallel=*/false);
    const double s = t.Seconds();
    if (!text) return 1;
    ok &= row("text-parse", s, EdgeStreamHash(text->graph) == want_hash);
  }
  util::Timer t_bin;
  auto loaded = graph::LoadBinary(bin_path);
  const double bin_s = t_bin.Seconds();
  if (!loaded) return 1;
  ok &= row("binary-mmap", bin_s, EdgeStreamHash(loaded->graph) == want_hash);
  table.Print();
  std::printf("  save: binary %.2fs, text %.2fs\n", save_bin_s, save_txt_s);
  if (!ok) {
    std::fprintf(stderr, "ingestion: loaded graphs differ\n");
    return 1;
  }

  // Rank-sliced loads over the engine's ownership arithmetic: rank r
  // materializes only edges incident to its contiguous node range. Every
  // edge must land in its owners' slices — cross-rank edges in exactly
  // two — so the slice total is m plus the cross-edge count.
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(ranks) + 1);
  for (int r = 0; r < ranks; ++r) {
    bounds[r] = distsim::ThreadPool::ShardBounds(0, n, r, ranks).first;
  }
  bounds[ranks] = n;
  const auto owner_of = [&bounds, ranks](graph::NodeId v) {
    int r = 0;
    while (r + 1 < ranks && v >= bounds[r + 1]) ++r;
    return r;
  };
  std::uint64_t cross = 0;
  for (const graph::Edge& e : loaded->graph.edges()) {
    if (owner_of(e.u) != owner_of(e.v)) ++cross;
  }
  std::uint64_t slice_total = 0;
  util::Table slices({"rank", "owned_nodes", "slice_edges", "seconds"});
  for (int r = 0; r < ranks; ++r) {
    const std::uint64_t lo = bounds[r];
    const std::uint64_t hi = bounds[r + 1];
    util::Timer t;
    const auto slice = graph::LoadBinarySlice(
        bin_path, static_cast<graph::NodeId>(lo),
        static_cast<graph::NodeId>(hi));
    const double s = t.Seconds();
    if (!slice) return 1;
    slice_total += slice->graph.num_edges();
    slices.Row()
        .Int(r)
        .Int(static_cast<long long>(hi - lo))
        .Int(static_cast<long long>(slice->graph.num_edges()))
        .Dbl(s, 3);
    if (doc != nullptr) {
      doc->AddRow()
          .Str("section", "ingest-slice")
          .Int("rank", r)
          .Int("ranks", ranks)
          .Int("owned_nodes", static_cast<long long>(hi - lo))
          .Int("slice_edges", static_cast<long long>(slice->graph.num_edges()))
          .Num("seconds", s);
    }
  }
  slices.Print();
  if (slice_total != m + cross) {
    std::fprintf(stderr,
                 "ingestion: slice coverage broken: %llu slice edges vs "
                 "m=%zu + cross=%llu\n",
                 static_cast<unsigned long long>(slice_total), m,
                 static_cast<unsigned long long>(cross));
    return 1;
  }
  std::printf("  slice coverage: %llu = m + %llu cross-rank edges — ok\n",
              static_cast<unsigned long long>(slice_total),
              static_cast<unsigned long long>(cross));

  // Compact + Montresor at ingestion scale, on the binary-loaded graph.
  const graph::Graph& g = loaded->graph;
  {
    const int T = core::RoundsForEpsilon(n, 0.5);
    core::CompactOptions opts;
    opts.rounds = T;
    util::Timer t;
    const auto res = core::RunCompactElimination(g, opts);
    const double s = t.Seconds();
    std::printf("  compact:   T=%d rounds in %.2fs (%.1f rounds/s)\n", T, s,
                T / s);
    if (doc != nullptr) {
      doc->AddRow()
          .Str("section", "ingest-compute")
          .Str("algo", "compact")
          .Int("n", n)
          .Int("edges", static_cast<long long>(m))
          .Int("rounds", res.rounds)
          .Num("seconds", s)
          .Num("rounds_per_sec", T / s);
    }
  }
  {
    constexpr int kMaxRounds = 200;
    util::Timer t;
    const auto res = core::RunToConvergence(g, kMaxRounds);
    const double s = t.Seconds();
    const bool converged = res.rounds_executed < kMaxRounds;
    std::printf(
        "  montresor: %d rounds in %.2fs (%.1f rounds/s), converged=%s\n",
        res.rounds_executed, s, res.rounds_executed / s,
        converged ? "yes" : "no (capped)");
    if (doc != nullptr) {
      doc->AddRow()
          .Str("section", "ingest-compute")
          .Str("algo", "montresor")
          .Int("n", n)
          .Int("edges", static_cast<long long>(m))
          .Int("rounds", res.rounds_executed)
          .Num("seconds", s)
          .Num("rounds_per_sec", res.rounds_executed / s)
          .Bool("converged", converged);
    }
  }

  std::remove(bin_path.c_str());
  std::remove(txt_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  if (flags.Has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  long long requested = flags.GetInt("n", 100000);
  if (!flags.positional().empty()) {
    requested = std::atoll(flags.positional()[0].c_str());
  }
  if (requested < 16 || requested > 50000000) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const graph::NodeId n = static_cast<graph::NodeId>(requested);
  const long long ingest_edges = flags.GetInt("ingest-edges", 10000000);
  const int ranks = static_cast<int>(flags.GetInt("ranks", 4));
  if (ingest_edges < 0 || ranks < 1) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  bench::JsonDoc doc("parallel_scaling");
  bench::JsonDoc* docp = flags.Has("json") ? &doc : nullptr;

  util::Rng rng(7);
  util::Timer gen_timer;
  const graph::Graph g = graph::BarabasiAlbert(n, 4, rng);
  std::printf("graph: BA n=%u m=%zu (generated in %.2fs)\n", g.num_nodes(),
              g.num_edges(), gen_timer.Seconds());

  if (int rc = RunComputeHeavy(g, docp)) return rc;
  if (int rc = RunCollectHeavy(g, /*rounds=*/30, docp)) return rc;
  if (int rc = RunShardBalance(g, docp)) return rc;
  if (ingest_edges > 0) {
    if (int rc = RunIngestion(static_cast<std::uint64_t>(ingest_edges),
                              ranks, docp)) {
      return rc;
    }
  }

  if (docp != nullptr) {
    const std::string path = flags.GetString("json");
    if (!doc.WriteFile(path)) {
      std::fprintf(stderr, "bench_parallel_scaling: cannot write %s\n",
                   path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
