// Thread-scaling of the parallel round scheduler — BOTH phases.
//
// Two workloads on a heavy-tailed graph, each run with the engine's
// thread pool at 1, 2, 4, and 8 workers:
//
//   compute-heavy:  compact elimination (Algorithm 2) — per-node Update
//                   dominates; the collect phase is light.
//   collect-heavy:  a randomized gossip protocol (per-node RNG streams,
//                   variable-size broadcasts plus p2p sends every round)
//                   — the round census + two-pass p2p delivery dominate,
//                   so this row moves only because CollectRound itself is
//                   sharded now, not just the compute sweep.
//
// Reported rounds/sec therefore include the collect phase. Because the
// scheduler is deterministic end to end, every thread count computes
// bit-identical results — verified per row so a scaling win can never
// hide a correctness regression. Note: speedups only materialize when
// the machine actually has the cores; on a 1-core container every row
// degenerates to ~1x and that is the expected reading, not a bug.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/compact.h"
#include "distsim/engine.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace kcore;

constexpr std::uint64_t kMasterSeed = 2019;  // engine RNG-stream seed knob

// Collect-stressor: every node draws from its private stream
// (NodeContext::Rng), broadcasts a 1-4 entry payload, and sends a p2p
// message to one random neighbor each round. Inbox contents are folded
// into per-node digests so cross-thread-count runs can be compared.
class GossipStress : public distsim::Protocol {
 public:
  explicit GossipStress(graph::NodeId n)
      : value_(n, 0.0), digest_(n, 0xcbf29ce484222325ULL) {}

  void Init(distsim::NodeContext& ctx) override {
    value_[ctx.id()] = ctx.Rng().NextDouble();
    ctx.Broadcast({value_[ctx.id()]});
  }

  void Round(distsim::NodeContext& ctx) override {
    const graph::NodeId v = ctx.id();
    std::uint64_t& h = digest_[v];
    for (const distsim::InMessage& m : ctx.Messages()) {
      h = h * 0x100000001b3ULL ^ m.from;
      value_[v] += m.payload[0];
    }
    const auto nbrs = ctx.neighbors();
    if (!nbrs.empty()) {
      const std::size_t pick = ctx.Rng().NextBounded(nbrs.size());
      ctx.Send(nbrs[pick].to, {value_[v]});
    }
    distsim::Payload p;
    const std::size_t len = 1 + v % 4;
    for (std::size_t k = 0; k < len; ++k) p.push_back(value_[v] + k);
    ctx.Broadcast(std::move(p));
  }

  const std::vector<std::uint64_t>& digest() const { return digest_; }

 private:
  std::vector<double> value_;
  std::vector<std::uint64_t> digest_;
};

int RunComputeHeavy(const graph::Graph& g) {
  const int T = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  std::printf(
      "\n[compute-heavy] compact elimination, T=%d rounds, eps=0.5\n", T);

  core::CompactOptions base;
  base.rounds = T;
  base.num_threads = 1;
  base.seed = kMasterSeed;
  const core::CompactResult reference = core::RunCompactElimination(g, base);

  util::Table table({"threads", "seconds", "rounds_per_sec", "speedup",
                     "deterministic"});
  double seq_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    core::CompactOptions opts = base;
    opts.num_threads = threads;
    // Best of 3 runs: the pool is recreated per run, so pool spin-up is
    // included — that is the cost real callers pay.
    double best = -1.0;
    std::vector<double> b;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer timer;
      core::CompactResult res = core::RunCompactElimination(g, opts);
      const double s = timer.Seconds();
      if (best < 0.0 || s < best) best = s;
      b = std::move(res.b);
    }
    if (threads == 1) seq_seconds = best;
    table.Row()
        .Int(threads)
        .Dbl(best, 3)
        .Dbl(static_cast<double>(T) / best, 1)
        .Dbl(seq_seconds / best, 2)
        .Str(b == reference.b ? "yes" : "NO — BUG");
    if (b != reference.b) {
      std::fprintf(stderr, "determinism violation at %d threads\n", threads);
      return 1;
    }
  }
  table.Print();
  return 0;
}

int RunCollectHeavy(const graph::Graph& g, int rounds) {
  std::printf(
      "\n[collect-heavy] randomized gossip (broadcast + p2p + per-node "
      "RNG), %d rounds, master seed %llu\n",
      rounds, static_cast<unsigned long long>(kMasterSeed));

  std::vector<std::uint64_t> reference;
  util::Table table({"threads", "seconds", "rounds_per_sec", "speedup",
                     "deterministic"});
  double seq_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double best = -1.0;
    std::vector<std::uint64_t> digest;
    for (int rep = 0; rep < 3; ++rep) {
      GossipStress proto(g.num_nodes());
      distsim::Engine engine(g, threads);
      engine.SetSeed(kMasterSeed);
      util::Timer timer;
      engine.Start(proto);
      for (int t = 0; t < rounds; ++t) engine.Step(proto);
      const double s = timer.Seconds();
      if (best < 0.0 || s < best) best = s;
      digest = proto.digest();
    }
    if (threads == 1) {
      seq_seconds = best;
      reference = digest;
    }
    table.Row()
        .Int(threads)
        .Dbl(best, 3)
        .Dbl(static_cast<double>(rounds) / best, 1)
        .Dbl(seq_seconds / best, 2)
        .Str(digest == reference ? "yes" : "NO — BUG");
    if (digest != reference) {
      std::fprintf(stderr, "determinism violation at %d threads\n", threads);
      return 1;
    }
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long long requested = 100000;
  if (argc > 1) requested = std::atoll(argv[1]);
  if (requested < 16 || requested > 50000000) {
    std::fprintf(stderr, "usage: %s [num_nodes in 16..50000000]\n", argv[0]);
    return 2;
  }
  const graph::NodeId n = static_cast<graph::NodeId>(requested);

  util::Rng rng(7);
  util::Timer gen_timer;
  const graph::Graph g = graph::BarabasiAlbert(n, 4, rng);
  std::printf("graph: BA n=%u m=%zu (generated in %.2fs)\n", g.num_nodes(),
              g.num_edges(), gen_timer.Seconds());

  if (int rc = RunComputeHeavy(g)) return rc;
  return RunCollectHeavy(g, /*rounds=*/30);
}
