// EXP-6 (Lemma III.13): the gamma-approximation barrier.
//
// Complete gamma-ary tree of depth d (coreness of the root: 1) vs the
// same tree with a clique planted on its leaves (coreness of the root:
// gamma). The root's T-hop views coincide for T < d, so any algorithm
// with ratio < gamma needs Omega(log n / log gamma) = Omega(d) rounds.
// Reported: the first round at which the root's estimate drops below
// gamma on the plain tree (must be ~d), and the round at which the two
// instances first become distinguishable at the root.
#include <algorithm>
#include <cstdio>

#include "core/compact.h"
#include "core/montresor.h"
#include "graph/generators.h"
#include "util/table.h"

using kcore::graph::NodeId;

int main() {
  std::printf(
      "EXP-6: gamma-ary tree barrier (Lemma III.13) — rounds for the root "
      "to distinguish tree vs tree+leaf-clique\n\n");
  kcore::util::Table t({"gamma", "depth", "n(tree)", "first T with b<gamma",
                        "first T views differ", "theory Omega(.)",
                        "conv rounds (tree)", "root c: tree / clique"});
  struct Case {
    NodeId gamma, depth;
  };
  for (const Case c : {Case{2, 8}, Case{2, 10}, Case{3, 5}, Case{3, 6},
                       Case{4, 4}, Case{8, 3}}) {
    const auto tree = kcore::graph::GammaTree(c.gamma, c.depth);
    const auto cliq = kcore::graph::GammaTreeWithLeafClique(c.gamma, c.depth);
    const int horizon = static_cast<int>(c.depth) + 3;
    kcore::core::CompactOptions opts;
    opts.rounds = horizon;
    opts.record_rounds = true;
    const auto rt = kcore::core::RunCompactElimination(tree, opts);
    const auto rc = kcore::core::RunCompactElimination(cliq, opts);
    int first_below = -1;
    int first_differ = -1;
    for (int T = 0; T <= horizon; ++T) {
      const double bt = rt.b_rounds[static_cast<std::size_t>(T)][0];
      const double bc = rc.b_rounds[static_cast<std::size_t>(T)][0];
      if (first_below < 0 && bt < static_cast<double>(c.gamma)) {
        first_below = T;
      }
      if (first_differ < 0 && bt != bc) first_differ = T;
    }
    const auto conv = kcore::core::RunToConvergence(tree);
    char theory[32];
    std::snprintf(theory, sizeof(theory), "depth=%u", c.depth);
    char roots[32];
    std::snprintf(roots, sizeof(roots), "1 / %u", c.gamma);
    t.Row()
        .UInt(c.gamma)
        .UInt(c.depth)
        .UInt(tree.num_nodes())
        .Int(first_below)
        .Int(first_differ)
        .Str(theory)
        .Int(conv.last_change_round)
        .Str(roots);
  }
  t.Print();
  std::printf(
      "\nShape check: both 'first T' columns track the tree depth "
      "Theta(log n / log gamma) — the round lower bound for any "
      "(<gamma)-approximation.\n");
  return 0;
}
