// EXP-1 (Theorem I.1 / Lemmas III.2-III.3): approximation quality of the
// surviving numbers as a function of the round count T.
//
// For every workload and T, reports max and mean of beta^T(v)/c(v) and —
// on the small suite where the exact decomposition is affordable —
// beta^T(v)/r(v), next to the theoretical envelope 2 n^{1/T}.
//
// Paper-shape expectations: the measured max ratio sits below the
// envelope everywhere, never drops below 1 (Lemma III.2), and approaches
// 2 (or better) within a handful of rounds on heavy-tailed graphs.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "core/compact.h"
#include "seq/kcore.h"
#include "seq/local_density.h"
#include "util/stats.h"
#include "util/table.h"

using kcore::graph::NodeId;

int main() {
  std::printf(
      "EXP-1: coreness approximation ratio vs rounds "
      "(Theorem I.1; beta^T(v) in [c(v), 2 n^(1/T) r(v)])\n\n");

  kcore::util::Table t({"graph", "n", "m", "T", "max b/c", "mean b/c",
                        "p99 b/c", "bound 2n^(1/T)", "holds"});
  for (const auto& w : kcore::bench::StandardSuite()) {
    const auto& g = w.graph;
    const auto core = kcore::seq::WeightedCoreness(g);
    const int T_max = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
    kcore::core::CompactOptions opts;
    opts.rounds = T_max;
    opts.record_rounds = true;
    const auto res = kcore::core::RunCompactElimination(g, opts);
    for (int T : {1, 2, 3, 4, 6, 8, 12, T_max}) {
      if (T > T_max) continue;
      std::vector<double> ratios;
      bool lower_ok = true;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (core[v] <= 0) continue;
        const double ratio =
            res.b_rounds[static_cast<std::size_t>(T)][v] / core[v];
        if (ratio < 1 - 1e-9) lower_ok = false;
        ratios.push_back(ratio);
      }
      const auto s = kcore::util::Summarize(ratios);
      const double bound = 2.0 * std::pow(static_cast<double>(g.num_nodes()),
                                          1.0 / static_cast<double>(T));
      t.Row()
          .Str(w.name)
          .UInt(g.num_nodes())
          .UInt(g.num_edges())
          .Int(T)
          .Dbl(s.max, 3)
          .Dbl(s.mean, 3)
          .Dbl(s.p99, 3)
          .Dbl(bound, 3)
          .Str(lower_ok && s.max <= bound + 1e-6 ? "yes" : "NO");
    }
  }
  t.Print();

  std::printf(
      "\nEXP-1b: ratio against the maximal density r(v) "
      "(small suite; exact r via flow decomposition)\n\n");
  kcore::util::Table t2({"graph", "n", "T", "max b/r", "mean b/r",
                         "bound 2n^(1/T)", "holds"});
  for (const auto& w : kcore::bench::SmallSuite()) {
    const auto& g = w.graph;
    const auto r = kcore::seq::MaximalDensities(g);
    const int T_max = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
    kcore::core::CompactOptions opts;
    opts.rounds = T_max;
    opts.record_rounds = true;
    const auto res = kcore::core::RunCompactElimination(g, opts);
    for (int T : {1, 2, 4, 8, T_max}) {
      if (T > T_max) continue;
      double mx = 0.0;
      kcore::util::Accumulator acc;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (r[v] <= 0) continue;
        const double ratio =
            res.b_rounds[static_cast<std::size_t>(T)][v] / r[v];
        mx = std::max(mx, ratio);
        acc.Add(ratio);
      }
      const double bound = 2.0 * std::pow(static_cast<double>(g.num_nodes()),
                                          1.0 / static_cast<double>(T));
      t2.Row()
          .Str(w.name)
          .UInt(g.num_nodes())
          .Int(T)
          .Dbl(mx, 3)
          .Dbl(acc.mean(), 3)
          .Dbl(bound, 3)
          .Str(mx <= bound + 1e-6 ? "yes" : "NO");
    }
  }
  t2.Print();
  return 0;
}
