// EXP-5 (Figure I.1): the 2-approximation barrier.
//
// On the cycle (a) the distinguished node's coreness is 2; on the path
// (b) and path+far-triangle (c) it is 1 — yet its T-hop view is identical
// across the family until T ~ n/2. The series below shows beta^T(v)
// pinned at 2 on (b)/(c) until the elimination wave from the path
// endpoints arrives: any algorithm with ratio < 2 must take Omega(n)
// rounds.
#include <cstdio>

#include "core/compact.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/table.h"

using kcore::graph::NodeId;

namespace {

double BetaAt(const kcore::graph::Graph& g, NodeId v, int T) {
  kcore::core::CompactOptions opts;
  opts.rounds = T;
  return kcore::core::RunCompactElimination(g, opts).b[v];
}

}  // namespace

int main() {
  std::printf(
      "EXP-5: Figure I.1 gadgets — beta^T of the distinguished node "
      "(coreness: 2 on (a), 1 on (b)/(c))\n\n");
  for (NodeId n : {32u, 64u, 128u}) {
    const auto a = kcore::graph::Fig1a(n);
    const auto b = kcore::graph::Fig1b(n);
    const auto c = kcore::graph::Fig1c(n);
    const NodeId mid = n / 2;  // deep inside the path: the blind spot
    std::printf("n = %u (distinguished node = path middle, index %u)\n", n,
                mid);
    kcore::util::Table t(
        {"T", "(a) cycle", "(b) path", "(c) path+triangle", "ratio (b)"});
    for (int T :
         {1, 2, 4, static_cast<int>(n) / 4, static_cast<int>(n) / 2 - 2,
          static_cast<int>(n) / 2 + 1}) {
      const double ba = BetaAt(a, mid, T);
      const double bb = BetaAt(b, mid, T);
      const double bc = BetaAt(c, mid, T);
      t.Row().Int(T).Dbl(ba).Dbl(bb).Dbl(bc).Dbl(bb / 1.0, 1);
    }
    t.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape check: columns (a),(b),(c) agree (value 2) until T ~ n/2 - 2; "
      "only beyond does (b)/(c) drop to the true coreness 1 -> the ratio-2 "
      "barrier costs Omega(n) rounds to beat.\n");
  return 0;
}
