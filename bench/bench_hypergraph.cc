// EXP-11 (extension; Hu-Wu-Chan machinery): the elimination procedure on
// rank-r hypergraphs.
//
// Reports, per rank r and round budget T: the max ratio of the surviving
// numbers to the exact hypergraph coreness, the rank-adjusted envelope
// r * n^{1/T} * rho*, and the greedy-peeling densest quality (factor r).
// Expected shape: the graph-case behaviour generalizes with the 2 -> r
// factor swap; convergence stays a few rounds on random hypergraphs.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "hyper/helim.h"
#include "hyper/hypergraph.h"
#include "util/rng.h"
#include "util/table.h"

using kcore::hyper::Hypergraph;
using kcore::hyper::NodeId;

int main() {
  std::printf(
      "EXP-11: hypergraph elimination (rank-r generalization of "
      "Theorem I.1)\n\n");
  kcore::util::Table t({"rank", "n", "edges", "T", "max beta/c",
                        "mean beta/c", "max beta", "bound r*n^(1/T)*rho*",
                        "holds"});
  kcore::util::Rng rng(41);
  for (std::size_t r : {2u, 3u, 4u, 6u}) {
    const NodeId n = 600;
    const Hypergraph h = kcore::hyper::RandomUniform(n, 3 * n, r, rng);
    const auto core = kcore::hyper::HyperCoreness(h);
    const double rho = kcore::hyper::HyperDensestExact(h).density;
    for (int T : {1, 2, 4, 8, 16}) {
      const auto beta = kcore::hyper::HyperSurvivingNumbers(h, T);
      double mx_ratio = 0.0;
      double mx_beta = 0.0;
      double mean = 0.0;
      std::size_t cnt = 0;
      for (NodeId v = 0; v < n; ++v) {
        mx_beta = std::max(mx_beta, beta[v]);
        if (core[v] > 0) {
          mx_ratio = std::max(mx_ratio, beta[v] / core[v]);
          mean += beta[v] / core[v];
          ++cnt;
        }
      }
      if (cnt > 0) mean /= static_cast<double>(cnt);
      const double bound = static_cast<double>(r) *
                           std::pow(static_cast<double>(n),
                                    1.0 / static_cast<double>(T)) *
                           rho;
      t.Row()
          .UInt(r)
          .UInt(n)
          .UInt(h.num_edges())
          .Int(T)
          .Dbl(mx_ratio, 3)
          .Dbl(mean, 3)
          .Dbl(mx_beta, 2)
          .Dbl(bound, 2)
          .Str(mx_beta <= bound + 1e-6 ? "yes" : "NO");
    }
  }
  t.Print();

  std::printf("\nGreedy densest (factor-r guarantee) vs exact:\n\n");
  kcore::util::Table t2({"rank", "rho* (flow)", "greedy", "greedy*r >= rho*"});
  for (std::size_t r : {2u, 3u, 4u, 6u}) {
    const Hypergraph h = kcore::hyper::RandomUniform(500, 1500, r, rng);
    const double rho = kcore::hyper::HyperDensestExact(h).density;
    const double greedy = kcore::hyper::HyperDensestGreedy(h).density;
    t2.Row()
        .UInt(r)
        .Dbl(rho, 3)
        .Dbl(greedy, 3)
        .Str(greedy * static_cast<double>(r) + 1e-7 >= rho ? "yes" : "NO");
  }
  t2.Print();
  return 0;
}
