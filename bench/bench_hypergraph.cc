// EXP-11 (extension; Hu-Wu-Chan machinery): the elimination procedure on
// rank-r hypergraphs.
//
// Reports, per rank r and round budget T: the max ratio of the surviving
// numbers to the exact hypergraph coreness, the rank-adjusted envelope
// r * n^{1/T} * rho*, and the greedy-peeling densest quality (factor r).
// Expected shape: the graph-case behaviour generalizes with the 2 -> r
// factor swap; convergence stays a few rounds on random hypergraphs.
//
// An [engine] section times the distsim port (helim_protocol.h) of the
// same iteration over the clique-expansion substrate — sequential
// reference vs 8 threads, the serialized transport, and a 2-rank
// multi-process run with per-rank compute — and cross-checks every row
// bit for bit against the sequential oracle HyperSurvivingNumbers, so a
// scaling win can never hide a correctness regression.
//
// --json=PATH writes every section's rows to the committed
// BENCH_hypergraph.json results file (the bench/json.h trajectory
// convention).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/json.h"
#include "distsim/transport.h"
#include "hyper/helim.h"
#include "hyper/helim_protocol.h"
#include "hyper/hypergraph.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using kcore::hyper::Hypergraph;
using kcore::hyper::NodeId;

namespace {

constexpr const char kUsage[] =
    "usage: bench_hypergraph [options]\n"
    "\n"
    "  --json=PATH  write all rows as JSON (the BENCH_hypergraph.json\n"
    "               row format)\n"
    "  --help       this text\n";

int RunEngineSection(kcore::bench::JsonDoc* doc) {
  // Big enough that the substrate clears the engine's 256-node parallel
  // cutoff and the 8-thread rows really shard.
  kcore::util::Rng rng(43);
  const NodeId n = 2000;
  const Hypergraph h = kcore::hyper::RandomUniform(n, 3 * n, 3, rng);
  const int T = 10;
  const auto oracle = kcore::hyper::HyperSurvivingNumbers(h, T);
  std::printf(
      "\n[engine] distsim port on the clique expansion, n=%u edges=%zu "
      "T=%d\n",
      n, h.num_edges(), T);

  struct Config {
    const char* label;
    kcore::distsim::TransportKind transport;
    int threads;
    int ranks;
    bool per_rank;
  };
  const Config configs[] = {
      {"shared/1thr", kcore::distsim::TransportKind::kSharedMemory, 1, 1,
       false},
      {"shared/8thr", kcore::distsim::TransportKind::kSharedMemory, 8, 1,
       false},
      {"serialized/8thr", kcore::distsim::TransportKind::kSerialized, 8, 1,
       false},
      {"process/2ranks/per-rank", kcore::distsim::TransportKind::kProcess, 2,
       2, true},
  };
  kcore::util::Table t({"config", "threads", "ranks", "seconds",
                        "rounds_per_sec", "speedup", "bit_identical"});
  double seq_seconds = 0.0;
  bool ok = true;
  for (const Config& c : configs) {
    kcore::hyper::HyperElimOptions opts;
    opts.rounds = T;
    opts.num_threads = c.threads;
    opts.transport = c.transport;
    opts.ranks = c.ranks;
    opts.per_rank_compute = c.per_rank;
    double best = -1.0;
    std::vector<double> b;
    for (int rep = 0; rep < 3; ++rep) {
      kcore::util::Timer timer;
      auto res = kcore::hyper::RunHyperElimination(h, opts);
      const double s = timer.Seconds();
      if (best < 0.0 || s < best) best = s;
      b = std::move(res.b);
    }
    if (seq_seconds == 0.0) seq_seconds = best;
    const bool same = b == oracle;
    ok &= same;
    t.Row()
        .Str(c.label)
        .Int(c.threads)
        .Int(c.ranks)
        .Dbl(best, 3)
        .Dbl(static_cast<double>(T) / best, 1)
        .Dbl(seq_seconds / best, 2)
        .Str(same ? "yes" : "NO — BUG");
    if (doc != nullptr) {
      doc->AddRow()
          .Str("section", "engine")
          .Str("config", c.label)
          .Int("n", n)
          .Int("edges", static_cast<long long>(h.num_edges()))
          .Int("threads", c.threads)
          .Int("ranks", c.ranks)
          .Bool("per_rank", c.per_rank)
          .Int("rounds", T)
          .Num("seconds", best)
          .Num("rounds_per_sec", static_cast<double>(T) / best)
          .Num("speedup", seq_seconds / best)
          .Bool("bit_identical", same);
    }
  }
  t.Print();
  if (!ok) {
    std::fprintf(stderr, "engine rows diverged from the oracle\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  kcore::util::Flags flags;
  flags.Parse(argc, argv);
  if (flags.Has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  kcore::bench::JsonDoc doc("hypergraph");
  kcore::bench::JsonDoc* docp = flags.Has("json") ? &doc : nullptr;

  std::printf(
      "EXP-11: hypergraph elimination (rank-r generalization of "
      "Theorem I.1)\n\n");
  kcore::util::Table t({"rank", "n", "edges", "T", "max beta/c",
                        "mean beta/c", "max beta", "bound r*n^(1/T)*rho*",
                        "holds"});
  kcore::util::Rng rng(41);
  for (std::size_t r : {2u, 3u, 4u, 6u}) {
    const NodeId n = 600;
    const Hypergraph h = kcore::hyper::RandomUniform(n, 3 * n, r, rng);
    const auto core = kcore::hyper::HyperCoreness(h);
    const double rho = kcore::hyper::HyperDensestExact(h).density;
    for (int T : {1, 2, 4, 8, 16}) {
      const auto beta = kcore::hyper::HyperSurvivingNumbers(h, T);
      double mx_ratio = 0.0;
      double mx_beta = 0.0;
      double mean = 0.0;
      std::size_t cnt = 0;
      for (NodeId v = 0; v < n; ++v) {
        mx_beta = std::max(mx_beta, beta[v]);
        if (core[v] > 0) {
          mx_ratio = std::max(mx_ratio, beta[v] / core[v]);
          mean += beta[v] / core[v];
          ++cnt;
        }
      }
      if (cnt > 0) mean /= static_cast<double>(cnt);
      const double bound = static_cast<double>(r) *
                           std::pow(static_cast<double>(n),
                                    1.0 / static_cast<double>(T)) *
                           rho;
      const bool holds = mx_beta <= bound + 1e-6;
      t.Row()
          .UInt(r)
          .UInt(n)
          .UInt(h.num_edges())
          .Int(T)
          .Dbl(mx_ratio, 3)
          .Dbl(mean, 3)
          .Dbl(mx_beta, 2)
          .Dbl(bound, 2)
          .Str(holds ? "yes" : "NO");
      if (docp != nullptr) {
        docp->AddRow()
            .Str("section", "elimination")
            .Int("rank", static_cast<long long>(r))
            .Int("n", n)
            .Int("edges", static_cast<long long>(h.num_edges()))
            .Int("T", T)
            .Num("max_beta_over_c", mx_ratio)
            .Num("mean_beta_over_c", mean)
            .Num("max_beta", mx_beta)
            .Num("bound", bound)
            .Bool("holds", holds);
      }
    }
  }
  t.Print();

  std::printf("\nGreedy densest (factor-r guarantee) vs exact:\n\n");
  kcore::util::Table t2({"rank", "rho* (flow)", "greedy", "greedy*r >= rho*"});
  for (std::size_t r : {2u, 3u, 4u, 6u}) {
    const Hypergraph h = kcore::hyper::RandomUniform(500, 1500, r, rng);
    const double rho = kcore::hyper::HyperDensestExact(h).density;
    const double greedy = kcore::hyper::HyperDensestGreedy(h).density;
    const bool holds = greedy * static_cast<double>(r) + 1e-7 >= rho;
    t2.Row().UInt(r).Dbl(rho, 3).Dbl(greedy, 3).Str(holds ? "yes" : "NO");
    if (docp != nullptr) {
      docp->AddRow()
          .Str("section", "greedy-densest")
          .Int("rank", static_cast<long long>(r))
          .Num("rho_star", rho)
          .Num("greedy", greedy)
          .Bool("holds", holds);
    }
  }
  t2.Print();

  if (int rc = RunEngineSection(docp)) return rc;

  if (docp != nullptr) {
    const std::string path = flags.GetString("json");
    if (!doc.WriteFile(path)) {
      std::fprintf(stderr, "bench_hypergraph: cannot write %s\n",
                   path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
