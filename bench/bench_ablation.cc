// EXP-14 (ablations of the design choices DESIGN.md calls out):
//
//   (a) Tie-breaking in Algorithm 3. The paper's stateful rule (stable
//       sort over the persistent neighbor order = lexicographic history,
//       most recent first) is what makes Lemma III.11 work. Swapping in
//       the "obvious" stateless rule (re-sort by value, ties by id) is a
//       one-line change that silently breaks the second invariant: edges
//       end up claimed by NEITHER endpoint.
//   (b) Conflict resolution rule for doubly-claimed edges (lower-load vs
//       higher-id): both are feasible; lower-load is never worse.
//   (c) Aggregation message discipline (Algorithm 6): batch arrays
//       (2T+1 words/message) vs pipelined (4 words/message, ~T more
//       rounds) — identical selections, different CONGEST profiles.
#include <cstdio>

#include "core/compact.h"
#include "core/densest.h"
#include "core/orientation.h"
#include "graph/generators.h"
#include "seq/densest_exact.h"
#include "util/rng.h"
#include "util/table.h"

using kcore::graph::Graph;
using kcore::graph::NodeId;

int main() {
  std::printf("EXP-14a: tie-break ablation (Lemma III.11 machinery)\n\n");
  {
    kcore::util::Table t({"weights", "instances", "violating (stateful)",
                          "violating (naive)", "max uncovered edges (naive)"});
    for (const bool weighted : {false, true}) {
      int trials = 0;
      int bad_stateful = 0;
      int bad_naive = 0;
      std::size_t worst_naive = 0;
      for (std::uint64_t seed = 0; seed < 150; ++seed) {
        kcore::util::Rng rng(seed);
        const NodeId n = static_cast<NodeId>(8 + rng.NextBounded(40));
        Graph g = kcore::graph::ErdosRenyiGnp(n, 0.25, rng);
        if (weighted) g = kcore::graph::WithDyadicWeights(g, 0.25, 2.0, rng, 2);
        if (g.num_edges() == 0) continue;
        ++trials;
        for (const bool stateful : {true, false}) {
          kcore::core::CompactOptions o;
          o.rounds = 8;
          o.track_orientation = true;
          o.stateful_tiebreak = stateful;
          const auto res = kcore::core::RunCompactElimination(g, o);
          std::vector<char> covered(g.num_edges(), 0);
          for (NodeId v = 0; v < n; ++v) {
            for (auto idx : res.in_sets[v]) {
              covered[g.Neighbors(v)[idx].edge] = 1;
            }
          }
          std::size_t uncovered = 0;
          for (char c : covered) uncovered += c ? 0 : 1;
          if (uncovered > 0) {
            (stateful ? bad_stateful : bad_naive) += 1;
            if (!stateful) worst_naive = std::max(worst_naive, uncovered);
          }
        }
      }
      t.Row()
          .Str(weighted ? "dyadic" : "unit")
          .Int(trials)
          .Int(bad_stateful)
          .Int(bad_naive)
          .UInt(worst_naive);
    }
    t.Print();
  }

  std::printf(
      "\nEXP-14b: conflict-resolution rule (doubly-claimed edges)\n\n");
  {
    kcore::util::Table t({"graph seed", "conflicts", "max load (lower-load)",
                          "max load (higher-id)", "higher-id/lower-load"});
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      kcore::util::Rng rng(seed * 100);
      const Graph g = kcore::graph::QuantizeWeightsDyadic(
          kcore::graph::WithParetoWeights(
              kcore::graph::BarabasiAlbert(1500, 3, rng), 1.0, 1.8, rng));
      const int T = kcore::core::RoundsForEpsilon(g.num_nodes(), 0.5);
      const auto lower = kcore::core::RunDistributedOrientation(
          g, T, kcore::core::ConflictRule::kLowerLoad);
      const auto higher = kcore::core::RunDistributedOrientation(
          g, T, kcore::core::ConflictRule::kHigherId);
      t.Row()
          .UInt(seed)
          .UInt(lower.conflicts)
          .Dbl(lower.orientation.max_load, 2)
          .Dbl(higher.orientation.max_load, 2)
          .Dbl(higher.orientation.max_load / lower.orientation.max_load, 3);
    }
    t.Print();
  }

  std::printf(
      "\nEXP-14c: Algorithm 6 aggregation — batch vs pipelined messages\n\n");
  {
    kcore::util::Table t({"graph", "n", "variant", "phase-4 rounds",
                          "max words/message", "total entries",
                          "selection identical"});
    kcore::util::Rng rng(7);
    for (const NodeId n : {500u, 2000u}) {
      const Graph g = kcore::graph::BarabasiAlbert(n, 3, rng);
      kcore::core::WeakDensestOptions base;
      base.gamma = 3.0;
      const auto batch = kcore::core::RunWeakDensest(g, base);
      auto popt = base;
      popt.pipelined_aggregation = true;
      const auto piped = kcore::core::RunWeakDensest(g, popt);
      const bool same = batch.selected == piped.selected;
      char name[32];
      std::snprintf(name, sizeof(name), "ba-%u", n);
      t.Row()
          .Str(name)
          .UInt(n)
          .Str("batch 2T+1 words")
          .Int(batch.rounds_phase4)
          .UInt(batch.totals.max_entries_per_message)
          .UInt(batch.totals.entries)
          .Str(same ? "yes" : "NO");
      t.Row()
          .Str(name)
          .UInt(n)
          .Str("pipelined 4 words")
          .Int(piped.rounds_phase4)
          .UInt(piped.totals.max_entries_per_message)
          .UInt(piped.totals.entries)
          .Str(same ? "yes" : "NO");
    }
    t.Print();
  }
  std::printf(
      "\nShape check: naive tie-break violates coverage on most instances "
      "while the paper's rule never does; pipelining caps messages at 4 "
      "words for ~T extra rounds with identical output.\n");
  return 0;
}
