#include "flow/push_relabel.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/logging.h"

namespace kcore::flow {

PushRelabel::PushRelabel(int num_nodes) : n_(num_nodes) {
  KCORE_CHECK(num_nodes >= 0);
  first_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
}

int PushRelabel::AddArc(int u, int v, double capacity) {
  KCORE_CHECK(!built_);
  KCORE_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  KCORE_CHECK(capacity >= 0.0);
  staged_.push_back(Staged{u, v, capacity});
  return static_cast<int>(staged_.size()) - 1;
}

double PushRelabel::Flow(int arc) const {
  KCORE_CHECK(built_);
  // arc_positions: forward arc of staged i sits at partner-paired slot
  // recorded during Build via the staged order: we stored forward arcs
  // first per (u) bucket; recover via orig - cap on the forward copy.
  // The forward copy is identified by matching staged order: we kept a
  // side table in partner_ layout; see Build below (forward arcs have
  // even staged parity in fwd_index_).
  const int idx = fwd_index_[static_cast<std::size_t>(arc)];
  return arcs_[static_cast<std::size_t>(idx)].orig -
         arcs_[static_cast<std::size_t>(idx)].cap;
}

double PushRelabel::MaxFlow(int s, int t) {
  KCORE_CHECK(s != t && s >= 0 && s < n_ && t >= 0 && t < n_);
  KCORE_CHECK(!built_);
  built_ = true;

  // Build CSR with paired reverse arcs.
  const std::size_t m = staged_.size();
  std::vector<int> deg(static_cast<std::size_t>(n_), 0);
  for (const Staged& a : staged_) {
    ++deg[static_cast<std::size_t>(a.u)];
    ++deg[static_cast<std::size_t>(a.v)];
  }
  first_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (int v = 0; v < n_; ++v) {
    first_[static_cast<std::size_t>(v) + 1] =
        first_[static_cast<std::size_t>(v)] + deg[static_cast<std::size_t>(v)];
  }
  arcs_.resize(2 * m);
  partner_.resize(2 * m);
  fwd_index_.resize(m);
  std::vector<int> cursor(first_.begin(), first_.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    const Staged& a = staged_[i];
    const int fi = cursor[static_cast<std::size_t>(a.u)]++;
    const int ri = cursor[static_cast<std::size_t>(a.v)]++;
    arcs_[static_cast<std::size_t>(fi)] = Arc{a.v, a.cap, a.cap};
    arcs_[static_cast<std::size_t>(ri)] = Arc{a.u, 0.0, 0.0};
    partner_[static_cast<std::size_t>(fi)] = ri;
    partner_[static_cast<std::size_t>(ri)] = fi;
    fwd_index_[i] = fi;
  }
  staged_.clear();
  staged_.shrink_to_fit();

  excess_.assign(static_cast<std::size_t>(n_), 0.0);
  height_.assign(static_cast<std::size_t>(n_), 0);
  cur_ = std::vector<int>(first_.begin(), first_.end() - 1);
  count_.assign(2 * static_cast<std::size_t>(n_) + 2, 0);

  height_[static_cast<std::size_t>(s)] = n_;
  count_[0] = n_ - 1;
  count_[static_cast<std::size_t>(n_)] = 1;

  std::queue<int> active;
  const auto activate = [&](int v) {
    if (v != s && v != t && excess_[static_cast<std::size_t>(v)] > eps_) {
      active.push(v);
    }
  };

  // Saturate source arcs.
  for (int a = first_[static_cast<std::size_t>(s)];
       a < first_[static_cast<std::size_t>(s) + 1]; ++a) {
    Arc& arc = arcs_[static_cast<std::size_t>(a)];
    if (arc.cap <= eps_) continue;
    const double amount = arc.cap;
    arc.cap = 0.0;
    arcs_[static_cast<std::size_t>(partner_[static_cast<std::size_t>(a)])]
        .cap += amount;
    const bool was_inactive = excess_[static_cast<std::size_t>(arc.to)] <= eps_;
    excess_[static_cast<std::size_t>(arc.to)] += amount;
    if (was_inactive) activate(arc.to);
  }

  while (!active.empty()) {
    const int v = active.front();
    active.pop();
    // Discharge v completely.
    while (excess_[static_cast<std::size_t>(v)] > eps_) {
      if (cur_[static_cast<std::size_t>(v)] >=
          first_[static_cast<std::size_t>(v) + 1]) {
        // Relabel (with gap heuristic).
        const int old_h = height_[static_cast<std::size_t>(v)];
        int new_h = 2 * n_;
        for (int a = first_[static_cast<std::size_t>(v)];
             a < first_[static_cast<std::size_t>(v) + 1]; ++a) {
          const Arc& arc = arcs_[static_cast<std::size_t>(a)];
          if (arc.cap > eps_) {
            new_h = std::min(new_h,
                             height_[static_cast<std::size_t>(arc.to)] + 1);
          }
        }
        --count_[static_cast<std::size_t>(old_h)];
        if (count_[static_cast<std::size_t>(old_h)] == 0 && old_h < n_) {
          // Gap: nodes above old_h (below n) can never reach t again.
          for (int u = 0; u < n_; ++u) {
            int& h = height_[static_cast<std::size_t>(u)];
            if (h > old_h && h < n_ && u != s) {
              --count_[static_cast<std::size_t>(h)];
              h = n_ + 1;
              ++count_[static_cast<std::size_t>(h)];
            }
          }
        }
        height_[static_cast<std::size_t>(v)] = std::max(
            height_[static_cast<std::size_t>(v)], new_h);
        ++count_[static_cast<std::size_t>(
            height_[static_cast<std::size_t>(v)])];
        cur_[static_cast<std::size_t>(v)] =
            first_[static_cast<std::size_t>(v)];
        if (height_[static_cast<std::size_t>(v)] >= 2 * n_) break;
        continue;
      }
      const int a = cur_[static_cast<std::size_t>(v)];
      Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap > eps_ &&
          height_[static_cast<std::size_t>(v)] ==
              height_[static_cast<std::size_t>(arc.to)] + 1) {
        // Push.
        const double amount =
            std::min(excess_[static_cast<std::size_t>(v)], arc.cap);
        arc.cap -= amount;
        arcs_[static_cast<std::size_t>(
                  partner_[static_cast<std::size_t>(a)])]
            .cap += amount;
        excess_[static_cast<std::size_t>(v)] -= amount;
        const bool was_inactive =
            excess_[static_cast<std::size_t>(arc.to)] <= eps_;
        excess_[static_cast<std::size_t>(arc.to)] += amount;
        if (was_inactive) activate(arc.to);
      } else {
        ++cur_[static_cast<std::size_t>(v)];
      }
    }
  }
  return excess_[static_cast<std::size_t>(t)];
}

std::vector<char> PushRelabel::MinCutSourceSide(int s) const {
  std::vector<char> side(static_cast<std::size_t>(n_), 0);
  std::vector<int> queue;
  queue.push_back(s);
  side[static_cast<std::size_t>(s)] = 1;
  std::size_t head = 0;
  while (head < queue.size()) {
    const int v = queue[head++];
    for (int a = first_[static_cast<std::size_t>(v)];
         a < first_[static_cast<std::size_t>(v) + 1]; ++a) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap > eps_ && !side[static_cast<std::size_t>(arc.to)]) {
        side[static_cast<std::size_t>(arc.to)] = 1;
        queue.push_back(arc.to);
      }
    }
  }
  return side;
}

}  // namespace kcore::flow
