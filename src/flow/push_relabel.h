// FIFO push-relabel maximum flow (Goldberg–Tarjan) with the gap
// heuristic.
//
// A second, independently implemented max-flow solver. The exact
// densest-subset and orientation references are only as trustworthy as
// the flow code underneath them, so the test suite cross-validates Dinic
// against this implementation on thousands of random networks (and both
// against brute-force min-cuts on tiny ones). It is also the faster
// choice on the dense closure networks the Dinkelbach iteration builds
// for large graphs.
#pragma once

#include <vector>

namespace kcore::flow {

class PushRelabel {
 public:
  explicit PushRelabel(int num_nodes);

  // Adds a directed arc u -> v; returns an arc handle (see Flow()).
  int AddArc(int u, int v, double capacity);

  // Computes the max flow from s to t (call once).
  double MaxFlow(int s, int t);

  // Flow routed through the arc returned by AddArc.
  double Flow(int arc) const;

  // After MaxFlow: the minimal min-cut source side (s-reachable in the
  // residual network).
  std::vector<char> MinCutSourceSide(int s) const;

  int num_nodes() const { return static_cast<int>(first_.size()) - 1; }

 private:
  struct Arc {
    int to;
    double cap;   // residual capacity
    double orig;  // original capacity (for Flow())
  };

  void Push(int v, int arc_index);
  void Relabel(int v);
  void Discharge(int v);

  // CSR arcs (built lazily on MaxFlow from the staging vectors).
  std::vector<Arc> arcs_;
  std::vector<int> first_;     // valid after Build()
  std::vector<int> partner_;   // reverse arc index

  // Staging (before Build).
  struct Staged {
    int u, v;
    double cap;
  };
  std::vector<Staged> staged_;
  std::vector<int> fwd_index_;  // staged arc -> forward arc position
  int n_;

  std::vector<double> excess_;
  std::vector<int> height_;
  std::vector<int> cur_;     // current-arc pointers
  std::vector<int> count_;   // nodes per height (gap heuristic)
  bool built_ = false;
  double eps_ = 1e-11;
};

}  // namespace kcore::flow
