#include "flow/dinic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace kcore::flow {

Dinic::Dinic(int num_nodes)
    : head_(static_cast<std::size_t>(num_nodes), -1),
      level_(num_nodes),
      iter_(num_nodes) {
  KCORE_CHECK(num_nodes >= 0);
}

int Dinic::AddArc(int u, int v, double capacity) {
  KCORE_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  KCORE_CHECK(capacity >= 0.0);
  const int idx = static_cast<int>(arcs_.size());
  arcs_.push_back(Arc{v, head_[static_cast<std::size_t>(u)], capacity});
  head_[static_cast<std::size_t>(u)] = idx;
  arcs_.push_back(Arc{u, head_[static_cast<std::size_t>(v)], 0.0});
  head_[static_cast<std::size_t>(v)] = idx + 1;
  return idx / 2;
}

bool Dinic::Bfs(int s, int t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::vector<int> queue;
  queue.push_back(s);
  level_[static_cast<std::size_t>(s)] = 0;
  std::size_t headq = 0;
  while (headq < queue.size()) {
    const int v = queue[headq++];
    for (int a = head_[static_cast<std::size_t>(v)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap > eps_ && level_[static_cast<std::size_t>(arc.to)] < 0) {
        level_[static_cast<std::size_t>(arc.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

double Dinic::Dfs(int v, int t, double limit) {
  if (v == t) return limit;
  for (int& a = iter_[static_cast<std::size_t>(v)]; a != -1;
       a = arcs_[static_cast<std::size_t>(a)].next) {
    Arc& arc = arcs_[static_cast<std::size_t>(a)];
    if (arc.cap <= eps_ ||
        level_[static_cast<std::size_t>(arc.to)] !=
            level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const double pushed = Dfs(arc.to, t, std::min(limit, arc.cap));
    if (pushed > 0.0) {
      arc.cap -= pushed;
      arcs_[static_cast<std::size_t>(a ^ 1)].cap += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double Dinic::MaxFlow(int s, int t) {
  KCORE_CHECK(s != t);
  double flow = 0.0;
  while (Bfs(s, t)) {
    iter_ = head_;
    while (true) {
      const double pushed = Dfs(s, t, kInfCapacity);
      if (pushed <= 0.0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::vector<char> Dinic::MinCutSourceSide(int s) const {
  std::vector<char> side(head_.size(), 0);
  std::vector<int> queue;
  queue.push_back(s);
  side[static_cast<std::size_t>(s)] = 1;
  std::size_t headq = 0;
  while (headq < queue.size()) {
    const int v = queue[headq++];
    for (int a = head_[static_cast<std::size_t>(v)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap > eps_ && !side[static_cast<std::size_t>(arc.to)]) {
        side[static_cast<std::size_t>(arc.to)] = 1;
        queue.push_back(arc.to);
      }
    }
  }
  return side;
}

std::vector<char> Dinic::ResidualReachesSink(int t) const {
  // Reverse reachability: v reaches t iff there is an arc v -> u with
  // residual capacity and u reaches t. Walk the reverse residual graph,
  // which is exactly the forward graph of the reverse arcs.
  std::vector<char> reaches(head_.size(), 0);
  std::vector<int> queue;
  queue.push_back(t);
  reaches[static_cast<std::size_t>(t)] = 1;
  std::size_t headq = 0;
  while (headq < queue.size()) {
    const int v = queue[headq++];
    for (int a = head_[static_cast<std::size_t>(v)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      // arcs_[a] goes v -> to; its partner (a^1) goes to -> v. The partner
      // has residual capacity iff arcs_[a^1].cap > eps, in which case `to`
      // reaches t through v.
      const int to = arcs_[static_cast<std::size_t>(a)].to;
      if (reaches[static_cast<std::size_t>(to)]) continue;
      if (arcs_[static_cast<std::size_t>(a ^ 1)].cap > eps_) {
        reaches[static_cast<std::size_t>(to)] = 1;
        queue.push_back(to);
      }
    }
  }
  return reaches;
}

}  // namespace kcore::flow
