// Exact maximal densest subset via max-flow (Goldberg's technique, phrased
// as max-weight closure + Dinkelbach iteration).
//
// For a candidate density g, a subset S maximizes
//     f_g(S) = w(E(S)) - g * |S|
// where w(E(S)) counts simple edges inside S plus self-loops at members of
// S. Selecting an edge (profit w_e) requires selecting both endpoints
// (cost g - selfloop(v) each), which is a max-weight closure problem and
// solves with one s-t min cut. Dinkelbach iteration
//     g_{k+1} = rho(argmax f_{g_k})
// produces a strictly increasing sequence of realized subset densities and
// terminates at rho* after finitely many cuts (typically < 20). At g =
// rho*, the *maximal* zero-value closure — extracted from the residual
// network as the complement of "reaches sink" — is the unique maximal
// densest subset (Fact II.1), which the diminishingly-dense decomposition
// (Definition II.3) peels layer by layer.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace kcore::flow {

struct DensestResult {
  // Indicator of the maximal densest subset (size = num_nodes).
  std::vector<char> in_set;
  // Its density rho* = w(E(S)) / |S|.
  double density = 0.0;
  // |S|.
  std::size_t size = 0;
  // Number of max-flow computations used.
  int iterations = 0;
};

// Computes the maximal densest subset of g. Self-loops are honored (a
// self-loop at v counts toward w(E(S)) iff v in S), so this is directly
// usable on quotient graphs. For an edgeless graph, returns all of V with
// density 0. Requires num_nodes >= 1.
DensestResult MaximalDensestSubset(const graph::Graph& g);

// Value max_S (w(E(S)) - g|S|) over nonempty S, plus a maximizing subset.
// Exposed for tests (cross-checked against brute force).
double MaxClosureValue(const graph::Graph& g, double density,
                       std::vector<char>* subset);

}  // namespace kcore::flow
