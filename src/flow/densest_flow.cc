#include "flow/densest_flow.h"

#include <algorithm>
#include <cmath>

#include "flow/dinic.h"
#include "util/logging.h"

namespace kcore::flow {
namespace {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

// Builds the closure network for candidate density g and runs max-flow.
// Layout: 0 = source, 1 = sink, 2..2+n-1 = vertices, then one node per
// simple (non-loop) edge.
struct ClosureSolve {
  double closure_value = 0.0;     // max over closures (>= 0; empty allowed)
  std::vector<char> minimal;      // minimal optimal closure, vertices only
  std::vector<char> maximal;      // maximal optimal closure, vertices only
};

ClosureSolve SolveClosure(const Graph& g, double density) {
  const NodeId n = g.num_nodes();
  // Count simple edges.
  std::size_t m_simple = 0;
  for (const Edge& e : g.edges()) {
    if (e.u != e.v) ++m_simple;
  }
  const int total =
      2 + static_cast<int>(n) + static_cast<int>(m_simple);
  Dinic dinic(total);
  const int kSource = 0;
  const int kSink = 1;
  const auto vnode = [](NodeId v) { return 2 + static_cast<int>(v); };

  double positive_sum = 0.0;
  // Vertex profits: selfloop(v) - density.
  for (NodeId v = 0; v < n; ++v) {
    const double profit = g.SelfLoopWeight(v) - density;
    if (profit > 0.0) {
      dinic.AddArc(kSource, vnode(v), profit);
      positive_sum += profit;
    } else if (profit < 0.0) {
      dinic.AddArc(vnode(v), kSink, -profit);
    }
  }
  // Edge nodes: profit w_e, requires both endpoints.
  int enode = 2 + static_cast<int>(n);
  for (const Edge& e : g.edges()) {
    if (e.u == e.v) continue;
    if (e.w > 0.0) {
      dinic.AddArc(kSource, enode, e.w);
      positive_sum += e.w;
    }
    dinic.AddArc(enode, vnode(e.u), kInfCapacity);
    dinic.AddArc(enode, vnode(e.v), kInfCapacity);
    ++enode;
  }

  const double cut = dinic.MaxFlow(kSource, kSink);
  ClosureSolve out;
  out.closure_value = positive_sum - cut;

  const std::vector<char> src_side = dinic.MinCutSourceSide(kSource);
  const std::vector<char> reaches_sink = dinic.ResidualReachesSink(kSink);
  out.minimal.assign(n, 0);
  out.maximal.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    out.minimal[v] = src_side[static_cast<std::size_t>(vnode(v))];
    out.maximal[v] = !reaches_sink[static_cast<std::size_t>(vnode(v))];
  }
  return out;
}

double SubsetDensity(const Graph& g, const std::vector<char>& in_set,
                     std::size_t* size_out) {
  std::size_t size = 0;
  for (char c : in_set) size += c ? 1 : 0;
  if (size_out != nullptr) *size_out = size;
  if (size == 0) return 0.0;
  return g.InducedEdgeWeight(in_set) / static_cast<double>(size);
}

}  // namespace

double MaxClosureValue(const graph::Graph& g, double density,
                       std::vector<char>* subset) {
  ClosureSolve s = SolveClosure(g, density);
  // The closure formulation allows the empty set (value 0); callers that
  // need a nonempty maximizer use the maximal closure when positive.
  if (subset != nullptr) *subset = s.maximal;
  return s.closure_value;
}

DensestResult MaximalDensestSubset(const graph::Graph& g) {
  DensestResult out;
  const NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(n >= 1, "densest subset of an empty graph is undefined");
  out.in_set.assign(n, 0);

  if (g.total_weight() <= 0.0) {
    // All densities are zero; the maximal densest subset is all of V.
    std::fill(out.in_set.begin(), out.in_set.end(), 1);
    out.density = 0.0;
    out.size = n;
    return out;
  }

  const double tol = 1e-9 * std::max(1.0, g.total_weight());

  // Start from a realized density: the full graph.
  std::vector<char> all(n, 1);
  double best_density = SubsetDensity(g, all, nullptr);
  std::vector<char> best_set = all;
  // Single best node (captures isolated heavy self-loops).
  for (NodeId v = 0; v < n; ++v) {
    if (g.SelfLoopWeight(v) > best_density) {
      best_density = g.SelfLoopWeight(v);
      best_set.assign(n, 0);
      best_set[v] = 1;
    }
  }

  // Dinkelbach: strictly increasing realized densities, so this halts.
  while (true) {
    ++out.iterations;
    ClosureSolve s = SolveClosure(g, best_density);
    if (s.closure_value <= tol) break;
    std::size_t size = 0;
    // Prefer the minimal closure during iteration (densest core first);
    // any optimal closure works for Dinkelbach, minimal converges fast.
    const double cand = SubsetDensity(g, s.minimal, &size);
    if (size == 0 || cand <= best_density + tol) {
      // Numerically stuck: accept current best.
      break;
    }
    best_density = cand;
    best_set = s.minimal;
  }

  // At g = rho*, the maximal zero-value closure is the maximal densest
  // subset (Fact II.1).
  ClosureSolve s = SolveClosure(g, best_density);
  std::size_t size = 0;
  const double maximal_density = SubsetDensity(g, s.maximal, &size);
  if (size > 0 && maximal_density >= best_density - tol) {
    out.in_set = s.maximal;
    out.size = size;
    out.density = maximal_density;
  } else {
    out.in_set = best_set;
    out.density = best_density;
    std::size_t best_size = 0;
    SubsetDensity(g, best_set, &best_size);
    out.size = best_size;
  }
  return out;
}

}  // namespace kcore::flow
