// Dinic's maximum-flow algorithm on real-valued capacities.
//
// Used by the exact reference solvers:
//   * Goldberg-style maximal densest subset (via max-weight closure),
//   * exact min-max edge orientation for unweighted graphs (feasibility
//     flow inside a binary search).
//
// Capacities are doubles; a relative epsilon guards the augmenting-path
// tests so the exact solvers can run on real-weighted graphs. For the
// integral networks used by the orientation solver, flows stay exactly
// integral because augmentation amounts are sums/differences of integers.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace kcore::flow {

inline constexpr double kInfCapacity = std::numeric_limits<double>::infinity();

class Dinic {
 public:
  // num_nodes includes source and sink; node ids are [0, num_nodes).
  explicit Dinic(int num_nodes);

  // Adds a directed arc u -> v with the given capacity; returns the arc
  // index (the reverse arc is created automatically with capacity 0).
  int AddArc(int u, int v, double capacity);

  // Computes the max flow from s to t. Can be called once per instance.
  double MaxFlow(int s, int t);

  // Residual capacity of the arc returned by AddArc.
  double Residual(int arc) const { return arcs_[2 * arc].cap; }
  // Flow currently routed through that arc.
  double Flow(int arc) const { return arcs_[2 * arc + 1].cap; }

  // After MaxFlow: nodes reachable from s in the residual network — the
  // minimal min-cut source side.
  std::vector<char> MinCutSourceSide(int s) const;

  // After MaxFlow: nodes that can reach t in the residual network. The
  // complement is the *maximal* min-cut source side; the densest-subset
  // solver uses it to extract the maximal densest subset (Fact II.1).
  std::vector<char> ResidualReachesSink(int t) const;

  int num_nodes() const { return static_cast<int>(head_.size()); }

 private:
  struct Arc {
    int to;
    int next;    // next arc index in the same tail's list
    double cap;  // residual capacity
  };

  bool Bfs(int s, int t);
  double Dfs(int v, int t, double limit);

  std::vector<Arc> arcs_;
  std::vector<int> head_;   // first arc per node (-1 = none)
  std::vector<int> level_;
  std::vector<int> iter_;
  double eps_ = 1e-11;
};

}  // namespace kcore::flow
