// Weighted directed graph substrate for the D-core extension
// (Giatsidis, Thilikos, Vazirgiannis — ICDM 2011, cited by the paper as
// the directed-graph generalization of the core decomposition).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace kcore::directed {

using NodeId = graph::NodeId;

struct Arc {
  NodeId from = 0;
  NodeId to = 0;
  double w = 1.0;
};

struct ArcEntry {
  NodeId node = 0;  // the other endpoint
  double w = 1.0;
};

class DigraphBuilder;

// Immutable directed graph with CSR in/out adjacency.
class Digraph {
 public:
  Digraph() = default;

  NodeId num_nodes() const { return n_; }
  std::size_t num_arcs() const { return arcs_.size(); }
  std::span<const Arc> arcs() const { return arcs_; }

  std::span<const ArcEntry> OutNeighbors(NodeId v) const {
    return {out_adj_.data() + out_off_[v], out_adj_.data() + out_off_[v + 1]};
  }
  std::span<const ArcEntry> InNeighbors(NodeId v) const {
    return {in_adj_.data() + in_off_[v], in_adj_.data() + in_off_[v + 1]};
  }

  double OutDegree(NodeId v) const { return out_deg_[v]; }
  double InDegree(NodeId v) const { return in_deg_[v]; }

 private:
  friend class DigraphBuilder;
  NodeId n_ = 0;
  std::vector<Arc> arcs_;
  std::vector<std::size_t> out_off_, in_off_;
  std::vector<ArcEntry> out_adj_, in_adj_;
  std::vector<double> out_deg_, in_deg_;
};

class DigraphBuilder {
 public:
  explicit DigraphBuilder(NodeId n) : n_(n) {}
  DigraphBuilder& AddArc(NodeId from, NodeId to, double w = 1.0);
  Digraph Build() &&;

 private:
  NodeId n_;
  std::vector<Arc> arcs_;
};

// Random directed graph: each ordered pair (u != v) independently with
// probability p.
Digraph RandomDigraph(NodeId n, double p, util::Rng& rng);

// Orients every undirected edge both ways (the symmetric closure); the
// (k,k)-cores of the result coincide with the k-cores of the input —
// used as a cross-check in tests.
Digraph SymmetricClosure(const graph::Graph& g);

}  // namespace kcore::directed
