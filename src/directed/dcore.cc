#include "directed/dcore.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "core/update.h"
#include "util/logging.h"

namespace kcore::directed {
namespace {

// Removes out-degree violators (< l) until fixpoint; updates degrees.
void PruneOutDegree(const Digraph& g, double l, std::vector<char>& alive,
                    std::vector<double>& in_deg, std::vector<double>& out_deg,
                    std::vector<NodeId>* removed_out) {
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v] && out_deg[v] < l) queue.push_back(v);
  }
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    if (!alive[v]) continue;
    alive[v] = 0;
    if (removed_out != nullptr) removed_out->push_back(v);
    for (const ArcEntry& a : g.OutNeighbors(v)) {
      if (alive[a.node]) in_deg[a.node] -= a.w;
    }
    for (const ArcEntry& a : g.InNeighbors(v)) {
      if (alive[a.node]) {
        out_deg[a.node] -= a.w;
        if (out_deg[a.node] < l) queue.push_back(a.node);
      }
    }
  }
}

}  // namespace

DCoreResult DCoreDecomposition(const Digraph& g, double l) {
  const NodeId n = g.num_nodes();
  DCoreResult out;
  out.in_coreness.assign(n, 0.0);
  out.in_zero_l_core.assign(n, 0);

  std::vector<char> alive(n, 1);
  std::vector<double> in_deg(n);
  std::vector<double> out_deg(n);
  for (NodeId v = 0; v < n; ++v) {
    in_deg[v] = g.InDegree(v);
    out_deg[v] = g.OutDegree(v);
  }
  PruneOutDegree(g, l, alive, in_deg, out_deg, nullptr);
  out.in_zero_l_core = alive;

  // Min-peeling on in-degree with out-degree cascade. Every node removed
  // while the running level is `running` has in-coreness exactly running:
  // the alive set at that moment is a (running, l)-subgraph.
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (NodeId v = 0; v < n; ++v) {
    if (alive[v]) heap.emplace(in_deg[v], v);
  }
  double running = 0.0;
  std::vector<NodeId> cascade;
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (!alive[v] || d != in_deg[v]) continue;
    running = std::max(running, d);
    // Remove v, then cascade out-degree violators at the same level.
    alive[v] = 0;
    out.in_coreness[v] = running;
    cascade.clear();
    cascade.push_back(v);
    std::size_t head = 0;
    while (head < cascade.size()) {
      const NodeId x = cascade[head++];
      for (const ArcEntry& a : g.OutNeighbors(x)) {
        if (alive[a.node]) {
          in_deg[a.node] -= a.w;
          heap.emplace(in_deg[a.node], a.node);
        }
      }
      for (const ArcEntry& a : g.InNeighbors(x)) {
        if (alive[a.node]) {
          out_deg[a.node] -= a.w;
          if (out_deg[a.node] < l) {
            alive[a.node] = 0;
            out.in_coreness[a.node] = running;
            cascade.push_back(a.node);
          }
        }
      }
    }
  }
  return out;
}

std::vector<double> DCoreSurvivingNumbers(const Digraph& g, double l,
                                          int rounds) {
  const NodeId n = g.num_nodes();
  std::vector<double> b(n, std::numeric_limits<double>::infinity());
  std::vector<char> active(n, 1);
  std::vector<double> out_deg(n);
  for (NodeId v = 0; v < n; ++v) out_deg[v] = g.OutDegree(v);

  // Persistent per-node in-neighbor orderings (tie-break as in Alg 3).
  std::vector<std::vector<std::uint32_t>> order(n);
  for (NodeId v = 0; v < n; ++v) {
    order[v].resize(g.InNeighbors(v).size());
    std::iota(order[v].begin(), order[v].end(), 0u);
  }

  for (int t = 0; t < rounds; ++t) {
    // Synchronous semantics: all updates read the previous round's state.
    const std::vector<char> prev_active = active;
    const std::vector<double> prev_b = b;
    // 1. Out-degree constraint among previously-active nodes.
    for (NodeId v = 0; v < n; ++v) {
      if (!prev_active[v]) continue;
      double od = 0.0;
      for (const ArcEntry& a : g.OutNeighbors(v)) {
        if (prev_active[a.node]) od += a.w;
      }
      if (od < l) {
        active[v] = 0;
        b[v] = 0.0;
      }
    }
    // 2. Surviving-number update on in-neighbors.
    for (NodeId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      const auto in = g.InNeighbors(v);
      std::vector<double> values(in.size());
      std::vector<double> weights(in.size());
      for (std::size_t i = 0; i < in.size(); ++i) {
        values[i] = prev_active[in[i].node] ? prev_b[in[i].node] : 0.0;
        weights[i] = in[i].w;
      }
      b[v] = std::min(b[v], core::UpdateStep(values, weights, order[v]).b);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (std::isinf(b[v])) b[v] = g.InDegree(v);
  }
  return b;
}

std::vector<double> BruteDCore(const Digraph& g, double l) {
  const NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(n <= 16, "brute d-core needs n <= 16");
  std::vector<double> core(n, 0.0);
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    // Induced degrees.
    std::vector<double> in(n, 0.0);
    std::vector<double> outd(n, 0.0);
    for (const Arc& a : g.arcs()) {
      if ((mask >> a.from & 1u) && (mask >> a.to & 1u)) {
        outd[a.from] += a.w;
        in[a.to] += a.w;
      }
    }
    bool ok = true;
    double min_in = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n; ++v) {
      if (!(mask >> v & 1u)) continue;
      if (outd[v] < l) {
        ok = false;
        break;
      }
      min_in = std::min(min_in, in[v]);
    }
    if (!ok) continue;
    for (NodeId v = 0; v < n; ++v) {
      if ((mask >> v & 1u) && min_in > core[v]) core[v] = min_in;
    }
  }
  return core;
}

}  // namespace kcore::directed
