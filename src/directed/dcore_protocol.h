// Directed surviving-number iteration on the round simulator.
//
// DCoreSurvivingNumbers (dcore.h) iterates the digraph transplant of
// Algorithm 2 in a hand-rolled synchronous loop: each round a node first
// checks the out-degree constraint (weighted out-degree to still-active
// nodes >= l, else it deactivates with b = 0) and then recomputes its
// surviving number from its in-neighbors' values. This module ports the
// iteration onto distsim::Engine over the SUPPORT substrate — the simple
// undirected graph connecting u and v iff some arc joins them either way
// — so threads, shard balancing, transports, ranks, and byte accounting
// apply unchanged.
//
// Message shape: an active node broadcasts one double per round (its
// surviving number). Absence of a broadcast IS the activity bit: a node
// that fails the out-degree constraint halts without broadcasting, and
// the engine's double-buffer drops its stale value the next round —
// out-neighbors stop counting its weight, in-"neighbors" read its
// contribution as 0. The broadcast therefore carries the in/out-degree
// pair's worth of information in one value + one presence bit.
//
// The sequential loop stays around as the bit-exact oracle: for every
// digraph, l, and round count, RunDCoreElimination(g, l, opts).b ==
// DCoreSurvivingNumbers(g, l, opts.rounds) bit for bit, at any thread
// count, under every transport, and at any rank count (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "directed/digraph.h"
#include "distsim/engine.h"
#include "distsim/transport.h"
#include "graph/graph.h"

namespace kcore::directed {

struct DCoreElimOptions {
  // Number of synchronous rounds T (>= 1).
  int rounds = 0;
  // Worker threads for the simulator.
  int num_threads = 1;
  // Degree-weighted shard balancing over the substrate graph.
  bool balance_shards = false;
  // With balancing on, rebuild shard bounds every this many rounds.
  int rebalance_rounds = 0;
  // Exchange backend for the simulator's collect phase.
  distsim::TransportKind transport = distsim::TransportKind::kSharedMemory;
  // Rank topology for multi-process transports.
  int ranks = 1;
  // Master seed for the engine's per-node RNG streams.
  std::uint64_t seed = distsim::kDefaultMasterSeed;
  // Run the compute phase inside the transport's rank workers.
  bool per_rank_compute = false;
};

// The iteration as a distsim::Protocol over the support substrate.
class DCoreProtocol : public distsim::Protocol {
 public:
  // The digraph must be self-arc free (the substrate must be a simple
  // graph for the simulator).
  DCoreProtocol(const Digraph& g, double l);

  void Init(distsim::NodeContext& ctx) override;
  void Round(distsim::NodeContext& ctx) override;

  // Per-rank compute: a node's state is its surviving number, its
  // activity flag, and its tie-break permutation; the arc-to-adjacency
  // index tables are constructor-built read-only structure.
  bool SupportsRankCompute() const override { return true; }
  void SaveNodeState(graph::NodeId v, util::WireAppender& out) const override;
  void LoadNodeState(graph::NodeId v, util::WireReader& in) override;

  // The support graph the engine must run on. The protocol must outlive
  // the engine.
  const graph::Graph& substrate() const { return substrate_; }

  const std::vector<double>& b() const { return b_; }
  const std::vector<char>& active() const { return active_; }

 private:
  // An arc endpoint resolved to its substrate adjacency index.
  struct ArcRef {
    std::uint32_t adj = 0;  // index into substrate Neighbors(v)
    double w = 1.0;
  };

  const Digraph& digraph_;
  double l_;
  graph::Graph substrate_;
  // Aligned with g.OutNeighbors(v) / g.InNeighbors(v) entry order (the
  // tie-break permutation indexes in-arc positions, so the order must
  // match the sequential oracle's exactly).
  std::vector<std::vector<ArcRef>> out_arcs_;
  std::vector<std::vector<ArcRef>> in_arcs_;
  // Mutable per-node state.
  std::vector<double> b_;
  std::vector<char> active_;
  std::vector<std::vector<std::uint32_t>> order_;
  // Scratch, indexed per node to stay race-free under threading.
  std::vector<std::vector<double>> scratch_values_;
};

struct DCoreElimResult {
  // Surviving numbers after opts.rounds rounds; bit-identical to
  // DCoreSurvivingNumbers(g, l, opts.rounds).
  std::vector<double> b;
  // 1 iff the node still met the out-degree constraint at the end.
  std::vector<char> active;
  std::vector<distsim::RoundStats> history;
  distsim::Totals totals;
  int rounds = 0;
};

// Drives the protocol for opts.rounds rounds on g with out-degree
// requirement l.
DCoreElimResult RunDCoreElimination(const Digraph& g, double l,
                                    const DCoreElimOptions& opts);

}  // namespace kcore::directed
