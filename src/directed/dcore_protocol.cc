#include "directed/dcore_protocol.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "core/update.h"
#include "util/logging.h"
#include "util/wire.h"

namespace kcore::directed {

using distsim::NodeContext;
using distsim::Payload;
using graph::AdjEntry;

namespace {

std::uint32_t AdjIndexOf(const graph::Graph& g, NodeId v, NodeId u) {
  const auto nbrs = g.Neighbors(v);
  const auto it =
      std::lower_bound(nbrs.begin(), nbrs.end(), u,
                       [](const AdjEntry& a, NodeId id) { return a.to < id; });
  KCORE_CHECK_MSG(it != nbrs.end() && it->to == u,
                  "arc endpoint " << u << " not adjacent to " << v
                                  << " in the support substrate");
  return static_cast<std::uint32_t>(it - nbrs.begin());
}

graph::Graph BuildSupportSubstrate(const Digraph& g) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(g.num_arcs());
  for (const Arc& a : g.arcs()) {
    KCORE_CHECK_MSG(a.from != a.to,
                    "distributed d-core runs on self-arc-free digraphs");
    pairs.emplace_back(std::min(a.from, a.to), std::max(a.from, a.to));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  graph::GraphBuilder b(g.num_nodes());
  b.Reserve(pairs.size());
  for (const auto& [u, v] : pairs) b.AddEdge(u, v, 1.0);
  return std::move(b).Build();
}

}  // namespace

DCoreProtocol::DCoreProtocol(const Digraph& g, double l)
    : digraph_(g), l_(l), substrate_(BuildSupportSubstrate(g)) {
  const NodeId n = g.num_nodes();
  out_arcs_.resize(n);
  in_arcs_.resize(n);
  b_.assign(n, std::numeric_limits<double>::infinity());
  active_.assign(n, 1);
  order_.resize(n);
  scratch_values_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto out = g.OutNeighbors(v);
    out_arcs_[v].reserve(out.size());
    for (const ArcEntry& a : out) {
      out_arcs_[v].push_back({AdjIndexOf(substrate_, v, a.node), a.w});
    }
    const auto in = g.InNeighbors(v);
    in_arcs_[v].reserve(in.size());
    for (const ArcEntry& a : in) {
      in_arcs_[v].push_back({AdjIndexOf(substrate_, v, a.node), a.w});
    }
    order_[v].resize(in.size());
    std::iota(order_[v].begin(), order_[v].end(), 0u);
    scratch_values_[v].resize(in.size());
  }
}

void DCoreProtocol::Init(NodeContext& ctx) {
  // Every node starts active with b = +inf; broadcast it (round-1
  // inputs).
  ctx.Broadcast({b_[ctx.id()]});
}

void DCoreProtocol::Round(NodeContext& ctx) {
  const NodeId v = ctx.id();

  // Out-degree constraint: weight to out-neighbors that broadcast last
  // round (= were active through the previous round).
  double od = 0.0;
  for (const ArcRef& a : out_arcs_[v]) {
    if (ctx.NeighborBroadcast(a.adj) != nullptr) od += a.w;
  }
  if (od < l_) {
    active_[v] = 0;
    b_[v] = 0.0;
    ctx.Halt();  // no broadcast: in-neighbors read 0 from now on
    return;
  }

  // Surviving-number update on in-neighbors: a silent source counts as
  // value 0 (it deactivated in an earlier round).
  auto& values = scratch_values_[v];
  std::vector<double> weights(in_arcs_[v].size());
  for (std::size_t i = 0; i < in_arcs_[v].size(); ++i) {
    const Payload* p = ctx.NeighborBroadcast(in_arcs_[v][i].adj);
    values[i] = (p != nullptr && !p->empty()) ? (*p)[0] : 0.0;
    weights[i] = in_arcs_[v][i].w;
  }
  b_[v] = std::min(b_[v], core::UpdateStep(values, weights, order_[v]).b);
  ctx.Broadcast({b_[v]});
}

void DCoreProtocol::SaveNodeState(NodeId v, util::WireAppender& out) const {
  out.Double(b_[v]);
  out.Varint(static_cast<std::uint64_t>(active_[v]));
  out.Varint(order_[v].size());
  for (std::uint32_t i : order_[v]) out.Fixed32(i);
}

void DCoreProtocol::LoadNodeState(NodeId v, util::WireReader& in) {
  b_[v] = in.Double();
  active_[v] = static_cast<char>(in.Varint());
  order_[v].resize(in.Varint());
  for (std::uint32_t& i : order_[v]) i = in.Fixed32();
}

DCoreElimResult RunDCoreElimination(const Digraph& g, double l,
                                    const DCoreElimOptions& opts) {
  KCORE_CHECK_MSG(opts.rounds >= 1, "need at least one round");
  DCoreProtocol proto(g, l);
  distsim::Engine engine(proto.substrate(), opts.num_threads);
  engine.SetSeed(opts.seed);
  engine.SetShardBalancing(opts.balance_shards);
  engine.SetRebalanceInterval(opts.rebalance_rounds);
  engine.SetTransport(distsim::MakeTransport(opts.transport));
  engine.SetRankCount(opts.ranks);
  engine.SetPerRankCompute(opts.per_rank_compute);
  engine.Run(proto, opts.rounds);
  engine.FetchRankState(proto);  // no-op unless per-rank compute
  DCoreElimResult out;
  out.b = proto.b();
  out.active = proto.active();
  // The sequential oracle maps never-updated nodes to their in-degree;
  // with rounds >= 1 every b is finite, but mirror it for faithfulness.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (std::isinf(out.b[v])) out.b[v] = g.InDegree(v);
  }
  out.history = engine.history();
  out.totals = engine.totals();
  out.rounds = opts.rounds;
  return out;
}

}  // namespace kcore::directed
