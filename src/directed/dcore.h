// D-core decomposition of directed graphs (Giatsidis et al., ICDM 2011).
//
// The (k, l)-core of a digraph D is the maximal subgraph in which every
// node has (weighted) in-degree >= k AND out-degree >= l. Fixing l, the
// function k -> (k, l)-core is nested, so each node v has an l-indexed
// in-coreness: the largest k with v in the (k, l)-core.
//
// This module computes, for a fixed out-degree requirement l:
//   1. the maximal subgraph with all out-degrees >= l (iterated pruning);
//   2. within it, the exact in-coreness by min-peeling on in-degree
//      (re-pruning out-degree violators as peeling cascades).
//
// A distributed surviving-number analogue (the natural extension of the
// paper's Algorithm 2 to digraphs) is provided for experimentation: each
// node repeatedly recomputes the largest k such that its in-weight from
// nodes with value >= k is at least k, among nodes still satisfying the
// out-degree constraint. Tests verify beta >= dcore exactly as in the
// undirected case.
#pragma once

#include <vector>

#include "directed/digraph.h"

namespace kcore::directed {

struct DCoreResult {
  // in_coreness[v]: largest k such that v belongs to the (k, l)-core
  // (0 if v is not even in the (0, l)-core).
  std::vector<double> in_coreness;
  // Nodes surviving the out-degree >= l pruning.
  std::vector<char> in_zero_l_core;
};

// Exact (k, l)-core decomposition for the given l (weighted degrees).
DCoreResult DCoreDecomposition(const Digraph& g, double l);

// Surviving-number iteration (the paper's compact elimination transplanted
// to digraphs); `rounds` synchronous iterations. Returns beta values with
// beta[v] >= in_coreness[v] for all v (tested).
std::vector<double> DCoreSurvivingNumbers(const Digraph& g, double l,
                                          int rounds);

// Brute force for tests: largest k such that v is in a subgraph with all
// in-degrees >= k and out-degrees >= l. Requires n <= 16.
std::vector<double> BruteDCore(const Digraph& g, double l);

}  // namespace kcore::directed
