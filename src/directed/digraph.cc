#include "directed/digraph.h"

#include <algorithm>

#include "util/logging.h"

namespace kcore::directed {

DigraphBuilder& DigraphBuilder::AddArc(NodeId from, NodeId to, double w) {
  KCORE_CHECK_MSG(from < n_ && to < n_, "arc endpoint out of range");
  KCORE_CHECK_MSG(w >= 0.0, "negative arc weight");
  arcs_.push_back(Arc{from, to, w});
  return *this;
}

Digraph DigraphBuilder::Build() && {
  Digraph g;
  g.n_ = n_;
  g.arcs_ = std::move(arcs_);
  g.out_off_.assign(static_cast<std::size_t>(n_) + 1, 0);
  g.in_off_.assign(static_cast<std::size_t>(n_) + 1, 0);
  g.out_deg_.assign(n_, 0.0);
  g.in_deg_.assign(n_, 0.0);
  for (const Arc& a : g.arcs_) {
    ++g.out_off_[a.from + 1];
    ++g.in_off_[a.to + 1];
    g.out_deg_[a.from] += a.w;
    g.in_deg_[a.to] += a.w;
  }
  for (NodeId v = 0; v < n_; ++v) {
    g.out_off_[v + 1] += g.out_off_[v];
    g.in_off_[v + 1] += g.in_off_[v];
  }
  g.out_adj_.resize(g.arcs_.size());
  g.in_adj_.resize(g.arcs_.size());
  std::vector<std::size_t> oc(g.out_off_.begin(), g.out_off_.end() - 1);
  std::vector<std::size_t> ic(g.in_off_.begin(), g.in_off_.end() - 1);
  for (const Arc& a : g.arcs_) {
    g.out_adj_[oc[a.from]++] = ArcEntry{a.to, a.w};
    g.in_adj_[ic[a.to]++] = ArcEntry{a.from, a.w};
  }
  return g;
}

Digraph RandomDigraph(NodeId n, double p, util::Rng& rng) {
  DigraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v && rng.NextBool(p)) b.AddArc(u, v, 1.0);
    }
  }
  return std::move(b).Build();
}

Digraph SymmetricClosure(const graph::Graph& g) {
  DigraphBuilder b(g.num_nodes());
  for (const graph::Edge& e : g.edges()) {
    if (e.u == e.v) continue;
    b.AddArc(e.u, e.v, e.w);
    b.AddArc(e.v, e.u, e.w);
  }
  return std::move(b).Build();
}

}  // namespace kcore::directed
