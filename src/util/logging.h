// Lightweight leveled logging and check macros.
//
// The library proper never aborts on user input errors (it reports through
// return values / exceptions); KCORE_CHECK is reserved for internal
// invariants whose violation indicates a bug.
#pragma once

#include <sstream>
#include <string>

namespace kcore::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr. Thread-safe: the fprintf+fflush
// pair is serialized on an internal annotated mutex (util/mutex.h), so
// concurrent callers — pool workers, server connection handlers — never
// interleave mid-line. Verified, not just claimed: engine_test logs
// concurrently from every pool worker and the battery runs under
// ThreadSanitizer in CI (docs/ANALYSIS.md).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal {

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

}  // namespace internal
}  // namespace kcore::util

#define KCORE_LOG(level)                                              \
  ::kcore::util::internal::LogStream(::kcore::util::LogLevel::level, \
                                     __FILE__, __LINE__)

// Internal invariant check; aborts with a diagnostic when violated.
#define KCORE_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::kcore::util::internal::CheckFailed(__FILE__, __LINE__, #expr, ""); \
    }                                                                      \
  } while (false)

#define KCORE_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream kcore_check_os_;                               \
      kcore_check_os_ << msg;                                           \
      ::kcore::util::internal::CheckFailed(__FILE__, __LINE__, #expr,   \
                                           kcore_check_os_.str());      \
    }                                                                   \
  } while (false)
