#include "util/timer.h"

namespace kcore::util {

double Timer::Seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

std::int64_t Timer::Micros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start_)
      .count();
}

}  // namespace kcore::util
