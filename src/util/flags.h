// Minimal command-line flag parser for example binaries and benches.
//
// Supports --name=value and --name value forms plus boolean switches.
// Unknown flags are reported; positional arguments are collected.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kcore::util {

class Flags {
 public:
  // Parses argv. Returns false (and prints a diagnostic) on malformed input.
  bool Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  // Numeric getters parse strictly: the whole value must be a valid
  // number in range. Malformed input ("--n=12x", "--n=", overflow) warns
  // on stderr and returns the default instead of silently yielding 0 or
  // a truncated prefix.
  std::int64_t GetInt(const std::string& name, std::int64_t def = 0) const;
  double GetDouble(const std::string& name, double def = 0.0) const;
  bool GetBool(const std::string& name, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace kcore::util
