// Summary statistics over samples; used to report per-node approximation
// ratios (max / mean / percentiles) in the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace kcore::util {

// One-pass accumulator for mean / min / max / variance.
class Accumulator {
 public:
  void Add(double x);
  void Merge(const Accumulator& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  // Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Full-sample summary with exact percentiles. Copies and sorts the data.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string ToString() const;
};

Summary Summarize(std::span<const double> xs);

// Exact percentile (linear interpolation between closest ranks);
// q in [0, 1]. Input need not be sorted.
double Percentile(std::span<const double> xs, double q);

}  // namespace kcore::util
