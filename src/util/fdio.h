// Small POSIX file-descriptor I/O helpers for the multi-process
// transport (distsim/process_transport.h): EINTR-safe full-buffer reads
// and writes over blocking descriptors, plus the nonblocking/poll
// plumbing the worker ranks' deadlock-free peer exchange is built on.
//
// All helpers are signal-safe in the sense the transport needs: writes
// to a closed peer surface as a false return (EPIPE, suppressed via
// MSG_NOSIGNAL on sockets) instead of a SIGPIPE kill, and every call
// retries EINTR internally, so callers never see a short transfer that
// was really an interrupted syscall.
#pragma once

#include <poll.h>

#include <cstddef>

namespace kcore::util {

// Reads exactly `len` bytes from a BLOCKING descriptor. Returns false on
// end-of-file (the peer closed) or any error other than EINTR; on false
// the buffer contents are unspecified. errno is preserved from the
// failing syscall (0 for a clean EOF).
bool ReadFully(int fd, void* buf, std::size_t len);

// Writes exactly `len` bytes to a BLOCKING descriptor. On sockets the
// transfer uses send(MSG_NOSIGNAL), so writing to a dead peer returns
// false with errno == EPIPE instead of raising SIGPIPE; plain pipes and
// files fall back to write(2). Returns false on any error other than
// EINTR, with errno preserved.
bool WriteFully(int fd, const void* buf, std::size_t len);

// Switches O_NONBLOCK on or off. Returns false (errno preserved) if the
// fcntl pair fails.
bool SetNonBlocking(int fd, bool enabled);

// poll(2) that retries EINTR. Same contract otherwise: returns the
// number of ready descriptors, 0 on timeout, -1 on a real error.
int PollRetry(struct pollfd* fds, nfds_t nfds, int timeout_ms);

// Writes as much of [buf, buf + len) as fits right now to a NONBLOCKING
// socket. Returns the number of bytes written (possibly 0 on EAGAIN), or
// -1 on a real error (EPIPE included; EINTR is retried internally).
long WriteSome(int fd, const void* buf, std::size_t len);

// Reads up to `len` bytes from a NONBLOCKING descriptor. Returns the
// number of bytes read (possibly 0 on EAGAIN), -1 on a real error, or -2
// on end-of-file — the caller must distinguish "nothing yet" from "peer
// is gone", which plain read(2) conflates at 0/EOF.
long ReadSome(int fd, void* buf, std::size_t len);

inline constexpr long kReadEof = -2;

}  // namespace kcore::util
