// Plain-text / CSV / markdown table emitter.
//
// Every benchmark binary prints its results through this class so the
// regenerated "paper tables" have a consistent, diff-friendly format.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace kcore::util {

// Column-aligned table that can render itself as aligned text, CSV, or
// GitHub-flavoured markdown.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row. The row is padded / truncated to the header width.
  void AddRow(std::vector<std::string> row);

  // Convenience for mixed-type rows.
  class RowBuilder {
   public:
    explicit RowBuilder(Table* t) : table_(t) {}
    RowBuilder& Str(std::string v);
    RowBuilder& Int(long long v);
    RowBuilder& UInt(unsigned long long v);
    RowBuilder& Dbl(double v, int precision = 4);
    // Commits the row to the table.
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table* table_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(this); }

  std::string ToText() const;
  std::string ToCsv() const;
  std::string ToMarkdown() const;

  // Prints ToText() to the given stream (stdout by default).
  void Print(std::FILE* out = stdout) const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision, trimming trailing zeros.
std::string FormatDouble(double v, int precision = 4);

}  // namespace kcore::util
