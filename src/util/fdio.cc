#include "util/fdio.h"

#include <cerrno>
#include <cstdint>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace kcore::util {

bool ReadFully(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t got = ::read(fd, p, len);
    if (got > 0) {
      p += got;
      len -= static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      errno = 0;  // clean EOF, not an error code
      return false;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool WriteFully(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  bool use_send = true;
  while (len > 0) {
    const ssize_t put = use_send ? ::send(fd, p, len, MSG_NOSIGNAL)
                                 : ::write(fd, p, len);
    if (put >= 0) {
      p += put;
      len -= static_cast<std::size_t>(put);
      continue;
    }
    if (errno == EINTR) continue;
    if (use_send && errno == ENOTSOCK) {
      // Plain pipe or file: send(2) does not apply; the caller accepts
      // SIGPIPE semantics there (the transport only hands us sockets).
      use_send = false;
      continue;
    }
    return false;
  }
  return true;
}

bool SetNonBlocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want == flags) return true;
  return ::fcntl(fd, F_SETFL, want) == 0;
}

int PollRetry(struct pollfd* fds, nfds_t nfds, int timeout_ms) {
  for (;;) {
    const int n = ::poll(fds, nfds, timeout_ms);
    if (n >= 0 || errno != EINTR) return n;
  }
}

long WriteSome(int fd, const void* buf, std::size_t len) {
  for (;;) {
    const ssize_t put = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (put >= 0) return static_cast<long>(put);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

long ReadSome(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t got = ::read(fd, buf, len);
    if (got > 0) return static_cast<long>(got);
    if (got == 0) return kReadEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

}  // namespace kcore::util
