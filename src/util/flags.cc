#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

namespace kcore::util {

bool Flags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      // "--" terminates flag parsing; the rest is positional.
      for (int j = i + 1; j < argc; ++j) positional_.emplace_back(argv[j]);
      break;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // boolean switch
    }
  }
  return true;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace kcore::util
