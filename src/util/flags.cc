#include "util/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace kcore::util {

bool Flags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      // "--" terminates flag parsing; the rest is positional.
      for (int j = i + 1; j < argc; ++j) positional_.emplace_back(argv[j]);
      break;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // boolean switch
    }
  }
  return true;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  // strtoll with a discarded endptr silently turns garbage into 0 and
  // accepts trailing junk ("12x" -> 12) — parse strictly instead: the
  // whole value must be consumed and must not overflow, otherwise warn
  // and fall back to the default.
  const char* const s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "warning: --%s=%s is not a valid integer; using default "
                 "%lld\n",
                 name.c_str(), it->second.c_str(),
                 static_cast<long long>(def));
    return def;
  }
  return parsed;
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const char* const s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(s, &end);
  // ERANGE covers underflow too (strtod("1e-310") sets it while returning
  // a perfectly usable subnormal); only overflow — result pinned to
  // +/-HUGE_VAL — is actually malformed.
  const bool overflow =
      errno == ERANGE && (parsed == HUGE_VAL || parsed == -HUGE_VAL);
  if (end == s || *end != '\0' || overflow) {
    std::fprintf(stderr,
                 "warning: --%s=%s is not a valid number; using default "
                 "%g\n",
                 name.c_str(), it->second.c_str(), def);
    return def;
  }
  return parsed;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  // Same strictness as the numeric getters: a typo ("True", "ture") must
  // not silently read as false.
  std::fprintf(stderr,
               "warning: --%s=%s is not a valid boolean "
               "(true/false/1/0/yes/no/on/off); using default %s\n",
               name.c_str(), v.c_str(), def ? "true" : "false");
  return def;
}

}  // namespace kcore::util
