#include "util/wire.h"

#include <cstring>

#include "util/logging.h"

namespace kcore::util {

std::size_t VarintSize(std::uint64_t x) {
  std::size_t n = 1;
  while (x >= 0x80) {
    x >>= 7;
    ++n;
  }
  return n;
}

void WireWriter::Varint(std::uint64_t x) {
  while (x >= 0x80) {
    KCORE_CHECK_MSG(p_ < end_, "WireWriter overflow: varint past a "
                                   << capacity() << "-byte region");
    *p_++ = static_cast<std::uint8_t>(x) | 0x80;
    x >>= 7;
  }
  KCORE_CHECK_MSG(p_ < end_, "WireWriter overflow: varint past a "
                                 << capacity() << "-byte region");
  *p_++ = static_cast<std::uint8_t>(x);
}

void WireWriter::Fixed32(std::uint32_t bits) {
  KCORE_CHECK_MSG(end_ - p_ >= 4, "WireWriter overflow: fixed32 past a "
                                      << capacity() << "-byte region");
  for (int i = 0; i < 4; ++i) {
    *p_++ = static_cast<std::uint8_t>(bits >> (8 * i));
  }
}

void WireWriter::Fixed64(std::uint64_t bits) {
  KCORE_CHECK_MSG(end_ - p_ >= 8, "WireWriter overflow: fixed64 past a "
                                      << capacity() << "-byte region");
  for (int i = 0; i < 8; ++i) {
    *p_++ = static_cast<std::uint8_t>(bits >> (8 * i));
  }
}

void WireWriter::Double(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(&bits, &d, sizeof(bits));
  Fixed64(bits);
}

void WireAppender::Varint(std::uint64_t x) {
  while (x >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(x) | 0x80);
    x >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(x));
}

void WireAppender::Fixed32(std::uint32_t bits) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void WireAppender::Fixed64(std::uint64_t bits) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void WireAppender::Double(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(&bits, &d, sizeof(bits));
  Fixed64(bits);
}

void WireAppender::Raw(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out_.insert(out_.end(), p, p + len);
}

bool WireReader::TryVarint(std::uint64_t* out) {
  if (failed_) return false;
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (p_ == end_) {
      failed_ = true;  // truncated mid-varint
      return false;
    }
    const std::uint8_t b = *p_++;
    // Byte 9 holds bits 63..69 of which only bit 63 exists: any higher
    // payload bit (or a continuation into an 11th byte) overflows 64 bits.
    if (i == kMaxVarintBytes - 1 && (b & 0xfe) != 0) {
      failed_ = true;
      return false;
    }
    x |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
    if ((b & 0x80) == 0) {
      *out = x;
      return true;
    }
  }
  failed_ = true;
  return false;
}

bool WireReader::TryFixed32(std::uint32_t* out) {
  if (failed_ || end_ - p_ < 4) {
    failed_ = true;
    return false;
  }
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    bits |= static_cast<std::uint32_t>(*p_++) << (8 * i);
  }
  *out = bits;
  return true;
}

bool WireReader::TryFixed64(std::uint64_t* out) {
  if (failed_ || end_ - p_ < 8) {
    failed_ = true;
    return false;
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(*p_++) << (8 * i);
  }
  *out = bits;
  return true;
}

bool WireReader::TryRaw(void* out, std::size_t len) {
  if (failed_ || static_cast<std::size_t>(end_ - p_) < len) {
    failed_ = true;
    return false;
  }
  std::memcpy(out, p_, len);
  p_ += len;
  return true;
}

bool WireReader::TryDouble(double* out) {
  std::uint64_t bits = 0;
  if (!TryFixed64(&bits)) return false;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(out, &bits, sizeof(bits));
  return true;
}

std::uint64_t WireReader::Varint() {
  std::uint64_t x = 0;
  KCORE_CHECK_MSG(TryVarint(&x),
                  "malformed wire buffer: truncated or overlong varint");
  return x;
}

std::uint32_t WireReader::Fixed32() {
  std::uint32_t bits = 0;
  KCORE_CHECK_MSG(TryFixed32(&bits),
                  "malformed wire buffer: truncated fixed32");
  return bits;
}

std::uint64_t WireReader::Fixed64() {
  std::uint64_t bits = 0;
  KCORE_CHECK_MSG(TryFixed64(&bits),
                  "malformed wire buffer: truncated fixed64");
  return bits;
}

double WireReader::Double() {
  double d = 0.0;
  KCORE_CHECK_MSG(TryDouble(&d),
                  "malformed wire buffer: truncated fixed64");
  return d;
}

}  // namespace kcore::util
