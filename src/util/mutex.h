// Annotated mutex wrappers: std::mutex with a capability the clang
// thread-safety analysis can see.
//
// libstdc++'s std::mutex carries no capability attributes, so code
// locking it through std::lock_guard is invisible to -Wthread-safety —
// a KCORE_GUARDED_BY member would warn on every correctly locked
// access. Mutex/MutexLock re-expose the exact same primitives (zero
// added state, every method a forwarded inline call) with the
// annotations attached, which is what makes the analysis leg of
// docs/ANALYSIS.md able to prove anything.
//
// Condition variables: MutexLock::native() hands out the underlying
// std::unique_lock<std::mutex> for std::condition_variable::wait. The
// analysis treats the capability as held across the wait — which is the
// truth at every point the waiting code can observe (wait() reacquires
// before returning).
#pragma once

#include <mutex>

#include "util/thread_annotations.h"

namespace kcore::util {

// A std::mutex that is a thread-safety-analysis capability. Lock
// manually only in code the analysis cannot express; prefer MutexLock.
class KCORE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KCORE_ACQUIRE() { mu_.lock(); }
  void Unlock() KCORE_RELEASE() { mu_.unlock(); }
  bool TryLock() KCORE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For MutexLock only: the raw mutex std::unique_lock needs.
  std::mutex& native_handle() { return mu_; }

 private:
  // kcore-lint: allow(unguarded-mutex) this IS the capability itself
  std::mutex mu_;
};

// RAII lock with scoped-capability semantics: construction acquires,
// destruction releases, and the analysis tracks the critical section's
// extent from the guard's scope.
class KCORE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KCORE_ACQUIRE(mu)
      : lock_(mu.native_handle()) {}
  ~MutexLock() KCORE_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // The underlying unique_lock, for std::condition_variable::wait. Do
  // not unlock() it manually — that desynchronizes the analysis state.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace kcore::util
