// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component of the library (graph generators, weight
// assignment, workload shuffling) draws from util::Rng seeded explicitly at
// the call site, so any experiment can be replayed bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace kcore::util {

// SplitMix64-seeded xoshiro256** generator.
//
// We intentionally avoid std::mt19937_64 for the core generator: its state
// is large and its distributions are not specified bit-exactly across
// standard library implementations. xoshiro256** is small, fast, has a
// 2^256-1 period, and our distribution helpers below are implemented
// in-house so results are identical on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  // Re-seeds the generator. Uses SplitMix64 to expand the single word seed
  // into four state words, as recommended by the xoshiro authors.
  void Seed(std::uint64_t seed);

  // Uniform 64-bit word.
  std::uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0.
  // Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Standard exponential variate with the given rate (rate > 0).
  double NextExponential(double rate);

  // Pareto-distributed variate with minimum x_min and shape alpha
  // (both > 0). Used by the power-law weight and degree models.
  double NextPareto(double x_min, double alpha);

  // Gaussian variate (Box-Muller; consumes two uniforms every other call).
  double NextGaussian(double mean, double stddev);

  // Fisher-Yates shuffle of [first, last).
  template <typename It>
  void Shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    if (n < 2) return;
    for (std::uint64_t i = n - 1; i > 0; --i) {
      const std::uint64_t j = NextBounded(i + 1);
      using std::swap;
      swap(first[i], first[j]);
    }
  }

  // Forks an independent stream; the child is seeded from this stream's
  // output so sub-generators used by parallel components do not collide.
  // Advances this stream by one draw — successive Fork() calls yield
  // distinct children.
  Rng Fork() { return Rng(Next() ^ 0x9e3779b97f4a7c15ULL); }

  // Keyed fork: derives the child for `key` from the CURRENT state without
  // advancing it, so the same (state, key) pair always yields the same
  // child and distinct keys yield independent streams. This is the
  // primitive behind per-entity RNG streams (one per simulated node): all
  // children can be derived from one master in any order — or in parallel
  // — and still come out identical.
  Rng ForkKeyed(std::uint64_t key) const;

 private:
  std::uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_spare_ = 0.0;
};

}  // namespace kcore::util
