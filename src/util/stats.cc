#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace kcore::util {

void Accumulator::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

namespace {

// Linear-interpolated quantile of an already-ASCENDING non-empty
// sequence, q clamped into [0, 1]. The single implementation behind both
// Percentile and Summarize, so the two cannot drift (Summarize used to
// duplicate this inline — without the clamp).
double SortedPercentile(std::span<const double> sorted, double q) {
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double Percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  return SortedPercentile(s, q);
}

Summary Summarize(std::span<const double> xs) {
  Summary out;
  if (xs.empty()) return out;
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  Accumulator acc;
  for (double x : s) acc.Add(x);
  out.count = acc.count();
  out.mean = acc.mean();
  out.stddev = acc.stddev();
  out.min = s.front();
  out.max = s.back();
  out.p50 = SortedPercentile(s, 0.50);
  out.p90 = SortedPercentile(s, 0.90);
  out.p99 = SortedPercentile(s, 0.99);
  return out;
}

std::string Summary::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4f sd=%.4f min=%.4f p50=%.4f p90=%.4f "
                "p99=%.4f max=%.4f",
                count, mean, stddev, min, p50, p90, p99, max);
  return buf;
}

}  // namespace kcore::util
