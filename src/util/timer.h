// Wall-clock timing helpers used by the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace kcore::util {

// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or last Reset().
  double Seconds() const;
  double Millis() const { return Seconds() * 1e3; }
  std::int64_t Micros() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kcore::util
