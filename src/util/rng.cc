#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace kcore::util {
namespace {

inline std::uint64_t SplitMix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
  has_gauss_ = false;
  gauss_spare_ = 0.0;
}

Rng Rng::ForkKeyed(std::uint64_t key) const {
  // Hash the key through SplitMix64 before mixing it with the state words
  // so adjacent keys (0, 1, 2, ... node ids) land in unrelated seeds;
  // Rng::Seed then SplitMix64-expands the combined word once more.
  std::uint64_t k = key;
  const std::uint64_t hashed = SplitMix64(k);
  return Rng(s_[0] ^ Rotl(s_[2], 29) ^ hashed);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t off = (span == 0) ? Next() : NextBounded(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + off);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  assert(rate > 0);
  // Avoid log(0) by sampling from (0, 1].
  const double u = 1.0 - NextDouble();
  return -std::log(u) / rate;
}

double Rng::NextPareto(double x_min, double alpha) {
  assert(x_min > 0 && alpha > 0);
  const double u = 1.0 - NextDouble();  // (0, 1]
  return x_min / std::pow(u, 1.0 / alpha);
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_gauss_) {
    has_gauss_ = false;
    return mean + stddev * gauss_spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * M_PI * u2);
  const double z1 = mag * std::sin(2.0 * M_PI * u2);
  gauss_spare_ = z1;
  has_gauss_ = true;
  return mean + stddev * z0;
}

}  // namespace kcore::util
