#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace kcore::util {

std::string FormatDouble(double v, int precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

Table::RowBuilder& Table::RowBuilder::Str(std::string v) {
  cells_.push_back(std::move(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Int(long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::UInt(unsigned long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Dbl(double v, int precision) {
  cells_.push_back(FormatDouble(v, precision));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_->AddRow(std::move(cells_)); }

std::string Table::ToText() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::ToMarkdown() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      os << row[c];
    }
    os << " |\n";
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print(std::FILE* out) const {
  const std::string s = ToText();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fflush(out);
}

}  // namespace kcore::util
