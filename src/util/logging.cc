#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/mutex.h"

namespace kcore::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
// Serializes the fprintf+fflush pair so concurrent log lines (pool
// workers, server connection handlers) never interleave mid-line. The
// protected resource is the stderr stream itself, not a member, so
// there is nothing to KCORE_GUARDED_BY.
// kcore-lint: allow(unguarded-mutex) guards the stderr stream, not data
Mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (static_cast<int>(level) <
      g_level.load(std::memory_order_relaxed)) {
    return;
  }
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, msg.c_str());
  std::fflush(stderr);
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n", Basename(file),
               line, expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace kcore::util
