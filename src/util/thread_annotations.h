// Clang thread-safety analysis attributes, no-op everywhere else.
//
// These macros let the compiler prove, at build time, that every access
// to a mutex-protected member actually holds the right lock — the
// static half of the concurrency contract docs/ANALYSIS.md describes
// (ThreadSanitizer is the dynamic half). Under clang the CI leg builds
// with -Wthread-safety -Werror, so an unannotated lock path is a build
// break, not a latent race.
//
// Vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   KCORE_GUARDED_BY(mu)     data member readable/writable only with mu held
//   KCORE_PT_GUARDED_BY(mu)  pointer member whose *pointee* needs mu
//   KCORE_REQUIRES(mu)       function callable only with mu already held
//   KCORE_EXCLUDES(mu)       function callable only with mu NOT held
//   KCORE_ACQUIRE(mu)        function acquires mu and returns holding it
//   KCORE_RELEASE(mu)        function releases mu
//   KCORE_CAPABILITY(name)   class whose instances are lockable capabilities
//   KCORE_SCOPED_CAPABILITY  RAII class acquiring in ctor, releasing in dtor
//   KCORE_NO_THREAD_SAFETY_ANALYSIS
//                            opt a function out; requires a comment proving
//                            the lock-free access is published correctly
//
// gcc and msvc do not implement the analysis; the attributes expand to
// nothing there, so annotated code compiles identically on every
// toolchain. util/mutex.h provides the annotated Mutex/MutexLock pair
// these attach to (std::mutex itself carries no capability attributes
// under libstdc++, so the analysis cannot see std::lock_guard).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define KCORE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define KCORE_THREAD_ANNOTATION(x)  // no-op
#endif

#define KCORE_CAPABILITY(x) KCORE_THREAD_ANNOTATION(capability(x))

#define KCORE_SCOPED_CAPABILITY KCORE_THREAD_ANNOTATION(scoped_lockable)

#define KCORE_GUARDED_BY(x) KCORE_THREAD_ANNOTATION(guarded_by(x))

#define KCORE_PT_GUARDED_BY(x) KCORE_THREAD_ANNOTATION(pt_guarded_by(x))

#define KCORE_ACQUIRED_BEFORE(...) \
  KCORE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define KCORE_ACQUIRED_AFTER(...) \
  KCORE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define KCORE_REQUIRES(...) \
  KCORE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define KCORE_REQUIRES_SHARED(...) \
  KCORE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define KCORE_ACQUIRE(...) \
  KCORE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define KCORE_ACQUIRE_SHARED(...) \
  KCORE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define KCORE_RELEASE(...) \
  KCORE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define KCORE_RELEASE_SHARED(...) \
  KCORE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define KCORE_TRY_ACQUIRE(...) \
  KCORE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define KCORE_EXCLUDES(...) KCORE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define KCORE_ASSERT_CAPABILITY(x) \
  KCORE_THREAD_ANNOTATION(assert_capability(x))

#define KCORE_RETURN_CAPABILITY(x) KCORE_THREAD_ANNOTATION(lock_returned(x))

#define KCORE_NO_THREAD_SAFETY_ANALYSIS \
  KCORE_THREAD_ANNOTATION(no_thread_safety_analysis)
