// Wire encoding for message-passing transports: LEB128-style varints plus
// fixed-width 64-bit fields, over caller-owned byte buffers.
//
// The serializing transports (distsim/transport.h,
// distsim/process_transport.h) pack every staged message into contiguous
// per-(src, dst) partition buffers before the alltoallv-style exchange,
// and the process backend's socketpair frames (count/displacement rows,
// peer length headers) are fixed64 rows of this codec too — the full
// byte layouts are tabulated in docs/TRANSPORTS.md. The format is
// deliberately boring and portable:
//
//   * Varint: unsigned little-endian base-128 (7 payload bits per byte,
//     MSB = continuation), at most kMaxVarintBytes bytes. The decoder
//     rejects truncated input and encodings that overflow 64 bits, so a
//     corrupted buffer surfaces as an error instead of a wrong value.
//   * Fixed32: exactly 4 bytes, little-endian — node-id records in the
//     binary graph format (graph/binio.h) where 8 bytes per id would
//     double the file size for no information.
//   * Fixed64 / Double: exactly 8 bytes, little-endian byte order
//     regardless of host endianness — two machines exchanging buffers
//     decode identical bit patterns, which the simulator's bit-determinism
//     contract requires.
//
// Writers come in two flavors: WireWriter operates on a pre-sized region
// (the transport computes exact byte counts in its census pass, so
// encoding never reallocates; overrunning the region is a KCORE_CHECK
// failure, not a silent corruption), and WireAppender grows a
// caller-owned std::vector for frames whose length is only known after
// encoding (the per-rank compute control frames of
// distsim/process_transport.cc). Readers come in checked (KCORE_CHECK on
// malformed input — for internal buffers where corruption is a bug) and
// Try* (bool-return — for callers that can recover) flavors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kcore::util {

// Longest valid varint: ceil(64 / 7) bytes.
inline constexpr std::size_t kMaxVarintBytes = 10;

// Exact number of bytes Varint(x) occupies on the wire (1..10).
std::size_t VarintSize(std::uint64_t x);

// Encodes into the caller-provided region [begin, end). Every Put checks
// the region has room; written() reports the cursor for callers that
// interleave several writers over one buffer.
class WireWriter {
 public:
  WireWriter(std::uint8_t* begin, std::uint8_t* end)
      : begin_(begin), p_(begin), end_(end) {}

  void Varint(std::uint64_t x);
  void Fixed32(std::uint32_t bits);
  void Fixed64(std::uint64_t bits);
  // Fixed64 of the IEEE-754 bit pattern (8 bytes, little-endian).
  void Double(double d);

  std::size_t written() const { return static_cast<std::size_t>(p_ - begin_); }
  std::size_t capacity() const {
    return static_cast<std::size_t>(end_ - begin_);
  }

 private:
  std::uint8_t* begin_;
  std::uint8_t* p_;
  std::uint8_t* end_;
};

// Appends the same encodings to a growing byte vector — for frames whose
// exact size is cheaper to discover by encoding than to precompute. The
// vector is caller-owned (so scratch persists across frames); Appender
// writes start at the vector's current end.
class WireAppender {
 public:
  explicit WireAppender(std::vector<std::uint8_t>& out) : out_(out) {}

  void Varint(std::uint64_t x);
  void Fixed32(std::uint32_t bits);
  void Fixed64(std::uint64_t bits);
  void Double(double d);
  // Appends `len` raw bytes (a blob whose length a preceding varint
  // carries).
  void Raw(const void* data, std::size_t len);

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

// Decodes from [data, data + size). Try* getters return false — and mark
// the reader failed — on truncated or overlong input without touching
// *out; the checked getters KCORE_CHECK instead (internal buffers only).
// Once failed, every later read fails too, so a decode loop can check
// failed() once at the end instead of after every field.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  bool TryVarint(std::uint64_t* out);
  bool TryFixed32(std::uint32_t* out);
  bool TryFixed64(std::uint64_t* out);
  bool TryDouble(double* out);
  // Copies `len` raw bytes (an embedded string/blob whose length came
  // from a preceding varint) into out.
  bool TryRaw(void* out, std::size_t len);

  // Checked getters: KCORE_CHECK on truncated/overlong input. For
  // internal buffers (transport frames, packed segments) where a decode
  // failure is a bug, not a recoverable condition.
  std::uint64_t Varint();
  std::uint32_t Fixed32();
  std::uint64_t Fixed64();
  double Double();

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool failed() const { return failed_; }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool failed_ = false;
};

}  // namespace kcore::util
