// Incremental maintenance of coreness under edge updates, in the spirit
// of Aridhi, Brugnara, Montresor, Velegrakis (DEBS 2016) — the dynamic
// extension the paper cites.
//
// The exact weighted coreness is the GREATEST fixpoint of the per-node
// map F(b)_v = max{ k : sum_{u in N(v): b_u >= k} w(uv) >= k } (the
// Algorithm 3 update). Chaotic iteration of the monotone map F from any
// state that dominates the fixpoint pointwise descends to it; this gives
// two provably correct, LOCAL update rules:
//
//   * DELETION: coreness can only decrease, so the pre-update values
//     dominate the post-update fixpoint. A worklist seeded with the two
//     endpoints descends locally — typically touching a handful of nodes.
//
//   * INSERTION of weight w: c_new(x) <= c_old(x) + w for every x (a new
//     edge raises any subgraph's min degree by at most w), so lifting
//     values by w dominates the new fixpoint. The lift need not be
//     global: only nodes in the candidate REGION computed by
//     CollectInsertRegion can rise at all, so lifting the region and
//     seeding the descent with it is exact. The region is the closure,
//     from the eligible endpoints, of the edge relation
//         x -> y  iff  c(y) < c(x) + w  and  CanRise(y),
//     where CanRise(y) is the local support test
//         sum_{z in N(y): c(z) + w > c(y)} w(yz) > c(y).
//     Soundness: every node y whose coreness rises (y not an endpoint)
//     must keep support at its new level c'(y) > c(y), and if no
//     supporting neighbor had risen the same support would certify
//     F(c)_y > c(y) in the OLD graph — contradicting the fixpoint. So
//     every riser has a RISING neighbor z with c'(z) >= c'(y), which
//     gives c(y) < c(z) + w; chains of such supporters only terminate at
//     an endpoint whose rise is enabled by the new edge itself
//     (c(u) < c(v) + w). A riser outside the closure would make the
//     state "old values outside / new values inside" a pre-fixpoint of
//     the OLD map strictly above the old fixpoint — impossible, since
//     the coreness is the greatest such state (Knaster–Tarski). A
//     pendant insertion therefore touches O(1) nodes, not O(n).
//
// InsertEdgeGlobalOracle keeps the original global lift-everything
// descent as a slow reference: tests assert the localized path lands on
// the bit-identical fixpoint under adversarial churn.
//
// The maintained values are asserted (in tests) to equal a from-scratch
// recomputation after arbitrary update sequences.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace kcore::dynamic {

using NodeId = graph::NodeId;

struct UpdateStats {
  // Nodes whose value was recomputed while draining the worklist.
  std::size_t recomputations = 0;
  // Nodes whose coreness actually changed.
  std::size_t changed = 0;
  // Size of the candidate region that was lifted (insertions only).
  std::size_t region = 0;
};

class DynamicCoreMaintenance {
 public:
  // Starts from an edgeless graph on n nodes (all coreness 0).
  explicit DynamicCoreMaintenance(NodeId n);
  // Starts from an existing simple graph (computes the fixpoint).
  explicit DynamicCoreMaintenance(const graph::Graph& g);

  // Inserts an undirected edge (parallel edges allowed; self-loops not).
  // Localized: lifts and descends only the candidate region reachable
  // from the endpoints (see file comment), so the cost is proportional
  // to the affected neighborhood, not to n.
  UpdateStats InsertEdge(NodeId u, NodeId v, double w = 1.0);

  // Slow reference for tests: the original global lift (every node +w,
  // descent seeded with all nodes). Lands on the same fixpoint as
  // InsertEdge bit-for-bit; costs Theta(n + m) per call.
  UpdateStats InsertEdgeGlobalOracle(NodeId u, NodeId v, double w = 1.0);

  // Deletes one edge u-v with the given weight (must exist).
  // Returns stats; check `found` on the result of HasEdge first if
  // unsure.
  UpdateStats DeleteEdge(NodeId u, NodeId v, double w = 1.0);

  bool HasEdge(NodeId u, NodeId v, double w = 1.0) const;

  // Grows the node universe to at least n nodes (new nodes are isolated,
  // coreness 0). Existing values are untouched; the streaming server
  // uses this to admit never-before-seen ids.
  void EnsureNodes(NodeId n);

  // Current coreness values (always the exact fixpoint).
  const std::vector<double>& coreness() const { return core_; }

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  std::size_t num_edges() const { return m_; }

  // Exports the current graph (for cross-checking in tests).
  graph::Graph Snapshot() const;

 private:
  struct Slot {
    NodeId to;
    double w;
  };

  // Recomputes F(core_)_v into the member scratch buffers (no per-call
  // allocation once the buffers have grown to the max degree seen).
  double Recompute(NodeId v);
  // Descends to the greatest fixpoint from the current (dominating)
  // state; worklist seeded by `seeds`.
  UpdateStats Descend(std::span<const NodeId> seeds);
  // Appends the adjacency slots of a new u-v edge.
  void AddSlots(NodeId u, NodeId v, double w);
  // Fills region_ with the candidate rising set for an insert of weight
  // w on edge (u, v); region_mark_ flags members (callers must clear).
  void CollectInsertRegion(NodeId u, NodeId v, double w);
  // True if y's local support allows a coreness above core_[y] after a
  // +w lift of its neighbors (necessary condition for rising).
  bool CanRise(NodeId y, double w) const;

  std::vector<std::vector<Slot>> adj_;
  std::vector<double> core_;
  std::size_t m_ = 0;

  // Reusable scratch (sized to the graph / max degree; never shrunk).
  std::vector<char> queued_;        // Descend: worklist membership
  std::vector<char> region_mark_;   // CollectInsertRegion: membership
  std::vector<NodeId> region_;      // CollectInsertRegion: members
  std::vector<NodeId> worklist_;    // Descend: FIFO worklist
  std::vector<double> before_;      // InsertEdge: pre-lift region values
  std::vector<double> scratch_values_;
  std::vector<double> scratch_weights_;
  std::vector<std::uint32_t> scratch_order_;
};

}  // namespace kcore::dynamic
