// Incremental maintenance of coreness under edge updates, in the spirit
// of Aridhi, Brugnara, Montresor, Velegrakis (DEBS 2016) — the dynamic
// extension the paper cites.
//
// The exact weighted coreness is the GREATEST fixpoint of the per-node
// map F(b)_v = max{ k : sum_{u in N(v): b_u >= k} w(uv) >= k } (the
// Algorithm 3 update). Chaotic iteration of the monotone map F from any
// state that dominates the fixpoint pointwise descends to it; this gives
// two provably correct update rules:
//
//   * DELETION: coreness can only decrease, so the pre-update values
//     dominate the post-update fixpoint. A worklist seeded with the two
//     endpoints descends locally — typically touching a handful of nodes.
//
//   * INSERTION of weight w: c_new(x) <= c_old(x) + w for every x (a new
//     edge raises any subgraph's min degree by at most w), so lifting
//     every value by w dominates the new fixpoint and the worklist
//     descent is again correct. The lift is a global O(n) scan, but the
//     measured recomputation work (nodes whose value actually moves)
//     stays local — the experiment harness reports both.
//
// The maintained values are asserted (in tests) to equal a from-scratch
// recomputation after arbitrary update sequences.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kcore::dynamic {

using NodeId = graph::NodeId;

struct UpdateStats {
  // Nodes whose value was recomputed while draining the worklist.
  std::size_t recomputations = 0;
  // Nodes whose coreness actually changed.
  std::size_t changed = 0;
};

class DynamicCoreMaintenance {
 public:
  // Starts from an edgeless graph on n nodes (all coreness 0).
  explicit DynamicCoreMaintenance(NodeId n);
  // Starts from an existing simple graph (computes the fixpoint).
  explicit DynamicCoreMaintenance(const graph::Graph& g);

  // Inserts an undirected edge (parallel edges allowed; self-loops not).
  UpdateStats InsertEdge(NodeId u, NodeId v, double w = 1.0);

  // Deletes one edge u-v with the given weight (must exist).
  // Returns stats; check `found` on the result of HasEdge first if
  // unsure.
  UpdateStats DeleteEdge(NodeId u, NodeId v, double w = 1.0);

  bool HasEdge(NodeId u, NodeId v, double w = 1.0) const;

  // Current coreness values (always the exact fixpoint).
  const std::vector<double>& coreness() const { return core_; }

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  std::size_t num_edges() const { return m_; }

  // Exports the current graph (for cross-checking in tests).
  graph::Graph Snapshot() const;

 private:
  struct Slot {
    NodeId to;
    double w;
  };

  double Recompute(NodeId v) const;
  // Descends to the greatest fixpoint from the current (dominating)
  // state; worklist seeded by `seeds`.
  UpdateStats Descend(std::vector<NodeId> seeds);

  std::vector<std::vector<Slot>> adj_;
  std::vector<double> core_;
  std::size_t m_ = 0;
};

}  // namespace kcore::dynamic
