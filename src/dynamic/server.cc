#include "dynamic/server.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/fdio.h"
#include "util/logging.h"

namespace kcore::dynamic {

namespace {

// Binds a Unix stream socket at `path` (unlinking any stale socket
// first). Returns the listening fd or -1.
int BindAndListen(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    KCORE_LOG(kError) << "socket path too long: '" << path << "'";
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    KCORE_LOG(kError) << "socket(): " << std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    KCORE_LOG(kError) << "bind('" << path << "'): " << std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) < 0) {
    KCORE_LOG(kError) << "listen('" << path
                      << "'): " << std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

CorenessServer::CorenessServer(ServerOptions opts)
    : opts_(std::move(opts)), maintenance_(opts_.initial_nodes) {}

CorenessServer::CorenessServer(ServerOptions opts, const graph::Graph& seed)
    : opts_(std::move(opts)), maintenance_(seed) {
  opts_.initial_nodes = std::max(opts_.initial_nodes, seed.num_nodes());
}

CorenessServer::~CorenessServer() { Stop(); }

void CorenessServer::PublishSnapshotLocked() {
  auto snap = std::make_shared<CorenessSnapshot>();
  snap->epoch = ++epoch_;
  snap->num_edges = maintenance_.num_edges();
  snap->coreness = maintenance_.coreness();
  for (double c : snap->coreness) {
    snap->degeneracy = std::max(snap->degeneracy, c);
  }
  util::MutexLock lk(snapshot_mu_);
  snapshot_ = std::move(snap);
}

std::shared_ptr<const CorenessSnapshot> CorenessServer::snapshot() const {
  util::MutexLock lk(snapshot_mu_);
  return snapshot_;
}

std::uint64_t CorenessServer::total_updates_applied() const {
  return total_updates_.load(std::memory_order_relaxed);
}

bool CorenessServer::Start() {
  {
    util::MutexLock lk(state_mu_);
    KCORE_CHECK_MSG(!started_, "CorenessServer started twice");
    started_ = true;
  }
  {
    util::MutexLock lk(update_mu_);
    PublishSnapshotLocked();  // epoch 1: the pre-traffic fixpoint
  }
  const auto fail = [this] {
    // Nothing will ever run the accept loop: let Wait/Stop fall through.
    util::MutexLock lk(state_mu_);
    accept_done_ = true;
    stop_requested_ = true;
    state_cv_.notify_all();
    return false;
  };
  const int listen_fd = BindAndListen(opts_.socket_path);
  if (listen_fd < 0) return fail();
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    KCORE_LOG(kError) << "pipe(): " << std::strerror(errno);
    ::close(listen_fd);
    return fail();
  }
  {
    util::MutexLock lk(state_mu_);
    listen_fd_ = listen_fd;
    stop_pipe_[0] = pipe_fds[0];
    stop_pipe_[1] = pipe_fds[1];
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void CorenessServer::RequestStop() {
  util::MutexLock lk(state_mu_);
  if (stop_requested_) return;
  stop_requested_ = true;
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    (void)!::write(stop_pipe_[1], &byte, 1);
  }
  state_cv_.notify_all();
}

void CorenessServer::AcceptLoop() {
  // Snapshot the fds once: they were published before this thread was
  // spawned and stay open until JoinAll has joined it, so the local
  // copies cannot dangle while the loop runs.
  int listen_fd = -1;
  int stop_fd = -1;
  {
    util::MutexLock lk(state_mu_);
    listen_fd = listen_fd_;
    stop_fd = stop_pipe_[0];
  }
  for (;;) {
    struct pollfd pfds[2] = {{listen_fd, POLLIN, 0},
                             {stop_fd, POLLIN, 0}};
    if (util::PollRetry(pfds, 2, -1) < 0) break;
    if ((pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) break;
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    util::MutexLock lk(conns_mu_);
    const std::size_t slot = conn_fds_.size();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, slot] { ServeConnection(slot); });
  }
  util::MutexLock lk(state_mu_);
  accept_done_ = true;
  // An accept-loop failure (poll/accept error) counts as a stop request:
  // Wait() must not block on a server that can no longer serve.
  stop_requested_ = true;
  state_cv_.notify_all();
}

void CorenessServer::ServeConnection(std::size_t slot) {
  int fd = -1;
  {
    util::MutexLock lk(conns_mu_);
    fd = conn_fds_[slot];
  }
  std::vector<std::uint8_t> payload;
  bool stop = false;
  while (!stop && ReadFrame(fd, &payload)) {
    if (!HandleFrame(fd, payload, &stop)) break;
  }
  if (stop) RequestStop();
  util::MutexLock lk(conns_mu_);
  if (conn_fds_[slot] >= 0) {
    ::close(conn_fds_[slot]);
    conn_fds_[slot] = -1;
  }
}

bool CorenessServer::HandleFrame(int fd,
                                 const std::vector<std::uint8_t>& payload,
                                 bool* stop) {
  util::WireReader r(payload.data(), payload.size());
  std::uint64_t op = 0;
  if (!r.TryFixed64(&op)) {
    return WriteErrorFrame(fd, "truncated request (no opcode)");
  }
  switch (op) {
    case kOpUpdateBatch:
      return HandleUpdateBatch(fd, r);
    case kOpQueryCoreness:
      return HandleQueryCoreness(fd, r);
    case kOpStats:
      return HandleStats(fd);
    case kOpShutdown: {
      FrameBuilder b;
      b.Fixed64(kStatusOk);
      const bool ok = WriteFrame(fd, b.payload());
      *stop = true;
      return ok;
    }
    default:
      return WriteErrorFrame(fd, "unknown opcode");
  }
}

bool CorenessServer::HandleUpdateBatch(int fd, util::WireReader& r) {
  std::uint64_t count = 0;
  if (!r.TryVarint(&count) || count > kMaxFrameBytes) {
    return WriteErrorFrame(fd, "malformed update batch header");
  }
  std::vector<EdgeUpdate> ops;
  ops.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t kind = 0, u = 0, v = 0;
    double w = 1.0;
    if (!r.TryVarint(&kind) || !r.TryVarint(&u) || !r.TryVarint(&v) ||
        !r.TryDouble(&w) || kind > 1) {
      return WriteErrorFrame(fd, "malformed update batch body");
    }
    ops.push_back(EdgeUpdate{static_cast<EdgeUpdate::Kind>(kind),
                             static_cast<NodeId>(u),
                             static_cast<NodeId>(v), w});
    if (u > opts_.max_nodes || v > opts_.max_nodes) {
      // Keep the raw 64-bit id out of NodeId range issues: mark it
      // unapplicable by pointing both endpoints at the cap (rejected
      // below, deterministically).
      ops.back().u = ops.back().v = opts_.max_nodes;
    }
  }

  std::uint64_t applied = 0, rejected = 0, recomputations = 0, changed = 0;
  std::uint64_t epoch = 0;
  {
    util::MutexLock lk(update_mu_);
    for (const EdgeUpdate& op : ops) {
      const NodeId hi = std::max(op.u, op.v);
      const bool id_ok =
          op.u != op.v && hi < opts_.max_nodes &&
          (hi < maintenance_.num_nodes() || opts_.allow_growth);
      if (op.kind == EdgeUpdate::Kind::kInsert) {
        if (!id_ok || !(op.w >= 0.0) || !std::isfinite(op.w)) {
          ++rejected;
          continue;
        }
        maintenance_.EnsureNodes(hi + 1);
        const UpdateStats s = maintenance_.InsertEdge(op.u, op.v, op.w);
        recomputations += s.recomputations;
        changed += s.changed;
        ++applied;
      } else {
        if (op.u == op.v || !maintenance_.HasEdge(op.u, op.v, op.w)) {
          ++rejected;
          continue;
        }
        const UpdateStats s = maintenance_.DeleteEdge(op.u, op.v, op.w);
        recomputations += s.recomputations;
        changed += s.changed;
        ++applied;
      }
    }
    total_updates_.fetch_add(applied, std::memory_order_relaxed);
    PublishSnapshotLocked();
    epoch = epoch_;
  }

  FrameBuilder b;
  b.Fixed64(kStatusOk);
  b.Varint(epoch);
  b.Varint(applied);
  b.Varint(rejected);
  b.Varint(recomputations);
  b.Varint(changed);
  return WriteFrame(fd, b.payload());
}

bool CorenessServer::HandleQueryCoreness(int fd, util::WireReader& r) {
  std::uint64_t count = 0;
  if (!r.TryVarint(&count) || count > kMaxFrameBytes) {
    return WriteErrorFrame(fd, "malformed query header");
  }
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(count));
  for (auto& id : ids) {
    if (!r.TryVarint(&id)) {
      return WriteErrorFrame(fd, "malformed query body");
    }
  }
  // Reads answer from the published snapshot only: no maintenance lock,
  // so a slow update batch never delays this reply.
  const std::shared_ptr<const CorenessSnapshot> snap = snapshot();
  FrameBuilder b;
  b.Fixed64(kStatusOk);
  b.Varint(snap->epoch);
  b.Varint(ids.size());
  for (std::uint64_t id : ids) {
    b.Double(id < snap->coreness.size()
                 ? snap->coreness[static_cast<std::size_t>(id)]
                 : 0.0);
  }
  return WriteFrame(fd, b.payload());
}

bool CorenessServer::HandleStats(int fd) {
  const std::shared_ptr<const CorenessSnapshot> snap = snapshot();
  const std::uint64_t total = total_updates_.load(std::memory_order_relaxed);
  FrameBuilder b;
  b.Fixed64(kStatusOk);
  b.Varint(snap->epoch);
  b.Varint(snap->coreness.size());
  b.Varint(snap->num_edges);
  b.Double(snap->degeneracy);
  b.Varint(total);
  return WriteFrame(fd, b.payload());
}

void CorenessServer::JoinAll() {
  {
    util::MutexLock lk(state_mu_);
    if (joined_) return;
    joined_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake any handler blocked in ReadFrame, then join.
  {
    util::MutexLock lk(conns_mu_);
    for (int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> threads;
  {
    util::MutexLock lk(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    util::MutexLock lk(conns_mu_);
    for (int& fd : conn_fds_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
  util::MutexLock lk(state_mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socket_path.c_str());
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void CorenessServer::Wait() {
  {
    util::MutexLock lk(state_mu_);
    if (!started_) return;
    while (!(stop_requested_ && accept_done_)) state_cv_.wait(lk.native());
  }
  JoinAll();
}

void CorenessServer::Stop() {
  {
    util::MutexLock lk(state_mu_);
    if (!started_) return;
  }
  RequestStop();
  {
    util::MutexLock lk(state_mu_);
    while (!accept_done_) state_cv_.wait(lk.native());
  }
  JoinAll();
}

}  // namespace kcore::dynamic
