// Wire protocol for the streaming coreness server (dynamic/server.h):
// opcodes, frame helpers, and the shared request/response field layouts
// used by both CorenessServer and CorenessClient.
//
// Everything rides the PR 4-5 wire layer verbatim: fields are
// util::Wire varints / fixed64 / doubles, and every message is one
// FRAME on a SOCK_STREAM Unix socket —
//
//   fixed64 payload_length | payload bytes
//
// exactly the length-prefixed segment framing the process transport
// uses between ranks (docs/TRANSPORTS.md). Byte layouts per opcode are
// tabulated in docs/SERVER.md; the summary:
//
//   request  = fixed64 opcode, then opcode-specific fields
//   response = fixed64 status (0 ok, 1 error), then
//              ok    -> opcode-specific fields
//              error -> varint message_length, message bytes
//
// A malformed frame (bad length, truncated fields) never kills the
// server: the offending connection is answered with an error frame or
// dropped, and every other client keeps streaming.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/wire.h"

namespace kcore::dynamic {

// --- Opcodes (fixed64, arbitrary distinct tags) -------------------------

// Batched edge updates: varint count, then per update
//   varint kind (0 insert, 1 delete), varint u, varint v, double w.
// Ok-response: varint epoch, varint applied, varint rejected,
//   varint recomputations, varint changed.
inline constexpr std::uint64_t kOpUpdateBatch = 0x48435442ULL;    // "BTCH"
// Coreness point queries: varint count, then varint node ids.
// Ok-response: varint epoch, varint count, then count doubles (ids the
// server has never seen answer 0.0 — an isolated node's coreness).
inline constexpr std::uint64_t kOpQueryCoreness = 0x43595251ULL;  // "QRYC"
// Snapshot statistics (empty request). Ok-response: varint epoch,
// varint num_nodes, varint num_edges, double degeneracy (max coreness),
// varint total updates applied since start.
inline constexpr std::uint64_t kOpStats = 0x54415453ULL;          // "STAT"
// Graceful shutdown (empty request). Ok-response: empty; the server
// stops accepting and drains after the ack.
inline constexpr std::uint64_t kOpShutdown = 0x504f5453ULL;       // "STOP"

inline constexpr std::uint64_t kStatusOk = 0;
inline constexpr std::uint64_t kStatusError = 1;

// Frames above this payload size are rejected (the connection is
// dropped): a desynced or hostile client must not make the server
// allocate gigabytes.
inline constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;

// One edge update, as carried by kOpUpdateBatch.
struct EdgeUpdate {
  enum class Kind : std::uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = Kind::kInsert;
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  double w = 1.0;
};

// --- Frame I/O over blocking descriptors (util/fdio) --------------------

// Appends wire-encoded fields to a growable payload buffer, then hands
// the finished payload to WriteFrame. (util::WireWriter needs a
// pre-sized region; this is the convenience layer on top for the
// request/response sizes the server deals in.)
class FrameBuilder {
 public:
  void Varint(std::uint64_t x);
  void Fixed64(std::uint64_t bits);
  void Double(double d);
  void Bytes(const void* data, std::size_t len);

  std::span<const std::uint8_t> payload() const { return buf_; }
  void Clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Writes one frame (length prefix + payload). False on any I/O error
// (EPIPE from a dead peer included; never SIGPIPE).
bool WriteFrame(int fd, std::span<const std::uint8_t> payload);

// Reads one frame into *payload. Returns false on EOF, I/O error, or a
// length prefix above kMaxFrameBytes; the caller should drop the
// connection (the stream can be mid-frame).
bool ReadFrame(int fd, std::vector<std::uint8_t>* payload);

// Convenience: an error response frame carrying `message`.
bool WriteErrorFrame(int fd, const std::string& message);

// Decodes an error response body (after the status field). Returns the
// message, or a placeholder if the frame is malformed.
std::string ReadErrorMessage(util::WireReader& r);

}  // namespace kcore::dynamic
