// Blocking client for the streaming coreness server (dynamic/server.h).
//
// One CorenessClient owns one connection and is NOT thread-safe; open
// one client per thread for concurrent load (the server multiplexes).
// Every method is a full request/response round trip over the framed
// dynamic/protocol.h wire format; any I/O or decode failure closes the
// connection, records last_error(), and returns nullopt/false.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dynamic/protocol.h"
#include "graph/graph.h"

namespace kcore::dynamic {

class CorenessClient {
 public:
  CorenessClient() = default;
  ~CorenessClient() { Close(); }

  CorenessClient(const CorenessClient&) = delete;
  CorenessClient& operator=(const CorenessClient&) = delete;

  // Connects to the server's Unix socket. False (with last_error set)
  // on failure.
  bool Connect(const std::string& socket_path);
  // Retries Connect every delay_ms until it succeeds or attempts run
  // out — for racing a freshly exec'd server (CI smoke).
  bool ConnectWithRetry(const std::string& socket_path, int attempts,
                        int delay_ms);

  bool connected() const { return fd_ >= 0; }
  void Close();

  struct UpdateAck {
    std::uint64_t epoch = 0;
    std::uint64_t applied = 0;
    std::uint64_t rejected = 0;
    std::uint64_t recomputations = 0;
    std::uint64_t changed = 0;
  };
  // Applies a batch of edge updates; the ack reports the post-batch
  // snapshot epoch and per-batch maintenance work.
  std::optional<UpdateAck> ApplyUpdates(std::span<const EdgeUpdate> batch);

  struct CorenessReply {
    std::uint64_t epoch = 0;
    std::vector<double> values;  // aligned with the queried ids
  };
  std::optional<CorenessReply> QueryCoreness(
      std::span<const graph::NodeId> ids);

  struct StatsReply {
    std::uint64_t epoch = 0;
    std::uint64_t num_nodes = 0;
    std::uint64_t num_edges = 0;
    double degeneracy = 0.0;
    std::uint64_t total_updates = 0;
  };
  std::optional<StatsReply> Stats();

  // Asks the server to stop; true once the ack arrives.
  bool Shutdown();

  const std::string& last_error() const { return last_error_; }

 private:
  // Sends `req` and reads the response payload; true when the response
  // status is kStatusOk and *resp holds the fields after the status.
  bool RoundTrip(const FrameBuilder& req, std::vector<std::uint8_t>* resp);
  bool Fail(const std::string& what);

  int fd_ = -1;
  std::string last_error_;
  std::vector<std::uint8_t> resp_buf_;
};

}  // namespace kcore::dynamic
