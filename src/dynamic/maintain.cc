#include "dynamic/maintain.h"

#include <algorithm>
#include <numeric>

#include "core/update.h"
#include "util/logging.h"

namespace kcore::dynamic {

DynamicCoreMaintenance::DynamicCoreMaintenance(NodeId n)
    : adj_(n), core_(n, 0.0) {}

DynamicCoreMaintenance::DynamicCoreMaintenance(const graph::Graph& g)
    : adj_(g.num_nodes()), core_(g.num_nodes(), 0.0) {
  KCORE_CHECK_MSG(!g.has_self_loops(), "simple graphs only");
  for (const graph::Edge& e : g.edges()) {
    adj_[e.u].push_back(Slot{e.v, e.w});
    adj_[e.v].push_back(Slot{e.u, e.w});
    ++m_;
  }
  // Initial fixpoint: start from the trivially dominating state (the
  // weighted degree bounds coreness) and descend globally.
  for (NodeId v = 0; v < num_nodes(); ++v) {
    double deg = 0.0;
    for (const Slot& s : adj_[v]) deg += s.w;
    core_[v] = deg;
  }
  std::vector<NodeId> all(num_nodes());
  std::iota(all.begin(), all.end(), 0u);
  Descend(std::move(all));
}

double DynamicCoreMaintenance::Recompute(NodeId v) const {
  const auto& nbrs = adj_[v];
  if (nbrs.empty()) return 0.0;
  std::vector<double> values(nbrs.size());
  std::vector<double> weights(nbrs.size());
  std::vector<std::uint32_t> order(nbrs.size());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    values[i] = core_[nbrs[i].to];
    weights[i] = nbrs[i].w;
    order[i] = static_cast<std::uint32_t>(i);
  }
  return core::UpdateStep(values, weights, order).b;
}

UpdateStats DynamicCoreMaintenance::Descend(std::vector<NodeId> seeds) {
  UpdateStats stats;
  std::vector<char> queued(num_nodes(), 0);
  std::vector<NodeId> worklist = std::move(seeds);
  for (NodeId v : worklist) queued[v] = 1;
  std::size_t head = 0;
  while (head < worklist.size()) {
    const NodeId v = worklist[head++];
    queued[v] = 0;
    ++stats.recomputations;
    const double nb = std::min(core_[v], Recompute(v));
    if (nb == core_[v]) continue;
    core_[v] = nb;
    ++stats.changed;
    for (const Slot& s : adj_[v]) {
      if (!queued[s.to]) {
        queued[s.to] = 1;
        worklist.push_back(s.to);
      }
    }
  }
  return stats;
}

UpdateStats DynamicCoreMaintenance::InsertEdge(NodeId u, NodeId v, double w) {
  KCORE_CHECK_MSG(u != v, "self-loops unsupported");
  KCORE_CHECK(u < num_nodes() && v < num_nodes() && w >= 0.0);
  adj_[u].push_back(Slot{v, w});
  adj_[v].push_back(Slot{u, w});
  ++m_;
  // Lift: c_new <= c_old + w pointwise, so the lifted state dominates the
  // new fixpoint and worklist descent is exact (see header).
  const std::vector<double> before = core_;
  for (NodeId x = 0; x < num_nodes(); ++x) {
    if (!adj_[x].empty()) core_[x] += w;
  }
  std::vector<NodeId> all;
  all.reserve(num_nodes());
  for (NodeId x = 0; x < num_nodes(); ++x) {
    if (!adj_[x].empty()) all.push_back(x);
  }
  UpdateStats stats = Descend(std::move(all));
  // Report semantic changes (vs the pre-insert fixpoint), not descent
  // steps from the lifted state.
  stats.changed = 0;
  for (NodeId x = 0; x < num_nodes(); ++x) {
    if (core_[x] != before[x]) ++stats.changed;
  }
  return stats;
}

bool DynamicCoreMaintenance::HasEdge(NodeId u, NodeId v, double w) const {
  if (u >= num_nodes()) return false;
  for (const Slot& s : adj_[u]) {
    if (s.to == v && s.w == w) return true;
  }
  return false;
}

UpdateStats DynamicCoreMaintenance::DeleteEdge(NodeId u, NodeId v, double w) {
  KCORE_CHECK_MSG(HasEdge(u, v, w), "edge not present");
  const auto erase_one = [](std::vector<Slot>& list, NodeId to, double w2) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].to == to && list[i].w == w2) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
    KCORE_CHECK_MSG(false, "slot missing");
  };
  erase_one(adj_[u], v, w);
  erase_one(adj_[v], u, w);
  --m_;
  // Coreness only decreases: current values dominate; purely local.
  return Descend({u, v});
}

graph::Graph DynamicCoreMaintenance::Snapshot() const {
  graph::GraphBuilder b(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const Slot& s : adj_[v]) {
      if (v < s.to) b.AddEdge(v, s.to, s.w);
    }
  }
  return std::move(b).Build();
}

}  // namespace kcore::dynamic
