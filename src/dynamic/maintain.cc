#include "dynamic/maintain.h"

#include <algorithm>
#include <numeric>

#include "core/update.h"
#include "util/logging.h"

namespace kcore::dynamic {

DynamicCoreMaintenance::DynamicCoreMaintenance(NodeId n)
    : adj_(n), core_(n, 0.0), queued_(n, 0), region_mark_(n, 0) {}

DynamicCoreMaintenance::DynamicCoreMaintenance(const graph::Graph& g)
    : DynamicCoreMaintenance(g.num_nodes()) {
  KCORE_CHECK_MSG(!g.has_self_loops(), "simple graphs only");
  for (const graph::Edge& e : g.edges()) {
    adj_[e.u].push_back(Slot{e.v, e.w});
    adj_[e.v].push_back(Slot{e.u, e.w});
    ++m_;
  }
  // Initial fixpoint: start from the trivially dominating state (the
  // weighted degree bounds coreness) and descend globally.
  for (NodeId v = 0; v < num_nodes(); ++v) {
    double deg = 0.0;
    for (const Slot& s : adj_[v]) deg += s.w;
    core_[v] = deg;
  }
  std::vector<NodeId> all(num_nodes());
  std::iota(all.begin(), all.end(), 0u);
  Descend(all);
}

void DynamicCoreMaintenance::EnsureNodes(NodeId n) {
  if (n <= num_nodes()) return;
  adj_.resize(n);
  core_.resize(n, 0.0);
  queued_.resize(n, 0);
  region_mark_.resize(n, 0);
}

double DynamicCoreMaintenance::Recompute(NodeId v) {
  const auto& nbrs = adj_[v];
  if (nbrs.empty()) return 0.0;
  const std::size_t d = nbrs.size();
  if (scratch_values_.size() < d) {
    scratch_values_.resize(d);
    scratch_weights_.resize(d);
    scratch_order_.resize(d);
  }
  for (std::size_t i = 0; i < d; ++i) {
    scratch_values_[i] = core_[nbrs[i].to];
    scratch_weights_[i] = nbrs[i].w;
    scratch_order_[i] = static_cast<std::uint32_t>(i);
  }
  return core::UpdateStep({scratch_values_.data(), d},
                          {scratch_weights_.data(), d},
                          {scratch_order_.data(), d})
      .b;
}

UpdateStats DynamicCoreMaintenance::Descend(std::span<const NodeId> seeds) {
  UpdateStats stats;
  worklist_.assign(seeds.begin(), seeds.end());
  for (NodeId v : worklist_) queued_[v] = 1;
  std::size_t head = 0;
  while (head < worklist_.size()) {
    const NodeId v = worklist_[head++];
    queued_[v] = 0;
    ++stats.recomputations;
    const double nb = std::min(core_[v], Recompute(v));
    if (nb == core_[v]) continue;
    core_[v] = nb;
    ++stats.changed;
    for (const Slot& s : adj_[v]) {
      if (!queued_[s.to]) {
        queued_[s.to] = 1;
        worklist_.push_back(s.to);
      }
    }
  }
  // Every pop clears its queued_ flag, so the membership scratch is all
  // zero again here — no O(n) reset between updates.
  return stats;
}

void DynamicCoreMaintenance::AddSlots(NodeId u, NodeId v, double w) {
  KCORE_CHECK_MSG(u != v, "self-loops unsupported");
  KCORE_CHECK(u < num_nodes() && v < num_nodes() && w >= 0.0);
  adj_[u].push_back(Slot{v, w});
  adj_[v].push_back(Slot{u, w});
  ++m_;
}

bool DynamicCoreMaintenance::CanRise(NodeId y, double w) const {
  // Rising to any level k > core_[y] needs sum_{z: c'(z) >= k} w(yz) >= k
  // with c'(z) <= core_[z] + w, so in particular
  //   sum_{z: core_[z] + w > core_[y]} w(yz) > core_[y].
  double support = 0.0;
  const double need = core_[y];
  for (const Slot& s : adj_[y]) {
    if (core_[s.to] + w > need) {
      support += s.w;
      if (support > need) return true;
    }
  }
  return false;
}

void DynamicCoreMaintenance::CollectInsertRegion(NodeId u, NodeId v,
                                                 double w) {
  region_.clear();
  const auto push = [this](NodeId y) {
    if (!region_mark_[y]) {
      region_mark_[y] = 1;
      region_.push_back(y);
    }
  };
  // An endpoint's rise must be enabled by the new edge itself: the far
  // end has to be able to reach the new level, i.e. c(x) < c(other) + w.
  // (Weighted analog of "only the lower-core endpoint's subcore moves".)
  if (core_[u] < core_[v] + w && CanRise(u, w)) push(u);
  if (core_[v] < core_[u] + w && CanRise(v, w)) push(v);
  std::size_t head = 0;
  while (head < region_.size()) {
    const NodeId x = region_[head++];
    for (const Slot& s : adj_[x]) {
      if (region_mark_[s.to]) continue;
      if (core_[s.to] < core_[x] + w && CanRise(s.to, w)) push(s.to);
    }
  }
}

UpdateStats DynamicCoreMaintenance::InsertEdge(NodeId u, NodeId v, double w) {
  AddSlots(u, v, w);
  // Localized lift-and-descend: only the candidate region (a provable
  // superset of the nodes whose coreness rises — see header) is lifted
  // by w; everything else already sits at the new fixpoint.
  CollectInsertRegion(u, v, w);
  UpdateStats stats;
  stats.region = region_.size();
  if (region_.empty()) return stats;
  before_.resize(region_.size());
  for (std::size_t i = 0; i < region_.size(); ++i) {
    before_[i] = core_[region_[i]];
    core_[region_[i]] += w;
  }
  stats = Descend(region_);
  stats.region = region_.size();
  // Report semantic changes (vs the pre-insert fixpoint), not descent
  // steps from the lifted state. Values outside the region are proven
  // unchanged, so comparing the region alone is exact — no second
  // n-sized vector.
  stats.changed = 0;
  for (std::size_t i = 0; i < region_.size(); ++i) {
    if (core_[region_[i]] != before_[i]) ++stats.changed;
    region_mark_[region_[i]] = 0;
  }
  return stats;
}

UpdateStats DynamicCoreMaintenance::InsertEdgeGlobalOracle(NodeId u, NodeId v,
                                                           double w) {
  AddSlots(u, v, w);
  // Global lift: c_new <= c_old + w pointwise, so lifting EVERY value by
  // w dominates the new fixpoint and worklist descent is exact. Kept as
  // the slow Theta(n + m) reference the localized path is checked
  // against (bit-equality, tests/dynamic_test.cc).
  const std::vector<double> before = core_;
  for (NodeId x = 0; x < num_nodes(); ++x) {
    if (!adj_[x].empty()) core_[x] += w;
  }
  std::vector<NodeId> all;
  all.reserve(num_nodes());
  for (NodeId x = 0; x < num_nodes(); ++x) {
    if (!adj_[x].empty()) all.push_back(x);
  }
  UpdateStats stats = Descend(all);
  stats.region = all.size();
  stats.changed = 0;
  for (NodeId x = 0; x < num_nodes(); ++x) {
    if (core_[x] != before[x]) ++stats.changed;
  }
  return stats;
}

bool DynamicCoreMaintenance::HasEdge(NodeId u, NodeId v, double w) const {
  if (u >= num_nodes()) return false;
  for (const Slot& s : adj_[u]) {
    if (s.to == v && s.w == w) return true;
  }
  return false;
}

UpdateStats DynamicCoreMaintenance::DeleteEdge(NodeId u, NodeId v, double w) {
  KCORE_CHECK_MSG(HasEdge(u, v, w), "edge not present");
  const auto erase_one = [](std::vector<Slot>& list, NodeId to, double w2) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].to == to && list[i].w == w2) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
    KCORE_CHECK_MSG(false, "slot missing");
  };
  erase_one(adj_[u], v, w);
  erase_one(adj_[v], u, w);
  --m_;
  // Coreness only decreases: current values dominate; purely local.
  const NodeId seeds[2] = {u, v};
  return Descend(seeds);
}

graph::Graph DynamicCoreMaintenance::Snapshot() const {
  graph::GraphBuilder b(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const Slot& s : adj_[v]) {
      if (v < s.to) b.AddEdge(v, s.to, s.w);
    }
  }
  return std::move(b).Build();
}

}  // namespace kcore::dynamic
