// Streaming coreness server: dynamic/maintain.h behind a live socket.
//
// A CorenessServer owns one DynamicCoreMaintenance instance and a Unix
// stream socket. Clients (dynamic/client.h, or anything speaking
// dynamic/protocol.h) send batched edge insert/delete frames and
// coreness / degeneracy / stats queries; the server applies updates
// through the LOCALIZED incremental maintenance (each insert/delete
// touches the affected neighborhood, not the graph) and answers reads
// from an epoch-swapped snapshot.
//
// Concurrency model — reads never block updates:
//
//   * One accept thread; one thread per live connection.
//   * Updates serialize on update_mu_ (the maintenance engine is the
//     single writer). After each applied batch the server publishes a
//     fresh immutable CorenessSnapshot (epoch, coreness vector,
//     degeneracy) by swapping a shared_ptr under a separate mutex whose
//     critical section is two pointer copies.
//   * Queries copy the current snapshot pointer and answer from that
//     immutable object — a query thread never waits on maintenance
//     work, and an in-flight query keeps reading its epoch even while
//     the next batch is being applied.
//
// Robustness: a client that dies mid-frame, sends an oversized length,
// or streams garbage only loses its own connection; every other client
// keeps streaming, and shutdown (kOpShutdown or Stop()) drains cleanly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/maintain.h"
#include "dynamic/protocol.h"
#include "graph/graph.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kcore::dynamic {

struct ServerOptions {
  // Filesystem path the Unix stream socket binds to (unlinked first).
  std::string socket_path;
  // Node universe at start (ids in [0, initial_nodes)).
  NodeId initial_nodes = 0;
  // Admit inserts mentioning ids >= the current universe by growing it
  // (up to max_nodes). When false such updates are rejected.
  bool allow_growth = true;
  // Hard ceiling on the node universe — a hostile 4-billion id must not
  // allocate the world.
  NodeId max_nodes = 1u << 22;
};

// Immutable versioned view answered to queries. epoch starts at 1 (the
// initial publish) and advances by 1 per applied update batch.
struct CorenessSnapshot {
  std::uint64_t epoch = 0;
  std::size_t num_edges = 0;
  double degeneracy = 0.0;  // max coreness
  std::vector<double> coreness;
};

class CorenessServer {
 public:
  // Starts from an edgeless universe of opts.initial_nodes nodes.
  explicit CorenessServer(ServerOptions opts);
  // Starts from an existing graph (fixpoint computed up front).
  CorenessServer(ServerOptions opts, const graph::Graph& seed);
  ~CorenessServer();

  CorenessServer(const CorenessServer&) = delete;
  CorenessServer& operator=(const CorenessServer&) = delete;

  // Binds, listens, and spawns the accept thread. False (with a log) on
  // socket errors.
  bool Start();

  // Blocks until a shutdown request (kOpShutdown or RequestStop), then
  // joins every thread and removes the socket. Safe to call once from
  // the owning thread.
  void Wait();

  // Asks the server to stop; returns immediately. Safe from any thread,
  // including connection handlers.
  void RequestStop();

  // RequestStop + Wait. Idempotent.
  void Stop();

  // Current published snapshot (never null after Start). Test hook and
  // in-process read path.
  std::shared_ptr<const CorenessSnapshot> snapshot() const;

  std::uint64_t total_updates_applied() const;
  const std::string& socket_path() const { return opts_.socket_path; }

 private:
  void PublishSnapshotLocked() KCORE_REQUIRES(update_mu_);
  void AcceptLoop();
  void ServeConnection(std::size_t slot);
  // Handles one decoded request frame; returns false to drop the
  // connection. Sets *stop when the frame was a shutdown request.
  bool HandleFrame(int fd, const std::vector<std::uint8_t>& payload,
                   bool* stop);
  bool HandleUpdateBatch(int fd, util::WireReader& r);
  bool HandleQueryCoreness(int fd, util::WireReader& r);
  bool HandleStats(int fd);
  void JoinAll();

  ServerOptions opts_;

  // The single-writer maintenance engine and its publish state: every
  // mutation and every epoch bump happens with update_mu_ held.
  mutable util::Mutex update_mu_;
  DynamicCoreMaintenance maintenance_ KCORE_GUARDED_BY(update_mu_);
  std::uint64_t epoch_ KCORE_GUARDED_BY(update_mu_) = 0;
  std::atomic<std::uint64_t> total_updates_{0};

  // The epoch-swapped read path: the critical section under
  // snapshot_mu_ is two shared_ptr copies, never maintenance work, so a
  // reader can never be delayed by an in-flight update batch.
  mutable util::Mutex snapshot_mu_;
  std::shared_ptr<const CorenessSnapshot> snapshot_
      KCORE_GUARDED_BY(snapshot_mu_);

  // Lifecycle flags plus the stop-pipe/listen fds: handler threads read
  // and close these through state_mu_; AcceptLoop snapshots the fd
  // values once under the lock at entry (they stay open until it is
  // joined, so the copies cannot dangle).
  util::Mutex state_mu_;
  std::condition_variable state_cv_;
  bool started_ KCORE_GUARDED_BY(state_mu_) = false;
  bool stop_requested_ KCORE_GUARDED_BY(state_mu_) = false;
  bool accept_done_ KCORE_GUARDED_BY(state_mu_) = false;
  bool joined_ KCORE_GUARDED_BY(state_mu_) = false;
  int listen_fd_ KCORE_GUARDED_BY(state_mu_) = -1;
  int stop_pipe_[2] KCORE_GUARDED_BY(state_mu_) = {-1, -1};
  // Owned by the thread that ran Start(); joined by JoinAll, which the
  // joined_ flag makes single-entry. Not lock-protected by design.
  std::thread accept_thread_;

  // Connection registry: fd slots (-1 when closed) + handler threads,
  // appended by the accept loop, shut down and joined at Stop.
  util::Mutex conns_mu_;
  std::vector<int> conn_fds_ KCORE_GUARDED_BY(conns_mu_);
  std::vector<std::thread> conn_threads_ KCORE_GUARDED_BY(conns_mu_);
};

}  // namespace kcore::dynamic
