#include "dynamic/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "util/wire.h"

namespace kcore::dynamic {

bool CorenessClient::Fail(const std::string& what) {
  last_error_ = what;
  Close();
  return false;
}

void CorenessClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool CorenessClient::Connect(const std::string& socket_path) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() + 1 > sizeof(addr.sun_path)) {
    return Fail("socket path too long");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return Fail(std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return Fail(std::string("connect('") + socket_path +
                "'): " + std::strerror(errno));
  }
  last_error_.clear();
  return true;
}

bool CorenessClient::ConnectWithRetry(const std::string& socket_path,
                                      int attempts, int delay_ms) {
  for (int i = 0; i < attempts; ++i) {
    if (Connect(socket_path)) return true;
    struct timespec ts = {delay_ms / 1000, (delay_ms % 1000) * 1000000L};
    ::nanosleep(&ts, nullptr);
  }
  return false;
}

bool CorenessClient::RoundTrip(const FrameBuilder& req,
                               std::vector<std::uint8_t>* resp) {
  if (fd_ < 0) return Fail("not connected");
  if (!WriteFrame(fd_, req.payload())) {
    return Fail(std::string("send failed: ") + std::strerror(errno));
  }
  if (!ReadFrame(fd_, resp)) {
    return Fail("connection closed mid-response");
  }
  util::WireReader r(resp->data(), resp->size());
  std::uint64_t status = 0;
  if (!r.TryFixed64(&status)) return Fail("truncated response");
  if (status != kStatusOk) {
    last_error_ = "server error: " + ReadErrorMessage(r);
    return false;  // protocol-level error; connection stays usable
  }
  // Strip the status so callers decode fields only.
  resp->erase(resp->begin(), resp->begin() + 8);
  return true;
}

std::optional<CorenessClient::UpdateAck> CorenessClient::ApplyUpdates(
    std::span<const EdgeUpdate> batch) {
  FrameBuilder req;
  req.Fixed64(kOpUpdateBatch);
  req.Varint(batch.size());
  for (const EdgeUpdate& op : batch) {
    req.Varint(static_cast<std::uint64_t>(op.kind));
    req.Varint(op.u);
    req.Varint(op.v);
    req.Double(op.w);
  }
  if (!RoundTrip(req, &resp_buf_)) return std::nullopt;
  util::WireReader r(resp_buf_.data(), resp_buf_.size());
  UpdateAck ack;
  if (!r.TryVarint(&ack.epoch) || !r.TryVarint(&ack.applied) ||
      !r.TryVarint(&ack.rejected) || !r.TryVarint(&ack.recomputations) ||
      !r.TryVarint(&ack.changed)) {
    Fail("malformed update ack");
    return std::nullopt;
  }
  return ack;
}

std::optional<CorenessClient::CorenessReply> CorenessClient::QueryCoreness(
    std::span<const graph::NodeId> ids) {
  FrameBuilder req;
  req.Fixed64(kOpQueryCoreness);
  req.Varint(ids.size());
  for (graph::NodeId id : ids) req.Varint(id);
  if (!RoundTrip(req, &resp_buf_)) return std::nullopt;
  util::WireReader r(resp_buf_.data(), resp_buf_.size());
  CorenessReply reply;
  std::uint64_t count = 0;
  if (!r.TryVarint(&reply.epoch) || !r.TryVarint(&count) ||
      count != ids.size()) {
    Fail("malformed query reply");
    return std::nullopt;
  }
  reply.values.resize(static_cast<std::size_t>(count));
  for (double& v : reply.values) {
    if (!r.TryDouble(&v)) {
      Fail("truncated query reply");
      return std::nullopt;
    }
  }
  return reply;
}

std::optional<CorenessClient::StatsReply> CorenessClient::Stats() {
  FrameBuilder req;
  req.Fixed64(kOpStats);
  if (!RoundTrip(req, &resp_buf_)) return std::nullopt;
  util::WireReader r(resp_buf_.data(), resp_buf_.size());
  StatsReply reply;
  if (!r.TryVarint(&reply.epoch) || !r.TryVarint(&reply.num_nodes) ||
      !r.TryVarint(&reply.num_edges) || !r.TryDouble(&reply.degeneracy) ||
      !r.TryVarint(&reply.total_updates)) {
    Fail("malformed stats reply");
    return std::nullopt;
  }
  return reply;
}

bool CorenessClient::Shutdown() {
  FrameBuilder req;
  req.Fixed64(kOpShutdown);
  if (!RoundTrip(req, &resp_buf_)) return false;
  Close();
  return true;
}

}  // namespace kcore::dynamic
