#include "dynamic/protocol.h"

#include <cstring>

#include "util/fdio.h"

namespace kcore::dynamic {

void FrameBuilder::Varint(std::uint64_t x) {
  std::uint8_t tmp[util::kMaxVarintBytes];
  util::WireWriter w(tmp, tmp + sizeof(tmp));
  w.Varint(x);
  buf_.insert(buf_.end(), tmp, tmp + w.written());
}

void FrameBuilder::Fixed64(std::uint64_t bits) {
  std::uint8_t tmp[8];
  util::WireWriter w(tmp, tmp + sizeof(tmp));
  w.Fixed64(bits);
  buf_.insert(buf_.end(), tmp, tmp + 8);
}

void FrameBuilder::Double(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  Fixed64(bits);
}

void FrameBuilder::Bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

bool WriteFrame(int fd, std::span<const std::uint8_t> payload) {
  std::uint8_t hdr[8];
  util::WireWriter w(hdr, hdr + sizeof(hdr));
  w.Fixed64(static_cast<std::uint64_t>(payload.size()));
  if (!util::WriteFully(fd, hdr, sizeof(hdr))) return false;
  if (payload.empty()) return true;
  return util::WriteFully(fd, payload.data(), payload.size());
}

bool ReadFrame(int fd, std::vector<std::uint8_t>* payload) {
  std::uint8_t hdr[8];
  if (!util::ReadFully(fd, hdr, sizeof(hdr))) return false;
  util::WireReader r(hdr, sizeof(hdr));
  std::uint64_t len = 0;
  if (!r.TryFixed64(&len) || len > kMaxFrameBytes) return false;
  payload->resize(static_cast<std::size_t>(len));
  if (len == 0) return true;
  return util::ReadFully(fd, payload->data(), payload->size());
}

bool WriteErrorFrame(int fd, const std::string& message) {
  FrameBuilder b;
  b.Fixed64(kStatusError);
  b.Varint(message.size());
  b.Bytes(message.data(), message.size());
  return WriteFrame(fd, b.payload());
}

std::string ReadErrorMessage(util::WireReader& r) {
  std::uint64_t len = 0;
  if (!r.TryVarint(&len) || len > r.remaining()) {
    return "(malformed error frame)";
  }
  std::string msg(static_cast<std::size_t>(len), '\0');
  if (!r.TryRaw(msg.data(), msg.size())) return "(malformed error frame)";
  return msg;
}

}  // namespace kcore::dynamic
