// Weighted undirected graph with optional self-loops.
//
// This is the substrate every other module builds on. The representation is
// a CSR-style adjacency array built once by GraphBuilder; the Graph itself
// is immutable, which makes it trivially shareable across threads (the
// distributed simulator reads it concurrently from many workers).
//
// Self-loops are first-class citizens because the paper's
// diminishingly-dense decomposition (Definition II.3) operates on quotient
// graphs (Definition II.2), where edges leaving a peeled layer become
// self-loops at the surviving endpoint. Conventions:
//   * a self-loop {v} appears exactly once in v's adjacency (entry.to == v);
//   * the weighted degree deg(v) = sum of w(e) over edges e containing v,
//     so a self-loop contributes its weight once (the paper's definition:
//     deg_G(v) = sum over e with v in e);
//   * w(E(S)) counts a self-loop at v whenever v is in S.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace kcore::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

// An undirected edge {u, v} with weight w. u == v encodes a self-loop.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double w = 1.0;
};

// One adjacency slot: the neighbor, the edge weight and the edge index in
// the global edge list (useful for edge-indexed algorithms such as the
// orientation assignment).
struct AdjEntry {
  NodeId to = 0;
  double w = 1.0;
  EdgeId edge = 0;
};

class Graph;

// Accumulates edges, then freezes them into an immutable Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : n_(num_nodes) {}

  // Adds an undirected edge; u and v must be < num_nodes. Zero- and
  // negative-weight edges are rejected by Build() (the paper assumes
  // non-negative weights; zero-weight edges are allowed and harmless).
  GraphBuilder& AddEdge(NodeId u, NodeId v, double w = 1.0);

  // Pre-sizes the edge buffer. Bulk loaders (graph/binio.h) know m up
  // front, so the edge array is one exact allocation instead of
  // push_back growth over 10^7+ records.
  GraphBuilder& Reserve(std::size_t m) {
    edges_.reserve(m);
    return *this;
  }

  // Merges parallel edges (same unordered endpoint pair) into a single
  // edge with the summed weight. Quotient-graph construction relies on
  // this, matching Definition II.2's set semantics.
  GraphBuilder& MergeParallel();

  NodeId num_nodes() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }

  Graph Build() &&;

 private:
  NodeId n_;
  std::vector<Edge> edges_;
};

// Immutable weighted undirected graph.
class Graph {
 public:
  Graph() = default;

  NodeId num_nodes() const { return n_; }
  // Number of edges, self-loops included (each counted once).
  std::size_t num_edges() const { return edges_.size(); }
  // Total edge weight, w(E).
  double total_weight() const { return total_weight_; }

  std::span<const Edge> edges() const { return edges_; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  // Adjacency of v; a self-loop appears once with to == v.
  std::span<const AdjEntry> Neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  // Number of adjacency entries (self-loop counts once).
  std::size_t Degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  // Weighted degree: sum of w(e) over incident edges (self-loop once).
  double WeightedDegree(NodeId v) const { return wdeg_[v]; }

  // Total weight of self-loops at v.
  double SelfLoopWeight(NodeId v) const { return self_w_[v]; }

  bool has_self_loops() const { return has_self_loops_; }

  std::size_t MaxDegree() const;
  double MaxWeightedDegree() const;

  // Average degree density rho(G) = w(E) / n (0 for the empty graph).
  double Density() const;

  // Density of the subgraph induced by S: w(E(S)) / |S|.
  // `in_set` must have size num_nodes(). Returns 0 for empty S.
  double InducedDensity(std::span<const char> in_set) const;

  // Total weight of edges fully inside S (self-loop at v counts iff v in S).
  double InducedEdgeWeight(std::span<const char> in_set) const;

  // True if the graph has no self-loops and no parallel edges.
  bool IsSimple() const;

  std::string DebugString(std::size_t max_edges = 32) const;

 private:
  friend class GraphBuilder;

  NodeId n_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::size_t> offsets_;  // size n_+1
  std::vector<AdjEntry> adj_;
  std::vector<double> wdeg_;
  std::vector<double> self_w_;
  double total_weight_ = 0.0;
  bool has_self_loops_ = false;
};

// Induced subgraph on the nodes with in_set[v] != 0. Nodes are re-indexed
// densely in increasing order of original id; `old_to_new` (optional out)
// receives the mapping (kInvalidNode for dropped nodes). Edges leaving the
// set are dropped (this is G[S], not a quotient).
Graph InducedSubgraph(const Graph& g, std::span<const char> in_set,
                      std::vector<NodeId>* old_to_new = nullptr);

}  // namespace kcore::graph
