// Breadth-first search utilities: hop distances, eccentricity and
// hop-diameter estimation.
//
// The paper's lower bounds are stated against the hop-diameter D, so the
// experiment harness reports D (exact for small graphs, double-sweep lower
// bound for large ones) next to the round counts.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace kcore::graph {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

// Hop distances from source (kUnreachable where disconnected).
std::vector<std::uint32_t> BfsDistances(const Graph& g, NodeId source);

// Largest finite distance from source (0 for an isolated node).
std::uint32_t Eccentricity(const Graph& g, NodeId source);

// Exact hop-diameter by all-pairs BFS: O(n * m). Only call on small graphs.
// Returns the max finite eccentricity (per-component diameter).
std::uint32_t ExactDiameter(const Graph& g);

// Double-sweep lower bound on the hop-diameter: BFS from `seed`, then BFS
// again from the farthest node found. Cheap and usually tight on
// real-world-like graphs.
std::uint32_t DoubleSweepDiameterLowerBound(const Graph& g, NodeId seed = 0);

}  // namespace kcore::graph
