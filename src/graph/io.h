// Edge-list file I/O (SNAP-compatible).
//
// Format: one edge per line, "u v [w]", '#' or '%' starts a comment line.
// Node ids in a file may be sparse; the reader remaps them densely and can
// return the mapping. The writer emits "u v w" lines.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kcore::graph {

struct LoadResult {
  Graph graph;
  // dense id -> original id from the file.
  std::vector<std::uint64_t> original_ids;
};

// Reads an edge list; returns std::nullopt (and logs a line-numbered
// error) on I/O or parse errors. Missing weights default to 1; a
// malformed weight token or trailing garbage after the weight is a
// parse error, never a silent w=1. Self-loops are kept; duplicate
// lines produce parallel edges unless merge_parallel is set.
std::optional<LoadResult> LoadEdgeList(const std::string& path,
                                       bool merge_parallel = true);

// Parses an edge list from a string (same format). Used by tests.
std::optional<LoadResult> ParseEdgeList(const std::string& text,
                                        bool merge_parallel = true);

// Writes "u v w" lines; returns false on I/O failure.
bool SaveEdgeList(const Graph& g, const std::string& path);

// Same, but endpoints are written as original_ids[dense_id] — the
// mapping LoadEdgeList returns. A file with sparse ids loaded through
// the dense remap saves back with the ids it arrived with, so
// load -> save -> load is id-stable (the plain overload silently wrote
// dense ids, changing every id in the file). original_ids must have
// exactly g.num_nodes() entries.
bool SaveEdgeList(const Graph& g, const std::string& path,
                  std::span<const std::uint64_t> original_ids);

}  // namespace kcore::graph
