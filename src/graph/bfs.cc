#include "graph/bfs.h"

#include <algorithm>

namespace kcore::graph {

std::vector<std::uint32_t> BfsDistances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  if (source >= g.num_nodes()) return dist;
  std::vector<NodeId> queue;
  queue.push_back(source);
  dist[source] = 0;
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId v = queue[head++];
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (a.to != v && dist[a.to] == kUnreachable) {
        dist[a.to] = dist[v] + 1;
        queue.push_back(a.to);
      }
    }
  }
  return dist;
}

std::uint32_t Eccentricity(const Graph& g, NodeId source) {
  std::uint32_t ecc = 0;
  for (std::uint32_t d : BfsDistances(g, source)) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t ExactDiameter(const Graph& g) {
  std::uint32_t diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    diam = std::max(diam, Eccentricity(g, v));
  }
  return diam;
}

std::uint32_t DoubleSweepDiameterLowerBound(const Graph& g, NodeId seed) {
  if (g.num_nodes() == 0) return 0;
  seed = std::min<NodeId>(seed, g.num_nodes() - 1);
  const auto d1 = BfsDistances(g, seed);
  NodeId far = seed;
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (d1[v] != kUnreachable && d1[v] > best) {
      best = d1[v];
      far = v;
    }
  }
  return Eccentricity(g, far);
}

}  // namespace kcore::graph
