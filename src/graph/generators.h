// Graph generators.
//
// Two families:
//   1. Synthetic models standing in for the real-world datasets of the
//      paper's full-version experiments (Barabási–Albert, Erdős–Rényi,
//      RMAT/Kronecker, power-law configuration, planted communities,
//      Watts–Strogatz, random geometric). The empirical claim under test —
//      fast convergence of the elimination procedure on heavy-tailed
//      graphs — depends on degree structure, which these models provide.
//   2. The paper's lower-bound gadgets: Figure I.1 graphs (a)(b)(c) and
//      the Lemma III.13 γ-ary tree with/without a leaf clique.
//
// All generators are deterministic given the Rng, and never produce
// self-loops or parallel edges unless explicitly stated.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace kcore::graph {

// --- Deterministic base shapes -------------------------------------------

// Path v0 - v1 - ... - v{n-1}.
Graph Path(NodeId n, double w = 1.0);

// Cycle on n >= 3 nodes.
Graph Cycle(NodeId n, double w = 1.0);

// Star: center 0 connected to 1..n-1.
Graph Star(NodeId n, double w = 1.0);

// Complete graph K_n.
Graph Complete(NodeId n, double w = 1.0);

// Complete bipartite K_{a,b}; left part is [0,a), right part [a,a+b).
Graph CompleteBipartite(NodeId a, NodeId b, double w = 1.0);

// rows x cols grid, 4-neighborhood.
Graph Grid(NodeId rows, NodeId cols, double w = 1.0);

// --- Random models --------------------------------------------------------

// Erdős–Rényi G(n, p): every pair independently with probability p.
// Uses geometric skipping, O(n + m) expected time.
Graph ErdosRenyiGnp(NodeId n, double p, util::Rng& rng);

// Erdős–Rényi G(n, m): exactly m distinct edges drawn uniformly.
Graph ErdosRenyiGnm(NodeId n, std::size_t m, util::Rng& rng);

// Barabási–Albert preferential attachment: each new node attaches to
// `attach` distinct existing nodes with probability proportional to degree.
// Produces a connected heavy-tailed graph (our stand-in for social
// networks / collaboration graphs).
Graph BarabasiAlbert(NodeId n, NodeId attach, util::Rng& rng);

// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
// side, each edge rewired with probability beta.
Graph WattsStrogatz(NodeId n, NodeId k, double beta, util::Rng& rng);

// Configuration-model graph with power-law degree distribution
// P(deg = d) ~ d^-alpha for d in [d_min, d_max]; simple (collisions and
// self-loops dropped), our stand-in for web-crawl-like graphs.
Graph PowerLawConfiguration(NodeId n, double alpha, NodeId d_min,
                            NodeId d_max, util::Rng& rng);

// RMAT / Kronecker-style generator (scale = log2 n, avg_degree edges per
// node, standard (a,b,c,d) partition probabilities). Duplicates and
// self-loops are dropped.
Graph Rmat(int scale, double avg_degree, double a, double b, double c,
           util::Rng& rng);

// Planted-partition ("community") graph: `communities` equal-size blocks,
// intra-block edge probability p_in, inter-block probability p_out.
// Stand-in for ground-truth-community social graphs.
Graph PlantedPartition(NodeId n, NodeId communities, double p_in,
                       double p_out, util::Rng& rng);

// Random geometric graph in the unit square: nodes connected iff within
// Euclidean distance `radius`.
Graph RandomGeometric(NodeId n, double radius, util::Rng& rng);

// --- Weight assignment ----------------------------------------------------

// Returns a copy of g with every edge weight drawn uniformly in [lo, hi).
Graph WithUniformWeights(const Graph& g, double lo, double hi,
                         util::Rng& rng);

// Returns a copy with Pareto(x_min, alpha) weights (heavy-tailed loads,
// matching the telecom-design motivation of the orientation problem).
Graph WithParetoWeights(const Graph& g, double x_min, double alpha,
                        util::Rng& rng);

// Returns a copy with integer weights drawn uniformly from [1, max_w].
Graph WithIntegerWeights(const Graph& g, int max_w, util::Rng& rng);

// Returns a copy with uniformly random DYADIC weights (multiples of
// 2^-bits) in [lo, hi]. Sums of dyadic doubles of bounded magnitude are
// exact regardless of summation order, which matters for the orientation
// invariants (Definition III.7): the paper's Lemma III.11 argument relies
// on exact value equalities across nodes — guaranteed for integer/dyadic
// weights, but not for arbitrary reals under floating point (the paper
// itself notes that "in most useful applications, each edge weight is an
// integer").
Graph WithDyadicWeights(const Graph& g, double lo, double hi, util::Rng& rng,
                        int bits = 6);

// Quantizes existing weights down to multiples of 2^-bits (minimum one
// quantum, so positive weights stay positive).
Graph QuantizeWeightsDyadic(const Graph& g, int bits = 6);

// --- Paper lower-bound gadgets --------------------------------------------

// Figure I.1(a): a cycle C_n. Every node (in particular the distinguished
// node 0) has coreness 2; any orientation of a cycle achieves max
// in-degree 1 but node 0's *local* view is identical to a path.
Graph Fig1a(NodeId n);

// Figure I.1(b): a path P_n. Every node has coreness 1 and the optimal
// orientation has max in-degree 1. Locally indistinguishable from (a)
// around the middle node for ~n/2 rounds.
Graph Fig1b(NodeId n);

// Figure I.1(c): a path with a triangle planted at one end. Nodes in the
// triangle have coreness 2; the distinguished node at the far end still
// has coreness 1, yet cannot distinguish (c) from (a) in o(n) rounds.
Graph Fig1c(NodeId n);

// The distinguished node v of the Figure I.1 family (the "middle" node in
// (a)/(b), the far endpoint in (c)); chosen so its T-hop view is identical
// across the family for T < n/2 - 2.
NodeId Fig1DistinguishedNode(NodeId n);

// Lemma III.13: complete γ-ary tree of the given depth (root = node 0).
// Coreness of every node is 1.
Graph GammaTree(NodeId gamma, NodeId depth);

// Lemma III.13: the same tree with a clique planted on its leaves. Every
// node then has degree >= γ, hence coreness(root) >= γ, while the root's
// T-hop view for T < depth equals the plain tree's.
Graph GammaTreeWithLeafClique(NodeId gamma, NodeId depth);

// Number of nodes of the complete γ-ary tree with the given depth.
std::size_t GammaTreeSize(NodeId gamma, NodeId depth);

}  // namespace kcore::graph
