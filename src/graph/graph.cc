#include "graph/graph.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace kcore::graph {

GraphBuilder& GraphBuilder::AddEdge(NodeId u, NodeId v, double w) {
  KCORE_CHECK_MSG(u < n_ && v < n_,
                  "edge (" << u << "," << v << ") out of range, n=" << n_);
  KCORE_CHECK_MSG(w >= 0.0, "negative edge weight " << w);
  edges_.push_back(Edge{u, v, w});
  return *this;
}

GraphBuilder& GraphBuilder::MergeParallel() {
  // Key on the unordered endpoint pair packed into 64 bits.
  std::unordered_map<std::uint64_t, double> acc;
  acc.reserve(edges_.size());
  for (const Edge& e : edges_) {
    const NodeId a = std::min(e.u, e.v);
    const NodeId b = std::max(e.u, e.v);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
    acc[key] += e.w;
  }
  std::vector<Edge> merged;
  merged.reserve(acc.size());
  // Hash order cannot escape here: the merged list is fully sorted by
  // (u, v) below before anything reads it.
  // kcore-lint: allow(unordered-iter) output fully sorted before use
  for (const auto& [key, w] : acc) {
    merged.push_back(Edge{static_cast<NodeId>(key >> 32),
                          static_cast<NodeId>(key & 0xffffffffu), w});
  }
  // Deterministic order regardless of hash iteration.
  std::sort(merged.begin(), merged.end(), [](const Edge& x, const Edge& y) {
    return x.u != y.u ? x.u < y.u : x.v < y.v;
  });
  edges_ = std::move(merged);
  return *this;
}

Graph GraphBuilder::Build() && {
  Graph g;
  g.n_ = n_;
  g.edges_ = std::move(edges_);
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  g.wdeg_.assign(n_, 0.0);
  g.self_w_.assign(n_, 0.0);

  // Counting pass: one adjacency slot per endpoint, one for a self-loop.
  for (const Edge& e : g.edges_) {
    if (e.u == e.v) {
      g.offsets_[e.u + 1] += 1;
      g.self_w_[e.u] += e.w;
      g.has_self_loops_ = true;
    } else {
      g.offsets_[e.u + 1] += 1;
      g.offsets_[e.v + 1] += 1;
    }
    g.total_weight_ += e.w;
  }
  for (NodeId v = 0; v < n_; ++v) g.offsets_[v + 1] += g.offsets_[v];

  g.adj_.resize(g.offsets_[n_]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId i = 0; i < g.edges_.size(); ++i) {
    const Edge& e = g.edges_[i];
    if (e.u == e.v) {
      g.adj_[cursor[e.u]++] = AdjEntry{e.v, e.w, i};
    } else {
      g.adj_[cursor[e.u]++] = AdjEntry{e.v, e.w, i};
      g.adj_[cursor[e.v]++] = AdjEntry{e.u, e.w, i};
    }
    g.wdeg_[e.u] += e.w;
    if (e.u != e.v) g.wdeg_[e.v] += e.w;
  }

  // Sort each adjacency list by neighbor id: algorithms that rely on a
  // deterministic neighbor order (tie-breaking in Update) get it for free.
  for (NodeId v = 0; v < n_; ++v) {
    std::sort(g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]),
              [](const AdjEntry& a, const AdjEntry& b) {
                return a.to != b.to ? a.to < b.to : a.edge < b.edge;
              });
  }
  return g;
}

std::size_t Graph::MaxDegree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < n_; ++v) best = std::max(best, Degree(v));
  return best;
}

double Graph::MaxWeightedDegree() const {
  double best = 0.0;
  for (NodeId v = 0; v < n_; ++v) best = std::max(best, wdeg_[v]);
  return best;
}

double Graph::Density() const {
  if (n_ == 0) return 0.0;
  return total_weight_ / static_cast<double>(n_);
}

double Graph::InducedEdgeWeight(std::span<const char> in_set) const {
  KCORE_CHECK(in_set.size() == n_);
  double w = 0.0;
  for (const Edge& e : edges_) {
    if (in_set[e.u] && in_set[e.v]) w += e.w;
  }
  return w;
}

double Graph::InducedDensity(std::span<const char> in_set) const {
  KCORE_CHECK(in_set.size() == n_);
  std::size_t size = 0;
  for (NodeId v = 0; v < n_; ++v) size += in_set[v] ? 1 : 0;
  if (size == 0) return 0.0;
  return InducedEdgeWeight(in_set) / static_cast<double>(size);
}

bool Graph::IsSimple() const {
  if (has_self_loops_) return false;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges_.size());
  for (const Edge& e : edges_) {
    const NodeId a = std::min(e.u, e.v);
    const NodeId b = std::max(e.u, e.v);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
    if (!seen.insert(key).second) return false;
  }
  return true;
}

std::string Graph::DebugString(std::size_t max_edges) const {
  std::ostringstream os;
  os << "Graph(n=" << n_ << ", m=" << edges_.size()
     << ", w=" << total_weight_ << ")";
  for (std::size_t i = 0; i < edges_.size() && i < max_edges; ++i) {
    os << "\n  " << edges_[i].u << " -- " << edges_[i].v << " ("
       << edges_[i].w << ")";
  }
  if (edges_.size() > max_edges) os << "\n  ...";
  return os.str();
}

Graph InducedSubgraph(const Graph& g, std::span<const char> in_set,
                      std::vector<NodeId>* old_to_new) {
  KCORE_CHECK(in_set.size() == g.num_nodes());
  std::vector<NodeId> map(g.num_nodes(), kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_set[v]) map[v] = next++;
  }
  GraphBuilder b(next);
  for (const Edge& e : g.edges()) {
    if (in_set[e.u] && in_set[e.v]) b.AddEdge(map[e.u], map[e.v], e.w);
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return std::move(b).Build();
}

}  // namespace kcore::graph
