#include "graph/components.h"

#include <vector>

namespace kcore::graph {

Components ConnectedComponents(const Graph& g) {
  Components out;
  out.comp.assign(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> queue;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (out.comp[start] != kInvalidNode) continue;
    const NodeId label = out.count++;
    out.sizes.push_back(0);
    queue.clear();
    queue.push_back(start);
    out.comp[start] = label;
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId v = queue[head++];
      ++out.sizes[label];
      for (const AdjEntry& a : g.Neighbors(v)) {
        if (a.to != v && out.comp[a.to] == kInvalidNode) {
          out.comp[a.to] = label;
          queue.push_back(a.to);
        }
      }
    }
  }
  return out;
}

bool IsConnected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return ConnectedComponents(g).count == 1;
}

}  // namespace kcore::graph
