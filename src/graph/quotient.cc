#include "graph/quotient.h"

#include "util/logging.h"

namespace kcore::graph {

QuotientResult QuotientGraph(const Graph& g, std::span<const char> remove) {
  KCORE_CHECK(remove.size() == g.num_nodes());
  QuotientResult out;
  out.old_to_new.assign(g.num_nodes(), kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!remove[v]) {
      out.old_to_new[v] = next++;
      out.new_to_old.push_back(v);
    }
  }
  GraphBuilder b(next);
  for (const Edge& e : g.edges()) {
    const bool ku = !remove[e.u];
    const bool kv = !remove[e.v];
    if (ku && kv) {
      b.AddEdge(out.old_to_new[e.u], out.old_to_new[e.v], e.w);
    } else if (ku) {
      b.AddEdge(out.old_to_new[e.u], out.old_to_new[e.u], e.w);
    } else if (kv) {
      b.AddEdge(out.old_to_new[e.v], out.old_to_new[e.v], e.w);
    }
    // Both endpoints removed: the edge vanishes (e ∩ V̂ = ∅).
  }
  b.MergeParallel();
  out.graph = std::move(b).Build();
  return out;
}

}  // namespace kcore::graph
