// Connected components of an undirected graph.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace kcore::graph {

struct Components {
  // comp[v] = component index in [0, count).
  std::vector<NodeId> comp;
  NodeId count = 0;
  // Size of each component.
  std::vector<NodeId> sizes;
};

// Iterative BFS labelling (no recursion: safe on path graphs of any size).
Components ConnectedComponents(const Graph& g);

// True if g is connected (the empty graph counts as connected).
bool IsConnected(const Graph& g);

}  // namespace kcore::graph
