// Quotient graph (Definition II.2 of the paper).
//
// Given G = (V, E, w) and B ⊆ V, the quotient G\B keeps V̂ = V \ B and maps
// every edge e ∈ E with e ∩ V̂ ≠ ∅ to e ∩ V̂: an edge with both endpoints
// surviving stays an edge, an edge with exactly one surviving endpoint v
// becomes a self-loop {v}, and parallel images are merged with summed
// weight (Ê is a set; ŵ(e') = Σ_{e: e∩V̂ = e'} w(e)).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace kcore::graph {

struct QuotientResult {
  Graph graph;
  // old node id -> new node id (kInvalidNode for removed nodes).
  std::vector<NodeId> old_to_new;
  // new node id -> old node id.
  std::vector<NodeId> new_to_old;
};

// Removes the nodes with remove[v] != 0 and returns the quotient graph.
QuotientResult QuotientGraph(const Graph& g, std::span<const char> remove);

}  // namespace kcore::graph
