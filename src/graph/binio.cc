#include "graph/binio.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/logging.h"
#include "util/wire.h"

namespace kcore::graph {
namespace {

// A read-only mmap of a whole file; unmaps on scope exit. data == nullptr
// after construction means the mapping failed (already logged).
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      KCORE_LOG(kError) << "binio: cannot open '" << path << "'";
      return;
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      KCORE_LOG(kError) << "binio: cannot stat '" << path << "'";
      ::close(fd);
      return;
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) {
      // mmap rejects zero-length maps; an empty file is simply truncated
      // input (even an empty graph carries a 32-byte header).
      KCORE_LOG(kError) << "binio: '" << path << "' is empty";
      ::close(fd);
      return;
    }
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (p == MAP_FAILED) {
      KCORE_LOG(kError) << "binio: mmap of '" << path << "' failed";
      return;
    }
    data_ = static_cast<const std::uint8_t*>(p);
  }

  ~MappedFile() {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

// Parses and validates the 32-byte header against the actual file size.
std::optional<BinaryInfo> ParseHeader(const std::uint8_t* data,
                                      std::size_t size,
                                      const std::string& path) {
  if (size < kBinaryHeaderBytes) {
    KCORE_LOG(kError) << "binio: '" << path << "' truncated: " << size
                      << " bytes, header needs " << kBinaryHeaderBytes;
    return std::nullopt;
  }
  if (std::memcmp(data, kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    KCORE_LOG(kError) << "binio: '" << path << "' has no KCOREBIN magic";
    return std::nullopt;
  }
  util::WireReader r(data + sizeof(kBinaryMagic),
                     kBinaryHeaderBytes - sizeof(kBinaryMagic));
  BinaryInfo info;
  info.version = r.Fixed32();
  const std::uint32_t flags = r.Fixed32();
  info.num_nodes = r.Fixed64();
  info.num_edges = r.Fixed64();
  if (info.version != kBinaryVersion) {
    KCORE_LOG(kError) << "binio: '" << path << "' has version "
                      << info.version << ", expected " << kBinaryVersion;
    return std::nullopt;
  }
  if ((flags & ~kBinaryFlagOriginalIds) != 0) {
    KCORE_LOG(kError) << "binio: '" << path << "' has unknown flag bits 0x"
                      << std::hex << flags;
    return std::nullopt;
  }
  info.has_original_ids = (flags & kBinaryFlagOriginalIds) != 0;
  if (info.num_nodes > static_cast<std::uint64_t>(kInvalidNode)) {
    KCORE_LOG(kError) << "binio: '" << path << "' declares " << info.num_nodes
                      << " nodes, beyond the 32-bit id space";
    return std::nullopt;
  }
  if (info.FileBytes() != size) {
    KCORE_LOG(kError) << "binio: '" << path << "' is " << size
                      << " bytes but the header promises " << info.FileBytes()
                      << " (truncated file or trailing garbage)";
    return std::nullopt;
  }
  return info;
}

// Decodes one 16-byte edge record. False (logged) on out-of-range ids or
// a malformed weight — the same rejections the text parser makes.
bool DecodeEdge(util::WireReader& r, std::uint64_t n, std::uint64_t index,
                const std::string& path, Edge* out) {
  out->u = r.Fixed32();
  out->v = r.Fixed32();
  out->w = r.Double();
  if (out->u >= n || out->v >= n) {
    KCORE_LOG(kError) << "binio: '" << path << "' edge " << index << " ("
                      << out->u << "," << out->v << ") out of range, n=" << n;
    return false;
  }
  if (!std::isfinite(out->w) || out->w < 0.0) {
    KCORE_LOG(kError) << "binio: '" << path << "' edge " << index
                      << " has malformed weight " << out->w;
    return false;
  }
  return true;
}

std::vector<std::uint64_t> DecodeOriginalIds(const std::uint8_t* table,
                                             std::uint64_t n) {
  std::vector<std::uint64_t> ids(n);
  util::WireReader r(table, 8 * n);
  for (std::uint64_t v = 0; v < n; ++v) ids[v] = r.Fixed64();
  return ids;
}

}  // namespace

bool SaveBinary(const Graph& g, const std::string& path,
                std::span<const std::uint64_t> original_ids) {
  if (!original_ids.empty() && original_ids.size() != g.num_nodes()) {
    KCORE_LOG(kError) << "binio: original_ids has " << original_ids.size()
                      << " entries for a " << g.num_nodes() << "-node graph";
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    KCORE_LOG(kError) << "binio: cannot open '" << path << "' for writing";
    return false;
  }
  // Chunked writer: records are encoded into a fixed 1 MiB buffer and
  // flushed when full, so a 10^8-edge save never holds the file in RAM.
  std::vector<std::uint8_t> buf(1 << 20);
  std::size_t used = 0;
  bool ok = true;
  const auto flush = [&] {
    if (ok && used > 0) ok = std::fwrite(buf.data(), 1, used, f) == used;
    used = 0;
  };
  const auto put = [&](std::size_t bytes, auto&& encode) {
    if (buf.size() - used < bytes) flush();
    util::WireWriter w(buf.data() + used, buf.data() + used + bytes);
    encode(w);
    used += bytes;
  };

  std::memcpy(buf.data(), kBinaryMagic, sizeof(kBinaryMagic));
  used = sizeof(kBinaryMagic);
  put(kBinaryHeaderBytes - sizeof(kBinaryMagic), [&](util::WireWriter& w) {
    w.Fixed32(kBinaryVersion);
    w.Fixed32(original_ids.empty() ? 0 : kBinaryFlagOriginalIds);
    w.Fixed64(g.num_nodes());
    w.Fixed64(g.num_edges());
  });
  for (const Edge& e : g.edges()) {
    put(kBinaryEdgeBytes, [&](util::WireWriter& w) {
      w.Fixed32(e.u);
      w.Fixed32(e.v);
      w.Double(e.w);
    });
  }
  for (const std::uint64_t id : original_ids) {
    put(8, [&](util::WireWriter& w) { w.Fixed64(id); });
  }
  flush();
  if (std::fclose(f) != 0) ok = false;
  if (!ok) KCORE_LOG(kError) << "binio: short write to '" << path << "'";
  return ok;
}

std::optional<BinaryInfo> ReadBinaryInfo(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    KCORE_LOG(kError) << "binio: cannot open '" << path << "'";
    return std::nullopt;
  }
  std::uint8_t header[kBinaryHeaderBytes];
  const std::size_t got = std::fread(header, 1, sizeof(header), f);
  // The size cross-check needs the real file size; seek to the end.
  std::size_t size = got;
  if (got == sizeof(header) && std::fseek(f, 0, SEEK_END) == 0) {
    const long end = std::ftell(f);
    if (end > 0) size = static_cast<std::size_t>(end);
  }
  std::fclose(f);
  return ParseHeader(header, size < got ? got : size, path);
}

std::optional<LoadResult> LoadBinary(const std::string& path,
                                     bool merge_parallel) {
  MappedFile map(path);
  if (map.data() == nullptr) return std::nullopt;
  const auto info = ParseHeader(map.data(), map.size(), path);
  if (!info) return std::nullopt;

  GraphBuilder b(static_cast<NodeId>(info->num_nodes));
  b.Reserve(info->num_edges);
  util::WireReader r(map.data() + kBinaryHeaderBytes,
                     kBinaryEdgeBytes * info->num_edges);
  for (std::uint64_t i = 0; i < info->num_edges; ++i) {
    Edge e;
    if (!DecodeEdge(r, info->num_nodes, i, path, &e)) return std::nullopt;
    b.AddEdge(e.u, e.v, e.w);
  }
  if (merge_parallel) b.MergeParallel();

  LoadResult out;
  if (info->has_original_ids) {
    out.original_ids = DecodeOriginalIds(
        map.data() + kBinaryHeaderBytes + kBinaryEdgeBytes * info->num_edges,
        info->num_nodes);
  }
  out.graph = std::move(b).Build();
  return out;
}

std::optional<LoadResult> LoadBinarySlice(const std::string& path, NodeId lo,
                                          NodeId hi) {
  MappedFile map(path);
  if (map.data() == nullptr) return std::nullopt;
  const auto info = ParseHeader(map.data(), map.size(), path);
  if (!info) return std::nullopt;
  if (lo > hi || hi > info->num_nodes) {
    KCORE_LOG(kError) << "binio: slice [" << lo << "," << hi
                      << ") out of range, n=" << info->num_nodes;
    return std::nullopt;
  }

  // Counting pass so the edge array is sized exactly once (the loader
  // never holds more than the slice's edges).
  const auto owned = [lo, hi](NodeId v) { return v >= lo && v < hi; };
  util::WireReader count(map.data() + kBinaryHeaderBytes,
                         kBinaryEdgeBytes * info->num_edges);
  std::uint64_t mine = 0;
  for (std::uint64_t i = 0; i < info->num_edges; ++i) {
    Edge e;
    if (!DecodeEdge(count, info->num_nodes, i, path, &e)) return std::nullopt;
    if (owned(e.u) || owned(e.v)) ++mine;
  }

  GraphBuilder b(static_cast<NodeId>(info->num_nodes));
  b.Reserve(mine);
  util::WireReader r(map.data() + kBinaryHeaderBytes,
                     kBinaryEdgeBytes * info->num_edges);
  for (std::uint64_t i = 0; i < info->num_edges; ++i) {
    Edge e;
    e.u = r.Fixed32();
    e.v = r.Fixed32();
    e.w = r.Double();
    if (owned(e.u) || owned(e.v)) b.AddEdge(e.u, e.v, e.w);
  }

  LoadResult out;
  if (info->has_original_ids) {
    out.original_ids = DecodeOriginalIds(
        map.data() + kBinaryHeaderBytes + kBinaryEdgeBytes * info->num_edges,
        info->num_nodes);
  }
  out.graph = std::move(b).Build();
  return out;
}

}  // namespace kcore::graph
