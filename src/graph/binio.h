// Versioned binary edge-list format with an mmap-based bulk loader.
//
// The text edge-list reader (graph/io.h) parses ~10^6 edges/sec — fine
// for fixtures, hopeless for the 10^7..10^8-edge graphs the benches
// target (ROADMAP item 2). This module is the bulk path: a fixed-width
// little-endian on-disk format (util::Wire conventions: Fixed32 ids,
// IEEE-754 Double bits, no varints in the record stream so every record
// sits at a computable offset) and a loader that mmaps the file and
// streams the records straight into a pre-sized GraphBuilder — one
// allocation for the edge array, no per-line parsing, no intermediate
// copies of the byte stream.
//
// On-disk layout (all multi-byte fields little-endian; byte offsets in
// docs/FORMATS.md):
//
//   header (32 bytes)
//     [ 0, 8)  magic   "KCOREBIN" (8 raw ASCII bytes)
//     [ 8,12)  version fixed32, currently 1
//     [12,16)  flags   fixed32; bit 0 = original-id table present,
//                      all other bits must be zero
//     [16,24)  n       fixed64, number of nodes
//     [24,32)  m       fixed64, number of edge records
//   edge records (16 bytes each, m of them, immediately after header)
//     u fixed32, v fixed32, w double   (u == v encodes a self-loop)
//   original-id table (only if flags bit 0; n fixed64 entries)
//     dense id -> original file id, ascending dense order
//
// The loader validates magic, version, flags, the exact file size
// (32 + 16 m + [8 n]), id range (u, v < n) and weight well-formedness
// (finite, non-negative — the same contract the text parser enforces),
// so a truncated or corrupted file surfaces as a logged error, never as
// a silently wrong graph.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "graph/graph.h"
#include "graph/io.h"

namespace kcore::graph {

inline constexpr char kBinaryMagic[8] = {'K', 'C', 'O', 'R',
                                         'E', 'B', 'I', 'N'};
inline constexpr std::uint32_t kBinaryVersion = 1;
inline constexpr std::uint32_t kBinaryFlagOriginalIds = 1u << 0;
inline constexpr std::size_t kBinaryHeaderBytes = 32;
inline constexpr std::size_t kBinaryEdgeBytes = 16;

// Header fields, readable without touching the record stream (Info on a
// 1.6 GB file costs one 32-byte read).
struct BinaryInfo {
  std::uint32_t version = 0;
  bool has_original_ids = false;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;

  // Exact file size the header promises.
  std::uint64_t FileBytes() const {
    return kBinaryHeaderBytes + kBinaryEdgeBytes * num_edges +
           (has_original_ids ? 8 * num_nodes : 0);
  }
};

// Writes g in the binary format. `original_ids`, when non-empty, must
// hold g.num_nodes() entries (dense id -> original id, the LoadResult
// convention) and is stored as the optional id table, making
// text -> binary -> text conversions id-stable for sparse-id inputs.
// Returns false (and logs) on I/O failure.
bool SaveBinary(const Graph& g, const std::string& path,
                std::span<const std::uint64_t> original_ids = {});

// Reads and validates the 32-byte header only.
std::optional<BinaryInfo> ReadBinaryInfo(const std::string& path);

// mmap-based bulk loader. The whole file is mapped read-only and the
// records are decoded in place; the only allocations are the Graph's own
// arrays (edge vector reserved at exactly m). `original_ids` in the
// result is the stored table when present, empty otherwise (binary ids
// are dense by construction). merge_parallel defaults to false — unlike
// the text path, a binary file is typically produced by SaveBinary and
// already merged; flipping it on costs a hash pass over m edges.
std::optional<LoadResult> LoadBinary(const std::string& path,
                                     bool merge_parallel = false);

// Rank-sliced loader: decodes only the edges incident to the owned node
// range [lo, hi) — the contract of distsim::Engine::rank_bounds(), where
// rank r owns [rank_bounds[r], rank_bounds[r+1]). The returned graph
// keeps the full [0, n) id space (offsets are O(n)) but materializes
// adjacency only for the owned slice: a cross-rank edge is loaded by
// both endpoint owners (each needs it for neighbor exchange), an edge
// with neither endpoint owned costs zero memory. Memory is therefore
// proportional to the rank's share of edges, not to m.
std::optional<LoadResult> LoadBinarySlice(const std::string& path, NodeId lo,
                                          NodeId hi);

}  // namespace kcore::graph
