#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace kcore::graph {
namespace {

// Unordered endpoint pair packed into one 64-bit key.
std::uint64_t PairKey(NodeId u, NodeId v) {
  const NodeId a = std::min(u, v);
  const NodeId b = std::max(u, v);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

Graph Path(NodeId n, double w) {
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1, w);
  return std::move(b).Build();
}

Graph Cycle(NodeId n, double w) {
  KCORE_CHECK_MSG(n >= 3, "cycle needs >= 3 nodes");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.AddEdge(i, (i + 1) % n, w);
  return std::move(b).Build();
}

Graph Star(NodeId n, double w) {
  KCORE_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.AddEdge(0, i, w);
  return std::move(b).Build();
}

Graph Complete(NodeId n, double w) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.AddEdge(i, j, w);
  }
  return std::move(b).Build();
}

Graph CompleteBipartite(NodeId a, NodeId b_count, double w) {
  GraphBuilder b(a + b_count);
  for (NodeId i = 0; i < a; ++i) {
    for (NodeId j = 0; j < b_count; ++j) b.AddEdge(i, a + j, w);
  }
  return std::move(b).Build();
}

Graph Grid(NodeId rows, NodeId cols, double w) {
  GraphBuilder b(rows * cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.AddEdge(id(r, c), id(r, c + 1), w);
      if (r + 1 < rows) b.AddEdge(id(r, c), id(r + 1, c), w);
    }
  }
  return std::move(b).Build();
}

Graph ErdosRenyiGnp(NodeId n, double p, util::Rng& rng) {
  GraphBuilder b(n);
  if (n >= 2 && p > 0.0) {
    if (p >= 1.0) return Complete(n);
    // Batagelj-Brandes geometric skipping: expected O(n + m).
    const double logq = std::log(1.0 - p);
    std::int64_t v = 1;
    std::int64_t w = -1;
    while (v < static_cast<std::int64_t>(n)) {
      const double r = 1.0 - rng.NextDouble();  // (0,1]
      w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / logq));
      while (w >= v && v < static_cast<std::int64_t>(n)) {
        w -= v;
        ++v;
      }
      if (v < static_cast<std::int64_t>(n)) {
        b.AddEdge(static_cast<NodeId>(v), static_cast<NodeId>(w), 1.0);
      }
    }
  }
  return std::move(b).Build();
}

Graph ErdosRenyiGnm(NodeId n, std::size_t m, util::Rng& rng) {
  const std::uint64_t total =
      n >= 2 ? static_cast<std::uint64_t>(n) * (n - 1) / 2 : 0;
  KCORE_CHECK_MSG(m <= total, "G(n,m): too many edges requested");
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(m * 2);
  while (used.size() < m) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (used.insert(PairKey(u, v)).second) b.AddEdge(u, v, 1.0);
  }
  return std::move(b).Build();
}

Graph BarabasiAlbert(NodeId n, NodeId attach, util::Rng& rng) {
  KCORE_CHECK(attach >= 1);
  KCORE_CHECK_MSG(n > attach, "BA needs n > attach");
  GraphBuilder b(n);
  // Repeated-endpoint list: sampling an element uniformly is sampling a
  // node proportional to degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) * attach);
  // Seed: a clique on the first attach+1 nodes.
  for (NodeId i = 0; i <= attach; ++i) {
    for (NodeId j = i + 1; j <= attach; ++j) {
      b.AddEdge(i, j, 1.0);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  // Distinct attachment targets, kept in a sorted vector: the previous
  // unordered_set iterated in HASH order here, which leaked the standard
  // library's bucket layout into the edge list (and through it into edge
  // ids, weighted reruns, and goldens) — deterministic on one stdlib,
  // different on the next. attach is small, so the linear membership
  // probe costs nothing; the sort canonicalizes the per-node edge order.
  std::vector<NodeId> targets;
  targets.reserve(attach);
  for (NodeId v = attach + 1; v < n; ++v) {
    targets.clear();
    while (targets.size() < attach) {
      const NodeId t =
          endpoints[rng.NextBounded(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    std::sort(targets.begin(), targets.end());
    for (NodeId t : targets) {
      b.AddEdge(v, t, 1.0);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return std::move(b).Build();
}

Graph WattsStrogatz(NodeId n, NodeId k, double beta, util::Rng& rng) {
  KCORE_CHECK_MSG(n > 2 * k, "WS needs n > 2k");
  std::unordered_set<std::uint64_t> used;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId d = 1; d <= k; ++d) {
      const NodeId j = (i + d) % n;
      if (used.insert(PairKey(i, j)).second) edges.emplace_back(i, j);
    }
  }
  // Rewire: with probability beta replace edge (i, j) by (i, r).
  for (auto& [u, v] : edges) {
    if (!rng.NextBool(beta)) continue;
    for (int attempts = 0; attempts < 32; ++attempts) {
      const NodeId r = static_cast<NodeId>(rng.NextBounded(n));
      if (r == u || r == v) continue;
      const std::uint64_t key = PairKey(u, r);
      if (used.count(key)) continue;
      used.erase(PairKey(u, v));
      used.insert(key);
      v = r;
      break;
    }
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.AddEdge(u, v, 1.0);
  return std::move(b).Build();
}

Graph PowerLawConfiguration(NodeId n, double alpha, NodeId d_min,
                            NodeId d_max, util::Rng& rng) {
  KCORE_CHECK(d_min >= 1 && d_max >= d_min && d_max < n);
  // Draw degrees from the truncated discrete power law by inverse CDF of
  // the continuous Pareto, clamped into [d_min, d_max].
  std::vector<NodeId> degree(n);
  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < n; ++v) {
    const double x = rng.NextPareto(static_cast<double>(d_min), alpha - 1.0);
    degree[v] = static_cast<NodeId>(
        std::min<double>(std::floor(x), static_cast<double>(d_max)));
    for (NodeId i = 0; i < degree[v]; ++i) stubs.push_back(v);
  }
  if (stubs.size() % 2 == 1) stubs.push_back(0);
  rng.Shuffle(stubs.begin(), stubs.end());
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> used;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i];
    const NodeId v = stubs[i + 1];
    if (u == v) continue;  // drop self-loop
    if (!used.insert(PairKey(u, v)).second) continue;  // drop duplicate
    b.AddEdge(u, v, 1.0);
  }
  return std::move(b).Build();
}

Graph Rmat(int scale, double avg_degree, double a, double b, double c,
           util::Rng& rng) {
  KCORE_CHECK(scale >= 1 && scale < 31);
  const NodeId n = static_cast<NodeId>(1) << scale;
  const auto target =
      static_cast<std::size_t>(avg_degree * static_cast<double>(n) / 2.0);
  const double d = 1.0 - a - b - c;
  KCORE_CHECK_MSG(d >= 0.0, "RMAT probabilities exceed 1");
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(target * 2);
  std::size_t added = 0;
  // Cap attempts so pathological parameters cannot loop forever.
  const std::size_t max_attempts = target * 64 + 1024;
  for (std::size_t attempt = 0; attempt < max_attempts && added < target;
       ++attempt) {
    NodeId u = 0;
    NodeId v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (!used.insert(PairKey(u, v)).second) continue;
    builder.AddEdge(u, v, 1.0);
    ++added;
  }
  return std::move(builder).Build();
}

Graph PlantedPartition(NodeId n, NodeId communities, double p_in,
                       double p_out, util::Rng& rng) {
  KCORE_CHECK(communities >= 1);
  GraphBuilder b(n);
  const auto community = [&](NodeId v) { return v % communities; };
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const double p = community(i) == community(j) ? p_in : p_out;
      if (rng.NextBool(p)) b.AddEdge(i, j, 1.0);
    }
  }
  return std::move(b).Build();
}

Graph RandomGeometric(NodeId n, double radius, util::Rng& rng) {
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (NodeId v = 0; v < n; ++v) {
    x[v] = rng.NextDouble();
    y[v] = rng.NextDouble();
  }
  const double r2 = radius * radius;
  GraphBuilder b(n);
  // Grid bucketing keeps this O(n) for constant expected degree.
  const int cells = std::max(1, static_cast<int>(1.0 / std::max(radius, 1e-9)));
  std::vector<std::vector<NodeId>> grid(
      static_cast<std::size_t>(cells) * cells);
  const auto cell_of = [&](NodeId v) {
    const int cx = std::min(cells - 1, static_cast<int>(x[v] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(y[v] * cells));
    return static_cast<std::size_t>(cy) * cells + cx;
  };
  for (NodeId v = 0; v < n; ++v) grid[cell_of(v)].push_back(v);
  for (NodeId v = 0; v < n; ++v) {
    const int cx = std::min(cells - 1, static_cast<int>(x[v] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(y[v] * cells));
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = cx + dx;
        const int ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (NodeId u : grid[static_cast<std::size_t>(ny) * cells + nx]) {
          if (u <= v) continue;
          const double ddx = x[u] - x[v];
          const double ddy = y[u] - y[v];
          if (ddx * ddx + ddy * ddy <= r2) b.AddEdge(v, u, 1.0);
        }
      }
    }
  }
  return std::move(b).Build();
}

namespace {

template <typename WeightFn>
Graph Reweight(const Graph& g, WeightFn&& fn) {
  GraphBuilder b(g.num_nodes());
  for (const Edge& e : g.edges()) b.AddEdge(e.u, e.v, fn());
  return std::move(b).Build();
}

}  // namespace

Graph WithUniformWeights(const Graph& g, double lo, double hi,
                         util::Rng& rng) {
  return Reweight(g, [&] { return rng.NextDouble(lo, hi); });
}

Graph WithParetoWeights(const Graph& g, double x_min, double alpha,
                        util::Rng& rng) {
  return Reweight(g, [&] { return rng.NextPareto(x_min, alpha); });
}

Graph WithIntegerWeights(const Graph& g, int max_w, util::Rng& rng) {
  KCORE_CHECK(max_w >= 1);
  return Reweight(g, [&] {
    return static_cast<double>(1 + rng.NextBounded(
                                       static_cast<std::uint64_t>(max_w)));
  });
}

Graph WithDyadicWeights(const Graph& g, double lo, double hi, util::Rng& rng,
                        int bits) {
  KCORE_CHECK(bits >= 0 && bits <= 20 && lo <= hi && lo >= 0.0);
  const double quantum = std::ldexp(1.0, -bits);
  const auto lo_q = static_cast<std::uint64_t>(std::ceil(lo / quantum));
  const auto hi_q = static_cast<std::uint64_t>(std::floor(hi / quantum));
  KCORE_CHECK_MSG(hi_q >= lo_q, "no dyadic multiples in [lo, hi]");
  return Reweight(g, [&] {
    return static_cast<double>(lo_q + rng.NextBounded(hi_q - lo_q + 1)) *
           quantum;
  });
}

Graph QuantizeWeightsDyadic(const Graph& g, int bits) {
  KCORE_CHECK(bits >= 0 && bits <= 20);
  const double quantum = std::ldexp(1.0, -bits);
  GraphBuilder b(g.num_nodes());
  for (const Edge& e : g.edges()) {
    const double q = std::max(1.0, std::round(e.w / quantum)) * quantum;
    b.AddEdge(e.u, e.v, q);
  }
  return std::move(b).Build();
}

Graph Fig1a(NodeId n) {
  KCORE_CHECK(n >= 3);
  return Cycle(n);
}

Graph Fig1b(NodeId n) { return Path(n); }

Graph Fig1c(NodeId n) {
  KCORE_CHECK_MSG(n >= 4, "Fig1c needs >= 4 nodes");
  // Path 0 - 1 - ... - (n-2), plus node n-1 forming a triangle with the
  // last two path nodes {n-3, n-2}. The distinguished node sits at the
  // other end of the path: its view is a path for ~n hops.
  GraphBuilder b(n);
  for (NodeId i = 0; i + 2 < n; ++i) b.AddEdge(i, i + 1, 1.0);
  b.AddEdge(n - 2, n - 1, 1.0);
  b.AddEdge(n - 3, n - 1, 1.0);
  return std::move(b).Build();
}

NodeId Fig1DistinguishedNode(NodeId n) {
  (void)n;
  return 0;
}

std::size_t GammaTreeSize(NodeId gamma, NodeId depth) {
  KCORE_CHECK(gamma >= 2);
  std::size_t total = 0;
  std::size_t level = 1;
  for (NodeId d = 0; d <= depth; ++d) {
    total += level;
    level *= gamma;
  }
  return total;
}

Graph GammaTree(NodeId gamma, NodeId depth) {
  const std::size_t n = GammaTreeSize(gamma, depth);
  KCORE_CHECK_MSG(n < static_cast<std::size_t>(kInvalidNode),
                  "gamma tree too large");
  GraphBuilder b(static_cast<NodeId>(n));
  // Node 0 is the root; children of node v are gamma*v + 1 ... gamma*v+gamma
  // (heap layout), valid because the tree is complete.
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId c = 1; c <= gamma; ++c) {
      const std::size_t child =
          static_cast<std::size_t>(gamma) * v + c;
      if (child < n) b.AddEdge(v, static_cast<NodeId>(child), 1.0);
    }
  }
  return std::move(b).Build();
}

Graph GammaTreeWithLeafClique(NodeId gamma, NodeId depth) {
  const std::size_t n = GammaTreeSize(gamma, depth);
  const std::size_t leaves_start = GammaTreeSize(gamma, depth - 1);
  GraphBuilder b(static_cast<NodeId>(n));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId c = 1; c <= gamma; ++c) {
      const std::size_t child = static_cast<std::size_t>(gamma) * v + c;
      if (child < n) b.AddEdge(v, static_cast<NodeId>(child), 1.0);
    }
  }
  // Clique on the leaves (the last level). Lemma III.13 requires at least
  // 2*gamma + 1 leaves so the clique alone forces coreness >= gamma.
  KCORE_CHECK_MSG(n - leaves_start >= 2u * gamma + 1,
                  "need >= 2*gamma+1 leaves; increase depth");
  for (std::size_t i = leaves_start; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j), 1.0);
    }
  }
  return std::move(b).Build();
}

}  // namespace kcore::graph
