#include "graph/io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "util/logging.h"

namespace kcore::graph {
namespace {

std::optional<LoadResult> ParseStream(std::istream& in, bool merge_parallel) {
  struct RawEdge {
    std::uint64_t u, v;
    double w;
  };
  std::vector<RawEdge> raw;
  std::map<std::uint64_t, NodeId> remap;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and blank lines.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#' || line[first] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) {
      KCORE_LOG(kError) << "edge list parse error at line " << lineno << ": '"
                        << line << "'";
      return std::nullopt;
    }
    // The third token, if present, must be a complete finite number — a
    // junk token ("1 2 oops") must not silently load as w=1.
    std::string tok;
    if (ls >> tok) {
      char* end = nullptr;
      errno = 0;
      w = std::strtod(tok.c_str(), &end);
      if (end != tok.c_str() + tok.size() || errno == ERANGE ||
          !std::isfinite(w)) {
        KCORE_LOG(kError) << "malformed weight '" << tok << "' at line "
                          << lineno;
        return std::nullopt;
      }
      std::string extra;
      if (ls >> extra) {
        KCORE_LOG(kError) << "trailing garbage '" << extra << "' at line "
                          << lineno;
        return std::nullopt;
      }
    }
    if (w < 0.0) {
      KCORE_LOG(kError) << "negative weight at line " << lineno;
      return std::nullopt;
    }
    raw.push_back(RawEdge{u, v, w});
    remap.emplace(u, 0);
    remap.emplace(v, 0);
  }
  LoadResult out;
  NodeId next = 0;
  for (auto& [orig, dense] : remap) {
    dense = next++;
    out.original_ids.push_back(orig);
  }
  GraphBuilder b(next);
  for (const RawEdge& e : raw) {
    b.AddEdge(remap.at(e.u), remap.at(e.v), e.w);
  }
  if (merge_parallel) b.MergeParallel();
  out.graph = std::move(b).Build();
  return out;
}

}  // namespace

std::optional<LoadResult> LoadEdgeList(const std::string& path,
                                       bool merge_parallel) {
  std::ifstream in(path);
  if (!in) {
    KCORE_LOG(kError) << "cannot open '" << path << "'";
    return std::nullopt;
  }
  return ParseStream(in, merge_parallel);
}

std::optional<LoadResult> ParseEdgeList(const std::string& text,
                                        bool merge_parallel) {
  std::istringstream in(text);
  return ParseStream(in, merge_parallel);
}

namespace {

bool SaveEdgeListImpl(const Graph& g, const std::string& path,
                      std::span<const std::uint64_t> original_ids) {
  std::ofstream out(path);
  if (!out) {
    KCORE_LOG(kError) << "cannot open '" << path << "' for writing";
    return false;
  }
  out << "# kcore edge list: n=" << g.num_nodes() << " m=" << g.num_edges()
      << "\n";
  out.precision(17);  // round-trip exact doubles
  for (const Edge& e : g.edges()) {
    if (original_ids.empty()) {
      out << e.u << ' ' << e.v;
    } else {
      out << original_ids[e.u] << ' ' << original_ids[e.v];
    }
    out << ' ' << e.w << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace

bool SaveEdgeList(const Graph& g, const std::string& path) {
  return SaveEdgeListImpl(g, path, {});
}

bool SaveEdgeList(const Graph& g, const std::string& path,
                  std::span<const std::uint64_t> original_ids) {
  if (original_ids.size() != g.num_nodes()) {
    KCORE_LOG(kError) << "SaveEdgeList: original_ids has "
                      << original_ids.size() << " entries for a "
                      << g.num_nodes() << "-node graph";
    return false;
  }
  return SaveEdgeListImpl(g, path, original_ids);
}

}  // namespace kcore::graph
