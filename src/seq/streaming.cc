#include "seq/streaming.h"

#include <algorithm>

#include "util/logging.h"

namespace kcore::seq {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

StreamingDensestResult StreamingDensest(const Graph& g, double eps) {
  KCORE_CHECK_MSG(eps > 0.0, "eps must be positive");
  StreamingDensestResult out;
  const NodeId n = g.num_nodes();
  out.in_set.assign(n, 0);
  if (n == 0) return out;

  std::vector<char> alive(n, 1);
  std::vector<char> best_set(n, 1);
  std::vector<double> deg(n);
  double best_density = -1.0;
  std::size_t alive_count = n;

  while (alive_count > 0) {
    ++out.passes;
    // One pass over the stream: survivor degrees and surviving weight.
    std::fill(deg.begin(), deg.end(), 0.0);
    double w_alive = 0.0;
    for (const Edge& e : g.edges()) {
      if (!alive[e.u] || !alive[e.v]) continue;
      w_alive += e.w;
      deg[e.u] += e.w;
      if (e.u != e.v) deg[e.v] += e.w;
    }
    const double rho = w_alive / static_cast<double>(alive_count);
    if (rho > best_density) {
      best_density = rho;
      best_set = alive;
    }
    // Drop everything below the inflated threshold; Bahmani et al. prove
    // the survivor count shrinks geometrically, so passes are
    // O(log_{1+eps} n).
    const double threshold = 2.0 * (1.0 + eps) * rho;
    std::size_t dropped = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (alive[v] && deg[v] < threshold) {
        alive[v] = 0;
        ++dropped;
      }
    }
    alive_count -= dropped;
    if (dropped == 0) {
      // Everyone meets the threshold: rho can no longer improve by more
      // than the guarantee; stop (also prevents an infinite loop when
      // threshold == 0 on edgeless survivor sets).
      break;
    }
  }

  out.in_set = std::move(best_set);
  out.density = std::max(best_density, 0.0);
  out.peak_memory_items = 2 * static_cast<std::size_t>(n);
  return out;
}

}  // namespace kcore::seq
