// Bahmani, Kumar, Vassilvitskii (VLDB 2012): densest subgraph in
// streaming / MapReduce — the algorithm whose analysis inspired the
// paper's Lemma III.3 (threshold 2(1+eps) times the current density,
// O(log_{1+eps} n) passes, 2(1+eps)-approximation).
//
// Implemented as a semi-streaming pass model: the edge list is scanned
// once per pass (degrees of the current survivor set), then every
// survivor below 2(1+eps) * rho(survivors) is dropped. The best survivor
// set over all passes is returned. Memory: O(n); passes: O(log_{1+eps} n).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace kcore::seq {

struct StreamingDensestResult {
  std::vector<char> in_set;
  double density = 0.0;
  int passes = 0;          // edge-list scans used
  std::size_t peak_memory_items = 0;  // survivor-array entries (O(n))
};

// eps > 0. Works on weighted graphs with self-loops (a self-loop counts
// toward its node's degree and toward w(E(S)) when the node survives).
StreamingDensestResult StreamingDensest(const graph::Graph& g, double eps);

}  // namespace kcore::seq
