// Centralized references for the min-max edge orientation problem.
//
//   * ExactMinMaxOrientationUnweighted — optimal solution for unit-weight
//     graphs (the polynomial case, Venkateswaran / Asahiro et al.): binary
//     search on the in-degree bound k with a bipartite flow feasibility
//     test (edge -> endpoint -> sink with capacity k).
//   * GreedyOrientation + LocalSearchImprove — upper-bound heuristic for
//     weighted graphs (the weighted problem is NP-hard).
//   * OrientationLpLowerBound — rho*, the densest-subset LP value, which
//     lower-bounds the orientation optimum by weak duality (Section II).
//
// A self-loop has only one endpoint, so it is always "assigned" to its own
// node and contributes a fixed load there.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace kcore::seq {

// An edge assignment: owner[e] is the endpoint edge e is oriented toward.
struct Orientation {
  std::vector<graph::NodeId> owner;  // size = num_edges
  std::vector<double> loads;         // weighted in-degree per node
  double max_load = 0.0;
};

// Recomputes loads/max_load of an owner assignment (owner[e] must be an
// endpoint of edge e).
Orientation MakeOrientation(const graph::Graph& g,
                            std::vector<graph::NodeId> owner);

struct ExactOrientationResult {
  Orientation orientation;
  std::uint32_t opt = 0;  // minimum achievable max in-degree
};

// Optimal min-max orientation for unit-weight graphs. Edge weights are
// ignored (each edge counts 1). O(log(max_deg)) max-flow runs.
ExactOrientationResult ExactMinMaxOrientationUnweighted(const graph::Graph& g);

// Greedy upper bound for weighted graphs: edges in descending weight, each
// assigned to the endpoint with the smaller current load.
Orientation GreedyOrientation(const graph::Graph& g);

// Hill-climbing: move single edges to the lighter endpoint while the
// bottleneck improves; at most max_passes sweeps.
void LocalSearchImprove(const graph::Graph& g, Orientation& o,
                        int max_passes = 8);

// rho* — the LP lower bound on the orientation optimum (weak duality).
double OrientationLpLowerBound(const graph::Graph& g);

}  // namespace kcore::seq
