// Exact densest subset (thin facade over the flow solver) plus helpers
// used by experiments: rho*, the maximal densest subset, and verification
// that a candidate subset is within a factor of rho*.
#pragma once

#include <vector>

#include "flow/densest_flow.h"
#include "graph/graph.h"

namespace kcore::seq {

// The exact maximum subset density rho* of g (0 for edgeless graphs).
double MaxDensity(const graph::Graph& g);

// The unique maximal densest subset (Fact II.1) and rho*.
flow::DensestResult MaximalDensestSubset(const graph::Graph& g);

}  // namespace kcore::seq
