// Diminishingly-dense decomposition and exact maximal densities r(v)
// (Definitions II.2 / II.3 of the paper, following Danisch et al.).
//
// Layer i is the maximal densest subset S_i of the quotient graph
// G_i = G \ B_{i-1}; every node of S_i gets r(v) = rho_{G_i}(S_i). The
// layer densities are strictly decreasing (Fact II.4) — verified by a
// KCORE_CHECK and by tests. The decomposition requires exact maximal
// densest subsets, which come from the flow solver; each round peels at
// least one node, so it terminates after <= n layers.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace kcore::seq {

struct LocalDensityResult {
  // r(v) for every node.
  std::vector<double> max_density;
  // layer[v] = index of the layer containing v (0-based).
  std::vector<std::uint32_t> layer;
  // Density of each layer, strictly decreasing.
  std::vector<double> layer_density;
  // Size of each layer.
  std::vector<std::uint32_t> layer_size;
};

// Exact diminishingly-dense decomposition of g.
LocalDensityResult DiminishinglyDenseDecomposition(const graph::Graph& g);

// Convenience: just r(v).
std::vector<double> MaximalDensities(const graph::Graph& g);

}  // namespace kcore::seq
