#include "seq/densest_exact.h"

namespace kcore::seq {

double MaxDensity(const graph::Graph& g) {
  return flow::MaximalDensestSubset(g).density;
}

flow::DensestResult MaximalDensestSubset(const graph::Graph& g) {
  return flow::MaximalDensestSubset(g);
}

}  // namespace kcore::seq
