#include "seq/kcore.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace kcore::seq {

using graph::AdjEntry;
using graph::Graph;
using graph::NodeId;

std::vector<std::uint32_t> UnweightedCoreness(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(g.Degree(v));
    max_deg = std::max(max_deg, deg[v]);
  }

  // Bucket sort nodes by degree (Batagelj-Zaversnik).
  std::vector<std::uint32_t> bin(max_deg + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[deg[v]];
  std::uint32_t start = 0;
  for (std::uint32_t d = 0; d <= max_deg; ++d) {
    const std::uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> vert(n);
  std::vector<std::uint32_t> pos(n);
  {
    std::vector<std::uint32_t> cursor(bin.begin(), bin.end());
    for (NodeId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]];
      vert[pos[v]] = v;
      ++cursor[deg[v]];
    }
  }

  std::vector<std::uint32_t> core(deg);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId v = vert[i];
    core[v] = deg[v];
    for (const AdjEntry& a : g.Neighbors(v)) {
      const NodeId u = a.to;
      if (u == v) continue;  // self-loop: vanishes with v itself
      if (deg[u] > deg[v]) {
        // Swap u toward the front of its bucket, then shrink its degree.
        const std::uint32_t du = deg[u];
        const std::uint32_t pu = pos[u];
        const std::uint32_t pw = bin[du];
        const NodeId w = vert[pw];
        if (u != w) {
          pos[u] = pw;
          pos[w] = pu;
          vert[pu] = w;
          vert[pw] = u;
        }
        ++bin[du];
        --deg[u];
      }
    }
  }
  // Coreness is the running max of the min degree at peel time; the BZ
  // invariant guarantees deg[v] at peel time is already that max, but a
  // final monotone pass makes the result robust to duplicate degrees.
  std::uint32_t running = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId v = vert[i];
    running = std::max(running, core[v]);
    core[v] = running;
  }
  return core;
}

WeightedCorenessResult WeightedCorenessWithOrder(const Graph& g) {
  const NodeId n = g.num_nodes();
  WeightedCorenessResult out;
  out.coreness.assign(n, 0.0);
  out.peel_order.reserve(n);

  std::vector<double> deg(n);
  for (NodeId v = 0; v < n; ++v) deg[v] = g.WeightedDegree(v);

  // Lazy-deletion min-heap of (degree, node).
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (NodeId v = 0; v < n; ++v) heap.emplace(deg[v], v);

  std::vector<char> removed(n, 0);
  double running_max = 0.0;
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (removed[v] || d != deg[v]) continue;  // stale entry
    removed[v] = 1;
    running_max = std::max(running_max, d);
    out.coreness[v] = running_max;
    out.peel_order.push_back(v);
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (a.to == v || removed[a.to]) continue;
      deg[a.to] -= a.w;
      // Clamp tiny negative residue from floating point cancellation.
      if (deg[a.to] < 0.0 && deg[a.to] > -1e-9) deg[a.to] = 0.0;
      heap.emplace(deg[a.to], a.to);
    }
  }
  return out;
}

std::vector<double> WeightedCoreness(const Graph& g) {
  return WeightedCorenessWithOrder(g).coreness;
}

std::uint32_t Degeneracy(const Graph& g) {
  std::uint32_t best = 0;
  for (std::uint32_t c : UnweightedCoreness(g)) best = std::max(best, c);
  return best;
}

}  // namespace kcore::seq
