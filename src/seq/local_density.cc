#include "seq/local_density.h"

#include "flow/densest_flow.h"
#include "graph/quotient.h"
#include "util/logging.h"

namespace kcore::seq {

using graph::Graph;
using graph::NodeId;

LocalDensityResult DiminishinglyDenseDecomposition(const Graph& g) {
  LocalDensityResult out;
  const NodeId n = g.num_nodes();
  out.max_density.assign(n, 0.0);
  out.layer.assign(n, 0);

  // current graph + mapping back to original ids.
  Graph cur = g;  // copy; shrinks every layer
  std::vector<NodeId> cur_to_orig(n);
  for (NodeId v = 0; v < n; ++v) cur_to_orig[v] = v;

  double prev_density = -1.0;
  while (cur.num_nodes() > 0) {
    const flow::DensestResult layer = flow::MaximalDensestSubset(cur);
    KCORE_CHECK_MSG(layer.size > 0, "empty layer in decomposition");
    // Fact II.4: strictly decreasing densities. A tiny tolerance absorbs
    // floating point noise from the flow solver.
    if (prev_density >= 0.0) {
      KCORE_CHECK_MSG(layer.density <= prev_density + 1e-6,
                      "layer density increased: " << layer.density << " after "
                                                  << prev_density);
    }
    const auto layer_idx = static_cast<std::uint32_t>(out.layer_density.size());
    out.layer_density.push_back(layer.density);
    out.layer_size.push_back(static_cast<std::uint32_t>(layer.size));
    for (NodeId v = 0; v < cur.num_nodes(); ++v) {
      if (layer.in_set[v]) {
        out.max_density[cur_to_orig[v]] = layer.density;
        out.layer[cur_to_orig[v]] = layer_idx;
      }
    }
    prev_density = layer.density;

    if (layer.size == cur.num_nodes()) break;  // everything assigned

    // Quotient out the layer (Definition II.2): cross edges become
    // self-loops at the surviving endpoint.
    graph::QuotientResult q = graph::QuotientGraph(cur, layer.in_set);
    std::vector<NodeId> next_map(q.graph.num_nodes());
    for (NodeId v = 0; v < q.graph.num_nodes(); ++v) {
      next_map[v] = cur_to_orig[q.new_to_old[v]];
    }
    cur = std::move(q.graph);
    cur_to_orig = std::move(next_map);
  }
  return out;
}

std::vector<double> MaximalDensities(const Graph& g) {
  return DiminishinglyDenseDecomposition(g).max_density;
}

}  // namespace kcore::seq
