#include "seq/brute.h"

#include <algorithm>
#include <limits>

#include "graph/quotient.h"
#include "util/logging.h"

namespace kcore::seq {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

std::vector<char> EliminationFixpoint(const Graph& g, double b,
                                      int max_rounds) {
  const NodeId n = g.num_nodes();
  std::vector<char> alive(n, 1);
  std::vector<double> deg(n);
  for (NodeId v = 0; v < n; ++v) deg[v] = g.WeightedDegree(v);
  int round = 0;
  while (max_rounds < 0 || round < max_rounds) {
    ++round;
    // Synchronous semantics: mark against the degrees at round start.
    std::vector<NodeId> killed;
    for (NodeId v = 0; v < n; ++v) {
      if (alive[v] && deg[v] < b) killed.push_back(v);
    }
    if (killed.empty()) break;
    for (NodeId v : killed) alive[v] = 0;
    for (NodeId v : killed) {
      for (const auto& a : g.Neighbors(v)) {
        if (a.to != v && alive[a.to]) deg[a.to] -= a.w;
      }
    }
  }
  return alive;
}

BruteDensestResult BruteDensestSubset(const Graph& g) {
  const NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(n >= 1 && n <= 24, "brute densest needs 1 <= n <= 24");
  const std::uint32_t limit = 1u << n;
  // Precompute endpoint masks.
  BruteDensestResult out;
  double best = -1.0;
  std::uint32_t best_mask = 0;
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    double w = 0.0;
    for (const Edge& e : g.edges()) {
      if ((mask >> e.u & 1u) && (mask >> e.v & 1u)) w += e.w;
    }
    const double density = w / static_cast<double>(__builtin_popcount(mask));
    // Strictly better density wins; at equal density prefer the superset /
    // larger set so we return the *maximal* densest subset (unique by
    // Fact II.1).
    if (density > best + 1e-12 ||
        (density > best - 1e-12 &&
         __builtin_popcount(mask) > __builtin_popcount(best_mask))) {
      best = density;
      best_mask = mask;
    }
  }
  out.in_set.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) out.in_set[v] = (best_mask >> v) & 1u;
  out.density = best;
  return out;
}

std::vector<double> BruteCoreness(const Graph& g) {
  const NodeId n = g.num_nodes();
  KCORE_CHECK_MSG(n >= 1 && n <= 20, "brute coreness needs n <= 20");
  std::vector<double> core(n, 0.0);
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    // Minimum induced weighted degree of the subset.
    double min_deg = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n; ++v) {
      if (!(mask >> v & 1u)) continue;
      double d = 0.0;
      for (const auto& a : g.Neighbors(v)) {
        if (a.to == v || (mask >> a.to & 1u)) d += a.w;
      }
      min_deg = std::min(min_deg, d);
    }
    for (NodeId v = 0; v < n; ++v) {
      if ((mask >> v & 1u) && min_deg > core[v]) core[v] = min_deg;
    }
  }
  return core;
}

std::vector<double> BruteMaximalDensities(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> r(n, 0.0);
  Graph cur = g;
  std::vector<NodeId> to_orig(n);
  for (NodeId v = 0; v < n; ++v) to_orig[v] = v;
  while (cur.num_nodes() > 0) {
    const BruteDensestResult layer = BruteDensestSubset(cur);
    std::size_t size = 0;
    for (NodeId v = 0; v < cur.num_nodes(); ++v) {
      if (layer.in_set[v]) {
        r[to_orig[v]] = layer.density;
        ++size;
      }
    }
    KCORE_CHECK(size > 0);
    if (size == cur.num_nodes()) break;
    graph::QuotientResult q = graph::QuotientGraph(cur, layer.in_set);
    std::vector<NodeId> next(q.graph.num_nodes());
    for (NodeId v = 0; v < q.graph.num_nodes(); ++v) {
      next[v] = to_orig[q.new_to_old[v]];
    }
    cur = std::move(q.graph);
    to_orig = std::move(next);
  }
  return r;
}

double BruteMinMaxOrientation(const Graph& g) {
  // Self-loops are forced; enumerate the rest.
  std::vector<graph::EdgeId> free_edges;
  std::vector<double> base_load(g.num_nodes(), 0.0);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.u == edge.v) {
      base_load[edge.u] += edge.w;
    } else {
      free_edges.push_back(e);
    }
  }
  KCORE_CHECK_MSG(free_edges.size() <= 22, "brute orientation needs m <= 22");
  double best = std::numeric_limits<double>::infinity();
  const std::uint32_t limit = 1u << free_edges.size();
  std::vector<double> load(g.num_nodes());
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    load = base_load;
    for (std::size_t i = 0; i < free_edges.size(); ++i) {
      const Edge& edge = g.edge(free_edges[i]);
      load[(mask >> i & 1u) ? edge.u : edge.v] += edge.w;
    }
    double mx = 0.0;
    for (double l : load) mx = std::max(mx, l);
    best = std::min(best, mx);
  }
  return best;
}

}  // namespace kcore::seq
