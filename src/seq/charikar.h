// Charikar's greedy 2-approximation for the densest subset.
//
// Repeatedly peel the minimum-weighted-degree node; return the prefix
// (suffix of the peeling) with the highest density. Guarantees
// rho(S) >= rho*/2 on weighted graphs with self-loops. Serves as the
// centralized comparison point for the distributed weak-densest algorithm.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace kcore::seq {

struct CharikarResult {
  std::vector<char> in_set;  // indicator of the returned subset
  double density = 0.0;
  std::size_t size = 0;
};

CharikarResult CharikarDensest(const graph::Graph& g);

}  // namespace kcore::seq
