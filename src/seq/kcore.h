// Exact (centralized) core decomposition.
//
// Two reference implementations:
//   * UnweightedCoreness — Batagelj–Zaversnik bucket peeling, O(n + m),
//     for unit-weight graphs (every adjacency entry counts 1).
//   * WeightedCoreness  — heap-based min-peeling, O(m log n), for arbitrary
//     non-negative weights.
//
// Both return c(v) = the largest k such that v belongs to a subgraph of
// minimum (weighted) degree >= k, computed via the standard degeneracy
// argument: peel a minimum-degree node, and c(v) is the running maximum of
// the minimum degree observed at the moment v is peeled. Self-loops
// contribute their weight to their node's degree (once) and never
// disappear until the node itself is peeled.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kcore::seq {

// Exact coreness for unit-weight graphs (weights are ignored; each
// adjacency entry, including a self-loop, counts 1 toward the degree).
std::vector<std::uint32_t> UnweightedCoreness(const graph::Graph& g);

// Exact weighted coreness c(v).
std::vector<double> WeightedCoreness(const graph::Graph& g);

// Degeneracy (max coreness) of the unit-weight graph.
std::uint32_t Degeneracy(const graph::Graph& g);

// Peeling order of WeightedCoreness (nodes in the order removed);
// useful for deterministic downstream processing.
struct WeightedCorenessResult {
  std::vector<double> coreness;
  std::vector<graph::NodeId> peel_order;
};
WeightedCorenessResult WeightedCorenessWithOrder(const graph::Graph& g);

}  // namespace kcore::seq
