#include "seq/charikar.h"

#include "seq/kcore.h"
#include "util/logging.h"

namespace kcore::seq {

using graph::Graph;
using graph::NodeId;

CharikarResult CharikarDensest(const Graph& g) {
  CharikarResult out;
  const NodeId n = g.num_nodes();
  out.in_set.assign(n, 0);
  if (n == 0) return out;

  // Reuse the weighted peeling order: peeling a min-degree node removes
  // edge weight equal to its current weighted degree (self-loop included
  // exactly once), so we can replay densities backward from the order.
  const WeightedCorenessResult peel = WeightedCorenessWithOrder(g);

  // Replay: density of the suffix starting at position i.
  double w_remaining = g.total_weight();
  double best_density = -1.0;
  std::size_t best_start = 0;
  std::vector<double> deg(n);
  for (NodeId v = 0; v < n; ++v) deg[v] = g.WeightedDegree(v);

  std::vector<double> removed_weight(n, 0.0);
  {
    // Recompute the weight removed at each peel step by replaying.
    std::vector<char> gone(n, 0);
    std::vector<double> cur(deg);
    for (std::size_t i = 0; i < peel.peel_order.size(); ++i) {
      const NodeId v = peel.peel_order[i];
      removed_weight[i] = cur[v];
      gone[v] = 1;
      for (const auto& a : g.Neighbors(v)) {
        if (a.to != v && !gone[a.to]) cur[a.to] -= a.w;
      }
    }
  }

  const std::size_t total = peel.peel_order.size();
  for (std::size_t i = 0; i < total; ++i) {
    const double density =
        w_remaining / static_cast<double>(total - i);
    if (density > best_density) {
      best_density = density;
      best_start = i;
    }
    w_remaining -= removed_weight[i];
  }

  for (std::size_t i = best_start; i < total; ++i) {
    out.in_set[peel.peel_order[i]] = 1;
  }
  out.density = best_density;
  out.size = total - best_start;
  return out;
}

}  // namespace kcore::seq
