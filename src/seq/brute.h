// Brute-force oracles for tiny graphs.
//
// These are deliberately naive (exponential) reference implementations
// used by the test suite to validate the polynomial solvers and the
// distributed protocols on exhaustive / randomized small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kcore::seq {

// Runs the single-threshold elimination procedure (Algorithm 1) centrally
// until fixpoint (or `max_rounds`). Returns the surviving-node indicator.
// A node survives iff its weighted degree among survivors stays >= b.
std::vector<char> EliminationFixpoint(const graph::Graph& g, double b,
                                      int max_rounds = -1);

// Exact densest subset by subset enumeration (requires n <= 24).
struct BruteDensestResult {
  std::vector<char> in_set;  // the maximal densest subset
  double density = 0.0;
};
BruteDensestResult BruteDensestSubset(const graph::Graph& g);

// Exact weighted coreness by definition: c(v) = max over subsets S
// containing v of the minimum induced weighted degree (requires n <= 20).
std::vector<double> BruteCoreness(const graph::Graph& g);

// Exact maximal densities by running the diminishingly-dense
// decomposition with the brute densest oracle (requires n <= 24).
std::vector<double> BruteMaximalDensities(const graph::Graph& g);

// Exact min-max orientation by enumerating all 2^m orientations
// (requires num_edges <= 22). Returns the optimal max weighted in-degree.
double BruteMinMaxOrientation(const graph::Graph& g);

}  // namespace kcore::seq
