#include "seq/orientation_exact.h"

#include <algorithm>
#include <numeric>

#include "flow/densest_flow.h"
#include "flow/dinic.h"
#include "seq/densest_exact.h"
#include "util/logging.h"

namespace kcore::seq {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

Orientation MakeOrientation(const Graph& g, std::vector<NodeId> owner) {
  KCORE_CHECK(owner.size() == g.num_edges());
  Orientation o;
  o.owner = std::move(owner);
  o.loads.assign(g.num_nodes(), 0.0);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<graph::EdgeId>(e));
    const NodeId to = o.owner[e];
    KCORE_CHECK_MSG(to == edge.u || to == edge.v,
                    "owner of edge " << e << " is not an endpoint");
    o.loads[to] += edge.w;
  }
  o.max_load = 0.0;
  for (double l : o.loads) o.max_load = std::max(o.max_load, l);
  return o;
}

namespace {

// Feasibility: can every (non-loop) edge be assigned so each node v takes
// at most k - forced[v] of them? forced[v] = number of self-loops at v.
bool FeasibleUnweighted(const Graph& g, std::uint32_t k,
                        std::vector<NodeId>* owner_out) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> forced(n, 0);
  std::size_t m_simple = 0;
  for (const Edge& e : g.edges()) {
    if (e.u == e.v) {
      ++forced[e.u];
    } else {
      ++m_simple;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (forced[v] > k) return false;
  }

  // Network: 0 = source, 1 = sink, 2.. = edge nodes, then vertex nodes.
  const int kSource = 0;
  const int kSink = 1;
  const auto vnode = [&](NodeId v) {
    return 2 + static_cast<int>(m_simple) + static_cast<int>(v);
  };
  flow::Dinic dinic(2 + static_cast<int>(m_simple) + static_cast<int>(n));

  std::vector<int> edge_arcs;  // arc id of edge->u arc, for extraction
  edge_arcs.reserve(2 * m_simple);
  std::vector<graph::EdgeId> simple_ids;
  simple_ids.reserve(m_simple);
  int enode = 2;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.u == edge.v) continue;
    dinic.AddArc(kSource, enode, 1.0);
    edge_arcs.push_back(dinic.AddArc(enode, vnode(edge.u), 1.0));
    edge_arcs.push_back(dinic.AddArc(enode, vnode(edge.v), 1.0));
    simple_ids.push_back(e);
    ++enode;
  }
  for (NodeId v = 0; v < n; ++v) {
    const double cap = static_cast<double>(k) - forced[v];
    if (cap > 0) dinic.AddArc(vnode(v), kSink, cap);
  }
  const double flow = dinic.MaxFlow(kSource, kSink);
  if (flow + 0.5 < static_cast<double>(m_simple)) return false;

  if (owner_out != nullptr) {
    owner_out->assign(g.num_edges(), graph::kInvalidNode);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      if (edge.u == edge.v) (*owner_out)[e] = edge.u;
    }
    for (std::size_t i = 0; i < simple_ids.size(); ++i) {
      const Edge& edge = g.edge(simple_ids[i]);
      const double fu = dinic.Flow(edge_arcs[2 * i]);
      (*owner_out)[simple_ids[i]] = fu > 0.5 ? edge.u : edge.v;
    }
  }
  return true;
}

}  // namespace

ExactOrientationResult ExactMinMaxOrientationUnweighted(const Graph& g) {
  ExactOrientationResult out;
  if (g.num_edges() == 0) {
    out.orientation = MakeOrientation(g, {});
    out.opt = 0;
    return out;
  }
  std::uint32_t lo = 0;
  auto hi = static_cast<std::uint32_t>(g.MaxDegree());
  // hi is always feasible: orient every edge toward either endpoint.
  std::vector<NodeId> best_owner;
  KCORE_CHECK(FeasibleUnweighted(g, hi, &best_owner));
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    std::vector<NodeId> owner;
    if (FeasibleUnweighted(g, mid, &owner)) {
      hi = mid;
      best_owner = std::move(owner);
    } else {
      lo = mid + 1;
    }
  }
  out.opt = hi;
  out.orientation = MakeOrientation(g, std::move(best_owner));
  return out;
}

Orientation GreedyOrientation(const Graph& g) {
  std::vector<graph::EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::EdgeId a, graph::EdgeId b) {
                     return g.edge(a).w > g.edge(b).w;
                   });
  std::vector<NodeId> owner(g.num_edges());
  std::vector<double> loads(g.num_nodes(), 0.0);
  for (graph::EdgeId e : order) {
    const Edge& edge = g.edge(e);
    NodeId pick = edge.u;
    if (edge.u != edge.v) {
      if (loads[edge.v] < loads[edge.u] ||
          (loads[edge.v] == loads[edge.u] && edge.v < edge.u)) {
        pick = edge.v;
      }
    }
    owner[e] = pick;
    loads[pick] += edge.w;
  }
  return MakeOrientation(g, std::move(owner));
}

void LocalSearchImprove(const Graph& g, Orientation& o, int max_passes) {
  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      if (edge.u == edge.v) continue;
      const NodeId cur = o.owner[e];
      const NodeId alt = (cur == edge.u) ? edge.v : edge.u;
      // Move improves the local bottleneck iff the alternative endpoint
      // ends up strictly below the current owner's load.
      if (o.loads[alt] + edge.w < o.loads[cur]) {
        o.loads[cur] -= edge.w;
        o.loads[alt] += edge.w;
        o.owner[e] = alt;
        improved = true;
      }
    }
    if (!improved) break;
  }
  o.max_load = 0.0;
  for (double l : o.loads) o.max_load = std::max(o.max_load, l);
}

double OrientationLpLowerBound(const Graph& g) { return MaxDensity(g); }

}  // namespace kcore::seq
