// Algorithm 1 of the paper: distributed elimination procedure for a
// single threshold b.
//
// Each node keeps a state sigma in {0, 1}. Per round, nodes broadcast
// their state; a surviving node whose weighted degree among surviving
// neighbors drops below b removes itself. After T rounds the surviving
// indicator defines the threshold-b elimination outcome; the surviving
// number beta^T(v) (Definition III.1) is the largest b for which v
// survives, which CompactElimination computes for all b simultaneously.
#pragma once

#include <vector>

#include "distsim/engine.h"
#include "graph/graph.h"

namespace kcore::core {

class SingleThresholdElimination : public distsim::Protocol {
 public:
  SingleThresholdElimination(graph::NodeId n, double threshold);

  void Init(distsim::NodeContext& ctx) override;
  void Round(distsim::NodeContext& ctx) override;

  // sigma_v after the rounds executed so far.
  const std::vector<char>& states() const { return state_; }
  double threshold() const { return threshold_; }

 private:
  double threshold_;
  std::vector<char> state_;
};

struct EliminationRun {
  std::vector<char> surviving;      // sigma_v after T rounds
  std::vector<std::size_t> alive_per_round;  // |A_t| for t = 0..T
  distsim::Totals totals;
};

// Runs Algorithm 1 for T rounds on g (must be self-loop free).
// num_threads > 1 backs the rounds with the engine's thread pool; the
// outcome is bit-identical to the sequential run.
EliminationRun RunSingleThreshold(const graph::Graph& g, double threshold,
                                  int rounds, int num_threads = 1);

}  // namespace kcore::core
