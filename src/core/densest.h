// Distributed (weak) densest subset — Section IV of the paper
// (Definition IV.1, Algorithms 4, 5, 6, Theorem I.3).
//
// Four phases, each a protocol on the round simulator:
//   Phase 1  Algorithm 2 for T rounds: every node learns b_v ~ beta^T(v).
//   Phase 2  Algorithm 4: BFS forest. Each node adopts the largest
//            (b_u, u) tuple seen within T hops (global ordering: larger b
//            wins, ties to larger id) and remembers the neighbor it came
//            from as its parent; a request/ack handshake fixes the
//            children lists and orphans nodes whose parent moved on.
//   Phase 3  Algorithm 5: threshold-b_leader elimination restricted to
//            same-leader neighbors, recording per-round survival flags
//            num_v[t] and weighted degrees deg_v[t].
//   Phase 4  Algorithm 6: convergecast of the (num, deg) arrays up each
//            tree; the root picks t* = argmax_t deg'[t] / (2 num'[t]) and
//            floods t* down; survivors of round t* select themselves.
//
// Lemma IV.4 guarantees that in the tree of the globally largest leader
// u*, some prefix A_t has density >= b_{u*} / gamma >= rho* / gamma, so
// the best returned subset is a gamma-approximate densest subset.
//
// Deviation from the paper text: Algorithm 6 line 10 reads
// "if bmax >= bv"; for the top root Lemma IV.4 only guarantees
// bmax >= bv / gamma, so the literal condition would reject even the tree
// the correctness proof relies on. We implement the acceptance test as
// bmax >= bv / gamma (the weakest sound threshold; see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "core/compact.h"
#include "distsim/engine.h"
#include "graph/graph.h"

namespace kcore::core {

struct DensestSubsetOut {
  graph::NodeId leader = graph::kInvalidNode;
  double density = 0.0;  // true density of the subset in G
  std::vector<graph::NodeId> members;
};

struct WeakDensestResult {
  // Per node: the leader of its BFS tree (kInvalidNode for orphans).
  std::vector<graph::NodeId> leader_of;
  // sigma_v: 1 iff the node selected itself into its tree's subset.
  std::vector<char> selected;
  // The returned disjoint collection {S_i}, one per accepting root.
  std::vector<DensestSubsetOut> subsets;
  // max_i rho(S_i).
  double best_density = 0.0;
  // Phase-1 surviving numbers.
  std::vector<double> b;
  int rounds_phase1 = 0;
  int rounds_phase2 = 0;
  int rounds_phase3 = 0;
  int rounds_phase4 = 0;
  int rounds_total = 0;
  distsim::Totals totals;  // summed over all phases
};

struct WeakDensestOptions {
  double gamma = 3.0;     // approximation target, > 2 (gamma = 2(1+eps))
  int T_override = -1;    // > 0 forces the per-phase round count
  int num_threads = 1;
  // Phase-4 message discipline (Algorithm 6, "Optimizing Message Size"):
  // false — each node sends its full (num', deg') arrays to the parent in
  //         one message of 2T+1 words (fewer rounds, big messages);
  // true  — the arrays are PIPELINED one entry pair per round (3 words
  //         per message, CONGEST-compatible, ~T extra rounds).
  // Both produce bit-identical selections (tested).
  bool pipelined_aggregation = false;
  // Engine surface shared by all four phases (see CompactOptions for the
  // field semantics); results are bit-identical under every combination.
  bool balance_shards = false;
  distsim::TransportKind transport = distsim::TransportKind::kSharedMemory;
  int ranks = 1;
  std::uint64_t seed = distsim::kDefaultMasterSeed;
  // Run every phase's compute inside the transport's rank workers — all
  // four phase protocols implement the SaveNodeState/LoadNodeState
  // round-trip, so the forest pointers, per-round survival arrays, and
  // aggregated density ratios all ship over the wire.
  bool per_rank_compute = false;
};

// Runs the full pipeline with approximation target gamma > 2
// (gamma = 2(1+eps)). T_override > 0 forces the round count of each
// phase; otherwise T = RoundsForGamma(n, gamma).
WeakDensestResult RunWeakDensest(const graph::Graph& g, double gamma,
                                 int T_override = -1, int num_threads = 1);

// Full-options variant.
WeakDensestResult RunWeakDensest(const graph::Graph& g,
                                 const WeakDensestOptions& options);

}  // namespace kcore::core
