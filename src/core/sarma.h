// Sarma et al. (DISC 2012)-style distributed densest subset baseline.
//
// The comparison point in Section I: a distributed 2(1+eps)-approximation
// of the (strong) densest subset problem in O(D log_{1+eps} n) rounds —
// every node ends up knowing whether it belongs to ONE approximately
// densest subset, at the price of a diameter-dependent round budget
// (learning the global density of the current survivor set needs
// Omega(D) rounds; that is exactly the barrier the paper's weak
// formulation removes).
//
// Protocol implemented here (Bahmani-style elimination with global
// coordination):
//   0. Build a global BFS tree from the maximum-id node (~D rounds).
//   Repeat for O(log_{1+eps} n) passes:
//     a. Convergecast (|S|, w(E(S))) of the current survivor set to the
//        root (~depth rounds); root computes rho(S).
//     b. Root floods the threshold 2(1+eps) rho(S) down (~depth rounds).
//     c. Every survivor with degree (among survivors) below the threshold
//        drops out (1 round). Nodes remember their pass-survival bitmap.
//   Finally the root floods the index of the best pass; survivors of that
//   pass form the answer (Bahmani et al. guarantee: within 2(1+eps) of
//   rho*).
#pragma once

#include <vector>

#include "distsim/engine.h"
#include "graph/graph.h"

namespace kcore::core {

struct SarmaResult {
  // Indicator of the returned (single) subset.
  std::vector<char> in_set;
  // Its density in G.
  double density = 0.0;
  // Total synchronous rounds consumed (all phases).
  int rounds_total = 0;
  // Rounds spent building the BFS tree (~D).
  int rounds_bfs = 0;
  // Number of elimination passes executed.
  int passes = 0;
  // Hop-depth of the coordination tree (lower bound on the diameter).
  int tree_depth = 0;
  distsim::Totals totals;
};

// Runs the baseline with parameter eps > 0. The graph must be self-loop
// free; on disconnected graphs the protocol runs in the component of the
// maximum-id node (matching what a real execution would do).
SarmaResult RunSarmaDensest(const graph::Graph& g, double eps,
                            int num_threads = 1);

}  // namespace kcore::core
