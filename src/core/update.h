// Algorithm 3 of the paper: the Update subroutine.
//
// Given the neighbors' current surviving numbers b_i and the incident edge
// weights w_i, Update returns the maximum real b such that
//     sum_{i : b_i >= b} w_i >= b,
// together with an auxiliary subset N ⊆ {i : b_i >= b} satisfying the
// invariant sum_{i in N} w_i <= b (Definition III.7). N is the in-neighbor
// set for the min-max edge orientation.
//
// Tie-breaking (crucial for Lemma III.11): equal b_i are ordered by the
// lexicographic order of the surviving numbers from all past iterations,
// most recent first, with node identity as the final consistent
// tie-breaker. The paper notes this is equivalent to keeping a persistent
// ordering of the neighbors and STABLE-sorting it by the current b_i each
// round — which is exactly what this implementation does: the caller owns
// `order` (initialized to the identity / id order) and passes it back
// every round; UpdateStep stable-sorts it in place.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kcore::core {

struct UpdateResult {
  // The new surviving number.
  double b = 0.0;
  // Indices (into the caller's values/weights arrays) of the auxiliary
  // subset N, in ascending sorted position (largest b_i last).
  std::vector<std::uint32_t> chosen;
};

// values[i], weights[i]: neighbor i's surviving number and edge weight.
// order: permutation of [0, d) persisted across rounds by the caller;
// stable-sorted in place by values ascending. d == 0 yields b = 0, N = {}.
UpdateResult UpdateStep(std::span<const double> values,
                        std::span<const double> weights,
                        std::span<std::uint32_t> order);

// Reference brute-force for tests: the maximum b such that
// sum_{i: values[i] >= b} weights[i] >= b (no auxiliary subset). The
// supremum is always attained either at some values[i] or at a suffix sum.
double UpdateValueBruteForce(std::span<const double> values,
                             std::span<const double> weights);

// Rounds x down to the next power of (1 + lambda) (Lambda-discretization
// of Algorithm 2). lambda == 0 or x in {0, +inf} returns x unchanged.
double RoundDownToPower(double x, double lambda);

}  // namespace kcore::core
