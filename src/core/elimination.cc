#include "core/elimination.h"

#include "util/logging.h"

namespace kcore::core {

using distsim::NodeContext;
using graph::NodeId;

SingleThresholdElimination::SingleThresholdElimination(NodeId n,
                                                       double threshold)
    : threshold_(threshold), state_(n, 1) {}

void SingleThresholdElimination::Init(NodeContext& ctx) {
  // Broadcast the initial "present" state (round 0 stage).
  ctx.Broadcast({1.0});
}

void SingleThresholdElimination::Round(NodeContext& ctx) {
  const NodeId v = ctx.id();
  if (!state_[v]) return;  // removed nodes no longer participate
  // Weighted degree among neighbors that were present last round.
  double deg = 0.0;
  const auto nbrs = ctx.neighbors();
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const distsim::Payload* p = ctx.NeighborBroadcast(i);
    if (p != nullptr && !p->empty() && (*p)[0] >= 0.5) deg += nbrs[i].w;
  }
  if (deg < threshold_) {
    state_[v] = 0;
    ctx.Halt();  // absence of a broadcast reads as sigma = 0
    return;
  }
  ctx.Broadcast({1.0});
}

EliminationRun RunSingleThreshold(const graph::Graph& g, double threshold,
                                  int rounds, int num_threads) {
  KCORE_CHECK_MSG(!g.has_self_loops(),
                  "distributed protocols run on self-loop-free graphs");
  distsim::Engine engine(g, num_threads);
  SingleThresholdElimination proto(g.num_nodes(), threshold);
  EliminationRun out;
  engine.Start(proto);
  const auto count_alive = [&proto] {
    std::size_t c = 0;
    for (char s : proto.states()) c += s ? 1 : 0;
    return c;
  };
  out.alive_per_round.push_back(count_alive());  // |A_0| = n
  for (int t = 0; t < rounds; ++t) {
    engine.Step(proto);
    out.alive_per_round.push_back(count_alive());
  }
  out.surviving = proto.states();
  out.totals = engine.totals();
  return out;
}

}  // namespace kcore::core
