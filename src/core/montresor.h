// Run-to-convergence baseline (Montresor, De Pellegrini, Miorandi 2013).
//
// The same compact elimination procedure, but iterated until a global
// fixpoint instead of a fixed T. At the fixpoint the surviving numbers
// equal the exact coreness values (beta^n(v) = c(v)); the price is a
// round complexity that can reach Omega(n) even on constant-diameter
// graphs — exactly the barrier the paper breaks. The experiment harness
// compares rounds-to-exact against rounds-to-2(1+eps).
#pragma once

#include <vector>

#include "core/compact.h"
#include "distsim/transport.h"
#include "graph/graph.h"

namespace kcore::core {

struct ConvergenceResult {
  // Fixpoint surviving numbers = exact (weighted) coreness.
  std::vector<double> coreness;
  // Rounds executed until quiescence was detected (includes the final
  // confirming round in which nothing changed).
  int rounds_executed = 0;
  // The last round in which some node's value actually changed.
  int last_change_round = 0;
  // Per-round engine stats (round 0 = Init's broadcasts), incl. the
  // transport's wire-volume counters.
  std::vector<distsim::RoundStats> history;
  distsim::Totals totals;
};

// Runs Algorithm 2 until no surviving number changes (at most max_rounds;
// default n + 2, which always suffices: at least one node fixes per
// elimination wave). `seed` feeds the engine's per-node RNG streams so
// randomized gossip variants layered on this baseline stay replayable;
// `balance_shards` enables the engine's degree-weighted shard balancing
// (bit-identical results, better thread utilization on skewed graphs);
// `transport` picks the simulator's message transport (bit-identical
// results for every transport — only the wire accounting differs);
// `ranks` sets the rank topology for multi-process transports (see
// distsim::Engine::SetRankCount — ignored by in-process transports);
// `per_rank_compute` runs the compute phase inside the transport's rank
// workers (distsim::Engine::SetPerRankCompute, process transport only —
// results stay bit-identical).
ConvergenceResult RunToConvergence(
    const graph::Graph& g, int max_rounds = -1, int num_threads = 1,
    std::uint64_t seed = distsim::kDefaultMasterSeed,
    bool balance_shards = false,
    distsim::TransportKind transport = distsim::TransportKind::kSharedMemory,
    int ranks = 1, bool per_rank_compute = false);

}  // namespace kcore::core
