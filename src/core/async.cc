#include "core/async.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "core/update.h"
#include "util/logging.h"

namespace kcore::core {
namespace {

using graph::NodeId;

struct Message {
  double time;
  NodeId to;
  std::uint32_t slot;  // index into `to`'s adjacency for the sender
  double value;
  std::uint64_t seq;   // FIFO tie-break for equal timestamps
  bool operator>(const Message& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

}  // namespace

AsyncResult RunAsyncCoreness(const graph::Graph& g, util::Rng& rng,
                             double max_delay, std::size_t message_budget) {
  KCORE_CHECK_MSG(!g.has_self_loops(), "simple graphs only");
  KCORE_CHECK(max_delay >= 1.0);
  const NodeId n = g.num_nodes();
  AsyncResult out;
  out.b.assign(n, std::numeric_limits<double>::infinity());

  // view[v][i]: last value received from neighbor #i of v.
  std::vector<std::vector<double>> view(n);
  std::vector<std::vector<std::uint32_t>> order(n);
  // For sending: the slot of v within each neighbor's adjacency.
  std::vector<std::vector<std::uint32_t>> peer_slot(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = g.Neighbors(v);
    view[v].assign(nbrs.size(), std::numeric_limits<double>::infinity());
    order[v].resize(nbrs.size());
    std::iota(order[v].begin(), order[v].end(), 0u);
    peer_slot[v].resize(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto peer = g.Neighbors(nbrs[i].to);
      // Find v in the neighbor's sorted adjacency.
      const auto it = std::lower_bound(
          peer.begin(), peer.end(), v,
          [](const graph::AdjEntry& a, NodeId x) { return a.to < x; });
      KCORE_CHECK(it != peer.end());
      peer_slot[v][i] = static_cast<std::uint32_t>(it - peer.begin());
    }
  }

  // Per-node delay streams, keyed forks of the caller's rng: the delays a
  // node attaches to its announcements depend only on (rng state, node id,
  // #announcements by that node), not on the global delivery interleaving
  // — the same per-entity stream discipline the synchronous engine uses.
  std::vector<util::Rng> delay_rng;
  delay_rng.reserve(n);
  for (NodeId v = 0; v < n; ++v) delay_rng.push_back(rng.ForkKeyed(v));

  std::priority_queue<Message, std::vector<Message>, std::greater<>> queue;
  std::uint64_t seq = 0;

  const auto recompute_and_send = [&](NodeId v, double now) {
    const auto nbrs = g.Neighbors(v);
    double nb = 0.0;
    if (!nbrs.empty()) {
      std::vector<double> weights(nbrs.size());
      for (std::size_t i = 0; i < nbrs.size(); ++i) weights[i] = nbrs[i].w;
      nb = core::UpdateStep(view[v], weights, order[v]).b;
    }
    if (nb >= out.b[v]) return;  // monotone descent only
    out.b[v] = nb;
    ++out.stats.value_changes;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      queue.push(Message{now + delay_rng[v].NextDouble(1.0, max_delay),
                         nbrs[i].to, peer_slot[v][i], nb, seq++});
    }
  };

  // Kick-off: everyone computes from the all-infinity view (yielding the
  // weighted degree) and announces it.
  for (NodeId v = 0; v < n; ++v) recompute_and_send(v, 0.0);

  while (!queue.empty()) {
    if (message_budget > 0 &&
        out.stats.messages_delivered >= message_budget) {
      break;  // failure injection: drop the rest of the traffic
    }
    out.stats.peak_in_flight =
        std::max(out.stats.peak_in_flight, queue.size());
    const Message m = queue.top();
    queue.pop();
    ++out.stats.messages_delivered;
    out.stats.virtual_makespan = m.time;
    // Stale-delivery guard: messages can arrive out of order; only a
    // strictly lower value is news (values descend monotonically).
    if (m.value >= view[m.to][m.slot]) continue;
    view[m.to][m.slot] = m.value;
    recompute_and_send(m.to, m.time);
  }
  return out;
}

}  // namespace kcore::core
