#include "core/compact.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/update.h"
#include "util/logging.h"
#include "util/wire.h"

namespace kcore::core {

using distsim::NodeContext;
using distsim::Payload;
using graph::NodeId;

int RoundsForGamma(NodeId n, double gamma) {
  KCORE_CHECK_MSG(gamma > 2.0, "gamma must exceed 2 (Lemma III.13)");
  if (n <= 1) return 1;
  return std::max(
      1, static_cast<int>(std::ceil(std::log(static_cast<double>(n)) /
                                    std::log(gamma / 2.0))));
}

int RoundsForEpsilon(NodeId n, double eps) {
  KCORE_CHECK_MSG(eps > 0.0, "eps must be positive");
  if (n <= 1) return 1;
  return std::max(
      1, static_cast<int>(std::ceil(std::log(static_cast<double>(n)) /
                                    std::log1p(eps))));
}

CompactElimination::CompactElimination(const graph::Graph& g,
                                       const CompactOptions& opts)
    : graph_(g), opts_(opts) {
  KCORE_CHECK_MSG(!g.has_self_loops(),
                  "distributed protocols run on self-loop-free graphs");
  if (opts_.track_orientation) {
    KCORE_CHECK_MSG(opts_.lambda == 0.0,
                    "orientation tracking requires Lambda = R (lambda == 0), "
                    "see Definition III.7");
  }
  const NodeId n = g.num_nodes();
  b_.assign(n, std::numeric_limits<double>::infinity());
  order_.resize(n);
  scratch_values_.resize(n);
  last_change_.assign(n, 0);
  if (opts_.track_orientation) in_sets_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto deg = g.Degree(v);
    order_[v].resize(deg);
    std::iota(order_[v].begin(), order_[v].end(), 0u);  // id order (sorted)
    scratch_values_[v].resize(deg);
    if (opts_.track_orientation) {
      // N_v starts as all neighbors (Algorithm 2, line 1).
      in_sets_[v].resize(deg);
      std::iota(in_sets_[v].begin(), in_sets_[v].end(), 0u);
    }
  }
}

void CompactElimination::Init(NodeContext& ctx) {
  // Line 1: b_v <- +inf, broadcast it (round-1 inputs).
  ctx.Broadcast({b_[ctx.id()]});
}

void CompactElimination::Round(NodeContext& ctx) {
  const NodeId v = ctx.id();
  const auto nbrs = ctx.neighbors();
  const std::size_t d = nbrs.size();

  if (d == 0) {
    // Isolated node: survives only threshold 0.
    if (b_[v] != 0.0) {
      b_[v] = 0.0;
      last_change_[v] = ctx.round();
    }
    ctx.Broadcast({0.0});
    return;
  }

  // Gather the neighbors' surviving numbers. In this protocol every node
  // broadcasts every round, so a missing broadcast is a bug.
  auto& values = scratch_values_[v];
  std::vector<double> weights(d);
  for (std::size_t i = 0; i < d; ++i) {
    const Payload* p = ctx.NeighborBroadcast(i);
    KCORE_CHECK_MSG(p != nullptr && !p->empty(),
                    "missing broadcast from neighbor of " << v);
    values[i] = (*p)[0];
    weights[i] = nbrs[i].w;
  }

  if (!opts_.stateful_tiebreak) {
    std::iota(order_[v].begin(), order_[v].end(), 0u);
  }
  UpdateResult res = UpdateStep(values, weights, order_[v]);
  double nb = res.b;
  if (opts_.lambda > 0.0) nb = RoundDownToPower(nb, opts_.lambda);
  if (nb != b_[v]) {
    b_[v] = nb;
    last_change_[v] = ctx.round();
  }
  if (opts_.track_orientation) {
    std::sort(res.chosen.begin(), res.chosen.end());
    in_sets_[v] = std::move(res.chosen);
  }
  ctx.Broadcast({b_[v]});
}

void CompactElimination::SaveNodeState(NodeId v,
                                       util::WireAppender& out) const {
  out.Double(b_[v]);
  out.Fixed64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(last_change_[v])));
  out.Varint(order_[v].size());
  for (std::uint32_t i : order_[v]) out.Fixed32(i);
  if (opts_.track_orientation) {
    out.Varint(in_sets_[v].size());
    for (std::uint32_t i : in_sets_[v]) out.Fixed32(i);
  }
}

void CompactElimination::LoadNodeState(NodeId v, util::WireReader& in) {
  b_[v] = in.Double();
  last_change_[v] = static_cast<int>(static_cast<std::int64_t>(in.Fixed64()));
  order_[v].resize(in.Varint());
  for (std::uint32_t& i : order_[v]) i = in.Fixed32();
  if (opts_.track_orientation) {
    in_sets_[v].resize(in.Varint());
    for (std::uint32_t& i : in_sets_[v]) i = in.Fixed32();
  }
  // scratch_values_[v] is sized in the constructor and content-free
  // between rounds — nothing to restore.
}

CompactResult RunCompactElimination(const graph::Graph& g,
                                    const CompactOptions& opts) {
  KCORE_CHECK_MSG(opts.rounds >= 1, "need at least one round");
  KCORE_CHECK_MSG(!(opts.record_rounds && opts.per_rank_compute),
                  "record_rounds reads b after every round, but per-rank "
                  "compute keeps b in the workers between rounds");
  distsim::Engine engine(g, opts.num_threads);
  engine.SetSeed(opts.seed);
  engine.SetShardBalancing(opts.balance_shards);
  engine.SetRebalanceInterval(opts.rebalance_rounds);
  engine.SetTransport(distsim::MakeTransport(opts.transport));
  engine.SetRankCount(opts.ranks);
  engine.SetPerRankCompute(opts.per_rank_compute);
  CompactElimination proto(g, opts);
  CompactResult out;
  engine.Start(proto);
  if (opts.record_rounds) out.b_rounds.push_back(proto.b());
  for (int t = 0; t < opts.rounds; ++t) {
    engine.Step(proto);
    if (opts.record_rounds) out.b_rounds.push_back(proto.b());
  }
  engine.FetchRankState(proto);  // no-op unless per-rank compute
  out.b = proto.b();
  out.in_sets = proto.in_sets();
  out.history = engine.history();
  out.totals = engine.totals();
  out.rounds = opts.rounds;
  return out;
}

}  // namespace kcore::core
