// Distributed min-max edge orientation (Theorem I.2 / Corollary III.12).
//
// Runs the augmented compact elimination (Algorithm 2 with Lambda = R and
// auxiliary sets N_v maintained by Algorithm 3) for T rounds, then one
// extra communication round resolves edges claimed by both endpoints. The
// invariants of Definition III.7 guarantee:
//   * feasibility — every edge is claimed by at least one endpoint;
//   * quality    — each node's claimed weight is at most b_v = beta^T(v)
//                  <= 2 n^{1/T} rho* (weak LP duality, Section II),
// so the final orientation is a 2 n^{1/T}-approximation.
#pragma once

#include <cstdint>

#include "core/compact.h"
#include "distsim/engine.h"
#include "graph/graph.h"
#include "seq/orientation_exact.h"

namespace kcore::core {

// How an edge claimed by both endpoints is resolved in the extra round.
enum class ConflictRule {
  // Keep it at the endpoint whose claimed load (before resolution) is
  // smaller; ties to the higher id. Both endpoints can evaluate this rule
  // consistently after exchanging their loads in the extra round.
  kLowerLoad,
  // Keep it at the higher-id endpoint.
  kHigherId,
};

struct DistOrientationResult {
  seq::Orientation orientation;
  // Surviving numbers after T rounds (the per-node load certificates).
  std::vector<double> b;
  // Edges that were claimed by both endpoints (resolved by `rule`).
  std::size_t conflicts = 0;
  // Edges claimed by neither endpoint. Lemma III.11 proves this is
  // impossible; the driver counts it anyway and tests assert zero.
  std::size_t uncovered = 0;
  int rounds = 0;  // T + 1 (the resolution round)
  distsim::Totals totals;
};

// Runs the full distributed orientation pipeline on g (self-loop free).
DistOrientationResult RunDistributedOrientation(
    const graph::Graph& g, int rounds,
    ConflictRule rule = ConflictRule::kLowerLoad, int num_threads = 1);

}  // namespace kcore::core
