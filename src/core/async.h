// Asynchronous execution of the compact elimination procedure.
//
// Gillet & Hanusse (SSS 2017, cited in Section I.B) study graph
// orientation in a fully asynchronous faulty model. This module provides
// the asynchronous counterpart of our synchronous engine for the coreness
// iteration: messages carry a node's latest surviving number and are
// delivered after an arbitrary (seeded-random, bounded) delay; a node
// that receives a value updates its view, recomputes its number with the
// Algorithm 3 update, and notifies its neighbors iff the number changed.
//
// Because the per-node update is a monotone function of the neighbor
// view and every value starts at +inf, this is a chaotic iteration of a
// monotone map from the top element: it converges to the GREATEST
// fixpoint — the exact weighted coreness — regardless of the delivery
// order (tested against the synchronous run and the centralized
// peeling). The point of the experiment: asynchrony costs messages, not
// correctness.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace kcore::core {

struct AsyncStats {
  std::size_t messages_delivered = 0;
  // Number of times some node's value changed.
  std::size_t value_changes = 0;
  // Virtual time of the last delivery (message delays are in [1, max_delay]).
  double virtual_makespan = 0.0;
  // Peak size of the in-flight message set.
  std::size_t peak_in_flight = 0;
};

struct AsyncResult {
  // The fixpoint values (= exact weighted coreness).
  std::vector<double> b;
  AsyncStats stats;
};

// Runs the asynchronous iteration to quiescence. max_delay >= 1 scales
// the adversarial jitter; rng seeds per-node delay streams (ForkKeyed), so
// runs are deterministic per seed and each node's delay sequence is
// independent of the global delivery order.
// message_budget caps deliveries (0 = unlimited) as a failure injection
// hook: when hit, the partially-converged values are returned.
AsyncResult RunAsyncCoreness(const graph::Graph& g, util::Rng& rng,
                             double max_delay = 8.0,
                             std::size_t message_budget = 0);

}  // namespace kcore::core
