#include "core/montresor.h"

#include <algorithm>

namespace kcore::core {

ConvergenceResult RunToConvergence(const graph::Graph& g, int max_rounds,
                                   int num_threads, std::uint64_t seed,
                                   bool balance_shards,
                                   distsim::TransportKind transport,
                                   int ranks, bool per_rank_compute) {
  if (max_rounds < 0) {
    max_rounds = static_cast<int>(g.num_nodes()) + 2;
  }
  CompactOptions opts;
  opts.rounds = max_rounds;  // upper bound; engine stops at quiescence
  opts.num_threads = num_threads;
  opts.seed = seed;
  opts.transport = transport;
  CompactElimination proto(g, opts);
  distsim::Engine engine(g, num_threads);
  engine.SetSeed(seed);
  engine.SetShardBalancing(balance_shards);
  engine.SetTransport(distsim::MakeTransport(transport));
  engine.SetRankCount(ranks);
  engine.SetPerRankCompute(per_rank_compute);
  ConvergenceResult out;
  out.rounds_executed = engine.RunUntilQuiescent(proto, max_rounds);
  engine.FetchRankState(proto);  // no-op unless per-rank compute
  out.coreness = proto.b();
  out.history = engine.history();
  out.totals = engine.totals();
  out.last_change_round = 0;
  for (int r : proto.last_change_round()) {
    out.last_change_round = std::max(out.last_change_round, r);
  }
  return out;
}

}  // namespace kcore::core
