#include "core/sarma.h"

#include "core/compact.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace kcore::core {
namespace {

using distsim::InMessage;
using distsim::NodeContext;
using distsim::Payload;
using graph::Graph;
using graph::NodeId;

void AddTotals(distsim::Totals& acc, const distsim::Totals& t) {
  acc.rounds += t.rounds;
  acc.messages += t.messages;
  acc.entries += t.entries;
  acc.max_entries_per_message =
      std::max(acc.max_entries_per_message, t.max_entries_per_message);
}

// Phase 0a: BFS tree rooted at the maximum-id node of each component
// (the global protocol then only uses the tree whose root id equals the
// component's max id; all components run in parallel, as real hardware
// would). Broadcast (root_id, dist); adopt a larger root or a shorter
// path to the same root.
class BfsTree : public distsim::Protocol {
 public:
  explicit BfsTree(NodeId n)
      : root_(n), dist_(n, 0), parent_(n) {
    for (NodeId v = 0; v < n; ++v) {
      root_[v] = v;
      parent_[v] = v;
    }
  }

  void Init(NodeContext& ctx) override { Announce(ctx); }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    const auto nbrs = ctx.neighbors();
    bool changed = false;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Payload* p = ctx.NeighborBroadcast(i);
      if (p == nullptr || p->size() < 2) continue;
      const NodeId r = static_cast<NodeId>((*p)[0]);
      const auto d = static_cast<std::uint32_t>((*p)[1]) + 1;
      if (r > root_[v] || (r == root_[v] && d < dist_[v])) {
        root_[v] = r;
        dist_[v] = d;
        parent_[v] = nbrs[i].to;
        changed = true;
      }
    }
    (void)changed;
    Announce(ctx);
  }

  const std::vector<NodeId>& root() const { return root_; }
  const std::vector<std::uint32_t>& dist() const { return dist_; }
  const std::vector<NodeId>& parent() const { return parent_; }

 private:
  void Announce(NodeContext& ctx) {
    const NodeId v = ctx.id();
    ctx.Broadcast({static_cast<double>(root_[v]),
                   static_cast<double>(dist_[v])});
  }

  std::vector<NodeId> root_;
  std::vector<std::uint32_t> dist_;
  std::vector<NodeId> parent_;
};

// One round: every still-alive node broadcasts; alive nodes record their
// weighted degree among alive neighbors.
class AliveDegree : public distsim::Protocol {
 public:
  AliveDegree(const std::vector<char>& alive, std::vector<double>* deg)
      : alive_(alive), deg_(deg) {}

  void Init(NodeContext& ctx) override {
    if (alive_[ctx.id()]) ctx.Broadcast({1.0});
  }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    if (!alive_[v]) return;
    double d = 0.0;
    const auto nbrs = ctx.neighbors();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Payload* p = ctx.NeighborBroadcast(i);
      if (p != nullptr && !p->empty() && (*p)[0] >= 0.5) d += nbrs[i].w;
    }
    (*deg_)[v] = d;
  }

 private:
  const std::vector<char>& alive_;
  std::vector<double>* deg_;
};

// Convergecast of (count, weighted-degree-sum) over the tree.
class Convergecast : public distsim::Protocol {
 public:
  Convergecast(const std::vector<NodeId>& parent,
               const std::vector<std::vector<NodeId>>& children,
               std::vector<double> count, std::vector<double> degsum)
      : parent_(parent),
        children_(children),
        count_(std::move(count)),
        degsum_(std::move(degsum)),
        pending_(parent_.size()),
        sent_(parent_.size(), 0) {
    for (NodeId v = 0; v < parent_.size(); ++v) {
      pending_[v] = children_[v].size();
    }
  }

  void Init(NodeContext& ctx) override { MaybeSend(ctx); }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    for (const InMessage& m : ctx.Messages()) {
      KCORE_CHECK(m.payload.size() == 2);
      count_[v] += m.payload[0];
      degsum_[v] += m.payload[1];
      KCORE_CHECK(pending_[v] > 0);
      --pending_[v];
    }
    MaybeSend(ctx);
  }

  // Valid at the root after the run.
  double count_at(NodeId v) const { return count_[v]; }
  double degsum_at(NodeId v) const { return degsum_[v]; }

 private:
  void MaybeSend(NodeContext& ctx) {
    const NodeId v = ctx.id();
    if (sent_[v] || pending_[v] > 0) return;
    if (parent_[v] != v) {
      ctx.Send(parent_[v], {count_[v], degsum_[v]});
    }
    sent_[v] = 1;
    if (parent_[v] == v) ctx.Halt();
  }

  const std::vector<NodeId>& parent_;
  const std::vector<std::vector<NodeId>>& children_;
  std::vector<double> count_;
  std::vector<double> degsum_;
  std::vector<std::size_t> pending_;
  std::vector<char> sent_;
};

// Flood a single value from each root down its tree.
class Flood : public distsim::Protocol {
 public:
  Flood(const std::vector<NodeId>& parent,
        const std::vector<std::vector<NodeId>>& children,
        std::vector<double> value, const std::vector<char>& is_root)
      : parent_(parent),
        children_(children),
        value_(std::move(value)),
        is_root_(is_root) {}

  void Init(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    if (is_root_[v]) {
      for (NodeId c : children_[v]) ctx.Send(c, {value_[v]});
      ctx.Halt();
    }
  }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    for (const InMessage& m : ctx.Messages()) {
      value_[v] = m.payload[0];
      for (NodeId c : children_[v]) ctx.Send(c, {value_[v]});
      ctx.Halt();
      return;
    }
  }

  double value_at(NodeId v) const { return value_[v]; }
  const std::vector<double>& values() const { return value_; }

 private:
  const std::vector<NodeId>& parent_;
  const std::vector<std::vector<NodeId>>& children_;
  std::vector<double> value_;
  const std::vector<char>& is_root_;
};

}  // namespace

SarmaResult RunSarmaDensest(const Graph& g, double eps, int num_threads) {
  KCORE_CHECK_MSG(eps > 0.0, "eps must be positive");
  KCORE_CHECK_MSG(!g.has_self_loops(), "self-loop free graphs only");
  const NodeId n = g.num_nodes();
  SarmaResult out;
  out.in_set.assign(n, 0);
  if (n == 0) return out;

  // Phase 0: BFS trees (one per component, rooted at the max id).
  BfsTree bfs(n);
  {
    distsim::Engine engine(g, num_threads);
    out.rounds_bfs =
        engine.RunUntilQuiescent(bfs, static_cast<int>(n) + 2);
    AddTotals(out.totals, engine.totals());
  }
  std::vector<std::vector<NodeId>> children(n);
  std::vector<char> is_root(n, 0);
  std::uint32_t depth = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (bfs.parent()[v] == v) {
      is_root[v] = 1;
    } else {
      children[bfs.parent()[v]].push_back(v);
    }
    depth = std::max(depth, bfs.dist()[v]);
  }
  out.tree_depth = static_cast<int>(depth);

  // Elimination passes. Every node remembers the pass at which it dropped
  // (-1 = never). rho of pass i is measured at its start.
  std::vector<char> alive(n, 1);
  std::vector<int> drop_pass(n, -1);
  std::vector<double> best_rho(n, 0.0);  // per root
  std::vector<int> best_pass(n, -1);
  const int max_passes =
      2 + RoundsForEpsilon(n, eps);  // ceil(log_{1+eps} n) + slack
  int pass = 0;
  std::vector<double> deg(n, 0.0);
  for (; pass < max_passes; ++pass) {
    // (a) alive broadcast + degree measurement: 1 round.
    AliveDegree ad(alive, &deg);
    {
      distsim::Engine engine(g, num_threads);
      engine.Run(ad, 1);
      AddTotals(out.totals, engine.totals());
    }
    // (b) convergecast (|S|, sum deg) -> root: ~depth rounds.
    std::vector<double> cnt(n, 0.0);
    std::vector<double> ds(n, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      cnt[v] = alive[v] ? 1.0 : 0.0;
      ds[v] = alive[v] ? deg[v] : 0.0;
    }
    Convergecast up(bfs.parent(), children, std::move(cnt), std::move(ds));
    {
      distsim::Engine engine(g, num_threads);
      const int r = engine.RunUntilQuiescent(
          up, static_cast<int>(depth) + 2);
      out.totals.rounds += 0;  // rounds tallied via engine totals
      (void)r;
      AddTotals(out.totals, engine.totals());
    }
    // Roots decide: rho(S) = (sum deg / 2) / |S|; remember the best pass;
    // empty set ends the loop (signalled by threshold = +inf).
    bool any_alive = false;
    std::vector<double> threshold(n,
                                  std::numeric_limits<double>::infinity());
    for (NodeId v = 0; v < n; ++v) {
      if (!is_root[v]) continue;
      const double count = up.count_at(v);
      if (count < 0.5) continue;
      any_alive = true;
      const double rho = (up.degsum_at(v) / 2.0) / count;
      if (rho > best_rho[v]) {
        best_rho[v] = rho;
        best_pass[v] = pass;
      }
      threshold[v] = 2.0 * (1.0 + eps) * rho;
    }
    if (!any_alive) break;
    // (c) flood the threshold down: ~depth rounds.
    Flood down(bfs.parent(), children, std::move(threshold), is_root);
    {
      distsim::Engine engine(g, num_threads);
      engine.RunUntilQuiescent(down, static_cast<int>(depth) + 2);
      AddTotals(out.totals, engine.totals());
    }
    // (d) drop: local, no communication.
    for (NodeId v = 0; v < n; ++v) {
      if (alive[v] && deg[v] < down.value_at(v)) {
        alive[v] = 0;
        drop_pass[v] = pass;
      }
    }
  }
  out.passes = pass;

  // Final flood: best pass index per tree; membership = survived past it.
  std::vector<double> best(n, -1.0);
  for (NodeId v = 0; v < n; ++v) {
    if (is_root[v]) best[v] = static_cast<double>(best_pass[v]);
  }
  Flood announce(bfs.parent(), children, std::move(best), is_root);
  {
    distsim::Engine engine(g, num_threads);
    engine.RunUntilQuiescent(announce, static_cast<int>(depth) + 2);
    AddTotals(out.totals, engine.totals());
  }
  for (NodeId v = 0; v < n; ++v) {
    const double bp = announce.value_at(v);
    if (bp < -0.5) continue;
    const int p = static_cast<int>(bp);
    // v was in S_p iff it had not dropped before pass p.
    if (drop_pass[v] < 0 || drop_pass[v] >= p) out.in_set[v] = 1;
  }
  out.density = g.InducedDensity(out.in_set);
  out.rounds_total = out.totals.rounds;
  return out;
}

}  // namespace kcore::core
