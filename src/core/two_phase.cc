#include "core/two_phase.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/wire.h"

namespace kcore::core {
namespace {

using distsim::NodeContext;
using distsim::Payload;
using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

// Phase 2: synchronous peeling. Nodes broadcast "still active"; an active
// node whose active incident weight falls to at most its threshold peels.
class PeelingProtocol : public distsim::Protocol {
 public:
  PeelingProtocol(const Graph& g, std::vector<double> thresholds)
      : thresholds_(std::move(thresholds)),
        peel_round_(g.num_nodes(), -1) {}

  void Init(NodeContext& ctx) override { ctx.Broadcast({1.0}); }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    if (peel_round_[v] >= 0) return;  // already peeled
    double active_deg = 0.0;
    const auto nbrs = ctx.neighbors();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Payload* p = ctx.NeighborBroadcast(i);
      if (p != nullptr && !p->empty() && (*p)[0] >= 0.5) active_deg += nbrs[i].w;
    }
    if (active_deg <= thresholds_[v]) {
      peel_round_[v] = ctx.round();
      ctx.Halt();
      return;
    }
    ctx.Broadcast({1.0});
  }

  // Round in which v peeled (-1 = never).
  const std::vector<int>& peel_round() const { return peel_round_; }

  // Per-rank compute support. The threshold is immutable after
  // construction (the workers inherit it through the fork), but it rides
  // along anyway so the state blocks are self-contained.
  bool SupportsRankCompute() const override { return true; }
  void SaveNodeState(NodeId v, util::WireAppender& out) const override {
    out.Double(thresholds_[v]);
    out.Fixed64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(peel_round_[v])));
  }
  void LoadNodeState(NodeId v, util::WireReader& in) override {
    thresholds_[v] = in.Double();
    peel_round_[v] =
        static_cast<int>(static_cast<std::int64_t>(in.Fixed64()));
  }

 private:
  std::vector<double> thresholds_;
  std::vector<int> peel_round_;
};

}  // namespace

TwoPhaseResult RunTwoPhaseOrientation(const Graph& g, int phase1_rounds,
                                      double eps, int max_phase2_rounds,
                                      int num_threads, std::uint64_t seed,
                                      bool balance_shards,
                                      distsim::TransportKind transport,
                                      int ranks, bool per_rank_compute) {
  KCORE_CHECK_MSG(eps > 0.0, "eps must be positive");
  CompactOptions copts;
  copts.rounds = phase1_rounds;
  copts.num_threads = num_threads;
  copts.seed = seed;
  copts.balance_shards = balance_shards;
  copts.transport = transport;
  copts.ranks = ranks;
  copts.per_rank_compute = per_rank_compute;
  CompactResult compact = RunCompactElimination(g, copts);

  TwoPhaseResult out;
  out.b = compact.b;
  out.phase1_rounds = phase1_rounds;
  out.phase1_history = std::move(compact.history);
  out.totals = compact.totals;

  if (max_phase2_rounds < 0) {
    const double base = std::log1p(eps / 2.0);
    max_phase2_rounds =
        8 + 4 * std::max(1, static_cast<int>(std::ceil(
                                 std::log(std::max<double>(
                                     2.0, g.num_nodes())) /
                                 base)));
  }

  // Peeling thresholds: (1 + eps/2) * b_v = (2 + eps) * (b_v / 2), i.e.
  // the BE threshold with the local density estimate b_v / 2 >= r(v)/2.
  std::vector<double> thresholds(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    thresholds[v] = (1.0 + eps / 2.0) * compact.b[v];
  }
  PeelingProtocol peel(g, std::move(thresholds));
  distsim::Engine engine(g, num_threads);
  engine.SetSeed(seed);
  engine.SetShardBalancing(balance_shards);
  engine.SetTransport(distsim::MakeTransport(transport));
  engine.SetRankCount(ranks);
  engine.SetPerRankCompute(per_rank_compute);
  engine.Start(peel);
  int rounds = 0;
  while (rounds < max_phase2_rounds) {
    engine.Step(peel);
    ++rounds;
    if (engine.num_halted() == g.num_nodes()) break;
  }
  engine.FetchRankState(peel);  // no-op unless per-rank compute
  out.phase2_rounds = rounds;
  out.phase2_history = engine.history();
  {
    const distsim::Totals t = engine.totals();
    out.totals.rounds += t.rounds;
    out.totals.messages += t.messages;
    out.totals.entries += t.entries;
    out.totals.bytes_sent += t.bytes_sent;
    out.totals.bytes_received += t.bytes_received;
    out.totals.bcast_bytes_sent += t.bcast_bytes_sent;
    out.totals.bcast_bytes_received += t.bcast_bytes_received;
    out.totals.bcast_bytes_per_neighbor += t.bcast_bytes_per_neighbor;
  }

  // Edge assignment from peel rounds: first peeler takes the edge; same
  // round -> smaller id; nobody peeled -> larger b (tie smaller id).
  const auto& pr = peel.peel_round();
  std::vector<NodeId> owner(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const int ru = pr[edge.u] < 0 ? std::numeric_limits<int>::max()
                                  : pr[edge.u];
    const int rv = pr[edge.v] < 0 ? std::numeric_limits<int>::max()
                                  : pr[edge.v];
    if (ru < rv) {
      owner[e] = edge.u;
    } else if (rv < ru) {
      owner[e] = edge.v;
    } else if (ru != std::numeric_limits<int>::max()) {
      owner[e] = std::min(edge.u, edge.v);
    } else {
      ++out.forced_edges;
      if (compact.b[edge.u] != compact.b[edge.v]) {
        owner[e] = compact.b[edge.u] > compact.b[edge.v] ? edge.u : edge.v;
      } else {
        owner[e] = std::min(edge.u, edge.v);
      }
    }
  }
  out.orientation = seq::MakeOrientation(g, std::move(owner));
  return out;
}

}  // namespace kcore::core
