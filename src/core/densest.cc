#include "core/densest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/logging.h"
#include "util/wire.h"

namespace kcore::core {
namespace {

using distsim::InMessage;
using distsim::NodeContext;
using distsim::Payload;
using graph::Graph;
using graph::NodeId;

// Global ordering on leader tuples (b, id): larger b wins, then larger id
// (any total order known to all nodes works; Fact IV.2).
bool TupleLess(double b1, NodeId id1, double b2, NodeId id2) {
  if (b1 != b2) return b1 < b2;
  return id1 < id2;
}

// ---------------------------------------------------------------------
// Phase 2: Algorithm 4 (BFS forest).
// Rounds 1..T: leader propagation. Round T+1: parent requests.
// Round T+2: children registration + acks. Round T+3: orphan detection.
class BfsForestProtocol : public distsim::Protocol {
 public:
  BfsForestProtocol(const Graph& g, std::vector<double> b, int T)
      : T_(T),
        leader_b_(std::move(b)),
        leader_id_(g.num_nodes()),
        parent_(g.num_nodes()),
        acked_(g.num_nodes(), 0),
        children_(g.num_nodes()) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      leader_id_[v] = v;
      parent_[v] = v;
    }
  }

  void Init(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    ctx.Broadcast({leader_b_[v], static_cast<double>(leader_id_[v])});
  }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    const int t = ctx.round();
    if (t <= T_) {
      // Propagation: adopt the largest neighbor leader if it beats ours.
      const auto nbrs = ctx.neighbors();
      double best_b = leader_b_[v];
      NodeId best_id = leader_id_[v];
      NodeId via = graph::kInvalidNode;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const Payload* p = ctx.NeighborBroadcast(i);
        if (p == nullptr || p->size() < 2) continue;
        const double nb = (*p)[0];
        const NodeId nid = static_cast<NodeId>((*p)[1]);
        if (TupleLess(best_b, best_id, nb, nid)) {
          best_b = nb;
          best_id = nid;
          via = nbrs[i].to;  // first (smallest-id) provider wins ties
        }
      }
      if (via != graph::kInvalidNode) {
        leader_b_[v] = best_b;
        leader_id_[v] = best_id;
        parent_[v] = via;
      }
      ctx.Broadcast({leader_b_[v], static_cast<double>(leader_id_[v])});
      return;
    }
    if (t == T_ + 1) {
      // Request Parent: tell the parent which leader we follow.
      if (parent_[v] != v) {
        ctx.Send(parent_[v], {static_cast<double>(leader_id_[v])});
      }
      return;
    }
    if (t == T_ + 2) {
      // Include Children + acks.
      for (const InMessage& m : ctx.Messages()) {
        if (!m.payload.empty() &&
            static_cast<NodeId>(m.payload[0]) == leader_id_[v]) {
          children_[v].push_back(m.from);
          ctx.Send(m.from, {1.0});
        }
      }
      return;
    }
    if (t == T_ + 3) {
      // Confirm Parent.
      for (const InMessage& m : ctx.Messages()) {
        (void)m;
        acked_[v] = 1;
      }
      if (parent_[v] != v && !acked_[v]) {
        parent_[v] = graph::kInvalidNode;  // orphaned
      }
      ctx.Halt();
      return;
    }
  }

  // Per-rank compute: a node's state is its adopted leader tuple, its
  // parent pointer, its ack flag, and its children list.
  bool SupportsRankCompute() const override { return true; }
  void SaveNodeState(NodeId v, util::WireAppender& out) const override {
    out.Double(leader_b_[v]);
    out.Fixed32(leader_id_[v]);
    out.Fixed32(parent_[v]);
    out.Varint(static_cast<std::uint64_t>(acked_[v]));
    out.Varint(children_[v].size());
    for (NodeId c : children_[v]) out.Fixed32(c);
  }
  void LoadNodeState(NodeId v, util::WireReader& in) override {
    leader_b_[v] = in.Double();
    leader_id_[v] = in.Fixed32();
    parent_[v] = in.Fixed32();
    acked_[v] = static_cast<char>(in.Varint());
    children_[v].resize(in.Varint());
    for (NodeId& c : children_[v]) c = in.Fixed32();
  }

  const std::vector<double>& leader_b() const { return leader_b_; }
  const std::vector<NodeId>& leader_id() const { return leader_id_; }
  const std::vector<NodeId>& parent() const { return parent_; }
  const std::vector<std::vector<NodeId>>& children() const {
    return children_;
  }

 private:
  int T_;
  std::vector<double> leader_b_;
  std::vector<NodeId> leader_id_;
  std::vector<NodeId> parent_;
  std::vector<char> acked_;
  std::vector<std::vector<NodeId>> children_;
};

// ---------------------------------------------------------------------
// Phase 3: Algorithm 5 (elimination within each leader group).
// Active nodes broadcast their leader id; degree counts only same-leader
// active neighbors; threshold is the leader's b.
class TreeEliminationProtocol : public distsim::Protocol {
 public:
  TreeEliminationProtocol(const Graph& g, const std::vector<double>& leader_b,
                          const std::vector<NodeId>& leader_id,
                          const std::vector<char>& participates, int T)
      : T_(T),
        leader_b_(leader_b),
        leader_id_(leader_id),
        active_(participates),
        num_(g.num_nodes(), std::vector<char>(T, 0)),
        deg_(g.num_nodes(), std::vector<double>(T, 0.0)) {}

  void Init(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    if (!active_[v]) {
      ctx.Halt();
      return;
    }
    ctx.Broadcast({static_cast<double>(leader_id_[v])});
  }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    const int t = ctx.round();
    if (!active_[v] || t > T_) return;
    double deg = 0.0;
    const auto nbrs = ctx.neighbors();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Payload* p = ctx.NeighborBroadcast(i);
      if (p != nullptr && !p->empty() &&
          static_cast<NodeId>((*p)[0]) == leader_id_[v]) {
        deg += nbrs[i].w;
      }
    }
    num_[v][t - 1] = 1;
    deg_[v][t - 1] = deg;
    if (deg < leader_b_[v]) {
      active_[v] = 0;
      ctx.Halt();
      return;
    }
    ctx.Broadcast({static_cast<double>(leader_id_[v])});
  }

  // Per-rank compute: a node's state is its activity flag and its
  // per-round survival/degree records; the leader tables are
  // constructor-provided read-only context.
  bool SupportsRankCompute() const override { return true; }
  void SaveNodeState(NodeId v, util::WireAppender& out) const override {
    out.Varint(static_cast<std::uint64_t>(active_[v]));
    out.Varint(num_[v].size());
    for (int t = 0; t < T_; ++t) {
      out.Varint(static_cast<std::uint64_t>(num_[v][t]));
      out.Double(deg_[v][t]);
    }
  }
  void LoadNodeState(NodeId v, util::WireReader& in) override {
    active_[v] = static_cast<char>(in.Varint());
    const std::size_t T = in.Varint();
    num_[v].resize(T);
    deg_[v].resize(T);
    for (std::size_t t = 0; t < T; ++t) {
      num_[v][t] = static_cast<char>(in.Varint());
      deg_[v][t] = in.Double();
    }
  }

  const std::vector<std::vector<char>>& num() const { return num_; }
  const std::vector<std::vector<double>>& deg() const { return deg_; }

 private:
  int T_;
  const std::vector<double>& leader_b_;
  const std::vector<NodeId>& leader_id_;
  std::vector<char> active_;
  std::vector<std::vector<char>> num_;
  std::vector<std::vector<double>> deg_;
};

// ---------------------------------------------------------------------
// Phase 4: Algorithm 6 (aggregation + selection).
// UP payload:   {0, num'[0..T-1], deg'[0..T-1]}
// DOWN payload: {1, t*}
class AggregationProtocol : public distsim::Protocol {
 public:
  AggregationProtocol(const Graph& g, const std::vector<double>& leader_b,
                      const std::vector<NodeId>& parent,
                      const std::vector<std::vector<NodeId>>& children,
                      const std::vector<std::vector<char>>& num,
                      const std::vector<std::vector<double>>& deg, int T,
                      double gamma)
      : T_(T),
        gamma_(gamma),
        leader_b_(leader_b),
        parent_(parent),
        children_(children),
        agg_num_(g.num_nodes(), std::vector<double>(T, 0.0)),
        agg_deg_(g.num_nodes(), std::vector<double>(T, 0.0)),
        pending_(g.num_nodes(), 0),
        sent_up_(g.num_nodes(), 0),
        selected_(g.num_nodes(), 0),
        own_num_(num) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      pending_[v] = children_[v].size();
      for (int t = 0; t < T; ++t) {
        agg_num_[v][t] = num[v][t] ? 1.0 : 0.0;
        agg_deg_[v][t] = deg[v][t];
      }
    }
  }

  void Init(NodeContext& ctx) override { MaybeSendUp(ctx); }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    for (const InMessage& m : ctx.Messages()) {
      if (m.payload.empty()) continue;
      if (m.payload[0] == 0.0) {
        // UP: accumulate a child's aggregated arrays.
        KCORE_CHECK(m.payload.size() ==
                    1 + 2 * static_cast<std::size_t>(T_));
        for (int t = 0; t < T_; ++t) {
          agg_num_[v][t] += m.payload[1 + static_cast<std::size_t>(t)];
          agg_deg_[v][t] +=
              m.payload[1 + static_cast<std::size_t>(T_ + t)];
        }
        KCORE_CHECK(pending_[v] > 0);
        --pending_[v];
      } else {
        // DOWN: t* from the parent.
        const int t_star = static_cast<int>(m.payload[1]);
        SelectAndForward(ctx, t_star);
        return;
      }
    }
    MaybeSendUp(ctx);
  }

  // Per-rank compute: a node's state is its aggregation accumulators and
  // the convergecast progress flags; the forest pointers and own-survival
  // arrays are constructor-provided read-only context.
  bool SupportsRankCompute() const override { return true; }
  void SaveNodeState(NodeId v, util::WireAppender& out) const override {
    out.Varint(pending_[v]);
    out.Varint(static_cast<std::uint64_t>(sent_up_[v]));
    out.Varint(static_cast<std::uint64_t>(selected_[v]));
    out.Varint(agg_num_[v].size());
    for (int t = 0; t < T_; ++t) {
      out.Double(agg_num_[v][t]);
      out.Double(agg_deg_[v][t]);
    }
  }
  void LoadNodeState(NodeId v, util::WireReader& in) override {
    pending_[v] = in.Varint();
    sent_up_[v] = static_cast<char>(in.Varint());
    selected_[v] = static_cast<char>(in.Varint());
    const std::size_t T = in.Varint();
    agg_num_[v].resize(T);
    agg_deg_[v].resize(T);
    for (std::size_t t = 0; t < T; ++t) {
      agg_num_[v][t] = in.Double();
      agg_deg_[v][t] = in.Double();
    }
  }

  const std::vector<char>& selected() const { return selected_; }

 private:
  void MaybeSendUp(NodeContext& ctx) {
    const NodeId v = ctx.id();
    if (sent_up_[v] || pending_[v] > 0) return;
    if (parent_[v] == v) {
      // Root: all children reported (or no children). Decide.
      sent_up_[v] = 1;
      double bmax = -1.0;
      int t_star = -1;
      for (int t = 0; t < T_; ++t) {
        if (agg_num_[v][t] >= 1.0) {
          const double rho = agg_deg_[v][t] / (2.0 * agg_num_[v][t]);
          if (rho > bmax) {
            bmax = rho;
            t_star = t;
          }
        }
      }
      // Acceptance test (see header): Lemma IV.4 guarantees the top root
      // passes bmax >= b_v / gamma.
      const double tol = 1e-9 * std::max(1.0, leader_b_[v]);
      if (t_star >= 0 && bmax + tol >= leader_b_[v] / gamma_) {
        SelectAndForward(ctx, t_star);
      } else {
        ctx.Halt();
      }
      return;
    }
    if (parent_[v] == graph::kInvalidNode) {
      // Orphan: never forwards; its fragment returns nothing.
      sent_up_[v] = 1;
      ctx.Halt();
      return;
    }
    // Send aggregated arrays to the parent.
    Payload p;
    p.reserve(1 + 2 * static_cast<std::size_t>(T_));
    p.push_back(0.0);
    for (int t = 0; t < T_; ++t) p.push_back(agg_num_[v][t]);
    for (int t = 0; t < T_; ++t) p.push_back(agg_deg_[v][t]);
    ctx.Send(parent_[v], std::move(p));
    sent_up_[v] = 1;
  }

  void SelectAndForward(NodeContext& ctx, int t_star) {
    const NodeId v = ctx.id();
    if (t_star >= 0 && t_star < T_ && own_num_[v][t_star]) {
      selected_[v] = 1;
    }
    for (NodeId c : children_[v]) {
      ctx.Send(c, {1.0, static_cast<double>(t_star)});
    }
    ctx.Halt();
  }

  int T_;
  double gamma_;
  const std::vector<double>& leader_b_;
  const std::vector<NodeId>& parent_;
  const std::vector<std::vector<NodeId>>& children_;
  std::vector<std::vector<double>> agg_num_;
  std::vector<std::vector<double>> agg_deg_;
  std::vector<std::size_t> pending_;
  std::vector<char> sent_up_;
  std::vector<char> selected_;
  const std::vector<std::vector<char>>& own_num_;
};

// ---------------------------------------------------------------------
// Phase 4, pipelined variant (Algorithm 6 "Optimizing Message Size"):
// one (t, num'[t], deg'[t]) entry per message per round — O(1)-word
// CONGEST messages at the price of ~T extra rounds. Selection is
// bit-identical to the batch variant (tested).
// UP payload:   {0, t, num'[t], deg'[t]}
// DOWN payload: {1, t*}
class PipelinedAggregationProtocol : public distsim::Protocol {
 public:
  PipelinedAggregationProtocol(
      const Graph& g, const std::vector<double>& leader_b,
      const std::vector<NodeId>& parent,
      const std::vector<std::vector<NodeId>>& children,
      const std::vector<std::vector<char>>& num,
      const std::vector<std::vector<double>>& deg, int T, double gamma)
      : T_(T),
        gamma_(gamma),
        leader_b_(leader_b),
        parent_(parent),
        children_(children),
        agg_num_(g.num_nodes(), std::vector<double>(T, 0.0)),
        agg_deg_(g.num_nodes(), std::vector<double>(T, 0.0)),
        got_(g.num_nodes(), std::vector<std::size_t>(T, 0)),
        next_send_(g.num_nodes(), 0),
        decided_(g.num_nodes(), 0),
        selected_(g.num_nodes(), 0),
        own_num_(num) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (int t = 0; t < T; ++t) {
        agg_num_[v][t] = num[v][t] ? 1.0 : 0.0;
        agg_deg_[v][t] = deg[v][t];
      }
    }
  }

  void Init(NodeContext& ctx) override { Progress(ctx); }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    for (const InMessage& m : ctx.Messages()) {
      if (m.payload.empty()) continue;
      if (m.payload[0] == 0.0) {
        KCORE_CHECK(m.payload.size() == 4);
        const int t = static_cast<int>(m.payload[1]);
        KCORE_CHECK(t >= 0 && t < T_);
        agg_num_[v][t] += m.payload[2];
        agg_deg_[v][t] += m.payload[3];
        ++got_[v][t];
      } else {
        SelectAndForward(ctx, static_cast<int>(m.payload[1]));
        return;
      }
    }
    Progress(ctx);
  }

  // Per-rank compute: the batch variant's state plus the pipeline
  // cursors (per-entry completion counts and the next entry to stream).
  bool SupportsRankCompute() const override { return true; }
  void SaveNodeState(NodeId v, util::WireAppender& out) const override {
    out.Varint(static_cast<std::uint64_t>(decided_[v]));
    out.Varint(static_cast<std::uint64_t>(selected_[v]));
    out.Fixed64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(next_send_[v])));
    out.Varint(agg_num_[v].size());
    for (int t = 0; t < T_; ++t) {
      out.Double(agg_num_[v][t]);
      out.Double(agg_deg_[v][t]);
      out.Varint(got_[v][t]);
    }
  }
  void LoadNodeState(NodeId v, util::WireReader& in) override {
    decided_[v] = static_cast<char>(in.Varint());
    selected_[v] = static_cast<char>(in.Varint());
    next_send_[v] =
        static_cast<int>(static_cast<std::int64_t>(in.Fixed64()));
    const std::size_t T = in.Varint();
    agg_num_[v].resize(T);
    agg_deg_[v].resize(T);
    got_[v].resize(T);
    for (std::size_t t = 0; t < T; ++t) {
      agg_num_[v][t] = in.Double();
      agg_deg_[v][t] = in.Double();
      got_[v][t] = in.Varint();
    }
  }

  const std::vector<char>& selected() const { return selected_; }

 private:
  bool EntryComplete(NodeId v, int t) const {
    return got_[v][t] == children_[v].size();
  }

  void Progress(NodeContext& ctx) {
    const NodeId v = ctx.id();
    if (decided_[v]) return;
    if (parent_[v] == graph::kInvalidNode) {  // orphan fragment
      decided_[v] = 1;
      ctx.Halt();
      return;
    }
    if (parent_[v] == v) {
      // Root: decide once every entry is complete.
      for (int t = 0; t < T_; ++t) {
        if (!EntryComplete(v, t)) return;
      }
      decided_[v] = 1;
      double bmax = -1.0;
      int t_star = -1;
      for (int t = 0; t < T_; ++t) {
        if (agg_num_[v][t] >= 1.0) {
          const double rho = agg_deg_[v][t] / (2.0 * agg_num_[v][t]);
          if (rho > bmax) {
            bmax = rho;
            t_star = t;
          }
        }
      }
      const double tol = 1e-9 * std::max(1.0, leader_b_[v]);
      if (t_star >= 0 && bmax + tol >= leader_b_[v] / gamma_) {
        SelectAndForward(ctx, t_star);
      } else {
        ctx.Halt();
      }
      return;
    }
    // Interior/leaf: stream at most ONE completed entry per round.
    if (next_send_[v] < T_ && EntryComplete(v, next_send_[v])) {
      const int t = next_send_[v]++;
      ctx.Send(parent_[v], {0.0, static_cast<double>(t), agg_num_[v][t],
                            agg_deg_[v][t]});
    }
  }

  void SelectAndForward(NodeContext& ctx, int t_star) {
    const NodeId v = ctx.id();
    decided_[v] = 1;
    if (t_star >= 0 && t_star < T_ && own_num_[v][t_star]) {
      selected_[v] = 1;
    }
    for (NodeId c : children_[v]) {
      ctx.Send(c, {1.0, static_cast<double>(t_star)});
    }
    ctx.Halt();
  }

  int T_;
  double gamma_;
  const std::vector<double>& leader_b_;
  const std::vector<NodeId>& parent_;
  const std::vector<std::vector<NodeId>>& children_;
  std::vector<std::vector<double>> agg_num_;
  std::vector<std::vector<double>> agg_deg_;
  std::vector<std::vector<std::size_t>> got_;
  std::vector<int> next_send_;
  std::vector<char> decided_;
  std::vector<char> selected_;
  const std::vector<std::vector<char>>& own_num_;
};

// Applies the options' shared engine surface to one phase's engine; every
// phase runs under the same seed, balancing, transport, and rank
// topology.
void ConfigureEngine(distsim::Engine& engine,
                     const WeakDensestOptions& options) {
  engine.SetSeed(options.seed);
  engine.SetShardBalancing(options.balance_shards);
  engine.SetTransport(distsim::MakeTransport(options.transport));
  engine.SetRankCount(options.ranks);
  engine.SetPerRankCompute(options.per_rank_compute);
}

void AddTotals(distsim::Totals& acc, const distsim::Totals& t) {
  acc.rounds += t.rounds;
  acc.messages += t.messages;
  acc.entries += t.entries;
  acc.max_entries_per_message =
      std::max(acc.max_entries_per_message, t.max_entries_per_message);
}

}  // namespace

WeakDensestResult RunWeakDensest(const Graph& g, double gamma, int T_override,
                                 int num_threads) {
  WeakDensestOptions options;
  options.gamma = gamma;
  options.T_override = T_override;
  options.num_threads = num_threads;
  return RunWeakDensest(g, options);
}

WeakDensestResult RunWeakDensest(const Graph& g,
                                 const WeakDensestOptions& options) {
  const double gamma = options.gamma;
  const int T_override = options.T_override;
  const int num_threads = options.num_threads;
  KCORE_CHECK_MSG(gamma > 2.0, "gamma must exceed 2");
  const NodeId n = g.num_nodes();
  KCORE_CHECK(n >= 1);
  const int T =
      T_override > 0 ? T_override : RoundsForGamma(n, gamma);

  WeakDensestResult out;

  // Phase 1: surviving numbers.
  CompactOptions copts;
  copts.rounds = T;
  copts.num_threads = num_threads;
  copts.balance_shards = options.balance_shards;
  copts.transport = options.transport;
  copts.ranks = options.ranks;
  copts.seed = options.seed;
  copts.per_rank_compute = options.per_rank_compute;
  CompactResult compact = RunCompactElimination(g, copts);
  out.b = compact.b;
  out.rounds_phase1 = T;
  AddTotals(out.totals, compact.totals);

  // Phase 2: BFS forest.
  BfsForestProtocol bfs(g, compact.b, T);
  {
    distsim::Engine engine(g, num_threads);
    ConfigureEngine(engine, options);
    engine.Run(bfs, T + 3);
    engine.FetchRankState(bfs);  // no-op unless per-rank compute
    out.rounds_phase2 = T + 3;
    AddTotals(out.totals, engine.totals());
  }
  const auto& parent = bfs.parent();
  const auto& children = bfs.children();

  // A node participates in phase 3/4 iff it was not orphaned.
  std::vector<char> participates(n, 1);
  for (NodeId v = 0; v < n; ++v) {
    if (parent[v] == graph::kInvalidNode) participates[v] = 0;
  }

  // Every node uses its LEADER's threshold b; the leader's own b was
  // propagated as part of the tuple.
  TreeEliminationProtocol elim(g, bfs.leader_b(), bfs.leader_id(),
                               participates, T);
  {
    distsim::Engine engine(g, num_threads);
    ConfigureEngine(engine, options);
    engine.Run(elim, T);
    engine.FetchRankState(elim);  // no-op unless per-rank compute
    out.rounds_phase3 = T;
    AddTotals(out.totals, engine.totals());
  }

  // Phase 4: aggregation (runs until message flow stops; <= 2T+4 rounds
  // batch, <= 3T+4 pipelined, for a depth-<=T forest).
  std::vector<char> selected;
  if (options.pipelined_aggregation) {
    PipelinedAggregationProtocol agg(g, bfs.leader_b(), parent, children,
                                     elim.num(), elim.deg(), T, gamma);
    distsim::Engine engine(g, num_threads);
    ConfigureEngine(engine, options);
    const int executed = engine.RunUntilQuiescent(agg, 4 * T + 8);
    engine.FetchRankState(agg);  // no-op unless per-rank compute
    out.rounds_phase4 = executed;
    AddTotals(out.totals, engine.totals());
    selected = agg.selected();
  } else {
    AggregationProtocol agg(g, bfs.leader_b(), parent, children, elim.num(),
                            elim.deg(), T, gamma);
    distsim::Engine engine(g, num_threads);
    ConfigureEngine(engine, options);
    const int executed = engine.RunUntilQuiescent(agg, 3 * T + 8);
    engine.FetchRankState(agg);  // no-op unless per-rank compute
    out.rounds_phase4 = executed;
    AddTotals(out.totals, engine.totals());
    selected = agg.selected();
  }

  out.selected = std::move(selected);
  out.leader_of.assign(n, graph::kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (participates[v]) out.leader_of[v] = bfs.leader_id()[v];
  }

  // Collect the subsets per leader and compute their true densities in G.
  std::map<NodeId, std::vector<NodeId>> groups;
  for (NodeId v = 0; v < n; ++v) {
    if (out.selected[v]) groups[out.leader_of[v]].push_back(v);
  }
  for (auto& [leader, members] : groups) {
    DensestSubsetOut s;
    s.leader = leader;
    s.members = members;
    std::vector<char> mask(n, 0);
    for (NodeId v : members) mask[v] = 1;
    s.density = g.InducedDensity(mask);
    out.best_density = std::max(out.best_density, s.density);
    out.subsets.push_back(std::move(s));
  }

  out.rounds_total = out.rounds_phase1 + out.rounds_phase2 +
                     out.rounds_phase3 + out.rounds_phase4;
  return out;
}

}  // namespace kcore::core
