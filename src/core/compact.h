// Algorithm 2 of the paper: the compact elimination procedure.
//
// Runs the single-threshold elimination for ALL thresholds in parallel,
// compactly: node v only remembers the largest threshold b_v for which it
// still survives (the surviving number beta^T(v), Definition III.1) and
// broadcasts one number per round. The theorems:
//   * Lemma III.2:  beta^T(v) >= c(v) for every T;
//   * Lemma III.3:  beta^T(v) <= 2 n^{1/T} r(v);
//   * Theorem I.1:  T = ceil(log n / log(gamma/2)) gives gamma-approx
//     (2(1+eps) with T = ceil(log_{1+eps} n)).
//
// With Lambda = powers of (1+lambda) (lambda > 0), b_v is rounded down
// after every update, shrinking the number of distinct broadcast values
// (Corollary III.10: r(v)/(1+lambda) <= b_v <= 2(1+eps) r(v)); the
// auxiliary orientation sets N_v require Lambda = R (lambda = 0).
#pragma once

#include <cstdint>
#include <vector>

#include "distsim/engine.h"
#include "distsim/transport.h"
#include "graph/graph.h"

namespace kcore::core {

struct CompactOptions {
  // Number of rounds T. Use RoundsForGamma / RoundsForEpsilon helpers.
  int rounds = 0;
  // Lambda-discretization parameter (0 = exact reals).
  double lambda = 0.0;
  // Maintain the auxiliary in-neighbor sets N_v (requires lambda == 0).
  bool track_orientation = false;
  // Record b after every round (for convergence experiments).
  bool record_rounds = false;
  // Ablation knob: when false, Update re-sorts neighbors from the id
  // order every round instead of stable-sorting the persistent
  // permutation. Lemma III.11's invariant-2 proof NEEDS the stateful
  // order; the naive variant can leave edges unclaimed (bench_ablation
  // demonstrates it). Leave true outside experiments.
  bool stateful_tiebreak = true;
  // Worker threads for the simulator.
  int num_threads = 1;
  // Degree-weighted shard balancing for the round scheduler (see
  // distsim::Engine::SetShardBalancing) — worth turning on for
  // heavy-tailed graphs; results are bit-identical either way.
  bool balance_shards = false;
  // With balancing on, rebuild shard boundaries from the halted census
  // every this many rounds (0 = partition once at Start).
  int rebalance_rounds = 0;
  // Message transport for the simulator's collect phase (see
  // distsim/transport.h): the zero-copy shared-memory path, or the
  // serialized pack/alltoallv/unpack path that reports real wire volume.
  // Results are bit-identical either way.
  distsim::TransportKind transport = distsim::TransportKind::kSharedMemory;
  // Rank topology for multi-process transports (see
  // distsim::Engine::SetRankCount): the number of worker processes the
  // process transport forks / node-ownership ranges the exchange is
  // segmented by. In-process transports ignore it; results are
  // bit-identical at any rank count.
  int ranks = 1;
  // Master seed for the engine's per-node RNG streams. Algorithm 2 itself
  // is deterministic; the seed exists so randomized protocol variants
  // layered on this path (and the engine they share) stay replayable.
  std::uint64_t seed = distsim::kDefaultMasterSeed;
  // Run the compute phase inside the transport's rank workers
  // (distsim::Engine::SetPerRankCompute) — requires a process transport
  // and ranks >= 1, and is incompatible with record_rounds (b lives in
  // the workers between rounds). Results stay bit-identical.
  bool per_rank_compute = false;
};

// T = ceil(log n / log(gamma/2)) for gamma > 2 (Theorem III.5).
int RoundsForGamma(graph::NodeId n, double gamma);
// T = ceil(log_{1+eps} n) for eps > 0 (Theorem I.1).
int RoundsForEpsilon(graph::NodeId n, double eps);

class CompactElimination : public distsim::Protocol {
 public:
  CompactElimination(const graph::Graph& g, const CompactOptions& opts);

  void Init(distsim::NodeContext& ctx) override;
  void Round(distsim::NodeContext& ctx) override;

  // Per-rank compute support: a node's state is its surviving number,
  // its last-change round, its tie-break permutation, and (when
  // orientation is tracked) its in-neighbor set. scratch_values_ is
  // rebuilt, not shipped.
  bool SupportsRankCompute() const override { return true; }
  void SaveNodeState(graph::NodeId v, util::WireAppender& out) const override;
  void LoadNodeState(graph::NodeId v, util::WireReader& in) override;

  // Current surviving numbers b_v.
  const std::vector<double>& b() const { return b_; }
  // N_v as indices into g.Neighbors(v) (valid iff track_orientation).
  const std::vector<std::vector<std::uint32_t>>& in_sets() const {
    return in_sets_;
  }
  // Round in which v's b last changed (0 if never after init).
  const std::vector<int>& last_change_round() const { return last_change_; }

 private:
  const graph::Graph& graph_;
  CompactOptions opts_;
  std::vector<double> b_;
  // Persistent per-node neighbor permutation for the stable tie-breaking.
  std::vector<std::vector<std::uint32_t>> order_;
  std::vector<std::vector<std::uint32_t>> in_sets_;
  std::vector<int> last_change_;
  // Scratch, indexed per node to stay race-free under threading.
  std::vector<std::vector<double>> scratch_values_;
};

struct CompactResult {
  // beta^T(v) (rounded into Lambda if lambda > 0).
  std::vector<double> b;
  // N_v as adjacency indices (empty unless track_orientation).
  std::vector<std::vector<std::uint32_t>> in_sets;
  // b after each round (only if record_rounds): b_rounds[t][v], t=0..T.
  std::vector<std::vector<double>> b_rounds;
  std::vector<distsim::RoundStats> history;
  distsim::Totals totals;
  int rounds = 0;
};

// Drives Algorithm 2 for opts.rounds rounds on g (self-loop free).
CompactResult RunCompactElimination(const graph::Graph& g,
                                    const CompactOptions& opts);

}  // namespace kcore::core
