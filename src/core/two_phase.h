// Two-phase orientation baseline (Barenboim–Elkin-flavoured, Section I.A).
//
// Barenboim & Elkin's forest-decomposition peeling assumes the maximum
// arboricity is globally known; learning it costs Omega(D) rounds. The
// paper observes that substituting a first phase that computes surviving
// numbers (as in Theorem I.1) and then running the peeling phase "as if
// the arboricity were known" degrades the guarantee to 2(2+eps) — worse
// than the primal-dual 2(1+eps) of Algorithm 2. This module implements
// that two-phase scheme as the comparison baseline:
//
//   Phase 1: compact elimination, T rounds -> b_v (local density bound).
//   Phase 2: H-partition peeling — a node still active whose active
//            weighted degree is at most (1 + eps/2) * b_v peels and takes
//            ownership of all its still-active incident edges (ties
//            between nodes peeling in the same round go to the smaller
//            id). Peeling stops after max_phase2_rounds; leftover edges
//            (rare; only adversarial instances) are force-assigned to the
//            endpoint with the larger b.
#pragma once

#include <cstdint>

#include "core/compact.h"
#include "distsim/engine.h"
#include "distsim/transport.h"
#include "graph/graph.h"
#include "seq/orientation_exact.h"

namespace kcore::core {

struct TwoPhaseResult {
  seq::Orientation orientation;
  std::vector<double> b;     // phase-1 surviving numbers
  int phase1_rounds = 0;
  int phase2_rounds = 0;     // rounds actually used by the peeling
  std::size_t forced_edges = 0;  // assigned by the fallback rule
  // Per-round engine stats of each phase (round 0 = the phase's Init).
  std::vector<distsim::RoundStats> phase1_history;
  std::vector<distsim::RoundStats> phase2_history;
  distsim::Totals totals;
};

// eps > 0 controls the peeling slack. max_phase2_rounds < 0 defaults to
// 4 * ceil(log_{1+eps/2} n) + 8. `seed` feeds both phases' engines
// (per-node RNG streams; see distsim::Engine::SetSeed); `balance_shards`
// turns on degree-weighted shard balancing in both phases (bit-identical
// results, better thread utilization on skewed graphs); `transport`
// picks both phases' message transport (bit-identical results for every
// transport — only the wire accounting differs); `ranks` sets the rank
// topology for multi-process transports in both phases (see
// distsim::Engine::SetRankCount — ignored by in-process transports);
// `per_rank_compute` runs both phases' compute inside the transport's
// rank workers (distsim::Engine::SetPerRankCompute, process transport
// only — results stay bit-identical).
TwoPhaseResult RunTwoPhaseOrientation(
    const graph::Graph& g, int phase1_rounds, double eps,
    int max_phase2_rounds = -1, int num_threads = 1,
    std::uint64_t seed = distsim::kDefaultMasterSeed,
    bool balance_shards = false,
    distsim::TransportKind transport = distsim::TransportKind::kSharedMemory,
    int ranks = 1, bool per_rank_compute = false);

}  // namespace kcore::core
