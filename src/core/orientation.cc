#include "core/orientation.h"

#include <algorithm>

#include "util/logging.h"

namespace kcore::core {

using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

DistOrientationResult RunDistributedOrientation(const Graph& g, int rounds,
                                                ConflictRule rule,
                                                int num_threads) {
  CompactOptions opts;
  opts.rounds = rounds;
  opts.lambda = 0.0;
  opts.track_orientation = true;
  opts.num_threads = num_threads;
  CompactResult compact = RunCompactElimination(g, opts);

  DistOrientationResult out;
  out.b = compact.b;
  out.totals = compact.totals;
  out.rounds = rounds + 1;

  // Claim census: claimed_by[e] in {none, u, v, both}. N_v holds adjacency
  // indices; the adjacency entry carries the global edge id.
  const std::size_t m = g.num_edges();
  std::vector<std::uint8_t> claim_u(m, 0);
  std::vector<std::uint8_t> claim_v(m, 0);
  std::vector<double> claimed_load(g.num_nodes(), 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.Neighbors(v);
    for (std::uint32_t idx : compact.in_sets[v]) {
      const EdgeId e = nbrs[idx].edge;
      // Edge e is oriented toward v ("u in N_v" means {u,v} assigned to v).
      if (g.edge(e).u == v) {
        claim_u[e] = 1;
      } else {
        claim_v[e] = 1;
      }
      claimed_load[v] += nbrs[idx].w;
    }
  }

  // The extra round: every node tells each claimed neighbor its load; an
  // edge claimed twice goes to the endpoint the rule picks. Both endpoints
  // know both loads after the exchange, so the rule is locally computable.
  // (We evaluate it centrally here; message cost is <= one payload per
  // claimed edge, accounted below.)
  std::vector<NodeId> owner(m);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& edge = g.edge(e);
    const bool by_u = claim_u[e] != 0;
    const bool by_v = claim_v[e] != 0;
    if (by_u && by_v) {
      ++out.conflicts;
      switch (rule) {
        case ConflictRule::kLowerLoad: {
          if (claimed_load[edge.u] < claimed_load[edge.v]) {
            owner[e] = edge.u;
          } else if (claimed_load[edge.v] < claimed_load[edge.u]) {
            owner[e] = edge.v;
          } else {
            owner[e] = std::max(edge.u, edge.v);
          }
          break;
        }
        case ConflictRule::kHigherId:
          owner[e] = std::max(edge.u, edge.v);
          break;
      }
    } else if (by_u) {
      owner[e] = edge.u;
    } else if (by_v) {
      owner[e] = edge.v;
    } else {
      // Impossible by Lemma III.11; counted so tests can assert.
      ++out.uncovered;
      owner[e] = std::max(edge.u, edge.v);
    }
  }

  // Account the resolution round's traffic: one 1-entry message per
  // claimed edge-endpoint pair.
  out.totals.rounds += 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.totals.messages += compact.in_sets[v].size();
    out.totals.entries += compact.in_sets[v].size();
  }

  out.orientation = seq::MakeOrientation(g, std::move(owner));
  return out;
}

}  // namespace kcore::core
