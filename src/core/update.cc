#include "core/update.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace kcore::core {

UpdateResult UpdateStep(std::span<const double> values,
                        std::span<const double> weights,
                        std::span<std::uint32_t> order) {
  const std::size_t d = values.size();
  KCORE_CHECK(weights.size() == d && order.size() == d);
  UpdateResult out;
  if (d == 0) return out;  // b = 0, N = {}

  // Stable sort by current values: ties keep the order induced by all past
  // rounds (most recent first), bottoming out at the caller's initial
  // id-order — the paper's tie-breaking rule.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return values[a] < values[b];
                   });

  // Scan thresholds from the largest down (Algorithm 3). With sorted
  // b_1 <= ... <= b_d and suffix sum s_i = sum_{j >= i} w_j, the first
  // (largest) i with s_i > b_{i-1} yields b = min(b_i, s_i):
  //  * if s_i > b_i: b = b_i and N = {i+1..d} (then sum_N w = s_{i+1}
  //    <= b_i because the scan did not stop at i+1);
  //  * else b = s_i and N = {i..d} (sum_N w = s_i = b exactly).
  double s = 0.0;
  for (std::size_t i = d; i-- > 0;) {
    s += weights[order[i]];
    const double prev =
        i > 0 ? values[order[i - 1]] : -std::numeric_limits<double>::infinity();
    if (s > prev) {
      const double bi = values[order[i]];
      if (s <= bi) {
        out.b = s;
        out.chosen.assign(order.begin() + static_cast<std::ptrdiff_t>(i),
                          order.end());
      } else {
        out.b = bi;
        out.chosen.assign(order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                          order.end());
      }
      return out;
    }
  }
  // Unreachable: the loop always stops at i == 0 (prev = -inf, s >= 0).
  KCORE_CHECK_MSG(false, "UpdateStep scan fell through");
  return out;
}

double UpdateValueBruteForce(std::span<const double> values,
                             std::span<const double> weights) {
  KCORE_CHECK(values.size() == weights.size());
  // Candidate thresholds: each values[i], plus each suffix-sum of weights
  // of {j : values[j] >= values[i]} (and the full sum). Evaluate
  // f(b) = sum_{values[i] >= b} weights[i] and keep the best b <= f(b).
  std::vector<double> candidates;
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    candidates.push_back(values[i]);
    total += weights[i];
  }
  candidates.push_back(total);
  for (double v : values) {
    double s = 0.0;
    for (std::size_t j = 0; j < values.size(); ++j) {
      if (values[j] >= v) s += weights[j];
    }
    candidates.push_back(s);
  }
  double best = 0.0;
  for (double b : candidates) {
    if (b < 0.0) continue;
    double s = 0.0;
    for (std::size_t j = 0; j < values.size(); ++j) {
      if (values[j] >= b) s += weights[j];
    }
    if (s >= b) best = std::max(best, b);
  }
  return best;
}

double RoundDownToPower(double x, double lambda) {
  if (lambda <= 0.0 || x <= 0.0 || std::isinf(x)) return x;
  // The returned value must be a CANONICAL function of the integer
  // exponent k: Fact III.9 (the discretized process computes exactly
  // round_Lambda(beta^T)) relies on "round(x) >= b iff x >= b" for b in
  // Lambda, which breaks if two inputs in the same Lambda-cell map to
  // powers differing in the last ulp. Hence: derive k, correct k (not the
  // power) under floating-point drift, and always materialize the power
  // through the same std::pow call.
  const double log_base = std::log1p(lambda);
  const double base = 1.0 + lambda;
  double k = std::floor(std::log(x) / log_base);
  const auto power = [&](double kk) { return std::pow(base, kk); };
  while (power(k) > x) k -= 1.0;
  while (power(k + 1.0) <= x) k += 1.0;
  return power(k);
}

}  // namespace kcore::core
