// Weighted hypergraph substrate.
//
// The paper's Lemma III.3 proof is adapted from Hu, Wu, Chan (CIKM 2017),
// which works on hypergraphs; this module materializes that
// generalization: the elimination procedure, surviving numbers, coreness
// and densest-subset machinery where an edge e is a node SET and counts
// toward w(E(S)) iff e ⊆ S (so removing any member destroys the edge for
// everyone). For rank-2 hypergraphs everything degenerates to the graph
// case (tested).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace kcore::hyper {

using NodeId = graph::NodeId;
using EdgeId = graph::EdgeId;

struct HEdge {
  std::vector<NodeId> nodes;  // distinct, sorted
  double w = 1.0;
};

class HypergraphBuilder;

class Hypergraph {
 public:
  Hypergraph() = default;

  NodeId num_nodes() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }
  const HEdge& edge(EdgeId e) const { return edges_[e]; }
  std::span<const HEdge> edges() const { return edges_; }
  double total_weight() const { return total_weight_; }

  // Incident edge ids of v.
  std::span<const EdgeId> IncidentEdges(NodeId v) const {
    return {inc_.data() + off_[v], inc_.data() + off_[v + 1]};
  }

  // Weighted degree: sum of w(e) over e containing v.
  double WeightedDegree(NodeId v) const { return deg_[v]; }

  // Maximum edge cardinality (the rank r).
  std::size_t Rank() const { return rank_; }

  // Density of S: sum of w(e) over e fully inside S, divided by |S|.
  double InducedDensity(std::span<const char> in_set) const;
  double InducedEdgeWeight(std::span<const char> in_set) const;

 private:
  friend class HypergraphBuilder;
  NodeId n_ = 0;
  std::vector<HEdge> edges_;
  std::vector<std::size_t> off_;
  std::vector<EdgeId> inc_;
  std::vector<double> deg_;
  double total_weight_ = 0.0;
  std::size_t rank_ = 0;
};

class HypergraphBuilder {
 public:
  explicit HypergraphBuilder(NodeId n) : n_(n) {}
  // Duplicate nodes within an edge are collapsed; empty edges rejected.
  HypergraphBuilder& AddEdge(std::vector<NodeId> nodes, double w = 1.0);
  Hypergraph Build() &&;

 private:
  NodeId n_;
  std::vector<HEdge> edges_;
};

// Every graph is a rank-<=2 hypergraph.
Hypergraph FromGraph(const graph::Graph& g);

// Random r-uniform hypergraph with m edges (distinct member sets not
// enforced; duplicates are legitimate parallel hyperedges).
Hypergraph RandomUniform(NodeId n, std::size_t m, std::size_t r,
                         util::Rng& rng);

}  // namespace kcore::hyper
