// Hypergraph elimination machinery (Hu-Wu-Chan style, generalizing
// Sections III-IV of the paper to rank-r hypergraphs).
//
// Degree of v in survivor set A: sum of w(e) over incident e with ALL
// members in A. The elimination procedure, surviving numbers and the
// compact per-node update carry over with one change: the "value" a
// hyperedge contributes to v's update is min over its OTHER members'
// surviving numbers (an edge survives threshold b iff every member does).
//
// Theory transplanted (and tested):
//   * beta^T(v) >= c_H(v)                           (Lemma III.2 analog)
//   * max_v beta^T(v) <= r * n^{1/T} * rho*         (Lemma III.3 analog:
//     sum_{v in A} deg_A(v) <= r * w(E(A)) replaces the factor 2)
//   * greedy peeling is an r(1+eps)-approx densest  (Charikar analog)
#pragma once

#include <vector>

#include "hyper/hypergraph.h"

namespace kcore::hyper {

// Exact hypergraph coreness: peel the min-degree node; removing a node
// destroys all its incident edges. c_H(v) = running max of the minimum
// degree at removal.
std::vector<double> HyperCoreness(const Hypergraph& h);

// Surviving numbers after `rounds` synchronous iterations of the compact
// elimination (values = min over co-members, Algorithm 3 update).
std::vector<double> HyperSurvivingNumbers(const Hypergraph& h, int rounds);

struct HyperDensestResult {
  std::vector<char> in_set;
  double density = 0.0;
  int iterations = 0;
};

// Exact maximal densest subset via max-weight closure + Dinkelbach
// (hyperedge node -> every member).
HyperDensestResult HyperDensestExact(const Hypergraph& h);

// Greedy peeling densest (rank-r analog of Charikar; factor r).
HyperDensestResult HyperDensestGreedy(const Hypergraph& h);

// Brute-force densest for tests (n <= 20).
HyperDensestResult HyperDensestBrute(const Hypergraph& h);

// Brute-force coreness for tests (n <= 16): max over subsets containing v
// of the min induced degree.
std::vector<double> HyperCorenessBrute(const Hypergraph& h);

}  // namespace kcore::hyper
