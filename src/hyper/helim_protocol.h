// Hypergraph compact elimination on the round simulator.
//
// HyperSurvivingNumbers (helim.h) iterates the rank-r analogue of
// Algorithm 2 in a hand-rolled synchronous loop. This module ports the
// same iteration onto distsim::Engine so threads, shard balancing,
// transports, ranks, and byte accounting apply unchanged: each node
// broadcasts one number per round (its surviving number b_v) over the
// CLIQUE-EXPANSION substrate — the simple graph connecting every pair of
// hyperedge co-members — and recomputes b_v from its co-members'
// broadcasts: the value a hyperedge contributes is the min over its OTHER
// members' previous surviving numbers (the edge survives threshold x iff
// every member does), fed through the Algorithm 3 update with the
// persistent stable tie-break order.
//
// The sequential loop stays around as the bit-exact oracle: for every
// hypergraph and round count, RunHyperElimination(h, opts).b ==
// HyperSurvivingNumbers(h, opts.rounds) bit for bit, at any thread count,
// under every transport, and at any rank count (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "distsim/engine.h"
#include "distsim/transport.h"
#include "graph/graph.h"
#include "hyper/hypergraph.h"

namespace kcore::hyper {

struct HyperElimOptions {
  // Number of synchronous rounds T (>= 1).
  int rounds = 0;
  // Worker threads for the simulator.
  int num_threads = 1;
  // Degree-weighted shard balancing over the substrate graph.
  bool balance_shards = false;
  // With balancing on, rebuild shard bounds every this many rounds.
  int rebalance_rounds = 0;
  // Exchange backend for the simulator's collect phase.
  distsim::TransportKind transport = distsim::TransportKind::kSharedMemory;
  // Rank topology for multi-process transports.
  int ranks = 1;
  // Master seed for the engine's per-node RNG streams (the protocol is
  // deterministic; the seed keeps the engine replayable).
  std::uint64_t seed = distsim::kDefaultMasterSeed;
  // Run the compute phase inside the transport's rank workers.
  bool per_rank_compute = false;
};

// The elimination as a distsim::Protocol over the clique-expansion
// substrate. Message shape: one double per broadcast (a hyperedge
// incidence update — the receiver re-derives every incident edge's
// survival from the co-member values).
class HyperEliminationProtocol : public distsim::Protocol {
 public:
  explicit HyperEliminationProtocol(const Hypergraph& h);

  void Init(distsim::NodeContext& ctx) override;
  void Round(distsim::NodeContext& ctx) override;

  // Per-rank compute: a node's state is its surviving number and its
  // tie-break permutation; the incidence tables are constructor-built
  // read-only structure.
  bool SupportsRankCompute() const override { return true; }
  void SaveNodeState(graph::NodeId v, util::WireAppender& out) const override;
  void LoadNodeState(graph::NodeId v, util::WireReader& in) override;

  // The clique-expansion graph the engine must run on (co-member pairs,
  // deduplicated, unit weight). The protocol must outlive the engine.
  const graph::Graph& substrate() const { return substrate_; }

  // Current surviving numbers.
  const std::vector<double>& b() const { return b_; }

 private:
  const Hypergraph& hyper_;
  graph::Graph substrate_;
  // Flattened incidence tables, aligned with h.IncidentEdges(v):
  // member_idx_[v][member_off_[v][i] .. member_off_[v][i+1]) are the
  // substrate adjacency indices of incident edge i's OTHER members
  // (empty range for a singleton edge), weights_[v][i] its weight.
  std::vector<std::vector<std::uint32_t>> member_idx_;
  std::vector<std::vector<std::uint32_t>> member_off_;
  std::vector<std::vector<double>> weights_;
  // Mutable per-node state.
  std::vector<double> b_;
  std::vector<std::vector<std::uint32_t>> order_;
  // Scratch, indexed per node to stay race-free under threading.
  std::vector<std::vector<double>> scratch_values_;
};

struct HyperElimResult {
  // Surviving numbers after opts.rounds rounds; bit-identical to
  // HyperSurvivingNumbers(h, opts.rounds).
  std::vector<double> b;
  std::vector<distsim::RoundStats> history;
  distsim::Totals totals;
  int rounds = 0;
};

// Drives the protocol for opts.rounds rounds on h.
HyperElimResult RunHyperElimination(const Hypergraph& h,
                                    const HyperElimOptions& opts);

}  // namespace kcore::hyper
