#include "hyper/helim_protocol.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "core/update.h"
#include "util/logging.h"
#include "util/wire.h"

namespace kcore::hyper {

using distsim::NodeContext;
using distsim::Payload;
using graph::AdjEntry;

namespace {

// Substrate adjacency index of neighbor `u` in the id-sorted adjacency
// of `v` (the co-member is adjacent by construction).
std::uint32_t AdjIndexOf(const graph::Graph& g, NodeId v, NodeId u) {
  const auto nbrs = g.Neighbors(v);
  const auto it =
      std::lower_bound(nbrs.begin(), nbrs.end(), u,
                       [](const AdjEntry& a, NodeId id) { return a.to < id; });
  KCORE_CHECK_MSG(it != nbrs.end() && it->to == u,
                  "co-member " << u << " not adjacent to " << v
                               << " in the clique expansion");
  return static_cast<std::uint32_t>(it - nbrs.begin());
}

graph::Graph BuildCliqueExpansion(const Hypergraph& h) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const HEdge& e : h.edges()) {
    for (std::size_t i = 0; i < e.nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < e.nodes.size(); ++j) {
        pairs.emplace_back(e.nodes[i], e.nodes[j]);  // members are sorted
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  graph::GraphBuilder b(h.num_nodes());
  b.Reserve(pairs.size());
  for (const auto& [u, v] : pairs) b.AddEdge(u, v, 1.0);
  return std::move(b).Build();
}

}  // namespace

HyperEliminationProtocol::HyperEliminationProtocol(const Hypergraph& h)
    : hyper_(h), substrate_(BuildCliqueExpansion(h)) {
  const NodeId n = h.num_nodes();
  member_idx_.resize(n);
  member_off_.resize(n);
  weights_.resize(n);
  b_.assign(n, std::numeric_limits<double>::infinity());
  order_.resize(n);
  scratch_values_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto inc = h.IncidentEdges(v);
    member_off_[v].reserve(inc.size() + 1);
    member_off_[v].push_back(0);
    weights_[v].reserve(inc.size());
    for (EdgeId e : inc) {
      const HEdge& edge = h.edge(e);
      for (NodeId u : edge.nodes) {
        if (u != v) member_idx_[v].push_back(AdjIndexOf(substrate_, v, u));
      }
      member_off_[v].push_back(
          static_cast<std::uint32_t>(member_idx_[v].size()));
      weights_[v].push_back(edge.w);
    }
    order_[v].resize(inc.size());
    std::iota(order_[v].begin(), order_[v].end(), 0u);
    scratch_values_[v].resize(inc.size());
  }
}

void HyperEliminationProtocol::Init(NodeContext& ctx) {
  // b_v <- +inf, broadcast it (round-1 inputs).
  ctx.Broadcast({b_[ctx.id()]});
}

void HyperEliminationProtocol::Round(NodeContext& ctx) {
  const NodeId v = ctx.id();
  const std::size_t k = weights_[v].size();

  if (k == 0) {
    // No incident edges: degree 0 in every survivor set.
    b_[v] = 0.0;
    ctx.Broadcast({0.0});
    return;
  }

  // Per incident edge: min over the OTHER members' previous surviving
  // numbers (singleton edge: empty range, +inf — it always survives).
  // Every node broadcasts every round, so a missing one is a bug.
  auto& values = scratch_values_[v];
  for (std::size_t i = 0; i < k; ++i) {
    double mn = std::numeric_limits<double>::infinity();
    for (std::uint32_t j = member_off_[v][i]; j < member_off_[v][i + 1];
         ++j) {
      const Payload* p = ctx.NeighborBroadcast(member_idx_[v][j]);
      KCORE_CHECK_MSG(p != nullptr && !p->empty(),
                      "missing broadcast from co-member of " << v);
      mn = std::min(mn, (*p)[0]);
    }
    values[i] = mn;
  }
  b_[v] = core::UpdateStep(values, weights_[v], order_[v]).b;
  ctx.Broadcast({b_[v]});
}

void HyperEliminationProtocol::SaveNodeState(NodeId v,
                                             util::WireAppender& out) const {
  out.Double(b_[v]);
  out.Varint(order_[v].size());
  for (std::uint32_t i : order_[v]) out.Fixed32(i);
}

void HyperEliminationProtocol::LoadNodeState(NodeId v, util::WireReader& in) {
  b_[v] = in.Double();
  order_[v].resize(in.Varint());
  for (std::uint32_t& i : order_[v]) i = in.Fixed32();
}

HyperElimResult RunHyperElimination(const Hypergraph& h,
                                    const HyperElimOptions& opts) {
  KCORE_CHECK_MSG(opts.rounds >= 1, "need at least one round");
  HyperEliminationProtocol proto(h);
  distsim::Engine engine(proto.substrate(), opts.num_threads);
  engine.SetSeed(opts.seed);
  engine.SetShardBalancing(opts.balance_shards);
  engine.SetRebalanceInterval(opts.rebalance_rounds);
  engine.SetTransport(distsim::MakeTransport(opts.transport));
  engine.SetRankCount(opts.ranks);
  engine.SetPerRankCompute(opts.per_rank_compute);
  engine.Run(proto, opts.rounds);
  engine.FetchRankState(proto);  // no-op unless per-rank compute
  HyperElimResult out;
  out.b = proto.b();
  out.history = engine.history();
  out.totals = engine.totals();
  out.rounds = opts.rounds;
  return out;
}

}  // namespace kcore::hyper
