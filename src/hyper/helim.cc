#include "hyper/helim.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "core/update.h"
#include "flow/dinic.h"
#include "util/logging.h"

namespace kcore::hyper {

std::vector<double> HyperCoreness(const Hypergraph& h) {
  const NodeId n = h.num_nodes();
  std::vector<double> deg(n);
  for (NodeId v = 0; v < n; ++v) deg[v] = h.WeightedDegree(v);
  std::vector<char> alive(n, 1);
  std::vector<char> edge_alive(h.num_edges(), 1);

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (NodeId v = 0; v < n; ++v) heap.emplace(deg[v], v);

  std::vector<double> core(n, 0.0);
  double running = 0.0;
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (!alive[v] || d != deg[v]) continue;
    alive[v] = 0;
    running = std::max(running, d);
    core[v] = running;
    // Destroy every incident edge; other members lose its weight.
    for (EdgeId e : h.IncidentEdges(v)) {
      if (!edge_alive[e]) continue;
      edge_alive[e] = 0;
      for (NodeId u : h.edge(e).nodes) {
        if (u != v && alive[u]) {
          deg[u] -= h.edge(e).w;
          if (deg[u] < 0 && deg[u] > -1e-9) deg[u] = 0.0;
          heap.emplace(deg[u], u);
        }
      }
    }
  }
  return core;
}

std::vector<double> HyperSurvivingNumbers(const Hypergraph& h, int rounds) {
  const NodeId n = h.num_nodes();
  std::vector<double> b(n, std::numeric_limits<double>::infinity());
  // Persistent per-node incident-edge ordering for the stable tie-break.
  std::vector<std::vector<std::uint32_t>> order(n);
  for (NodeId v = 0; v < n; ++v) {
    order[v].resize(h.IncidentEdges(v).size());
    std::iota(order[v].begin(), order[v].end(), 0u);
  }
  for (int t = 0; t < rounds; ++t) {
    const std::vector<double> prev = b;  // synchronous semantics
    for (NodeId v = 0; v < n; ++v) {
      const auto inc = h.IncidentEdges(v);
      if (inc.empty()) {
        b[v] = 0.0;
        continue;
      }
      std::vector<double> values(inc.size());
      std::vector<double> weights(inc.size());
      for (std::size_t i = 0; i < inc.size(); ++i) {
        const HEdge& e = h.edge(inc[i]);
        // The edge survives threshold x iff every OTHER member does:
        // its value is the min of their previous surviving numbers.
        double mn = std::numeric_limits<double>::infinity();
        for (NodeId u : e.nodes) {
          if (u != v) mn = std::min(mn, prev[u]);
        }
        values[i] = mn;  // singleton edge: +inf (always survives)
        weights[i] = e.w;
      }
      b[v] = core::UpdateStep(values, weights, order[v]).b;
    }
  }
  return b;
}

namespace {

struct ClosureOut {
  double value = 0.0;
  std::vector<char> minimal, maximal;
};

ClosureOut SolveClosure(const Hypergraph& h, double density) {
  const NodeId n = h.num_nodes();
  flow::Dinic dinic(2 + static_cast<int>(n) +
                    static_cast<int>(h.num_edges()));
  const int kSource = 0;
  const int kSink = 1;
  const auto vnode = [](NodeId v) { return 2 + static_cast<int>(v); };
  const auto enode = [n](EdgeId e) {
    return 2 + static_cast<int>(n) + static_cast<int>(e);
  };
  double positive = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    if (density > 0.0) dinic.AddArc(vnode(v), kSink, density);
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const HEdge& edge = h.edge(e);
    if (edge.w > 0.0) {
      dinic.AddArc(kSource, enode(e), edge.w);
      positive += edge.w;
    }
    for (NodeId v : edge.nodes) {
      dinic.AddArc(enode(e), vnode(v), flow::kInfCapacity);
    }
  }
  const double cut = dinic.MaxFlow(kSource, kSink);
  ClosureOut out;
  out.value = positive - cut;
  const auto src = dinic.MinCutSourceSide(kSource);
  const auto sink = dinic.ResidualReachesSink(kSink);
  out.minimal.assign(n, 0);
  out.maximal.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    out.minimal[v] = src[static_cast<std::size_t>(vnode(v))];
    out.maximal[v] = !sink[static_cast<std::size_t>(vnode(v))];
  }
  return out;
}

double SetDensity(const Hypergraph& h, const std::vector<char>& s,
                  std::size_t* size_out) {
  std::size_t size = 0;
  for (char c : s) size += c ? 1 : 0;
  if (size_out != nullptr) *size_out = size;
  return size == 0 ? 0.0
                   : h.InducedEdgeWeight(s) / static_cast<double>(size);
}

}  // namespace

HyperDensestResult HyperDensestExact(const Hypergraph& h) {
  HyperDensestResult out;
  const NodeId n = h.num_nodes();
  KCORE_CHECK(n >= 1);
  out.in_set.assign(n, 0);
  if (h.total_weight() <= 0.0) {
    std::fill(out.in_set.begin(), out.in_set.end(), 1);
    out.density = 0.0;
    return out;
  }
  const double tol = 1e-9 * std::max(1.0, h.total_weight());
  std::vector<char> best(n, 1);
  double best_density = SetDensity(h, best, nullptr);
  while (true) {
    ++out.iterations;
    ClosureOut c = SolveClosure(h, best_density);
    if (c.value <= tol) break;
    std::size_t size = 0;
    const double cand = SetDensity(h, c.minimal, &size);
    if (size == 0 || cand <= best_density + tol) break;
    best_density = cand;
    best = c.minimal;
  }
  ClosureOut c = SolveClosure(h, best_density);
  std::size_t size = 0;
  const double maximal_density = SetDensity(h, c.maximal, &size);
  if (size > 0 && maximal_density >= best_density - tol) {
    out.in_set = c.maximal;
    out.density = maximal_density;
  } else {
    out.in_set = best;
    out.density = best_density;
  }
  return out;
}

HyperDensestResult HyperDensestGreedy(const Hypergraph& h) {
  const NodeId n = h.num_nodes();
  HyperDensestResult out;
  out.in_set.assign(n, 0);
  if (n == 0) return out;

  std::vector<double> deg(n);
  for (NodeId v = 0; v < n; ++v) deg[v] = h.WeightedDegree(v);
  std::vector<char> alive(n, 1);
  std::vector<char> edge_alive(h.num_edges(), 1);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (NodeId v = 0; v < n; ++v) heap.emplace(deg[v], v);

  double w_alive = h.total_weight();
  std::size_t count = n;
  double best_density = w_alive / static_cast<double>(count);
  std::vector<NodeId> removal_order;
  removal_order.reserve(n);
  std::size_t best_removed = 0;

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (!alive[v] || d != deg[v]) continue;
    alive[v] = 0;
    removal_order.push_back(v);
    --count;
    for (EdgeId e : h.IncidentEdges(v)) {
      if (!edge_alive[e]) continue;
      edge_alive[e] = 0;
      w_alive -= h.edge(e).w;
      for (NodeId u : h.edge(e).nodes) {
        if (u != v && alive[u]) {
          deg[u] -= h.edge(e).w;
          heap.emplace(deg[u], u);
        }
      }
    }
    if (count > 0) {
      const double density = w_alive / static_cast<double>(count);
      if (density > best_density) {
        best_density = density;
        best_removed = removal_order.size();
      }
    }
  }
  std::fill(out.in_set.begin(), out.in_set.end(), 1);
  for (std::size_t i = 0; i < best_removed; ++i) {
    out.in_set[removal_order[i]] = 0;
  }
  out.density = best_density;
  return out;
}

HyperDensestResult HyperDensestBrute(const Hypergraph& h) {
  const NodeId n = h.num_nodes();
  KCORE_CHECK_MSG(n >= 1 && n <= 20, "brute hyper densest needs n <= 20");
  HyperDensestResult out;
  double best = -1.0;
  std::uint32_t best_mask = 0;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    double w = 0.0;
    for (const HEdge& e : h.edges()) {
      bool in = true;
      for (NodeId v : e.nodes) {
        if (!(mask >> v & 1u)) {
          in = false;
          break;
        }
      }
      if (in) w += e.w;
    }
    const double density = w / __builtin_popcount(mask);
    if (density > best + 1e-12 ||
        (density > best - 1e-12 &&
         __builtin_popcount(mask) > __builtin_popcount(best_mask))) {
      best = density;
      best_mask = mask;
    }
  }
  out.in_set.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) out.in_set[v] = (best_mask >> v) & 1u;
  out.density = best;
  return out;
}

std::vector<double> HyperCorenessBrute(const Hypergraph& h) {
  const NodeId n = h.num_nodes();
  KCORE_CHECK_MSG(n <= 16, "brute hyper coreness needs n <= 16");
  std::vector<double> core(n, 0.0);
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<double> deg(n, 0.0);
    for (const HEdge& e : h.edges()) {
      bool in = true;
      for (NodeId v : e.nodes) {
        if (!(mask >> v & 1u)) {
          in = false;
          break;
        }
      }
      if (in) {
        for (NodeId v : e.nodes) deg[v] += e.w;
      }
    }
    double min_deg = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n; ++v) {
      if (mask >> v & 1u) min_deg = std::min(min_deg, deg[v]);
    }
    for (NodeId v = 0; v < n; ++v) {
      if ((mask >> v & 1u) && min_deg > core[v]) core[v] = min_deg;
    }
  }
  return core;
}

}  // namespace kcore::hyper
