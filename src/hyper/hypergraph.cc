#include "hyper/hypergraph.h"

#include <algorithm>

#include "util/logging.h"

namespace kcore::hyper {

HypergraphBuilder& HypergraphBuilder::AddEdge(std::vector<NodeId> nodes,
                                              double w) {
  KCORE_CHECK_MSG(!nodes.empty(), "empty hyperedge");
  KCORE_CHECK_MSG(w >= 0.0, "negative hyperedge weight");
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (NodeId v : nodes) {
    KCORE_CHECK_MSG(v < n_, "hyperedge node out of range");
  }
  edges_.push_back(HEdge{std::move(nodes), w});
  return *this;
}

Hypergraph HypergraphBuilder::Build() && {
  Hypergraph h;
  h.n_ = n_;
  h.edges_ = std::move(edges_);
  h.off_.assign(static_cast<std::size_t>(n_) + 1, 0);
  h.deg_.assign(n_, 0.0);
  for (const HEdge& e : h.edges_) {
    h.rank_ = std::max(h.rank_, e.nodes.size());
    h.total_weight_ += e.w;
    for (NodeId v : e.nodes) {
      ++h.off_[v + 1];
      h.deg_[v] += e.w;
    }
  }
  for (NodeId v = 0; v < n_; ++v) h.off_[v + 1] += h.off_[v];
  h.inc_.resize(h.off_[n_]);
  std::vector<std::size_t> cursor(h.off_.begin(), h.off_.end() - 1);
  for (EdgeId e = 0; e < h.edges_.size(); ++e) {
    for (NodeId v : h.edges_[e].nodes) h.inc_[cursor[v]++] = e;
  }
  return h;
}

double Hypergraph::InducedEdgeWeight(std::span<const char> in_set) const {
  KCORE_CHECK(in_set.size() == n_);
  double w = 0.0;
  for (const HEdge& e : edges_) {
    bool inside = true;
    for (NodeId v : e.nodes) {
      if (!in_set[v]) {
        inside = false;
        break;
      }
    }
    if (inside) w += e.w;
  }
  return w;
}

double Hypergraph::InducedDensity(std::span<const char> in_set) const {
  std::size_t size = 0;
  for (char c : in_set) size += c ? 1 : 0;
  if (size == 0) return 0.0;
  return InducedEdgeWeight(in_set) / static_cast<double>(size);
}

Hypergraph FromGraph(const graph::Graph& g) {
  HypergraphBuilder b(g.num_nodes());
  for (const graph::Edge& e : g.edges()) {
    if (e.u == e.v) {
      b.AddEdge({e.u}, e.w);
    } else {
      b.AddEdge({e.u, e.v}, e.w);
    }
  }
  return std::move(b).Build();
}

Hypergraph RandomUniform(NodeId n, std::size_t m, std::size_t r,
                         util::Rng& rng) {
  KCORE_CHECK(r >= 1 && r <= n);
  HypergraphBuilder b(n);
  std::vector<NodeId> members;
  for (std::size_t e = 0; e < m; ++e) {
    members.clear();
    while (members.size() < r) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (std::find(members.begin(), members.end(), v) == members.end()) {
        members.push_back(v);
      }
    }
    b.AddEdge(members, 1.0);
  }
  return std::move(b).Build();
}

}  // namespace kcore::hyper
