#include "distsim/transport.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <span>

#include "distsim/process_transport.h"
#include "distsim/thread_pool.h"
#include "util/logging.h"
#include "util/wire.h"

namespace kcore::distsim {

namespace {

using graph::NodeId;

// Runs body(shard, begin, end) over the context's partition — on the pool
// when one is attached (a full barrier: every shard finishes before this
// returns), inline on the caller otherwise. Note the pool skips empty
// shards' bodies; transports must not rely on a body running for them.
void RunSharded(
    const ExchangeContext& ctx,
    const std::function<void(int, std::uint64_t, std::uint64_t)>& body) {
  if (ctx.pool != nullptr) {
    ctx.pool->ParallelFor(
        std::span<const std::uint64_t>(ctx.bounds,
                                       static_cast<std::size_t>(ctx.num_shards) + 1),
        body);
  } else {
    for (int s = 0; s < ctx.num_shards; ++s) {
      body(s, ctx.bounds[s], ctx.bounds[s + 1]);
    }
  }
}

}  // namespace

std::uint64_t WireMessageBytes(std::uint64_t from, const OutMessage& m) {
  return util::VarintSize(from) + util::VarintSize(m.to) +
         util::VarintSize(m.payload.size()) + 8 * m.payload.size();
}

std::uint64_t WireBroadcastBytes(std::uint64_t v, const Payload& p) {
  return util::VarintSize(v) + util::VarintSize(p.size()) + 8 * p.size();
}

void Transport::PrepareRankCompute(const RankComputeSetup& setup) {
  (void)setup;
  KCORE_CHECK_MSG(false, "transport '" << name()
                             << "' does not support per-rank compute");
}

RankRoundResult Transport::RankStep(int round) {
  (void)round;
  KCORE_CHECK_MSG(false, "transport '" << name()
                             << "' does not support per-rank compute");
  return RankRoundResult{};
}

void Transport::CollectRankState(Protocol& p, std::vector<Payload>& prev_bcast,
                                 std::vector<char>& prev_has,
                                 std::vector<char>& halted) {
  (void)p;
  (void)prev_bcast;
  (void)prev_has;
  (void)halted;
  KCORE_CHECK_MSG(false, "transport '" << name()
                             << "' does not support per-rank compute");
}

// (Empty cells [b, b) can never own anything — upper_bound steps past
// them.)
int OwnerIndex(const std::uint64_t* bounds, int cells, NodeId u) {
  const std::uint64_t* end = bounds + cells + 1;
  return static_cast<int>(
             std::upper_bound(bounds, end, static_cast<std::uint64_t>(u)) -
             bounds) -
         1;
}

void CountSegmentBytes(const std::uint64_t* bounds, int cells,
                       const std::vector<std::vector<OutMessage>>& outbox,
                       std::uint64_t begin, std::uint64_t end,
                       std::uint64_t* row) {
  for (std::uint64_t v = begin; v < end; ++v) {
    for (const OutMessage& m : outbox[v]) {
      row[OwnerIndex(bounds, cells, m.to)] += WireMessageBytes(v, m);
    }
  }
}

void PackSegments(const std::uint64_t* bounds, int cells,
                  std::vector<std::vector<OutMessage>>& outbox,
                  std::uint64_t begin, std::uint64_t end,
                  util::WireWriter* seg) {
  for (std::uint64_t v = begin; v < end; ++v) {
    for (OutMessage& m : outbox[v]) {
      util::WireWriter& w = seg[OwnerIndex(bounds, cells, m.to)];
      w.Varint(v);
      w.Varint(m.to);
      w.Varint(m.payload.size());
      for (double x : m.payload) w.Double(x);
    }
    outbox[v].clear();
  }
}

void DecodeSegment(const std::uint8_t* data, std::uint64_t len,
                   std::uint64_t lo, std::uint64_t hi,
                   std::vector<std::vector<InMessage>>& inbox) {
  util::WireReader r(data, len);
  while (r.remaining() > 0) {
    const NodeId from = static_cast<NodeId>(r.Varint());
    const NodeId to = static_cast<NodeId>(r.Varint());
    const std::uint64_t plen = r.Varint();
    InMessage msg;
    msg.from = from;
    msg.payload.resize(plen);
    for (std::uint64_t k = 0; k < plen; ++k) msg.payload[k] = r.Double();
    KCORE_CHECK_MSG(to >= lo && to < hi,
                    "packed segment routed message for receiver "
                        << to << " to the wrong dst cell ["
                        << lo << ", " << hi << ")");
    inbox[to].push_back(std::move(msg));
  }
}

void ClearAndReserveInboxes(const ExchangeContext& ctx, std::uint64_t begin,
                            std::uint64_t end) {
  auto& inbox = *ctx.inbox;
  const std::size_t n = ctx.n;
  for (std::uint64_t u = begin; u < end; ++u) {
    inbox[u].clear();
    if (ctx.counts != nullptr) {
      // Pre-size from the census columns (live rows only).
      std::uint32_t cnt = 0;
      for (int s = 0; s < ctx.num_shards; ++s) {
        if (ctx.shard_sent[s]) {
          cnt += ctx.counts[static_cast<std::size_t>(s) * n + u];
        }
      }
      inbox[u].reserve(cnt);
    }
  }
}

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSharedMemory:
      return "shared";
    case TransportKind::kSerialized:
      return "serialized";
    case TransportKind::kProcess:
      return "process";
  }
  return "unknown";
}

bool ParseTransportKind(std::string_view name, TransportKind* out) {
  if (name == "shared") {
    *out = TransportKind::kSharedMemory;
    return true;
  }
  if (name == "serialized") {
    *out = TransportKind::kSerialized;
    return true;
  }
  if (name == "process") {
    *out = TransportKind::kProcess;
    return true;
  }
  return false;
}

std::unique_ptr<Transport> MakeTransport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSharedMemory:
      return std::make_unique<SharedMemoryTransport>();
    case TransportKind::kSerialized:
      return std::make_unique<SerializedTransport>();
    case TransportKind::kProcess:
      return std::make_unique<ProcessTransport>();
  }
  KCORE_CHECK_MSG(false, "unknown TransportKind");
  return nullptr;
}

WireVolume SharedMemoryTransport::Exchange(const ExchangeContext& ctx) {
  auto& outbox = *ctx.outbox;
  auto& inbox = *ctx.inbox;

  if (ctx.counts == nullptr) {
    // Sequential delivery: iterate senders in id order so each inbox ends
    // up sorted by sender id. Payloads move; nothing is copied.
    for (auto& ib : inbox) ib.clear();
    for (NodeId v = 0; v < ctx.n; ++v) {
      for (OutMessage& m : outbox[v]) {
        inbox[m.to].push_back(InMessage{v, std::move(m.payload)});
      }
      outbox[v].clear();
    }
    return WireVolume{};
  }

  // Offset pass, sharded by RECEIVER: turn each receiver's per-shard
  // counts column into running block offsets (shard s's messages to u
  // start after every earlier shard's) and pre-size the inbox. Clearing
  // stale inboxes rides along. (Receiver sweeps are per-id independent,
  // so ANY partition works here — sharing the sender boundaries is just
  // uniformity.)
  const std::size_t n = ctx.n;
  RunSharded(ctx, [&](int, std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t u = b; u < e; ++u) {
      std::uint32_t run = 0;
      for (int s = 0; s < ctx.num_shards; ++s) {
        if (!ctx.shard_sent[s]) continue;
        std::uint32_t& c = ctx.counts[static_cast<std::size_t>(s) * n + u];
        const std::uint32_t count = c;
        c = run;
        run += count;
      }
      inbox[u].clear();
      inbox[u].resize(run);
    }
  });

  // Write pass, sharded by SENDER on the same boundaries the census
  // counted with (CRITICAL — the offset rows are per census shard): move
  // every message into its receiver's pre-sized slot. Within a shard
  // senders run in ascending id order and shard blocks are laid out in
  // shard order, so each inbox comes out sorted by sender id —
  // bit-identical to the sequential push_back delivery. Writes to a given
  // inbox land at disjoint indices and never reallocate: race-free.
  RunSharded(ctx, [&](int shard, std::uint64_t b, std::uint64_t e) {
    std::uint32_t* cursor = ctx.counts + static_cast<std::size_t>(shard) * n;
    for (std::uint64_t v = b; v < e; ++v) {
      for (OutMessage& m : outbox[v]) {
        InMessage& slot = inbox[m.to][cursor[m.to]++];
        slot.from = static_cast<NodeId>(v);
        slot.payload = std::move(m.payload);
      }
      outbox[v].clear();
    }
  });
  return WireVolume{};
}

WireVolume SerializedTransport::Exchange(const ExchangeContext& ctx) {
  auto& outbox = *ctx.outbox;
  auto& inbox = *ctx.inbox;
  const int S = ctx.num_shards;

  seg_bytes_.assign(static_cast<std::size_t>(S) * S, 0);
  send_displ_.assign(static_cast<std::size_t>(S) * (S + 1), 0);
  send_buf_.resize(S);
  recv_buf_.resize(S);
  recv_bytes_.assign(S, 0);

  // Count pass, sharded by SRC shard: exact wire bytes this shard sends
  // to every dst shard. (Empty shards keep their zeroed row.)
  RunSharded(ctx, [&](int s, std::uint64_t b, std::uint64_t e) {
    CountSegmentBytes(ctx.bounds, S, outbox, b, e,
                      seg_bytes_.data() + static_cast<std::size_t>(s) * S);
  });

  // Displacement rows (prefix sums per src shard) + send-buffer sizing on
  // the caller — the O(S^2) bookkeeping an MPI backend would feed
  // straight into MPI_Alltoallv's sdispls.
  std::uint64_t total_bytes = 0;
  for (int s = 0; s < S; ++s) {
    std::uint64_t run = 0;
    for (int d = 0; d < S; ++d) {
      send_displ_[static_cast<std::size_t>(s) * (S + 1) + d] = run;
      run += seg_bytes_[static_cast<std::size_t>(s) * S + d];
    }
    send_displ_[static_cast<std::size_t>(s) * (S + 1) + S] = run;
    send_buf_[s].resize(run);
    total_bytes += run;
  }

  // Pack pass, sharded by SRC shard: encode every message at its dst
  // segment's cursor (PackSegments walks senders in ascending id order,
  // so segments come out sender-ordered). Outboxes are consumed here.
  RunSharded(ctx, [&](int s, std::uint64_t b, std::uint64_t e) {
    std::vector<util::WireWriter> seg;
    seg.reserve(S);
    for (int d = 0; d < S; ++d) {
      std::uint8_t* base =
          send_buf_[s].data() +
          send_displ_[static_cast<std::size_t>(s) * (S + 1) + d];
      seg.emplace_back(base,
                       base + seg_bytes_[static_cast<std::size_t>(s) * S + d]);
    }
    PackSegments(ctx.bounds, S, outbox, b, e, seg.data());
  });

  // Exchange, sharded by DST shard: gather every src's (src -> dst)
  // segment into one contiguous receive buffer, src shards in order —
  // the alltoallv. In-process this is a memcpy; over MPI it would be the
  // collective itself, with identical counts and displacements.
  RunSharded(ctx, [&](int d, std::uint64_t, std::uint64_t) {
    std::uint64_t total = 0;
    for (int s = 0; s < S; ++s) {
      total += seg_bytes_[static_cast<std::size_t>(s) * S + d];
    }
    recv_buf_[d].resize(total);
    std::uint64_t off = 0;
    for (int s = 0; s < S; ++s) {
      const std::uint64_t len = seg_bytes_[static_cast<std::size_t>(s) * S + d];
      if (len > 0) {
        std::memcpy(recv_buf_[d].data() + off,
                    send_buf_[s].data() +
                        send_displ_[static_cast<std::size_t>(s) * (S + 1) + d],
                    len);
      }
      off += len;
    }
  });

  // Unpack pass, sharded by DST shard: decode segments in src-shard order
  // and append per receiver. Segment order (ascending src shard) x
  // in-segment order (ascending sender id) = globally ascending sender
  // order per inbox — the conformance contract.
  RunSharded(ctx, [&](int d, std::uint64_t b, std::uint64_t e) {
    ClearAndReserveInboxes(ctx, b, e);
    std::uint64_t off = 0;
    for (int s = 0; s < S; ++s) {
      const std::uint64_t len = seg_bytes_[static_cast<std::size_t>(s) * S + d];
      DecodeSegment(recv_buf_[d].data() + off, len, b, e, inbox);
      off += len;
    }
    recv_bytes_[d] = off;
  });

  std::uint64_t received = 0;
  for (int d = 0; d < S; ++d) received += recv_bytes_[d];
  KCORE_CHECK_MSG(received == total_bytes,
                  "serialized exchange lost bytes: packed "
                      << total_bytes << ", decoded " << received);
  return WireVolume{static_cast<std::size_t>(total_bytes),
                    static_cast<std::size_t>(received)};
}

}  // namespace kcore::distsim
