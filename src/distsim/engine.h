// Synchronous round-based message-passing simulator for the LOCAL model.
//
// The paper's setting (Section II): each node is a processor knowing only
// its incident edges (and weights) and n (or an upper bound); computation
// proceeds in synchronous rounds; a node sends the same message to (a
// subset of) its neighbors per round (broadcast model), plus we support
// point-to-point sends for the tree phases of Algorithm 4/6. The engine
//
//   * enforces locality: a protocol only sees its own node's state, its
//     incident edge list, and the messages delivered this round;
//   * is deterministic: nodes are processed in id order sequentially, or
//     partitioned over threads with strictly disjoint writes (results are
//     bit-identical either way — tested);
//   * accounts for communication: per-round message count, payload
//     entries, and the number of distinct broadcast values (the knob the
//     paper's Λ-discretization optimizes for CONGEST-size messages).
//
// Execution model per round t >= 1 — two phases, BOTH sharded over the
// engine's persistent thread pool (static contiguous node-id shards;
// sequential when num_threads <= 1 or the graph is below the parallel
// cutoff — kDefaultParallelCutoff nodes unless SetParallelCutoff says
// otherwise). Shards default to equal node counts; SetShardBalancing(true)
// switches to degree-weighted boundaries (cost degree + 1 per live node,
// built once at Start and optionally rebuilt from the halted census every
// SetRebalanceInterval rounds), so on heavy-tailed graphs the hub shard
// stops dominating the round. Every partition is a fixed ascending
// contiguous split and both collect passes reuse the round's boundaries,
// so results stay bit-identical whichever partitioner is active:
//   1. Compute: Protocol::Round(ctx) runs for every non-halted node; it
//      sees every neighbor's round-(t-1) broadcast plus any point-to-point
//      payloads addressed to it, may stage a new broadcast and p2p sends
//      (visible to receivers in round t+1), and may Halt() the node.
//      Per-node writes are disjoint by the Protocol contract.
//   2. Collect: the round census (message/entry counts, max message size,
//      distinct broadcast values, active nodes) is accumulated as
//      per-shard partials merged in shard order — pass 1 also counts
//      per-(shard, receiver) p2p in-degrees while censusing senders. The
//      staged p2p traffic is then handed to the engine's Transport
//      (SetTransport; transport.h), which moves every OutMessage into its
//      receiver's inbox sorted by sender id:
//        * SharedMemoryTransport (default): zero-copy two-pass delivery —
//          an offset pass turns the census count rows into running block
//          offsets and pre-sizes inboxes, then a write pass (sharded by
//          sender, same boundaries as pass 1) moves each payload into its
//          precomputed slot. Shard blocks land in sender-shard order and
//          senders run in ascending id order within a shard, so every
//          inbox ends up sorted by sender id, bit-identical to the
//          sequential delivery at any thread count.
//        * SerializedTransport: the MPI-shaped path — each src shard
//          measures per-dst-shard byte counts (count row), prefix-sums
//          them into displacements, packs its messages into contiguous
//          per-(src-shard, dst-shard) byte buffers (util::Wire varints +
//          fixed64 payload entries), the buffers are exchanged
//          alltoallv-style into one contiguous receive buffer per dst
//          shard, and each dst shard deserializes its segments in
//          src-shard order — the same sender-id-sorted inboxes, through
//          exactly the counts/displacements/pack/unpack contract an
//          MPI_Alltoallv backend needs, at any thread count. RoundStats
//          reports the packed bytes as bytes_sent / bytes_received.
//        * ProcessTransport (process_transport.h): the same contract
//          with the address-space boundary made real — worker processes
//          forked per rank (SetRankCount) exchange the packed segments
//          over Unix-domain socketpairs; see docs/ARCHITECTURE.md and
//          docs/TRANSPORTS.md for the rank topology and frame layout.
//      Broadcasts stay in the engine's double-buffered shared arrays
//      under every transport in this (default) in-engine compute mode;
//      under a rank topology the census additionally prices the CONGEST
//      broadcast fan-out — once per remote neighbor-owning rank — into
//      RoundStats::bcast_bytes_*. With SetPerRankCompute the fan-out is
//      real: compute moves into the rank workers, each round's
//      broadcasts and p2p segments cross process boundaries peer to
//      peer, and the engine merely merges the workers' RoundStats
//      partials in rank order (bit-identical results — the conformance
//      battery pins it). Rounds that stage no p2p traffic never invoke
//      the transport at all.
// Protocol::Init(ctx) stages the round-0 broadcasts.
//
// Randomness: NodeContext::Rng() hands each node its own util::Rng stream,
// keyed-forked from the engine's master seed (SetSeed to override; streams
// materialize lazily on the first draw, so deterministic protocols pay
// nothing). A node's draw sequence depends only on (seed, node id, #draws
// by that node), never on sharding or thread count, so randomized
// protocols keep the bit-determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>  // std::once_flag
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace kcore::util {
class WireAppender;
class WireReader;
}  // namespace kcore::util

namespace kcore::distsim {

using graph::NodeId;

// A message payload: a short sequence of real values. The paper's
// protocols send O(1) reals per message (Section II, "Message Content and
// Size"); the engine counts entries so benches can report message sizes.
using Payload = std::vector<double>;

struct InMessage {
  NodeId from = 0;
  Payload payload;
};

// A staged point-to-point send, sitting in the sender's outbox until the
// round's transport exchange delivers it (transport.h).
struct OutMessage {
  NodeId to = 0;
  Payload payload;
};

struct RoundStats {
  int round = 0;
  std::size_t active_nodes = 0;     // nodes that executed Compute
  std::size_t messages = 0;         // (sender, receiver) deliveries staged
  std::size_t entries = 0;          // doubles staged across all messages
  std::size_t distinct_values = 0;  // distinct first-entry broadcast values
  // Wire volume of this round's p2p exchange as reported by the engine's
  // Transport: bytes packed onto / decoded off the wire. Zero for the
  // zero-copy SharedMemoryTransport (nothing is serialized) and for
  // rounds with no p2p traffic; equal to each other — and independent of
  // thread count — for SerializedTransport.
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  // CONGEST broadcast fan-out accounting, populated only under a rank
  // topology (num_ranks > 1; all zero otherwise, broadcasts being free
  // shared-memory reads at one rank). bcast_bytes_sent is the wire
  // volume of shipping each staged broadcast ONCE PER remote
  // neighbor-owning RANK — the fan-out rule the per-rank backend
  // actually pays (WireBroadcastBytes in transport.h);
  // bcast_bytes_per_neighbor is the naive once-per-remote-neighbor
  // volume a broadcast-unaware backend would pay. On dense graphs the
  // former is strictly smaller (many neighbors share a rank). Kept out
  // of bytes_sent, which stays p2p-only (its rank-independence is part
  // of the conformance contract). With in-engine compute the fields are
  // analytic (what the exchange WOULD cost); with per-rank compute
  // (SetPerRankCompute) they are measured off the actual segments — the
  // conformance battery pins the two equal.
  std::size_t bcast_bytes_sent = 0;
  std::size_t bcast_bytes_received = 0;
  std::size_t bcast_bytes_per_neighbor = 0;
};

// Default master seed for the per-node RNG streams ("kcore" in ASCII).
// Every driver's seed parameter defaults to this one constant so runs
// replay by construction and the magic number lives in exactly one place.
inline constexpr std::uint64_t kDefaultMasterSeed = 0x6b636f7265ULL;

struct Totals {
  int rounds = 0;
  std::size_t messages = 0;
  std::size_t entries = 0;
  std::size_t max_entries_per_message = 0;
  // Summed per-round transport wire volume (see RoundStats::bytes_sent).
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  // Summed broadcast fan-out volume (see RoundStats::bcast_bytes_sent).
  std::size_t bcast_bytes_sent = 0;
  std::size_t bcast_bytes_received = 0;
  std::size_t bcast_bytes_per_neighbor = 0;
};

class NodeRuntime;

// The per-node view handed to a protocol. Only local information is
// reachable from here.
class NodeContext {
 public:
  NodeId id() const { return id_; }
  int round() const { return round_; }
  // Number of nodes in the network — the paper assumes every node knows n
  // (or an upper bound), which Theorem I.1 uses to pick T.
  NodeId n() const;

  // The node's incident edges (neighbor id + weight), id-sorted.
  std::span<const graph::AdjEntry> neighbors() const;
  std::size_t degree() const { return neighbors().size(); }
  double weighted_degree() const;

  // Broadcast of neighbor #i (index into neighbors()) from the previous
  // round, or nullptr if that neighbor did not broadcast / has halted.
  const Payload* NeighborBroadcast(std::size_t i) const;

  // Point-to-point messages delivered this round, sorted by sender id.
  std::span<const InMessage> Messages() const;

  // Stages this node's broadcast for the next round (replaces any
  // previously staged one this round).
  void Broadcast(Payload p);

  // Stages a point-to-point message to a neighbor (must be adjacent).
  void Send(NodeId neighbor, Payload p);

  // This node's private random stream (seeded from the engine's master
  // seed, independent per node). Draws are part of the node's state: only
  // node v's compute may touch v's stream — the same disjoint-writes rule
  // the rest of the per-node state follows.
  util::Rng& Rng();

  // Stops participating: no further Compute calls, no broadcasts.
  void Halt();

 private:
  friend class NodeRuntime;
  NodeContext(NodeRuntime* rt, NodeId id, int round) noexcept
      : rt_(rt), id_(id), round_(round) {}
  NodeRuntime* rt_;
  NodeId id_;
  int round_;
};

// What a NodeContext delegates to: the engine's full-graph state
// (Engine privately implements this), or a rank worker's slice state
// (the per-rank compute path of process_transport.cc). Protocol code is
// oblivious to which — NodeContext is its only window, so the same
// Init/Round bodies run unchanged in-engine or inside a forked worker
// that holds just its node slice. The virtuals are private: only
// NodeContext may call them, and only a runtime may mint contexts
// (MakeContext), so the locality guarantee cannot be bypassed by
// holding a runtime pointer.
class NodeRuntime {
 public:
  virtual ~NodeRuntime() = default;

 protected:
  NodeContext MakeContext(NodeId id, int round) noexcept;

 private:
  friend class NodeContext;
  virtual NodeId RtN() const = 0;
  virtual std::span<const graph::AdjEntry> RtNeighbors(NodeId v) const = 0;
  virtual double RtWeightedDegree(NodeId v) const = 0;
  virtual const Payload* RtNeighborBroadcast(NodeId v, std::size_t i) const = 0;
  virtual std::span<const InMessage> RtMessages(NodeId v) const = 0;
  virtual void RtBroadcast(NodeId v, Payload p) = 0;
  virtual void RtSend(NodeId v, NodeId neighbor, Payload p) = 0;
  virtual util::Rng& RtRng(NodeId v) = 0;
  virtual void RtHalt(NodeId v) = 0;
};

inline NodeContext NodeRuntime::MakeContext(NodeId id, int round) noexcept {
  return NodeContext(this, id, round);
}

// CONGEST / locality enforcement shared by the engine's runtime and the
// worker-side slice runtime (process_transport.cc), so both compute
// modes fail the same way with the same message. KCORE_CHECK-fail on
// violation; no-ops when the limit is 0 / the target is adjacent.
void CheckPayloadLimit(std::size_t limit, std::size_t size, bool broadcast);
void CheckSendAdjacent(std::span<const graph::AdjEntry> nbrs, NodeId from,
                       NodeId to);

// A distributed protocol: per-node init and per-node round logic. The
// protocol object owns all per-node state (indexed by node id). Both
// Init(ctx) and Round(ctx) may be sharded over the engine's thread pool,
// so for node v they must touch only v's slots — the disjoint-writes
// contract the determinism guarantee rests on.
class Protocol {
 public:
  virtual ~Protocol() = default;
  virtual void Init(NodeContext& ctx) = 0;
  virtual void Round(NodeContext& ctx) = 0;

  // Per-rank compute opt-in (Engine::SetPerRankCompute): a protocol
  // that returns true here must round-trip node v's COMPLETE per-node
  // state through Save/LoadNodeState — every slot Init/Round reads or
  // writes for v beyond the broadcasts, messages, and RNG stream the
  // runtime carries. The engine ships each node's state to its owning
  // rank worker at Start and fetches it back via Engine::FetchRankState;
  // a lossy round-trip diverges from the in-engine path and fails the
  // conformance battery. The default Save/Load abort, so forgetting an
  // override cannot silently drop state.
  virtual bool SupportsRankCompute() const { return false; }
  virtual void SaveNodeState(NodeId v, util::WireAppender& out) const;
  virtual void LoadNodeState(NodeId v, util::WireReader& in);
};

class ThreadPool;
class Transport;

class Engine : private NodeRuntime {
 public:
  // Graphs below this many nodes run sequentially even when num_threads >
  // 1: the pool's dispatch barrier costs more than the phases themselves
  // on tiny inputs. Benches and tests lower it via SetParallelCutoff to
  // force threading on small graphs.
  static constexpr NodeId kDefaultParallelCutoff = 256;

  // num_threads <= 1 means sequential; > 1 backs the compute phase of
  // every round with a persistent ThreadPool (workers live for the
  // engine's lifetime, not per round). The graph must outlive the engine.
  explicit Engine(const graph::Graph& g, int num_threads = 1);

  // Overrides kDefaultParallelCutoff (0 = always shard when num_threads >
  // 1). Must precede Start().
  void SetParallelCutoff(NodeId cutoff);

  // Degree-weighted shard balancing: instead of equal-count node-id
  // shards, boundaries are chosen (ThreadPool::WeightedShardBounds, cost
  // degree + 1 per node) so each shard carries about the same compute +
  // collect work — the fix for heavy-tailed graphs where whichever shard
  // holds the hubs otherwise does most of the round. Results are
  // bit-identical with balancing on or off (the determinism contract
  // holds for any contiguous ascending partition); only per-shard load
  // changes. Must precede Start(). Default off.
  void SetShardBalancing(bool enabled);
  bool shard_balancing() const { return balance_shards_; }

  // With balancing on, rebuild the boundaries every `rounds` rounds from
  // the halted census (halted nodes weigh 1 — they are still scanned by
  // the collect sweep — live nodes degree + 1), so long-running protocols
  // that halt hubs early re-spread the surviving load. 0 (default) keeps
  // the Start()-time boundaries for the whole run. Must precede Start().
  void SetRebalanceInterval(int rounds);

  // Replaces the transport that delivers staged p2p traffic each round
  // (default: SharedMemoryTransport — the zero-copy in-place path). Use
  // MakeTransport(TransportKind) from transport.h, or hand in a custom
  // implementation. Must precede Start(); the transport must not be null.
  // Results are bit-identical for every conforming transport — only the
  // wire accounting (RoundStats::bytes_*) and the exchange mechanics
  // differ.
  void SetTransport(std::unique_ptr<Transport> transport);
  const Transport& transport() const { return *transport_; }

  // Rank topology for multi-process transports: node ids are split into
  // `ranks` equal contiguous ownership ranges (the same arithmetic as
  // the equal-count thread shards, but FIXED for the whole run and
  // independent of the per-round partition — an 8-thread engine can run
  // 2 ranks, a sequential engine 8). Engine::Start() hands the topology
  // to the transport's Start() hook and every ExchangeContext carries
  // it; in-process transports ignore it, so results are bit-identical
  // at any rank count by the same contract that covers thread counts.
  // Must precede Start(). Default 1.
  void SetRankCount(int ranks);
  int num_ranks() const { return num_ranks_; }

  // Per-rank compute (ROADMAP item 1): each rank WORKER owns its node
  // slice end to end. At Start() the engine ships every worker its graph
  // slice (wire-serialized, or loaded worker-side via
  // graph/binio.h LoadBinarySlice when SetGraphPath names the source
  // file), its nodes' protocol state (Protocol::SaveNodeState), the
  // master seed (workers rebuild the identical per-node RNG streams via
  // util::Rng::ForkKeyed), and the payload limit. Each round the worker
  // runs the compute phase over its slice locally, exchanges p2p
  // segments AND the once-per-neighbor-owning-rank broadcast fan-out
  // peer to peer, and returns only a RoundStats partial; this engine
  // degrades to a coordinator that drives rounds and merges partials in
  // fixed rank order — results stay bit-identical to in-engine compute
  // (the conformance battery pins it). Requires a transport whose
  // SupportsRankCompute() is true (ProcessTransport) and a protocol
  // implementing the Save/LoadNodeState hooks. While enabled, halted(v)
  // and inbox(v) reflect worker state only after FetchRankState().
  // Must precede Start(). Default off.
  void SetPerRankCompute(bool enabled);
  bool per_rank_compute() const { return per_rank_compute_; }

  // Optional: the binary-format file (graph/binio.h) this engine's
  // graph was loaded from. With per-rank compute, workers then mmap and
  // load their own slice (LoadBinarySlice) instead of receiving a
  // wire-serialized copy — the ingestion path a multi-machine deployment
  // would use. The file must describe exactly the engine's graph.
  // Must precede Start().
  void SetGraphPath(std::string path);
  const std::string& graph_path() const { return graph_path_; }

  // Per-rank compute only (no-op otherwise): pulls every node's
  // protocol state (Protocol::LoadNodeState), halted flag, and current
  // broadcast back from its owning rank worker into this process, so
  // drivers can read per-node protocol members after (or between)
  // rounds. Callable any time after Start().
  void FetchRankState(Protocol& p);
  // The node→rank ownership map: num_ranks() + 1 ascending boundaries,
  // rank r owns [rank_bounds()[r], rank_bounds()[r+1]). Built at
  // Start(); empty before.
  std::span<const std::uint64_t> rank_bounds() const { return rank_bounds_; }

  // CONGEST enforcement: once set, staging any message with more than
  // `limit` entries aborts (KCORE_CHECK). The paper's Section II protocols
  // use O(1) reals per message; tests arm this to PROVE compliance rather
  // than merely count it. 0 disables the check (default).
  void SetPayloadLimit(std::size_t limit) { payload_limit_ = limit; }

  // Master seed for the per-node RNG streams (NodeContext::Rng). Must be
  // called before Start; the default reproduces unless overridden, so
  // every run is replayable by construction.
  void SetSeed(std::uint64_t seed);
  std::uint64_t seed() const { return master_seed_; }
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Runs Init (staging round-0 broadcasts) for all nodes.
  void Start(Protocol& p);

  // Executes one synchronous round; returns its stats.
  RoundStats Step(Protocol& p);

  // Start + `rounds` Steps.
  void Run(Protocol& p, int rounds);

  // Steps until a round changes nothing (no broadcasts staged differ from
  // the previous round and no p2p messages) or max_rounds is hit.
  // Returns the number of executed rounds. Used by the run-to-convergence
  // baseline (Montresor et al.).
  int RunUntilQuiescent(Protocol& p, int max_rounds);

  const graph::Graph& graph() const { return graph_; }
  int num_threads() const { return num_threads_; }
  const std::vector<RoundStats>& history() const { return history_; }
  Totals totals() const;

  bool halted(NodeId v) const { return halted_[v] != 0; }
  std::size_t num_halted() const;

  // The p2p messages delivered to v this round, sorted by sender id —
  // the same span NodeContext::Messages() hands the protocol, exposed so
  // conformance tests can compare transports' inboxes bit for bit.
  std::span<const InMessage> inbox(NodeId v) const { return inbox_[v]; }

 private:
  // NodeRuntime: the full-graph implementation NodeContext delegates to
  // when compute runs in-engine (per-rank workers substitute their own
  // slice runtime in process_transport.cc).
  NodeId RtN() const override;
  std::span<const graph::AdjEntry> RtNeighbors(NodeId v) const override;
  double RtWeightedDegree(NodeId v) const override;
  const Payload* RtNeighborBroadcast(NodeId v, std::size_t i) const override;
  std::span<const InMessage> RtMessages(NodeId v) const override;
  void RtBroadcast(NodeId v, Payload p) override;
  void RtSend(NodeId v, NodeId neighbor, Payload p) override;
  util::Rng& RtRng(NodeId v) override;
  void RtHalt(NodeId v) override;

  // Per-shard census accumulator (defined in engine.cc).
  struct CollectPartial;

  // Both phases shard iff the same predicate holds, so a run is either
  // wholly sequential or wholly pooled.
  bool UseParallelPhases() const;
  // Returns the number of nodes that executed Init/Round in the range.
  std::size_t ComputeRange(Protocol& p, NodeId begin, NodeId end, int round);
  // Runs the round's compute sweep — sequentially, or sharded over the
  // pool when num_threads_ > 1 and the graph clears the cutoff. Both
  // Start (round 0) and Step go through here.
  void ComputePhase(Protocol& p, int round);
  // Stats census over senders in [begin, end): broadcast fan-out and
  // staged p2p messages. When counts_row != nullptr (parallel collect),
  // also tallies this shard's per-receiver p2p in-degrees into it.
  void CensusRange(NodeId begin, NodeId end, CollectPartial& part,
                   std::uint32_t* counts_row);
  // Round census (stats + count rows when parallel); returns the number
  // of staged p2p messages. Delivery is the transport's job.
  std::size_t CensusSequential(RoundStats& stats);
  std::size_t CensusParallel(RoundStats& stats);
  void CollectRound(int round);
  // One coordinator-side round under per-rank compute: drive the
  // transport's RankStep and append the merged stats to the history.
  void RankRound(int round);
  // The node-id partition active this round: shard_bounds_ when balancing
  // is on, the cached equal-count split (or the trivial single-shard
  // partition when sequential) otherwise. Census, transport exchange, and
  // the compute sweep all run on these SAME boundaries within a round.
  std::span<const std::uint64_t> ActiveBounds();

  // Builds degree-weighted shard boundaries for the pool from the current
  // halted census (see SetShardBalancing).
  void BuildShardBounds();
  // Every parallel sweep over node ids goes through these: they pick the
  // weighted boundaries when balancing is on and the equal-count split
  // otherwise, so no call site can end up on a partition that disagrees
  // with the rest of the round.
  void ForSharded(
      const std::function<void(int, std::uint64_t, std::uint64_t)>& body);
  void ReduceSharded(
      const std::function<void(int, std::uint64_t, std::uint64_t)>& body,
      const std::function<void(int)>& merge);

  const graph::Graph& graph_;
  int num_threads_;
  NodeId parallel_cutoff_ = kDefaultParallelCutoff;
  bool balance_shards_ = false;
  int rebalance_every_ = 0;
  // Active partition for the balanced path: num_shards + 1 ascending
  // boundaries, shared by the compute sweep and BOTH collect passes of a
  // round (the count/offset scheme needs one fixed partition per round).
  // Rebuilt only between rounds, never mid-round.
  std::vector<std::uint64_t> shard_bounds_;
  // Equal-count partition cache for ActiveBounds(): built once (n and the
  // shard count are fixed per engine) — {0, n} when sequential.
  std::vector<std::uint64_t> equal_bounds_;
  // Lazily created on the first parallel compute phase (Start's Init
  // sweep included) and reused for every later round; null while running
  // sequentially.
  std::unique_ptr<ThreadPool> pool_;
  // Delivers staged p2p traffic each round (SharedMemoryTransport unless
  // SetTransport overrides).
  std::unique_ptr<Transport> transport_;
  // Rank topology (SetRankCount): equal-count node→rank ownership
  // boundaries, built at Start(), fixed for the run.
  int num_ranks_ = 1;
  std::vector<std::uint64_t> rank_bounds_;
  // Per-rank compute mode (SetPerRankCompute): the engine is a
  // coordinator; these mirror the workers' merged per-round reports.
  bool per_rank_compute_ = false;
  std::string graph_path_;
  // Shipped to workers in the init frame so they track slice quiescence
  // only when RunUntilQuiescent needs it; set before Start() there.
  bool track_quiescence_ = false;
  std::size_t rank_num_halted_ = 0;
  bool rank_changed_ = false;
  int round_ = 0;

  // Double-buffered broadcasts: prev_ visible to readers, next_ written by
  // the current compute phase (each node writes only its own slot).
  std::vector<Payload> prev_bcast_, next_bcast_;
  std::vector<char> prev_has_, next_has_;

  // Point-to-point: outboxes written by sender's compute, merged into
  // inboxes between rounds.
  std::vector<std::vector<OutMessage>> outbox_;
  std::vector<std::vector<InMessage>> inbox_;

  std::vector<char> halted_;
  std::vector<RoundStats> history_;
  std::size_t max_entries_per_message_ = 0;
  std::size_t payload_limit_ = 0;

  // Nodes whose Init/Round ran in the current round's compute phase
  // (counted there, per shard, and consumed by CollectRound's stats).
  std::size_t active_this_round_ = 0;

  // Per-node RNG streams behind NodeContext::Rng, keyed forks of
  // Rng(master_seed_). Built lazily on the first draw (call_once, so
  // concurrent first draws from several shards are safe): deterministic
  // protocols that never call Rng() pay neither the O(n) forks nor the
  // per-node stream storage.
  void EnsureNodeRng();
  std::uint64_t master_seed_ = kDefaultMasterSeed;
  std::once_flag node_rng_once_;
  std::vector<util::Rng> node_rng_;

  // Parallel-collect scratch: num_shards rows of n per-receiver counts;
  // the census fills the rows of shards that staged p2p (others stay
  // stale and are masked out via shard_sent_), and the transport consumes
  // them — the shared-memory path turns each live column into running
  // block offsets and then write cursors; the serialized path reads the
  // column sums to pre-size inboxes.
  std::vector<std::uint32_t> p2p_offsets_;
  // Per-shard "staged any p2p this round" flags from the census — the
  // stale-row mask for p2p_offsets_.
  std::vector<char> shard_sent_;
  // Whether last round's parallel collect delivered anything — i.e.
  // whether inboxes need clearing before the next delivery.
  bool inboxes_dirty_ = false;
};

}  // namespace kcore::distsim
