// Synchronous round-based message-passing simulator for the LOCAL model.
//
// The paper's setting (Section II): each node is a processor knowing only
// its incident edges (and weights) and n (or an upper bound); computation
// proceeds in synchronous rounds; a node sends the same message to (a
// subset of) its neighbors per round (broadcast model), plus we support
// point-to-point sends for the tree phases of Algorithm 4/6. The engine
//
//   * enforces locality: a protocol only sees its own node's state, its
//     incident edge list, and the messages delivered this round;
//   * is deterministic: nodes are processed in id order sequentially, or
//     partitioned over threads with strictly disjoint writes (results are
//     bit-identical either way — tested);
//   * accounts for communication: per-round message count, payload
//     entries, and the number of distinct broadcast values (the knob the
//     paper's Λ-discretization optimizes for CONGEST-size messages).
//
// Execution model per round t >= 1:
//   1. Deliver: every neighbor's round-(t-1) broadcast and any
//      point-to-point payloads addressed to the node become visible.
//   2. Compute: Protocol::Round(ctx) runs for every non-halted node; it
//      may stage a new broadcast and point-to-point sends (visible to
//      receivers in round t+1) and may Halt() the node.
// Protocol::Init(ctx) stages the round-0 broadcasts.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace kcore::distsim {

using graph::NodeId;

// A message payload: a short sequence of real values. The paper's
// protocols send O(1) reals per message (Section II, "Message Content and
// Size"); the engine counts entries so benches can report message sizes.
using Payload = std::vector<double>;

struct InMessage {
  NodeId from = 0;
  Payload payload;
};

struct RoundStats {
  int round = 0;
  std::size_t active_nodes = 0;     // nodes that executed Compute
  std::size_t messages = 0;         // (sender, receiver) deliveries staged
  std::size_t entries = 0;          // doubles staged across all messages
  std::size_t distinct_values = 0;  // distinct first-entry broadcast values
};

struct Totals {
  int rounds = 0;
  std::size_t messages = 0;
  std::size_t entries = 0;
  std::size_t max_entries_per_message = 0;
};

class Engine;

// The per-node view handed to a protocol. Only local information is
// reachable from here.
class NodeContext {
 public:
  NodeId id() const { return id_; }
  int round() const { return round_; }
  // Number of nodes in the network — the paper assumes every node knows n
  // (or an upper bound), which Theorem I.1 uses to pick T.
  NodeId n() const;

  // The node's incident edges (neighbor id + weight), id-sorted.
  std::span<const graph::AdjEntry> neighbors() const;
  std::size_t degree() const { return neighbors().size(); }
  double weighted_degree() const;

  // Broadcast of neighbor #i (index into neighbors()) from the previous
  // round, or nullptr if that neighbor did not broadcast / has halted.
  const Payload* NeighborBroadcast(std::size_t i) const;

  // Point-to-point messages delivered this round, sorted by sender id.
  std::span<const InMessage> Messages() const;

  // Stages this node's broadcast for the next round (replaces any
  // previously staged one this round).
  void Broadcast(Payload p);

  // Stages a point-to-point message to a neighbor (must be adjacent).
  void Send(NodeId neighbor, Payload p);

  // Stops participating: no further Compute calls, no broadcasts.
  void Halt();

 private:
  friend class Engine;
  NodeContext(Engine* e, NodeId id, int round) noexcept
      : engine_(e), id_(id), round_(round) {}
  Engine* engine_;
  NodeId id_;
  int round_;
};

// A distributed protocol: per-node init and per-node round logic. The
// protocol object owns all per-node state (indexed by node id). Both
// Init(ctx) and Round(ctx) may be sharded over the engine's thread pool,
// so for node v they must touch only v's slots — the disjoint-writes
// contract the determinism guarantee rests on.
class Protocol {
 public:
  virtual ~Protocol() = default;
  virtual void Init(NodeContext& ctx) = 0;
  virtual void Round(NodeContext& ctx) = 0;
};

class ThreadPool;

class Engine {
 public:
  // num_threads <= 1 means sequential; > 1 backs the compute phase of
  // every round with a persistent ThreadPool (workers live for the
  // engine's lifetime, not per round). The graph must outlive the engine.
  explicit Engine(const graph::Graph& g, int num_threads = 1);

  // CONGEST enforcement: once set, staging any message with more than
  // `limit` entries aborts (KCORE_CHECK). The paper's Section II protocols
  // use O(1) reals per message; tests arm this to PROVE compliance rather
  // than merely count it. 0 disables the check (default).
  void SetPayloadLimit(std::size_t limit) { payload_limit_ = limit; }
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Runs Init (staging round-0 broadcasts) for all nodes.
  void Start(Protocol& p);

  // Executes one synchronous round; returns its stats.
  RoundStats Step(Protocol& p);

  // Start + `rounds` Steps.
  void Run(Protocol& p, int rounds);

  // Steps until a round changes nothing (no broadcasts staged differ from
  // the previous round and no p2p messages) or max_rounds is hit.
  // Returns the number of executed rounds. Used by the run-to-convergence
  // baseline (Montresor et al.).
  int RunUntilQuiescent(Protocol& p, int max_rounds);

  const graph::Graph& graph() const { return graph_; }
  int num_threads() const { return num_threads_; }
  const std::vector<RoundStats>& history() const { return history_; }
  Totals totals() const;

  bool halted(NodeId v) const { return halted_[v] != 0; }
  std::size_t num_halted() const;

 private:
  friend class NodeContext;

  struct OutMessage {
    NodeId to;
    Payload payload;
  };

  void ComputeRange(Protocol& p, NodeId begin, NodeId end, int round);
  // Runs the round's compute sweep — sequentially, or sharded over the
  // pool when num_threads_ > 1 and the graph clears the cutoff. Both
  // Start (round 0) and Step go through here.
  void ComputePhase(Protocol& p, int round);
  void CollectRound(int round);

  const graph::Graph& graph_;
  int num_threads_;
  // Lazily created on the first parallel compute phase (Start's Init
  // sweep included) and reused for every later round; null while running
  // sequentially.
  std::unique_ptr<ThreadPool> pool_;
  int round_ = 0;

  // Double-buffered broadcasts: prev_ visible to readers, next_ written by
  // the current compute phase (each node writes only its own slot).
  std::vector<Payload> prev_bcast_, next_bcast_;
  std::vector<char> prev_has_, next_has_;

  // Point-to-point: outboxes written by sender's compute, merged into
  // inboxes between rounds.
  std::vector<std::vector<OutMessage>> outbox_;
  std::vector<std::vector<InMessage>> inbox_;

  std::vector<char> halted_;
  std::vector<RoundStats> history_;
  std::size_t max_entries_per_message_ = 0;
  std::size_t payload_limit_ = 0;
};

}  // namespace kcore::distsim
