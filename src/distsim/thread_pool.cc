#include "distsim/thread_pool.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "util/logging.h"

namespace kcore::distsim {

ThreadPool::ThreadPool(int num_threads) {
  KCORE_CHECK_MSG(num_threads >= 1,
                  "ThreadPool needs num_threads >= 1, got " << num_threads);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int shard = 1; shard < num_threads; ++shard) {
    workers_.emplace_back([this, shard] { WorkerLoop(shard); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::pair<std::uint64_t, std::uint64_t> ThreadPool::ShardBounds(
    std::uint64_t begin, std::uint64_t end, int shard, int num_shards) {
  const std::uint64_t chunk =
      (end - begin + static_cast<std::uint64_t>(num_shards) - 1) /
      static_cast<std::uint64_t>(num_shards);
  const std::uint64_t b =
      std::min(end, begin + static_cast<std::uint64_t>(shard) * chunk);
  const std::uint64_t e = std::min(end, b + chunk);
  return {b, e};
}

std::vector<std::uint64_t> ThreadPool::WeightedShardBounds(
    std::span<const std::uint64_t> weights, int num_shards) {
  KCORE_CHECK_MSG(num_shards >= 1,
                  "WeightedShardBounds needs num_shards >= 1, got "
                      << num_shards);
  const std::uint64_t n = weights.size();
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(num_shards) + 1,
                                    n);
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  if (total == 0) {
    // Nothing to equalize; tile by count so every id is still covered.
    for (int s = 0; s < num_shards; ++s) {
      bounds[s] = ShardBounds(0, n, s, num_shards).first;
    }
    return bounds;
  }
  std::uint64_t cursor = 0;
  std::uint64_t remaining = total;
  for (int s = 0; s < num_shards; ++s) {
    bounds[s] = cursor;
    // Fair share of the weight still unassigned: ceil(remaining / shards
    // left). A hub heavier than the share closes its shard immediately
    // and the later shards re-split what is left.
    const auto left = static_cast<std::uint64_t>(num_shards - s);
    const std::uint64_t share = (remaining + left - 1) / left;
    std::uint64_t taken = 0;
    while (cursor < n && taken < share) {
      const std::uint64_t w = weights[cursor];
      // An item that overshoots the share joins this shard only if that
      // lands closer to the fair share than stopping short does. Without
      // this, a hub in the MIDDLE of a shard's range gets swallowed along
      // with its whole prefix (one shard carrying prefix + hub, later
      // shards empty — worse than no balancing); closing early leaves the
      // hub to open the next shard, which then takes it alone.
      if (taken > 0 && taken + w > share &&
          taken + w - share > share - taken) {
        break;
      }
      taken += w;
      ++cursor;
    }
    remaining -= taken;
  }
  bounds[num_shards] = n;  // trailing zero-weight ids ride the last shard
  return bounds;
}

void ThreadPool::RunShard(int shard) {
  std::uint64_t b, e;
  if (job_bounds_ != nullptr) {
    b = job_bounds_[shard];
    e = job_bounds_[shard + 1];
  } else {
    std::tie(b, e) = ShardBounds(job_begin_, job_end_, shard, num_shards());
  }
  if (b < e) (*body_)(shard, b, e);
}

void ThreadPool::WorkerLoop(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      util::MutexLock lk(mu_);
      // Explicit wait loop (not the predicate overload): the analysis
      // sees guarded reads in this function's scope, not in a lambda it
      // cannot attribute the capability to.
      while (!stop_ && generation_ == seen) work_cv_.wait(lk.native());
      if (stop_) return;
      seen = generation_;
    }
    std::exception_ptr error;
    try {
      RunShard(shard);
    } catch (...) {
      // Must not escape the thread entry (std::terminate); stash the
      // first failure for ParallelFor to rethrow on the caller's thread.
      error = std::current_exception();
    }
    {
      util::MutexLock lk(mu_);
      if (error && !error_) error_ = std::move(error);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  Dispatch(begin, end, nullptr,
           [&body](int, std::uint64_t b, std::uint64_t e) { body(b, e); });
}

void ThreadPool::ParallelFor(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(int, std::uint64_t, std::uint64_t)>& body) {
  Dispatch(begin, end, nullptr, body);
}

void ThreadPool::ParallelFor(
    std::span<const std::uint64_t> bounds,
    const std::function<void(int, std::uint64_t, std::uint64_t)>& body) {
  CheckBounds(bounds);
  Dispatch(bounds.front(), bounds.back(), bounds.data(), body);
}

void ThreadPool::ParallelReduce(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(int, std::uint64_t, std::uint64_t)>& body,
    const std::function<void(int)>& merge) {
  if (begin >= end) return;
  Dispatch(begin, end, nullptr, body);
  // Merge strictly in shard order on this thread: the reduction sees the
  // same partial order no matter how the shards were scheduled.
  for (int shard = 0; shard < num_shards(); ++shard) merge(shard);
}

void ThreadPool::ParallelReduce(
    std::span<const std::uint64_t> bounds,
    const std::function<void(int, std::uint64_t, std::uint64_t)>& body,
    const std::function<void(int)>& merge) {
  CheckBounds(bounds);
  if (bounds.front() >= bounds.back()) return;
  Dispatch(bounds.front(), bounds.back(), bounds.data(), body);
  for (int shard = 0; shard < num_shards(); ++shard) merge(shard);
}

void ThreadPool::CheckBounds(std::span<const std::uint64_t> bounds) const {
  KCORE_CHECK_MSG(
      bounds.size() == static_cast<std::size_t>(num_shards()) + 1,
      "bounded dispatch needs num_shards + 1 = " << num_shards() + 1
          << " boundaries, got " << bounds.size());
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    KCORE_CHECK_MSG(bounds[s] <= bounds[s + 1],
                    "shard boundaries must be ascending; bounds["
                        << s << "]=" << bounds[s] << " > bounds[" << s + 1
                        << "]=" << bounds[s + 1]);
  }
}

void ThreadPool::Dispatch(
    std::uint64_t begin, std::uint64_t end, const std::uint64_t* bounds,
    const std::function<void(int, std::uint64_t, std::uint64_t)>& body) {
  if (begin >= end) return;
  const int shards = num_shards();
  if (shards == 1) {
    body(0, begin, end);
    return;
  }
  {
    util::MutexLock lk(mu_);
    body_ = &body;
    job_begin_ = begin;
    job_end_ = end;
    job_bounds_ = bounds;
    pending_ = shards - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  // Workers hold a raw pointer to `body` until pending_ hits zero, so if
  // the caller's shard throws we must still wait for them before the
  // stack (and the std::function) unwinds.
  const auto drain = [this] {
    util::MutexLock lk(mu_);
    while (pending_ != 0) done_cv_.wait(lk.native());
    body_ = nullptr;
    job_bounds_ = nullptr;
    return std::exchange(error_, nullptr);
  };
  try {
    RunShard(0);  // the caller is shard 0
  } catch (...) {
    drain();
    throw;  // a caller-shard throw wins over any stashed worker error
  }
  if (std::exception_ptr error = drain()) std::rethrow_exception(error);
}

}  // namespace kcore::distsim
