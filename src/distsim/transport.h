// Pluggable message-transport layer for the round scheduler's collect
// phase.
//
// The engine's collect phase splits into a census (stats + per-(shard,
// receiver) in-degree counts, always run by the engine) and an exchange:
// moving every staged OutMessage from its sender's outbox into its
// receiver's inbox, sorted by sender id. The exchange is the part a
// message-passing cluster would actually put on the wire, so it lives
// behind this interface:
//
//   * SharedMemoryTransport — today's in-process fast path. Sequentially
//     it is the plain ascending-sender push_back delivery; sharded it is
//     the zero-copy two-pass scheme (offset pass turns the census count
//     rows into running block offsets and pre-sizes inboxes; a write pass
//     sharded by sender moves each payload into its precomputed slot).
//     Nothing is copied or encoded: payloads std::move from outbox to
//     inbox, and the reported wire volume is zero.
//
//   * SerializedTransport — the MPI-shaped path, run in-process at any
//     thread count. Each src shard measures exact per-dst-shard byte
//     counts (count row), prefix-sums them into a displacement row, and
//     packs its messages — walking senders in ascending id order — into
//     one contiguous send buffer per src shard using util::Wire (varint
//     sender / receiver / payload length, fixed64 payload entries). The
//     exchange step gathers every (src, dst) segment into one contiguous
//     receive buffer per dst shard (exactly MPI_Alltoallv's
//     counts/displacements contract), and each dst shard deserializes its
//     segments in src-shard order, appending per receiver — which yields
//     the same sender-id-sorted inboxes as the shared-memory path, bit
//     for bit. Wire volume (bytes packed / decoded) is reported per
//     round; per-message encodings are partition-independent, so the
//     byte counts are identical at any thread count too.
//
//   * ProcessTransport (process_transport.h) — the real multi-process
//     backend: Start() forks one worker process per RANK, and each
//     round's packed per-(src-rank, dst-rank) segments travel over
//     Unix-domain socketpairs (workers exchange peer-to-peer,
//     alltoallv-style) before being deserialized back into the engine's
//     inboxes. Ranks partition node ids independently of the thread
//     shards (ExchangeContext::rank_bounds); see docs/TRANSPORTS.md for
//     the frame layout and docs/ARCHITECTURE.md for how ranks map onto
//     MPI processes.
//
// Conformance contract for any implementation: given the same staged
// outboxes, Exchange must leave (a) every outbox empty, (b) every inbox
// holding exactly the messages addressed to it, ordered by sender id with
// ties (several sends from one sender to one receiver) in staging order,
// with payloads bit-identical to what the sender staged. The
// transport_conformance_test battery pins this against the sequential
// baseline for every registered transport.
//
// Transports may keep scratch state across rounds (buffers are reused);
// an Engine owns exactly one transport and calls Exchange at most once
// per round, never concurrently. Rounds with no staged p2p traffic skip
// the exchange entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "distsim/engine.h"

namespace kcore::util {
class WireWriter;
}

namespace kcore::distsim {

class ThreadPool;

// The built-in transports, for flag parsing and option structs.
enum class TransportKind {
  kSharedMemory,  // zero-copy in-place delivery (default)
  kSerialized,    // pack / alltoallv-exchange / unpack via util::Wire
  kProcess,       // forked worker processes + socketpair alltoallv
};

// Segment codec, shared by every serializing backend (serialized /
// process / MPI) so the encode/decode loops — and therefore the wire
// accounting — live in exactly one place. A "partition" here is any
// ascending contiguous split of node ids: the per-round thread shards
// for SerializedTransport, the per-run ranks for the process and MPI
// backends. `bounds` always has `cells` + 1 ascending entries. The
// byte layout is tabulated in docs/TRANSPORTS.md.

// Exact bytes one staged message occupies in a packed segment: varint
// sender id + varint receiver id + varint payload length + 8 bytes per
// payload entry. Absolute (never partition-relative), so byte totals
// are identical across thread counts, rank counts, and backends.
std::uint64_t WireMessageBytes(std::uint64_t from, const OutMessage& m);

// Exact bytes one staged broadcast occupies in a packed broadcast
// segment: varint broadcaster id + varint payload length + 8 bytes per
// entry. The CONGEST fan-out rule: exactly ONE copy of this ships to
// each REMOTE rank owning at least one of the broadcaster's neighbors
// (never once per neighbor — dedup before packing), and none to the
// broadcaster's own rank, where the value is a shared-memory read.
// Absolute encoding, so the analytic in-engine census
// (RoundStats::bcast_bytes_*) and the per-rank measured volume agree
// byte for byte.
std::uint64_t WireBroadcastBytes(std::uint64_t v, const Payload& p);

// Index of the partition cell owning node u (empty cells own nothing).
int OwnerIndex(const std::uint64_t* bounds, int cells, graph::NodeId u);

// Adds the wire bytes of every message staged by senders [begin, end)
// into row[OwnerIndex(bounds, cells, m.to)]; row has `cells` entries
// and is NOT zeroed here.
void CountSegmentBytes(const std::uint64_t* bounds, int cells,
                       const std::vector<std::vector<OutMessage>>& outbox,
                       std::uint64_t begin, std::uint64_t end,
                       std::uint64_t* row);

// Encodes every message staged by senders [begin, end) at its dst
// cell's writer and clears the outboxes. Senders are walked in
// ascending id order, so each segment comes out sender-ordered — the
// half of the inbox-sorting contract the packer owns. `seg` has one
// exactly-pre-sized writer per cell (from CountSegmentBytes's rows).
void PackSegments(const std::uint64_t* bounds, int cells,
                  std::vector<std::vector<OutMessage>>& outbox,
                  std::uint64_t begin, std::uint64_t end,
                  util::WireWriter* seg);

// Decodes one packed segment [data, data + len), appending each message
// to its receiver's inbox. Every receiver must lie in [lo, hi) — the
// dst cell the segment was routed to — else KCORE_CHECK fails.
// Appending segments in ascending src-cell order yields sender-sorted
// inboxes (the other half of the contract, owned by the caller).
void DecodeSegment(const std::uint8_t* data, std::uint64_t len,
                   std::uint64_t lo, std::uint64_t hi,
                   std::vector<std::vector<InMessage>>& inbox);

// "shared" / "serialized" / "process".
const char* TransportKindName(TransportKind kind);
// Parses the names above; returns false (leaving *out untouched) for
// anything else.
bool ParseTransportKind(std::string_view name, TransportKind* out);

// Bytes a round's exchange put on (and took off) the wire. Zero/zero for
// transports that move payloads in place.
struct WireVolume {
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
};

// Everything one round's exchange may touch. The partition is the
// engine's active shard partition for the round: `bounds` has
// num_shards + 1 ascending entries and shard s owns node ids
// [bounds[s], bounds[s+1]) — as SENDER for outboxes and as RECEIVER for
// inboxes (one partition serves both roles, like ranks in MPI).
struct ExchangeContext {
  graph::NodeId n = 0;               // number of nodes
  int num_shards = 1;                // >= 1
  const std::uint64_t* bounds = nullptr;  // num_shards + 1 ascending ids
  // Runs shard bodies concurrently when non-null; null means execute the
  // shards inline on the caller (the engine's sequential mode).
  ThreadPool* pool = nullptr;
  std::vector<std::vector<OutMessage>>* outbox = nullptr;  // [n], consumed
  std::vector<std::vector<InMessage>>* inbox = nullptr;    // [n], rewritten
  // Census count rows: counts[s * n + u] = messages shard s staged for
  // receiver u — but ONLY for shards with shard_sent[s] != 0 (other rows
  // are stale scratch). Null when the engine censused sequentially. The
  // transport may consume the live rows as cursors.
  std::uint32_t* counts = nullptr;
  const char* shard_sent = nullptr;  // [num_shards], null iff counts is
  // Rank topology (Engine::SetRankCount): `rank_bounds` has num_ranks + 1
  // ascending entries and rank r OWNS node ids [rank_bounds[r],
  // rank_bounds[r+1]) — as sender and as receiver, like the shard
  // partition above, but fixed for the whole run and independent of the
  // per-round thread shards. In-process transports ignore it; the
  // process backend segments its exchange by rank, exactly the role MPI
  // ranks play. Always non-null with num_ranks >= 1 ({0, n} by default).
  int num_ranks = 1;
  const std::uint64_t* rank_bounds = nullptr;
};

// Clears the inboxes of receivers [begin, end) before an unpack and,
// when the engine censused in parallel (ctx.counts != null), pre-sizes
// each from the live count columns — one place that knows the
// `counts[s * n + u]` / shard_sent layout, shared by every serializing
// backend's unpack step.
void ClearAndReserveInboxes(const ExchangeContext& ctx, std::uint64_t begin,
                            std::uint64_t end);

// Everything a rank-compute transport needs to arm its workers before
// Start() forks them (Engine::Start builds this when SetPerRankCompute
// is on). All pointers are engine-owned and outlive the transport.
struct RankComputeSetup {
  Protocol* protocol = nullptr;          // Save/LoadNodeState source/sink
  const graph::Graph* graph = nullptr;   // wire-serialized slice source
  // Non-empty: the binary graph file (graph/binio.h) to LoadBinarySlice
  // worker-side instead of shipping the slice over the socket.
  std::string graph_path;
  std::uint64_t seed = 0;                // master seed for ForkKeyed streams
  std::size_t payload_limit = 0;         // CONGEST limit (0 = off)
  bool track_quiescence = false;         // workers report slice changes
};

// One round's merged worker reports under per-rank compute — the
// RoundStats partials summed in fixed rank order, plus the control
// signals the coordinator loop needs (halted census, quiescence flag).
struct RankRoundResult {
  std::size_t active_nodes = 0;
  std::size_t messages = 0;
  std::size_t entries = 0;
  std::size_t max_entries = 0;
  std::size_t distinct_values = 0;  // size of the union of slice sets
  std::size_t bytes_sent = 0;       // p2p segment bytes, diagonal included
  std::size_t bytes_received = 0;
  std::size_t bcast_bytes_sent = 0;  // fan-out copies actually shipped
  std::size_t bcast_bytes_received = 0;
  std::size_t bcast_bytes_per_neighbor = 0;  // the naive baseline volume
  std::size_t num_halted = 0;  // summed over slices = global count
  bool changed = false;        // OR of per-slice change flags
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual const char* name() const = 0;
  // One-time setup hook: Engine::Start() calls this exactly once, before
  // the first compute phase and — deliberately — before the engine
  // creates its thread pool, so a backend that forks worker processes
  // (ProcessTransport) does so while the engine has spawned no threads
  // yet. `rank_bounds` (num_ranks + 1 ascending entries, the node→rank
  // ownership map) is owned by the engine and stays valid for its
  // lifetime. The default implementation does nothing.
  virtual void Start(graph::NodeId n, int num_ranks,
                     const std::uint64_t* rank_bounds) {
    (void)n;
    (void)num_ranks;
    (void)rank_bounds;
  }
  // Delivers every staged message (see the conformance contract above).
  virtual WireVolume Exchange(const ExchangeContext& ctx) = 0;

  // Per-rank compute hooks (Engine::SetPerRankCompute). A transport that
  // returns true from SupportsRankCompute() runs the protocol INSIDE its
  // rank workers: PrepareRankCompute arms the setup before Start()
  // forks, RankStep drives one synchronous round across every worker and
  // returns the merged stats, and CollectRankState pulls per-node
  // protocol state / broadcasts / halted flags back into the engine's
  // arrays. The defaults reject the mode (KCORE_CHECK), so an engine
  // misconfigured onto an in-process transport fails loudly at Start.
  virtual bool SupportsRankCompute() const { return false; }
  virtual void PrepareRankCompute(const RankComputeSetup& setup);
  virtual RankRoundResult RankStep(int round);
  virtual void CollectRankState(Protocol& p, std::vector<Payload>& prev_bcast,
                                std::vector<char>& prev_has,
                                std::vector<char>& halted);
};

// Zero-copy in-place delivery; the default.
class SharedMemoryTransport final : public Transport {
 public:
  const char* name() const override { return "shared"; }
  WireVolume Exchange(const ExchangeContext& ctx) override;
};

// Pack / alltoallv-style exchange / unpack through util::Wire buffers.
class SerializedTransport final : public Transport {
 public:
  const char* name() const override { return "serialized"; }
  WireVolume Exchange(const ExchangeContext& ctx) override;

 private:
  // All scratch persists across rounds so steady-state rounds reallocate
  // nothing (vectors only grow).
  std::vector<std::uint64_t> seg_bytes_;   // [src * S + dst] byte counts
  std::vector<std::uint64_t> send_displ_;  // [src * (S+1)] prefix sums
  std::vector<std::vector<std::uint8_t>> send_buf_;  // one per src shard
  std::vector<std::vector<std::uint8_t>> recv_buf_;  // one per dst shard
  std::vector<std::uint64_t> recv_bytes_;  // per-dst decoded byte counts
};

std::unique_ptr<Transport> MakeTransport(TransportKind kind);

}  // namespace kcore::distsim
