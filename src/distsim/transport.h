// Pluggable message-transport layer for the round scheduler's collect
// phase.
//
// The engine's collect phase splits into a census (stats + per-(shard,
// receiver) in-degree counts, always run by the engine) and an exchange:
// moving every staged OutMessage from its sender's outbox into its
// receiver's inbox, sorted by sender id. The exchange is the part a
// message-passing cluster would actually put on the wire, so it lives
// behind this interface:
//
//   * SharedMemoryTransport — today's in-process fast path. Sequentially
//     it is the plain ascending-sender push_back delivery; sharded it is
//     the zero-copy two-pass scheme (offset pass turns the census count
//     rows into running block offsets and pre-sizes inboxes; a write pass
//     sharded by sender moves each payload into its precomputed slot).
//     Nothing is copied or encoded: payloads std::move from outbox to
//     inbox, and the reported wire volume is zero.
//
//   * SerializedTransport — the MPI-shaped path, run in-process at any
//     thread count. Each src shard measures exact per-dst-shard byte
//     counts (count row), prefix-sums them into a displacement row, and
//     packs its messages — walking senders in ascending id order — into
//     one contiguous send buffer per src shard using util::Wire (varint
//     sender / receiver / payload length, fixed64 payload entries). The
//     exchange step gathers every (src, dst) segment into one contiguous
//     receive buffer per dst shard (exactly MPI_Alltoallv's
//     counts/displacements contract), and each dst shard deserializes its
//     segments in src-shard order, appending per receiver — which yields
//     the same sender-id-sorted inboxes as the shared-memory path, bit
//     for bit. Wire volume (bytes packed / decoded) is reported per
//     round; per-message encodings are partition-independent, so the
//     byte counts are identical at any thread count too.
//
// Conformance contract for any implementation: given the same staged
// outboxes, Exchange must leave (a) every outbox empty, (b) every inbox
// holding exactly the messages addressed to it, ordered by sender id with
// ties (several sends from one sender to one receiver) in staging order,
// with payloads bit-identical to what the sender staged. The
// transport_conformance_test battery pins this against the sequential
// baseline for every registered transport.
//
// Transports may keep scratch state across rounds (buffers are reused);
// an Engine owns exactly one transport and calls Exchange at most once
// per round, never concurrently. Rounds with no staged p2p traffic skip
// the exchange entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "distsim/engine.h"

namespace kcore::distsim {

class ThreadPool;

// The built-in transports, for flag parsing and option structs.
enum class TransportKind {
  kSharedMemory,  // zero-copy in-place delivery (default)
  kSerialized,    // pack / alltoallv-exchange / unpack via util::Wire
};

// "shared" / "serialized".
const char* TransportKindName(TransportKind kind);
// Parses the names above; returns false (leaving *out untouched) for
// anything else.
bool ParseTransportKind(std::string_view name, TransportKind* out);

// Bytes a round's exchange put on (and took off) the wire. Zero/zero for
// transports that move payloads in place.
struct WireVolume {
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
};

// Everything one round's exchange may touch. The partition is the
// engine's active shard partition for the round: `bounds` has
// num_shards + 1 ascending entries and shard s owns node ids
// [bounds[s], bounds[s+1]) — as SENDER for outboxes and as RECEIVER for
// inboxes (one partition serves both roles, like ranks in MPI).
struct ExchangeContext {
  graph::NodeId n = 0;               // number of nodes
  int num_shards = 1;                // >= 1
  const std::uint64_t* bounds = nullptr;  // num_shards + 1 ascending ids
  // Runs shard bodies concurrently when non-null; null means execute the
  // shards inline on the caller (the engine's sequential mode).
  ThreadPool* pool = nullptr;
  std::vector<std::vector<OutMessage>>* outbox = nullptr;  // [n], consumed
  std::vector<std::vector<InMessage>>* inbox = nullptr;    // [n], rewritten
  // Census count rows: counts[s * n + u] = messages shard s staged for
  // receiver u — but ONLY for shards with shard_sent[s] != 0 (other rows
  // are stale scratch). Null when the engine censused sequentially. The
  // transport may consume the live rows as cursors.
  std::uint32_t* counts = nullptr;
  const char* shard_sent = nullptr;  // [num_shards], null iff counts is
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual const char* name() const = 0;
  // Delivers every staged message (see the conformance contract above).
  virtual WireVolume Exchange(const ExchangeContext& ctx) = 0;
};

// Zero-copy in-place delivery; the default.
class SharedMemoryTransport final : public Transport {
 public:
  const char* name() const override { return "shared"; }
  WireVolume Exchange(const ExchangeContext& ctx) override;
};

// Pack / alltoallv-style exchange / unpack through util::Wire buffers.
class SerializedTransport final : public Transport {
 public:
  const char* name() const override { return "serialized"; }
  WireVolume Exchange(const ExchangeContext& ctx) override;

 private:
  // All scratch persists across rounds so steady-state rounds reallocate
  // nothing (vectors only grow).
  std::vector<std::uint64_t> seg_bytes_;   // [src * S + dst] byte counts
  std::vector<std::uint64_t> send_displ_;  // [src * (S+1)] prefix sums
  std::vector<std::vector<std::uint8_t>> send_buf_;  // one per src shard
  std::vector<std::vector<std::uint8_t>> recv_buf_;  // one per dst shard
  std::vector<std::uint64_t> recv_bytes_;  // per-dst decoded byte counts
};

std::unique_ptr<Transport> MakeTransport(TransportKind kind);

}  // namespace kcore::distsim
