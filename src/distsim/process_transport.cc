#include "distsim/process_transport.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/fdio.h"
#include "util/logging.h"
#include "util/wire.h"

namespace kcore::distsim {

namespace {

using graph::NodeId;

// Frame opcodes (fixed64, arbitrary distinct tags). A parent->worker
// frame is: opcode, then for kOpRound the count row (R fixed64: bytes
// this rank sends to each dst rank), the displacement row (R + 1
// fixed64 prefix sums — redundant given the counts, and verified by the
// worker, exactly like an MPI_Alltoallv sdispls array must agree with
// its sendcounts), then displ[R] contiguous payload bytes.
constexpr std::uint64_t kOpRound = 0x444e554f52ULL;     // "ROUND"
constexpr std::uint64_t kOpShutdown = 0x504f5453ULL;    // "STOP"

// ---------------------------------------------------------------------
// Worker side. Everything below runs in a forked child whose only links
// to the world are its parent socketpair and one socketpair per peer
// rank; it inherits the parent's memory copy-on-write but must never
// rely on it — all data it handles arrives over the sockets. Errors
// _exit(3) after a one-line stderr note; the parent then sees EOF/EPIPE
// and reports the rank. Workers never return into the parent's stack:
// they leave via _exit, skipping destructors and stdio flushes that
// belong to the parent.
// ---------------------------------------------------------------------

[[noreturn]] void WorkerDie(int rank, const char* what) {
  std::fprintf(stderr, "kcore process-transport worker %d: %s (errno=%d)\n",
               rank, what, errno);
  _exit(3);
}

// Per-peer duplex state for the nonblocking alltoallv: each direction is
// an 8-byte fixed64 length header followed by the raw segment bytes.
struct PeerIo {
  int fd = -1;
  // Outgoing: header + segment, driven by one cursor over both parts.
  std::uint8_t out_hdr[8];
  const std::uint8_t* out_body = nullptr;
  std::size_t out_len = 0;  // body length
  std::size_t out_off = 0;  // cursor over header + body
  bool out_done = false;
  // Incoming: header first, then the body into `in`.
  std::uint8_t in_hdr[8];
  std::size_t in_hdr_off = 0;
  std::vector<std::uint8_t>* in = nullptr;
  std::size_t in_off = 0;
  bool in_sized = false;
  bool in_done = false;
};

// The peer exchange: every (this rank -> d) segment goes out and every
// (d -> this rank) segment comes in, all peers concurrently over
// nonblocking sockets driven by poll. Concurrency is what makes this
// deadlock-free without a global send/receive schedule: two ranks
// pushing large segments at each other both drain their receive side
// while their send side is flow-controlled, so neither blocks forever —
// the same reason real MPI_Alltoallv implementations progress sends and
// receives together.
void ExchangeWithPeers(int rank, int num_ranks, const std::vector<int>& peer,
                       const std::vector<std::uint8_t>& send_buf,
                       const std::vector<std::uint64_t>& counts,
                       const std::vector<std::uint64_t>& displ,
                       std::vector<std::vector<std::uint8_t>>& recv_seg) {
  std::vector<PeerIo> io(num_ranks);
  std::size_t open = 0;
  for (int d = 0; d < num_ranks; ++d) {
    if (d == rank) continue;
    PeerIo& p = io[d];
    p.fd = peer[d];
    util::WireWriter w(p.out_hdr, p.out_hdr + 8);
    w.Fixed64(counts[d]);
    p.out_body = send_buf.data() + displ[d];
    p.out_len = counts[d];
    p.in = &recv_seg[d];
    ++open;
  }

  std::vector<struct pollfd> pfds;
  while (open > 0) {
    pfds.clear();
    for (int d = 0; d < num_ranks; ++d) {
      PeerIo& p = io[d];
      if (p.fd < 0 || (p.out_done && p.in_done)) continue;
      short events = 0;
      if (!p.out_done) events |= POLLOUT;
      if (!p.in_done) events |= POLLIN;
      pfds.push_back({p.fd, events, 0});
    }
    if (util::PollRetry(pfds.data(), pfds.size(), -1) < 0) {
      WorkerDie(rank, "poll failed during peer exchange");
    }
    for (const struct pollfd& pf : pfds) {
      // Find the peer this fd belongs to (R is small; linear is fine).
      int d = 0;
      while (io[d].fd != pf.fd) ++d;
      PeerIo& p = io[d];

      // Drain the incoming side first: a peer that hung up (POLLHUP) may
      // still have bytes queued, and read() distinguishes data from EOF.
      if (!p.in_done && (pf.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        for (;;) {
          long got;
          if (!p.in_sized) {
            got = util::ReadSome(p.fd, p.in_hdr + p.in_hdr_off,
                                 8 - p.in_hdr_off);
            if (got > 0) {
              p.in_hdr_off += static_cast<std::size_t>(got);
              if (p.in_hdr_off == 8) {
                util::WireReader r(p.in_hdr, 8);
                p.in->resize(r.Fixed64());
                p.in_sized = true;
                if (p.in->empty()) {
                  p.in_done = true;
                  break;
                }
              }
              continue;
            }
          } else {
            got = util::ReadSome(p.fd, p.in->data() + p.in_off,
                                 p.in->size() - p.in_off);
            if (got > 0) {
              p.in_off += static_cast<std::size_t>(got);
              if (p.in_off == p.in->size()) {
                p.in_done = true;
                break;
              }
              continue;
            }
          }
          if (got == 0) break;  // EAGAIN: poll again later
          WorkerDie(rank, got == util::kReadEof
                              ? "peer rank died mid-exchange"
                              : "peer read failed");
        }
      }

      if (!p.out_done && (pf.revents & POLLOUT) != 0) {
        for (;;) {
          const std::uint8_t* src;
          std::size_t left;
          if (p.out_off < 8) {
            src = p.out_hdr + p.out_off;
            left = 8 - p.out_off;
          } else {
            src = p.out_body + (p.out_off - 8);
            left = p.out_len - (p.out_off - 8);
          }
          const long put = util::WriteSome(p.fd, src, left);
          if (put < 0) WorkerDie(rank, "peer rank died mid-exchange (write)");
          if (put == 0) break;  // flow-controlled: poll again later
          p.out_off += static_cast<std::size_t>(put);
          if (p.out_off == 8 + p.out_len) {
            p.out_done = true;
            break;
          }
        }
      }

      if (p.out_done && p.in_done) --open;
    }
  }
}

// A worker rank's whole life: read a framed send buffer from the
// parent, run the peer alltoallv, return the segments addressed to this
// rank (ascending src order) — until a shutdown frame or parent EOF.
[[noreturn]] void WorkerMain(int rank, int num_ranks, int parent_fd,
                             const std::vector<int>& peer) {
  for (int d = 0; d < num_ranks; ++d) {
    if (d != rank && !util::SetNonBlocking(peer[d], true)) {
      WorkerDie(rank, "cannot make peer socket nonblocking");
    }
  }

  const int R = num_ranks;
  std::vector<std::uint8_t> rows(static_cast<std::size_t>(R + R + 1) * 8);
  std::vector<std::uint64_t> counts(R), displ(R + 1);
  std::vector<std::uint8_t> send_buf, reply_hdr(static_cast<std::size_t>(R) * 8);
  std::vector<std::vector<std::uint8_t>> recv_seg(R);

  for (;;) {
    std::uint8_t op8[8];
    if (!util::ReadFully(parent_fd, op8, 8)) _exit(0);  // parent gone
    const std::uint64_t op = util::WireReader(op8, 8).Fixed64();
    if (op == kOpShutdown) _exit(0);
    if (op != kOpRound) WorkerDie(rank, "bad opcode from parent");

    // Count row + displacement row, then the contiguous send buffer.
    if (!util::ReadFully(parent_fd, rows.data(), rows.size())) {
      WorkerDie(rank, "truncated round frame (rows)");
    }
    util::WireReader rr(rows.data(), rows.size());
    for (int d = 0; d < R; ++d) counts[d] = rr.Fixed64();
    for (int d = 0; d <= R; ++d) displ[d] = rr.Fixed64();
    if (displ[0] != 0) WorkerDie(rank, "bad frame: displ[0] != 0");
    for (int d = 0; d < R; ++d) {
      if (displ[d + 1] - displ[d] != counts[d]) {
        WorkerDie(rank, "bad frame: displacements disagree with counts");
      }
    }
    send_buf.resize(displ[R]);
    if (!send_buf.empty() &&
        !util::ReadFully(parent_fd, send_buf.data(), send_buf.size())) {
      WorkerDie(rank, "truncated round frame (payload)");
    }

    // This rank's own segment still makes the full socket round trip
    // (parent -> here -> parent); only the peer legs are skipped, as
    // they would be for the local rank under MPI.
    recv_seg[rank].assign(send_buf.begin() + static_cast<long>(displ[rank]),
                          send_buf.begin() +
                              static_cast<long>(displ[rank] + counts[rank]));

    ExchangeWithPeers(rank, R, peer, send_buf, counts, displ, recv_seg);

    // Reply: per-src received-byte row, then the segments in ascending
    // src-rank order — the contiguous receive buffer of the alltoallv.
    util::WireWriter w(reply_hdr.data(), reply_hdr.data() + reply_hdr.size());
    for (int s = 0; s < R; ++s) w.Fixed64(recv_seg[s].size());
    if (!util::WriteFully(parent_fd, reply_hdr.data(), reply_hdr.size())) {
      WorkerDie(rank, "parent died (reply header)");
    }
    for (int s = 0; s < R; ++s) {
      if (!recv_seg[s].empty() &&
          !util::WriteFully(parent_fd, recv_seg[s].data(),
                            recv_seg[s].size())) {
        WorkerDie(rank, "parent died (reply payload)");
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Parent side.
// ---------------------------------------------------------------------

std::uint64_t PackRankBuffers(
    const std::uint64_t* rank_bounds, int num_ranks,
    std::vector<std::vector<OutMessage>>& outbox,
    std::vector<std::uint64_t>& seg_bytes,
    std::vector<std::uint64_t>& send_displ,
    std::vector<std::vector<std::uint8_t>>& send_buf) {
  const int R = num_ranks;
  const std::uint64_t* rb = rank_bounds;

  // Count pass by src rank: exact wire bytes per (src, dst) segment.
  seg_bytes.assign(static_cast<std::size_t>(R) * R, 0);
  for (int s = 0; s < R; ++s) {
    CountSegmentBytes(rb, R, outbox, rb[s], rb[s + 1],
                      seg_bytes.data() + static_cast<std::size_t>(s) * R);
  }

  // Displacement rows + send-buffer sizing (MPI_Alltoallv's sdispls).
  send_displ.assign(static_cast<std::size_t>(R) * (R + 1), 0);
  send_buf.resize(R);
  std::uint64_t total_bytes = 0;
  for (int s = 0; s < R; ++s) {
    std::uint64_t run = 0;
    for (int d = 0; d < R; ++d) {
      send_displ[static_cast<std::size_t>(s) * (R + 1) + d] = run;
      run += seg_bytes[static_cast<std::size_t>(s) * R + d];
    }
    send_displ[static_cast<std::size_t>(s) * (R + 1) + R] = run;
    send_buf[s].resize(run);
    total_bytes += run;
  }

  // Pack pass by src rank — the shared codec, so the segment encoding
  // (and thus byte accounting) is identical to SerializedTransport's.
  // Outboxes are consumed here.
  for (int s = 0; s < R; ++s) {
    std::vector<util::WireWriter> seg;
    seg.reserve(R);
    for (int d = 0; d < R; ++d) {
      std::uint8_t* base =
          send_buf[s].data() +
          send_displ[static_cast<std::size_t>(s) * (R + 1) + d];
      seg.emplace_back(base,
                       base + seg_bytes[static_cast<std::size_t>(s) * R + d]);
    }
    PackSegments(rb, R, outbox, rb[s], rb[s + 1], seg.data());
  }
  return total_bytes;
}

std::uint64_t UnpackRankBuffers(
    const std::uint64_t* rank_bounds, int num_ranks,
    const std::vector<std::uint64_t>& seg_bytes,
    const std::vector<std::vector<std::uint8_t>>& recv_buf,
    std::vector<std::vector<InMessage>>& inbox) {
  const int R = num_ranks;
  std::uint64_t received = 0;
  for (int r = 0; r < R; ++r) {
    std::uint64_t off = 0;
    for (int s = 0; s < R; ++s) {
      const std::uint64_t len = seg_bytes[static_cast<std::size_t>(s) * R + r];
      DecodeSegment(recv_buf[r].data() + off, len, rank_bounds[r],
                    rank_bounds[r + 1], inbox);
      off += len;
    }
    received += off;
  }
  return received;
}

ProcessTransport::~ProcessTransport() { Shutdown(); }

void ProcessTransport::Start(NodeId n, int num_ranks,
                             const std::uint64_t* rank_bounds) {
  KCORE_CHECK_MSG(!started_, "ProcessTransport::Start() called twice");
  KCORE_CHECK_MSG(num_ranks >= 1, "ProcessTransport needs >= 1 rank, got "
                                      << num_ranks);
  n_ = n;
  num_ranks_ = num_ranks;
  rank_bounds_.assign(rank_bounds, rank_bounds + num_ranks + 1);

  const int R = num_ranks_;
  // Fail up front, with an actionable message, rather than mid-topology
  // with EMFILE: while forking, the parent briefly holds both ends of
  // every pair — 2R parent<->worker fds plus R(R-1) peer fds.
  struct rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
    const std::uint64_t need =
        2ULL * R + static_cast<std::uint64_t>(R) * (R - 1) + 64;  // headroom
    KCORE_CHECK_MSG(need <= nofile.rlim_cur,
                    "ProcessTransport with " << R << " ranks needs ~" << need
                        << " file descriptors but RLIMIT_NOFILE is "
                        << nofile.rlim_cur
                        << " — lower the rank count or raise ulimit -n");
  }
  // All socketpairs are created before the first fork so every worker
  // sees the complete topology and can close exactly what it does not
  // own. pc[r] = parent<->worker r; pp[i][j] (i < j) = worker i <->
  // worker j, end [0] for the lower rank.
  std::vector<std::array<int, 2>> pc(R);
  std::vector<std::vector<std::array<int, 2>>> pp(R);
  for (int r = 0; r < R; ++r) {
    KCORE_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, pc[r].data()) == 0,
                    "socketpair(parent, rank " << r << ") failed, errno "
                        << errno);
    pp[r].assign(R, {-1, -1});
  }
  for (int i = 0; i < R; ++i) {
    for (int j = i + 1; j < R; ++j) {
      KCORE_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0,
                                   pp[i][j].data()) == 0,
                      "socketpair(rank " << i << ", rank " << j
                                         << ") failed, errno " << errno);
    }
  }

  pids_.assign(R, -1);
  parent_fd_.assign(R, -1);
  for (int r = 0; r < R; ++r) {
    const pid_t pid = ::fork();
    KCORE_CHECK_MSG(pid >= 0, "fork of rank " << r << " failed, errno "
                                              << errno);
    if (pid == 0) {
      // Worker r: keep its parent-pair end and its peer ends, close the
      // rest (including every other worker's fds, inherited because all
      // pairs predate every fork).
      std::vector<int> peer(R, -1);
      for (int q = 0; q < R; ++q) {
        ::close(pc[q][0]);
        if (q != r) ::close(pc[q][1]);
      }
      for (int i = 0; i < R; ++i) {
        for (int j = i + 1; j < R; ++j) {
          if (i == r) {
            peer[j] = pp[i][j][0];
            ::close(pp[i][j][1]);
          } else if (j == r) {
            peer[i] = pp[i][j][1];
            ::close(pp[i][j][0]);
          } else {
            ::close(pp[i][j][0]);
            ::close(pp[i][j][1]);
          }
        }
      }
      WorkerMain(r, R, pc[r][1], peer);  // never returns
    }
    pids_[r] = pid;
  }

  // Parent keeps only its end of each worker pair; the peer pairs belong
  // to the workers alone (so a dead worker surfaces as EOF to its peers,
  // not as a silently-open descriptor here).
  for (int r = 0; r < R; ++r) {
    ::close(pc[r][1]);
    parent_fd_[r] = pc[r][0];
  }
  for (int i = 0; i < R; ++i) {
    for (int j = i + 1; j < R; ++j) {
      ::close(pp[i][j][0]);
      ::close(pp[i][j][1]);
    }
  }
  started_ = true;
}

void ProcessTransport::ReportDeadWorker(int rank, const char* stage) {
  int status = 0;
  const pid_t got = ::waitpid(pids_[rank], &status, WNOHANG);
  std::string detail = "still running (socket error)";
  if (got == pids_[rank]) {
    pids_[rank] = -1;  // reaped here; Shutdown must not wait again
    if (WIFEXITED(status)) {
      detail = "exited with status " + std::to_string(WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
      detail = "killed by signal " + std::to_string(WTERMSIG(status));
    }
  } else if (got < 0) {
    detail = "already reaped";
  }
  KCORE_CHECK_MSG(false, "process transport rank " << rank << " died while "
                             << stage << ": " << detail);
  ::abort();  // silence "noreturn function returns": the macro hides
              // CheckFailed's [[noreturn]] behind a conditional
}

WireVolume ProcessTransport::Exchange(const ExchangeContext& ctx) {
  {
    util::MutexLock lk(teardown_mu_);
    KCORE_CHECK_MSG(started_ && !shutdown_,
                    "ProcessTransport::Exchange outside Start()..Shutdown()");
  }
  KCORE_CHECK_MSG(ctx.num_ranks == num_ranks_,
                  "rank topology changed mid-run: Start() saw "
                      << num_ranks_ << " ranks, Exchange sees "
                      << ctx.num_ranks);
  auto& outbox = *ctx.outbox;
  auto& inbox = *ctx.inbox;
  const int R = num_ranks_;
  const std::uint64_t* rb = rank_bounds_.data();

  // Count + pack (shared with the MPI flavor). Runs on the caller — the
  // parent is the data's home; the per-rank parallelism of this backend
  // lives in the worker processes.
  const std::uint64_t total_bytes =
      PackRankBuffers(rb, R, outbox, seg_bytes_, send_displ_, send_buf_);
  recv_buf_.resize(R);

  // Ship every src rank its framed send buffer: opcode, count row,
  // displacement row, contiguous payload.
  frame_.resize(static_cast<std::size_t>(1 + R + R + 1) * 8);
  for (int r = 0; r < R; ++r) {
    util::WireWriter w(frame_.data(), frame_.data() + frame_.size());
    w.Fixed64(kOpRound);
    for (int d = 0; d < R; ++d) {
      w.Fixed64(seg_bytes_[static_cast<std::size_t>(r) * R + d]);
    }
    for (int d = 0; d <= R; ++d) {
      w.Fixed64(send_displ_[static_cast<std::size_t>(r) * (R + 1) + d]);
    }
    if (!util::WriteFully(parent_fd_[r], frame_.data(), frame_.size()) ||
        (!send_buf_[r].empty() &&
         !util::WriteFully(parent_fd_[r], send_buf_[r].data(),
                           send_buf_[r].size()))) {
      ReportDeadWorker(r, "sending its round frame");
    }
  }

  // Read every dst rank's combined receive buffer back: per-src count
  // row (verified against this side's seg_bytes column — the row made
  // TWO socket hops to get back here), then the concatenated segments.
  reply_rows_.resize(static_cast<std::size_t>(R) * 8);
  for (int r = 0; r < R; ++r) {
    if (!util::ReadFully(parent_fd_[r], reply_rows_.data(),
                         reply_rows_.size())) {
      ReportDeadWorker(r, "returning its exchanged segments");
    }
    util::WireReader hr(reply_rows_.data(), reply_rows_.size());
    std::uint64_t total = 0;
    for (int s = 0; s < R; ++s) {
      const std::uint64_t got = hr.Fixed64();
      const std::uint64_t want =
          seg_bytes_[static_cast<std::size_t>(s) * R + r];
      KCORE_CHECK_MSG(got == want,
                      "rank " << r << " returned " << got
                              << " bytes from src rank " << s << ", expected "
                              << want << " — segment corrupted in transit");
      total += got;
    }
    recv_buf_[r].resize(total);
    if (!recv_buf_[r].empty() &&
        !util::ReadFully(parent_fd_[r], recv_buf_[r].data(),
                         recv_buf_[r].size())) {
      ReportDeadWorker(r, "returning its exchanged segments");
    }
  }

  // Unpack: inboxes are rebuilt EXCLUSIVELY from the bytes that came
  // back off the sockets. Clear (and pre-size, when the census ran
  // parallel) every inbox first, then decode each dst rank's buffer in
  // ascending src-rank order — ascending src rank x ascending sender id
  // within a segment = sender-id-sorted inboxes, the conformance
  // contract.
  ClearAndReserveInboxes(ctx, 0, n_);
  UnpackRankBuffers(rb, R, seg_bytes_, recv_buf_, inbox);

  // bytes_received = what actually arrived over the parent sockets. The
  // per-segment audit already happened above (the reply rows, verified
  // against this side's seg_bytes columns after two socket hops), and
  // DecodeSegment checked every segment's structure — so this sum
  // equals total_bytes by construction rather than by a redundant check.
  std::uint64_t received = 0;
  for (int r = 0; r < R; ++r) received += recv_buf_[r].size();
  return WireVolume{static_cast<std::size_t>(total_bytes),
                    static_cast<std::size_t>(received)};
}

bool ProcessTransport::Shutdown() {
  // Held across the whole teardown (including the reap loop): a
  // concurrent second call must not observe shutdown_ == true and
  // report a verdict before the workers are actually down.
  util::MutexLock lk(teardown_mu_);
  if (!started_ || shutdown_) return clean_shutdown_;
  shutdown_ = true;
  clean_shutdown_ = true;
  std::uint8_t op8[8];
  util::WireWriter w(op8, op8 + 8);
  w.Fixed64(kOpShutdown);
  for (int r = 0; r < num_ranks_; ++r) {
    if (parent_fd_[r] >= 0) {
      // Best-effort: a dead worker just means EPIPE here, which the
      // reaping below turns into a non-clean status.
      (void)util::WriteFully(parent_fd_[r], op8, 8);
      ::close(parent_fd_[r]);
      parent_fd_[r] = -1;
    }
  }
  for (int r = 0; r < num_ranks_; ++r) {
    if (pids_[r] < 0) {
      clean_shutdown_ = false;  // died (and was reaped) mid-run
      continue;
    }
    int status = 0;
    pid_t got;
    do {
      got = ::waitpid(pids_[r], &status, 0);
    } while (got < 0 && errno == EINTR);
    if (got != pids_[r] || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      clean_shutdown_ = false;
    }
    pids_[r] = -1;
  }
  return clean_shutdown_;
}

}  // namespace kcore::distsim
