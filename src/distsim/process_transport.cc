#include "distsim/process_transport.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "distsim/engine.h"
#include "graph/binio.h"
#include "util/fdio.h"
#include "util/logging.h"
#include "util/wire.h"

namespace kcore::distsim {

namespace {

using graph::NodeId;

// Frame opcodes (fixed64, arbitrary distinct tags). A parent->worker
// frame is: opcode, then for kOpRound the count row (R fixed64: bytes
// this rank sends to each dst rank), the displacement row (R + 1
// fixed64 prefix sums — redundant given the counts, and verified by the
// worker, exactly like an MPI_Alltoallv sdispls array must agree with
// its sendcounts), then displ[R] contiguous payload bytes.
constexpr std::uint64_t kOpRound = 0x444e554f52ULL;     // "ROUND"
constexpr std::uint64_t kOpShutdown = 0x504f5453ULL;    // "STOP"
// Per-rank compute opcodes. kOpRankInit is followed by a fixed64 body
// length and the init body (seed, limits, rank bounds, graph slice,
// per-node protocol state); kOpRankStep by a fixed64 round number (the
// worker replies fixed64 body length + stats-partial body); kOpRankCollect
// stands alone (the worker replies fixed64 body length + per-node state
// body). Layouts are tabulated in docs/TRANSPORTS.md.
constexpr std::uint64_t kOpRankInit = 0x54494e49ULL;     // "INIT"
constexpr std::uint64_t kOpRankStep = 0x50455453ULL;     // "STEP"
constexpr std::uint64_t kOpRankCollect = 0x4c4c4f43ULL;  // "COLL"

// ---------------------------------------------------------------------
// Worker side. Everything below runs in a forked child whose only links
// to the world are its parent socketpair and one socketpair per peer
// rank; it inherits the parent's memory copy-on-write but must never
// rely on it — all data it handles arrives over the sockets. Errors
// _exit(3) after a one-line stderr note; the parent then sees EOF/EPIPE
// and reports the rank. Workers never return into the parent's stack:
// they leave via _exit, skipping destructors and stdio flushes that
// belong to the parent.
// ---------------------------------------------------------------------

[[noreturn]] void WorkerDie(int rank, const char* what) {
  std::fprintf(stderr, "kcore process-transport worker %d: %s (errno=%d)\n",
               rank, what, errno);
  _exit(3);
}

// Per-peer duplex state for the nonblocking alltoallv: each direction is
// an 8-byte fixed64 length header followed by the raw segment bytes.
struct PeerIo {
  int fd = -1;
  // Outgoing: header + segment, driven by one cursor over both parts.
  std::uint8_t out_hdr[8];
  const std::uint8_t* out_body = nullptr;
  std::size_t out_len = 0;  // body length
  std::size_t out_off = 0;  // cursor over header + body
  bool out_done = false;
  // Incoming: header first, then the body into `in`.
  std::uint8_t in_hdr[8];
  std::size_t in_hdr_off = 0;
  std::vector<std::uint8_t>* in = nullptr;
  std::size_t in_off = 0;
  bool in_sized = false;
  bool in_done = false;
};

// The peer exchange: every (this rank -> d) segment goes out and every
// (d -> this rank) segment comes in, all peers concurrently over
// nonblocking sockets driven by poll. Concurrency is what makes this
// deadlock-free without a global send/receive schedule: two ranks
// pushing large segments at each other both drain their receive side
// while their send side is flow-controlled, so neither blocks forever —
// the same reason real MPI_Alltoallv implementations progress sends and
// receives together.
void ExchangeWithPeers(int rank, int num_ranks, const std::vector<int>& peer,
                       const std::vector<std::uint8_t>& send_buf,
                       const std::vector<std::uint64_t>& counts,
                       const std::vector<std::uint64_t>& displ,
                       std::vector<std::vector<std::uint8_t>>& recv_seg) {
  std::vector<PeerIo> io(num_ranks);
  std::size_t open = 0;
  for (int d = 0; d < num_ranks; ++d) {
    if (d == rank) continue;
    PeerIo& p = io[d];
    p.fd = peer[d];
    util::WireWriter w(p.out_hdr, p.out_hdr + 8);
    w.Fixed64(counts[d]);
    p.out_body = send_buf.data() + displ[d];
    p.out_len = counts[d];
    p.in = &recv_seg[d];
    ++open;
  }

  std::vector<struct pollfd> pfds;
  while (open > 0) {
    pfds.clear();
    for (int d = 0; d < num_ranks; ++d) {
      PeerIo& p = io[d];
      if (p.fd < 0 || (p.out_done && p.in_done)) continue;
      short events = 0;
      if (!p.out_done) events |= POLLOUT;
      if (!p.in_done) events |= POLLIN;
      pfds.push_back({p.fd, events, 0});
    }
    if (util::PollRetry(pfds.data(), pfds.size(), -1) < 0) {
      WorkerDie(rank, "poll failed during peer exchange");
    }
    for (const struct pollfd& pf : pfds) {
      // Find the peer this fd belongs to (R is small; linear is fine).
      int d = 0;
      while (io[d].fd != pf.fd) ++d;
      PeerIo& p = io[d];

      // Drain the incoming side first: a peer that hung up (POLLHUP) may
      // still have bytes queued, and read() distinguishes data from EOF.
      if (!p.in_done && (pf.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        for (;;) {
          long got;
          if (!p.in_sized) {
            got = util::ReadSome(p.fd, p.in_hdr + p.in_hdr_off,
                                 8 - p.in_hdr_off);
            if (got > 0) {
              p.in_hdr_off += static_cast<std::size_t>(got);
              if (p.in_hdr_off == 8) {
                util::WireReader r(p.in_hdr, 8);
                p.in->resize(r.Fixed64());
                p.in_sized = true;
                if (p.in->empty()) {
                  p.in_done = true;
                  break;
                }
              }
              continue;
            }
          } else {
            got = util::ReadSome(p.fd, p.in->data() + p.in_off,
                                 p.in->size() - p.in_off);
            if (got > 0) {
              p.in_off += static_cast<std::size_t>(got);
              if (p.in_off == p.in->size()) {
                p.in_done = true;
                break;
              }
              continue;
            }
          }
          if (got == 0) break;  // EAGAIN: poll again later
          WorkerDie(rank, got == util::kReadEof
                              ? "peer rank died mid-exchange"
                              : "peer read failed");
        }
      }

      if (!p.out_done && (pf.revents & POLLOUT) != 0) {
        for (;;) {
          const std::uint8_t* src;
          std::size_t left;
          if (p.out_off < 8) {
            src = p.out_hdr + p.out_off;
            left = 8 - p.out_off;
          } else {
            src = p.out_body + (p.out_off - 8);
            left = p.out_len - (p.out_off - 8);
          }
          const long put = util::WriteSome(p.fd, src, left);
          if (put < 0) WorkerDie(rank, "peer rank died mid-exchange (write)");
          if (put == 0) break;  // flow-controlled: poll again later
          p.out_off += static_cast<std::size_t>(put);
          if (p.out_off == 8 + p.out_len) {
            p.out_done = true;
            break;
          }
        }
      }

      if (p.out_done && p.in_done) --open;
    }
  }
}

// A worker rank's whole life: read a framed send buffer from the
// parent, run the peer alltoallv, return the segments addressed to this
// rank (ascending src order) — until a shutdown frame or parent EOF.
[[noreturn]] void WorkerMain(int rank, int num_ranks, int parent_fd,
                             const std::vector<int>& peer) {
  for (int d = 0; d < num_ranks; ++d) {
    if (d != rank && !util::SetNonBlocking(peer[d], true)) {
      WorkerDie(rank, "cannot make peer socket nonblocking");
    }
  }

  const int R = num_ranks;
  std::vector<std::uint8_t> rows(static_cast<std::size_t>(R + R + 1) * 8);
  std::vector<std::uint64_t> counts(R), displ(R + 1);
  std::vector<std::uint8_t> send_buf, reply_hdr(static_cast<std::size_t>(R) * 8);
  std::vector<std::vector<std::uint8_t>> recv_seg(R);

  for (;;) {
    std::uint8_t op8[8];
    if (!util::ReadFully(parent_fd, op8, 8)) _exit(0);  // parent gone
    const std::uint64_t op = util::WireReader(op8, 8).Fixed64();
    if (op == kOpShutdown) _exit(0);
    if (op != kOpRound) WorkerDie(rank, "bad opcode from parent");

    // Count row + displacement row, then the contiguous send buffer.
    if (!util::ReadFully(parent_fd, rows.data(), rows.size())) {
      WorkerDie(rank, "truncated round frame (rows)");
    }
    util::WireReader rr(rows.data(), rows.size());
    for (int d = 0; d < R; ++d) counts[d] = rr.Fixed64();
    for (int d = 0; d <= R; ++d) displ[d] = rr.Fixed64();
    if (displ[0] != 0) WorkerDie(rank, "bad frame: displ[0] != 0");
    for (int d = 0; d < R; ++d) {
      if (displ[d + 1] - displ[d] != counts[d]) {
        WorkerDie(rank, "bad frame: displacements disagree with counts");
      }
    }
    send_buf.resize(displ[R]);
    if (!send_buf.empty() &&
        !util::ReadFully(parent_fd, send_buf.data(), send_buf.size())) {
      WorkerDie(rank, "truncated round frame (payload)");
    }

    // This rank's own segment still makes the full socket round trip
    // (parent -> here -> parent); only the peer legs are skipped, as
    // they would be for the local rank under MPI.
    recv_seg[rank].assign(send_buf.begin() + static_cast<long>(displ[rank]),
                          send_buf.begin() +
                              static_cast<long>(displ[rank] + counts[rank]));

    ExchangeWithPeers(rank, R, peer, send_buf, counts, displ, recv_seg);

    // Reply: per-src received-byte row, then the segments in ascending
    // src-rank order — the contiguous receive buffer of the alltoallv.
    util::WireWriter w(reply_hdr.data(), reply_hdr.data() + reply_hdr.size());
    for (int s = 0; s < R; ++s) w.Fixed64(recv_seg[s].size());
    if (!util::WriteFully(parent_fd, reply_hdr.data(), reply_hdr.size())) {
      WorkerDie(rank, "parent died (reply header)");
    }
    for (int s = 0; s < R; ++s) {
      if (!recv_seg[s].empty() &&
          !util::WriteFully(parent_fd, recv_seg[s].data(),
                            recv_seg[s].size())) {
        WorkerDie(rank, "parent died (reply payload)");
      }
    }
  }
}

// ---------------------------------------------------------------------
// Per-rank compute worker. The worker owns its node slice end to end:
// slice graph, protocol state for owned nodes, broadcast double-buffers,
// inboxes/outboxes, RNG streams. Each round it runs the compute phase
// locally and exchanges composite peer bodies
// [fixed64 p2p_len][p2p segment][broadcast segment] over the SAME
// socketpair alltoallv as the byte-shuttle mode — the broadcast segment
// realizes the CONGEST fan-out rule (one copy per remote
// neighbor-owning rank, deduped before packing).
// ---------------------------------------------------------------------

class SliceRuntime final : public NodeRuntime {
 public:
  SliceRuntime(int rank, int num_ranks, Protocol* protocol)
      : rank_(rank), num_ranks_(num_ranks), protocol_(protocol) {}

  // Parses the init-frame body; dies (never returns to a broken state)
  // on malformed input.
  void InitFromBody(const std::vector<std::uint8_t>& body);

  // One synchronous round (compute, census, pack, peer exchange,
  // decode, publish); fills `reply` with the stats-partial body.
  void RunRound(int round, const std::vector<int>& peer,
                std::vector<std::uint8_t>& reply);

  // Fills `reply` with the collect body: per owned node, the halted
  // flag, the current (prev) broadcast, and the protocol state.
  void Collect(std::vector<std::uint8_t>& reply);

 private:
  // NodeRuntime over the slice. Owned nodes see exactly the full-graph
  // view: a slice graph keeps every edge incident to the owned range,
  // id-sorted, so Neighbors/Degree/WeightedDegree agree with the
  // engine's bit for bit.
  NodeId RtN() const override { return n_; }
  std::span<const graph::AdjEntry> RtNeighbors(NodeId v) const override {
    return slice_.Neighbors(v);
  }
  double RtWeightedDegree(NodeId v) const override {
    return slice_.WeightedDegree(v);
  }
  const Payload* RtNeighborBroadcast(NodeId v, std::size_t i) const override {
    const auto nbrs = slice_.Neighbors(v);
    KCORE_CHECK(i < nbrs.size());
    const NodeId u = nbrs[i].to;
    if (!prev_has_[u]) return nullptr;
    return &prev_bcast_[u];
  }
  std::span<const InMessage> RtMessages(NodeId v) const override {
    return inbox_[v];
  }
  void RtBroadcast(NodeId v, Payload p) override {
    CheckPayloadLimit(payload_limit_, p.size(), /*broadcast=*/true);
    next_bcast_[v] = std::move(p);
    next_has_[v] = 1;
  }
  void RtSend(NodeId v, NodeId neighbor, Payload p) override {
    CheckSendAdjacent(slice_.Neighbors(v), v, neighbor);
    CheckPayloadLimit(payload_limit_, p.size(), /*broadcast=*/false);
    outbox_[v].push_back(OutMessage{neighbor, std::move(p)});
  }
  util::Rng& RtRng(NodeId v) override {
    // Same construction as Engine::EnsureNodeRng, restricted to the
    // owned slots: keyed forks off the master are state-pure, so stream
    // (seed, v) is bit-identical whether built here or in-engine.
    if (!node_rng_ready_) {
      util::Rng master(seed_);
      node_rng_.reserve(hi_ - lo_);
      for (NodeId u = lo_; u < hi_; ++u) {
        node_rng_.push_back(master.ForkKeyed(u));
      }
      node_rng_ready_ = true;
    }
    return node_rng_[v - lo_];
  }
  void RtHalt(NodeId v) override { halted_[v] = 1; }

  int rank_;
  int num_ranks_;
  Protocol* protocol_;
  graph::Graph slice_;
  std::vector<std::uint64_t> rank_bounds_;
  NodeId n_ = 0;
  NodeId lo_ = 0, hi_ = 0;  // owned node range
  std::uint64_t seed_ = 0;
  std::size_t payload_limit_ = 0;
  bool track_quiescence_ = false;

  // Full-size-n arrays so node ids index directly; remote slots of
  // prev_* hold only what the fan-out delivered (tracked in
  // remote_live_ for O(received) clearing), everything else is owned.
  std::vector<Payload> prev_bcast_, next_bcast_, prior_bcast_;
  std::vector<char> prev_has_, next_has_, prior_has_;
  std::vector<char> halted_;
  std::vector<std::vector<OutMessage>> outbox_;
  std::vector<std::vector<InMessage>> inbox_;
  std::vector<NodeId> remote_live_;

  bool node_rng_ready_ = false;
  std::vector<util::Rng> node_rng_;  // indexed v - lo_

  // Round scratch, persistent so steady-state rounds reallocate little.
  std::vector<std::uint64_t> p2p_row_, p2p_displ_;
  std::vector<std::uint8_t> p2p_buf_, bcast_scratch_, send_buf_;
  std::vector<std::vector<std::uint8_t>> bcast_buf_;  // one per dst rank
  std::vector<std::uint64_t> counts_, displ_;
  std::vector<std::vector<std::uint8_t>> recv_seg_;
};

void SliceRuntime::InitFromBody(const std::vector<std::uint8_t>& body) {
  util::WireReader r(body.data(), body.size());
  std::uint64_t x = 0;
  if (!r.TryFixed64(&seed_)) WorkerDie(rank_, "truncated init frame (seed)");
  if (!r.TryVarint(&x)) WorkerDie(rank_, "truncated init frame (limit)");
  payload_limit_ = static_cast<std::size_t>(x);
  if (!r.TryVarint(&x)) WorkerDie(rank_, "truncated init frame (flags)");
  track_quiescence_ = x != 0;
  if (!r.TryVarint(&x)) WorkerDie(rank_, "truncated init frame (n)");
  n_ = static_cast<NodeId>(x);
  if (!r.TryVarint(&x) || static_cast<int>(x) != num_ranks_) {
    WorkerDie(rank_, "init frame rank-count mismatch");
  }
  rank_bounds_.resize(static_cast<std::size_t>(num_ranks_) + 1);
  for (std::uint64_t& b : rank_bounds_) {
    if (!r.TryFixed64(&b)) WorkerDie(rank_, "truncated init frame (bounds)");
  }
  lo_ = static_cast<NodeId>(rank_bounds_[rank_]);
  hi_ = static_cast<NodeId>(rank_bounds_[rank_ + 1]);

  std::uint64_t mode = 0;
  if (!r.TryVarint(&mode)) WorkerDie(rank_, "truncated init frame (mode)");
  if (mode == 0) {
    // Wire-serialized slice: every edge incident to [lo, hi), in global
    // edge-id order, so parallel-edge tie order — and therefore the
    // (to, edge)-sorted adjacency — matches the full graph's.
    std::uint64_t m = 0;
    if (!r.TryVarint(&m)) WorkerDie(rank_, "truncated init frame (edges)");
    graph::GraphBuilder b(n_);
    b.Reserve(m);
    for (std::uint64_t e = 0; e < m; ++e) {
      std::uint64_t u = 0, v = 0;
      double w = 0.0;
      if (!r.TryVarint(&u) || !r.TryVarint(&v) || !r.TryDouble(&w)) {
        WorkerDie(rank_, "truncated init frame (edge record)");
      }
      b.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    }
    slice_ = std::move(b).Build();
  } else {
    // binio path: mmap the file and decode only slice-incident edges —
    // the rank-sliced ingestion contract of graph/binio.h.
    std::uint64_t len = 0;
    if (!r.TryVarint(&len)) WorkerDie(rank_, "truncated init frame (path)");
    std::string path(len, '\0');
    if (!r.TryRaw(path.data(), len)) {
      WorkerDie(rank_, "truncated init frame (path bytes)");
    }
    auto loaded = graph::LoadBinarySlice(path, lo_, hi_);
    if (!loaded) WorkerDie(rank_, "LoadBinarySlice failed for the init path");
    slice_ = std::move(loaded->graph);
  }
  if (slice_.num_nodes() != n_) {
    WorkerDie(rank_, "slice graph node count disagrees with init frame");
  }

  prev_bcast_.resize(n_);
  next_bcast_.resize(n_);
  prior_bcast_.resize(n_);
  prev_has_.assign(n_, 0);
  next_has_.assign(n_, 0);
  prior_has_.assign(n_, 0);
  halted_.assign(n_, 0);
  outbox_.resize(n_);
  inbox_.resize(n_);
  bcast_buf_.resize(num_ranks_);
  recv_seg_.resize(num_ranks_);

  // Per-owned-node protocol state. Each block must consume exactly its
  // declared length: a Save/Load drift would otherwise shift every
  // later node's state and corrupt silently.
  std::vector<std::uint8_t> state;
  for (NodeId v = lo_; v < hi_; ++v) {
    std::uint64_t len = 0;
    if (!r.TryVarint(&len)) WorkerDie(rank_, "truncated init frame (state)");
    state.resize(len);
    if (!r.TryRaw(state.data(), len)) {
      WorkerDie(rank_, "truncated init frame (state bytes)");
    }
    util::WireReader sr(state.data(), state.size());
    protocol_->LoadNodeState(v, sr);
    if (sr.failed() || sr.remaining() != 0) {
      WorkerDie(rank_, "protocol state block length mismatch");
    }
  }
  if (r.failed() || r.remaining() != 0) {
    WorkerDie(rank_, "trailing bytes in init frame");
  }
}

void SliceRuntime::RunRound(int round, const std::vector<int>& peer,
                            std::vector<std::uint8_t>& reply) {
  const int R = num_ranks_;

  // 1. Compute phase over the owned slice (sequential within a worker;
  // per-rank parallelism is the processes themselves).
  std::size_t active = 0;
  for (NodeId v = lo_; v < hi_; ++v) {
    if (halted_[v]) continue;
    ++active;
    NodeContext ctx = MakeContext(v, round);
    if (round == 0) {
      protocol_->Init(ctx);
    } else {
      protocol_->Round(ctx);
    }
  }

  // 2. Census over the owned slice — the same formulas as the engine's
  // CensusRange, restricted to senders this rank owns (senders are
  // partitioned by rank, so the parent's merged sums match the
  // in-engine census exactly).
  std::size_t messages = 0, entries = 0, max_entries = 0;
  std::unordered_set<std::uint64_t> distinct;
  for (NodeId v = lo_; v < hi_; ++v) {
    if (next_has_[v]) {
      const std::size_t deg = slice_.Degree(v);
      messages += deg;
      entries += deg * next_bcast_[v].size();
      max_entries = std::max(max_entries, next_bcast_[v].size());
      if (!next_bcast_[v].empty()) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(double));
        std::memcpy(&bits, &next_bcast_[v][0], sizeof(bits));
        distinct.insert(bits);
      }
    }
    for (const OutMessage& m : outbox_[v]) {
      messages += 1;
      entries += m.payload.size();
      max_entries = std::max(max_entries, m.payload.size());
    }
  }

  // 3a. Pack this rank's p2p segments (shared codec — encodings, and
  // therefore the byte accounting, identical to the in-engine path).
  p2p_row_.assign(R, 0);
  CountSegmentBytes(rank_bounds_.data(), R, outbox_, lo_, hi_,
                    p2p_row_.data());
  p2p_displ_.assign(R + 1, 0);
  for (int d = 0; d < R; ++d) p2p_displ_[d + 1] = p2p_displ_[d] + p2p_row_[d];
  p2p_buf_.resize(p2p_displ_[R]);
  {
    std::vector<util::WireWriter> seg;
    seg.reserve(R);
    for (int d = 0; d < R; ++d) {
      std::uint8_t* base = p2p_buf_.data() + p2p_displ_[d];
      seg.emplace_back(base, base + p2p_row_[d]);
    }
    PackSegments(rank_bounds_.data(), R, outbox_, lo_, hi_, seg.data());
  }
  const std::uint64_t p2p_sent = p2p_displ_[R];  // diagonal included

  // 3b. Pack the broadcast fan-out: each owned broadcast is encoded
  // ONCE and its bytes appended to each remote neighbor-owning rank's
  // segment — dedup by a moving rank cursor over the id-sorted
  // adjacency (owner ranks are non-decreasing along it), never once
  // per neighbor.
  std::uint64_t bcast_sent = 0, bcast_per_nbr = 0;
  for (int d = 0; d < R; ++d) bcast_buf_[d].clear();
  for (NodeId v = lo_; v < hi_; ++v) {
    if (!next_has_[v]) continue;
    bcast_scratch_.clear();
    util::WireAppender enc(bcast_scratch_);
    enc.Varint(v);
    enc.Varint(next_bcast_[v].size());
    for (double x : next_bcast_[v]) enc.Double(x);
    const std::uint64_t bytes = bcast_scratch_.size();
    int r = 0;
    int last_remote = -1;
    std::size_t remote_nbrs = 0;
    for (const graph::AdjEntry& a : slice_.Neighbors(v)) {
      while (a.to >= rank_bounds_[r + 1]) ++r;
      if (r == rank_) continue;
      ++remote_nbrs;
      if (r != last_remote) {
        util::WireAppender(bcast_buf_[r])
            .Raw(bcast_scratch_.data(), bcast_scratch_.size());
        bcast_sent += bytes;
        last_remote = r;
      }
    }
    bcast_per_nbr += bytes * remote_nbrs;
  }

  // 3c. Composite peer bodies: [fixed64 p2p_len][p2p seg][bcast seg],
  // contiguous per dst for ExchangeWithPeers' counts/displ contract.
  send_buf_.clear();
  counts_.assign(R, 0);
  displ_.assign(R + 1, 0);
  {
    util::WireAppender out(send_buf_);
    for (int d = 0; d < R; ++d) {
      displ_[d] = send_buf_.size();
      if (d != rank_) {
        out.Fixed64(p2p_row_[d]);
        out.Raw(p2p_buf_.data() + p2p_displ_[d], p2p_row_[d]);
        out.Raw(bcast_buf_[d].data(), bcast_buf_[d].size());
      }
      counts_[d] = send_buf_.size() - displ_[d];
    }
    displ_[R] = send_buf_.size();
  }

  // 4. The same nonblocking socketpair alltoallv as byte-shuttle mode.
  for (auto& seg : recv_seg_) seg.clear();
  ExchangeWithPeers(rank_, R, peer, send_buf_, counts_, displ_, recv_seg_);

  // 5. Deliver p2p into the owned inboxes, ascending src rank (the
  // diagonal segment decodes at its own position, s == rank, keeping
  // inboxes sender-id-sorted — the conformance contract).
  for (NodeId v = lo_; v < hi_; ++v) inbox_[v].clear();
  std::uint64_t p2p_received = 0;
  std::vector<util::WireReader> tail;
  tail.reserve(R);
  for (int s = 0; s < R; ++s) {
    if (s == rank_) {
      DecodeSegment(p2p_buf_.data() + p2p_displ_[rank_], p2p_row_[rank_],
                    lo_, hi_, inbox_);
      p2p_received += p2p_row_[rank_];
      tail.emplace_back(nullptr, 0);
      continue;
    }
    util::WireReader pr(recv_seg_[s].data(), recv_seg_[s].size());
    const std::uint64_t p2p_len = pr.Fixed64();
    if (p2p_len + 8 > recv_seg_[s].size()) {
      WorkerDie(rank_, "peer body shorter than its p2p length header");
    }
    DecodeSegment(recv_seg_[s].data() + 8, p2p_len, lo_, hi_, inbox_);
    p2p_received += p2p_len;
    tail.emplace_back(recv_seg_[s].data() + 8 + p2p_len,
                      recv_seg_[s].size() - 8 - p2p_len);
  }

  // 6. Publish broadcasts. Owned slots double-buffer locally; remote
  // slots are cleared (only those the previous round set) and refilled
  // from the peers' broadcast segments — disjoint id ranges per src
  // rank, so decode order across peers cannot matter.
  for (NodeId u : remote_live_) prev_has_[u] = 0;
  remote_live_.clear();
  for (NodeId v = lo_; v < hi_; ++v) {
    std::swap(prev_bcast_[v], next_bcast_[v]);
    prev_has_[v] = next_has_[v];
    next_has_[v] = 0;
  }
  std::uint64_t bcast_received = 0;
  for (int s = 0; s < R; ++s) {
    if (s == rank_) continue;
    util::WireReader& br = tail[s];
    bcast_received += br.remaining();
    while (br.remaining() > 0) {
      const NodeId u = static_cast<NodeId>(br.Varint());
      if (u < rank_bounds_[s] || u >= rank_bounds_[s + 1]) {
        WorkerDie(rank_, "broadcast fan-out from a rank that does not own "
                         "the broadcaster");
      }
      const std::uint64_t len = br.Varint();
      prev_bcast_[u].resize(len);
      for (std::uint64_t k = 0; k < len; ++k) prev_bcast_[u][k] = br.Double();
      prev_has_[u] = 1;
      remote_live_.push_back(u);
    }
    if (br.failed()) WorkerDie(rank_, "malformed broadcast segment");
  }

  // 7. Slice quiescence: owned inbox traffic, or an owned broadcast
  // differing from the prior round. Slices partition the nodes, so the
  // parent's OR over ranks equals the engine's global predicate. Round
  // 0 only seeds the prior snapshot (its flag is never read).
  bool changed = true;
  if (track_quiescence_) {
    if (round > 0) {
      changed = false;
      for (NodeId v = lo_; v < hi_ && !changed; ++v) {
        changed = !inbox_[v].empty();
      }
      for (NodeId v = lo_; v < hi_ && !changed; ++v) {
        changed = prev_has_[v] != prior_has_[v] ||
                  (prev_has_[v] && prev_bcast_[v] != prior_bcast_[v]);
      }
    }
    for (NodeId v = lo_; v < hi_; ++v) {
      prior_bcast_[v] = prev_bcast_[v];
      prior_has_[v] = prev_has_[v];
    }
  }

  std::size_t halted_count = 0;
  for (NodeId v = lo_; v < hi_; ++v) halted_count += halted_[v] ? 1 : 0;

  // 8. The stats-partial reply. Distinct values travel as a sorted
  // bit-pattern list so the parent can union them exactly.
  // kcore-lint: allow(unordered-iter) output fully sorted before use
  std::vector<std::uint64_t> dv(distinct.begin(), distinct.end());
  std::sort(dv.begin(), dv.end());
  reply.clear();
  util::WireAppender a(reply);
  a.Varint(active);
  a.Varint(messages);
  a.Varint(entries);
  a.Varint(max_entries);
  a.Varint(p2p_sent);
  a.Varint(p2p_received);
  a.Varint(bcast_sent);
  a.Varint(bcast_received);
  a.Varint(bcast_per_nbr);
  a.Varint(halted_count);
  a.Varint(changed ? 1 : 0);
  a.Varint(dv.size());
  for (std::uint64_t bits : dv) a.Fixed64(bits);
}

void SliceRuntime::Collect(std::vector<std::uint8_t>& reply) {
  reply.clear();
  util::WireAppender a(reply);
  std::vector<std::uint8_t> state;
  for (NodeId v = lo_; v < hi_; ++v) {
    a.Varint(halted_[v] ? 1 : 0);
    a.Varint(prev_has_[v] ? 1 : 0);
    if (prev_has_[v]) {
      a.Varint(prev_bcast_[v].size());
      for (double x : prev_bcast_[v]) a.Double(x);
    }
    state.clear();
    util::WireAppender sa(state);
    protocol_->SaveNodeState(v, sa);
    a.Varint(state.size());
    a.Raw(state.data(), state.size());
  }
}

// A per-rank compute worker's life: one init frame, then step/collect
// frames until shutdown or parent EOF.
[[noreturn]] void RankWorkerMain(int rank, int num_ranks, int parent_fd,
                                 const std::vector<int>& peer,
                                 Protocol* protocol) {
  for (int d = 0; d < num_ranks; ++d) {
    if (d != rank && !util::SetNonBlocking(peer[d], true)) {
      WorkerDie(rank, "cannot make peer socket nonblocking");
    }
  }

  SliceRuntime rt(rank, num_ranks, protocol);
  {
    std::uint8_t hdr[16];
    if (!util::ReadFully(parent_fd, hdr, 16)) _exit(0);  // parent gone
    util::WireReader hr(hdr, 16);
    if (hr.Fixed64() != kOpRankInit) {
      WorkerDie(rank, "expected init frame first");
    }
    std::vector<std::uint8_t> body(hr.Fixed64());
    if (!body.empty() &&
        !util::ReadFully(parent_fd, body.data(), body.size())) {
      WorkerDie(rank, "truncated init frame");
    }
    rt.InitFromBody(body);
  }

  std::vector<std::uint8_t> reply;
  std::uint8_t len8[8];
  for (;;) {
    std::uint8_t op8[8];
    if (!util::ReadFully(parent_fd, op8, 8)) _exit(0);  // parent gone
    const std::uint64_t op = util::WireReader(op8, 8).Fixed64();
    if (op == kOpShutdown) _exit(0);
    if (op == kOpRankStep) {
      std::uint8_t round8[8];
      if (!util::ReadFully(parent_fd, round8, 8)) {
        WorkerDie(rank, "truncated step frame");
      }
      const int round =
          static_cast<int>(util::WireReader(round8, 8).Fixed64());
      rt.RunRound(round, peer, reply);
    } else if (op == kOpRankCollect) {
      rt.Collect(reply);
    } else {
      WorkerDie(rank, "bad opcode from parent");
    }
    util::WireWriter w(len8, len8 + 8);
    w.Fixed64(reply.size());
    if (!util::WriteFully(parent_fd, len8, 8) ||
        (!reply.empty() &&
         !util::WriteFully(parent_fd, reply.data(), reply.size()))) {
      WorkerDie(rank, "parent died (rank reply)");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Parent side.
// ---------------------------------------------------------------------

std::uint64_t PackRankBuffers(
    const std::uint64_t* rank_bounds, int num_ranks,
    std::vector<std::vector<OutMessage>>& outbox,
    std::vector<std::uint64_t>& seg_bytes,
    std::vector<std::uint64_t>& send_displ,
    std::vector<std::vector<std::uint8_t>>& send_buf) {
  const int R = num_ranks;
  const std::uint64_t* rb = rank_bounds;

  // Count pass by src rank: exact wire bytes per (src, dst) segment.
  seg_bytes.assign(static_cast<std::size_t>(R) * R, 0);
  for (int s = 0; s < R; ++s) {
    CountSegmentBytes(rb, R, outbox, rb[s], rb[s + 1],
                      seg_bytes.data() + static_cast<std::size_t>(s) * R);
  }

  // Displacement rows + send-buffer sizing (MPI_Alltoallv's sdispls).
  send_displ.assign(static_cast<std::size_t>(R) * (R + 1), 0);
  send_buf.resize(R);
  std::uint64_t total_bytes = 0;
  for (int s = 0; s < R; ++s) {
    std::uint64_t run = 0;
    for (int d = 0; d < R; ++d) {
      send_displ[static_cast<std::size_t>(s) * (R + 1) + d] = run;
      run += seg_bytes[static_cast<std::size_t>(s) * R + d];
    }
    send_displ[static_cast<std::size_t>(s) * (R + 1) + R] = run;
    send_buf[s].resize(run);
    total_bytes += run;
  }

  // Pack pass by src rank — the shared codec, so the segment encoding
  // (and thus byte accounting) is identical to SerializedTransport's.
  // Outboxes are consumed here.
  for (int s = 0; s < R; ++s) {
    std::vector<util::WireWriter> seg;
    seg.reserve(R);
    for (int d = 0; d < R; ++d) {
      std::uint8_t* base =
          send_buf[s].data() +
          send_displ[static_cast<std::size_t>(s) * (R + 1) + d];
      seg.emplace_back(base,
                       base + seg_bytes[static_cast<std::size_t>(s) * R + d]);
    }
    PackSegments(rb, R, outbox, rb[s], rb[s + 1], seg.data());
  }
  return total_bytes;
}

std::uint64_t UnpackRankBuffers(
    const std::uint64_t* rank_bounds, int num_ranks,
    const std::vector<std::uint64_t>& seg_bytes,
    const std::vector<std::vector<std::uint8_t>>& recv_buf,
    std::vector<std::vector<InMessage>>& inbox) {
  const int R = num_ranks;
  std::uint64_t received = 0;
  for (int r = 0; r < R; ++r) {
    std::uint64_t off = 0;
    for (int s = 0; s < R; ++s) {
      const std::uint64_t len = seg_bytes[static_cast<std::size_t>(s) * R + r];
      DecodeSegment(recv_buf[r].data() + off, len, rank_bounds[r],
                    rank_bounds[r + 1], inbox);
      off += len;
    }
    received += off;
  }
  return received;
}

ProcessTransport::~ProcessTransport() { Shutdown(); }

namespace {

// Test-only startup fault injection (InjectStartFault): which 1-based
// resource allocation of the next TryStart fails, and the call-order
// counter that TryStart resets on entry. socketpair() and fork() calls
// share one counter so a test can hit any point of the topology build.
int g_fault_nth = 0;
int g_alloc_count = 0;

bool AllocFaultArmed() {
  ++g_alloc_count;
  if (g_fault_nth != 0 && g_alloc_count == g_fault_nth) {
    g_fault_nth = 0;  // one-shot
    errno = EMFILE;
    return true;
  }
  return false;
}

int CheckedSocketpair(int fds[2]) {
  if (AllocFaultArmed()) return -1;
  return ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
}

pid_t CheckedFork() {
  if (AllocFaultArmed()) return -1;
  return ::fork();
}

}  // namespace

void ProcessTransport::InjectStartFault(int nth) { g_fault_nth = nth; }

void ProcessTransport::Start(NodeId n, int num_ranks,
                             const std::uint64_t* rank_bounds) {
  std::string error;
  KCORE_CHECK_MSG(TryStart(n, num_ranks, rank_bounds, &error),
                  "ProcessTransport::Start failed: " << error);
}

bool ProcessTransport::TryStart(NodeId n, int num_ranks,
                                const std::uint64_t* rank_bounds,
                                std::string* error) {
  KCORE_CHECK_MSG(!started_, "ProcessTransport::Start() called twice");
  KCORE_CHECK_MSG(num_ranks >= 1, "ProcessTransport needs >= 1 rank, got "
                                      << num_ranks);
  g_alloc_count = 0;
  n_ = n;
  num_ranks_ = num_ranks;
  rank_bounds_.assign(rank_bounds, rank_bounds + num_ranks + 1);

  const int R = num_ranks_;
  // Fail up front, with an actionable message, rather than mid-topology
  // with EMFILE: while forking, the parent briefly holds both ends of
  // every pair — 2R parent<->worker fds plus R(R-1) peer fds.
  struct rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
    const std::uint64_t need =
        2ULL * R + static_cast<std::uint64_t>(R) * (R - 1) + 64;  // headroom
    KCORE_CHECK_MSG(need <= nofile.rlim_cur,
                    "ProcessTransport with " << R << " ranks needs ~" << need
                        << " file descriptors but RLIMIT_NOFILE is "
                        << nofile.rlim_cur
                        << " — lower the rank count or raise ulimit -n");
  }
  // All socketpairs are created before the first fork so every worker
  // sees the complete topology and can close exactly what it does not
  // own. pc[r] = parent<->worker r; pp[i][j] (i < j) = worker i <->
  // worker j, end [0] for the lower rank. Every slot starts at -1 so
  // the failure paths can close exactly what exists.
  std::vector<std::array<int, 2>> pc(R, {-1, -1});
  std::vector<std::vector<std::array<int, 2>>> pp(R);
  for (int r = 0; r < R; ++r) pp[r].assign(R, {-1, -1});

  auto close_all = [&] {
    for (auto& p : pc) {
      for (int& fd : p) {
        if (fd >= 0) {
          ::close(fd);
          fd = -1;
        }
      }
    }
    for (auto& row : pp) {
      for (auto& p : row) {
        for (int& fd : p) {
          if (fd >= 0) {
            ::close(fd);
            fd = -1;
          }
        }
      }
    }
  };

  for (int r = 0; r < R; ++r) {
    if (CheckedSocketpair(pc[r].data()) != 0) {
      const int err = errno;
      pc[r] = {-1, -1};  // contents are undefined after a failed call
      close_all();
      *error = "socketpair(parent, rank " + std::to_string(r) +
               ") failed, errno " + std::to_string(err);
      return false;
    }
  }
  for (int i = 0; i < R; ++i) {
    for (int j = i + 1; j < R; ++j) {
      if (CheckedSocketpair(pp[i][j].data()) != 0) {
        const int err = errno;
        pp[i][j] = {-1, -1};
        close_all();
        *error = "socketpair(rank " + std::to_string(i) + ", rank " +
                 std::to_string(j) + ") failed, errno " + std::to_string(err);
        return false;
      }
    }
  }

  pids_.assign(R, -1);
  parent_fd_.assign(R, -1);
  for (int r = 0; r < R; ++r) {
    const pid_t pid = CheckedFork();
    if (pid < 0) {
      const int err = errno;
      // Unwind: closing every fd first makes each already-forked worker
      // (blocked reading its parent pair) see EOF and exit; the kill is
      // belt-and-braces for a worker wedged elsewhere, and the blocking
      // reap guarantees no zombie outlives the failed start.
      close_all();
      for (int q = 0; q < r; ++q) {
        if (pids_[q] < 0) continue;
        ::kill(pids_[q], SIGKILL);
        pid_t got;
        int status = 0;
        do {
          got = ::waitpid(pids_[q], &status, 0);
        } while (got < 0 && errno == EINTR);
        pids_[q] = -1;
      }
      pids_.clear();
      parent_fd_.clear();
      *error = "fork of rank " + std::to_string(r) + " failed, errno " +
               std::to_string(err);
      return false;
    }
    if (pid == 0) {
      // Worker r: keep its parent-pair end and its peer ends, close the
      // rest (including every other worker's fds, inherited because all
      // pairs predate every fork).
      std::vector<int> peer(R, -1);
      for (int q = 0; q < R; ++q) {
        ::close(pc[q][0]);
        if (q != r) ::close(pc[q][1]);
      }
      for (int i = 0; i < R; ++i) {
        for (int j = i + 1; j < R; ++j) {
          if (i == r) {
            peer[j] = pp[i][j][0];
            ::close(pp[i][j][1]);
          } else if (j == r) {
            peer[i] = pp[i][j][1];
            ::close(pp[i][j][0]);
          } else {
            ::close(pp[i][j][0]);
            ::close(pp[i][j][1]);
          }
        }
      }
      // Neither main ever returns. A rank-compute worker inherits the
      // protocol object through the fork (PrepareRankCompute ran before
      // this point), but its authoritative per-node state arrives over
      // the socket in the init frame.
      if (rank_compute_) {
        RankWorkerMain(r, R, pc[r][1], peer, rank_setup_.protocol);
      }
      WorkerMain(r, R, pc[r][1], peer);  // never returns
    }
    pids_[r] = pid;
  }

  // Parent keeps only its end of each worker pair; the peer pairs belong
  // to the workers alone (so a dead worker surfaces as EOF to its peers,
  // not as a silently-open descriptor here).
  for (int r = 0; r < R; ++r) {
    ::close(pc[r][1]);
    parent_fd_[r] = pc[r][0];
  }
  for (int i = 0; i < R; ++i) {
    for (int j = i + 1; j < R; ++j) {
      ::close(pp[i][j][0]);
      ::close(pp[i][j][1]);
    }
  }
  started_ = true;

  if (rank_compute_) SendRankInitFrames();
  return true;
}

void ProcessTransport::SendRankInitFrames() {
  const int R = num_ranks_;
  const RankComputeSetup& s = rank_setup_;
  const std::uint64_t* rb = rank_bounds_.data();
  std::vector<std::uint8_t> state;
  for (int r = 0; r < R; ++r) {
    body_.clear();
    util::WireAppender a(body_);
    a.Fixed64(s.seed);
    a.Varint(s.payload_limit);
    a.Varint(s.track_quiescence ? 1 : 0);
    a.Varint(n_);
    a.Varint(static_cast<std::uint64_t>(R));
    for (std::uint64_t b : rank_bounds_) a.Fixed64(b);
    if (!s.graph_path.empty()) {
      a.Varint(1);  // mode: worker-side LoadBinarySlice
      a.Varint(s.graph_path.size());
      a.Raw(s.graph_path.data(), s.graph_path.size());
    } else {
      // Mode 0: wire-serialize rank r's slice — every edge incident to
      // [rb[r], rb[r+1]), in global edge-id order so the worker-built
      // adjacency (sorted by (to, edge)) matches the full graph's
      // parallel-edge tie order bit for bit.
      a.Varint(0);
      std::uint64_t m_r = 0;
      for (const graph::Edge& e : s.graph->edges()) {
        if (OwnerIndex(rb, R, e.u) == r || OwnerIndex(rb, R, e.v) == r) ++m_r;
      }
      a.Varint(m_r);
      for (const graph::Edge& e : s.graph->edges()) {
        if (OwnerIndex(rb, R, e.u) != r && OwnerIndex(rb, R, e.v) != r) {
          continue;
        }
        a.Varint(e.u);
        a.Varint(e.v);
        a.Double(e.w);
      }
    }
    for (NodeId v = static_cast<NodeId>(rb[r]);
         v < static_cast<NodeId>(rb[r + 1]); ++v) {
      state.clear();
      util::WireAppender sa(state);
      s.protocol->SaveNodeState(v, sa);
      a.Varint(state.size());
      a.Raw(state.data(), state.size());
    }

    std::uint8_t hdr[16];
    util::WireWriter w(hdr, hdr + 16);
    w.Fixed64(kOpRankInit);
    w.Fixed64(body_.size());
    if (!util::WriteFully(parent_fd_[r], hdr, 16) ||
        (!body_.empty() &&
         !util::WriteFully(parent_fd_[r], body_.data(), body_.size()))) {
      ReportDeadWorker(r, "receiving its init frame");
    }
  }
}

void ProcessTransport::PrepareRankCompute(const RankComputeSetup& setup) {
  KCORE_CHECK_MSG(!started_,
                  "PrepareRankCompute must precede ProcessTransport::Start()");
  KCORE_CHECK_MSG(setup.protocol != nullptr,
                  "PrepareRankCompute needs a protocol");
  KCORE_CHECK_MSG(setup.graph != nullptr || !setup.graph_path.empty(),
                  "PrepareRankCompute needs a graph or a graph path");
  rank_setup_ = setup;
  rank_compute_ = true;
}

RankRoundResult ProcessTransport::RankStep(int round) {
  {
    util::MutexLock lk(teardown_mu_);
    KCORE_CHECK_MSG(started_ && !shutdown_,
                    "ProcessTransport::RankStep outside Start()..Shutdown()");
  }
  KCORE_CHECK_MSG(rank_compute_,
                  "RankStep without PrepareRankCompute — the workers are "
                  "running the byte-shuttle loop");
  const int R = num_ranks_;
  std::uint8_t hdr[16];
  util::WireWriter w(hdr, hdr + 16);
  w.Fixed64(kOpRankStep);
  w.Fixed64(static_cast<std::uint64_t>(round));
  for (int r = 0; r < R; ++r) {
    if (!util::WriteFully(parent_fd_[r], hdr, 16)) {
      ReportDeadWorker(r, "receiving its step frame");
    }
  }

  // Merge the stats partials in fixed rank order: sums for the volume
  // counters, max for max_entries, OR for the quiescence flag, and an
  // exact union for the distinct-value census (slices can broadcast the
  // same value, so summing per-slice counts would overcount).
  RankRoundResult out{};
  std::unordered_set<std::uint64_t> distinct;
  for (int r = 0; r < R; ++r) {
    std::uint8_t len8[8];
    if (!util::ReadFully(parent_fd_[r], len8, 8)) {
      ReportDeadWorker(r, "returning its round stats");
    }
    reply_.resize(util::WireReader(len8, 8).Fixed64());
    if (!reply_.empty() &&
        !util::ReadFully(parent_fd_[r], reply_.data(), reply_.size())) {
      ReportDeadWorker(r, "returning its round stats");
    }
    util::WireReader br(reply_.data(), reply_.size());
    out.active_nodes += br.Varint();
    out.messages += br.Varint();
    out.entries += br.Varint();
    out.max_entries = std::max(out.max_entries,
                               static_cast<std::size_t>(br.Varint()));
    out.bytes_sent += br.Varint();
    out.bytes_received += br.Varint();
    out.bcast_bytes_sent += br.Varint();
    out.bcast_bytes_received += br.Varint();
    out.bcast_bytes_per_neighbor += br.Varint();
    out.num_halted += br.Varint();
    out.changed = br.Varint() != 0 || out.changed;
    const std::uint64_t k = br.Varint();
    for (std::uint64_t i = 0; i < k; ++i) distinct.insert(br.Fixed64());
    KCORE_CHECK_MSG(!br.failed() && br.remaining() == 0,
                    "malformed stats reply from rank " << r);
  }
  out.distinct_values = distinct.size();
  return out;
}

void ProcessTransport::CollectRankState(Protocol& p,
                                        std::vector<Payload>& prev_bcast,
                                        std::vector<char>& prev_has,
                                        std::vector<char>& halted) {
  {
    util::MutexLock lk(teardown_mu_);
    KCORE_CHECK_MSG(
        started_ && !shutdown_,
        "ProcessTransport::CollectRankState outside Start()..Shutdown()");
  }
  KCORE_CHECK_MSG(rank_compute_, "CollectRankState without PrepareRankCompute");
  const int R = num_ranks_;
  std::uint8_t op8[8];
  util::WireWriter w(op8, op8 + 8);
  w.Fixed64(kOpRankCollect);
  for (int r = 0; r < R; ++r) {
    if (!util::WriteFully(parent_fd_[r], op8, 8)) {
      ReportDeadWorker(r, "receiving its collect frame");
    }
  }
  for (int r = 0; r < R; ++r) {
    std::uint8_t len8[8];
    if (!util::ReadFully(parent_fd_[r], len8, 8)) {
      ReportDeadWorker(r, "returning its collected state");
    }
    reply_.resize(util::WireReader(len8, 8).Fixed64());
    if (!reply_.empty() &&
        !util::ReadFully(parent_fd_[r], reply_.data(), reply_.size())) {
      ReportDeadWorker(r, "returning its collected state");
    }
    util::WireReader br(reply_.data(), reply_.size());
    for (NodeId v = static_cast<NodeId>(rank_bounds_[r]);
         v < static_cast<NodeId>(rank_bounds_[r + 1]); ++v) {
      halted[v] = br.Varint() != 0 ? 1 : 0;
      const bool has = br.Varint() != 0;
      prev_has[v] = has ? 1 : 0;
      if (has) {
        prev_bcast[v].resize(br.Varint());
        for (double& x : prev_bcast[v]) x = br.Double();
      } else {
        prev_bcast[v].clear();
      }
      const std::uint64_t state_len = br.Varint();
      body_.resize(state_len);
      KCORE_CHECK_MSG(br.TryRaw(body_.data(), state_len),
                      "truncated collect body from rank " << r);
      util::WireReader sr(body_.data(), body_.size());
      p.LoadNodeState(v, sr);
      KCORE_CHECK_MSG(!sr.failed() && sr.remaining() == 0,
                      "protocol state block length mismatch for node " << v);
    }
    KCORE_CHECK_MSG(!br.failed() && br.remaining() == 0,
                    "malformed collect reply from rank " << r);
  }
}

void ProcessTransport::ReportDeadWorker(int rank, const char* stage) {
  int status = 0;
  const pid_t got = ::waitpid(pids_[rank], &status, WNOHANG);
  std::string detail = "still running (socket error)";
  if (got == pids_[rank]) {
    pids_[rank] = -1;  // reaped here; Shutdown must not wait again
    if (WIFEXITED(status)) {
      detail = "exited with status " + std::to_string(WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
      detail = "killed by signal " + std::to_string(WTERMSIG(status));
    }
  } else if (got < 0) {
    detail = "already reaped";
  }
  KCORE_CHECK_MSG(false, "process transport rank " << rank << " died while "
                             << stage << ": " << detail);
  ::abort();  // silence "noreturn function returns": the macro hides
              // CheckFailed's [[noreturn]] behind a conditional
}

WireVolume ProcessTransport::Exchange(const ExchangeContext& ctx) {
  {
    util::MutexLock lk(teardown_mu_);
    KCORE_CHECK_MSG(started_ && !shutdown_,
                    "ProcessTransport::Exchange outside Start()..Shutdown()");
  }
  KCORE_CHECK_MSG(ctx.num_ranks == num_ranks_,
                  "rank topology changed mid-run: Start() saw "
                      << num_ranks_ << " ranks, Exchange sees "
                      << ctx.num_ranks);
  auto& outbox = *ctx.outbox;
  auto& inbox = *ctx.inbox;
  const int R = num_ranks_;
  const std::uint64_t* rb = rank_bounds_.data();

  // Count + pack (shared with the MPI flavor). Runs on the caller — the
  // parent is the data's home; the per-rank parallelism of this backend
  // lives in the worker processes.
  const std::uint64_t total_bytes =
      PackRankBuffers(rb, R, outbox, seg_bytes_, send_displ_, send_buf_);
  recv_buf_.resize(R);

  // Ship every src rank its framed send buffer: opcode, count row,
  // displacement row, contiguous payload.
  frame_.resize(static_cast<std::size_t>(1 + R + R + 1) * 8);
  for (int r = 0; r < R; ++r) {
    util::WireWriter w(frame_.data(), frame_.data() + frame_.size());
    w.Fixed64(kOpRound);
    for (int d = 0; d < R; ++d) {
      w.Fixed64(seg_bytes_[static_cast<std::size_t>(r) * R + d]);
    }
    for (int d = 0; d <= R; ++d) {
      w.Fixed64(send_displ_[static_cast<std::size_t>(r) * (R + 1) + d]);
    }
    if (!util::WriteFully(parent_fd_[r], frame_.data(), frame_.size()) ||
        (!send_buf_[r].empty() &&
         !util::WriteFully(parent_fd_[r], send_buf_[r].data(),
                           send_buf_[r].size()))) {
      ReportDeadWorker(r, "sending its round frame");
    }
  }

  // Read every dst rank's combined receive buffer back: per-src count
  // row (verified against this side's seg_bytes column — the row made
  // TWO socket hops to get back here), then the concatenated segments.
  reply_rows_.resize(static_cast<std::size_t>(R) * 8);
  for (int r = 0; r < R; ++r) {
    if (!util::ReadFully(parent_fd_[r], reply_rows_.data(),
                         reply_rows_.size())) {
      ReportDeadWorker(r, "returning its exchanged segments");
    }
    util::WireReader hr(reply_rows_.data(), reply_rows_.size());
    std::uint64_t total = 0;
    for (int s = 0; s < R; ++s) {
      const std::uint64_t got = hr.Fixed64();
      const std::uint64_t want =
          seg_bytes_[static_cast<std::size_t>(s) * R + r];
      KCORE_CHECK_MSG(got == want,
                      "rank " << r << " returned " << got
                              << " bytes from src rank " << s << ", expected "
                              << want << " — segment corrupted in transit");
      total += got;
    }
    recv_buf_[r].resize(total);
    if (!recv_buf_[r].empty() &&
        !util::ReadFully(parent_fd_[r], recv_buf_[r].data(),
                         recv_buf_[r].size())) {
      ReportDeadWorker(r, "returning its exchanged segments");
    }
  }

  // Unpack: inboxes are rebuilt EXCLUSIVELY from the bytes that came
  // back off the sockets. Clear (and pre-size, when the census ran
  // parallel) every inbox first, then decode each dst rank's buffer in
  // ascending src-rank order — ascending src rank x ascending sender id
  // within a segment = sender-id-sorted inboxes, the conformance
  // contract.
  ClearAndReserveInboxes(ctx, 0, n_);
  UnpackRankBuffers(rb, R, seg_bytes_, recv_buf_, inbox);

  // bytes_received = what actually arrived over the parent sockets. The
  // per-segment audit already happened above (the reply rows, verified
  // against this side's seg_bytes columns after two socket hops), and
  // DecodeSegment checked every segment's structure — so this sum
  // equals total_bytes by construction rather than by a redundant check.
  std::uint64_t received = 0;
  for (int r = 0; r < R; ++r) received += recv_buf_[r].size();
  return WireVolume{static_cast<std::size_t>(total_bytes),
                    static_cast<std::size_t>(received)};
}

bool ProcessTransport::Shutdown() {
  // Held across the whole teardown (including the reap loop): a
  // concurrent second call must not observe shutdown_ == true and
  // report a verdict before the workers are actually down.
  util::MutexLock lk(teardown_mu_);
  if (!started_ || shutdown_) return clean_shutdown_;
  shutdown_ = true;
  clean_shutdown_ = true;
  std::uint8_t op8[8];
  util::WireWriter w(op8, op8 + 8);
  w.Fixed64(kOpShutdown);
  for (int r = 0; r < num_ranks_; ++r) {
    if (parent_fd_[r] >= 0) {
      // Best-effort: a dead worker just means EPIPE here, which the
      // reaping below turns into a non-clean status.
      (void)util::WriteFully(parent_fd_[r], op8, 8);
      ::close(parent_fd_[r]);
      parent_fd_[r] = -1;
    }
  }
  for (int r = 0; r < num_ranks_; ++r) {
    if (pids_[r] < 0) {
      clean_shutdown_ = false;  // died (and was reaped) mid-run
      continue;
    }
    int status = 0;
    pid_t got;
    do {
      got = ::waitpid(pids_[r], &status, 0);
    } while (got < 0 && errno == EINTR);
    if (got != pids_[r] || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      clean_shutdown_ = false;
    }
    pids_[r] = -1;
  }
  return clean_shutdown_;
}

}  // namespace kcore::distsim
