// Persistent worker pool for the round scheduler.
//
// The simulator executes the compute phase of every synchronous round as a
// parallel-for over node ids. Spawning std::threads per round costs more
// than the compute phase itself on small graphs (thread creation is
// ~10-50us each; a round over 100k light nodes is comparable), so the
// pool keeps its workers alive across rounds and hands them one statically
// partitioned shard per ParallelFor call.
//
// Determinism contract: the shard for a given (range, shard index) is a
// fixed contiguous id interval, independent of scheduling order. Callers
// guarantee disjoint writes per id, so results are bit-identical to a
// sequential sweep no matter how the OS interleaves the workers. The
// contract holds for ANY ascending contiguous partition, not just the
// equal-count one — the bounded ParallelFor/ParallelReduce overloads
// accept caller-precomputed boundaries (e.g. WeightedShardBounds, which
// equalizes per-shard cost on skewed inputs) and keep the same guarantee.
// How the pool slots into the engine's round pipeline (and how thread
// shards relate to the transport layer's rank partition) is mapped in
// docs/ARCHITECTURE.md.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kcore::distsim {

class ThreadPool {
 public:
  // Total parallelism including the calling thread: `num_threads` >= 1
  // means num_threads - 1 background workers plus the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of shards every ParallelFor splits into (caller + workers).
  int num_shards() const { return static_cast<int>(workers_.size()) + 1; }

  // Splits [begin, end) into num_shards() equal contiguous chunks and
  // runs body(chunk_begin, chunk_end) on each, one chunk per thread.
  // Blocks until every chunk finishes. The caller executes shard 0, so a
  // single-shard pool degenerates to a plain loop with zero locking.
  // If body throws on any shard the pool drains (all shards finish or
  // fail), then one of the exceptions is rethrown here on the caller's
  // thread; the pool stays usable afterwards.
  void ParallelFor(
      std::uint64_t begin, std::uint64_t end,
      const std::function<void(std::uint64_t, std::uint64_t)>& body);

  // Shard-indexed variant: body(shard, chunk_begin, chunk_end) — the same
  // static partition, with the shard index exposed so each chunk can use
  // shard-private scratch (offset rows, partial buffers) without a merge.
  void ParallelFor(
      std::uint64_t begin, std::uint64_t end,
      const std::function<void(int, std::uint64_t, std::uint64_t)>& body);

  // Sharded map-reduce. Like ParallelFor, but body also receives its shard
  // index so each shard can accumulate partials into a slot the caller
  // owns; after the barrier, merge(shard) runs on the caller's thread for
  // every shard in ascending order. The fixed merge order is the
  // determinism hook: order-sensitive reductions (floating-point sums,
  // container concatenation) come out identical at any thread count.
  // merge is skipped entirely when the range is empty, and is not run if
  // any body shard threw (the exception is rethrown first).
  void ParallelReduce(
      std::uint64_t begin, std::uint64_t end,
      const std::function<void(int, std::uint64_t, std::uint64_t)>& body,
      const std::function<void(int)>& merge);

  // Bounded variants: run over a caller-precomputed partition instead of
  // the equal-count split. `bounds` must be ascending with exactly
  // num_shards() + 1 entries; shard s executes [bounds[s], bounds[s+1])
  // (empty shards allowed — their body is skipped). Everything else —
  // barrier, exception drain, merge-in-shard-order — matches the
  // range-based overloads, so swapping partitions cannot change results,
  // only per-shard load.
  void ParallelFor(
      std::span<const std::uint64_t> bounds,
      const std::function<void(int, std::uint64_t, std::uint64_t)>& body);
  void ParallelReduce(
      std::span<const std::uint64_t> bounds,
      const std::function<void(int, std::uint64_t, std::uint64_t)>& body,
      const std::function<void(int)>& merge);

  // The contiguous chunk [begin, end) is split into for a given shard —
  // pure arithmetic, exposed so callers and tests can pin the static
  // partition the determinism contract rests on. Returns an empty range
  // (b == e) for shards past the end of a short range.
  static std::pair<std::uint64_t, std::uint64_t> ShardBounds(
      std::uint64_t begin, std::uint64_t end, int shard, int num_shards);

  // Weighted partition of [0, weights.size()): boundaries (num_shards + 1
  // entries, bounds[0] == 0, bounds.back() == weights.size(), ascending)
  // chosen greedily so each shard carries approximately its fair share of
  // the total weight. Each shard's target is a fair share of the weight
  // REMAINING after the earlier shards closed, and an item that would
  // overshoot the target joins the shard only if that lands closer to it
  // than stopping short — so a hub whose weight dwarfs the average ends
  // up alone in its own shard (wherever its id falls) while the later
  // shards re-split the rest instead of coming out empty. All-zero
  // weights fall back to the equal-count split. Feed the result to the
  // bounded ParallelFor/ParallelReduce overloads above.
  static std::vector<std::uint64_t> WeightedShardBounds(
      std::span<const std::uint64_t> weights, int num_shards);

 private:
  // Runs body sharded over [begin, end) and blocks until the barrier;
  // rethrows the first shard failure. Shared by ParallelFor/Reduce.
  // `bounds` (nullable) overrides the equal-count split with explicit
  // per-shard boundaries (num_shards() + 1 entries).
  void Dispatch(
      std::uint64_t begin, std::uint64_t end, const std::uint64_t* bounds,
      const std::function<void(int, std::uint64_t, std::uint64_t)>& body);
  // KCORE_CHECKs the bounded-overload contract (size, monotonicity).
  void CheckBounds(std::span<const std::uint64_t> bounds) const;
  void WorkerLoop(int shard);
  // Reads the job descriptor fields lock-free: they are published under
  // mu_ before generation_ is bumped (Dispatch) and stay frozen until
  // pending_ drains, and a worker only gets here after observing the
  // new generation under mu_ — the mutex release/acquire pair is the
  // happens-before edge. The analysis cannot express that protocol, so
  // the function opts out rather than taking a redundant lock on the
  // hot path.
  void RunShard(int shard) KCORE_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;

  util::Mutex mu_;
  std::condition_variable work_cv_;   // signals a new generation
  std::condition_variable done_cv_;   // signals pending_ hit zero
  std::uint64_t generation_ KCORE_GUARDED_BY(mu_) = 0;  // bumped per job
  int pending_ KCORE_GUARDED_BY(mu_) = 0;  // workers still in this job
  bool stop_ KCORE_GUARDED_BY(mu_) = false;

  // First exception a worker shard raised this job (rethrown by
  // ParallelFor after the drain).
  std::exception_ptr error_ KCORE_GUARDED_BY(mu_);

  // Current job descriptor: written under mu_ by Dispatch, read
  // lock-free by RunShard under the generation protocol above, cleared
  // under mu_ by the drain.
  const std::function<void(int, std::uint64_t, std::uint64_t)>* body_
      KCORE_GUARDED_BY(mu_) = nullptr;
  std::uint64_t job_begin_ KCORE_GUARDED_BY(mu_) = 0;
  std::uint64_t job_end_ KCORE_GUARDED_BY(mu_) = 0;
  // Explicit per-shard boundaries for the current job (bounded
  // overloads); null means the equal-count ShardBounds split.
  const std::uint64_t* job_bounds_ KCORE_GUARDED_BY(mu_) = nullptr;
};

}  // namespace kcore::distsim
