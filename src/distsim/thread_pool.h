// Persistent worker pool for the round scheduler.
//
// The simulator executes the compute phase of every synchronous round as a
// parallel-for over node ids. Spawning std::threads per round costs more
// than the compute phase itself on small graphs (thread creation is
// ~10-50us each; a round over 100k light nodes is comparable), so the
// pool keeps its workers alive across rounds and hands them one statically
// partitioned shard per ParallelFor call.
//
// Determinism contract: the shard for a given (range, shard index) is a
// fixed contiguous id interval, independent of scheduling order. Callers
// guarantee disjoint writes per id, so results are bit-identical to a
// sequential sweep no matter how the OS interleaves the workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kcore::distsim {

class ThreadPool {
 public:
  // Total parallelism including the calling thread: `num_threads` >= 1
  // means num_threads - 1 background workers plus the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of shards every ParallelFor splits into (caller + workers).
  int num_shards() const { return static_cast<int>(workers_.size()) + 1; }

  // Splits [begin, end) into num_shards() equal contiguous chunks and
  // runs body(chunk_begin, chunk_end) on each, one chunk per thread.
  // Blocks until every chunk finishes. The caller executes shard 0, so a
  // single-shard pool degenerates to a plain loop with zero locking.
  // If body throws on any shard the pool drains (all shards finish or
  // fail), then one of the exceptions is rethrown here on the caller's
  // thread; the pool stays usable afterwards.
  void ParallelFor(
      std::uint64_t begin, std::uint64_t end,
      const std::function<void(std::uint64_t, std::uint64_t)>& body);

 private:
  void WorkerLoop(int shard);
  void RunShard(int shard);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals a new generation
  std::condition_variable done_cv_;   // signals pending_ hit zero
  std::uint64_t generation_ = 0;      // bumped per ParallelFor
  int pending_ = 0;                   // workers still running this job
  bool stop_ = false;

  // First exception a worker shard raised this job (rethrown by
  // ParallelFor after the drain).
  std::exception_ptr error_;

  // Current job, valid while pending_ > 0 (guarded by generation_).
  const std::function<void(std::uint64_t, std::uint64_t)>* body_ = nullptr;
  std::uint64_t job_begin_ = 0;
  std::uint64_t job_end_ = 0;
  std::uint64_t job_chunk_ = 0;
};

}  // namespace kcore::distsim
