// Experimental MPI flavor of the process transport (built only with
// -DKCORE_WITH_MPI=ON; see process_transport.h for the design it
// mirrors). The hub/worker architecture is IDENTICAL to the socketpair
// backend — the engine runs on MPI rank 0, ships every worker rank its
// framed send buffer, the ranks exchange packed per-(src, dst) segments
// collectively, and the combined receive buffers travel back to rank 0
// for the unpack — with the transport legs swapped:
//
//   parent->worker frame (opcode/counts/displs/payload)  ->  MPI_Send
//   worker<->worker socketpair alltoallv                 ->  MPI_Alltoallv
//   worker->parent reply (counts/segments)               ->  MPI_Send
//
// Deployment contract: mpirun launches the SAME binary on every rank;
// rank 0 builds the graph and the engine (with
// Engine::SetRankCount(world_size) and this transport), every other
// rank calls MpiTransportWorkerMain() right after MPI_Init and exits
// with its return value. The segment encoding and ordering invariants
// are exactly ProcessTransport's, so the conformance contract carries
// over unchanged; this file is compile-gated and NOT exercised by the
// default test suite (the container has no MPI toolchain), hence
// "experimental" — treat it as a worked example of porting the frame
// protocol onto a real collective, and validate with the conformance
// battery under mpirun before relying on it (CI runs tools/mpi_smoke
// under mpirun -np 4 when the toolchain is present).
//
// Per-rank compute (Engine::SetPerRankCompute) is NOT supported here:
// this backend stays a byte shuttle — the compute phase runs on rank 0
// and only packed segments cross ranks. SupportsRankCompute() is left
// at the base-class default (false), so an engine configured for
// per-rank compute on this transport fails loudly at Start() instead
// of silently computing on the hub. Porting it means replaying
// ProcessTransport's INIT/STEP/COLL frames over MPI_Send and running
// SliceRuntime (process_transport.cc) inside each rank's receive loop.
#include "distsim/process_transport.h"

#ifdef KCORE_WITH_MPI

#include <mpi.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/wire.h"

namespace kcore::distsim {

namespace {

using graph::NodeId;

constexpr int kTagFrame = 71;
constexpr int kTagReply = 72;

// MPI_Send/Recv with the same null-buffer guard CheckedAlltoallv needs:
// pedantic implementations reject a null pointer even for zero counts,
// and an empty std::vector's data() is null.
int SendBytes(const std::vector<std::uint8_t>& buf, int dst, int tag) {
  static std::uint8_t dummy = 0;
  const void* p = buf.empty() ? &dummy : buf.data();
  return MPI_Send(p, static_cast<int>(buf.size()), MPI_BYTE, dst, tag,
                  MPI_COMM_WORLD);
}

int RecvBytes(std::vector<std::uint8_t>& buf, int src, int tag) {
  static std::uint8_t dummy = 0;
  void* p = buf.empty() ? &dummy : buf.data();
  MPI_Status st;
  return MPI_Recv(p, static_cast<int>(buf.size()), MPI_BYTE, src, tag,
                  MPI_COMM_WORLD, &st);
}

// Round/shutdown control travels as one broadcast int so every rank
// leaves its receive loop together.
enum MpiOp : int { kMpiRound = 1, kMpiShutdown = 2 };

void CheckedAlltoallv(const std::vector<std::uint8_t>& send,
                      const std::vector<int>& send_counts,
                      const std::vector<int>& send_displ,
                      std::vector<std::uint8_t>& recv,
                      const std::vector<int>& recv_counts,
                      const std::vector<int>& recv_displ) {
  // MPI_Alltoallv rejects null buffers on some implementations even for
  // zero counts; keep one live byte around.
  static std::uint8_t dummy = 0;
  const void* sb = send.empty() ? &dummy : send.data();
  void* rb = recv.empty() ? &dummy : recv.data();
  KCORE_CHECK_MSG(
      MPI_Alltoallv(sb, send_counts.data(), send_displ.data(), MPI_BYTE, rb,
                    recv_counts.data(), recv_displ.data(),
                    MPI_BYTE, MPI_COMM_WORLD) == MPI_SUCCESS,
      "MPI_Alltoallv failed");
}

// The R x R segment-byte matrix is broadcast so every rank can derive
// both its send row and its receive column — the counts/displacements
// an alltoallv needs on both sides.
void BcastSegBytes(std::vector<std::uint64_t>& seg_bytes, int R) {
  seg_bytes.resize(static_cast<std::size_t>(R) * R);
  KCORE_CHECK_MSG(MPI_Bcast(seg_bytes.data(), R * R, MPI_UINT64_T, 0,
                            MPI_COMM_WORLD) == MPI_SUCCESS,
                  "MPI_Bcast of the segment matrix failed");
}

void RowsToIntCounts(const std::vector<std::uint64_t>& seg_bytes, int R,
                     int rank, std::vector<int>& send_counts,
                     std::vector<int>& send_displ,
                     std::vector<int>& recv_counts,
                     std::vector<int>& recv_displ) {
  send_counts.assign(R, 0);
  send_displ.assign(R, 0);
  recv_counts.assign(R, 0);
  recv_displ.assign(R, 0);
  // MPI_Alltoallv takes int counts AND int displacements, so the
  // running totals are bounded too — sum in 64 bits and check both, or
  // a >2 GiB per-rank round would hand the collective garbage displs.
  std::int64_t srun = 0, rrun = 0;
  for (int d = 0; d < R; ++d) {
    const std::uint64_t out = seg_bytes[static_cast<std::size_t>(rank) * R + d];
    const std::uint64_t in = seg_bytes[static_cast<std::size_t>(d) * R + rank];
    KCORE_CHECK_MSG(out <= INT32_MAX && in <= INT32_MAX,
                    "segment exceeds MPI_Alltoallv's int counts");
    KCORE_CHECK_MSG(srun <= INT32_MAX && rrun <= INT32_MAX,
                    "per-rank round volume exceeds MPI_Alltoallv's int "
                    "displacements");
    send_counts[d] = static_cast<int>(out);
    send_displ[d] = static_cast<int>(srun);
    srun += send_counts[d];
    recv_counts[d] = static_cast<int>(in);
    recv_displ[d] = static_cast<int>(rrun);
    rrun += recv_counts[d];
  }
  KCORE_CHECK_MSG(srun <= INT32_MAX && rrun <= INT32_MAX,
                  "per-rank round volume exceeds MPI_Alltoallv's int range");
}

class MpiTransport final : public Transport {
 public:
  const char* name() const override { return "mpi"; }

  void Start(NodeId n, int num_ranks,
             const std::uint64_t* rank_bounds) override {
    int initialized = 0;
    MPI_Initialized(&initialized);
    KCORE_CHECK_MSG(initialized, "MpiTransport requires MPI_Init first");
    int world = 0, self = 0;
    MPI_Comm_size(MPI_COMM_WORLD, &world);
    MPI_Comm_rank(MPI_COMM_WORLD, &self);
    KCORE_CHECK_MSG(self == 0, "the engine must run on MPI rank 0");
    KCORE_CHECK_MSG(world == num_ranks,
                    "Engine::SetRankCount(" << num_ranks
                        << ") != MPI world size " << world);
    n_ = n;
    num_ranks_ = num_ranks;
    rank_bounds_.assign(rank_bounds, rank_bounds + num_ranks + 1);
    started_ = true;
  }

  ~MpiTransport() override { Shutdown(); }

  void Shutdown() {
    if (!started_ || shutdown_) return;
    shutdown_ = true;
    int op = kMpiShutdown;
    MPI_Bcast(&op, 1, MPI_INT, 0, MPI_COMM_WORLD);
  }

  WireVolume Exchange(const ExchangeContext& ctx) override {
    KCORE_CHECK_MSG(started_ && !shutdown_, "Exchange outside Start..Shutdown");
    KCORE_CHECK_MSG(ctx.num_ranks == num_ranks_, "rank topology changed");
    auto& outbox = *ctx.outbox;
    auto& inbox = *ctx.inbox;
    const int R = num_ranks_;
    const std::uint64_t* rb = rank_bounds_.data();

    // Count + pack — the hub-side orchestration shared with the
    // socketpair backend (PackRankBuffers in process_transport.cc).
    const std::uint64_t total_bytes =
        PackRankBuffers(rb, R, outbox, seg_bytes_, send_displ_, send_buf_);

    // Control + counts to everyone, then each worker rank its buffer.
    int op = kMpiRound;
    MPI_Bcast(&op, 1, MPI_INT, 0, MPI_COMM_WORLD);
    BcastSegBytes(seg_bytes_, R);
    for (int r = 1; r < R; ++r) {
      KCORE_CHECK_MSG(SendBytes(send_buf_[r], r, kTagFrame) == MPI_SUCCESS,
                      "MPI_Send of rank " << r << "'s send buffer failed");
    }

    // Rank 0 participates in the collective with its own row/column.
    std::vector<int> sc, sd, rc, rd;
    RowsToIntCounts(seg_bytes_, R, 0, sc, sd, rc, rd);
    std::uint64_t col0 = 0;
    for (int s = 0; s < R; ++s) {
      col0 += seg_bytes_[static_cast<std::size_t>(s) * R];
    }
    recv_buf_.resize(R);
    recv_buf_[0].resize(col0);
    CheckedAlltoallv(send_buf_[0], sc, sd, recv_buf_[0], rc, rd);

    // Collect the other ranks' combined receive buffers.
    for (int r = 1; r < R; ++r) {
      std::uint64_t col = 0;
      for (int s = 0; s < R; ++s) {
        col += seg_bytes_[static_cast<std::size_t>(s) * R + r];
      }
      recv_buf_[r].resize(col);
      KCORE_CHECK_MSG(RecvBytes(recv_buf_[r], r, kTagReply) == MPI_SUCCESS,
                      "MPI_Recv of rank " << r << "'s receive buffer failed");
    }

    // Unpack — the shared hub-side orchestration again. DecodeSegment
    // audits every segment's structure; the decoded total equals
    // total_bytes by construction (buffers were sized from seg_bytes_).
    ClearAndReserveInboxes(ctx, 0, n_);
    const std::uint64_t received =
        UnpackRankBuffers(rb, R, seg_bytes_, recv_buf_, inbox);
    return WireVolume{static_cast<std::size_t>(total_bytes),
                      static_cast<std::size_t>(received)};
  }

 private:
  NodeId n_ = 0;
  int num_ranks_ = 0;
  bool started_ = false;
  bool shutdown_ = false;
  std::vector<std::uint64_t> rank_bounds_;
  std::vector<std::uint64_t> seg_bytes_;
  std::vector<std::uint64_t> send_displ_;
  std::vector<std::vector<std::uint8_t>> send_buf_, recv_buf_;
};

}  // namespace

std::unique_ptr<Transport> MakeMpiTransport() {
  return std::make_unique<MpiTransport>();
}

int MpiTransportWorkerMain() {
  int world = 0, self = 0;
  MPI_Comm_size(MPI_COMM_WORLD, &world);
  MPI_Comm_rank(MPI_COMM_WORLD, &self);
  KCORE_CHECK_MSG(self != 0, "rank 0 drives the engine, not the worker loop");
  const int R = world;
  std::vector<std::uint64_t> seg_bytes;
  std::vector<std::uint8_t> send_buf, recv_buf;
  std::vector<int> sc, sd, rc, rd;
  for (;;) {
    int op = 0;
    if (MPI_Bcast(&op, 1, MPI_INT, 0, MPI_COMM_WORLD) != MPI_SUCCESS) {
      return 1;
    }
    if (op == kMpiShutdown) return 0;
    if (op != kMpiRound) return 1;
    BcastSegBytes(seg_bytes, R);
    RowsToIntCounts(seg_bytes, R, self, sc, sd, rc, rd);
    std::uint64_t out = 0, in = 0;
    for (int d = 0; d < R; ++d) {
      out += static_cast<std::uint64_t>(sc[d]);
      in += static_cast<std::uint64_t>(rc[d]);
    }
    send_buf.resize(out);
    recv_buf.resize(in);
    if (RecvBytes(send_buf, 0, kTagFrame) != MPI_SUCCESS) return 1;
    CheckedAlltoallv(send_buf, sc, sd, recv_buf, rc, rd);
    if (SendBytes(recv_buf, 0, kTagReply) != MPI_SUCCESS) return 1;
  }
}

}  // namespace kcore::distsim

#endif  // KCORE_WITH_MPI
