#include "distsim/engine.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <span>
#include <unordered_set>

#include "distsim/thread_pool.h"
#include "distsim/transport.h"
#include "util/logging.h"
#include "util/wire.h"

namespace kcore::distsim {

// NodeContext is a pure forwarder: every query lands on the runtime that
// minted it — the engine (full graph) or a rank worker's slice runtime.

NodeId NodeContext::n() const { return rt_->RtN(); }

std::span<const graph::AdjEntry> NodeContext::neighbors() const {
  return rt_->RtNeighbors(id_);
}

double NodeContext::weighted_degree() const {
  return rt_->RtWeightedDegree(id_);
}

const Payload* NodeContext::NeighborBroadcast(std::size_t i) const {
  return rt_->RtNeighborBroadcast(id_, i);
}

std::span<const InMessage> NodeContext::Messages() const {
  return rt_->RtMessages(id_);
}

void NodeContext::Broadcast(Payload p) { rt_->RtBroadcast(id_, std::move(p)); }

void NodeContext::Send(NodeId neighbor, Payload p) {
  rt_->RtSend(id_, neighbor, std::move(p));
}

util::Rng& NodeContext::Rng() { return rt_->RtRng(id_); }

void NodeContext::Halt() { rt_->RtHalt(id_); }

// Shared by the engine and the worker-side slice runtime so the CONGEST
// checks stay identical (and so do their failure messages).
void CheckPayloadLimit(std::size_t limit, std::size_t size, bool broadcast) {
  if (limit == 0) return;
  KCORE_CHECK_MSG(size <= limit,
                  "CONGEST violation: " << (broadcast ? "broadcast" : "p2p message")
                      << " of " << size << " entries exceeds the limit "
                      << limit);
}

void CheckSendAdjacent(std::span<const graph::AdjEntry> nbrs, NodeId from,
                       NodeId to) {
  // Locality check: only adjacent nodes are reachable.
  const auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), to,
      [](const graph::AdjEntry& a, NodeId x) { return a.to < x; });
  KCORE_CHECK_MSG(it != nbrs.end() && it->to == to,
                  "Send target " << to << " not adjacent to " << from);
}

void Protocol::SaveNodeState(NodeId v, util::WireAppender& out) const {
  (void)v;
  (void)out;
  KCORE_CHECK_MSG(false,
                  "protocol claims SupportsRankCompute() but does not "
                  "implement SaveNodeState()");
}

void Protocol::LoadNodeState(NodeId v, util::WireReader& in) {
  (void)v;
  (void)in;
  KCORE_CHECK_MSG(false,
                  "protocol claims SupportsRankCompute() but does not "
                  "implement LoadNodeState()");
}

NodeId Engine::RtN() const { return graph_.num_nodes(); }

std::span<const graph::AdjEntry> Engine::RtNeighbors(NodeId v) const {
  return graph_.Neighbors(v);
}

double Engine::RtWeightedDegree(NodeId v) const {
  return graph_.WeightedDegree(v);
}

const Payload* Engine::RtNeighborBroadcast(NodeId v, std::size_t i) const {
  const auto nbrs = graph_.Neighbors(v);
  KCORE_CHECK(i < nbrs.size());
  const NodeId u = nbrs[i].to;
  if (!prev_has_[u]) return nullptr;
  return &prev_bcast_[u];
}

std::span<const InMessage> Engine::RtMessages(NodeId v) const {
  return inbox_[v];
}

void Engine::RtBroadcast(NodeId v, Payload p) {
  CheckPayloadLimit(payload_limit_, p.size(), /*broadcast=*/true);
  next_bcast_[v] = std::move(p);
  next_has_[v] = 1;
}

void Engine::RtSend(NodeId v, NodeId neighbor, Payload p) {
  CheckSendAdjacent(graph_.Neighbors(v), v, neighbor);
  CheckPayloadLimit(payload_limit_, p.size(), /*broadcast=*/false);
  outbox_[v].push_back(OutMessage{neighbor, std::move(p)});
}

util::Rng& Engine::RtRng(NodeId v) {
  EnsureNodeRng();
  return node_rng_[v];
}

void Engine::RtHalt(NodeId v) { halted_[v] = 1; }

Engine::Engine(const graph::Graph& g, int num_threads)
    : graph_(g),
      num_threads_(std::max(1, num_threads)),
      transport_(std::make_unique<SharedMemoryTransport>()) {
  const NodeId n = g.num_nodes();
  prev_bcast_.resize(n);
  next_bcast_.resize(n);
  prev_has_.assign(n, 0);
  next_has_.assign(n, 0);
  outbox_.resize(n);
  inbox_.resize(n);
  halted_.assign(n, 0);
}

Engine::~Engine() = default;

void Engine::SetSeed(std::uint64_t seed) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "SetSeed() must precede Start()");
  master_seed_ = seed;
}

void Engine::SetParallelCutoff(NodeId cutoff) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "SetParallelCutoff() must precede Start()");
  parallel_cutoff_ = cutoff;
}

void Engine::SetShardBalancing(bool enabled) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "SetShardBalancing() must precede Start()");
  balance_shards_ = enabled;
}

void Engine::SetRebalanceInterval(int rounds) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "SetRebalanceInterval() must precede Start()");
  KCORE_CHECK_MSG(rounds >= 0, "rebalance interval must be >= 0, got "
                                   << rounds);
  rebalance_every_ = rounds;
}

void Engine::SetTransport(std::unique_ptr<Transport> transport) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "SetTransport() must precede Start()");
  KCORE_CHECK_MSG(transport != nullptr, "SetTransport() needs a transport");
  transport_ = std::move(transport);
}

void Engine::SetRankCount(int ranks) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "SetRankCount() must precede Start()");
  KCORE_CHECK_MSG(ranks >= 1, "rank count must be >= 1, got " << ranks);
  num_ranks_ = ranks;
}

void Engine::SetPerRankCompute(bool enabled) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "SetPerRankCompute() must precede Start()");
  per_rank_compute_ = enabled;
}

void Engine::SetGraphPath(std::string path) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "SetGraphPath() must precede Start()");
  graph_path_ = std::move(path);
}

void Engine::BuildShardBounds() {
  const NodeId n = graph_.num_nodes();
  std::vector<std::uint64_t> weights(n);
  for (NodeId v = 0; v < n; ++v) {
    // One round touches a live node's slot once (the +1) and walks its
    // incident edges in both the compute update and the collect census /
    // broadcast fan-out (the degree). Halted nodes skip compute but are
    // still scanned by the collect sweep, so they keep unit weight.
    weights[v] =
        halted_[v] ? 1 : static_cast<std::uint64_t>(graph_.Degree(v)) + 1;
  }
  shard_bounds_ = ThreadPool::WeightedShardBounds(weights, pool_->num_shards());
}

std::span<const std::uint64_t> Engine::ActiveBounds() {
  if (UseParallelPhases()) {
    if (balance_shards_) return shard_bounds_;
    if (equal_bounds_.empty()) {
      const int shards = pool_->num_shards();
      const NodeId n = graph_.num_nodes();
      equal_bounds_.resize(static_cast<std::size_t>(shards) + 1);
      for (int s = 0; s < shards; ++s) {
        equal_bounds_[s] = ThreadPool::ShardBounds(0, n, s, shards).first;
      }
      equal_bounds_[shards] = n;
    }
    return equal_bounds_;
  }
  // Sequential: the whole range is one shard.
  if (equal_bounds_.empty()) {
    equal_bounds_ = {0, graph_.num_nodes()};
  }
  return equal_bounds_;
}

void Engine::ForSharded(
    const std::function<void(int, std::uint64_t, std::uint64_t)>& body) {
  pool_->ParallelFor(ActiveBounds(), body);
}

void Engine::ReduceSharded(
    const std::function<void(int, std::uint64_t, std::uint64_t)>& body,
    const std::function<void(int)>& merge) {
  pool_->ParallelReduce(ActiveBounds(), body, merge);
}

void Engine::EnsureNodeRng() {
  // First draw materializes every node's stream (concurrent first draws
  // from several shards block on the flag; later draws take the atomic
  // fast path). Streams are keyed forks of the master: which node
  // triggered construction cannot influence any stream.
  std::call_once(node_rng_once_, [this] {
    util::Rng master(master_seed_);
    node_rng_.reserve(graph_.num_nodes());
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      node_rng_.push_back(master.ForkKeyed(v));
    }
  });
}

bool Engine::UseParallelPhases() const {
  // Graphs under the cutoff stay sequential: the dispatch barrier costs
  // more than the phases themselves.
  return num_threads_ > 1 && graph_.num_nodes() >= parallel_cutoff_;
}

std::size_t Engine::ComputeRange(Protocol& p, NodeId begin, NodeId end,
                                 int round) {
  std::size_t executed = 0;
  for (NodeId v = begin; v < end; ++v) {
    if (halted_[v]) continue;
    ++executed;
    NodeContext ctx = MakeContext(v, round);
    if (round == 0) {
      p.Init(ctx);
    } else {
      p.Round(ctx);
    }
  }
  return executed;
}

// Per-shard census accumulator: stats partials plus this shard's distinct
// first-entry broadcast values; merged on the caller in shard order.
struct Engine::CollectPartial {
  std::size_t messages = 0;
  std::size_t entries = 0;
  std::size_t max_entries = 0;
  std::size_t p2p_messages = 0;
  // Broadcast fan-out pricing (num_ranks > 1 only): wire bytes of
  // shipping each broadcast once per remote neighbor-owning rank /
  // once per remote neighbor.
  std::size_t bcast_fanout_bytes = 0;
  std::size_t bcast_neighbor_bytes = 0;
  std::unordered_set<std::uint64_t> distinct;
};

void Engine::CensusRange(NodeId begin, NodeId end, CollectPartial& part,
                         std::uint32_t* counts_row) {
  if (counts_row != nullptr) {
    // This shard's per-receiver in-degree row spans ALL receivers (it
    // counts by sender range), so it must be re-zeroed before counting —
    // but only when the range actually staged p2p traffic. Shards that
    // sent nothing (including empty trailing shards, whose body never
    // runs at all) leave their row stale; the offset pass skips stale
    // rows via the per-shard p2p flag, so broadcast-only rounds never
    // pay the O(shards * n) fill.
    bool any = false;
    for (NodeId v = begin; v < end && !any; ++v) {
      any = !outbox_[v].empty();
    }
    if (any) {
      std::fill(counts_row, counts_row + graph_.num_nodes(), 0u);
    } else {
      counts_row = nullptr;
    }
  }
  for (NodeId v = begin; v < end; ++v) {
    if (next_has_[v]) {
      const std::size_t deg = graph_.Degree(v);
      part.messages += deg;
      part.entries += deg * next_bcast_[v].size();
      part.max_entries = std::max(part.max_entries, next_bcast_[v].size());
      if (!next_bcast_[v].empty()) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(double));
        std::memcpy(&bits, &next_bcast_[v][0], sizeof(bits));
        part.distinct.insert(bits);
      }
      if (num_ranks_ > 1) {
        // Price the CONGEST broadcast fan-out this broadcast would cost
        // a distributed backend: one encoded copy per REMOTE
        // neighbor-owning rank (the rule the per-rank compute path
        // actually pays, measured there and pinned equal to this
        // analytic count by the conformance battery) vs one per remote
        // neighbor. Adjacency is id-sorted and rank cells are ascending
        // contiguous ranges, so owner ranks are non-decreasing along
        // the walk — dedup is a single moving cursor, no per-neighbor
        // search.
        const std::uint64_t bytes = WireBroadcastBytes(v, next_bcast_[v]);
        const int home = OwnerIndex(rank_bounds_.data(), num_ranks_, v);
        int r = 0;
        int last_remote = -1;
        std::size_t remote_ranks = 0;
        std::size_t remote_nbrs = 0;
        for (const graph::AdjEntry& a : graph_.Neighbors(v)) {
          while (a.to >= rank_bounds_[r + 1]) ++r;
          if (r == home) continue;
          ++remote_nbrs;
          if (r != last_remote) {
            ++remote_ranks;
            last_remote = r;
          }
        }
        part.bcast_fanout_bytes += bytes * remote_ranks;
        part.bcast_neighbor_bytes += bytes * remote_nbrs;
      }
    }
    for (const OutMessage& m : outbox_[v]) {
      part.messages += 1;
      part.entries += m.payload.size();
      part.max_entries = std::max(part.max_entries, m.payload.size());
      ++part.p2p_messages;
      if (counts_row != nullptr) ++counts_row[m.to];
    }
  }
}

std::size_t Engine::CensusSequential(RoundStats& stats) {
  const NodeId n = graph_.num_nodes();
  CollectPartial part;
  CensusRange(0, n, part, nullptr);
  stats.messages += part.messages;
  stats.entries += part.entries;
  stats.distinct_values = part.distinct.size();
  stats.bcast_bytes_sent += part.bcast_fanout_bytes;
  stats.bcast_bytes_received += part.bcast_fanout_bytes;
  stats.bcast_bytes_per_neighbor += part.bcast_neighbor_bytes;
  max_entries_per_message_ =
      std::max(max_entries_per_message_, part.max_entries);
  return part.p2p_messages;
}

std::size_t Engine::CensusParallel(RoundStats& stats) {
  const NodeId n = graph_.num_nodes();
  const int shards = pool_->num_shards();
  p2p_offsets_.resize(static_cast<std::size_t>(shards) * n);

  // Sharded by SENDER: per-shard stats partials + per-(shard, receiver)
  // p2p counts. Partials merge in shard order on this thread, so every
  // accumulated quantity (sums, maxes, the distinct-value set) is
  // independent of how the OS scheduled the shards.
  std::vector<CollectPartial> partials(shards);
  std::unordered_set<std::uint64_t> distinct;
  std::size_t total_p2p = 0;
  ReduceSharded(
      [&](int shard, std::uint64_t b, std::uint64_t e) {
        CensusRange(static_cast<NodeId>(b), static_cast<NodeId>(e),
                    partials[shard],
                    p2p_offsets_.data() +
                        static_cast<std::size_t>(shard) * n);
      },
      [&](int shard) {
        CollectPartial& part = partials[shard];
        stats.messages += part.messages;
        stats.entries += part.entries;
        stats.bcast_bytes_sent += part.bcast_fanout_bytes;
        stats.bcast_bytes_received += part.bcast_fanout_bytes;
        stats.bcast_bytes_per_neighbor += part.bcast_neighbor_bytes;
        max_entries_per_message_ =
            std::max(max_entries_per_message_, part.max_entries);
        total_p2p += part.p2p_messages;
        // Set-into-set union: only the merged set's SIZE is read below,
        // which is order-independent.
        // kcore-lint: allow(unordered-iter) only size() of the union is read
        distinct.insert(part.distinct.begin(), part.distinct.end());
      });
  stats.distinct_values = distinct.size();

  // Only rows of shards that staged p2p were (re)zeroed and counted this
  // round; everything else in p2p_offsets_ is stale scratch — the mask
  // the transport skips stale rows by.
  shard_sent_.assign(shards, 0);
  for (int s = 0; s < shards; ++s) {
    shard_sent_[s] = partials[s].p2p_messages > 0 ? 1 : 0;
  }
  return total_p2p;
}

void Engine::CollectRound(int round) {
  RoundStats stats;
  stats.round = round;
  // Counted during the compute phase: a node is active iff its Init/Round
  // actually ran this round (halting mid-round still counts the round it
  // halted in).
  stats.active_nodes = active_this_round_;

  const bool parallel = UseParallelPhases();
  const std::size_t total_p2p =
      parallel ? CensusParallel(stats) : CensusSequential(stats);

  if (total_p2p == 0) {
    // No traffic staged this round: at most, last round's deliveries need
    // clearing. Broadcast-only protocols take this path every round and
    // never touch the transport.
    if (inboxes_dirty_) {
      if (parallel) {
        ForSharded([&](int, std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t u = b; u < e; ++u) inbox_[u].clear();
        });
      } else {
        for (auto& ib : inbox_) ib.clear();
      }
      inboxes_dirty_ = false;
    }
  } else {
    // Hand the staged traffic to the transport. Both census passes and
    // the exchange share the round's partition (ActiveBounds), which the
    // count/offset contract depends on.
    const std::span<const std::uint64_t> bounds = ActiveBounds();
    ExchangeContext ctx;
    ctx.n = graph_.num_nodes();
    ctx.num_shards = static_cast<int>(bounds.size()) - 1;
    ctx.bounds = bounds.data();
    ctx.pool = parallel ? pool_.get() : nullptr;
    ctx.outbox = &outbox_;
    ctx.inbox = &inbox_;
    ctx.counts = parallel ? p2p_offsets_.data() : nullptr;
    ctx.shard_sent = parallel ? shard_sent_.data() : nullptr;
    ctx.num_ranks = num_ranks_;
    ctx.rank_bounds = rank_bounds_.data();
    const WireVolume wire = transport_->Exchange(ctx);
    stats.bytes_sent = wire.bytes_sent;
    stats.bytes_received = wire.bytes_received;
    inboxes_dirty_ = true;
  }

  // Publish broadcasts for the next round.
  std::swap(prev_bcast_, next_bcast_);
  std::swap(prev_has_, next_has_);
  std::fill(next_has_.begin(), next_has_.end(), 0);

  history_.push_back(stats);
}

void Engine::ComputePhase(Protocol& p, int round) {
  const NodeId n = graph_.num_nodes();
  active_this_round_ = 0;
  if (!UseParallelPhases()) {
    active_this_round_ = ComputeRange(p, 0, n, round);
    return;
  }
  // Disjoint contiguous id ranges; per-node state writes never alias, so
  // this is race-free and bit-identical to the sequential order. The
  // pool persists across rounds — workers are created once per engine.
  if (!pool_) pool_ = std::make_unique<ThreadPool>(num_threads_);
  // Degree-weighted boundaries are built on the Start() sweep and
  // refreshed on the rebalance interval — always here, between rounds,
  // so the compute sweep and both collect passes of a round share one
  // fixed partition (the count/offset delivery scheme depends on it).
  if (balance_shards_ &&
      (shard_bounds_.empty() ||
       (rebalance_every_ > 0 && round > 0 && round % rebalance_every_ == 0))) {
    BuildShardBounds();
  }
  std::vector<std::size_t> executed(pool_->num_shards(), 0);
  ReduceSharded(
      [&](int shard, std::uint64_t begin, std::uint64_t end) {
        executed[shard] = ComputeRange(p, static_cast<NodeId>(begin),
                                       static_cast<NodeId>(end), round);
      },
      [&](int shard) { active_this_round_ += executed[shard]; });
}

void Engine::Start(Protocol& p) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "Start() must be the first call");
  // Rank-topology validation lives HERE, not in SetRankCount, because
  // only now are both sides known: every rank must own a non-empty node
  // slice (an empty slice would make rank_bounds ownership degenerate
  // and a per-rank worker with nothing to compute), so ranks are capped
  // by the node count. The one-node-zero-rank edge: an empty graph
  // still admits the trivial 1-rank topology.
  const NodeId n = graph_.num_nodes();
  KCORE_CHECK_MSG(
      static_cast<std::uint64_t>(num_ranks_) <= std::max<std::uint64_t>(n, 1),
      "rank count " << num_ranks_ << " exceeds the node count " << n
                    << " — every rank must own a non-empty node slice");
  // Rank topology: the equal-count ownership split, mirroring
  // ActiveBounds' equal-count construction but fixed for the whole run.
  // The transport's Start() hook runs BEFORE the first compute phase —
  // and therefore before the engine lazily creates its thread pool — so
  // a forking backend (ProcessTransport) forks while this engine has
  // spawned no threads.
  rank_bounds_.resize(static_cast<std::size_t>(num_ranks_) + 1);
  for (int r = 0; r < num_ranks_; ++r) {
    rank_bounds_[r] = ThreadPool::ShardBounds(0, n, r, num_ranks_).first;
  }
  rank_bounds_[num_ranks_] = n;
  if (per_rank_compute_) {
    // Coordinator mode: arm the transport with everything the workers
    // need to own their slices (protocol for Save/LoadNodeState, graph
    // or its binio path for the slice, seed for the per-node RNG
    // streams, payload limit for the CONGEST checks), then fork and run
    // round 0 worker-side.
    KCORE_CHECK_MSG(transport_->SupportsRankCompute(),
                    "per-rank compute needs a transport that supports it; '"
                        << transport_->name() << "' does not");
    KCORE_CHECK_MSG(p.SupportsRankCompute(),
                    "per-rank compute needs a protocol implementing the "
                    "Save/LoadNodeState hooks");
    RankComputeSetup setup;
    setup.protocol = &p;
    setup.graph = &graph_;
    setup.graph_path = graph_path_;
    setup.seed = master_seed_;
    setup.payload_limit = payload_limit_;
    setup.track_quiescence = track_quiescence_;
    transport_->PrepareRankCompute(setup);
    transport_->Start(n, num_ranks_, rank_bounds_.data());
    RankRound(0);
    return;
  }
  transport_->Start(n, num_ranks_, rank_bounds_.data());
  ComputePhase(p, 0);
  CollectRound(0);
}

void Engine::RankRound(int round) {
  const RankRoundResult r = transport_->RankStep(round);
  RoundStats stats;
  stats.round = round;
  stats.active_nodes = r.active_nodes;
  stats.messages = r.messages;
  stats.entries = r.entries;
  stats.distinct_values = r.distinct_values;
  stats.bytes_sent = r.bytes_sent;
  stats.bytes_received = r.bytes_received;
  stats.bcast_bytes_sent = r.bcast_bytes_sent;
  stats.bcast_bytes_received = r.bcast_bytes_received;
  stats.bcast_bytes_per_neighbor = r.bcast_bytes_per_neighbor;
  max_entries_per_message_ = std::max(max_entries_per_message_, r.max_entries);
  rank_num_halted_ = r.num_halted;
  rank_changed_ = r.changed;
  history_.push_back(stats);
}

RoundStats Engine::Step(Protocol& p) {
  const int round = ++round_;
  if (per_rank_compute_) {
    RankRound(round);
    return history_.back();
  }
  ComputePhase(p, round);
  CollectRound(round);
  return history_.back();
}

void Engine::FetchRankState(Protocol& p) {
  if (!per_rank_compute_) return;
  KCORE_CHECK_MSG(!history_.empty(), "FetchRankState() before Start()");
  transport_->CollectRankState(p, prev_bcast_, prev_has_, halted_);
}

void Engine::Run(Protocol& p, int rounds) {
  Start(p);
  for (int t = 0; t < rounds; ++t) Step(p);
}

int Engine::RunUntilQuiescent(Protocol& p, int max_rounds) {
  if (per_rank_compute_) {
    // Quiescence is distributed: each worker reports whether its slice
    // changed (owned inbox traffic or an owned broadcast differing from
    // the prior round); slices partition the nodes, so the OR of the
    // per-rank flags is exactly the global predicate below. The flag in
    // the init frame makes workers keep the prior-broadcast copy only
    // when someone will read it — set before Start() ships the frame.
    track_quiescence_ = true;
    Start(p);
    int executed = 0;
    while (executed < max_rounds) {
      Step(p);
      ++executed;
      if (!rank_changed_) return executed;
    }
    return executed;
  }
  Start(p);
  std::vector<Payload> prior = prev_bcast_;
  std::vector<char> prior_has = prev_has_;
  int executed = 0;
  while (executed < max_rounds) {
    const RoundStats stats = Step(p);
    ++executed;
    bool changed = false;
    // Any p2p traffic counts as activity.
    for (const auto& ib : inbox_) {
      if (!ib.empty()) {
        changed = true;
        break;
      }
    }
    if (!changed) {
      for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
        if (prev_has_[v] != prior_has[v] ||
            (prev_has_[v] && prev_bcast_[v] != prior[v])) {
          changed = true;
          break;
        }
      }
    }
    (void)stats;
    if (!changed) return executed;
    prior = prev_bcast_;
    prior_has = prev_has_;
  }
  return executed;
}

Totals Engine::totals() const {
  Totals t;
  t.rounds = round_;
  for (const RoundStats& r : history_) {
    t.messages += r.messages;
    t.entries += r.entries;
    t.bytes_sent += r.bytes_sent;
    t.bytes_received += r.bytes_received;
    t.bcast_bytes_sent += r.bcast_bytes_sent;
    t.bcast_bytes_received += r.bcast_bytes_received;
    t.bcast_bytes_per_neighbor += r.bcast_bytes_per_neighbor;
  }
  t.max_entries_per_message = max_entries_per_message_;
  return t;
}

std::size_t Engine::num_halted() const {
  // Coordinator mode: the workers own the halted flags; their summed
  // slice counts from the last round's reports are the live answer
  // (halted_ itself only syncs on FetchRankState).
  if (per_rank_compute_ && !history_.empty()) return rank_num_halted_;
  std::size_t c = 0;
  for (char h : halted_) c += h ? 1 : 0;
  return c;
}

}  // namespace kcore::distsim
