#include "distsim/engine.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "distsim/thread_pool.h"
#include "util/logging.h"

namespace kcore::distsim {

NodeId NodeContext::n() const { return engine_->graph_.num_nodes(); }

std::span<const graph::AdjEntry> NodeContext::neighbors() const {
  return engine_->graph_.Neighbors(id_);
}

double NodeContext::weighted_degree() const {
  return engine_->graph_.WeightedDegree(id_);
}

const Payload* NodeContext::NeighborBroadcast(std::size_t i) const {
  const auto nbrs = neighbors();
  KCORE_CHECK(i < nbrs.size());
  const NodeId u = nbrs[i].to;
  if (!engine_->prev_has_[u]) return nullptr;
  return &engine_->prev_bcast_[u];
}

std::span<const InMessage> NodeContext::Messages() const {
  return engine_->inbox_[id_];
}

void NodeContext::Broadcast(Payload p) {
  if (engine_->payload_limit_ > 0) {
    KCORE_CHECK_MSG(p.size() <= engine_->payload_limit_,
                    "CONGEST violation: broadcast of " << p.size()
                        << " entries exceeds the limit "
                        << engine_->payload_limit_);
  }
  engine_->next_bcast_[id_] = std::move(p);
  engine_->next_has_[id_] = 1;
}

void NodeContext::Send(NodeId neighbor, Payload p) {
  // Locality check: only adjacent nodes are reachable.
  const auto nbrs = neighbors();
  const auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), neighbor,
      [](const graph::AdjEntry& a, NodeId x) { return a.to < x; });
  KCORE_CHECK_MSG(it != nbrs.end() && it->to == neighbor,
                  "Send target " << neighbor << " not adjacent to " << id_);
  if (engine_->payload_limit_ > 0) {
    KCORE_CHECK_MSG(p.size() <= engine_->payload_limit_,
                    "CONGEST violation: p2p message of " << p.size()
                        << " entries exceeds the limit "
                        << engine_->payload_limit_);
  }
  engine_->outbox_[id_].push_back(
      Engine::OutMessage{neighbor, std::move(p)});
}

void NodeContext::Halt() { engine_->halted_[id_] = 1; }

Engine::Engine(const graph::Graph& g, int num_threads)
    : graph_(g), num_threads_(std::max(1, num_threads)) {
  const NodeId n = g.num_nodes();
  prev_bcast_.resize(n);
  next_bcast_.resize(n);
  prev_has_.assign(n, 0);
  next_has_.assign(n, 0);
  outbox_.resize(n);
  inbox_.resize(n);
  halted_.assign(n, 0);
}

Engine::~Engine() = default;

void Engine::ComputeRange(Protocol& p, NodeId begin, NodeId end, int round) {
  for (NodeId v = begin; v < end; ++v) {
    if (halted_[v]) continue;
    NodeContext ctx(this, v, round);
    if (round == 0) {
      p.Init(ctx);
    } else {
      p.Round(ctx);
    }
  }
}

void Engine::CollectRound(int round) {
  RoundStats stats;
  stats.round = round;

  // Broadcast accounting + distinct-value census (first payload entry).
  std::unordered_set<std::uint64_t> distinct;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (!halted_[v] && round >= 0) ++stats.active_nodes;
    if (!next_has_[v]) continue;
    const std::size_t deg = graph_.Degree(v);
    stats.messages += deg;
    stats.entries += deg * next_bcast_[v].size();
    max_entries_per_message_ =
        std::max(max_entries_per_message_, next_bcast_[v].size());
    if (!next_bcast_[v].empty()) {
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(double));
      std::memcpy(&bits, &next_bcast_[v][0], sizeof(bits));
      distinct.insert(bits);
    }
  }
  stats.distinct_values = distinct.size();

  // Deliver point-to-point messages: iterate senders in id order so each
  // inbox ends up sorted by sender id (deterministic).
  for (auto& ib : inbox_) ib.clear();
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    for (OutMessage& m : outbox_[v]) {
      stats.messages += 1;
      stats.entries += m.payload.size();
      max_entries_per_message_ =
          std::max(max_entries_per_message_, m.payload.size());
      inbox_[m.to].push_back(InMessage{v, std::move(m.payload)});
    }
    outbox_[v].clear();
  }

  // Publish broadcasts for the next round.
  std::swap(prev_bcast_, next_bcast_);
  std::swap(prev_has_, next_has_);
  std::fill(next_has_.begin(), next_has_.end(), 0);

  history_.push_back(stats);
}

void Engine::ComputePhase(Protocol& p, int round) {
  const NodeId n = graph_.num_nodes();
  if (num_threads_ <= 1 || n < 256) {
    ComputeRange(p, 0, n, round);
    return;
  }
  // Disjoint contiguous id ranges; per-node state writes never alias, so
  // this is race-free and bit-identical to the sequential order. The
  // pool persists across rounds — workers are created once per engine.
  if (!pool_) pool_ = std::make_unique<ThreadPool>(num_threads_);
  pool_->ParallelFor(0, n, [this, &p, round](std::uint64_t begin,
                                             std::uint64_t end) {
    ComputeRange(p, static_cast<NodeId>(begin), static_cast<NodeId>(end),
                 round);
  });
}

void Engine::Start(Protocol& p) {
  KCORE_CHECK_MSG(round_ == 0 && history_.empty(),
                  "Start() must be the first call");
  ComputePhase(p, 0);
  CollectRound(0);
}

RoundStats Engine::Step(Protocol& p) {
  const int round = ++round_;
  ComputePhase(p, round);
  CollectRound(round);
  return history_.back();
}

void Engine::Run(Protocol& p, int rounds) {
  Start(p);
  for (int t = 0; t < rounds; ++t) Step(p);
}

int Engine::RunUntilQuiescent(Protocol& p, int max_rounds) {
  Start(p);
  std::vector<Payload> prior = prev_bcast_;
  std::vector<char> prior_has = prev_has_;
  int executed = 0;
  while (executed < max_rounds) {
    const RoundStats stats = Step(p);
    ++executed;
    bool changed = false;
    // Any p2p traffic counts as activity.
    for (const auto& ib : inbox_) {
      if (!ib.empty()) {
        changed = true;
        break;
      }
    }
    if (!changed) {
      for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
        if (prev_has_[v] != prior_has[v] ||
            (prev_has_[v] && prev_bcast_[v] != prior[v])) {
          changed = true;
          break;
        }
      }
    }
    (void)stats;
    if (!changed) return executed;
    prior = prev_bcast_;
    prior_has = prev_has_;
  }
  return executed;
}

Totals Engine::totals() const {
  Totals t;
  t.rounds = round_;
  for (const RoundStats& r : history_) {
    t.messages += r.messages;
    t.entries += r.entries;
  }
  t.max_entries_per_message = max_entries_per_message_;
  return t;
}

std::size_t Engine::num_halted() const {
  std::size_t c = 0;
  for (char h : halted_) c += h ? 1 : 0;
  return c;
}

}  // namespace kcore::distsim
