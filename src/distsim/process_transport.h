// True multi-process transport backend: fork + alltoallv over
// Unix-domain socketpairs.
//
// SerializedTransport (transport.h) proves the MPI-shaped
// pack/alltoallv/unpack contract inside one address space;
// ProcessTransport is the same contract with the address-space boundary
// made real. Start() forks one WORKER PROCESS per rank; every round's
// staged point-to-point traffic crosses three genuine process
// boundaries before any of it reaches an inbox:
//
//     engine (parent)                 workers (one per rank)
//     ---------------                 ----------------------
//     pack per-(src,dst) segments
//     frame -> rank r  ------------>  worker r reads its send buffer
//                                     workers exchange (src,dst)
//                                     segments peer-to-peer over
//                                     socketpairs (the alltoallv)
//     unpack inboxes   <------------  worker r returns the segments
//                                     addressed to rank r, src-ordered
//
// Nothing on the unpack path reads parent memory the workers could have
// shared: inboxes are rebuilt exclusively from bytes that came back off
// the sockets, so a framing or routing bug cannot be masked by the
// fork's copy-on-write pages. The frame layout (count row, then
// displacement row, then contiguous payload — util::Wire fixed64 rows
// around the exact segment encoding SerializedTransport pins) is
// documented byte-for-byte in docs/TRANSPORTS.md.
//
// Ranks vs shards: the rank partition (ExchangeContext::rank_bounds,
// plumbed from Engine::SetRankCount) is fixed for the whole run and
// independent of the per-round thread shards — an 8-thread engine can
// exchange over 2 ranks or a sequential engine over 8. Segment order
// (ascending src rank, ascending sender id within a segment) makes the
// unpacked inboxes sender-id-sorted, bit-identical to the sequential
// shared-memory delivery; WireMessageBytes keeps the reported wire
// volume byte-identical to SerializedTransport's at any topology.
//
// Lifecycle: workers are forked by Start() — before the engine spawns
// its thread pool — and torn down by Shutdown() (idempotent, also run
// by the destructor): each worker gets a shutdown frame, its socket is
// closed, and it is reaped with waitpid. A worker that dies mid-run
// surfaces as a KCORE_CHECK failure naming the rank and its wait status
// on the next frame the parent moves (EPIPE/EOF on the socketpair), not
// as a hang. Workers exit via _exit so they never run the parent's
// destructors or flush its stdio buffers.
//
// KCORE_WITH_MPI (CMake option) additionally builds the experimental
// MPI flavor of this design — same hub/worker framing with the
// socketpair legs replaced by MPI point-to-point messages and the peer
// exchange by MPI_Alltoallv; see mpi_transport.cc.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "distsim/transport.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kcore::distsim {

class ProcessTransport final : public Transport {
 public:
  ProcessTransport() = default;
  // Tears the workers down (Shutdown()).
  ~ProcessTransport() override;

  ProcessTransport(const ProcessTransport&) = delete;
  ProcessTransport& operator=(const ProcessTransport&) = delete;

  const char* name() const override { return "process"; }

  // Forks num_ranks workers and wires the socketpair topology: one
  // parent<->worker pair per rank plus one pair per unordered worker
  // pair. Called exactly once by Engine::Start() while the engine is
  // still single-threaded. KCORE_CHECK-fails if the topology cannot be
  // built (TryStart is the non-aborting flavor).
  void Start(graph::NodeId n, int num_ranks,
             const std::uint64_t* rank_bounds) override;

  // Non-aborting topology construction: returns false (and fills
  // *error) when a socketpair() or fork() fails mid-topology — after
  // closing every fd created so far and killing + reaping every worker
  // already forked, so a failed start leaks neither descriptors nor
  // zombie children and the transport can be started again (or
  // discarded) cleanly.
  bool TryStart(graph::NodeId n, int num_ranks,
                const std::uint64_t* rank_bounds, std::string* error);

  // Test-only fault injection for the startup failure path: the nth
  // (1-based) resource allocation of the next TryStart/Start —
  // socketpair() and fork() calls counted together in call order —
  // fails with a synthetic EMFILE. One-shot: disarms when it fires;
  // pass 0 to disarm manually. Not thread-safe (tests only).
  static void InjectStartFault(int nth);

  // Per-rank compute (Engine::SetPerRankCompute): Start() forks workers
  // that own their node slice end to end — slice graph (wire-serialized
  // from the setup's Graph, or loaded worker-side via LoadBinarySlice
  // when graph_path is set), per-node protocol state
  // (Protocol::Save/LoadNodeState), and per-node RNG streams rebuilt
  // from the master seed. Each RankStep drives one synchronous round:
  // workers run the compute phase over their slice, exchange p2p
  // segments AND the once-per-neighbor-owning-rank broadcast fan-out
  // over the same peer socketpairs, and return RoundStats partials the
  // parent merges in fixed rank order. The init/step/collect frame
  // layouts are tabulated in docs/TRANSPORTS.md.
  bool SupportsRankCompute() const override { return true; }
  void PrepareRankCompute(const RankComputeSetup& setup) override;
  RankRoundResult RankStep(int round) override;
  void CollectRankState(Protocol& p, std::vector<Payload>& prev_bcast,
                        std::vector<char>& prev_has,
                        std::vector<char>& halted) override;

  // One round's exchange: pack by (src rank, dst rank), ship every src
  // rank its framed send buffer, let the workers run the socketpair
  // alltoallv, read each dst rank's combined receive buffer back, and
  // deserialize into sender-id-sorted inboxes. Reports the packed
  // segment bytes as sent and the decoded bytes as received (equal by
  // construction, byte-identical to SerializedTransport's accounting).
  WireVolume Exchange(const ExchangeContext& ctx) override;

  // Sends every live worker a shutdown frame, closes the sockets, and
  // reaps the workers. Idempotent; returns true iff every worker exited
  // cleanly (status 0). The destructor calls this, so tests only need it
  // to assert teardown explicitly.
  bool Shutdown();

  // Introspection for lifecycle tests and diagnostics.
  bool started() const { return started_; }
  int num_workers() const { return static_cast<int>(pids_.size()); }
  pid_t worker_pid(int rank) const { return pids_[rank]; }

 private:
  // KCORE_CHECK-fails with the rank's wait status after an EPIPE/EOF on
  // its socket. Never returns.
  [[noreturn]] void ReportDeadWorker(int rank, const char* stage);

  // Builds and ships every rank its init frame (per-rank compute only):
  // seed, limits, rank bounds, graph slice (wire edges or binio path),
  // and the per-owned-node protocol state blocks.
  void SendRankInitFrames();

  graph::NodeId n_ = 0;
  int num_ranks_ = 0;
  std::vector<std::uint64_t> rank_bounds_;
  // Topology state: written by Start() while the engine is still
  // single-threaded, mutated afterwards only from the engine thread
  // (Exchange/ReportDeadWorker/Shutdown are same-thread by contract) —
  // not lock-protected by design.
  std::vector<pid_t> pids_;
  std::vector<int> parent_fd_;  // parent's end of each worker's pair
  bool started_ = false;

  // Teardown serialization: Shutdown() can be reached twice — an
  // explicit test/owner call racing the destructor — so the idempotence
  // check-and-set and the reap loop run under teardown_mu_; the second
  // caller blocks until the first finishes and then sees its verdict.
  util::Mutex teardown_mu_;
  bool shutdown_ KCORE_GUARDED_BY(teardown_mu_) = false;
  bool clean_shutdown_ KCORE_GUARDED_BY(teardown_mu_) = false;

  // Pack/unpack scratch, persistent across rounds (vectors only grow).
  std::vector<std::uint64_t> seg_bytes_;   // [src * R + dst] byte counts
  std::vector<std::uint64_t> send_displ_;  // [src * (R+1)] prefix sums
  std::vector<std::vector<std::uint8_t>> send_buf_;  // one per src rank
  std::vector<std::vector<std::uint8_t>> recv_buf_;  // one per dst rank
  std::vector<std::uint8_t> frame_;       // outgoing frame-header scratch
  std::vector<std::uint8_t> reply_rows_;  // incoming reply-row scratch

  // Per-rank compute state: armed by PrepareRankCompute before Start()
  // forks (so workers inherit the setup — and through it the protocol
  // object — copy-on-write; the authoritative per-node state still
  // crosses the socket in the init frames).
  bool rank_compute_ = false;
  RankComputeSetup rank_setup_;
  std::vector<std::uint8_t> body_;   // frame-body scratch (init/step/collect)
  std::vector<std::uint8_t> reply_;  // worker reply-body scratch
};

// Hub-side orchestration shared by the socketpair and MPI flavors
// (both pack the engine's outboxes the same way before their exchange
// legs diverge; built unconditionally so the compile-gated MPI file
// cannot drift from the tested path).

// Counts and packs every staged message into one contiguous buffer per
// src rank (segments in ascending dst-rank order, sender-ordered within
// a segment — the shared codec of transport.h). Fills seg_bytes
// ([src * R + dst] counts), send_displ ([src * (R+1)] prefix rows, the
// alltoallv sdispls), and send_buf (one buffer per src rank); consumes
// the outboxes. Returns the total packed bytes.
std::uint64_t PackRankBuffers(
    const std::uint64_t* rank_bounds, int num_ranks,
    std::vector<std::vector<OutMessage>>& outbox,
    std::vector<std::uint64_t>& seg_bytes,
    std::vector<std::uint64_t>& send_displ,
    std::vector<std::vector<std::uint8_t>>& send_buf);

// Decodes every dst rank's combined receive buffer (segments in
// ascending src-rank order, lengths from seg_bytes) into the inboxes,
// which the caller must have cleared. Returns the total decoded bytes
// (== PackRankBuffers' return for a lossless exchange).
std::uint64_t UnpackRankBuffers(
    const std::uint64_t* rank_bounds, int num_ranks,
    const std::vector<std::uint64_t>& seg_bytes,
    const std::vector<std::vector<std::uint8_t>>& recv_buf,
    std::vector<std::vector<InMessage>>& inbox);

#ifdef KCORE_WITH_MPI
// Experimental MPI flavor (mpi_transport.cc, built only with
// -DKCORE_WITH_MPI=ON): the engine runs on MPI rank 0 and uses
// MPI_Alltoallv across MPI_COMM_WORLD in place of the socketpair peer
// exchange. Every rank except 0 must call MpiTransportWorkerMain()
// after MPI_Init and exit with its return value.
std::unique_ptr<Transport> MakeMpiTransport();
int MpiTransportWorkerMain();
#endif

}  // namespace kcore::distsim
