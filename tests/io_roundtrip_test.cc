#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "seq/kcore.h"
#include "util/rng.h"

namespace kcore::graph {
namespace {

std::string TempPath(const char* stem) {
  return std::string(::testing::TempDir()) + "/" + stem + ".txt";
}

void ExpectSameEdgeList(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u) << "edge " << e;
    EXPECT_EQ(a.edge(e).v, b.edge(e).v) << "edge " << e;
    EXPECT_DOUBLE_EQ(a.edge(e).w, b.edge(e).w) << "edge " << e;
  }
}

TEST(IoRoundTrip, WriteReadIdenticalEdgeList) {
  util::Rng rng(33);
  const Graph g = WithUniformWeights(BarabasiAlbert(200, 3, rng), 0.5,
                                     7.5, rng);
  const std::string path = TempPath("roundtrip_ba");
  ASSERT_TRUE(SaveEdgeList(g, path));
  // merge_parallel=false: the file has no duplicates, and skipping the
  // merge keeps the reader's edge order equal to the writer's.
  const auto loaded = LoadEdgeList(path, /*merge_parallel=*/false);
  ASSERT_TRUE(loaded.has_value());
  ExpectSameEdgeList(g, loaded->graph);
  // Every node of a BA graph has degree >= 1, so the dense remap is the
  // identity.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(loaded->original_ids[v], v);
  }
  std::remove(path.c_str());
}

TEST(IoRoundTrip, WeightsSurviveExactly) {
  // precision(17) in the writer must round-trip doubles bit-exactly,
  // including awkward values.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0 / 3.0);
  b.AddEdge(1, 2, 1e-12);
  b.AddEdge(2, 3, 12345678.87654321);
  const Graph g = std::move(b).Build();
  const std::string path = TempPath("roundtrip_weights");
  ASSERT_TRUE(SaveEdgeList(g, path));
  const auto loaded = LoadEdgeList(path, /*merge_parallel=*/false);
  ASSERT_TRUE(loaded.has_value());
  ExpectSameEdgeList(g, loaded->graph);
  std::remove(path.c_str());
}

TEST(IoRoundTrip, SelfLoopsPreserved) {
  GraphBuilder b(3);
  b.AddEdge(0, 0, 2.5);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 2, 0.5);
  const Graph g = std::move(b).Build();
  const std::string path = TempPath("roundtrip_loops");
  ASSERT_TRUE(SaveEdgeList(g, path));
  const auto loaded = LoadEdgeList(path, /*merge_parallel=*/false);
  ASSERT_TRUE(loaded.has_value());
  ExpectSameEdgeList(g, loaded->graph);
  EXPECT_TRUE(loaded->graph.has_self_loops());
  EXPECT_DOUBLE_EQ(loaded->graph.SelfLoopWeight(0), 2.5);
  EXPECT_DOUBLE_EQ(loaded->graph.SelfLoopWeight(2), 0.5);
  std::remove(path.c_str());
}

TEST(IoRoundTrip, SparseIdsRemapDensely) {
  const auto loaded = ParseEdgeList("1000 2000\n2000 5\n# comment\n5 1000\n");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->graph.num_nodes(), 3u);
  EXPECT_EQ(loaded->graph.num_edges(), 3u);
  // Dense ids follow sorted original ids.
  ASSERT_EQ(loaded->original_ids.size(), 3u);
  EXPECT_EQ(loaded->original_ids[0], 5u);
  EXPECT_EQ(loaded->original_ids[1], 1000u);
  EXPECT_EQ(loaded->original_ids[2], 2000u);
}

TEST(IoRoundTrip, SparseIdsSaveBackWithOriginalIds) {
  // Regression: the plain SaveEdgeList overload silently wrote dense ids,
  // so load -> save -> load renamed every node of a sparse-id file. The
  // original_ids overload makes the cycle id-stable.
  const std::string text = "1000 2000 1.5\n2000 5 1\n5 1000 2.25\n";
  const auto first = ParseEdgeList(text);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->original_ids.size(), 3u);

  const std::string path = TempPath("roundtrip_sparse");
  ASSERT_TRUE(SaveEdgeList(first->graph, path, first->original_ids));
  const auto second = LoadEdgeList(path);
  ASSERT_TRUE(second.has_value());
  ExpectSameEdgeList(first->graph, second->graph);
  EXPECT_EQ(second->original_ids, first->original_ids);

  // The fixed point: saving the reloaded graph reproduces the same ids
  // again (dense remaps are sorted by original id, so the orbit has
  // length 1, not 2).
  const std::string path2 = TempPath("roundtrip_sparse2");
  ASSERT_TRUE(SaveEdgeList(second->graph, path2, second->original_ids));
  const auto third = LoadEdgeList(path2);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->original_ids, first->original_ids);

  // A size-mismatched id table is an error, not a partial write.
  const std::vector<std::uint64_t> wrong = {1, 2};
  EXPECT_FALSE(SaveEdgeList(first->graph, path, wrong));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(IoRoundTrip, DuplicateEdgesMergeOnLoad) {
  const auto merged = ParseEdgeList("0 1 2.0\n1 0 3.0\n0 1\n");
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(merged->graph.edge(0).w, 6.0);  // 2 + 3 + default 1

  const auto raw = ParseEdgeList("0 1 2.0\n1 0 3.0\n0 1\n",
                                 /*merge_parallel=*/false);
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->graph.num_edges(), 3u);
}

TEST(IoRoundTrip, ParseRejectsGarbageAndNegativeWeights) {
  EXPECT_FALSE(ParseEdgeList("0 one\n").has_value());
  EXPECT_FALSE(ParseEdgeList("0 1 -2.0\n").has_value());
  EXPECT_FALSE(LoadEdgeList("/nonexistent/path/to/graph.txt").has_value());
}

TEST(IoRoundTrip, ParseRejectsTrailingGarbageOnWeight) {
  // A junk third token must be a parse error, never a silent w=1.
  EXPECT_FALSE(ParseEdgeList("1 2 oops\n").has_value());
  EXPECT_FALSE(ParseEdgeList("1 2 3.5x\n").has_value());
  EXPECT_FALSE(ParseEdgeList("1 2 3.5 junk\n").has_value());
  EXPECT_FALSE(ParseEdgeList("1 2 nan\n").has_value());
  EXPECT_FALSE(ParseEdgeList("1 2 inf\n").has_value());
  EXPECT_FALSE(ParseEdgeList("1 2 1e999\n").has_value());
  // Well-formed weights (incl. scientific notation and trailing
  // whitespace) still load.
  const auto ok = ParseEdgeList("1 2 2.5\n2 3 1e-3 \t\n3 4\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->graph.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(ok->graph.edge(0).w, 2.5);
  EXPECT_DOUBLE_EQ(ok->graph.edge(1).w, 1e-3);
  EXPECT_DOUBLE_EQ(ok->graph.edge(2).w, 1.0);
}

TEST(IoRoundTrip, EmptyInputsYieldEmptyGraph) {
  const auto empty = ParseEdgeList("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->graph.num_nodes(), 0u);
  EXPECT_EQ(empty->graph.num_edges(), 0u);

  const auto comments = ParseEdgeList("# nothing\n% here\n\n");
  ASSERT_TRUE(comments.has_value());
  EXPECT_EQ(comments->graph.num_nodes(), 0u);
}

// --- Coreness edge cases: empty graphs, self-loops, duplicate edges ------

TEST(CorenessEdgeCases, EmptyGraph) {
  const Graph g;
  EXPECT_TRUE(seq::UnweightedCoreness(g).empty());
  EXPECT_TRUE(seq::WeightedCoreness(g).empty());
  EXPECT_EQ(seq::Degeneracy(g), 0u);
}

TEST(CorenessEdgeCases, EdgelessGraph) {
  GraphBuilder b(5);
  const Graph g = std::move(b).Build();
  const auto u = seq::UnweightedCoreness(g);
  const auto w = seq::WeightedCoreness(g);
  ASSERT_EQ(u.size(), 5u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(u[v], 0u);
    EXPECT_DOUBLE_EQ(w[v], 0.0);
  }
}

TEST(CorenessEdgeCases, SelfLoopsRaiseDegree) {
  // Node 0 carries a weight-3 self-loop plus an edge to node 1. The
  // deepest core containing 0 is {0} alone: a self-loop is one adjacency
  // entry (unweighted degree 1) contributing its full weight (3.0), so
  // c(0) = 1 and c_w(0) = 3 — strictly above the loop-free values.
  GraphBuilder b(2);
  b.AddEdge(0, 0, 3.0);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  const auto u = seq::UnweightedCoreness(g);
  EXPECT_EQ(u[0], 1u);
  EXPECT_EQ(u[1], 1u);
  const auto w = seq::WeightedCoreness(g);
  EXPECT_DOUBLE_EQ(w[0], 3.0);  // self-loop weight persists until 0 peels
  EXPECT_DOUBLE_EQ(w[1], 1.0);

  // Without the self-loop the same graph is a single edge: c_w drops to 1.
  GraphBuilder b2(2);
  b2.AddEdge(0, 1, 1.0);
  const Graph plain = std::move(b2).Build();
  EXPECT_DOUBLE_EQ(seq::WeightedCoreness(plain)[0], 1.0);
}

TEST(CorenessEdgeCases, DuplicateEdgesMergeToSameCoreness) {
  // Loading a file with duplicate lines (merged) must agree with building
  // the summed-weight graph directly.
  const auto loaded = ParseEdgeList("0 1 1.0\n0 1 1.0\n1 2 2.0\n");
  ASSERT_TRUE(loaded.has_value());
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(1, 2, 2.0);
  const Graph direct = std::move(b).Build();
  EXPECT_EQ(seq::WeightedCoreness(loaded->graph),
            seq::WeightedCoreness(direct));
}

}  // namespace
}  // namespace kcore::graph
