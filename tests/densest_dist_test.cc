#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "core/densest.h"
#include "distsim/transport.h"
#include "graph/generators.h"
#include "seq/densest_exact.h"
#include "util/rng.h"

namespace kcore::core {
namespace {

using graph::Graph;
using graph::NodeId;

// Theorem I.3 / Definition IV.1: some returned subset has density
// >= rho* / gamma.
class WeakDensestGuarantee : public ::testing::TestWithParam<int> {};

TEST_P(WeakDensestGuarantee, BestSubsetWithinGamma) {
  util::Rng rng(1400 + static_cast<std::uint64_t>(GetParam()));
  const double gamma = 2.5 + (GetParam() % 3);
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(60));
  Graph g = graph::ErdosRenyiGnp(n, 0.15, rng);
  if (GetParam() % 2 == 0) g = graph::WithUniformWeights(g, 0.3, 2.0, rng);
  const WeakDensestResult r = RunWeakDensest(g, gamma);
  const double rho = seq::MaxDensity(g);
  EXPECT_GE(r.best_density * gamma + 1e-7, rho)
      << "gamma=" << gamma << " rho*=" << rho
      << " best=" << r.best_density;
  // And of course nothing can exceed rho*.
  EXPECT_LE(r.best_density, rho + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakDensestGuarantee, ::testing::Range(0, 25));

TEST(WeakDensest, SubsetsAreDisjointAndConsistent) {
  util::Rng rng(5);
  const Graph g = graph::BarabasiAlbert(120, 3, rng);
  const WeakDensestResult r = RunWeakDensest(g, 3.0);
  std::set<NodeId> seen;
  for (const DensestSubsetOut& s : r.subsets) {
    EXPECT_FALSE(s.members.empty());
    for (NodeId v : s.members) {
      EXPECT_TRUE(seen.insert(v).second) << "node in two subsets";
      // Every member knows its leader (Definition IV.1).
      EXPECT_EQ(r.leader_of[v], s.leader);
      EXPECT_TRUE(r.selected[v]);
    }
  }
  // selected <-> member of some subset.
  std::size_t selected_count = 0;
  for (char s : r.selected) selected_count += s ? 1 : 0;
  EXPECT_EQ(selected_count, seen.size());
}

TEST(WeakDensest, CliqueReturnsWholeClique) {
  const Graph g = graph::Complete(12);
  const WeakDensestResult r = RunWeakDensest(g, 3.0);
  ASSERT_EQ(r.subsets.size(), 1u);
  EXPECT_EQ(r.subsets[0].members.size(), 12u);
  EXPECT_NEAR(r.best_density, 11.0 / 2.0, 1e-9);
}

TEST(WeakDensest, SingleNodeGraph) {
  graph::GraphBuilder b(1);
  const Graph g = std::move(b).Build();
  const WeakDensestResult r = RunWeakDensest(g, 3.0);
  EXPECT_DOUBLE_EQ(r.best_density, 0.0);
  // The single node forms its own (empty-density) subset.
  ASSERT_EQ(r.subsets.size(), 1u);
  EXPECT_EQ(r.subsets[0].members.size(), 1u);
}

TEST(WeakDensest, EdgelessGraph) {
  graph::GraphBuilder b(6);
  const Graph g = std::move(b).Build();
  const WeakDensestResult r = RunWeakDensest(g, 3.0);
  EXPECT_DOUBLE_EQ(r.best_density, 0.0);  // rho* = 0; trivially attained
}

TEST(WeakDensest, DisconnectedComponentsBothFound) {
  // K8 far from K5: the K8 tree must return (near-)K8; K5's tree is a
  // separate leader and may return its own subset.
  graph::GraphBuilder b(13);
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = i + 1; j < 8; ++j) b.AddEdge(i, j);
  }
  for (NodeId i = 8; i < 13; ++i) {
    for (NodeId j = i + 1; j < 13; ++j) b.AddEdge(i, j);
  }
  const Graph g = std::move(b).Build();
  const WeakDensestResult r = RunWeakDensest(g, 3.0);
  EXPECT_NEAR(r.best_density, 3.5, 1e-9);  // K8 density
  // Disjointness across components is automatic; both leaders present.
  std::set<NodeId> leaders;
  for (const auto& s : r.subsets) leaders.insert(s.leader);
  EXPECT_GE(leaders.size(), 1u);
}

TEST(WeakDensest, TwoCliquesJoinedByPath) {
  // The paper's motivation: a dense region many hops away must not be
  // needed to certify the local one. K10 - long path - K6.
  graph::GraphBuilder b(36);
  for (NodeId i = 0; i < 10; ++i) {
    for (NodeId j = i + 1; j < 10; ++j) b.AddEdge(i, j);
  }
  for (NodeId i = 30; i < 36; ++i) {
    for (NodeId j = i + 1; j < 36; ++j) b.AddEdge(i, j);
  }
  for (NodeId i = 9; i < 30; ++i) b.AddEdge(i, i + 1);
  const Graph g = std::move(b).Build();
  const WeakDensestResult r = RunWeakDensest(g, 3.0);
  EXPECT_NEAR(r.best_density, 4.5, 1e-7);  // K10
}

TEST(WeakDensest, RoundsScaleLogarithmically) {
  util::Rng rng(6);
  const Graph g = graph::BarabasiAlbert(200, 3, rng);
  const WeakDensestResult r = RunWeakDensest(g, 4.0);
  const int T = RoundsForGamma(200, 4.0);
  EXPECT_EQ(r.rounds_phase1, T);
  EXPECT_EQ(r.rounds_phase2, T + 3);
  EXPECT_EQ(r.rounds_phase3, T);
  EXPECT_LE(r.rounds_phase4, 3 * T + 8);
  EXPECT_EQ(r.rounds_total, r.rounds_phase1 + r.rounds_phase2 +
                                r.rounds_phase3 + r.rounds_phase4);
}

TEST(WeakDensest, ForcedSmallTAlsoSound) {
  // Even with T smaller than the theory wants, the returned collection
  // must stay consistent (disjoint, densities correctly reported) — only
  // the gamma guarantee may fail.
  util::Rng rng(7);
  const Graph g = graph::ErdosRenyiGnp(80, 0.1, rng);
  const WeakDensestResult r = RunWeakDensest(g, 3.0, /*T_override=*/2);
  for (const auto& s : r.subsets) {
    std::vector<char> mask(g.num_nodes(), 0);
    for (NodeId v : s.members) mask[v] = 1;
    EXPECT_NEAR(g.InducedDensity(mask), s.density, 1e-9);
  }
}

class PipelinedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PipelinedEquivalence, PipelinedAggregationMatchesBatch) {
  // Algorithm 6's message-size optimization must not change the output:
  // same selections, same subsets, strictly smaller max message size.
  util::Rng rng(2800 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(20 + rng.NextBounded(120));
  Graph g = graph::ErdosRenyiGnp(n, 0.1, rng);
  if (GetParam() % 2 == 0) g = graph::WithUniformWeights(g, 0.5, 2.0, rng);
  WeakDensestOptions batch;
  batch.gamma = 3.0;
  WeakDensestOptions piped = batch;
  piped.pipelined_aggregation = true;
  const WeakDensestResult rb = RunWeakDensest(g, batch);
  const WeakDensestResult rp = RunWeakDensest(g, piped);
  EXPECT_EQ(rb.selected, rp.selected);
  EXPECT_DOUBLE_EQ(rb.best_density, rp.best_density);
  EXPECT_EQ(rb.subsets.size(), rp.subsets.size());
  // CONGEST profile: pipelined messages are O(1) words.
  EXPECT_LE(rp.totals.max_entries_per_message, 4u);
  if (rb.rounds_phase1 > 2) {
    EXPECT_GT(rb.totals.max_entries_per_message, 4u)
        << "batch variant should have sent whole arrays";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedEquivalence, ::testing::Range(0, 20));

TEST(TieBreakAblation, NaiveRuleBreaksCoverageSomewhere) {
  // Lemma III.11 depends on the stateful tie-break. Demonstrate that the
  // stateless (re-sort by value, ties by id) variant leaves some edge
  // unclaimed on at least one of these instances — i.e. the paper's rule
  // is necessary, not cosmetic.
  bool naive_violates_somewhere = false;
  for (std::uint64_t seed = 0; seed < 40 && !naive_violates_somewhere;
       ++seed) {
    util::Rng rng(seed);
    const NodeId n = static_cast<NodeId>(8 + rng.NextBounded(30));
    Graph g = graph::ErdosRenyiGnp(n, 0.3, rng);
    if (seed % 2 == 1) g = graph::WithDyadicWeights(g, 0.25, 2.0, rng, 2);
    if (g.num_edges() == 0) continue;
    CompactOptions o;
    o.rounds = 8;
    o.track_orientation = true;
    o.stateful_tiebreak = false;
    const auto res = RunCompactElimination(g, o);
    std::vector<char> covered(g.num_edges(), 0);
    for (NodeId v = 0; v < n; ++v) {
      for (auto idx : res.in_sets[v]) covered[g.Neighbors(v)[idx].edge] = 1;
    }
    for (char c : covered) {
      if (!c) naive_violates_somewhere = true;
    }
  }
  EXPECT_TRUE(naive_violates_somewhere);
}

// ---------------------------------------------------------------------
// Engine surface: the four-phase pipeline must produce bit-identical
// results under every transport, rank count, thread count, and with
// per-rank compute — every phase protocol round-trips its node state.

// Everything the pipeline outputs, compared field by field; densities
// bit for bit.
void ExpectSameResult(const WeakDensestResult& got,
                      const WeakDensestResult& want, const char* label) {
  EXPECT_EQ(got.leader_of, want.leader_of) << label;
  EXPECT_EQ(got.selected, want.selected) << label;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.best_density),
            std::bit_cast<std::uint64_t>(want.best_density))
      << label;
  ASSERT_EQ(got.b.size(), want.b.size()) << label;
  for (std::size_t v = 0; v < got.b.size(); ++v) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.b[v]),
              std::bit_cast<std::uint64_t>(want.b[v]))
        << label << " v=" << v;
  }
  ASSERT_EQ(got.subsets.size(), want.subsets.size()) << label;
  for (std::size_t i = 0; i < got.subsets.size(); ++i) {
    EXPECT_EQ(got.subsets[i].leader, want.subsets[i].leader) << label;
    EXPECT_EQ(got.subsets[i].members, want.subsets[i].members) << label;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.subsets[i].density),
              std::bit_cast<std::uint64_t>(want.subsets[i].density))
        << label;
  }
}

TEST(WeakDensestEngine, TransportsRanksThreadsBitIdentical) {
  util::Rng rng(1500);
  const Graph g = graph::BarabasiAlbert(300, 3, rng);
  WeakDensestOptions base;
  base.gamma = 3.0;
  const WeakDensestResult want = RunWeakDensest(g, base);

  struct Config {
    const char* label;
    distsim::TransportKind transport;
    int threads;
    int ranks;
    bool per_rank;
  };
  const Config configs[] = {
      {"shared/8thr", distsim::TransportKind::kSharedMemory, 8, 1, false},
      {"serialized/1thr", distsim::TransportKind::kSerialized, 1, 1, false},
      {"serialized/8thr", distsim::TransportKind::kSerialized, 8, 1, false},
      {"process/1thr/2ranks", distsim::TransportKind::kProcess, 1, 2, false},
      {"process/8thr/8ranks", distsim::TransportKind::kProcess, 8, 8, false},
      {"per-rank/1thr/2ranks", distsim::TransportKind::kProcess, 1, 2, true},
      {"per-rank/8thr/8ranks", distsim::TransportKind::kProcess, 8, 8, true},
  };
  for (const Config& c : configs) {
    WeakDensestOptions opts = base;
    opts.num_threads = c.threads;
    opts.transport = c.transport;
    opts.ranks = c.ranks;
    opts.per_rank_compute = c.per_rank;
    const WeakDensestResult got = RunWeakDensest(g, opts);
    ExpectSameResult(got, want, c.label);
  }
}

TEST(WeakDensestEngine, PipelinedAggregationPerRankBitIdentical) {
  // The pipelined phase-4 variant ships its extra cursors (got counts,
  // next_send) through the state round-trip too.
  util::Rng rng(1600);
  const Graph g = graph::ErdosRenyiGnp(300, 0.02, rng);
  WeakDensestOptions base;
  base.gamma = 3.0;
  base.pipelined_aggregation = true;
  const WeakDensestResult want = RunWeakDensest(g, base);
  for (int ranks : {2, 8}) {
    WeakDensestOptions opts = base;
    opts.transport = distsim::TransportKind::kProcess;
    opts.ranks = ranks;
    opts.per_rank_compute = true;
    const WeakDensestResult got = RunWeakDensest(g, opts);
    ExpectSameResult(got, want, ranks == 2 ? "pipelined/2ranks"
                                           : "pipelined/8ranks");
  }
}

TEST(WeakDensestEngine, BalancedShardsAndSeedStayBitIdentical) {
  util::Rng rng(1700);
  const Graph g = graph::PowerLawConfiguration(300, 2.5, 2, 40, rng);
  const WeakDensestResult want = RunWeakDensest(g, 3.0);
  WeakDensestOptions opts;
  opts.gamma = 3.0;
  opts.num_threads = 8;
  opts.balance_shards = true;
  opts.seed = 12345;  // the pipeline is deterministic; the seed is inert
  const WeakDensestResult got = RunWeakDensest(g, opts);
  ExpectSameResult(got, want, "balanced/seeded");
}

// The flow-baseline cross-check holds under the distributed configs too:
// the guarantee is a property of the protocol, not of the scheduler.
class WeakDensestEngineGuarantee
    : public ::testing::TestWithParam<distsim::TransportKind> {};

TEST_P(WeakDensestEngineGuarantee, FlowBaselineWithinGammaUnderTransports) {
  util::Rng rng(1800);
  const NodeId n = 60;
  const Graph g = graph::ErdosRenyiGnp(n, 0.15, rng);
  WeakDensestOptions opts;
  opts.gamma = 3.0;
  opts.transport = GetParam();
  opts.ranks = GetParam() == distsim::TransportKind::kProcess ? 2 : 1;
  opts.per_rank_compute = GetParam() == distsim::TransportKind::kProcess;
  const WeakDensestResult r = RunWeakDensest(g, opts);
  const double rho = seq::MaxDensity(g);
  EXPECT_GE(r.best_density * opts.gamma + 1e-7, rho);
  EXPECT_LE(r.best_density, rho + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, WeakDensestEngineGuarantee,
    ::testing::Values(distsim::TransportKind::kSharedMemory,
                      distsim::TransportKind::kSerialized,
                      distsim::TransportKind::kProcess),
    [](const ::testing::TestParamInfo<distsim::TransportKind>& info) {
      return std::string(distsim::TransportKindName(info.param));
    });

}  // namespace
}  // namespace kcore::core
