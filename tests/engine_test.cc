#include <gtest/gtest.h>

#include <algorithm>

#include "distsim/engine.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace kcore::distsim {
namespace {

using graph::Graph;
using graph::NodeId;

// Toy protocol: every node repeatedly broadcasts the max id it has seen.
// After D rounds everyone knows the global max (flood fill) — good for
// validating delivery semantics and round counting.
class MaxFlood : public Protocol {
 public:
  explicit MaxFlood(NodeId n) : value_(n) {
    for (NodeId v = 0; v < n; ++v) value_[v] = v;
  }

  void Init(NodeContext& ctx) override {
    ctx.Broadcast({static_cast<double>(value_[ctx.id()])});
  }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    for (std::size_t i = 0; i < ctx.neighbors().size(); ++i) {
      const Payload* p = ctx.NeighborBroadcast(i);
      if (p != nullptr && !p->empty()) {
        value_[v] = std::max(value_[v], static_cast<NodeId>((*p)[0]));
      }
    }
    ctx.Broadcast({static_cast<double>(value_[v])});
  }

  const std::vector<NodeId>& value() const { return value_; }

 private:
  std::vector<NodeId> value_;
};

TEST(Engine, FloodReachesExactlyTheTHopBall) {
  // On a path, after T rounds node 0 knows max(id) over its T-ball only:
  // information travels one hop per round — the locality the paper's
  // lower bounds rely on.
  const Graph g = graph::Path(20);
  Engine engine(g);
  MaxFlood proto(20);
  engine.Run(proto, 5);
  EXPECT_EQ(proto.value()[0], 5u);
  EXPECT_EQ(proto.value()[10], 15u);
  EXPECT_EQ(proto.value()[19], 19u);
}

TEST(Engine, FloodConvergesAfterDiameterRounds) {
  const Graph g = graph::Cycle(11);
  Engine engine(g);
  MaxFlood proto(11);
  engine.Run(proto, 6);  // diameter of C11 is 5
  for (NodeId v = 0; v < 11; ++v) EXPECT_EQ(proto.value()[v], 10u);
}

TEST(Engine, MessageAccountingBroadcast) {
  const Graph g = graph::Star(5);  // degrees: 4,1,1,1,1 -> sum 8
  Engine engine(g);
  MaxFlood proto(5);
  engine.Run(proto, 2);
  const auto& h = engine.history();
  ASSERT_EQ(h.size(), 3u);  // init + 2 rounds
  for (const RoundStats& r : h) {
    EXPECT_EQ(r.messages, 8u);  // every node broadcasts every round
    EXPECT_EQ(r.entries, 8u);   // 1 double each
  }
  const Totals t = engine.totals();
  EXPECT_EQ(t.messages, 24u);
  EXPECT_EQ(t.max_entries_per_message, 1u);
}

TEST(Engine, DistinctValueCensus) {
  const Graph g = graph::Complete(6);
  Engine engine(g);
  MaxFlood proto(6);
  engine.Start(proto);
  EXPECT_EQ(engine.history()[0].distinct_values, 6u);  // ids 0..5
  engine.Step(proto);
  // After one round on K6 everyone holds 5.
  EXPECT_EQ(engine.history()[1].distinct_values, 1u);
}

// Point-to-point: node 0 sends a token around a cycle.
class TokenRing : public Protocol {
 public:
  explicit TokenRing(NodeId n) : n_(n), seen_(n, 0) {}

  void Init(NodeContext& ctx) override {
    if (ctx.id() == 0) {
      seen_[0] = 1;
      ctx.Send((0 + 1) % n_, {42.0});
    }
  }

  void Round(NodeContext& ctx) override {
    for (const InMessage& m : ctx.Messages()) {
      EXPECT_EQ(m.payload.size(), 1u);
      EXPECT_DOUBLE_EQ(m.payload[0], 42.0);
      seen_[ctx.id()] = 1;
      const NodeId next = (ctx.id() + 1) % n_;
      if (next != 0) ctx.Send(next, {42.0});
    }
  }

  const std::vector<char>& seen() const { return seen_; }

 private:
  NodeId n_;
  std::vector<char> seen_;
};

TEST(Engine, PointToPointTokenRing) {
  const NodeId n = 8;
  const Graph g = graph::Cycle(n);
  Engine engine(g);
  TokenRing proto(n);
  const int rounds = engine.RunUntilQuiescent(proto, 100);
  // Token needs n-1 hops; quiescence is observed in the same round the
  // last hop finds no further message to forward.
  EXPECT_EQ(rounds, static_cast<int>(n) - 1);
  for (NodeId v = 0; v < n; ++v) EXPECT_TRUE(proto.seen()[v]) << v;
}

TEST(Engine, SendToNonNeighborDies) {
  const Graph g = graph::Path(3);
  Engine engine(g);
  class Bad : public Protocol {
    void Init(NodeContext& ctx) override {
      if (ctx.id() == 0) ctx.Send(2, {1.0});  // 0 and 2 not adjacent
    }
    void Round(NodeContext&) override {}
  } proto;
  EXPECT_DEATH(engine.Start(proto), "not adjacent");
}

TEST(Engine, HaltedNodesStopBroadcasting) {
  class HaltOdd : public Protocol {
   public:
    void Init(NodeContext& ctx) override { ctx.Broadcast({1.0}); }
    void Round(NodeContext& ctx) override {
      if (ctx.id() % 2 == 1) {
        ctx.Halt();
        return;
      }
      ctx.Broadcast({1.0});
    }
  } proto;
  const Graph g = graph::Cycle(10);
  Engine engine(g);
  engine.Start(proto);
  engine.Step(proto);
  EXPECT_EQ(engine.num_halted(), 5u);
  const RoundStats r2 = engine.Step(proto);
  // Only 5 even nodes (degree 2) broadcast now.
  EXPECT_EQ(r2.messages, 10u);
  EXPECT_EQ(r2.active_nodes, 5u);
}

TEST(Engine, ThreadedMatchesSequential) {
  util::Rng rng(17);
  const Graph g = graph::BarabasiAlbert(600, 3, rng);
  MaxFlood seq_proto(600);
  MaxFlood par_proto(600);
  Engine seq_engine(g, 1);
  Engine par_engine(g, 4);
  seq_engine.Run(seq_proto, 6);
  par_engine.Run(par_proto, 6);
  EXPECT_EQ(seq_proto.value(), par_proto.value());
  EXPECT_EQ(seq_engine.totals().messages, par_engine.totals().messages);
}

TEST(Engine, ReportsConfiguredThreadCount) {
  const Graph g = graph::Path(4);
  EXPECT_EQ(Engine(g).num_threads(), 1);
  EXPECT_EQ(Engine(g, 8).num_threads(), 8);
  // num_threads <= 1 clamps to sequential.
  EXPECT_EQ(Engine(g, 0).num_threads(), 1);
  EXPECT_EQ(Engine(g, -3).num_threads(), 1);
}

TEST(Engine, ThreadedQuiescenceMatchesSequential) {
  // RunUntilQuiescent goes through the pooled Step path too; the detected
  // round and the fixpoint must not depend on the thread count.
  util::Rng rng(23);
  const Graph g = graph::BarabasiAlbert(800, 3, rng);
  MaxFlood seq_proto(800);
  MaxFlood par_proto(800);
  Engine seq_engine(g, 1);
  Engine par_engine(g, 8);
  const int seq_rounds = seq_engine.RunUntilQuiescent(seq_proto, 100);
  const int par_rounds = par_engine.RunUntilQuiescent(par_proto, 100);
  EXPECT_EQ(seq_rounds, par_rounds);
  EXPECT_EQ(seq_proto.value(), par_proto.value());
  EXPECT_EQ(seq_engine.totals().messages, par_engine.totals().messages);
}

TEST(Engine, PoolSurvivesManyRounds) {
  // The pool is created once and reused for every round; hammer it long
  // enough that a worker lifecycle bug (lost wakeup, double dispatch)
  // would deadlock or corrupt results.
  util::Rng rng(29);
  const Graph g = graph::ErdosRenyiGnp(500, 0.02, rng);
  MaxFlood proto(500);
  Engine engine(g, 4);
  engine.Start(proto);
  for (int t = 0; t < 200; ++t) engine.Step(proto);
  EXPECT_EQ(engine.history().size(), 201u);
}

TEST(Engine, QuiescenceDetection) {
  const Graph g = graph::Path(6);
  MaxFlood proto(6);
  Engine engine(g);
  // Path diameter 5: values converge after 5 rounds, detected at round 6.
  const int rounds = engine.RunUntilQuiescent(proto, 50);
  EXPECT_EQ(rounds, 6);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(proto.value()[v], 5u);
}

TEST(Engine, CongestLimitAllowsCompliantProtocols) {
  const Graph g = graph::Cycle(10);
  Engine engine(g);
  engine.SetPayloadLimit(1);  // O(1) words: the paper's regime
  MaxFlood proto(10);
  engine.Run(proto, 5);  // MaxFlood broadcasts one double: compliant
  EXPECT_EQ(engine.totals().max_entries_per_message, 1u);
}

TEST(Engine, CongestLimitRejectsOversizedMessages) {
  class Chatty : public Protocol {
    void Init(NodeContext& ctx) override {
      ctx.Broadcast({1.0, 2.0, 3.0, 4.0, 5.0});
    }
    void Round(NodeContext&) override {}
  } proto;
  const Graph g = graph::Cycle(5);
  Engine engine(g);
  engine.SetPayloadLimit(2);
  EXPECT_DEATH(engine.Start(proto), "CONGEST violation");
}

}  // namespace
}  // namespace kcore::distsim
