#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "distsim/engine.h"
#include "distsim/transport.h"
#include "graph/generators.h"
#include "util/logging.h"
#include "util/rng.h"

namespace kcore::distsim {
namespace {

using graph::Graph;
using graph::NodeId;

// Toy protocol: every node repeatedly broadcasts the max id it has seen.
// After D rounds everyone knows the global max (flood fill) — good for
// validating delivery semantics and round counting.
class MaxFlood : public Protocol {
 public:
  explicit MaxFlood(NodeId n) : value_(n) {
    for (NodeId v = 0; v < n; ++v) value_[v] = v;
  }

  void Init(NodeContext& ctx) override {
    ctx.Broadcast({static_cast<double>(value_[ctx.id()])});
  }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    for (std::size_t i = 0; i < ctx.neighbors().size(); ++i) {
      const Payload* p = ctx.NeighborBroadcast(i);
      if (p != nullptr && !p->empty()) {
        value_[v] = std::max(value_[v], static_cast<NodeId>((*p)[0]));
      }
    }
    ctx.Broadcast({static_cast<double>(value_[v])});
  }

  const std::vector<NodeId>& value() const { return value_; }

 private:
  std::vector<NodeId> value_;
};

TEST(Engine, FloodReachesExactlyTheTHopBall) {
  // On a path, after T rounds node 0 knows max(id) over its T-ball only:
  // information travels one hop per round — the locality the paper's
  // lower bounds rely on.
  const Graph g = graph::Path(20);
  Engine engine(g);
  MaxFlood proto(20);
  engine.Run(proto, 5);
  EXPECT_EQ(proto.value()[0], 5u);
  EXPECT_EQ(proto.value()[10], 15u);
  EXPECT_EQ(proto.value()[19], 19u);
}

TEST(Engine, FloodConvergesAfterDiameterRounds) {
  const Graph g = graph::Cycle(11);
  Engine engine(g);
  MaxFlood proto(11);
  engine.Run(proto, 6);  // diameter of C11 is 5
  for (NodeId v = 0; v < 11; ++v) EXPECT_EQ(proto.value()[v], 10u);
}

TEST(Engine, MessageAccountingBroadcast) {
  const Graph g = graph::Star(5);  // degrees: 4,1,1,1,1 -> sum 8
  Engine engine(g);
  MaxFlood proto(5);
  engine.Run(proto, 2);
  const auto& h = engine.history();
  ASSERT_EQ(h.size(), 3u);  // init + 2 rounds
  for (const RoundStats& r : h) {
    EXPECT_EQ(r.messages, 8u);  // every node broadcasts every round
    EXPECT_EQ(r.entries, 8u);   // 1 double each
  }
  const Totals t = engine.totals();
  EXPECT_EQ(t.messages, 24u);
  EXPECT_EQ(t.max_entries_per_message, 1u);
}

TEST(Engine, DistinctValueCensus) {
  const Graph g = graph::Complete(6);
  Engine engine(g);
  MaxFlood proto(6);
  engine.Start(proto);
  EXPECT_EQ(engine.history()[0].distinct_values, 6u);  // ids 0..5
  engine.Step(proto);
  // After one round on K6 everyone holds 5.
  EXPECT_EQ(engine.history()[1].distinct_values, 1u);
}

// Point-to-point: node 0 sends a token around a cycle.
class TokenRing : public Protocol {
 public:
  explicit TokenRing(NodeId n) : n_(n), seen_(n, 0) {}

  void Init(NodeContext& ctx) override {
    if (ctx.id() == 0) {
      seen_[0] = 1;
      ctx.Send((0 + 1) % n_, {42.0});
    }
  }

  void Round(NodeContext& ctx) override {
    for (const InMessage& m : ctx.Messages()) {
      EXPECT_EQ(m.payload.size(), 1u);
      EXPECT_DOUBLE_EQ(m.payload[0], 42.0);
      seen_[ctx.id()] = 1;
      const NodeId next = (ctx.id() + 1) % n_;
      if (next != 0) ctx.Send(next, {42.0});
    }
  }

  const std::vector<char>& seen() const { return seen_; }

 private:
  NodeId n_;
  std::vector<char> seen_;
};

TEST(Engine, PointToPointTokenRing) {
  const NodeId n = 8;
  const Graph g = graph::Cycle(n);
  Engine engine(g);
  TokenRing proto(n);
  const int rounds = engine.RunUntilQuiescent(proto, 100);
  // Token needs n-1 hops; quiescence is observed in the same round the
  // last hop finds no further message to forward.
  EXPECT_EQ(rounds, static_cast<int>(n) - 1);
  for (NodeId v = 0; v < n; ++v) EXPECT_TRUE(proto.seen()[v]) << v;
}

TEST(Engine, SendToNonNeighborDies) {
  const Graph g = graph::Path(3);
  Engine engine(g);
  class Bad : public Protocol {
    void Init(NodeContext& ctx) override {
      if (ctx.id() == 0) ctx.Send(2, {1.0});  // 0 and 2 not adjacent
    }
    void Round(NodeContext&) override {}
  } proto;
  EXPECT_DEATH(engine.Start(proto), "not adjacent");
}

TEST(Engine, HaltedNodesStopBroadcasting) {
  class HaltOdd : public Protocol {
   public:
    void Init(NodeContext& ctx) override { ctx.Broadcast({1.0}); }
    void Round(NodeContext& ctx) override {
      if (ctx.id() % 2 == 1) {
        ctx.Halt();
        return;
      }
      ctx.Broadcast({1.0});
    }
  } proto;
  const Graph g = graph::Cycle(10);
  Engine engine(g);
  engine.Start(proto);
  engine.Step(proto);
  EXPECT_EQ(engine.num_halted(), 5u);
  const RoundStats r2 = engine.Step(proto);
  // Only 5 even nodes (degree 2) broadcast now.
  EXPECT_EQ(r2.messages, 10u);
  EXPECT_EQ(r2.active_nodes, 5u);
}

// Mixed broadcast + p2p traffic on Star(5) with every stat hand-computed:
// the regression pin for the RoundStats fields across the collect-phase
// rewrite. Center = node 0 (degree 4), leaves 1..4 (degree 1).
class StarTraffic : public Protocol {
 public:
  void Init(NodeContext& ctx) override {
    ctx.Broadcast({static_cast<double>(ctx.id())});
    if (ctx.id() == 0) ctx.Send(1, {7.0, 8.0});
  }

  void Round(NodeContext& ctx) override {
    if (ctx.id() == 0) {
      // Inboxes are sorted by sender id — every leaf's message, in order.
      const auto msgs = ctx.Messages();
      if (ctx.round() >= 2) {
        EXPECT_EQ(msgs.size(), 4u);
        for (std::size_t i = 0; i < msgs.size(); ++i) {
          EXPECT_EQ(msgs[i].from, static_cast<NodeId>(i + 1));
          EXPECT_DOUBLE_EQ(msgs[i].payload[0],
                           static_cast<double>(ctx.round() - 1));
        }
      }
      ctx.Broadcast({42.0, static_cast<double>(ctx.round())});
    } else {
      ctx.Send(0, {static_cast<double>(ctx.round())});
    }
  }
};

TEST(Engine, RoundStatsRegressionOnHandComputedStar) {
  const Graph g = graph::Star(5);
  Engine engine(g);
  StarTraffic proto;
  engine.Run(proto, 2);
  const auto& h = engine.history();
  ASSERT_EQ(h.size(), 3u);

  // Round 0 (Init): all 5 nodes ran; 5 broadcasts of 1 entry fan out over
  // the degrees (4+1+1+1+1 = 8 deliveries, 8 entries) plus one p2p of 2
  // entries; broadcast first entries are the 5 distinct ids.
  EXPECT_EQ(h[0].active_nodes, 5u);
  EXPECT_EQ(h[0].messages, 9u);
  EXPECT_EQ(h[0].entries, 10u);
  EXPECT_EQ(h[0].distinct_values, 5u);

  // Rounds 1..2: the center broadcasts {42, r} to 4 leaves (4 deliveries,
  // 8 entries); 4 leaves each send 1 p2p entry to the center. One
  // distinct broadcast value (42).
  for (std::size_t r = 1; r <= 2; ++r) {
    EXPECT_EQ(h[r].active_nodes, 5u) << "round " << r;
    EXPECT_EQ(h[r].messages, 8u) << "round " << r;
    EXPECT_EQ(h[r].entries, 12u) << "round " << r;
    EXPECT_EQ(h[r].distinct_values, 1u) << "round " << r;
  }

  const Totals t = engine.totals();
  EXPECT_EQ(t.rounds, 2);
  EXPECT_EQ(t.messages, 25u);
  EXPECT_EQ(t.entries, 34u);
  EXPECT_EQ(t.max_entries_per_message, 2u);
}

TEST(Engine, ActiveNodeCensusCountsExecutedNodes) {
  // A node that halts during round r still EXECUTED round r: the census
  // counts compute-phase participation, not post-round liveness (the old
  // collect-time census undercounted the halting round).
  class HaltOdd : public Protocol {
   public:
    void Init(NodeContext& ctx) override { ctx.Broadcast({1.0}); }
    void Round(NodeContext& ctx) override {
      if (ctx.id() % 2 == 1) {
        ctx.Halt();
        return;
      }
      ctx.Broadcast({1.0});
    }
  } proto;
  const Graph g = graph::Cycle(10);
  Engine engine(g);
  engine.Start(proto);
  EXPECT_EQ(engine.history()[0].active_nodes, 10u);
  const RoundStats r1 = engine.Step(proto);
  EXPECT_EQ(r1.active_nodes, 10u);  // odds ran round 1, then halted
  const RoundStats r2 = engine.Step(proto);
  EXPECT_EQ(r2.active_nodes, 5u);  // only the 5 even nodes remain
}

TEST(Engine, ThreadedMatchesSequential) {
  util::Rng rng(17);
  const Graph g = graph::BarabasiAlbert(600, 3, rng);
  MaxFlood seq_proto(600);
  MaxFlood par_proto(600);
  Engine seq_engine(g, 1);
  Engine par_engine(g, 4);
  seq_engine.Run(seq_proto, 6);
  par_engine.Run(par_proto, 6);
  EXPECT_EQ(seq_proto.value(), par_proto.value());
  EXPECT_EQ(seq_engine.totals().messages, par_engine.totals().messages);
}

TEST(Engine, ReportsConfiguredThreadCount) {
  const Graph g = graph::Path(4);
  EXPECT_EQ(Engine(g).num_threads(), 1);
  EXPECT_EQ(Engine(g, 8).num_threads(), 8);
  // num_threads <= 1 clamps to sequential.
  EXPECT_EQ(Engine(g, 0).num_threads(), 1);
  EXPECT_EQ(Engine(g, -3).num_threads(), 1);
}

TEST(Engine, ThreadedQuiescenceMatchesSequential) {
  // RunUntilQuiescent goes through the pooled Step path too; the detected
  // round and the fixpoint must not depend on the thread count.
  util::Rng rng(23);
  const Graph g = graph::BarabasiAlbert(800, 3, rng);
  MaxFlood seq_proto(800);
  MaxFlood par_proto(800);
  Engine seq_engine(g, 1);
  Engine par_engine(g, 8);
  const int seq_rounds = seq_engine.RunUntilQuiescent(seq_proto, 100);
  const int par_rounds = par_engine.RunUntilQuiescent(par_proto, 100);
  EXPECT_EQ(seq_rounds, par_rounds);
  EXPECT_EQ(seq_proto.value(), par_proto.value());
  EXPECT_EQ(seq_engine.totals().messages, par_engine.totals().messages);
}

TEST(Engine, PoolSurvivesManyRounds) {
  // The pool is created once and reused for every round; hammer it long
  // enough that a worker lifecycle bug (lost wakeup, double dispatch)
  // would deadlock or corrupt results.
  util::Rng rng(29);
  const Graph g = graph::ErdosRenyiGnp(500, 0.02, rng);
  MaxFlood proto(500);
  Engine engine(g, 4);
  engine.Start(proto);
  for (int t = 0; t < 200; ++t) engine.Step(proto);
  EXPECT_EQ(engine.history().size(), 201u);
}

TEST(Engine, QuiescenceDetection) {
  const Graph g = graph::Path(6);
  MaxFlood proto(6);
  Engine engine(g);
  // Path diameter 5: values converge after 5 rounds, detected at round 6.
  const int rounds = engine.RunUntilQuiescent(proto, 50);
  EXPECT_EQ(rounds, 6);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(proto.value()[v], 5u);
}

TEST(Engine, CongestLimitAllowsCompliantProtocols) {
  const Graph g = graph::Cycle(10);
  Engine engine(g);
  engine.SetPayloadLimit(1);  // O(1) words: the paper's regime
  MaxFlood proto(10);
  engine.Run(proto, 5);  // MaxFlood broadcasts one double: compliant
  EXPECT_EQ(engine.totals().max_entries_per_message, 1u);
}

TEST(Engine, CongestLimitRejectsOversizedMessages) {
  class Chatty : public Protocol {
    void Init(NodeContext& ctx) override {
      ctx.Broadcast({1.0, 2.0, 3.0, 4.0, 5.0});
    }
    void Round(NodeContext&) override {}
  } proto;
  const Graph g = graph::Cycle(5);
  Engine engine(g);
  engine.SetPayloadLimit(2);
  EXPECT_DEATH(engine.Start(proto), "CONGEST violation");
}

TEST(Engine, CongestLimitRejectsOversizedBroadcastUnderThreading) {
  // The violating node sits mid-range so a worker shard (not the caller)
  // trips the check; the abort must still surface. Threadsafe style:
  // the death-test child re-executes from main, so the parent's live pool
  // workers cannot poison the fork.
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  class ChattyAt300 : public Protocol {
    void Init(NodeContext& ctx) override { ctx.Broadcast({1.0}); }
    void Round(NodeContext& ctx) override {
      if (ctx.id() == 300 && ctx.round() == 1) {
        ctx.Broadcast({1.0, 2.0, 3.0});
      } else {
        ctx.Broadcast({1.0});
      }
    }
  };
  EXPECT_DEATH(
      {
        const Graph g = graph::Cycle(600);
        Engine engine(g, 8);
        engine.SetPayloadLimit(2);
        ChattyAt300 proto;
        engine.Start(proto);
        engine.Step(proto);
      },
      "CONGEST violation");
}

TEST(Engine, CongestLimitRejectsOversizedP2PUnderThreading) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  class P2PChatty : public Protocol {
    void Init(NodeContext&) override {}
    void Round(NodeContext& ctx) override {
      if (ctx.id() == 451 && ctx.round() == 2) {
        ctx.Send(ctx.neighbors()[0].to, {1.0, 2.0, 3.0, 4.0});
      }
    }
  };
  EXPECT_DEATH(
      {
        const Graph g = graph::Cycle(600);
        Engine engine(g, 8);
        engine.SetPayloadLimit(3);
        P2PChatty proto;
        engine.Start(proto);
        engine.Step(proto);
        engine.Step(proto);
      },
      "CONGEST violation");
}

TEST(Engine, QuiescenceImmediateWhenProtocolStaysSilent) {
  // A protocol that never broadcasts or sends is quiescent after the
  // first (empty) step — both sequentially and threaded over the pool.
  class Silent : public Protocol {
    void Init(NodeContext&) override {}
    void Round(NodeContext&) override {}
  };
  for (int threads : {1, 8}) {
    const Graph g = graph::Cycle(600);
    Silent proto;
    Engine engine(g, threads);
    EXPECT_EQ(engine.RunUntilQuiescent(proto, 50), 1) << threads;
    EXPECT_EQ(engine.totals().messages, 0u) << threads;
  }
}

TEST(Engine, QuiescenceHitsMaxRoundsOnRestlessProtocol) {
  // Broadcasting the round number changes the staged value every round,
  // so quiescence never arrives and the cap must bound the run.
  class Restless : public Protocol {
    void Init(NodeContext& ctx) override { ctx.Broadcast({0.0}); }
    void Round(NodeContext& ctx) override {
      ctx.Broadcast({static_cast<double>(ctx.round())});
    }
  } proto;
  const Graph g = graph::Cycle(8);
  Engine engine(g);
  EXPECT_EQ(engine.RunUntilQuiescent(proto, 7), 7);
  EXPECT_EQ(static_cast<int>(engine.history().size()), 8);  // init + 7
}

// Backs the thread-safety promise in util/logging.h: every node logs in
// every round of a threaded run, so all pool workers hammer the logging
// mutex at once. Each captured stderr line must be whole — an interleaved
// or torn line means the internal lock is broken. Under KCORE_SANITIZE=
// thread this battery also runs under ThreadSanitizer, which would flag
// any unsynchronized access to the stream.
TEST(Engine, ConcurrentLoggingFromPoolWorkersIsSerialized) {
  class ChattyFlood : public Protocol {
    void Init(NodeContext& ctx) override {
      KCORE_LOG(kInfo) << "chatty init node " << ctx.id();
      ctx.Broadcast({1.0});
    }
    void Round(NodeContext& ctx) override {
      KCORE_LOG(kInfo) << "chatty round node " << ctx.id();
      ctx.Broadcast({1.0});
    }
  } proto;
  util::Rng rng(31);
  const Graph g = graph::ErdosRenyiGnp(64, 0.1, rng);
  Engine engine(g, 8);
  const int rounds = 5;
  testing::internal::CaptureStderr();
  engine.Run(proto, rounds);
  const std::string captured = testing::internal::GetCapturedStderr();
  std::size_t chatty_lines = 0;
  std::istringstream lines(captured);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("chatty") == std::string::npos) continue;
    ++chatty_lines;
    // A whole line has exactly one "[INFO ...]" prefix, at position 0;
    // a write interleaved mid-line would splice a second prefix in.
    EXPECT_EQ(line.rfind("[INFO ", 0), 0u) << "torn log line: " << line;
    EXPECT_EQ(line.find('[', 1), std::string::npos)
        << "interleaved log line: " << line;
  }
  // One line per Init plus one per node per round, none lost.
  EXPECT_EQ(chatty_lines, 64u * (1 + rounds));
}

// Rank-topology validation: junk rank counts fail loudly at the API
// boundary, not as a crash (or an empty-slice hang) deep in a transport.
TEST(Engine, RejectsNonPositiveRankCounts) {
  const Graph g = graph::Cycle(10);
  Engine engine(g);
  EXPECT_DEATH(engine.SetRankCount(0), "rank count must be >= 1");
  EXPECT_DEATH(engine.SetRankCount(-3), "rank count must be >= 1");
}

TEST(Engine, RejectsMoreRanksThanNodesAtStart) {
  // 12 ranks over 10 nodes would give at least one rank an empty slice;
  // Start refuses with an actionable message instead of forking workers
  // that own nothing.
  class Silent : public Protocol {
    void Init(NodeContext&) override {}
    void Round(NodeContext&) override {}
  } proto;
  const Graph g = graph::Cycle(10);
  Engine engine(g);
  engine.SetRankCount(12);
  EXPECT_DEATH(engine.Start(proto), "exceeds the node count");
}

// Per-rank compute preconditions fail loudly too: a transport without
// rank workers cannot host the compute phase, and a protocol without
// Save/LoadNodeState cannot ship its state.
TEST(Engine, PerRankComputeRequiresACapableTransport) {
  class Silent : public Protocol {
    void Init(NodeContext&) override {}
    void Round(NodeContext&) override {}
  } proto;
  const Graph g = graph::Cycle(10);
  Engine engine(g);  // default shared-memory transport
  engine.SetPerRankCompute(true);
  EXPECT_DEATH(engine.Start(proto), "needs a transport that supports it");
}

TEST(Engine, PerRankComputeRequiresProtocolStateHooks) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  class Silent : public Protocol {  // no SupportsRankCompute override
    void Init(NodeContext&) override {}
    void Round(NodeContext&) override {}
  };
  EXPECT_DEATH(
      {
        const Graph g = graph::Cycle(10);
        Engine engine(g);
        engine.SetTransport(MakeTransport(TransportKind::kProcess));
        engine.SetRankCount(2);
        engine.SetPerRankCompute(true);
        Silent proto;
        engine.Start(proto);
      },
      "Save/LoadNodeState");
}

TEST(Engine, QuiescenceSeesVanishingBroadcastOfHaltedNodes) {
  // Nodes broadcast at init and then halt: the round in which the
  // broadcasts disappear is still a change (a neighbor observes the
  // silence), so quiescence lands one round later — not at round 1.
  class ShoutThenHalt : public Protocol {
    void Init(NodeContext& ctx) override { ctx.Broadcast({1.0}); }
    void Round(NodeContext& ctx) override { ctx.Halt(); }
  } proto;
  const Graph g = graph::Cycle(6);
  Engine engine(g);
  EXPECT_EQ(engine.RunUntilQuiescent(proto, 50), 2);
  EXPECT_EQ(engine.num_halted(), 6u);
  EXPECT_EQ(engine.history()[1].active_nodes, 6u);
  EXPECT_EQ(engine.history()[2].active_nodes, 0u);
}

}  // namespace
}  // namespace kcore::distsim
