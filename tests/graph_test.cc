#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/bfs.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/quotient.h"
#include "util/rng.h"

namespace kcore::graph {
namespace {

TEST(GraphBuilder, BasicAdjacency) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 2.0).AddEdge(1, 2, 3.0).AddEdge(0, 3, 1.0);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 3.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 5.0);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_TRUE(g.IsSimple());
  // Adjacency sorted by neighbor id.
  const auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0].to, 1u);
  EXPECT_EQ(n0[1].to, 3u);
}

TEST(GraphBuilder, SelfLoopCountsOnceInDegree) {
  GraphBuilder b(2);
  b.AddEdge(0, 0, 5.0).AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  EXPECT_TRUE(g.has_self_loops());
  EXPECT_FALSE(g.IsSimple());
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 6.0);
  EXPECT_DOUBLE_EQ(g.SelfLoopWeight(0), 5.0);
  EXPECT_EQ(g.Degree(0), 2u);  // one slot for the loop, one for the edge
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
}

TEST(GraphBuilder, MergeParallelSumsWeights) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0).AddEdge(1, 0, 2.5).AddEdge(1, 2, 1.0);
  b.MergeParallel();
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 3.5);
  EXPECT_TRUE(g.IsSimple());
}

TEST(Graph, InducedDensityAndWeight) {
  const Graph g = Complete(4);  // 6 edges
  std::vector<char> all(4, 1);
  EXPECT_DOUBLE_EQ(g.InducedEdgeWeight(all), 6.0);
  EXPECT_DOUBLE_EQ(g.InducedDensity(all), 1.5);
  std::vector<char> tri{1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(g.InducedDensity(tri), 1.0);
  std::vector<char> none(4, 0);
  EXPECT_DOUBLE_EQ(g.InducedDensity(none), 0.0);
}

TEST(Graph, InducedSubgraphRemaps) {
  const Graph g = Path(5);
  std::vector<char> keep{0, 1, 1, 1, 0};
  std::vector<NodeId> map;
  const Graph sub = InducedSubgraph(g, keep, &map);
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 1-2, 2-3 survive
  EXPECT_EQ(map[0], kInvalidNode);
  EXPECT_EQ(map[1], 0u);
  EXPECT_EQ(map[3], 2u);
}

TEST(Quotient, CrossEdgesBecomeSelfLoops) {
  // Triangle 0-1-2 plus pendant 3 attached to 2. Remove {0, 1}.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0).AddEdge(1, 2, 2.0).AddEdge(0, 2, 3.0).AddEdge(2, 3, 4.0);
  const Graph g = std::move(b).Build();
  std::vector<char> remove{1, 1, 0, 0};
  const QuotientResult q = QuotientGraph(g, remove);
  EXPECT_EQ(q.graph.num_nodes(), 2u);
  // Edge 0-1 vanishes; 1-2 and 0-2 fold into one self-loop at node 2 of
  // weight 5 (Definition II.2 merges images); 2-3 survives.
  EXPECT_DOUBLE_EQ(q.graph.SelfLoopWeight(q.old_to_new[2]), 5.0);
  EXPECT_DOUBLE_EQ(q.graph.total_weight(), 9.0);
  // Weighted degree of node 2 in the quotient: self-loop (5) + edge (4).
  EXPECT_DOUBLE_EQ(q.graph.WeightedDegree(q.old_to_new[2]), 9.0);
  EXPECT_EQ(q.new_to_old.size(), 2u);
}

TEST(Quotient, RemovingNothingKeepsGraph) {
  util::Rng rng(1);
  const Graph g = ErdosRenyiGnp(30, 0.2, rng);
  std::vector<char> remove(30, 0);
  const QuotientResult q = QuotientGraph(g, remove);
  EXPECT_EQ(q.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(q.graph.num_edges(), g.num_edges());
  EXPECT_DOUBLE_EQ(q.graph.total_weight(), g.total_weight());
}

TEST(Quotient, SelfLoopAtSurvivorIsKept) {
  GraphBuilder b(2);
  b.AddEdge(0, 0, 2.0).AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  std::vector<char> remove{0, 1};  // drop node 1
  const QuotientResult q = QuotientGraph(g, remove);
  ASSERT_EQ(q.graph.num_nodes(), 1u);
  // Existing loop (2) merges with the folded edge (1).
  EXPECT_DOUBLE_EQ(q.graph.SelfLoopWeight(0), 3.0);
}

TEST(Components, CountsAndSizes) {
  GraphBuilder b(6);
  b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(3, 4);
  const Graph g = std::move(b).Build();
  const Components c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(c.comp[0], c.comp[2]);
  EXPECT_NE(c.comp[0], c.comp[3]);
  std::multiset<NodeId> sizes(c.sizes.begin(), c.sizes.end());
  EXPECT_EQ(sizes, (std::multiset<NodeId>{1, 2, 3}));
  EXPECT_FALSE(IsConnected(g));
  EXPECT_TRUE(IsConnected(Cycle(5)));
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = Path(6);
  const auto d = BfsDistances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
  EXPECT_EQ(Eccentricity(g, 0), 5u);
  EXPECT_EQ(Eccentricity(g, 3), 3u);
  EXPECT_EQ(ExactDiameter(g), 5u);
  EXPECT_EQ(DoubleSweepDiameterLowerBound(g, 3), 5u);
}

TEST(Bfs, DisconnectedUnreachable) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph g = std::move(b).Build();
  const auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(ExactDiameter(g), 1u);  // per-component
}

TEST(Io, RoundTrip) {
  util::Rng rng(2);
  const Graph g = WithUniformWeights(ErdosRenyiGnp(20, 0.3, rng), 0.5, 2.0,
                                     rng);
  const std::string path = testing::TempDir() + "/kcore_io_test.txt";
  ASSERT_TRUE(SaveEdgeList(g, path));
  const auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->graph.num_edges(), g.num_edges());
  EXPECT_NEAR(loaded->graph.total_weight(), g.total_weight(), 1e-9);
}

TEST(Io, ParsesCommentsAndRemapsSparseIds) {
  const auto r = ParseEdgeList(
      "# comment\n"
      "% another\n"
      "100 200 1.5\n"
      "200 300\n");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->graph.num_nodes(), 3u);
  EXPECT_EQ(r->graph.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(r->graph.total_weight(), 2.5);
  EXPECT_EQ(r->original_ids, (std::vector<std::uint64_t>{100, 200, 300}));
}

TEST(Io, RejectsMalformedInput) {
  EXPECT_FALSE(ParseEdgeList("1 two 3\n").has_value());
  EXPECT_FALSE(ParseEdgeList("0 1 -2\n").has_value());
}

TEST(Io, MergesDuplicateLines) {
  const auto r = ParseEdgeList("0 1 1\n1 0 2\n", /*merge_parallel=*/true);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(r->graph.total_weight(), 3.0);
}

TEST(Io, EmptyInputYieldsEmptyGraph) {
  const auto r = ParseEdgeList("# nothing\n");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->graph.num_nodes(), 0u);
}

}  // namespace
}  // namespace kcore::graph
