// Golden-file regression tests: fixed-seed end-to-end outputs of the
// three coreness drivers (Compact / Montresor / TwoPhase) on three
// generator graphs, plus the three engine-ported satellite families
// (hypergraph elimination, directed d-core, weak densest subsets) on
// fixed-seed instances of their own, checked in under tests/golden/. Each golden pins the
// full observable result — coreness vector (exact doubles), per-round
// RoundStats INCLUDING the transport byte counters, and run totals — so
// any change to the protocols, the round scheduler, the transports, or
// the stats accounting shows up as a one-line diff instead of a silent
// drift across PRs.
//
// Every golden is rendered four times per test: from the canonical
// sequential shared-memory run (which is what the file pins), from an
// 8-thread serialized-transport run with degree-weighted balancing, from
// a 2-thread 3-rank multi-process (forked workers + socketpair exchange)
// run, and from that same process topology with per-rank compute (the
// workers own the compute phase end to end) — all four must render
// identically, so the golden also re-proves the transport, scheduler,
// and per-rank determinism contracts on every graph.
//
// The graphs use unit edge weights ON PURPOSE: every surviving-number
// update is then integer-valued sums and comparisons, which are
// bit-exact at any optimization level, so one golden serves Debug, ASan,
// and Release builds alike.
//
// Regenerating (after an INTENDED behavior change — see tests/README.md):
//   ./build/tests/golden_test --regenerate
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/compact.h"
#include "core/densest.h"
#include "core/montresor.h"
#include "core/two_phase.h"
#include "directed/dcore_protocol.h"
#include "directed/digraph.h"
#include "distsim/engine.h"
#include "distsim/transport.h"
#include "graph/generators.h"
#include "hyper/helim_protocol.h"
#include "hyper/hypergraph.h"
#include "util/rng.h"

// Set by main() below; file-scope so the custom main outside the kcore
// namespace can reach it.
static bool g_regenerate = false;

namespace kcore {
namespace {

using distsim::RoundStats;
using distsim::Totals;
using distsim::TransportKind;
using graph::Graph;
using graph::NodeId;

constexpr double kEps = 0.5;

// Run configuration a golden render is produced under.
struct RunConfig {
  int threads = 1;
  bool balance = false;
  TransportKind transport = TransportKind::kSharedMemory;
  int ranks = 1;
  bool per_rank = false;  // compute inside the rank workers
};

constexpr RunConfig kCanonical{1, false, TransportKind::kSharedMemory, 1};
// The cross-check configs: every parallel/transport axis flipped on, and
// the multi-process backend (forked workers + socketpair exchange; these
// drivers are broadcast-only, so its render pins the engine-side rank
// plumbing and the worker lifecycle under every driver rather than wire
// traffic — the conformance battery covers the loaded exchange). The
// per-rank config reruns the same process topology with the compute
// phase inside the workers (state shipped over the wire both ways), so
// each golden also pins the worker-owned compute path bit-for-bit.
constexpr RunConfig kThreaded{8, true, TransportKind::kSerialized, 1};
constexpr RunConfig kProcessCfg{2, false, TransportKind::kProcess, 3};
constexpr RunConfig kPerRankCfg{2, false, TransportKind::kProcess, 3, true};

struct GoldenGraph {
  const char* name;
  Graph g;
};

// Three fixed-seed generator graphs, all >= the engine's 256-node
// parallel cutoff so the threaded cross-check really shards. Unit
// weights (see the file comment).
std::vector<GoldenGraph> MakeGoldenGraphs() {
  std::vector<GoldenGraph> out;
  {
    util::Rng rng(1311);
    out.push_back({"ba", graph::BarabasiAlbert(300, 3, rng)});
  }
  {
    util::Rng rng(1312);
    out.push_back({"er", graph::ErdosRenyiGnm(300, 900, rng)});
  }
  {
    util::Rng rng(1313);
    out.push_back({"powerlaw",
                   graph::PowerLawConfiguration(300, 2.1, 2, 40, rng)});
  }
  return out;
}

std::string Fmt(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

void AppendDoubles(std::string& out, const char* label,
                   const std::vector<double>& v) {
  out += label;
  out += ' ';
  out += std::to_string(v.size());
  out += '\n';
  for (double d : v) {
    out += Fmt(d);
    out += '\n';
  }
}

void AppendHistory(std::string& out, const char* label,
                   const std::vector<RoundStats>& h) {
  out += label;
  out += ' ';
  out += std::to_string(h.size());
  out += '\n';
  out += "# round active messages entries distinct bytes_sent bytes_recv\n";
  for (const RoundStats& r : h) {
    char line[160];
    std::snprintf(line, sizeof(line), "%d %zu %zu %zu %zu %zu %zu\n",
                  r.round, r.active_nodes, r.messages, r.entries,
                  r.distinct_values, r.bytes_sent, r.bytes_received);
    out += line;
  }
}

void AppendTotals(std::string& out, const Totals& t) {
  char line[200];
  std::snprintf(line, sizeof(line),
                "totals rounds=%d messages=%zu entries=%zu max_entries=%zu "
                "bytes_sent=%zu bytes_recv=%zu\n",
                t.rounds, t.messages, t.entries, t.max_entries_per_message,
                t.bytes_sent, t.bytes_received);
  out += line;
}

std::string Header(const char* algo, const GoldenGraph& gg) {
  std::string out = "kcore golden v1\n";
  out += "algo ";
  out += algo;
  out += "\ngraph ";
  out += gg.name;
  out += " n=" + std::to_string(gg.g.num_nodes()) +
         " m=" + std::to_string(gg.g.num_edges()) + "\n";
  return out;
}

// Order-sensitive FNV fold for vectors too bulky to list line by line
// (the two-phase edge-owner assignment).
std::uint64_t HashU32s(const std::vector<NodeId>& xs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (NodeId x : xs) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string RenderCompact(const GoldenGraph& gg, const RunConfig& cfg) {
  core::CompactOptions opts;
  opts.rounds = core::RoundsForEpsilon(gg.g.num_nodes(), kEps);
  opts.num_threads = cfg.threads;
  opts.balance_shards = cfg.balance;
  opts.transport = cfg.transport;
  opts.ranks = cfg.ranks;
  opts.per_rank_compute = cfg.per_rank;
  const core::CompactResult res = core::RunCompactElimination(gg.g, opts);

  std::string out = Header("compact", gg);
  out += "rounds " + std::to_string(res.rounds) + "\n";
  AppendDoubles(out, "coreness", res.b);
  AppendHistory(out, "history", res.history);
  AppendTotals(out, res.totals);
  return out;
}

std::string RenderMontresor(const GoldenGraph& gg, const RunConfig& cfg) {
  const core::ConvergenceResult res = core::RunToConvergence(
      gg.g, -1, cfg.threads, distsim::kDefaultMasterSeed, cfg.balance,
      cfg.transport, cfg.ranks, cfg.per_rank);

  std::string out = Header("montresor", gg);
  out += "rounds_executed " + std::to_string(res.rounds_executed) + "\n";
  out += "last_change_round " + std::to_string(res.last_change_round) + "\n";
  AppendDoubles(out, "coreness", res.coreness);
  AppendHistory(out, "history", res.history);
  AppendTotals(out, res.totals);
  return out;
}

std::string RenderTwoPhase(const GoldenGraph& gg, const RunConfig& cfg) {
  const int T = core::RoundsForEpsilon(gg.g.num_nodes(), kEps);
  const core::TwoPhaseResult res = core::RunTwoPhaseOrientation(
      gg.g, T, kEps, -1, cfg.threads, distsim::kDefaultMasterSeed,
      cfg.balance, cfg.transport, cfg.ranks, cfg.per_rank);

  std::string out = Header("twophase", gg);
  out += "phase1_rounds " + std::to_string(res.phase1_rounds) + "\n";
  out += "phase2_rounds " + std::to_string(res.phase2_rounds) + "\n";
  out += "forced_edges " + std::to_string(res.forced_edges) + "\n";
  out += "max_load " + Fmt(res.orientation.max_load) + "\n";
  char owner[64];
  std::snprintf(owner, sizeof(owner), "owner_hash %016llx\n",
                static_cast<unsigned long long>(
                    HashU32s(res.orientation.owner)));
  out += owner;
  AppendDoubles(out, "coreness", res.b);
  AppendHistory(out, "phase1_history", res.phase1_history);
  AppendHistory(out, "phase2_history", res.phase2_history);
  AppendTotals(out, res.totals);
  return out;
}

// --- Engine ports of the satellite families (hyper / directed /
// densest). Each gets its own fixed-seed instances and header since the
// inputs are not plain Graphs.

struct GoldenHypergraph {
  const char* name;
  hyper::Hypergraph h;
};

std::vector<GoldenHypergraph> MakeGoldenHypergraphs() {
  std::vector<GoldenHypergraph> out;
  {
    util::Rng rng(1314);
    out.push_back({"uniform3", hyper::RandomUniform(300, 600, 3, rng)});
  }
  {
    util::Rng rng(1315);
    out.push_back({"uniform5", hyper::RandomUniform(300, 450, 5, rng)});
  }
  {
    util::Rng rng(1311);
    out.push_back(
        {"fromgraph", hyper::FromGraph(graph::BarabasiAlbert(300, 3, rng))});
  }
  return out;
}

struct GoldenDigraph {
  const char* name;
  double l;
  directed::Digraph g;
};

std::vector<GoldenDigraph> MakeGoldenDigraphs() {
  std::vector<GoldenDigraph> out;
  {
    util::Rng rng(1316);
    out.push_back({"sparse", 1.0, directed::RandomDigraph(300, 0.01, rng)});
  }
  {
    util::Rng rng(1317);
    out.push_back({"dense", 2.0, directed::RandomDigraph(300, 0.03, rng)});
  }
  {
    util::Rng rng(1311);
    out.push_back({"closure", 3.0,
                   directed::SymmetricClosure(
                       graph::BarabasiAlbert(300, 3, rng))});
  }
  return out;
}

std::string RenderHyper(const GoldenHypergraph& gh, const RunConfig& cfg) {
  hyper::HyperElimOptions opts;
  opts.rounds = core::RoundsForEpsilon(
      static_cast<NodeId>(gh.h.num_nodes()), kEps);
  opts.num_threads = cfg.threads;
  opts.balance_shards = cfg.balance;
  opts.transport = cfg.transport;
  opts.ranks = cfg.ranks;
  opts.per_rank_compute = cfg.per_rank;
  const hyper::HyperElimResult res = hyper::RunHyperElimination(gh.h, opts);

  std::string out = "kcore golden v1\nalgo hyperelim\nhypergraph ";
  out += gh.name;
  out += " n=" + std::to_string(gh.h.num_nodes()) +
         " m=" + std::to_string(gh.h.num_edges()) + "\n";
  out += "rounds " + std::to_string(res.rounds) + "\n";
  AppendDoubles(out, "beta", res.b);
  AppendHistory(out, "history", res.history);
  AppendTotals(out, res.totals);
  return out;
}

std::string RenderDirected(const GoldenDigraph& gd, const RunConfig& cfg) {
  directed::DCoreElimOptions opts;
  opts.rounds = core::RoundsForEpsilon(gd.g.num_nodes(), kEps);
  opts.num_threads = cfg.threads;
  opts.balance_shards = cfg.balance;
  opts.transport = cfg.transport;
  opts.ranks = cfg.ranks;
  opts.per_rank_compute = cfg.per_rank;
  const directed::DCoreElimResult res =
      directed::RunDCoreElimination(gd.g, gd.l, opts);

  std::string out = "kcore golden v1\nalgo dcore\ndigraph ";
  out += gd.name;
  out += " n=" + std::to_string(gd.g.num_nodes()) +
         " arcs=" + std::to_string(gd.g.num_arcs()) + " l=" + Fmt(gd.l) +
         "\n";
  out += "rounds " + std::to_string(res.rounds) + "\n";
  std::size_t alive = 0;
  for (char a : res.active) alive += a ? 1 : 0;
  out += "active " + std::to_string(alive) + "/" +
         std::to_string(res.active.size()) + "\n";
  AppendDoubles(out, "beta", res.b);
  AppendHistory(out, "history", res.history);
  AppendTotals(out, res.totals);
  return out;
}

std::string RenderDensest(const GoldenGraph& gg, const RunConfig& cfg) {
  core::WeakDensestOptions opts;
  opts.gamma = 3.0;
  opts.num_threads = cfg.threads;
  opts.balance_shards = cfg.balance;
  opts.transport = cfg.transport;
  opts.ranks = cfg.ranks;
  opts.per_rank_compute = cfg.per_rank;
  const core::WeakDensestResult res = core::RunWeakDensest(gg.g, opts);

  std::string out = Header("densest", gg);
  out += "rounds p1=" + std::to_string(res.rounds_phase1) +
         " p2=" + std::to_string(res.rounds_phase2) +
         " p3=" + std::to_string(res.rounds_phase3) +
         " p4=" + std::to_string(res.rounds_phase4) +
         " total=" + std::to_string(res.rounds_total) + "\n";
  out += "best_density " + Fmt(res.best_density) + "\n";
  char hash[64];
  std::snprintf(hash, sizeof(hash), "leader_hash %016llx\n",
                static_cast<unsigned long long>(HashU32s(res.leader_of)));
  out += hash;
  std::vector<NodeId> selected_ids;
  for (NodeId v = 0; v < res.selected.size(); ++v) {
    if (res.selected[v]) selected_ids.push_back(v);
  }
  std::snprintf(hash, sizeof(hash), "selected %zu %016llx\n",
                selected_ids.size(),
                static_cast<unsigned long long>(HashU32s(selected_ids)));
  out += hash;
  out += "subsets " + std::to_string(res.subsets.size()) + "\n";
  for (const core::DensestSubsetOut& s : res.subsets) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "subset leader=%u size=%zu density=%s hash=%016llx\n",
                  s.leader, s.members.size(), Fmt(s.density).c_str(),
                  static_cast<unsigned long long>(HashU32s(s.members)));
    out += line;
  }
  AppendDoubles(out, "beta", res.b);
  AppendTotals(out, res.totals);
  return out;
}

std::string GoldenPath(const std::string& name) {
  return std::string(KCORE_GOLDEN_DIR) + "/" + name + ".golden";
}

// Compares `rendered` against the checked-in golden (or rewrites it under
// --regenerate), with a first-differing-line diagnostic on mismatch.
void CheckGolden(const std::string& name, const std::string& rendered) {
  const std::string path = GoldenPath(name);
  if (g_regenerate) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(f.good()) << "cannot write " << path;
    f << rendered;
    ASSERT_TRUE(f.good()) << "short write to " << path;
    std::printf("  regenerated %s (%zu bytes)\n", path.c_str(),
                rendered.size());
    return;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden file " << path
                        << " — run ./tests/golden_test --regenerate "
                           "(see tests/README.md)";
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string want = ss.str();
  if (want == rendered) return;

  // Locate the first differing line for a readable failure.
  std::istringstream a(want), b(rendered);
  std::string la, lb;
  int line = 0;
  while (true) {
    ++line;
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    if (!ga && !gb) break;
    if (!ga || !gb || la != lb) {
      FAIL() << name << " diverges from " << path << " at line " << line
             << "\n  golden: " << (ga ? la : "<eof>")
             << "\n  actual: " << (gb ? lb : "<eof>")
             << "\nIf this change is intended, regenerate with "
                "./build/tests/golden_test --regenerate (tests/README.md).";
    }
  }
  FAIL() << name << " differs from " << path
         << " (no line-level difference found — trailing bytes?)";
}

// One test per algorithm, each covering all three graphs: the canonical
// sequential shared-memory render is pinned against the golden file, and
// the threaded serialized-balanced render is pinned against the
// canonical one.
TEST(Golden, CompactElimination) {
  for (const GoldenGraph& gg : MakeGoldenGraphs()) {
    SCOPED_TRACE(gg.name);
    const std::string canonical = RenderCompact(gg, kCanonical);
    EXPECT_EQ(RenderCompact(gg, kThreaded), canonical)
        << "threaded serialized run diverged from the sequential render";
    EXPECT_EQ(RenderCompact(gg, kProcessCfg), canonical)
        << "multi-process run diverged from the sequential render";
    EXPECT_EQ(RenderCompact(gg, kPerRankCfg), canonical)
        << "per-rank compute run diverged from the sequential render";
    CheckGolden(std::string("compact_") + gg.name, canonical);
  }
}

TEST(Golden, MontresorConvergence) {
  for (const GoldenGraph& gg : MakeGoldenGraphs()) {
    SCOPED_TRACE(gg.name);
    const std::string canonical = RenderMontresor(gg, kCanonical);
    EXPECT_EQ(RenderMontresor(gg, kThreaded), canonical)
        << "threaded serialized run diverged from the sequential render";
    EXPECT_EQ(RenderMontresor(gg, kProcessCfg), canonical)
        << "multi-process run diverged from the sequential render";
    EXPECT_EQ(RenderMontresor(gg, kPerRankCfg), canonical)
        << "per-rank compute run diverged from the sequential render";
    CheckGolden(std::string("montresor_") + gg.name, canonical);
  }
}

TEST(Golden, TwoPhaseOrientation) {
  for (const GoldenGraph& gg : MakeGoldenGraphs()) {
    SCOPED_TRACE(gg.name);
    const std::string canonical = RenderTwoPhase(gg, kCanonical);
    EXPECT_EQ(RenderTwoPhase(gg, kThreaded), canonical)
        << "threaded serialized run diverged from the sequential render";
    EXPECT_EQ(RenderTwoPhase(gg, kProcessCfg), canonical)
        << "multi-process run diverged from the sequential render";
    EXPECT_EQ(RenderTwoPhase(gg, kPerRankCfg), canonical)
        << "per-rank compute run diverged from the sequential render";
    CheckGolden(std::string("twophase_") + gg.name, canonical);
  }
}

TEST(Golden, HyperElimination) {
  for (const GoldenHypergraph& gh : MakeGoldenHypergraphs()) {
    SCOPED_TRACE(gh.name);
    const std::string canonical = RenderHyper(gh, kCanonical);
    EXPECT_EQ(RenderHyper(gh, kThreaded), canonical)
        << "threaded serialized run diverged from the sequential render";
    EXPECT_EQ(RenderHyper(gh, kProcessCfg), canonical)
        << "multi-process run diverged from the sequential render";
    EXPECT_EQ(RenderHyper(gh, kPerRankCfg), canonical)
        << "per-rank compute run diverged from the sequential render";
    CheckGolden(std::string("hyperelim_") + gh.name, canonical);
  }
}

TEST(Golden, DCoreElimination) {
  for (const GoldenDigraph& gd : MakeGoldenDigraphs()) {
    SCOPED_TRACE(gd.name);
    const std::string canonical = RenderDirected(gd, kCanonical);
    EXPECT_EQ(RenderDirected(gd, kThreaded), canonical)
        << "threaded serialized run diverged from the sequential render";
    EXPECT_EQ(RenderDirected(gd, kProcessCfg), canonical)
        << "multi-process run diverged from the sequential render";
    EXPECT_EQ(RenderDirected(gd, kPerRankCfg), canonical)
        << "per-rank compute run diverged from the sequential render";
    CheckGolden(std::string("dcore_") + gd.name, canonical);
  }
}

TEST(Golden, WeakDensest) {
  for (const GoldenGraph& gg : MakeGoldenGraphs()) {
    SCOPED_TRACE(gg.name);
    const std::string canonical = RenderDensest(gg, kCanonical);
    EXPECT_EQ(RenderDensest(gg, kThreaded), canonical)
        << "threaded serialized run diverged from the sequential render";
    EXPECT_EQ(RenderDensest(gg, kProcessCfg), canonical)
        << "multi-process run diverged from the sequential render";
    EXPECT_EQ(RenderDensest(gg, kPerRankCfg), canonical)
        << "per-rank compute run diverged from the sequential render";
    CheckGolden(std::string("densest_") + gg.name, canonical);
  }
}

}  // namespace
}  // namespace kcore

// Custom main: gtest first (strips --gtest_* flags), then our one flag.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--regenerate") {
      g_regenerate = true;
    } else {
      std::fprintf(stderr, "golden_test: unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  return RUN_ALL_TESTS();
}
