// The bench JSON emitter (bench/json.h): validity under non-finite
// doubles, locale independence, round-trip precision, escaping, and the
// AddRow() handle-stability contract.
#include <gtest/gtest.h>

#include <charconv>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "bench/json.h"

namespace kcore::bench {
namespace {

TEST(Json, NonFiniteDoublesBecomeNull) {
  // JSON has no literal for NaN/Inf; `%g` would emit `nan`/`inf` tokens
  // that every parser rejects. The contract is null.
  JsonRow row;
  row.Num("nan", std::numeric_limits<double>::quiet_NaN())
      .Num("pinf", std::numeric_limits<double>::infinity())
      .Num("ninf", -std::numeric_limits<double>::infinity())
      .Num("fine", 1.5);
  EXPECT_EQ(row.Render(),
            "{\"nan\": null, \"pinf\": null, \"ninf\": null, \"fine\": 1.5}");
}

TEST(Json, NumbersRoundTripAtFullPrecision) {
  // std::to_chars emits the shortest string that parses back to the
  // exact double — no %.6g truncation.
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 4.9e-324,
                         123456789.123456789, -0.0, 1e308}) {
    const std::string s = internal::JsonNumber(v);
    double back = 0.0;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), back);
    ASSERT_EQ(ec, std::errc()) << s;
    ASSERT_EQ(ptr, s.data() + s.size()) << s;
    EXPECT_EQ(back, v) << s;
  }
}

TEST(Json, NumberFormattingIgnoresGlobalLocale) {
  // A comma-decimal LC_NUMERIC corrupts printf-based emitters ("1,5" is
  // not JSON). Try every comma-locale name the container might have; if
  // none installs, the to_chars guarantee is still locale-independent by
  // definition and the other assertions cover the format.
  const char* old = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = old != nullptr ? old : "C";
  bool switched = false;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
                           "fr_FR.utf8", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      switched = true;
      break;
    }
  }
  if (!switched) {
    GTEST_LOG_(INFO) << "no comma-decimal locale installed; formatting "
                        "checked under the C locale only";
  }
  EXPECT_EQ(internal::JsonNumber(1.5), "1.5");
  EXPECT_EQ(internal::JsonNumber(-0.25), "-0.25");
  JsonRow row;
  row.Num("x", 2.75);
  const std::string rendered = row.Render();
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(rendered, "{\"x\": 2.75}");
  EXPECT_EQ(rendered.find(','), std::string::npos);
}

TEST(Json, EscapesBenchNameKeysAndValues) {
  JsonDoc doc("quo\"te\\back\nline");
  // "\x01" is split from "ctl" so the hex escape doesn't munch the 'c'.
  doc.AddRow().Str("ke\"y", "va\\lue\twith\x01" "ctl");
  const std::string out = doc.Render();
  EXPECT_NE(out.find("\"bench\": \"quo\\\"te\\\\back\\u000aline\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"ke\\\"y\": \"va\\\\lue\\u0009with\\u0001ctl\""),
            std::string::npos)
      << out;
}

TEST(Json, RowHandlesSurviveManyAddRows) {
  // The old vector-backed storage invalidated the reference AddRow()
  // returned as soon as the next push reallocated. Holding the first
  // handle across hundreds of inserts must stay safe.
  JsonDoc doc("stability");
  JsonRow& first = doc.AddRow();
  first.Int("id", 0);
  for (int i = 1; i < 300; ++i) {
    doc.AddRow().Int("id", i);
  }
  first.Bool("late_write", true);
  const std::string out = doc.Render();
  EXPECT_NE(out.find("{\"id\": 0, \"late_write\": true}"), std::string::npos);
  EXPECT_NE(out.find("{\"id\": 299}"), std::string::npos);
}

TEST(Json, RenderShapeAndWriteFile) {
  JsonDoc doc("shape");
  doc.AddRow().Str("graph", "ba").Int("n", 100).Num("secs", 0.5);
  doc.AddRow().Str("graph", "er").Int("n", 200).Num("secs", 1.25);
  const std::string expect =
      "{\"bench\": \"shape\", \"rows\": [\n"
      "  {\"graph\": \"ba\", \"n\": 100, \"secs\": 0.5},\n"
      "  {\"graph\": \"er\", \"n\": 200, \"secs\": 1.25}\n"
      "]}\n";
  EXPECT_EQ(doc.Render(), expect);

  const std::string path = std::string(::testing::TempDir()) + "/doc.json";
  ASSERT_TRUE(doc.WriteFile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string got(expect.size() + 16, '\0');
  got.resize(std::fread(got.data(), 1, got.size(), f));
  std::fclose(f);
  EXPECT_EQ(got, expect);
  std::remove(path.c_str());

  EXPECT_FALSE(doc.WriteFile("/nonexistent/dir/doc.json"));
}

TEST(Json, EmptyDocIsStillValid) {
  JsonDoc doc("empty");
  EXPECT_EQ(doc.Render(), "{\"bench\": \"empty\", \"rows\": [\n]}\n");
}

}  // namespace
}  // namespace kcore::bench
