#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/compact.h"
#include "core/elimination.h"
#include "core/montresor.h"
#include "graph/generators.h"
#include "seq/brute.h"
#include "seq/kcore.h"
#include "seq/local_density.h"
#include "util/rng.h"

namespace kcore::core {
namespace {

using graph::Graph;
using graph::NodeId;

CompactResult RunCompact(const Graph& g, int rounds, double lambda = 0.0,
                  bool record = false) {
  CompactOptions opts;
  opts.rounds = rounds;
  opts.lambda = lambda;
  opts.record_rounds = record;
  return RunCompactElimination(g, opts);
}

TEST(RoundsFor, Formulas) {
  // T = ceil(log n / log(gamma/2)).
  EXPECT_EQ(RoundsForGamma(1024, 4.0), 10);
  EXPECT_EQ(RoundsForGamma(1000, 4.0), 10);
  EXPECT_EQ(RoundsForGamma(8, 6.0), 2);
  // T = ceil(log_{1+eps} n).
  EXPECT_EQ(RoundsForEpsilon(1024, 1.0), 10);
  EXPECT_GE(RoundsForEpsilon(1000, 0.1), 72);
  EXPECT_EQ(RoundsForEpsilon(1, 0.5), 1);
}

TEST(CompactElimination, CliqueIsExactAfterOneRound) {
  const Graph g = graph::Complete(6);
  const CompactResult r = RunCompact(g, 1);
  for (NodeId v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(r.b[v], 5.0);
}

TEST(CompactElimination, CycleIsExactAfterOneRound) {
  const Graph g = graph::Cycle(12);
  const CompactResult r = RunCompact(g, 1);
  for (NodeId v = 0; v < 12; ++v) EXPECT_DOUBLE_EQ(r.b[v], 2.0);
}

TEST(CompactElimination, PathNeedsLinearRoundsForEndpointsToPropagate) {
  // Path of 2k+1 nodes: the middle node's surviving number stays 2 (the
  // Figure I.1(b) phenomenon) until the elimination wave from the ends
  // reaches it — about k rounds — even though its coreness is 1.
  const NodeId n = 21;
  const Graph g = graph::Path(n);
  const NodeId mid = n / 2;
  for (int T : {1, 3, 5, 8}) {
    EXPECT_DOUBLE_EQ(RunCompact(g, T).b[mid], 2.0) << "T=" << T;
  }
  EXPECT_DOUBLE_EQ(RunCompact(g, static_cast<int>(n) / 2 + 1).b[mid], 1.0);
}

TEST(CompactElimination, IsolatedNodesGetZero) {
  graph::GraphBuilder b(4);
  b.AddEdge(0, 1);
  const Graph g = std::move(b).Build();
  const CompactResult r = RunCompact(g, 3);
  EXPECT_DOUBLE_EQ(r.b[2], 0.0);
  EXPECT_DOUBLE_EQ(r.b[3], 0.0);
  EXPECT_DOUBLE_EQ(r.b[0], 1.0);
}

// Lemma III.2: beta^T(v) >= c(v) for every T.
class LowerBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(LowerBoundProperty, SurvivingNumberAtLeastCoreness) {
  util::Rng rng(500 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(20 + rng.NextBounded(60));
  Graph g = graph::ErdosRenyiGnp(n, 0.15, rng);
  if (GetParam() % 2 == 0) g = graph::WithUniformWeights(g, 0.3, 2.5, rng);
  const auto core = seq::WeightedCoreness(g);
  for (int T : {1, 2, 4, 8}) {
    const CompactResult r = RunCompact(g, T);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_GE(r.b[v], core[v] - 1e-9) << "T=" << T << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundProperty, ::testing::Range(0, 15));

// Lemma III.3: beta^T(v) <= 2 n^{1/T} r(v).
class UpperBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(UpperBoundProperty, SurvivingNumberBoundedByMaximalDensity) {
  util::Rng rng(600 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(30));
  Graph g = graph::ErdosRenyiGnp(n, 0.25, rng);
  if (GetParam() % 2 == 0) g = graph::WithIntegerWeights(g, 3, rng);
  const auto r_exact = seq::MaximalDensities(g);
  for (int T : {1, 2, 3, 5, 9}) {
    const CompactResult res = RunCompact(g, T);
    const double factor =
        2.0 * std::pow(static_cast<double>(n), 1.0 / static_cast<double>(T));
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_LE(res.b[v], factor * r_exact[v] + 1e-7)
          << "T=" << T << " v=" << v << " r=" << r_exact[v];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpperBoundProperty, ::testing::Range(0, 15));

// Theorem I.1 end-to-end: T = ceil(log_{1+eps} n) gives a 2(1+eps)-approx
// of both c(v) and r(v).
class TheoremOne : public ::testing::TestWithParam<int> {};

TEST_P(TheoremOne, EpsilonGuarantee) {
  util::Rng rng(700 + static_cast<std::uint64_t>(GetParam()));
  const double eps = 0.25 + 0.25 * (GetParam() % 3);
  const NodeId n = static_cast<NodeId>(15 + rng.NextBounded(25));
  const Graph g = graph::WithIntegerWeights(
      graph::ErdosRenyiGnp(n, 0.3, rng), 4, rng);
  const int T = RoundsForEpsilon(n, eps);
  const CompactResult res = RunCompact(g, T);
  const auto c = seq::WeightedCoreness(g);
  const auto r = seq::MaximalDensities(g);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_GE(res.b[v], c[v] - 1e-9);
    EXPECT_LE(res.b[v], 2.0 * (1.0 + eps) * r[v] + 1e-7);
    EXPECT_LE(res.b[v], 2.0 * (1.0 + eps) * c[v] + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremOne, ::testing::Range(0, 12));

TEST(CompactElimination, MonotoneNonIncreasingPerRound) {
  util::Rng rng(42);
  const Graph g = graph::BarabasiAlbert(80, 3, rng);
  const CompactResult r = RunCompact(g, 12, 0.0, /*record=*/true);
  ASSERT_EQ(r.b_rounds.size(), 13u);
  for (std::size_t t = 1; t < r.b_rounds.size(); ++t) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(r.b_rounds[t][v], r.b_rounds[t - 1][v] + 1e-12)
          << "t=" << t << " v=" << v;
    }
  }
}

// Definition III.1 / Fact III.9 consistency: v survives T rounds of
// Algorithm 1 with threshold b iff beta^T(v) >= b.
class SurvivingNumberSemantics : public ::testing::TestWithParam<int> {};

TEST_P(SurvivingNumberSemantics, MatchesSingleThresholdRuns) {
  util::Rng rng(800 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(25));
  Graph g = graph::ErdosRenyiGnp(n, 0.25, rng);
  // Dyadic weights keep all degree sums exact in floating point, so the
  // compact procedure and the single-threshold replay agree bit-for-bit
  // (with arbitrary reals, differently-ordered sums can differ by 1 ulp
  // and flip a >= comparison; the paper assumes exact real arithmetic).
  if (GetParam() % 2 == 1) g = graph::WithDyadicWeights(g, 0.5, 2.0, rng);
  const int T = 1 + static_cast<int>(rng.NextBounded(6));
  const CompactResult res = RunCompact(g, T);
  for (NodeId v = 0; v < n; ++v) {
    if (res.b[v] > 0) {
      const EliminationRun at =
          RunSingleThreshold(g, res.b[v], T);
      EXPECT_TRUE(at.surviving[v])
          << "v must survive its own surviving number, T=" << T;
    }
    const double above = res.b[v] * (1 + 1e-9) + 1e-9;
    const EliminationRun kill = RunSingleThreshold(g, above, T);
    EXPECT_FALSE(kill.surviving[v])
        << "v must die above its surviving number, T=" << T;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SurvivingNumberSemantics,
                         ::testing::Range(0, 15));

// Montresor et al.: run-to-fixpoint equals the exact weighted coreness.
class MontresorFixpoint : public ::testing::TestWithParam<int> {};

TEST_P(MontresorFixpoint, ConvergesToCoreness) {
  util::Rng rng(900 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(50));
  Graph g = graph::ErdosRenyiGnp(n, 0.2, rng);
  if (GetParam() % 3 == 0) g = graph::WithIntegerWeights(g, 3, rng);
  const ConvergenceResult r = RunToConvergence(g);
  const auto core = seq::WeightedCoreness(g);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(r.coreness[v], core[v], 1e-9) << "v=" << v;
  }
  EXPECT_LE(r.rounds_executed, static_cast<int>(n) + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MontresorFixpoint, ::testing::Range(0, 15));

TEST(Montresor, PathTakesLinearRounds) {
  // Constant-diameter variants aside, the path shows Omega(n) convergence:
  // the elimination wave moves one hop per round from the endpoints.
  const Graph g = graph::Path(41);
  const ConvergenceResult r = RunToConvergence(g);
  EXPECT_GE(r.last_change_round, 19);
  for (double c : r.coreness) EXPECT_DOUBLE_EQ(c, 1.0);
}

// Corollary III.10: Lambda-discretization sandwich.
class LambdaDiscretization : public ::testing::TestWithParam<int> {};

TEST_P(LambdaDiscretization, SandwichAndSmallerAlphabet) {
  util::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const double lambda = 0.1 + 0.2 * (GetParam() % 4);
  const NodeId n = static_cast<NodeId>(30 + rng.NextBounded(50));
  const Graph g = graph::WithUniformWeights(
      graph::BarabasiAlbert(n, 3, rng), 0.5, 3.0, rng);
  const int T = 8;
  const CompactResult exact = RunCompact(g, T, 0.0);
  const CompactResult disc = RunCompact(g, T, lambda);
  for (NodeId v = 0; v < n; ++v) {
    // Discretized values sit within one multiplicative step below exact.
    EXPECT_LE(disc.b[v], exact.b[v] + 1e-9);
    EXPECT_GE(disc.b[v] * (1 + lambda) * (1 + 1e-9),
              exact.b[v] * (1 - 1e-9))
        << "v=" << v;
  }
  // The broadcast alphabet shrinks (or at least never grows).
  for (std::size_t t = 1; t < exact.history.size(); ++t) {
    EXPECT_LE(disc.history[t].distinct_values,
              exact.history[t].distinct_values + 1)
        << "round " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LambdaDiscretization, ::testing::Range(0, 10));

TEST(CompactElimination, ThreadedMatchesSequential) {
  util::Rng rng(77);
  const Graph g = graph::BarabasiAlbert(500, 4, rng);
  CompactOptions o1;
  o1.rounds = 6;
  CompactOptions o4 = o1;
  o4.num_threads = 4;
  const CompactResult r1 = RunCompactElimination(g, o1);
  const CompactResult r4 = RunCompactElimination(g, o4);
  EXPECT_EQ(r1.b, r4.b);
}

TEST(SingleThreshold, ShrinkingSurvivorSets) {
  util::Rng rng(88);
  const Graph g = graph::BarabasiAlbert(100, 3, rng);
  const EliminationRun r = RunSingleThreshold(g, 3.5, 10);
  // |A_t| is non-increasing.
  for (std::size_t t = 1; t < r.alive_per_round.size(); ++t) {
    EXPECT_LE(r.alive_per_round[t], r.alive_per_round[t - 1]);
  }
  // Fixpoint survivors all have degree >= threshold among survivors.
  std::vector<char> alive = r.surviving;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!alive[v]) continue;
    double deg = 0.0;
    for (const auto& a : g.Neighbors(v)) {
      if (a.to != v && alive[a.to]) deg += a.w;
    }
    // After 10 rounds this may not be a fixpoint yet, but survivors of the
    // previous round support the recorded one; weaker check: the exact
    // fixpoint is a subset of the T-round survivors.
  }
  const auto fix = seq::EliminationFixpoint(g, 3.5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (fix[v]) {
      EXPECT_TRUE(r.surviving[v]);
    }
  }
}

}  // namespace
}  // namespace kcore::core
