// ThreadSanitizer canary: a DELIBERATE data race that must be detected.
//
// Only built under -DKCORE_SANITIZE=thread, and registered with ctest
// as WILL_FAIL: the test passes exactly when TSan reports the race and
// exits nonzero. If the TSan job were ever misconfigured — sanitizer
// flag dropped, a blanket suppression added, exitcode forced to 0 —
// this binary would exit 0 and the WILL_FAIL inversion would turn that
// into a loud CI failure. The green TSan battery is only evidence of
// race-freedom while this canary stays red.
//
// The race is the textbook one: two threads bump an unsynchronized
// plain int. No atomics, no fences, no pool — nothing that could give
// TSan a happens-before edge to forgive it with.

#include <cstdio>
#include <thread>

namespace {

int g_unsynchronized_counter = 0;  // written by both threads, no lock

void Bump() {
  for (int i = 0; i < 100000; ++i) ++g_unsynchronized_counter;
}

}  // namespace

int main() {
  std::thread a(Bump);
  std::thread b(Bump);
  a.join();
  b.join();
  // Reaching here with exit status 0 means TSan did NOT flag the race
  // above (not built with -fsanitize=thread, or reports disabled) —
  // WILL_FAIL then fails the ctest case, which is the point.
  std::printf("canary ran to completion: counter=%d\n",
              g_unsynchronized_counter);
  return 0;
}
