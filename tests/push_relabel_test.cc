// Cross-validation of the two independent max-flow implementations
// (Dinic and FIFO push-relabel) against each other and against
// brute-force min cuts, plus flow-conservation property checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "flow/dinic.h"
#include "flow/push_relabel.h"
#include "util/rng.h"

namespace kcore::flow {
namespace {

struct RandomNetwork {
  int n;
  std::vector<std::tuple<int, int, double>> arcs;
};

RandomNetwork MakeNetwork(util::Rng& rng, bool integer_caps) {
  RandomNetwork net;
  net.n = 4 + static_cast<int>(rng.NextBounded(12));
  const int m = 2 * net.n + static_cast<int>(rng.NextBounded(30));
  for (int i = 0; i < m; ++i) {
    const int u = static_cast<int>(rng.NextBounded(net.n));
    int v = static_cast<int>(rng.NextBounded(net.n));
    if (u == v) v = (v + 1) % net.n;
    const double cap = integer_caps
                           ? static_cast<double>(rng.NextBounded(10))
                           : rng.NextDouble(0.0, 5.0);
    net.arcs.emplace_back(u, v, cap);
  }
  return net;
}

// Brute-force min cut by enumerating source sides (n <= 16).
double BruteMinCut(const RandomNetwork& net, int s, int t) {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 0; mask < (1u << net.n); ++mask) {
    if (!(mask >> s & 1u) || (mask >> t & 1u)) continue;
    double cut = 0.0;
    for (const auto& [u, v, cap] : net.arcs) {
      if ((mask >> u & 1u) && !(mask >> v & 1u)) cut += cap;
    }
    best = std::min(best, cut);
  }
  return best;
}

TEST(PushRelabel, TextbookNetwork) {
  PushRelabel pr(6);
  pr.AddArc(0, 1, 16);
  pr.AddArc(0, 2, 13);
  pr.AddArc(1, 2, 10);
  pr.AddArc(2, 1, 4);
  pr.AddArc(1, 3, 12);
  pr.AddArc(3, 2, 9);
  pr.AddArc(2, 4, 14);
  pr.AddArc(4, 3, 7);
  pr.AddArc(3, 5, 20);
  pr.AddArc(4, 5, 4);
  EXPECT_NEAR(pr.MaxFlow(0, 5), 23.0, 1e-9);
}

TEST(PushRelabel, DisconnectedIsZero) {
  PushRelabel pr(4);
  pr.AddArc(0, 1, 5);
  pr.AddArc(2, 3, 5);
  EXPECT_NEAR(pr.MaxFlow(0, 3), 0.0, 1e-9);
}

class FlowCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(FlowCrossValidation, DinicEqualsPushRelabelEqualsBrute) {
  util::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  const RandomNetwork net = MakeNetwork(rng, GetParam() % 2 == 0);
  const int s = 0;
  const int t = net.n - 1;

  Dinic dinic(net.n);
  PushRelabel pr(net.n);
  for (const auto& [u, v, cap] : net.arcs) {
    dinic.AddArc(u, v, cap);
    pr.AddArc(u, v, cap);
  }
  const double fd = dinic.MaxFlow(s, t);
  const double fp = pr.MaxFlow(s, t);
  EXPECT_NEAR(fd, fp, 1e-7);
  if (net.n <= 16) {
    EXPECT_NEAR(fd, BruteMinCut(net, s, t), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowCrossValidation, ::testing::Range(0, 60));

class FlowProperties : public ::testing::TestWithParam<int> {};

TEST_P(FlowProperties, ConservationAndCutConsistency) {
  util::Rng rng(3100 + static_cast<std::uint64_t>(GetParam()));
  const RandomNetwork net = MakeNetwork(rng, true);
  const int s = 0;
  const int t = net.n - 1;
  PushRelabel pr(net.n);
  std::vector<int> handles;
  for (const auto& [u, v, cap] : net.arcs) {
    handles.push_back(pr.AddArc(u, v, cap));
  }
  const double flow = pr.MaxFlow(s, t);

  // Per-arc flow in [0, cap]; conservation at internal nodes.
  std::vector<double> net_out(net.n, 0.0);
  for (std::size_t i = 0; i < net.arcs.size(); ++i) {
    const auto& [u, v, cap] = net.arcs[i];
    const double f = pr.Flow(handles[i]);
    EXPECT_GE(f, -1e-9);
    EXPECT_LE(f, cap + 1e-9);
    net_out[u] += f;
    net_out[v] -= f;
  }
  for (int v = 0; v < net.n; ++v) {
    if (v == s || v == t) continue;
    EXPECT_NEAR(net_out[v], 0.0, 1e-7) << "node " << v;
  }
  EXPECT_NEAR(net_out[s], flow, 1e-7);
  EXPECT_NEAR(net_out[t], -flow, 1e-7);

  // The reported cut's capacity equals the flow value (max-flow/min-cut).
  const auto side = pr.MinCutSourceSide(s);
  EXPECT_TRUE(side[s]);
  EXPECT_FALSE(side[t]);
  double cut = 0.0;
  for (const auto& [u, v, cap] : net.arcs) {
    if (side[u] && !side[v]) cut += cap;
  }
  EXPECT_NEAR(cut, flow, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowProperties, ::testing::Range(0, 40));

TEST(PushRelabel, LargeRandomAgreesWithDinic) {
  util::Rng rng(9);
  const int n = 300;
  Dinic dinic(n);
  PushRelabel pr(n);
  for (int i = 0; i < 3000; ++i) {
    const int u = static_cast<int>(rng.NextBounded(n));
    int v = static_cast<int>(rng.NextBounded(n));
    if (u == v) v = (v + 1) % n;
    const double cap = static_cast<double>(rng.NextBounded(20));
    dinic.AddArc(u, v, cap);
    pr.AddArc(u, v, cap);
  }
  EXPECT_NEAR(dinic.MaxFlow(0, n - 1), pr.MaxFlow(0, n - 1), 1e-6);
}

}  // namespace
}  // namespace kcore::flow
