#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "graph/bfs.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/rng.h"

namespace kcore::graph {
namespace {

TEST(Shapes, PathCycleStar) {
  EXPECT_EQ(Path(5).num_edges(), 4u);
  EXPECT_EQ(Cycle(5).num_edges(), 5u);
  EXPECT_EQ(Star(5).num_edges(), 4u);
  EXPECT_EQ(Star(5).Degree(0), 4u);
  EXPECT_EQ(Complete(6).num_edges(), 15u);
  EXPECT_EQ(CompleteBipartite(3, 4).num_edges(), 12u);
  EXPECT_EQ(Grid(3, 4).num_edges(), 3u * 3 + 2u * 4);
}

TEST(Shapes, AllSimpleAndLoopFree) {
  util::Rng rng(1);
  EXPECT_TRUE(Path(10).IsSimple());
  EXPECT_TRUE(Cycle(10).IsSimple());
  EXPECT_TRUE(Complete(8).IsSimple());
  EXPECT_TRUE(Grid(4, 4).IsSimple());
  EXPECT_TRUE(ErdosRenyiGnp(50, 0.2, rng).IsSimple());
  EXPECT_TRUE(ErdosRenyiGnm(50, 100, rng).IsSimple());
  EXPECT_TRUE(BarabasiAlbert(100, 3, rng).IsSimple());
  EXPECT_TRUE(WattsStrogatz(60, 3, 0.2, rng).IsSimple());
  EXPECT_TRUE(PowerLawConfiguration(100, 2.5, 2, 20, rng).IsSimple());
  EXPECT_TRUE(Rmat(7, 4.0, 0.57, 0.19, 0.19, rng).IsSimple());
  EXPECT_TRUE(PlantedPartition(60, 4, 0.4, 0.02, rng).IsSimple());
  EXPECT_TRUE(RandomGeometric(100, 0.2, rng).IsSimple());
}

TEST(ErdosRenyi, GnpEdgeCountNearExpectation) {
  util::Rng rng(5);
  const NodeId n = 300;
  const double p = 0.05;
  const Graph g = ErdosRenyiGnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(ErdosRenyi, GnmExactCount) {
  util::Rng rng(6);
  const Graph g = ErdosRenyiGnm(100, 321, rng);
  EXPECT_EQ(g.num_edges(), 321u);
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  util::Rng rng(7);
  EXPECT_EQ(ErdosRenyiGnp(20, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyiGnp(20, 1.0, rng).num_edges(), 190u);
}

TEST(BarabasiAlbert, ConnectedWithExpectedEdgeCount) {
  util::Rng rng(8);
  const NodeId n = 500;
  const NodeId k = 3;
  const Graph g = BarabasiAlbert(n, k, rng);
  EXPECT_TRUE(IsConnected(g));
  // clique seed + k per subsequent node
  EXPECT_EQ(g.num_edges(), (k + 1) * k / 2 + (n - k - 1) * k);
  // Heavy tail: max degree far above the mean.
  const double mean_deg = 2.0 * static_cast<double>(g.num_edges()) / n;
  EXPECT_GT(static_cast<double>(g.MaxDegree()), 4.0 * mean_deg);
}

// Regression for a live hash-order leak: BarabasiAlbert used to collect
// each new node's attachment targets in an unordered_set and emit edges in
// bucket-iteration order, so the edge list depended on the stdlib's hash
// layout. Targets are now emitted in ascending order; pin that canonical
// form so any future container swap breaks loudly instead of silently
// shifting every downstream golden.
TEST(BarabasiAlbert, CanonicalSortedAttachmentOrder) {
  util::Rng rng(8);
  const NodeId n = 500;
  const NodeId k = 3;
  const Graph g = BarabasiAlbert(n, k, rng);
  // Every post-seed node contributes exactly k consecutive edges
  // (v, t_1..t_k) with strictly ascending targets.
  const EdgeId clique_edges = (k + 1) * k / 2;
  for (NodeId v = k + 1; v < n; ++v) {
    const EdgeId base = clique_edges + static_cast<EdgeId>(v - k - 1) * k;
    for (NodeId j = 0; j < k; ++j) {
      const Edge& e = g.edge(base + j);
      EXPECT_EQ(e.u, v);
      EXPECT_LT(e.v, v);
      if (j > 0) {
        EXPECT_LT(g.edge(base + j - 1).v, e.v)
            << "attachment targets of node " << v << " not ascending";
      }
    }
  }
  // Seed-pinned fingerprint of the exact edge list: a stdlib-dependent
  // iteration order anywhere in the generator changes this value.
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  const auto mix = [&h](std::uint64_t x) {
    h = (h ^ x) * 1099511628211ull;
  };
  for (const Edge& e : g.edges()) {
    mix(e.u);
    mix(e.v);
  }
  EXPECT_EQ(h, 18290286173305852661ull);
}

TEST(PowerLaw, DegreesWithinBounds) {
  util::Rng rng(9);
  const Graph g = PowerLawConfiguration(400, 2.5, 2, 30, rng);
  EXPECT_LE(g.MaxDegree(), 30u);
  EXPECT_GT(g.num_edges(), 300u);
}

TEST(PlantedPartition, IntraDenserThanInter) {
  util::Rng rng(10);
  const NodeId n = 120;
  const NodeId k = 4;
  const Graph g = PlantedPartition(n, k, 0.5, 0.02, rng);
  std::size_t intra = 0;
  std::size_t inter = 0;
  for (const Edge& e : g.edges()) {
    (e.u % k == e.v % k ? intra : inter) += 1;
  }
  EXPECT_GT(intra, 3 * inter);
}

TEST(WattsStrogatz, DegreesConcentrated) {
  util::Rng rng(11);
  const Graph g = WattsStrogatz(200, 4, 0.1, rng);
  // Ring lattice has degree 2k = 8; rewiring changes few endpoints.
  EXPECT_EQ(g.num_edges(), 200u * 4);
}

// --- Lower-bound gadgets --------------------------------------------------

TEST(Fig1, CorenessValuesMatchPaper) {
  const NodeId n = 20;
  const auto ca = seq::UnweightedCoreness(Fig1a(n));
  const auto cb = seq::UnweightedCoreness(Fig1b(n));
  const auto cc = seq::UnweightedCoreness(Fig1c(n));
  const NodeId v = Fig1DistinguishedNode(n);
  // (a): cycle — everyone coreness 2; (b): path — everyone 1;
  // (c): path + far triangle — v still 1, triangle nodes 2.
  EXPECT_EQ(ca[v], 2u);
  EXPECT_EQ(cb[v], 1u);
  EXPECT_EQ(cc[v], 1u);
  EXPECT_EQ(cc[n - 1], 2u);
  EXPECT_EQ(cc[n - 2], 2u);
  EXPECT_EQ(cc[n - 3], 2u);
}

TEST(Fig1, LocalViewsAgreeNearDistinguishedNode) {
  // The distinguished node's T-hop neighborhood in (a) and (c) must look
  // identical (a path of degree-2 nodes) for T < n/2 - 2: that is the
  // indistinguishability driving the Omega(n) lower bound.
  const NodeId n = 30;
  const Graph a = Fig1a(n);
  const Graph c = Fig1c(n);
  const NodeId v = Fig1DistinguishedNode(n);
  const auto da = BfsDistances(a, v);
  const auto dc = BfsDistances(c, v);
  // Count nodes within radius r and check degree-2-ness in both.
  for (std::uint32_t r = 1; r + 4 < n / 2; ++r) {
    std::size_t ball_a = 0;
    std::size_t ball_c = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (da[u] <= r) ++ball_a;
      if (dc[u] <= r) ++ball_c;
    }
    // Cycle ball: 2r+1 nodes. Path-end ball: r+1 nodes... the views differ
    // in *size* but every node in both balls has degree <= 2, and v cannot
    // tell a long cycle from a long path until the ends meet.
    EXPECT_EQ(ball_a, 2u * r + 1);
    EXPECT_EQ(ball_c, r + 1);
  }
}

TEST(GammaTree, SizeAndStructure) {
  EXPECT_EQ(GammaTreeSize(2, 3), 15u);
  EXPECT_EQ(GammaTreeSize(3, 2), 13u);
  const Graph t = GammaTree(3, 3);
  EXPECT_EQ(t.num_nodes(), 40u);
  EXPECT_EQ(t.num_edges(), 39u);  // a tree
  EXPECT_TRUE(IsConnected(t));
  // Every non-leaf internal node has gamma children (+1 for parent).
  EXPECT_EQ(t.Degree(0), 3u);
  EXPECT_EQ(t.Degree(1), 4u);
  // Coreness of every tree node is 1.
  for (std::uint32_t c : seq::UnweightedCoreness(t)) EXPECT_EQ(c, 1u);
}

TEST(GammaTreeWithLeafClique, RootCorenessJumpsToGamma) {
  const NodeId gamma = 3;
  const NodeId depth = 3;  // 27 leaves >= 2*gamma + 1
  const Graph g = GammaTreeWithLeafClique(gamma, depth);
  const auto core = seq::UnweightedCoreness(g);
  // Lemma III.13: every node of G' has degree >= gamma (root: gamma
  // children; internal: gamma+1; leaf: clique + parent), so the whole
  // graph is a gamma-core and c(root) = gamma exactly (root degree caps it).
  EXPECT_EQ(core[0], gamma);
  const Graph t = GammaTree(gamma, depth);
  const auto core_tree = seq::UnweightedCoreness(t);
  EXPECT_EQ(core_tree[0], 1u);
  // The clique nodes have high coreness.
  EXPECT_GE(core[g.num_nodes() - 1], gamma);
}

// --- Property tests across the random models ------------------------------

// Every simple generated graph must satisfy the handshake lemma: the sum
// of unweighted degrees equals 2m, and the sum of weighted degrees equals
// 2 * w(E). (With self-loops the loop contributes once to its endpoint —
// none of these models emit loops, which AllSimpleAndLoopFree pins.)
TEST(GeneratorProperties, DegreeSumsMatchHandshakeLemma) {
  util::Rng rng(21);
  const Graph graphs[] = {
      ErdosRenyiGnp(300, 0.04, rng),
      ErdosRenyiGnm(300, 900, rng),
      BarabasiAlbert(300, 3, rng),
      WattsStrogatz(300, 3, 0.15, rng),
      PowerLawConfiguration(300, 2.4, 2, 40, rng),
      Rmat(8, 5.0, 0.57, 0.19, 0.19, rng),
      PlantedPartition(240, 6, 0.3, 0.01, rng),
      RandomGeometric(300, 0.12, rng),
  };
  for (const Graph& g : graphs) {
    std::size_t degree_sum = 0;
    double weighted_sum = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      degree_sum += g.Degree(v);
      weighted_sum += g.WeightedDegree(v);
    }
    EXPECT_EQ(degree_sum, 2 * g.num_edges());
    EXPECT_NEAR(weighted_sum, 2.0 * g.total_weight(),
                1e-9 * (1.0 + g.total_weight()));
  }
}

// Replaying any generator with the same seed must reproduce the edge list
// bit-for-bit — the reproducibility contract every experiment leans on.
TEST(GeneratorProperties, DeterministicUnderFixedSeed) {
  const auto same_edges = [](const Graph& a, const Graph& b) {
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (EdgeId e = 0; e < a.num_edges(); ++e) {
      ASSERT_EQ(a.edge(e).u, b.edge(e).u);
      ASSERT_EQ(a.edge(e).v, b.edge(e).v);
      ASSERT_DOUBLE_EQ(a.edge(e).w, b.edge(e).w);
    }
  };
  const auto with = [](auto&& f) {
    util::Rng rng(77);
    return f(rng);
  };
  const auto check = [&](auto&& f) {
    same_edges(with(f), with(f));
  };
  check([](util::Rng& r) { return ErdosRenyiGnp(200, 0.05, r); });
  check([](util::Rng& r) { return ErdosRenyiGnm(200, 500, r); });
  check([](util::Rng& r) { return BarabasiAlbert(200, 3, r); });
  check([](util::Rng& r) { return WattsStrogatz(200, 3, 0.2, r); });
  check([](util::Rng& r) { return PowerLawConfiguration(200, 2.5, 2, 30, r); });
  check([](util::Rng& r) { return Rmat(7, 4.0, 0.57, 0.19, 0.19, r); });
  check([](util::Rng& r) { return PlantedPartition(120, 4, 0.4, 0.02, r); });
  check([](util::Rng& r) { return RandomGeometric(150, 0.15, r); });
  check([](util::Rng& r) {
    return WithUniformWeights(Cycle(64), 1.0, 3.0, r);
  });
  check([](util::Rng& r) { return WithParetoWeights(Cycle(64), 1.0, 2.0, r); });
}

// Different seeds must (overwhelmingly likely) give different graphs;
// guards against a generator silently ignoring its Rng.
TEST(GeneratorProperties, DifferentSeedsDiffer) {
  util::Rng r1(1);
  util::Rng r2(2);
  const Graph a = ErdosRenyiGnm(100, 300, r1);
  const Graph b = ErdosRenyiGnm(100, 300, r2);
  bool differs = false;
  for (EdgeId e = 0; e < a.num_edges() && !differs; ++e) {
    differs = a.edge(e).u != b.edge(e).u || a.edge(e).v != b.edge(e).v;
  }
  EXPECT_TRUE(differs);
}

// Invalid parameters must trip a KCORE_CHECK, not corrupt memory.
TEST(GeneratorProperties, ParameterValidationDies) {
  util::Rng rng(3);
  EXPECT_DEATH(Cycle(2), "cycle needs >= 3 nodes");
  EXPECT_DEATH(ErdosRenyiGnm(10, 100, rng), "too many edges");
  EXPECT_DEATH(BarabasiAlbert(3, 3, rng), "n > attach");
  EXPECT_DEATH(BarabasiAlbert(10, 0, rng), "attach >= 1");
}

// Boundary sizes: the smallest legal instance of each deterministic shape.
TEST(GeneratorProperties, MinimalShapes) {
  EXPECT_EQ(Path(1).num_edges(), 0u);
  EXPECT_EQ(Path(0).num_nodes(), 0u);
  EXPECT_EQ(Cycle(3).num_edges(), 3u);
  EXPECT_EQ(Star(1).num_edges(), 0u);
  EXPECT_EQ(Complete(1).num_edges(), 0u);
  EXPECT_EQ(Grid(1, 1).num_edges(), 0u);
  EXPECT_EQ(CompleteBipartite(1, 1).num_edges(), 1u);
}

TEST(Weights, UniformParetoInteger) {
  util::Rng rng(12);
  const Graph base = Cycle(50);
  const Graph u = WithUniformWeights(base, 2.0, 5.0, rng);
  for (const Edge& e : u.edges()) {
    EXPECT_GE(e.w, 2.0);
    EXPECT_LT(e.w, 5.0);
  }
  const Graph p = WithParetoWeights(base, 1.0, 2.0, rng);
  for (const Edge& e : p.edges()) EXPECT_GE(e.w, 1.0);
  const Graph i = WithIntegerWeights(base, 4, rng);
  for (const Edge& e : i.edges()) {
    EXPECT_GE(e.w, 1.0);
    EXPECT_LE(e.w, 4.0);
    EXPECT_DOUBLE_EQ(e.w, std::floor(e.w));
  }
}

}  // namespace
}  // namespace kcore::graph
