#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/compact.h"
#include "distsim/transport.h"
#include "graph/generators.h"
#include "hyper/helim.h"
#include "hyper/helim_protocol.h"
#include "hyper/hypergraph.h"
#include "seq/densest_exact.h"
#include "seq/kcore.h"
#include "util/rng.h"

namespace kcore::hyper {
namespace {

TEST(Hypergraph, BuildIncidenceDegrees) {
  HypergraphBuilder b(5);
  b.AddEdge({0, 1, 2}, 2.0).AddEdge({2, 3}, 1.0).AddEdge({4}, 3.0);
  const Hypergraph h = std::move(b).Build();
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_EQ(h.Rank(), 3u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 6.0);
  EXPECT_DOUBLE_EQ(h.WeightedDegree(2), 3.0);
  EXPECT_DOUBLE_EQ(h.WeightedDegree(4), 3.0);
  EXPECT_EQ(h.IncidentEdges(2).size(), 2u);
}

TEST(Hypergraph, DuplicateMembersCollapsed) {
  HypergraphBuilder b(3);
  b.AddEdge({1, 1, 2}, 1.0);
  const Hypergraph h = std::move(b).Build();
  EXPECT_EQ(h.edge(0).nodes.size(), 2u);
}

TEST(Hypergraph, InducedDensitySemantics) {
  // Edge counts toward S iff ALL members are in S.
  HypergraphBuilder b(4);
  b.AddEdge({0, 1, 2}, 3.0).AddEdge({0, 1}, 1.0);
  const Hypergraph h = std::move(b).Build();
  std::vector<char> s01{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(h.InducedEdgeWeight(s01), 1.0);
  std::vector<char> s012{1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(h.InducedEdgeWeight(s012), 4.0);
  EXPECT_DOUBLE_EQ(h.InducedDensity(s012), 4.0 / 3.0);
}

TEST(Hypergraph, FromGraphIsRankTwo) {
  util::Rng rng(1);
  const graph::Graph g = graph::ErdosRenyiGnp(20, 0.3, rng);
  const Hypergraph h = FromGraph(g);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_LE(h.Rank(), 2u);
  for (graph::NodeId v = 0; v < 20; ++v) {
    EXPECT_DOUBLE_EQ(h.WeightedDegree(v), g.WeightedDegree(v));
  }
}

TEST(HyperCoreness, ReducesToGraphCorenessAtRankTwo) {
  util::Rng rng(2);
  const graph::Graph g = graph::BarabasiAlbert(60, 3, rng);
  const auto graph_core = seq::WeightedCoreness(g);
  const auto hyper_core = HyperCoreness(FromGraph(g));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(hyper_core[v], graph_core[v], 1e-9) << "v=" << v;
  }
}

class HyperCorenessVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(HyperCorenessVsBrute, AgreesOnSmallHypergraphs) {
  util::Rng rng(2100 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(4 + rng.NextBounded(6));
  const std::size_t r = 2 + rng.NextBounded(2);  // rank 2-3
  const Hypergraph h = RandomUniform(n, 2 + rng.NextBounded(12),
                                     std::min<std::size_t>(r, n), rng);
  const auto fast = HyperCoreness(h);
  const auto brute = HyperCorenessBrute(h);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(fast[v], brute[v], 1e-9) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyperCorenessVsBrute, ::testing::Range(0, 40));

class HyperDensestVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(HyperDensestVsBrute, ExactSolverMatchesEnumeration) {
  util::Rng rng(2200 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(4 + rng.NextBounded(7));
  const std::size_t r = 2 + rng.NextBounded(2);
  const Hypergraph h = RandomUniform(n, 3 + rng.NextBounded(15),
                                     std::min<std::size_t>(r, n), rng);
  const auto exact = HyperDensestExact(h);
  const auto brute = HyperDensestBrute(h);
  EXPECT_NEAR(exact.density, brute.density, 1e-7);
  EXPECT_EQ(exact.in_set, brute.in_set);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyperDensestVsBrute, ::testing::Range(0, 30));

TEST(HyperDensestGreedy, RankFactorGuarantee) {
  // Greedy peeling is an r-approximation on rank-r hypergraphs.
  util::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const std::size_t r = 2 + rng.NextBounded(3);
    const Hypergraph h = RandomUniform(40, 80, r, rng);
    const auto greedy = HyperDensestGreedy(h);
    const auto exact = HyperDensestExact(h);
    EXPECT_GE(greedy.density * static_cast<double>(r) + 1e-7, exact.density)
        << "rank " << r;
    EXPECT_LE(greedy.density, exact.density + 1e-7);
  }
}

// Lemma III.2 analog: surviving numbers dominate the hypergraph coreness.
class HyperBetaLowerBound : public ::testing::TestWithParam<int> {};

TEST_P(HyperBetaLowerBound, BetaAtLeastCoreness) {
  util::Rng rng(2300 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(30));
  const std::size_t r = 2 + rng.NextBounded(3);
  const Hypergraph h = RandomUniform(n, 2 * n, r, rng);
  const auto core = HyperCoreness(h);
  for (int T : {1, 2, 4, 8}) {
    const auto beta = HyperSurvivingNumbers(h, T);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_GE(beta[v], core[v] - 1e-9) << "T=" << T << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyperBetaLowerBound, ::testing::Range(0, 15));

// Lemma III.3 analog with the rank factor: max beta^T <= r n^{1/T} rho*.
class HyperBetaUpperBound : public ::testing::TestWithParam<int> {};

TEST_P(HyperBetaUpperBound, BetaBoundedByRankTimesDensity) {
  util::Rng rng(2400 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(8 + rng.NextBounded(20));
  const std::size_t r = 2 + rng.NextBounded(3);
  const Hypergraph h = RandomUniform(n, 2 * n, r, rng);
  const double rho = HyperDensestExact(h).density;
  for (int T : {1, 2, 4, 8}) {
    const auto beta = HyperSurvivingNumbers(h, T);
    const double bound = static_cast<double>(h.Rank()) *
                         std::pow(static_cast<double>(n),
                                  1.0 / static_cast<double>(T)) *
                         rho;
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_LE(beta[v], bound + 1e-7) << "T=" << T << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyperBetaUpperBound, ::testing::Range(0, 15));

TEST(HyperSurviving, MatchesGraphCompactEliminationAtRankTwo) {
  // On rank-2 hypergraphs the update degenerates to the paper's
  // Algorithm 2 (min over the single other member = that neighbor's b).
  util::Rng rng(4);
  const graph::Graph g = graph::ErdosRenyiGnp(40, 0.15, rng);
  const Hypergraph h = FromGraph(g);
  for (int T : {1, 3, 6}) {
    const auto hb = HyperSurvivingNumbers(h, T);
    core::CompactOptions opts;
    opts.rounds = T;
    const auto gb = core::RunCompactElimination(g, opts);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(hb[v], gb.b[v], 1e-9) << "T=" << T << " v=" << v;
    }
  }
}

// ---------------------------------------------------------------------
// Engine port: RunHyperElimination must reproduce the sequential oracle
// HyperSurvivingNumbers bit for bit, under every engine configuration.

// Bitwise equality (EXPECT_EQ on doubles would treat +0.0 == -0.0; the
// determinism contract is about bits).
void ExpectBitsEqual(const std::vector<double>& got,
                     const std::vector<double>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[v]),
              std::bit_cast<std::uint64_t>(want[v]))
        << label << " v=" << v << " got=" << got[v] << " want=" << want[v];
  }
}

class HyperElimEngineVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(HyperElimEngineVsOracle, BitExactOnRandomHypergraphs) {
  util::Rng rng(2500 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(30));
  const std::size_t r = 2 + rng.NextBounded(3);
  const Hypergraph h = RandomUniform(n, 2 * n, std::min<std::size_t>(r, n),
                                     rng);
  for (int T : {1, 2, 5}) {
    const auto oracle = HyperSurvivingNumbers(h, T);
    HyperElimOptions opts;
    opts.rounds = T;
    const auto engine = RunHyperElimination(h, opts);
    ExpectBitsEqual(engine.b, oracle, "shared/1thr");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyperElimEngineVsOracle,
                         ::testing::Range(0, 12));

TEST(HyperElimEngine, ThreadsTransportsRanksBitIdentical) {
  util::Rng rng(2600);
  const Hypergraph h = RandomUniform(300, 600, 3, rng);
  const int T = 4;
  const auto oracle = HyperSurvivingNumbers(h, T);

  struct Config {
    const char* label;
    distsim::TransportKind transport;
    int threads;
    int ranks;
    bool per_rank;
  };
  const Config configs[] = {
      {"shared/1thr", distsim::TransportKind::kSharedMemory, 1, 1, false},
      {"shared/8thr", distsim::TransportKind::kSharedMemory, 8, 1, false},
      {"serialized/8thr", distsim::TransportKind::kSerialized, 8, 1, false},
      {"process/1thr/2ranks", distsim::TransportKind::kProcess, 1, 2, false},
      {"process/8thr/8ranks", distsim::TransportKind::kProcess, 8, 8, false},
      {"per-rank/1thr/2ranks", distsim::TransportKind::kProcess, 1, 2, true},
      {"per-rank/8thr/8ranks", distsim::TransportKind::kProcess, 8, 8, true},
  };
  for (const Config& c : configs) {
    HyperElimOptions opts;
    opts.rounds = T;
    opts.num_threads = c.threads;
    opts.transport = c.transport;
    opts.ranks = c.ranks;
    opts.per_rank_compute = c.per_rank;
    const auto engine = RunHyperElimination(h, opts);
    ExpectBitsEqual(engine.b, oracle, c.label);
  }
}

TEST(HyperElimEngine, SingletonAndEmptyIncidence) {
  // Node 4 is isolated (b = 0), node 3 has only a singleton edge (its
  // value is +inf every round, so b = the singleton's weight cap).
  HypergraphBuilder b(5);
  b.AddEdge({0, 1, 2}, 2.0).AddEdge({0, 1}, 1.0).AddEdge({3}, 3.0);
  const Hypergraph h = std::move(b).Build();
  for (int T : {1, 2, 4}) {
    const auto oracle = HyperSurvivingNumbers(h, T);
    HyperElimOptions opts;
    opts.rounds = T;
    const auto engine = RunHyperElimination(h, opts);
    ExpectBitsEqual(engine.b, oracle, "degenerate");
    EXPECT_EQ(engine.b[4], 0.0);
  }
}

TEST(HyperElimEngine, RankTwoMatchesCompactElimination) {
  // On rank-2 hypergraphs the port IS Algorithm 2: same update, same
  // tie-break order, bit-identical b.
  util::Rng rng(2700);
  const graph::Graph g = graph::ErdosRenyiGnp(50, 0.12, rng);
  const Hypergraph h = FromGraph(g);
  for (int T : {1, 3, 6}) {
    core::CompactOptions copts;
    copts.rounds = T;
    const auto compact = core::RunCompactElimination(g, copts);
    HyperElimOptions opts;
    opts.rounds = T;
    const auto engine = RunHyperElimination(h, opts);
    ExpectBitsEqual(engine.b, compact.b, "rank-2");
  }
}

TEST(HyperElimEngine, HistoryCountsBroadcastsEveryRound) {
  util::Rng rng(2800);
  const Hypergraph h = RandomUniform(40, 80, 3, rng);
  HyperElimOptions opts;
  opts.rounds = 3;
  const auto res = RunHyperElimination(h, opts);
  ASSERT_EQ(res.history.size(), 4u);  // init + 3 rounds
  for (const auto& s : res.history) {
    EXPECT_EQ(s.active_nodes, 40u);  // nobody halts in this protocol
  }
}

}  // namespace
}  // namespace kcore::hyper
