// End-to-end behaviors tying the library to the paper's narrative:
// the Figure I.1 indistinguishability, the Lemma III.13 tree gadgets,
// and full pipelines across the generator suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/compact.h"
#include "core/densest.h"
#include "core/montresor.h"
#include "core/orientation.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "seq/densest_exact.h"
#include "seq/kcore.h"
#include "seq/local_density.h"
#include "util/rng.h"

namespace kcore {
namespace {

using graph::Graph;
using graph::NodeId;

core::CompactResult Compact(const Graph& g, int rounds) {
  core::CompactOptions opts;
  opts.rounds = rounds;
  return core::RunCompactElimination(g, opts);
}

// Figure I.1: the distinguished node cannot tell (a) from (b)/(c) in o(n)
// rounds, so any algorithm with ratio < 2 needs Omega(n) rounds. Our
// elimination procedure exhibits exactly that: beta^T(v) = 2 on the path
// until the endpoint wave arrives, while c(v) = 1.
TEST(Fig1Barrier, SurvivingNumberIdenticalAcrossFamilyUntilWaveArrives) {
  const NodeId n = 40;
  const Graph a = graph::Fig1a(n);
  const Graph b = graph::Fig1b(n);
  const Graph c = graph::Fig1c(n);
  const NodeId va = graph::Fig1DistinguishedNode(n);
  // In (b)/(c), node 0 is an endpoint (degree 1, killed instantly); the
  // "stuck at 2" phenomenon shows at the middle of the path.
  const NodeId mid = n / 2;
  for (int T : {1, 4, 8, 12}) {
    EXPECT_DOUBLE_EQ(Compact(a, T).b[va], 2.0);
    EXPECT_DOUBLE_EQ(Compact(b, T).b[mid], 2.0) << "T=" << T;
    EXPECT_DOUBLE_EQ(Compact(c, T).b[mid], 2.0) << "T=" << T;
  }
  // Ground truth differs: ratio beta/c = 2 on (b)/(c) until T ~ n/2.
  EXPECT_EQ(seq::UnweightedCoreness(a)[va], 2u);
  EXPECT_EQ(seq::UnweightedCoreness(b)[mid], 1u);
  EXPECT_EQ(seq::UnweightedCoreness(c)[mid], 1u);
  // After enough rounds the wave arrives and the estimate drops to exact.
  EXPECT_DOUBLE_EQ(Compact(b, static_cast<int>(n)).b[mid], 1.0);
  EXPECT_DOUBLE_EQ(Compact(c, static_cast<int>(n)).b[mid], 1.0);
}

TEST(Fig1Barrier, OrientationOnCycleAndPath) {
  // Both cycle and path admit max in-degree 1; our distributed algorithm
  // achieves <= 2 (the barrier: beating 2 requires Omega(n) rounds).
  const NodeId n = 30;
  const int T = core::RoundsForEpsilon(n, 0.5);
  const auto rc = core::RunDistributedOrientation(graph::Fig1a(n), T);
  const auto rp = core::RunDistributedOrientation(graph::Fig1b(n), T);
  EXPECT_LE(rc.orientation.max_load, 2.0 + 1e-9);
  EXPECT_LE(rp.orientation.max_load, 2.0 + 1e-9);
  EXPECT_GE(rc.orientation.max_load, 1.0);
  EXPECT_GE(rp.orientation.max_load, 1.0);
}

// Lemma III.13: on the gamma-ary tree, the root's estimate decays by at
// most "one level per round": reaching ratio < gamma requires ~depth
// rounds; with the leaf clique, the root's coreness genuinely IS gamma.
TEST(TreeBarrier, RootEstimateDecaysOneLevelPerRound) {
  const NodeId gamma = 3;
  const NodeId depth = 6;  // 1093 nodes
  const Graph t = graph::GammaTree(gamma, depth);
  // Root coreness is 1; beta_T(root) stays >= gamma while T < depth.
  for (NodeId T = 1; T + 1 < depth; ++T) {
    const double b = Compact(t, static_cast<int>(T)).b[0];
    EXPECT_GE(b, static_cast<double>(gamma)) << "T=" << T;
  }
  // Convergence takes ~depth rounds (the lower-bound shape).
  const core::ConvergenceResult conv = core::RunToConvergence(t);
  EXPECT_GE(conv.last_change_round, static_cast<int>(depth) - 1);
  EXPECT_LE(conv.last_change_round, static_cast<int>(depth) + 2);
  EXPECT_DOUBLE_EQ(conv.coreness[0], 1.0);
}

TEST(TreeBarrier, LeafCliqueVersionKeepsRootAtGamma) {
  const NodeId gamma = 3;
  const NodeId depth = 4;
  const Graph g = graph::GammaTreeWithLeafClique(gamma, depth);
  const core::ConvergenceResult conv = core::RunToConvergence(g);
  // True coreness of the root is gamma here — the estimate converges to
  // it and never below (G vs G' differ only beyond depth hops).
  EXPECT_DOUBLE_EQ(conv.coreness[0], static_cast<double>(gamma));
  // The plain tree's root looks IDENTICAL for T < depth:
  const Graph t = graph::GammaTree(gamma, depth);
  for (NodeId T = 1; T < depth; ++T) {
    EXPECT_DOUBLE_EQ(Compact(t, static_cast<int>(T)).b[0],
                     Compact(g, static_cast<int>(T)).b[0])
        << "views differ before depth rounds, T=" << T;
  }
}

// The Conclusion's empirical claim: on realistic graphs the max ratio
// converges to ~2 in far fewer rounds than ceil(log_{1+eps} n).
TEST(Convergence, HeavyTailedGraphsConvergeFast) {
  util::Rng rng(123);
  const NodeId n = 2000;
  const Graph g = graph::BarabasiAlbert(n, 4, rng);
  const auto core_exact = seq::WeightedCoreness(g);
  const double eps = 0.1;
  const int T_theory = core::RoundsForEpsilon(n, eps);  // ~80
  // Find the first round where max ratio <= 2(1+eps).
  core::CompactOptions opts;
  opts.rounds = T_theory;
  opts.record_rounds = true;
  const core::CompactResult res = core::RunCompactElimination(g, opts);
  int first_ok = -1;
  for (std::size_t t = 0; t < res.b_rounds.size(); ++t) {
    double worst = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (core_exact[v] > 0) {
        worst = std::max(worst, res.b_rounds[t][v] / core_exact[v]);
      }
    }
    if (worst <= 2.0 * (1 + eps)) {
      first_ok = static_cast<int>(t);
      break;
    }
  }
  ASSERT_GE(first_ok, 0) << "never reached the guarantee";
  EXPECT_LT(first_ok, T_theory / 2) << "expected much faster than theory";
}

// Full pipeline across the generator suite: every theorem at once.
class PipelineSuite : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSuite, AllGuaranteesHold) {
  util::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  Graph g = [&]() -> Graph {
    switch (GetParam() % 6) {
      case 0:
        return graph::BarabasiAlbert(150, 3, rng);
      case 1:
        return graph::ErdosRenyiGnp(150, 0.05, rng);
      case 2:
        return graph::WattsStrogatz(150, 3, 0.1, rng);
      case 3:
        return graph::PowerLawConfiguration(150, 2.5, 2, 20, rng);
      case 4:
        return graph::PlantedPartition(120, 4, 0.3, 0.01, rng);
      default:
        return graph::RandomGeometric(150, 0.12, rng);
    }
  }();
  if (GetParam() % 2 == 1) g = graph::WithDyadicWeights(g, 0.5, 3.0, rng);
  const NodeId n = g.num_nodes();
  const double eps = 0.5;
  const double gamma = 2 * (1 + eps);
  const int T = core::RoundsForEpsilon(n, eps);

  const auto c = seq::WeightedCoreness(g);
  const double rho = seq::MaxDensity(g);

  // Coreness approximation (Theorem I.1, against c only: r <= c).
  const core::CompactResult res = Compact(g, T);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_GE(res.b[v], c[v] - 1e-9);
    EXPECT_LE(res.b[v], gamma * c[v] + 1e-7);
  }

  // Orientation (Theorem I.2).
  const auto orient = core::RunDistributedOrientation(g, T);
  EXPECT_EQ(orient.uncovered, 0u);
  EXPECT_LE(orient.orientation.max_load, gamma * rho + 1e-7);

  // Weak densest (Theorem I.3).
  const auto dens = core::RunWeakDensest(g, gamma);
  EXPECT_GE(dens.best_density * gamma + 1e-7, rho);
}

INSTANTIATE_TEST_SUITE_P(Suite, PipelineSuite, ::testing::Range(0, 12));

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  util::Rng rng1(55);
  util::Rng rng2(55);
  const Graph g1 = graph::BarabasiAlbert(300, 3, rng1);
  const Graph g2 = graph::BarabasiAlbert(300, 3, rng2);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  const auto r1 = Compact(g1, 8);
  const auto r2 = Compact(g2, 8);
  EXPECT_EQ(r1.b, r2.b);
  const auto d1 = core::RunWeakDensest(g1, 3.0);
  const auto d2 = core::RunWeakDensest(g2, 3.0);
  EXPECT_EQ(d1.selected, d2.selected);
  EXPECT_EQ(d1.best_density, d2.best_density);
}

TEST(MessageSizes, CompactUsesConstantSizeMessages) {
  util::Rng rng(66);
  const Graph g = graph::BarabasiAlbert(200, 3, rng);
  const auto res = Compact(g, 10);
  // One real number per broadcast (Section II message-size discussion).
  EXPECT_EQ(res.totals.max_entries_per_message, 1u);
  // Broadcast model: per round, messages = sum of degrees = 2m.
  for (std::size_t t = 0; t < res.history.size(); ++t) {
    EXPECT_EQ(res.history[t].messages, 2 * g.num_edges());
  }
}

}  // namespace
}  // namespace kcore
