// The parallel round scheduler must be bit-identical to the sequential
// engine: BOTH phases of a round — the compute sweep and the collect
// phase (stats census + p2p delivery) — partition node ids into disjoint
// contiguous shards, merge partials in shard order, and write inbox slots
// at precomputed offsets, so the OS interleaving cannot leak into
// results. These tests pin that contract across the coreness paths that
// ride the engine (compact/Theorem I.1, run-to-convergence/Montresor,
// two-phase orientation) and across synthetic p2p-heavy,
// broadcast-heavy, and randomized (per-node RNG stream) protocols that
// stress the collect phase directly. The ThreadPool primitive has its
// own suite in thread_pool_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/compact.h"
#include "core/densest.h"
#include "core/montresor.h"
#include "core/two_phase.h"
#include "directed/dcore_protocol.h"
#include "directed/digraph.h"
#include "distsim/engine.h"
#include "distsim/transport.h"
#include "graph/generators.h"
#include "hyper/helim_protocol.h"
#include "hyper/hypergraph.h"
#include "util/rng.h"

namespace kcore {
namespace {

using distsim::Engine;
using distsim::InMessage;
using distsim::NodeContext;
using distsim::Payload;
using distsim::RoundStats;
using graph::NodeId;

graph::Graph TestGraph(std::uint64_t seed) {
  util::Rng rng(seed);
  // Big enough to clear the engine's sequential cutoff (n >= 256) so the
  // pool actually runs.
  return graph::BarabasiAlbert(3000, 4, rng);
}

// Order-sensitive FNV-style fold: two digests agree only if the same
// values arrived in the same order.
std::uint64_t Mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * 0x100000001b3ULL;
}

std::uint64_t MixDouble(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(double));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return Mix(h, bits);
}

void ExpectSameHistory(const std::vector<RoundStats>& a,
                       const std::vector<RoundStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].round, b[i].round) << "round " << i;
    EXPECT_EQ(a[i].active_nodes, b[i].active_nodes) << "round " << i;
    EXPECT_EQ(a[i].messages, b[i].messages) << "round " << i;
    EXPECT_EQ(a[i].entries, b[i].entries) << "round " << i;
    EXPECT_EQ(a[i].distinct_values, b[i].distinct_values) << "round " << i;
  }
}

// P2P-heavy protocol: every node sends variable-size payloads to a
// round-dependent subset of its neighbors and folds its ENTIRE inbox
// (sender ids and payload contents, in delivery order) into a per-node
// digest — so any reordering or misplacement a parallel delivery could
// introduce flips the digest.
class P2PStress : public distsim::Protocol {
 public:
  explicit P2PStress(NodeId n) : digest_(n, 0xcbf29ce484222325ULL) {}

  void Init(NodeContext& ctx) override { SendWave(ctx); }

  void Round(NodeContext& ctx) override {
    std::uint64_t& h = digest_[ctx.id()];
    for (const InMessage& m : ctx.Messages()) {
      h = Mix(h, m.from);
      for (double x : m.payload) h = MixDouble(h, x);
    }
    SendWave(ctx);
  }

  const std::vector<std::uint64_t>& digest() const { return digest_; }

 private:
  void SendWave(NodeContext& ctx) {
    const auto nbrs = ctx.neighbors();
    const NodeId v = ctx.id();
    const auto r = static_cast<std::size_t>(ctx.round());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if ((i + v + r) % 3 != 0) continue;
      Payload p;
      const std::size_t len = 1 + (v + i + r) % 3;
      for (std::size_t k = 0; k < len; ++k) {
        p.push_back(static_cast<double>(v * 1000 + r * 10 + k));
      }
      ctx.Send(nbrs[i].to, std::move(p));
    }
  }

  std::vector<std::uint64_t> digest_;
};

// Broadcast-heavy protocol: variable-size broadcasts with a small
// distinct-value alphabet (stressing the sharded distinct-value census)
// folded into per-node digests via NeighborBroadcast.
class BroadcastStorm : public distsim::Protocol {
 public:
  explicit BroadcastStorm(NodeId n) : digest_(n, 0x84222325cbf29ce4ULL) {}

  void Init(NodeContext& ctx) override { Shout(ctx); }

  void Round(NodeContext& ctx) override {
    std::uint64_t& h = digest_[ctx.id()];
    for (std::size_t i = 0; i < ctx.neighbors().size(); ++i) {
      const Payload* p = ctx.NeighborBroadcast(i);
      if (p == nullptr) {
        h = Mix(h, 0xdeadULL);
        continue;
      }
      for (double x : *p) h = MixDouble(h, x);
    }
    Shout(ctx);
  }

  const std::vector<std::uint64_t>& digest() const { return digest_; }

 private:
  void Shout(NodeContext& ctx) {
    const NodeId v = ctx.id();
    const auto r = static_cast<std::size_t>(ctx.round());
    if ((v + r) % 7 == 0) return;  // some nodes stay silent some rounds
    Payload p;
    const std::size_t len = 1 + v % 4;
    p.push_back(static_cast<double>((v + r) % 17));  // 17-value alphabet
    for (std::size_t k = 1; k < len; ++k) {
      p.push_back(static_cast<double>(k));
    }
    ctx.Broadcast(std::move(p));
  }

  std::vector<std::uint64_t> digest_;
};

// Randomized gossip: every draw goes through the node's private stream
// (NodeContext::Rng), so the draw sequence must be a pure function of
// (master seed, node id) — sharding cannot shift which node consumes
// which random number.
class RandomGossip : public distsim::Protocol {
 public:
  explicit RandomGossip(NodeId n) : value_(n, 0.0) {}

  void Init(NodeContext& ctx) override {
    value_[ctx.id()] = ctx.Rng().NextDouble();
    ctx.Broadcast({value_[ctx.id()]});
  }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    double& x = value_[v];
    for (const InMessage& m : ctx.Messages()) x += m.payload[0];
    const auto nbrs = ctx.neighbors();
    if (!nbrs.empty()) {
      // Push x (jittered) to one uniformly random neighbor.
      const std::size_t pick = ctx.Rng().NextBounded(nbrs.size());
      ctx.Send(nbrs[pick].to, {x + ctx.Rng().NextDouble()});
    }
    if (ctx.Rng().NextBool(0.5)) ctx.Broadcast({x});
  }

  const std::vector<double>& value() const { return value_; }

 private:
  std::vector<double> value_;
};

template <typename Proto>
void RunRounds(Engine& engine, Proto& proto, int rounds) {
  engine.Start(proto);
  for (int t = 0; t < rounds; ++t) engine.Step(proto);
}

TEST(SchedulerDeterminism, CompactEliminationOneVsEightThreads) {
  const graph::Graph g = TestGraph(101);
  core::CompactOptions o1;
  o1.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  core::CompactOptions o8 = o1;
  o1.num_threads = 1;
  o8.num_threads = 8;
  const core::CompactResult r1 = core::RunCompactElimination(g, o1);
  const core::CompactResult r8 = core::RunCompactElimination(g, o8);
  // Bit-exact equality, not approximate: the parallel schedule must not
  // change a single floating-point operation.
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.totals.messages, r8.totals.messages);
  EXPECT_EQ(r1.totals.entries, r8.totals.entries);
  ExpectSameHistory(r1.history, r8.history);
}

TEST(SchedulerDeterminism, CompactWithOrientationTracking) {
  const graph::Graph g = TestGraph(102);
  core::CompactOptions o1;
  o1.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  o1.track_orientation = true;
  core::CompactOptions o8 = o1;
  o1.num_threads = 1;
  o8.num_threads = 8;
  const core::CompactResult r1 = core::RunCompactElimination(g, o1);
  const core::CompactResult r8 = core::RunCompactElimination(g, o8);
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.in_sets, r8.in_sets);
}

TEST(SchedulerDeterminism, MontresorConvergenceOneVsEightThreads) {
  const graph::Graph g = TestGraph(103);
  const core::ConvergenceResult r1 = core::RunToConvergence(g, -1, 1);
  const core::ConvergenceResult r8 = core::RunToConvergence(g, -1, 8);
  EXPECT_EQ(r1.coreness, r8.coreness);
  EXPECT_EQ(r1.rounds_executed, r8.rounds_executed);
  EXPECT_EQ(r1.last_change_round, r8.last_change_round);
}

TEST(SchedulerDeterminism, TwoPhaseOrientationOneVsEightThreads) {
  const graph::Graph g = TestGraph(104);
  const int T = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  const core::TwoPhaseResult r1 =
      core::RunTwoPhaseOrientation(g, T, 0.5, -1, 1);
  const core::TwoPhaseResult r8 =
      core::RunTwoPhaseOrientation(g, T, 0.5, -1, 8);
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.orientation.owner, r8.orientation.owner);
  EXPECT_EQ(r1.phase2_rounds, r8.phase2_rounds);
  EXPECT_DOUBLE_EQ(r1.orientation.max_load, r8.orientation.max_load);
}

TEST(SchedulerDeterminism, RepeatedParallelRunsAgree) {
  // Same seed, same thread count, run twice: the pool must not inject any
  // run-to-run nondeterminism either.
  const graph::Graph g = TestGraph(105);
  core::CompactOptions opts;
  opts.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  opts.num_threads = 8;
  const core::CompactResult a = core::RunCompactElimination(g, opts);
  const core::CompactResult b = core::RunCompactElimination(g, opts);
  EXPECT_EQ(a.b, b.b);
  EXPECT_EQ(a.totals.messages, b.totals.messages);
}

TEST(SchedulerDeterminism, P2PHeavyInboxOrderOneVsEightThreads) {
  // The parallel collect delivers into precomputed inbox slots; the
  // per-node inbox digests only match the sequential run if every message
  // landed in the same slot with the same bytes.
  const graph::Graph g = TestGraph(106);
  P2PStress p1(g.num_nodes());
  P2PStress p8(g.num_nodes());
  Engine e1(g, 1);
  Engine e8(g, 8);
  RunRounds(e1, p1, 12);
  RunRounds(e8, p8, 12);
  EXPECT_EQ(p1.digest(), p8.digest());
  EXPECT_EQ(e1.totals().messages, e8.totals().messages);
  EXPECT_EQ(e1.totals().entries, e8.totals().entries);
  EXPECT_EQ(e1.totals().max_entries_per_message,
            e8.totals().max_entries_per_message);
  ExpectSameHistory(e1.history(), e8.history());
}

TEST(SchedulerDeterminism, BroadcastHeavyStatsOneVsEightThreads) {
  // Stats are merged from per-shard partials in shard order; the whole
  // history (including the sharded distinct-value census) must match the
  // sequential pass field by field.
  const graph::Graph g = TestGraph(107);
  BroadcastStorm p1(g.num_nodes());
  BroadcastStorm p8(g.num_nodes());
  Engine e1(g, 1);
  Engine e8(g, 8);
  RunRounds(e1, p1, 10);
  RunRounds(e8, p8, 10);
  EXPECT_EQ(p1.digest(), p8.digest());
  ExpectSameHistory(e1.history(), e8.history());
  EXPECT_EQ(e1.totals().messages, e8.totals().messages);
  EXPECT_EQ(e1.totals().entries, e8.totals().entries);
}

TEST(SchedulerDeterminism, RandomizedProtocolOneVsEightThreads) {
  // Per-node RNG streams: a node's draws depend only on (seed, id, draw
  // index), so the randomized run is bit-identical at any thread count.
  const graph::Graph g = TestGraph(108);
  RandomGossip p1(g.num_nodes());
  RandomGossip p8(g.num_nodes());
  Engine e1(g, 1);
  Engine e8(g, 8);
  e1.SetSeed(4242);
  e8.SetSeed(4242);
  RunRounds(e1, p1, 15);
  RunRounds(e8, p8, 15);
  EXPECT_EQ(p1.value(), p8.value());
  ExpectSameHistory(e1.history(), e8.history());
  EXPECT_EQ(e1.totals().messages, e8.totals().messages);
  EXPECT_EQ(e1.totals().entries, e8.totals().entries);
}

TEST(SchedulerDeterminism, MoreShardsThanWorkEmptyShardRegression) {
  // 32 shards on a 300-node graph (just over the n >= 256 parallel
  // cutoff): ceil-chunking leaves trailing shards with EMPTY sender
  // ranges whose collect bodies never run. Regression pin: stale
  // per-shard count rows from earlier rounds must not be read back as
  // in-degrees (that injected phantom empty messages into inboxes from
  // round 2 onward).
  util::Rng rng(110);
  const graph::Graph g = graph::BarabasiAlbert(300, 4, rng);
  P2PStress p1(g.num_nodes());
  P2PStress p32(g.num_nodes());
  RandomGossip r1(g.num_nodes());
  RandomGossip r32(g.num_nodes());
  Engine e1(g, 1);
  Engine e32(g, 32);
  RunRounds(e1, p1, 10);
  RunRounds(e32, p32, 10);
  EXPECT_EQ(p1.digest(), p32.digest());
  ExpectSameHistory(e1.history(), e32.history());
  Engine f1(g, 1);
  Engine f32(g, 32);
  RunRounds(f1, r1, 10);
  RunRounds(f32, r32, 10);
  EXPECT_EQ(r1.value(), r32.value());
  EXPECT_EQ(f1.totals().messages, f32.totals().messages);
  EXPECT_EQ(f1.totals().entries, f32.totals().entries);
}

// --- Degree-weighted shard balancing -------------------------------------
//
// Weighted boundaries are arbitrary contiguous partitions, so they push
// the collect offset machinery and the ParallelReduce merge order onto
// shard shapes the equal-count split never produces (a hub alone in shard
// 0, most ids crammed into the last shards). The bit-identical contract
// must hold anyway, on exactly the graphs balancing exists for.

graph::Graph SkewedTestGraph(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::PowerLawConfiguration(3000, 2.1, 2, 300, rng);
}

TEST(SchedulerDeterminism, WeightedShardsStarOneVsEightThreads) {
  // Star: the hub's degree is n - 1, the most extreme skew there is —
  // the weighted partition pins the hub alone in shard 0 and fans the
  // leaves across the rest.
  const graph::Graph g = graph::Star(2000);
  P2PStress p1(g.num_nodes());
  P2PStress p2(g.num_nodes());
  P2PStress p8(g.num_nodes());
  Engine e1(g, 1);
  Engine e2(g, 2);
  Engine e8(g, 8);
  e2.SetShardBalancing(true);
  e8.SetShardBalancing(true);
  RunRounds(e1, p1, 12);
  RunRounds(e2, p2, 12);
  RunRounds(e8, p8, 12);
  EXPECT_EQ(p1.digest(), p2.digest());
  EXPECT_EQ(p1.digest(), p8.digest());
  ExpectSameHistory(e1.history(), e2.history());
  ExpectSameHistory(e1.history(), e8.history());
  EXPECT_EQ(e1.totals().messages, e8.totals().messages);
  EXPECT_EQ(e1.totals().entries, e8.totals().entries);
}

TEST(SchedulerDeterminism, WeightedShardsPowerLawOneVsEightThreads) {
  const graph::Graph g = SkewedTestGraph(201);
  P2PStress p1(g.num_nodes());
  P2PStress p8(g.num_nodes());
  Engine e1(g, 1);
  Engine e8(g, 8);
  e8.SetShardBalancing(true);
  RunRounds(e1, p1, 12);
  RunRounds(e8, p8, 12);
  EXPECT_EQ(p1.digest(), p8.digest());
  ExpectSameHistory(e1.history(), e8.history());
  EXPECT_EQ(e1.totals().max_entries_per_message,
            e8.totals().max_entries_per_message);
}

TEST(SchedulerDeterminism, WeightedShardsRandomizedWithRebalance) {
  // Rebalancing rebuilds the boundaries every 3 rounds, so successive
  // rounds run on different partitions of the same graph — per-node RNG
  // streams and the collect scheme must not care.
  const graph::Graph g = SkewedTestGraph(202);
  RandomGossip p1(g.num_nodes());
  RandomGossip p8(g.num_nodes());
  Engine e1(g, 1);
  Engine e8(g, 8);
  e1.SetSeed(4242);
  e8.SetSeed(4242);
  e8.SetShardBalancing(true);
  e8.SetRebalanceInterval(3);
  RunRounds(e1, p1, 15);
  RunRounds(e8, p8, 15);
  EXPECT_EQ(p1.value(), p8.value());
  ExpectSameHistory(e1.history(), e8.history());
}

TEST(SchedulerDeterminism, BalancedAgreesWithUnbalancedAtEightThreads) {
  // Same thread count, different partitioners: still bit-identical.
  const graph::Graph g = graph::Star(2000);
  RandomGossip pa(g.num_nodes());
  RandomGossip pb(g.num_nodes());
  Engine ea(g, 8);
  Engine eb(g, 8);
  ea.SetSeed(99);
  eb.SetSeed(99);
  eb.SetShardBalancing(true);
  eb.SetRebalanceInterval(2);
  RunRounds(ea, pa, 10);
  RunRounds(eb, pb, 10);
  EXPECT_EQ(pa.value(), pb.value());
  ExpectSameHistory(ea.history(), eb.history());
}

TEST(SchedulerDeterminism, WeightedShardsBelowDefaultCutoff) {
  // A 100-node star sits under kDefaultParallelCutoff, so an 8-thread
  // engine would silently run sequentially — SetParallelCutoff(1) forces
  // the threaded path, putting weighted shards on a graph where the hub
  // outweighs whole shards and several shards end up empty.
  const graph::Graph g = graph::Star(100);
  P2PStress p1(g.num_nodes());
  P2PStress p8(g.num_nodes());
  Engine e1(g, 1);
  Engine e8(g, 8);
  e8.SetParallelCutoff(1);
  e8.SetShardBalancing(true);
  EXPECT_FALSE(e1.shard_balancing());
  EXPECT_TRUE(e8.shard_balancing());
  RunRounds(e1, p1, 10);
  RunRounds(e8, p8, 10);
  EXPECT_EQ(p1.digest(), p8.digest());
  ExpectSameHistory(e1.history(), e8.history());
}

TEST(SchedulerDeterminism, CompactBalancedOneVsEightThreads) {
  // The CompactOptions knob: Algorithm 2 on a skewed graph with balancing
  // and periodic rebalancing on.
  const graph::Graph g = SkewedTestGraph(203);
  core::CompactOptions o1;
  o1.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  core::CompactOptions o8 = o1;
  o1.num_threads = 1;
  o8.num_threads = 8;
  o8.balance_shards = true;
  o8.rebalance_rounds = 2;
  const core::CompactResult r1 = core::RunCompactElimination(g, o1);
  const core::CompactResult r8 = core::RunCompactElimination(g, o8);
  EXPECT_EQ(r1.b, r8.b);
  ExpectSameHistory(r1.history, r8.history);
}

TEST(SchedulerDeterminism, MontresorAndTwoPhaseBalanced) {
  // The driver-level knobs: run-to-convergence and both phases of the
  // two-phase orientation (whose peeling halts nodes as it goes) under
  // weighted shards vs the sequential reference.
  const graph::Graph g = SkewedTestGraph(204);
  const core::ConvergenceResult c1 = core::RunToConvergence(g, -1, 1);
  const core::ConvergenceResult c8 = core::RunToConvergence(
      g, -1, 8, distsim::kDefaultMasterSeed, /*balance_shards=*/true);
  EXPECT_EQ(c1.coreness, c8.coreness);
  EXPECT_EQ(c1.rounds_executed, c8.rounds_executed);

  const int T = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  const core::TwoPhaseResult t1 =
      core::RunTwoPhaseOrientation(g, T, 0.5, -1, 1);
  const core::TwoPhaseResult t8 = core::RunTwoPhaseOrientation(
      g, T, 0.5, -1, 8, distsim::kDefaultMasterSeed, /*balance_shards=*/true);
  EXPECT_EQ(t1.b, t8.b);
  EXPECT_EQ(t1.orientation.owner, t8.orientation.owner);
  EXPECT_EQ(t1.phase2_rounds, t8.phase2_rounds);
}

TEST(SchedulerDeterminism, WeightedShardsSharedVsSerializedTransport) {
  // The balancing and transport axes together: weighted shards rebuilt
  // mid-run put the serialized pack/unpack on partitions the equal-count
  // split never produces, and the shared-memory run at the same thread
  // count must agree with it bit for bit — as must a sequential
  // serialized run, including the wire byte counters (per-message
  // encodings are absolute, so byte totals are partition-independent).
  const graph::Graph g = SkewedTestGraph(205);
  P2PStress p1(g.num_nodes());
  P2PStress pshm(g.num_nodes());
  P2PStress pser(g.num_nodes());
  P2PStress pser1(g.num_nodes());
  Engine e1(g, 1);
  Engine eshm(g, 8);
  Engine eser(g, 8);
  Engine eser1(g, 1);
  for (Engine* e : {&eshm, &eser}) {
    e->SetShardBalancing(true);
    e->SetRebalanceInterval(3);
  }
  eser.SetTransport(distsim::MakeTransport(
      distsim::TransportKind::kSerialized));
  eser1.SetTransport(distsim::MakeTransport(
      distsim::TransportKind::kSerialized));
  RunRounds(e1, p1, 12);
  RunRounds(eshm, pshm, 12);
  RunRounds(eser, pser, 12);
  RunRounds(eser1, pser1, 12);
  EXPECT_EQ(p1.digest(), pshm.digest());
  EXPECT_EQ(p1.digest(), pser.digest());
  EXPECT_EQ(p1.digest(), pser1.digest());
  ExpectSameHistory(e1.history(), eshm.history());
  ExpectSameHistory(e1.history(), eser.history());
  // Wire accounting: the zero-copy paths never serialize; the serialized
  // runs agree with each other byte for byte at 1 vs 8 threads.
  ASSERT_EQ(eser.history().size(), eser1.history().size());
  for (std::size_t i = 0; i < eser.history().size(); ++i) {
    EXPECT_EQ(e1.history()[i].bytes_sent, 0u) << "round " << i;
    EXPECT_EQ(eshm.history()[i].bytes_sent, 0u) << "round " << i;
    EXPECT_EQ(eser.history()[i].bytes_sent,
              eser.history()[i].bytes_received)
        << "round " << i;
    EXPECT_EQ(eser.history()[i].bytes_sent, eser1.history()[i].bytes_sent)
        << "round " << i;
  }
  EXPECT_GT(eser.totals().bytes_sent, 0u);
}

TEST(SchedulerDeterminism, HyperEliminationOneVsEightThreads) {
  // The hypergraph port runs over the clique-expansion substrate, whose
  // degree distribution (hub co-membership) differs from the hypergraph's
  // own — the sharded sweep must not care.
  util::Rng rng(301);
  const hyper::Hypergraph h = hyper::RandomUniform(2000, 4000, 3, rng);
  hyper::HyperElimOptions o1;
  o1.rounds = 10;
  hyper::HyperElimOptions o8 = o1;
  o8.num_threads = 8;
  o8.balance_shards = true;
  const hyper::HyperElimResult r1 = hyper::RunHyperElimination(h, o1);
  const hyper::HyperElimResult r8 = hyper::RunHyperElimination(h, o8);
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.totals.messages, r8.totals.messages);
  EXPECT_EQ(r1.totals.entries, r8.totals.entries);
  ExpectSameHistory(r1.history, r8.history);
}

TEST(SchedulerDeterminism, DCoreEliminationOneVsEightThreads) {
  // The directed port halts nodes mid-run (failed out-degree constraint),
  // so shards shrink unevenly as the run proceeds; the census and the
  // broadcast double-buffer must stay bit-identical anyway.
  util::Rng rng(302);
  const directed::Digraph g = directed::RandomDigraph(1500, 0.004, rng);
  directed::DCoreElimOptions o1;
  o1.rounds = 10;
  directed::DCoreElimOptions o8 = o1;
  o8.num_threads = 8;
  o8.balance_shards = true;
  o8.rebalance_rounds = 3;
  const directed::DCoreElimResult r1 =
      directed::RunDCoreElimination(g, 2.0, o1);
  const directed::DCoreElimResult r8 =
      directed::RunDCoreElimination(g, 2.0, o8);
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.active, r8.active);
  ExpectSameHistory(r1.history, r8.history);
}

TEST(SchedulerDeterminism, WeakDensestOneVsEightThreads) {
  // All four densest phases (elimination, BFS forest, tree elimination,
  // aggregation) share one engine surface; the whole pipeline — forest
  // pointers, per-round survival arrays, selected subsets — must be a
  // pure function of the input at any thread count.
  const graph::Graph g = TestGraph(303);
  core::WeakDensestOptions o1;
  o1.gamma = 3.0;
  o1.T_override = 8;
  core::WeakDensestOptions o8 = o1;
  o8.num_threads = 8;
  o8.balance_shards = true;
  const core::WeakDensestResult r1 = core::RunWeakDensest(g, o1);
  const core::WeakDensestResult r8 = core::RunWeakDensest(g, o8);
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.leader_of, r8.leader_of);
  EXPECT_EQ(r1.selected, r8.selected);
  EXPECT_EQ(r1.best_density, r8.best_density);
  ASSERT_EQ(r1.subsets.size(), r8.subsets.size());
  for (std::size_t i = 0; i < r1.subsets.size(); ++i) {
    EXPECT_EQ(r1.subsets[i].leader, r8.subsets[i].leader);
    EXPECT_EQ(r1.subsets[i].members, r8.subsets[i].members);
    EXPECT_EQ(r1.subsets[i].density, r8.subsets[i].density);
  }
  EXPECT_EQ(r1.totals.messages, r8.totals.messages);
  EXPECT_EQ(r1.totals.entries, r8.totals.entries);
}

TEST(SchedulerDeterminism, PerRankComputeAgreesWithThreadedScheduler) {
  // The per-rank compute path replaces the thread-pool sweep with forked
  // rank workers, each computing its own contiguous slice — a third
  // scheduler implementation that must land on the same bits as the
  // sequential and 8-thread in-process runs, and must do so run over run
  // (worker scheduling, socket interleaving, and fork timing are all
  // invisible).
  const graph::Graph g = TestGraph(111);
  core::CompactOptions seq;
  seq.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  seq.track_orientation = true;
  core::CompactOptions thr = seq;
  thr.num_threads = 8;
  core::CompactOptions ranked = seq;
  ranked.transport = distsim::TransportKind::kProcess;
  ranked.ranks = 3;
  ranked.per_rank_compute = true;
  const core::CompactResult r1 = core::RunCompactElimination(g, seq);
  const core::CompactResult r8 = core::RunCompactElimination(g, thr);
  const core::CompactResult rp = core::RunCompactElimination(g, ranked);
  const core::CompactResult rp2 = core::RunCompactElimination(g, ranked);
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.b, rp.b);
  EXPECT_EQ(r1.in_sets, rp.in_sets);
  ExpectSameHistory(r1.history, rp.history);
  EXPECT_EQ(rp.b, rp2.b);
  EXPECT_EQ(rp.totals.bytes_sent, rp2.totals.bytes_sent);
  EXPECT_EQ(rp.totals.bcast_bytes_sent, rp2.totals.bcast_bytes_sent);
}

TEST(SchedulerDeterminism, MasterSeedActuallyFeedsTheStreams) {
  // Different master seeds must produce different randomized runs —
  // otherwise the determinism tests above would pass vacuously.
  const graph::Graph g = TestGraph(109);
  RandomGossip pa(g.num_nodes());
  RandomGossip pb(g.num_nodes());
  Engine ea(g, 8);
  Engine eb(g, 8);
  ea.SetSeed(1);
  eb.SetSeed(2);
  RunRounds(ea, pa, 5);
  RunRounds(eb, pb, 5);
  EXPECT_NE(pa.value(), pb.value());
}

}  // namespace
}  // namespace kcore
