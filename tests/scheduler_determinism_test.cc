// The parallel round scheduler must be bit-identical to the sequential
// engine: the compute phase partitions node ids into disjoint contiguous
// shards and every per-node write goes to that node's own slot, so the OS
// interleaving cannot leak into results. These tests pin that contract
// across the three coreness paths that ride the engine (compact/Theorem
// I.1, run-to-convergence/Montresor, two-phase orientation) plus the
// ThreadPool primitive itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/compact.h"
#include "core/montresor.h"
#include "core/two_phase.h"
#include "distsim/thread_pool.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace kcore {
namespace {

graph::Graph TestGraph(std::uint64_t seed) {
  util::Rng rng(seed);
  // Big enough to clear the engine's sequential cutoff (n >= 256) so the
  // pool actually runs.
  return graph::BarabasiAlbert(3000, 4, rng);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  distsim::ThreadPool pool(8);
  std::vector<int> hits(10000, 0);
  pool.ParallelFor(0, hits.size(), [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  distsim::ThreadPool pool(4);
  std::vector<std::uint64_t> acc(5000, 0);
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(0, acc.size(), [&](std::uint64_t b, std::uint64_t e) {
      for (std::uint64_t i = b; i < e; ++i) acc[i] += i;
    });
  }
  for (std::uint64_t i = 0; i < acc.size(); ++i) EXPECT_EQ(acc[i], 50 * i);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  distsim::ThreadPool pool(8);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  pool.ParallelFor(0, 3, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(SchedulerDeterminism, CompactEliminationOneVsEightThreads) {
  const graph::Graph g = TestGraph(101);
  core::CompactOptions o1;
  o1.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  core::CompactOptions o8 = o1;
  o1.num_threads = 1;
  o8.num_threads = 8;
  const core::CompactResult r1 = core::RunCompactElimination(g, o1);
  const core::CompactResult r8 = core::RunCompactElimination(g, o8);
  // Bit-exact equality, not approximate: the parallel schedule must not
  // change a single floating-point operation.
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.totals.messages, r8.totals.messages);
  EXPECT_EQ(r1.totals.entries, r8.totals.entries);
}

TEST(SchedulerDeterminism, CompactWithOrientationTracking) {
  const graph::Graph g = TestGraph(102);
  core::CompactOptions o1;
  o1.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  o1.track_orientation = true;
  core::CompactOptions o8 = o1;
  o1.num_threads = 1;
  o8.num_threads = 8;
  const core::CompactResult r1 = core::RunCompactElimination(g, o1);
  const core::CompactResult r8 = core::RunCompactElimination(g, o8);
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.in_sets, r8.in_sets);
}

TEST(SchedulerDeterminism, MontresorConvergenceOneVsEightThreads) {
  const graph::Graph g = TestGraph(103);
  const core::ConvergenceResult r1 = core::RunToConvergence(g, -1, 1);
  const core::ConvergenceResult r8 = core::RunToConvergence(g, -1, 8);
  EXPECT_EQ(r1.coreness, r8.coreness);
  EXPECT_EQ(r1.rounds_executed, r8.rounds_executed);
  EXPECT_EQ(r1.last_change_round, r8.last_change_round);
}

TEST(SchedulerDeterminism, TwoPhaseOrientationOneVsEightThreads) {
  const graph::Graph g = TestGraph(104);
  const int T = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  const core::TwoPhaseResult r1 =
      core::RunTwoPhaseOrientation(g, T, 0.5, -1, 1);
  const core::TwoPhaseResult r8 =
      core::RunTwoPhaseOrientation(g, T, 0.5, -1, 8);
  EXPECT_EQ(r1.b, r8.b);
  EXPECT_EQ(r1.orientation.owner, r8.orientation.owner);
  EXPECT_EQ(r1.phase2_rounds, r8.phase2_rounds);
  EXPECT_DOUBLE_EQ(r1.orientation.max_load, r8.orientation.max_load);
}

TEST(SchedulerDeterminism, RepeatedParallelRunsAgree) {
  // Same seed, same thread count, run twice: the pool must not inject any
  // run-to-run nondeterminism either.
  const graph::Graph g = TestGraph(105);
  core::CompactOptions opts;
  opts.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  opts.num_threads = 8;
  const core::CompactResult a = core::RunCompactElimination(g, opts);
  const core::CompactResult b = core::RunCompactElimination(g, opts);
  EXPECT_EQ(a.b, b.b);
  EXPECT_EQ(a.totals.messages, b.totals.messages);
}

}  // namespace
}  // namespace kcore
