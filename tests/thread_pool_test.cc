// ThreadPool is the primitive the whole determinism story stands on: a
// fixed static partition (ShardBounds), disjoint-write parallel sweeps
// (ParallelFor), and order-pinned reductions (ParallelReduce, merge in
// shard order on the caller). These tests pin the partition arithmetic,
// the exception drain-and-rethrow contract, long-lived reuse across
// generations, and the reduce merge order.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "distsim/thread_pool.h"

namespace kcore::distsim {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<int> hits(10000, 0);
  pool.ParallelFor(0, hits.size(), [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ShardBoundsPartitionTheRange) {
  // The static partition must tile [begin, end): contiguous, ascending,
  // disjoint, and exhaustive — for ranges shorter than, equal to, and far
  // longer than the shard count.
  for (int shards : {1, 2, 3, 7, 8}) {
    for (std::uint64_t range : {0ull, 1ull, 5ull, 8ull, 100ull, 10001ull}) {
      const std::uint64_t begin = 13;
      const std::uint64_t end = begin + range;
      std::uint64_t cursor = begin;
      for (int s = 0; s < shards; ++s) {
        const auto [b, e] = ThreadPool::ShardBounds(begin, end, s, shards);
        EXPECT_LE(b, e) << "shards=" << shards << " range=" << range;
        if (b < e) {
          EXPECT_EQ(b, cursor) << "gap before shard " << s;
          cursor = e;
        }
      }
      EXPECT_EQ(cursor, end) << "shards=" << shards << " range=" << range;
    }
  }
}

TEST(ThreadPool, ShardIndexedForMatchesShardBounds) {
  ThreadPool pool(4);
  const std::uint64_t kEnd = 1003;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen(
      pool.num_shards(), {0, 0});
  pool.ParallelFor(0, kEnd, [&](int shard, std::uint64_t b, std::uint64_t e) {
    seen[shard] = {b, e};
  });
  for (int s = 0; s < pool.num_shards(); ++s) {
    EXPECT_EQ(seen[s], ThreadPool::ShardBounds(0, kEnd, s, pool.num_shards()))
        << "shard " << s;
  }
}

TEST(ThreadPool, ReusableAcrossManyGenerations) {
  // One pool, hundreds of jobs: a generation-counter bug (lost wakeup,
  // double dispatch, stale body pointer) shows up as a wrong sum or hang.
  ThreadPool pool(4);
  std::vector<std::uint64_t> acc(5000, 0);
  for (int round = 0; round < 300; ++round) {
    pool.ParallelFor(0, acc.size(), [&](std::uint64_t b, std::uint64_t e) {
      for (std::uint64_t i = b; i < e; ++i) acc[i] += i;
    });
  }
  for (std::uint64_t i = 0; i < acc.size(); ++i) EXPECT_EQ(acc[i], 300 * i);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(8);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  pool.ParallelFor(0, 3, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, WorkerExceptionDrainsAndRethrows) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 3; ++rep) {
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.ParallelFor(0, 1000,
                         [&](std::uint64_t b, std::uint64_t) {
                           ran.fetch_add(1);
                           if (b != 0) throw std::runtime_error("shard boom");
                         }),
        std::runtime_error);
    // Every shard ran before the rethrow (the drain guarantee), and the
    // pool stays usable for the next job.
    EXPECT_EQ(ran.load(), pool.num_shards());
    std::vector<int> hits(100, 0);
    pool.ParallelFor(0, hits.size(), [&](std::uint64_t b, std::uint64_t e) {
      for (std::uint64_t i = b; i < e; ++i) hits[i] = 1;
    });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, CallerShardExceptionWinsAndDrains) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  // Shard 0 runs on the caller; its exception propagates only after the
  // workers finished (they hold a pointer to the body otherwise).
  EXPECT_THROW(pool.ParallelFor(0, 1000,
                                [&](std::uint64_t b, std::uint64_t) {
                                  ran.fetch_add(1);
                                  if (b == 0) throw std::logic_error("caller");
                                }),
               std::logic_error);
  EXPECT_EQ(ran.load(), pool.num_shards());
  std::vector<int> hits(64, 0);
  pool.ParallelFor(0, hits.size(), [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] = 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelReduceMergesInShardOrder) {
  ThreadPool pool(8);
  const std::uint64_t kEnd = 4321;
  std::vector<std::uint64_t> partial(pool.num_shards(), 0);
  std::vector<int> merge_order;
  std::uint64_t total = 0;
  pool.ParallelReduce(
      0, kEnd,
      [&](int shard, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) partial[shard] += i;
      },
      [&](int shard) {
        merge_order.push_back(shard);
        total += partial[shard];
      });
  EXPECT_EQ(total, kEnd * (kEnd - 1) / 2);
  ASSERT_EQ(merge_order.size(), static_cast<std::size_t>(pool.num_shards()));
  for (int s = 0; s < pool.num_shards(); ++s) EXPECT_EQ(merge_order[s], s);
}

TEST(ThreadPool, ParallelReduceEmptyRangeSkipsMerge) {
  ThreadPool pool(4);
  int merges = 0;
  pool.ParallelReduce(
      9, 9, [&](int, std::uint64_t, std::uint64_t) {},
      [&](int) { ++merges; });
  EXPECT_EQ(merges, 0);
}

TEST(ThreadPool, ParallelReduceBodyThrowSkipsMerge) {
  ThreadPool pool(4);
  int merges = 0;
  EXPECT_THROW(pool.ParallelReduce(
                   0, 1000,
                   [&](int shard, std::uint64_t, std::uint64_t) {
                     if (shard == 2) throw std::runtime_error("partial boom");
                   },
                   [&](int) { ++merges; }),
               std::runtime_error);
  // A failed map phase must not feed a half-baked reduction.
  EXPECT_EQ(merges, 0);
}

TEST(ThreadPool, SingleThreadDegeneratesToPlainLoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_shards(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, hits.size(), [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  std::uint64_t total = 0;
  std::uint64_t partial = 0;
  pool.ParallelReduce(
      0, 100,
      [&](int shard, std::uint64_t b, std::uint64_t e) {
        EXPECT_EQ(shard, 0);
        for (std::uint64_t i = b; i < e; ++i) partial += i;
      },
      [&](int) { total += partial; });
  EXPECT_EQ(total, 4950u);
}

// Every weighted partition must tile [0, n): size num_shards + 1, pinned
// endpoints, monotone boundaries — for uniform, skewed, zero, and
// hub-dominated weights, including more shards than items.
TEST(ThreadPool, WeightedShardBoundsInvariants) {
  std::vector<std::vector<std::uint64_t>> weight_sets;
  weight_sets.push_back({});                          // empty range
  weight_sets.push_back(std::vector<std::uint64_t>(100, 1));  // uniform
  weight_sets.push_back(std::vector<std::uint64_t>(57, 0));   // all zero
  {
    std::vector<std::uint64_t> hub_first(801, 1);
    hub_first[0] = 100000;  // single hub at the front
    weight_sets.push_back(std::move(hub_first));
  }
  {
    std::vector<std::uint64_t> hub_last(801, 1);
    hub_last.back() = 100000;  // single hub at the back
    weight_sets.push_back(std::move(hub_last));
  }
  {
    std::vector<std::uint64_t> ramp(301);
    for (std::size_t i = 0; i < ramp.size(); ++i) {
      ramp[i] = (i * 2654435761u) % 97;  // arbitrary mix incl. zeros
    }
    weight_sets.push_back(std::move(ramp));
  }
  weight_sets.push_back({5, 1, 1});  // fewer items than shards

  for (const auto& w : weight_sets) {
    for (int shards : {1, 2, 3, 7, 8, 32}) {
      const std::vector<std::uint64_t> bounds =
          ThreadPool::WeightedShardBounds(w, shards);
      ASSERT_EQ(bounds.size(), static_cast<std::size_t>(shards) + 1)
          << "n=" << w.size() << " shards=" << shards;
      EXPECT_EQ(bounds.front(), 0u);
      EXPECT_EQ(bounds.back(), w.size());
      for (int s = 0; s < shards; ++s) {
        EXPECT_LE(bounds[s], bounds[s + 1])
            << "n=" << w.size() << " shards=" << shards << " s=" << s;
      }
    }
  }
}

TEST(ThreadPool, WeightedShardBoundsIsolateAHub) {
  // Star-shaped weights: one id carries more weight than everything else
  // combined. The equal-count split dumps the hub plus 1/8 of the leaves
  // on shard 0; the weighted split must give the hub its own shard and
  // spread the leaves over the rest, strictly shrinking the max load.
  std::vector<std::uint64_t> w(801, 1);
  w[0] = 1000;
  const int shards = 8;
  const auto shard_weight = [&w](std::uint64_t b, std::uint64_t e) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = b; i < e; ++i) sum += w[i];
    return sum;
  };
  std::uint64_t equal_max = 0, weighted_max = 0;
  const std::vector<std::uint64_t> bounds =
      ThreadPool::WeightedShardBounds(w, shards);
  for (int s = 0; s < shards; ++s) {
    const auto [eb, ee] = ThreadPool::ShardBounds(0, w.size(), s, shards);
    equal_max = std::max(equal_max, shard_weight(eb, ee));
    weighted_max =
        std::max(weighted_max, shard_weight(bounds[s], bounds[s + 1]));
  }
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 1u);  // the hub closes shard 0 by itself
  EXPECT_EQ(weighted_max, 1000u);
  EXPECT_GT(equal_max, weighted_max);
}

TEST(ThreadPool, WeightedShardBoundsIsolateAMidRangeHub) {
  // Regression: a hub whose id falls in the MIDDLE of a shard's range
  // must not be swallowed along with its prefix. 250 unit ids followed by
  // a 1000-weight hub at id 250, 4 shards: a greedy that always takes the
  // crossing item puts all 1250 weight in shard 0 and leaves shards 1-3
  // empty — strictly worse than not balancing. Closing early instead
  // yields {prefix} {hub alone} and max load 1000 (the optimum).
  std::vector<std::uint64_t> w(251, 1);
  w[250] = 1000;
  const std::vector<std::uint64_t> bounds =
      ThreadPool::WeightedShardBounds(w, 4);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 250u);  // the ones, closed short of the hub
  EXPECT_EQ(bounds[2], 251u);  // the hub alone
  std::uint64_t max_load = 0;
  for (int s = 0; s < 4; ++s) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = bounds[s]; i < bounds[s + 1]; ++i) sum += w[i];
    max_load = std::max(max_load, sum);
  }
  EXPECT_EQ(max_load, 1000u);
}

TEST(ThreadPool, WeightedShardBoundsZeroWeightsFallBackToEqualCount) {
  const std::vector<std::uint64_t> w(100, 0);
  for (int shards : {1, 4, 8}) {
    const std::vector<std::uint64_t> bounds =
        ThreadPool::WeightedShardBounds(w, shards);
    for (int s = 0; s < shards; ++s) {
      const auto [b, e] = ThreadPool::ShardBounds(0, w.size(), s, shards);
      EXPECT_EQ(bounds[s], b) << "shard " << s;
      EXPECT_EQ(bounds[s + 1], e) << "shard " << s;
    }
  }
}

TEST(ThreadPool, BoundedParallelForRunsExactlyTheGivenPartition) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.num_shards(), 4);
  // Deliberately lopsided, with one empty shard in the middle.
  const std::vector<std::uint64_t> bounds{0, 10, 10, 500, 1003};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen(
      pool.num_shards(), {1, 0});  // sentinel: body did not run
  std::vector<int> hits(1003, 0);
  pool.ParallelFor(bounds,
                   [&](int shard, std::uint64_t b, std::uint64_t e) {
                     seen[shard] = {b, e};
                     for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
                   });
  EXPECT_EQ(seen[0], (std::pair<std::uint64_t, std::uint64_t>{0, 10}));
  EXPECT_EQ(seen[1], (std::pair<std::uint64_t, std::uint64_t>{1, 0}))
      << "empty shard body must be skipped";
  EXPECT_EQ(seen[2], (std::pair<std::uint64_t, std::uint64_t>{10, 500}));
  EXPECT_EQ(seen[3], (std::pair<std::uint64_t, std::uint64_t>{500, 1003}));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, BoundedParallelReduceMergesInShardOrder) {
  ThreadPool pool(4);
  const std::vector<std::uint64_t> bounds{0, 1, 1, 900, 1000};
  std::vector<std::uint64_t> partial(pool.num_shards(), 0);
  std::vector<int> merge_order;
  std::uint64_t total = 0;
  pool.ParallelReduce(
      bounds,
      [&](int shard, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) partial[shard] += i;
      },
      [&](int shard) {
        merge_order.push_back(shard);
        total += partial[shard];
      });
  EXPECT_EQ(total, 1000u * 999u / 2u);
  ASSERT_EQ(merge_order.size(), static_cast<std::size_t>(pool.num_shards()));
  for (int s = 0; s < pool.num_shards(); ++s) EXPECT_EQ(merge_order[s], s);
}

TEST(ThreadPool, BoundedEmptyRangeSkipsBodyAndMerge) {
  ThreadPool pool(4);
  const std::vector<std::uint64_t> bounds{5, 5, 5, 5, 5};
  int calls = 0, merges = 0;
  pool.ParallelFor(bounds,
                   [&](int, std::uint64_t, std::uint64_t) { ++calls; });
  pool.ParallelReduce(
      bounds, [&](int, std::uint64_t, std::uint64_t) { ++calls; },
      [&](int) { ++merges; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(merges, 0);
}

TEST(ThreadPool, BoundedMatchesWeightedShardBoundsEndToEnd) {
  // The intended composition: WeightedShardBounds output drives a bounded
  // sweep; every id is visited exactly once regardless of skew.
  ThreadPool pool(8);
  std::vector<std::uint64_t> w(2000, 1);
  w[0] = 50000;
  w[777] = 10000;
  const std::vector<std::uint64_t> bounds =
      ThreadPool::WeightedShardBounds(w, pool.num_shards());
  std::vector<int> hits(w.size(), 0);
  pool.ParallelFor(bounds, [&](int, std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ManyConcurrentReducesStayIndependent) {
  // Two pools running interleaved jobs from the same thread must not
  // cross-talk (all job state is per-pool).
  ThreadPool a(3), b(5);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<std::uint64_t> pa(a.num_shards(), 0), pb(b.num_shards(), 0);
    std::uint64_t ta = 0, tb = 0;
    a.ParallelReduce(
        0, 1000,
        [&](int s, std::uint64_t lo, std::uint64_t hi) {
          pa[s] = hi - lo;
        },
        [&](int s) { ta += pa[s]; });
    b.ParallelReduce(
        0, 2000,
        [&](int s, std::uint64_t lo, std::uint64_t hi) {
          pb[s] = hi - lo;
        },
        [&](int s) { tb += pb[s]; });
    EXPECT_EQ(ta, 1000u);
    EXPECT_EQ(tb, 2000u);
  }
}

}  // namespace
}  // namespace kcore::distsim
