// ThreadPool is the primitive the whole determinism story stands on: a
// fixed static partition (ShardBounds), disjoint-write parallel sweeps
// (ParallelFor), and order-pinned reductions (ParallelReduce, merge in
// shard order on the caller). These tests pin the partition arithmetic,
// the exception drain-and-rethrow contract, long-lived reuse across
// generations, and the reduce merge order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "distsim/thread_pool.h"

namespace kcore::distsim {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<int> hits(10000, 0);
  pool.ParallelFor(0, hits.size(), [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ShardBoundsPartitionTheRange) {
  // The static partition must tile [begin, end): contiguous, ascending,
  // disjoint, and exhaustive — for ranges shorter than, equal to, and far
  // longer than the shard count.
  for (int shards : {1, 2, 3, 7, 8}) {
    for (std::uint64_t range : {0ull, 1ull, 5ull, 8ull, 100ull, 10001ull}) {
      const std::uint64_t begin = 13;
      const std::uint64_t end = begin + range;
      std::uint64_t cursor = begin;
      for (int s = 0; s < shards; ++s) {
        const auto [b, e] = ThreadPool::ShardBounds(begin, end, s, shards);
        EXPECT_LE(b, e) << "shards=" << shards << " range=" << range;
        if (b < e) {
          EXPECT_EQ(b, cursor) << "gap before shard " << s;
          cursor = e;
        }
      }
      EXPECT_EQ(cursor, end) << "shards=" << shards << " range=" << range;
    }
  }
}

TEST(ThreadPool, ShardIndexedForMatchesShardBounds) {
  ThreadPool pool(4);
  const std::uint64_t kEnd = 1003;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen(
      pool.num_shards(), {0, 0});
  pool.ParallelFor(0, kEnd, [&](int shard, std::uint64_t b, std::uint64_t e) {
    seen[shard] = {b, e};
  });
  for (int s = 0; s < pool.num_shards(); ++s) {
    EXPECT_EQ(seen[s], ThreadPool::ShardBounds(0, kEnd, s, pool.num_shards()))
        << "shard " << s;
  }
}

TEST(ThreadPool, ReusableAcrossManyGenerations) {
  // One pool, hundreds of jobs: a generation-counter bug (lost wakeup,
  // double dispatch, stale body pointer) shows up as a wrong sum or hang.
  ThreadPool pool(4);
  std::vector<std::uint64_t> acc(5000, 0);
  for (int round = 0; round < 300; ++round) {
    pool.ParallelFor(0, acc.size(), [&](std::uint64_t b, std::uint64_t e) {
      for (std::uint64_t i = b; i < e; ++i) acc[i] += i;
    });
  }
  for (std::uint64_t i = 0; i < acc.size(); ++i) EXPECT_EQ(acc[i], 300 * i);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(8);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  pool.ParallelFor(0, 3, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, WorkerExceptionDrainsAndRethrows) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 3; ++rep) {
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.ParallelFor(0, 1000,
                         [&](std::uint64_t b, std::uint64_t) {
                           ran.fetch_add(1);
                           if (b != 0) throw std::runtime_error("shard boom");
                         }),
        std::runtime_error);
    // Every shard ran before the rethrow (the drain guarantee), and the
    // pool stays usable for the next job.
    EXPECT_EQ(ran.load(), pool.num_shards());
    std::vector<int> hits(100, 0);
    pool.ParallelFor(0, hits.size(), [&](std::uint64_t b, std::uint64_t e) {
      for (std::uint64_t i = b; i < e; ++i) hits[i] = 1;
    });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, CallerShardExceptionWinsAndDrains) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  // Shard 0 runs on the caller; its exception propagates only after the
  // workers finished (they hold a pointer to the body otherwise).
  EXPECT_THROW(pool.ParallelFor(0, 1000,
                                [&](std::uint64_t b, std::uint64_t) {
                                  ran.fetch_add(1);
                                  if (b == 0) throw std::logic_error("caller");
                                }),
               std::logic_error);
  EXPECT_EQ(ran.load(), pool.num_shards());
  std::vector<int> hits(64, 0);
  pool.ParallelFor(0, hits.size(), [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] = 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelReduceMergesInShardOrder) {
  ThreadPool pool(8);
  const std::uint64_t kEnd = 4321;
  std::vector<std::uint64_t> partial(pool.num_shards(), 0);
  std::vector<int> merge_order;
  std::uint64_t total = 0;
  pool.ParallelReduce(
      0, kEnd,
      [&](int shard, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) partial[shard] += i;
      },
      [&](int shard) {
        merge_order.push_back(shard);
        total += partial[shard];
      });
  EXPECT_EQ(total, kEnd * (kEnd - 1) / 2);
  ASSERT_EQ(merge_order.size(), static_cast<std::size_t>(pool.num_shards()));
  for (int s = 0; s < pool.num_shards(); ++s) EXPECT_EQ(merge_order[s], s);
}

TEST(ThreadPool, ParallelReduceEmptyRangeSkipsMerge) {
  ThreadPool pool(4);
  int merges = 0;
  pool.ParallelReduce(
      9, 9, [&](int, std::uint64_t, std::uint64_t) {},
      [&](int) { ++merges; });
  EXPECT_EQ(merges, 0);
}

TEST(ThreadPool, ParallelReduceBodyThrowSkipsMerge) {
  ThreadPool pool(4);
  int merges = 0;
  EXPECT_THROW(pool.ParallelReduce(
                   0, 1000,
                   [&](int shard, std::uint64_t, std::uint64_t) {
                     if (shard == 2) throw std::runtime_error("partial boom");
                   },
                   [&](int) { ++merges; }),
               std::runtime_error);
  // A failed map phase must not feed a half-baked reduction.
  EXPECT_EQ(merges, 0);
}

TEST(ThreadPool, SingleThreadDegeneratesToPlainLoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_shards(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, hits.size(), [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  std::uint64_t total = 0;
  std::uint64_t partial = 0;
  pool.ParallelReduce(
      0, 100,
      [&](int shard, std::uint64_t b, std::uint64_t e) {
        EXPECT_EQ(shard, 0);
        for (std::uint64_t i = b; i < e; ++i) partial += i;
      },
      [&](int) { total += partial; });
  EXPECT_EQ(total, 4950u);
}

TEST(ThreadPool, ManyConcurrentReducesStayIndependent) {
  // Two pools running interleaved jobs from the same thread must not
  // cross-talk (all job state is per-pool).
  ThreadPool a(3), b(5);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<std::uint64_t> pa(a.num_shards(), 0), pb(b.num_shards(), 0);
    std::uint64_t ta = 0, tb = 0;
    a.ParallelReduce(
        0, 1000,
        [&](int s, std::uint64_t lo, std::uint64_t hi) {
          pa[s] = hi - lo;
        },
        [&](int s) { ta += pa[s]; });
    b.ParallelReduce(
        0, 2000,
        [&](int s, std::uint64_t lo, std::uint64_t hi) {
          pb[s] = hi - lo;
        },
        [&](int s) { tb += pb[s]; });
    EXPECT_EQ(ta, 1000u);
    EXPECT_EQ(tb, 2000u);
  }
}

}  // namespace
}  // namespace kcore::distsim
