// The binary graph format (graph/binio.h): round trips, the mmap
// loader's rejection of every malformed-file shape, rank-sliced loading,
// and text-vs-binary load equivalence down to Compact coreness.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/compact.h"
#include "graph/binio.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "util/rng.h"
#include "util/wire.h"

namespace kcore::graph {
namespace {

std::string TempPath(const char* stem) {
  return std::string(::testing::TempDir()) + "/" + stem + ".bin";
}

void ExpectSameEdgeList(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u) << "edge " << e;
    EXPECT_EQ(a.edge(e).v, b.edge(e).v) << "edge " << e;
    EXPECT_DOUBLE_EQ(a.edge(e).w, b.edge(e).w) << "edge " << e;
  }
}

// Writes raw bytes to a temp file; the crafted-file rejection tests
// build malformed inputs with the same codec the writer uses.
void WriteRaw(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  ASSERT_EQ(std::fclose(f), 0);
}

// A syntactically valid file: header + records (+ optional id table).
std::vector<std::uint8_t> CraftFile(std::uint64_t n,
                                    const std::vector<Edge>& edges,
                                    std::uint32_t version = kBinaryVersion,
                                    std::uint32_t flags = 0,
                                    const char* magic = nullptr) {
  const std::size_t bytes = kBinaryHeaderBytes + kBinaryEdgeBytes *
                                                     edges.size() +
                            ((flags & kBinaryFlagOriginalIds) ? 8 * n : 0);
  std::vector<std::uint8_t> buf(bytes);
  std::memcpy(buf.data(), magic != nullptr ? magic : kBinaryMagic, 8);
  util::WireWriter w(buf.data() + 8, buf.data() + buf.size());
  w.Fixed32(version);
  w.Fixed32(flags);
  w.Fixed64(n);
  w.Fixed64(edges.size());
  for (const Edge& e : edges) {
    w.Fixed32(e.u);
    w.Fixed32(e.v);
    w.Double(e.w);
  }
  if (flags & kBinaryFlagOriginalIds) {
    for (std::uint64_t v = 0; v < n; ++v) w.Fixed64(v * 10);
  }
  return buf;
}

TEST(BinIo, RoundTripPreservesGraphExactly) {
  util::Rng rng(21);
  const Graph g =
      WithUniformWeights(BarabasiAlbert(300, 3, rng), 0.25, 9.0, rng);
  const std::string path = TempPath("roundtrip_ba");
  ASSERT_TRUE(SaveBinary(g, path));
  const auto info = ReadBinaryInfo(path);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->version, kBinaryVersion);
  EXPECT_EQ(info->num_nodes, g.num_nodes());
  EXPECT_EQ(info->num_edges, g.num_edges());
  EXPECT_FALSE(info->has_original_ids);
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectSameEdgeList(g, loaded->graph);
  EXPECT_TRUE(loaded->original_ids.empty());
  std::remove(path.c_str());
}

TEST(BinIo, EmptyGraphRoundTrips) {
  GraphBuilder b(0);
  const Graph g = std::move(b).Build();
  const std::string path = TempPath("empty");
  ASSERT_TRUE(SaveBinary(g, path));
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->graph.num_nodes(), 0u);
  EXPECT_EQ(loaded->graph.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(BinIo, EdgelessNodesRoundTrip) {
  GraphBuilder b(7);
  const Graph g = std::move(b).Build();
  const std::string path = TempPath("edgeless");
  ASSERT_TRUE(SaveBinary(g, path));
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->graph.num_nodes(), 7u);
  EXPECT_EQ(loaded->graph.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(BinIo, SingleSelfLoopRoundTrips) {
  GraphBuilder b(1);
  b.AddEdge(0, 0, 2.5);
  const Graph g = std::move(b).Build();
  const std::string path = TempPath("selfloop");
  ASSERT_TRUE(SaveBinary(g, path));
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectSameEdgeList(g, loaded->graph);
  EXPECT_TRUE(loaded->graph.has_self_loops());
  EXPECT_DOUBLE_EQ(loaded->graph.SelfLoopWeight(0), 2.5);
  std::remove(path.c_str());
}

TEST(BinIo, DenormalWeightsSurviveBitExactly) {
  // The record stores raw IEEE-754 bits: the smallest positive denormal
  // and a mid-range denormal must come back identical, not flushed.
  const double denormal_min = std::numeric_limits<double>::denorm_min();
  GraphBuilder b(3);
  b.AddEdge(0, 1, denormal_min);
  b.AddEdge(1, 2, 1e-310);
  const Graph g = std::move(b).Build();
  const std::string path = TempPath("denormal");
  ASSERT_TRUE(SaveBinary(g, path));
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->graph.edge(0).w, denormal_min);
  EXPECT_EQ(loaded->graph.edge(1).w, 1e-310);
  std::remove(path.c_str());
}

TEST(BinIo, RejectsNaNAndInfWeights) {
  // The text parser rejects non-finite weights; a crafted binary file
  // must not smuggle them past the loader.
  const std::string path = TempPath("nonfinite");
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(), -1.0}) {
    WriteRaw(path, CraftFile(2, {Edge{0, 1, bad}}));
    EXPECT_FALSE(LoadBinary(path).has_value()) << "weight " << bad;
    EXPECT_FALSE(LoadBinarySlice(path, 0, 2).has_value()) << "weight " << bad;
  }
  std::remove(path.c_str());
}

TEST(BinIo, RejectsOutOfRangeIds) {
  const std::string path = TempPath("badids");
  WriteRaw(path, CraftFile(2, {Edge{0, 2, 1.0}}));
  EXPECT_FALSE(LoadBinary(path).has_value());
  WriteRaw(path, CraftFile(2, {Edge{7, 0, 1.0}}));
  EXPECT_FALSE(LoadBinary(path).has_value());
  std::remove(path.c_str());
}

TEST(BinIo, RejectsTruncatedAndPaddedFiles) {
  const std::string path = TempPath("truncated");
  const auto good = CraftFile(3, {Edge{0, 1, 1.0}, Edge{1, 2, 2.0}});
  // Sanity: the untampered file loads.
  WriteRaw(path, good);
  ASSERT_TRUE(LoadBinary(path).has_value());
  // Any strict prefix is rejected — mid-record, mid-header, and empty.
  for (const std::size_t len :
       {good.size() - 1, good.size() - kBinaryEdgeBytes - 3,
        kBinaryHeaderBytes - 1, std::size_t{8}, std::size_t{0}}) {
    WriteRaw(path, {good.begin(), good.begin() + len});
    EXPECT_FALSE(LoadBinary(path).has_value()) << "prefix " << len;
    EXPECT_FALSE(ReadBinaryInfo(path).has_value()) << "prefix " << len;
  }
  // Trailing garbage is likewise not silently ignored.
  auto padded = good;
  padded.push_back(0);
  WriteRaw(path, padded);
  EXPECT_FALSE(LoadBinary(path).has_value());
  std::remove(path.c_str());
}

TEST(BinIo, RejectsBadMagicVersionAndFlags) {
  const std::string path = TempPath("badheader");
  WriteRaw(path, CraftFile(2, {Edge{0, 1, 1.0}}, kBinaryVersion, 0,
                           "NOTKCORE"));
  EXPECT_FALSE(LoadBinary(path).has_value());
  WriteRaw(path, CraftFile(2, {Edge{0, 1, 1.0}}, kBinaryVersion + 1));
  EXPECT_FALSE(LoadBinary(path).has_value());
  WriteRaw(path, CraftFile(2, {Edge{0, 1, 1.0}}, kBinaryVersion, 0x2));
  EXPECT_FALSE(LoadBinary(path).has_value());
  EXPECT_FALSE(LoadBinary("/nonexistent/graph.bin").has_value());
  std::remove(path.c_str());
}

TEST(BinIo, OriginalIdTableRoundTrips) {
  // Sparse-id text -> dense graph + id table -> binary -> back: the
  // original ids survive the format change.
  const auto parsed = ParseEdgeList("1000 2000 1.5\n2000 5\n5 1000 2.25\n");
  ASSERT_TRUE(parsed.has_value());
  const std::string path = TempPath("idtable");
  ASSERT_TRUE(SaveBinary(parsed->graph, path, parsed->original_ids));
  const auto info = ReadBinaryInfo(path);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->has_original_ids);
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectSameEdgeList(parsed->graph, loaded->graph);
  EXPECT_EQ(loaded->original_ids, parsed->original_ids);
  // A size-mismatched table is rejected at save time.
  const std::vector<std::uint64_t> wrong_size = {1, 2};
  EXPECT_FALSE(SaveBinary(parsed->graph, path, wrong_size));
  std::remove(path.c_str());
}

TEST(BinIo, MergeParallelOptInWorks) {
  const std::string path = TempPath("parallel");
  WriteRaw(path, CraftFile(2, {Edge{0, 1, 2.0}, Edge{1, 0, 3.0}}));
  const auto raw = LoadBinary(path);
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->graph.num_edges(), 2u);
  const auto merged = LoadBinary(path, /*merge_parallel=*/true);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(merged->graph.edge(0).w, 5.0);
  std::remove(path.c_str());
}

TEST(BinIo, MmapAndTextLoadsAreBitIdenticalDownToCoreness) {
  // The satellite contract: the same graph written in both formats loads
  // to bit-identical Graphs, and Compact computes identical coreness
  // estimates on both.
  util::Rng rng(33);
  const Graph g =
      WithUniformWeights(BarabasiAlbert(400, 3, rng), 0.5, 4.0, rng);
  const std::string bin = TempPath("equiv");
  const std::string txt = std::string(::testing::TempDir()) + "/equiv.txt";
  ASSERT_TRUE(SaveBinary(g, bin));
  ASSERT_TRUE(SaveEdgeList(g, txt));
  const auto from_bin = LoadBinary(bin);
  const auto from_txt = LoadEdgeList(txt, /*merge_parallel=*/false);
  ASSERT_TRUE(from_bin.has_value());
  ASSERT_TRUE(from_txt.has_value());
  ExpectSameEdgeList(from_bin->graph, from_txt->graph);

  core::CompactOptions opts;
  opts.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  const auto b_bin = core::RunCompactElimination(from_bin->graph, opts);
  const auto b_txt = core::RunCompactElimination(from_txt->graph, opts);
  EXPECT_EQ(b_bin.b, b_txt.b);
  std::remove(bin.c_str());
  std::remove(txt.c_str());
}

TEST(BinIo, SliceLoadingCoversEveryEdgeExactlyByOwnership) {
  util::Rng rng(55);
  const Graph g = BarabasiAlbert(200, 4, rng);
  const std::string path = TempPath("slices");
  ASSERT_TRUE(SaveBinary(g, path));

  const NodeId n = g.num_nodes();
  const std::vector<NodeId> bounds = {0, 50, 100, 150, n};
  std::size_t total = 0;
  std::size_t cross = 0;
  const auto owner = [&bounds](NodeId v) {
    int r = 0;
    while (v >= bounds[r + 1]) ++r;
    return r;
  };
  for (const Edge& e : g.edges()) {
    if (owner(e.u) != owner(e.v)) ++cross;
  }
  for (std::size_t r = 0; r + 1 < bounds.size(); ++r) {
    const auto slice = LoadBinarySlice(path, bounds[r], bounds[r + 1]);
    ASSERT_TRUE(slice.has_value());
    // Full id space, only incident edges.
    EXPECT_EQ(slice->graph.num_nodes(), n);
    for (const Edge& e : slice->graph.edges()) {
      const bool u_owned = e.u >= bounds[r] && e.u < bounds[r + 1];
      const bool v_owned = e.v >= bounds[r] && e.v < bounds[r + 1];
      EXPECT_TRUE(u_owned || v_owned)
          << "rank " << r << " loaded foreign edge (" << e.u << "," << e.v
          << ")";
    }
    total += slice->graph.num_edges();
  }
  // Every edge lands in its owners' slices: owned once, cross twice.
  EXPECT_EQ(total, g.num_edges() + cross);

  // The full-range slice IS the graph.
  const auto all = LoadBinarySlice(path, 0, n);
  ASSERT_TRUE(all.has_value());
  ExpectSameEdgeList(g, all->graph);

  // An empty range materializes nothing.
  const auto none = LoadBinarySlice(path, 0, 0);
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(none->graph.num_edges(), 0u);

  // Out-of-range slices are rejected.
  EXPECT_FALSE(LoadBinarySlice(path, 10, 5).has_value());
  EXPECT_FALSE(LoadBinarySlice(path, 0, n + 1).has_value());
  std::remove(path.c_str());
}

// Rank-boundary pins for the per-rank compute init path: an empty slice
// mid-topology (rank_bounds with lo == hi) and the last rank's
// upper-bound handling — the classic off-by-one places.
TEST(BinIo, SliceBoundaryCasesMatchRankBoundsContract) {
  util::Rng rng(56);
  const Graph g = BarabasiAlbert(120, 3, rng);
  const std::string path = TempPath("slice_edges");
  ASSERT_TRUE(SaveBinary(g, path));
  const NodeId n = g.num_nodes();

  // Empty mid-range slice, the shape a degenerate rank_bounds row
  // produces: full id space back, zero edges, no error.
  const auto empty_mid = LoadBinarySlice(path, 60, 60);
  ASSERT_TRUE(empty_mid.has_value());
  EXPECT_EQ(empty_mid->graph.num_nodes(), n);
  EXPECT_EQ(empty_mid->graph.num_edges(), 0u);

  // Last rank: [x, n) must include node n - 1's incident edges...
  const auto last = LoadBinarySlice(path, n - 30, n);
  ASSERT_TRUE(last.has_value());
  bool saw_last_node = false;
  for (const Edge& e : last->graph.edges()) {
    EXPECT_TRUE((e.u >= n - 30 && e.u < n) || (e.v >= n - 30 && e.v < n));
    if (e.u == n - 1 || e.v == n - 1) saw_last_node = true;
  }
  EXPECT_TRUE(saw_last_node) << "last node's edges missing from last slice";
  EXPECT_EQ(last->graph.Degree(n - 1), g.Degree(n - 1));

  // ...and [x, n - 1) must NOT treat n - 1 as owned: every loaded edge
  // still touches the half-open range.
  const auto clipped = LoadBinarySlice(path, n - 30, n - 1);
  ASSERT_TRUE(clipped.has_value());
  for (const Edge& e : clipped->graph.edges()) {
    EXPECT_TRUE((e.u >= n - 30 && e.u < n - 1) ||
                (e.v >= n - 30 && e.v < n - 1));
  }

  // A one-node last slice is fine too (the ranks == n extreme).
  const auto one = LoadBinarySlice(path, n - 1, n);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->graph.Degree(n - 1), g.Degree(n - 1));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kcore::graph
