#include <gtest/gtest.h>

#include <cmath>

#include "flow/densest_flow.h"
#include "flow/dinic.h"
#include "graph/generators.h"
#include "graph/quotient.h"
#include "seq/brute.h"
#include "util/rng.h"

namespace kcore::flow {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(Dinic, TextbookNetwork) {
  // Classic 6-node example with max flow 23.
  Dinic d(6);
  d.AddArc(0, 1, 16);
  d.AddArc(0, 2, 13);
  d.AddArc(1, 2, 10);
  d.AddArc(2, 1, 4);
  d.AddArc(1, 3, 12);
  d.AddArc(3, 2, 9);
  d.AddArc(2, 4, 14);
  d.AddArc(4, 3, 7);
  d.AddArc(3, 5, 20);
  d.AddArc(4, 5, 4);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 5), 23.0);
}

TEST(Dinic, DisconnectedIsZero) {
  Dinic d(4);
  d.AddArc(0, 1, 5);
  d.AddArc(2, 3, 5);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 3), 0.0);
}

TEST(Dinic, ParallelArcsAccumulate) {
  Dinic d(2);
  d.AddArc(0, 1, 2);
  d.AddArc(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 1), 5.5);
}

TEST(Dinic, MinCutSidesArePartition) {
  Dinic d(5);
  d.AddArc(0, 1, 1);
  d.AddArc(0, 2, 1);
  d.AddArc(1, 3, 1);
  d.AddArc(2, 3, 1);
  d.AddArc(3, 4, 1);  // bottleneck
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 4), 1.0);
  const auto src = d.MinCutSourceSide(0);
  const auto sink = d.ResidualReachesSink(4);
  EXPECT_TRUE(src[0]);
  EXPECT_FALSE(src[4]);
  EXPECT_TRUE(sink[4]);
  EXPECT_FALSE(sink[0]);
  // No node is on both sides (that would be an augmenting path).
  for (int v = 0; v < 5; ++v) EXPECT_FALSE(src[v] && sink[v]);
}

TEST(Densest, TriangleWithPendantIncludesPendant) {
  // Triangle {0,1,2} + pendant 3: the triangle has rho = 1 but so does the
  // whole graph (4 edges / 4 nodes), so the MAXIMAL densest subset is all
  // of V (Fact II.1: it contains every densest subset).
  GraphBuilder b(4);
  b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 2).AddEdge(2, 3);
  const Graph g = std::move(b).Build();
  const DensestResult r = MaximalDensestSubset(g);
  EXPECT_NEAR(r.density, 1.0, 1e-9);
  EXPECT_EQ(r.size, 4u);
}

TEST(Densest, K4WithPendantExcludesPendant) {
  // K4 (rho = 1.5) + pendant: adding the pendant drops density to 7/5,
  // so the maximal densest subset is exactly the K4.
  GraphBuilder b(5);
  b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).AddEdge(1, 2).AddEdge(1, 3)
      .AddEdge(2, 3).AddEdge(3, 4);
  const Graph g = std::move(b).Build();
  const DensestResult r = MaximalDensestSubset(g);
  EXPECT_NEAR(r.density, 1.5, 1e-9);
  EXPECT_EQ(r.size, 4u);
  EXPECT_FALSE(r.in_set[4]);
}

TEST(Densest, CliqueDensity) {
  const Graph g = graph::Complete(8);
  const DensestResult r = MaximalDensestSubset(g);
  EXPECT_NEAR(r.density, 7.0 / 2.0, 1e-9);
  EXPECT_EQ(r.size, 8u);
}

TEST(Densest, EdgelessReturnsEverything) {
  GraphBuilder b(5);
  const Graph g = std::move(b).Build();
  const DensestResult r = MaximalDensestSubset(g);
  EXPECT_DOUBLE_EQ(r.density, 0.0);
  EXPECT_EQ(r.size, 5u);
}

TEST(Densest, SelfLoopDominates) {
  // A heavy self-loop at node 0 beats the triangle elsewhere.
  GraphBuilder b(4);
  b.AddEdge(0, 0, 10.0).AddEdge(1, 2).AddEdge(2, 3).AddEdge(1, 3);
  const Graph g = std::move(b).Build();
  const DensestResult r = MaximalDensestSubset(g);
  EXPECT_NEAR(r.density, 10.0, 1e-9);
  EXPECT_EQ(r.size, 1u);
  EXPECT_TRUE(r.in_set[0]);
}

TEST(Densest, MaximalityPicksLargestOptimum) {
  // Two disjoint triangles: both are densest (rho = 1); the maximal
  // densest subset is their union (Fact II.1).
  GraphBuilder b(6);
  b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 2);
  b.AddEdge(3, 4).AddEdge(4, 5).AddEdge(3, 5);
  const Graph g = std::move(b).Build();
  const DensestResult r = MaximalDensestSubset(g);
  EXPECT_NEAR(r.density, 1.0, 1e-9);
  EXPECT_EQ(r.size, 6u);
}

TEST(MaxClosure, MatchesDefinitionOnSmallGraph) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 2.0).AddEdge(1, 2, 1.0).AddEdge(2, 3, 1.0).AddEdge(0, 2, 1.5);
  const Graph g = std::move(b).Build();
  for (double density : {0.0, 0.4, 0.9, 1.1, 1.6, 2.5}) {
    // Brute force max of w(E(S)) - density * |S| over all S (incl. empty).
    double best = 0.0;
    for (std::uint32_t mask = 0; mask < 16; ++mask) {
      double w = 0.0;
      int size = 0;
      for (const auto& e : g.edges()) {
        if ((mask >> e.u & 1u) && (mask >> e.v & 1u)) w += e.w;
      }
      for (int v = 0; v < 4; ++v) size += (mask >> v) & 1;
      best = std::max(best, w - density * size);
    }
    const double got = MaxClosureValue(g, density, nullptr);
    EXPECT_NEAR(got, best, 1e-9) << "density=" << density;
  }
}

// Property test: flow solver == brute force on random small graphs.
class DensestVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(DensestVsBrute, DensityAndSetAgree) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(3 + rng.NextBounded(8));
  Graph g = graph::ErdosRenyiGnp(n, 0.45, rng);
  if (GetParam() % 2 == 0) {
    g = graph::WithIntegerWeights(g, 5, rng);
  }
  const DensestResult flow_r = MaximalDensestSubset(g);
  const seq::BruteDensestResult brute_r = seq::BruteDensestSubset(g);
  EXPECT_NEAR(flow_r.density, brute_r.density, 1e-7);
  EXPECT_EQ(flow_r.in_set, brute_r.in_set);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensestVsBrute, ::testing::Range(0, 40));

// Property test including self-loops via random quotients.
class DensestQuotientVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(DensestQuotientVsBrute, AgreesWithBruteOnQuotients) {
  util::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(5 + rng.NextBounded(7));
  const Graph g = graph::WithIntegerWeights(
      graph::ErdosRenyiGnp(n, 0.5, rng), 3, rng);
  std::vector<char> remove(n, 0);
  for (NodeId v = 0; v < n; ++v) remove[v] = rng.NextBool(0.3) ? 1 : 0;
  const auto q = graph::QuotientGraph(g, remove);
  if (q.graph.num_nodes() == 0) return;
  const DensestResult flow_r = MaximalDensestSubset(q.graph);
  const seq::BruteDensestResult brute_r = seq::BruteDensestSubset(q.graph);
  EXPECT_NEAR(flow_r.density, brute_r.density, 1e-7);
  EXPECT_EQ(flow_r.in_set, brute_r.in_set);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensestQuotientVsBrute,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace kcore::flow
