// End-to-end tests for the streaming coreness server: real Unix
// sockets, real client round trips, epoch semantics, growth and
// rejection accounting, snapshot immutability, and robustness against
// clients that die mid-frame.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "dynamic/client.h"
#include "dynamic/protocol.h"
#include "dynamic/server.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace kcore::dynamic {
namespace {

// Short unique socket path (sun_path caps out around 108 bytes, so
// ::testing::TempDir() nesting is avoided on purpose).
std::string SocketPath(const char* tag) {
  return "/tmp/kcore_srv_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

ServerOptions Options(const char* tag, NodeId n) {
  ServerOptions opts;
  opts.socket_path = SocketPath(tag);
  opts.initial_nodes = n;
  return opts;
}

TEST(CorenessServer, BatchUpdateQueryRoundTrip) {
  CorenessServer server(Options("rt", 8));
  ASSERT_TRUE(server.Start());
  CorenessClient client;
  ASSERT_TRUE(client.ConnectWithRetry(server.socket_path(), 100, 10));

  const EdgeUpdate triangle[] = {
      {EdgeUpdate::Kind::kInsert, 0, 1, 1.0},
      {EdgeUpdate::Kind::kInsert, 1, 2, 1.0},
      {EdgeUpdate::Kind::kInsert, 0, 2, 1.0},
  };
  const auto ack = client.ApplyUpdates(triangle);
  ASSERT_TRUE(ack) << client.last_error();
  EXPECT_EQ(ack->epoch, 2u);  // initial publish is epoch 1
  EXPECT_EQ(ack->applied, 3u);
  EXPECT_EQ(ack->rejected, 0u);
  EXPECT_GT(ack->recomputations, 0u);

  const NodeId ids[] = {0, 1, 2, 3};
  const auto reply = client.QueryCoreness(ids);
  ASSERT_TRUE(reply) << client.last_error();
  EXPECT_EQ(reply->epoch, 2u);
  ASSERT_EQ(reply->values.size(), 4u);
  EXPECT_DOUBLE_EQ(reply->values[0], 2.0);
  EXPECT_DOUBLE_EQ(reply->values[1], 2.0);
  EXPECT_DOUBLE_EQ(reply->values[2], 2.0);
  EXPECT_DOUBLE_EQ(reply->values[3], 0.0);

  const EdgeUpdate del[] = {{EdgeUpdate::Kind::kDelete, 0, 1, 1.0}};
  const auto ack2 = client.ApplyUpdates(del);
  ASSERT_TRUE(ack2) << client.last_error();
  EXPECT_EQ(ack2->epoch, 3u) << "every applied batch advances the epoch";
  const auto reply2 = client.QueryCoreness(ids);
  ASSERT_TRUE(reply2);
  EXPECT_DOUBLE_EQ(reply2->values[0], 1.0);

  const auto stats = client.Stats();
  ASSERT_TRUE(stats) << client.last_error();
  EXPECT_EQ(stats->epoch, 3u);
  EXPECT_EQ(stats->num_nodes, 8u);
  EXPECT_EQ(stats->num_edges, 2u);
  EXPECT_DOUBLE_EQ(stats->degeneracy, 1.0);
  EXPECT_EQ(stats->total_updates, 4u);

  EXPECT_TRUE(client.Shutdown()) << client.last_error();
  server.Wait();
}

TEST(CorenessServer, RejectsInvalidOpsWithoutDroppingBatch) {
  CorenessServer server(Options("rej", 4));
  ASSERT_TRUE(server.Start());
  CorenessClient client;
  ASSERT_TRUE(client.ConnectWithRetry(server.socket_path(), 100, 10));

  const EdgeUpdate batch[] = {
      {EdgeUpdate::Kind::kInsert, 0, 0, 1.0},   // self-loop: rejected
      {EdgeUpdate::Kind::kInsert, 0, 1, -2.0},  // negative weight: rejected
      {EdgeUpdate::Kind::kDelete, 2, 3, 1.0},   // missing edge: rejected
      {EdgeUpdate::Kind::kInsert, 0, 1, 1.0},   // fine
  };
  const auto ack = client.ApplyUpdates(batch);
  ASSERT_TRUE(ack) << client.last_error();
  EXPECT_EQ(ack->applied, 1u);
  EXPECT_EQ(ack->rejected, 3u);
  const NodeId ids[] = {0, 1};
  const auto reply = client.QueryCoreness(ids);
  ASSERT_TRUE(reply);
  EXPECT_DOUBLE_EQ(reply->values[0], 1.0);
  EXPECT_DOUBLE_EQ(reply->values[1], 1.0);
  server.Stop();
}

TEST(CorenessServer, GrowsUniverseOnDemand) {
  CorenessServer server(Options("grow", 4));
  ASSERT_TRUE(server.Start());
  CorenessClient client;
  ASSERT_TRUE(client.ConnectWithRetry(server.socket_path(), 100, 10));

  const EdgeUpdate batch[] = {{EdgeUpdate::Kind::kInsert, 2, 100, 1.0}};
  const auto ack = client.ApplyUpdates(batch);
  ASSERT_TRUE(ack) << client.last_error();
  EXPECT_EQ(ack->applied, 1u);
  const NodeId ids[] = {2, 100, 50};
  const auto reply = client.QueryCoreness(ids);
  ASSERT_TRUE(reply);
  EXPECT_DOUBLE_EQ(reply->values[0], 1.0);
  EXPECT_DOUBLE_EQ(reply->values[1], 1.0);
  EXPECT_DOUBLE_EQ(reply->values[2], 0.0) << "grown but untouched id is 0";
  const auto stats = client.Stats();
  ASSERT_TRUE(stats);
  EXPECT_GE(stats->num_nodes, 101u);
  server.Stop();
}

TEST(CorenessServer, NoGrowthRejectsOutOfUniverseIds) {
  ServerOptions opts = Options("nogrow", 4);
  opts.allow_growth = false;
  CorenessServer server(opts);
  ASSERT_TRUE(server.Start());
  CorenessClient client;
  ASSERT_TRUE(client.ConnectWithRetry(server.socket_path(), 100, 10));
  const EdgeUpdate batch[] = {
      {EdgeUpdate::Kind::kInsert, 2, 100, 1.0},
      {EdgeUpdate::Kind::kInsert, 0, 1, 1.0},
  };
  const auto ack = client.ApplyUpdates(batch);
  ASSERT_TRUE(ack) << client.last_error();
  EXPECT_EQ(ack->applied, 1u);
  EXPECT_EQ(ack->rejected, 1u);
  server.Stop();
}

TEST(CorenessServer, SeededGraphAnswersImmediately) {
  util::Rng rng(5);
  const graph::Graph g = graph::BarabasiAlbert(200, 3, rng);
  CorenessServer server(Options("seeded", 200), g);
  ASSERT_TRUE(server.Start());
  const auto snap = server.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 1u);
  EXPECT_EQ(snap->num_edges, g.num_edges());
  EXPECT_GT(snap->degeneracy, 0.0);
  CorenessClient client;
  ASSERT_TRUE(client.ConnectWithRetry(server.socket_path(), 100, 10));
  const auto stats = client.Stats();
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->num_edges, g.num_edges());
  EXPECT_DOUBLE_EQ(stats->degeneracy, snap->degeneracy);
  server.Stop();
}

TEST(CorenessServer, SnapshotsAreImmutableAcrossEpochs) {
  CorenessServer server(Options("snap", 4));
  ASSERT_TRUE(server.Start());
  CorenessClient client;
  ASSERT_TRUE(client.ConnectWithRetry(server.socket_path(), 100, 10));

  const EdgeUpdate first[] = {{EdgeUpdate::Kind::kInsert, 0, 1, 1.0}};
  ASSERT_TRUE(client.ApplyUpdates(first));
  const auto old_snap = server.snapshot();
  const std::uint64_t old_epoch = old_snap->epoch;
  const std::vector<double> old_coreness = old_snap->coreness;

  const EdgeUpdate second[] = {
      {EdgeUpdate::Kind::kInsert, 1, 2, 1.0},
      {EdgeUpdate::Kind::kInsert, 0, 2, 1.0},
  };
  ASSERT_TRUE(client.ApplyUpdates(second));

  // The pointer we took before the batch still reads the old epoch and
  // the old values — in-flight queries are never retroactively mutated.
  EXPECT_EQ(old_snap->epoch, old_epoch);
  EXPECT_EQ(old_snap->coreness, old_coreness);
  const auto new_snap = server.snapshot();
  EXPECT_EQ(new_snap->epoch, old_epoch + 1);
  EXPECT_DOUBLE_EQ(new_snap->coreness[0], 2.0);
  EXPECT_DOUBLE_EQ(old_snap->coreness[0], 1.0);
  server.Stop();
}

TEST(CorenessServer, KilledClientMidFrameOnlyDropsThatConnection) {
  CorenessServer server(Options("kill", 4));
  ASSERT_TRUE(server.Start());

  // A raw client that writes 3 bytes of the 8-byte length prefix and
  // dies. The server must drop this connection and keep serving.
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = server.socket_path();
    ASSERT_LT(path.size() + 1, sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const char partial[3] = {0x10, 0x00, 0x00};
    ASSERT_EQ(::write(fd, partial, sizeof(partial)), 3);
    ::close(fd);
  }

  CorenessClient client;
  ASSERT_TRUE(client.ConnectWithRetry(server.socket_path(), 100, 10));
  const EdgeUpdate batch[] = {{EdgeUpdate::Kind::kInsert, 0, 1, 1.0}};
  const auto ack = client.ApplyUpdates(batch);
  ASSERT_TRUE(ack) << "server must survive a client dying mid-frame: "
                   << client.last_error();
  EXPECT_EQ(ack->applied, 1u);
  EXPECT_TRUE(client.Shutdown());
  server.Wait();
}

TEST(CorenessServer, OversizedFrameIsRefusedSafely) {
  CorenessServer server(Options("huge", 4));
  ASSERT_TRUE(server.Start());

  // Announce a frame bigger than kMaxFrameBytes; the server must drop
  // the connection instead of allocating 2^60 bytes.
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = server.socket_path();
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::uint64_t huge = 1ull << 60;
    ASSERT_EQ(::write(fd, &huge, sizeof(huge)),
              static_cast<ssize_t>(sizeof(huge)));
    // The server closes on us; either read returns 0 (EOF) or the
    // write side errors later. Just confirm we get EOF eventually.
    char buf[8];
    EXPECT_LE(::read(fd, buf, sizeof(buf)), 0);
    ::close(fd);
  }

  CorenessClient client;
  ASSERT_TRUE(client.ConnectWithRetry(server.socket_path(), 100, 10));
  EXPECT_TRUE(client.Stats()) << client.last_error();
  server.Stop();
}

TEST(CorenessServer, StopWithoutClientsIsClean) {
  CorenessServer server(Options("idle", 4));
  ASSERT_TRUE(server.Start());
  server.Stop();
  // Idempotent.
  server.Stop();
}

}  // namespace
}  // namespace kcore::dynamic
