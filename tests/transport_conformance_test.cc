// Conformance battery for distsim::Transport implementations.
//
// Every transport must be observationally identical to the sequential
// shared-memory baseline: same inboxes (same messages, same sender-id
// order, bit-identical payloads), same history() (logical fields), same
// protocol results — on p2p-heavy, broadcast-only, bursty-silent, star,
// and rebalanced power-law workloads, at 1, 2, and 8 threads. The suite
// is parameterized over TransportKind, so registering a new transport in
// MakeTransport and adding it to the INSTANTIATE list below runs the
// whole battery against it.
//
// Wire accounting is pinned per kind: the shared-memory transport never
// serializes (bytes == 0 everywhere); the serializing transports
// (serialized AND process) report bytes_sent == bytes_received, nonzero
// exactly on rounds that delivered p2p traffic, and — because
// per-message encodings are absolute, not partition-relative —
// byte-identical counts at every thread count, rank count, and backend.
//
// The process transport runs the battery at 1/2/8 RANKS (worker
// processes) riding the 1/2/8-thread sweep, plus dedicated cases below:
// rank topology orthogonal to thread count, worker teardown/reap on
// shutdown, and a killed-worker death regression (EPIPE surfaces as an
// abort naming the rank, not a hang).
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/compact.h"
#include "core/densest.h"
#include "core/montresor.h"
#include "core/two_phase.h"
#include "directed/dcore_protocol.h"
#include "directed/digraph.h"
#include "distsim/engine.h"
#include "distsim/process_transport.h"
#include "distsim/transport.h"
#include "graph/binio.h"
#include "graph/generators.h"
#include "hyper/helim_protocol.h"
#include "hyper/hypergraph.h"
#include "util/rng.h"
#include "util/wire.h"

namespace kcore {
namespace {

using distsim::Engine;
using distsim::InMessage;
using distsim::MakeTransport;
using distsim::NodeContext;
using distsim::Payload;
using distsim::ProcessTransport;
using distsim::RoundStats;
using distsim::TransportKind;
using graph::NodeId;

// Installs the transport under test; the process backend additionally
// gets a rank topology (ranks <= 0 means "match the thread count", the
// battery's 1/2/8 sweep — so the fork/socket path is exercised at 1, 2,
// and 8 worker processes).
void UseTransport(Engine& e, TransportKind kind, int threads, int ranks = 0) {
  e.SetTransport(MakeTransport(kind));
  if (kind == TransportKind::kProcess) {
    e.SetRankCount(ranks > 0 ? ranks : threads);
  }
}

// Order-sensitive FNV-style fold: two digests agree only if the same
// values arrived in the same order.
std::uint64_t Mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * 0x100000001b3ULL;
}

std::uint64_t MixDouble(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(double));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return Mix(h, bits);
}

// Folds the node's whole inbox — sender ids, payload lengths, payload
// BITS (so -0.0 vs 0.0 or a denormal mangled in transit flips it) — into
// the per-node digest. Every protocol below calls this each round.
void FoldInbox(NodeContext& ctx, std::uint64_t& h) {
  for (const InMessage& m : ctx.Messages()) {
    h = Mix(h, m.from);
    h = Mix(h, m.payload.size());
    for (double x : m.payload) h = MixDouble(h, x);
  }
}

// The logical (transport-independent) RoundStats fields.
void ExpectSameLogicalHistory(const std::vector<RoundStats>& got,
                              const std::vector<RoundStats>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].round, want[i].round) << "round " << i;
    EXPECT_EQ(got[i].active_nodes, want[i].active_nodes) << "round " << i;
    EXPECT_EQ(got[i].messages, want[i].messages) << "round " << i;
    EXPECT_EQ(got[i].entries, want[i].entries) << "round " << i;
    EXPECT_EQ(got[i].distinct_values, want[i].distinct_values)
        << "round " << i;
  }
}

// Literal final-inbox comparison via Engine::inbox — sender ids, sizes,
// and payload bits.
void ExpectSameInboxes(const Engine& got, const Engine& want) {
  const NodeId n = want.graph().num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const auto a = got.inbox(v);
    const auto b = want.inbox(v);
    ASSERT_EQ(a.size(), b.size()) << "inbox size of node " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].from, b[i].from) << "node " << v << " slot " << i;
      ASSERT_EQ(a[i].payload.size(), b[i].payload.size())
          << "node " << v << " slot " << i;
      for (std::size_t k = 0; k < a[i].payload.size(); ++k) {
        std::uint64_t ba = 0, bb = 0;
        __builtin_memcpy(&ba, &a[i].payload[k], sizeof(ba));
        __builtin_memcpy(&bb, &b[i].payload[k], sizeof(bb));
        EXPECT_EQ(ba, bb) << "payload bits: node " << v << " slot " << i
                          << " entry " << k;
      }
    }
  }
}

// Per-kind wire-accounting invariants.
void ExpectWireAccounting(const Engine& e, TransportKind kind) {
  for (const RoundStats& r : e.history()) {
    if (kind == TransportKind::kSharedMemory) {
      EXPECT_EQ(r.bytes_sent, 0u) << "round " << r.round;
      EXPECT_EQ(r.bytes_received, 0u) << "round " << r.round;
    } else {
      EXPECT_EQ(r.bytes_sent, r.bytes_received) << "round " << r.round;
    }
  }
}

std::vector<std::size_t> BytesPerRound(const Engine& e) {
  std::vector<std::size_t> out;
  for (const RoundStats& r : e.history()) out.push_back(r.bytes_sent);
  return out;
}

// Mixin giving the digest protocols below per-rank compute support: the
// only per-node state beyond the runtime's is one digest word.
#define KCORE_DIGEST_RANK_STATE()                                           \
  bool SupportsRankCompute() const override { return true; }                \
  void SaveNodeState(NodeId v, util::WireAppender& out) const override {    \
    out.Fixed64(digest_[v]);                                                \
  }                                                                         \
  void LoadNodeState(NodeId v, util::WireReader& in) override {             \
    digest_[v] = in.Fixed64();                                              \
  }

// P2P-heavy: variable-size payloads (including EMPTY ones and bit-tricky
// doubles: -0.0, a denormal, a huge magnitude) to round-dependent
// neighbor subsets.
class P2PWave : public distsim::Protocol {
 public:
  explicit P2PWave(NodeId n) : digest_(n, 0xcbf29ce484222325ULL) {}

  void Init(NodeContext& ctx) override { SendWave(ctx); }

  void Round(NodeContext& ctx) override {
    FoldInbox(ctx, digest_[ctx.id()]);
    SendWave(ctx);
  }

  const std::vector<std::uint64_t>& digest() const { return digest_; }

  KCORE_DIGEST_RANK_STATE()

 private:
  void SendWave(NodeContext& ctx) {
    const auto nbrs = ctx.neighbors();
    const NodeId v = ctx.id();
    const auto r = static_cast<std::size_t>(ctx.round());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if ((i + v + r) % 3 != 0) continue;
      Payload p;
      switch ((v + i + r) % 5) {
        case 0:
          break;  // empty payload: varint-length-0 on the wire
        case 1:
          p = {-0.0};
          break;
        case 2:
          p = {1e-310, static_cast<double>(v)};  // denormal survives?
          break;
        case 3:
          p = {-1.7e308, static_cast<double>(r)};
          break;
        default:
          p = {static_cast<double>(v * 1000 + r * 10),
               static_cast<double>(i), 0.5};
          break;
      }
      ctx.Send(nbrs[i].to, std::move(p));
    }
  }

  std::vector<std::uint64_t> digest_;
};

// Broadcast-only: the transport must never be invoked (no p2p staged).
class BroadcastOnly : public distsim::Protocol {
 public:
  explicit BroadcastOnly(NodeId n) : digest_(n, 0x84222325cbf29ce4ULL) {}

  void Init(NodeContext& ctx) override { Shout(ctx); }

  void Round(NodeContext& ctx) override {
    std::uint64_t& h = digest_[ctx.id()];
    for (std::size_t i = 0; i < ctx.neighbors().size(); ++i) {
      const Payload* p = ctx.NeighborBroadcast(i);
      if (p == nullptr) {
        h = Mix(h, 0xdeadULL);
        continue;
      }
      for (double x : *p) h = MixDouble(h, x);
    }
    FoldInbox(ctx, h);  // must fold nothing, every round
    Shout(ctx);
  }

  const std::vector<std::uint64_t>& digest() const { return digest_; }

  KCORE_DIGEST_RANK_STATE()

 private:
  void Shout(NodeContext& ctx) {
    const NodeId v = ctx.id();
    const auto r = static_cast<std::size_t>(ctx.round());
    if ((v + r) % 7 == 0) return;
    Payload p{static_cast<double>((v + r) % 17)};
    for (std::size_t k = 1; k < 1 + v % 3; ++k) {
      p.push_back(static_cast<double>(k));
    }
    ctx.Broadcast(std::move(p));
  }

  std::vector<std::uint64_t> digest_;
};

// Bursty: p2p only every fourth round, TOTAL silence otherwise (no
// broadcasts either). Quiet rounds exercise the no-traffic path and the
// stale-inbox clearing after a delivery round — a transport that leaves
// last round's inboxes behind flips the digest.
class BurstySilence : public distsim::Protocol {
 public:
  explicit BurstySilence(NodeId n) : digest_(n, 0x100000001b3ULL) {}

  void Init(NodeContext& ctx) override { MaybeBurst(ctx); }

  void Round(NodeContext& ctx) override {
    std::uint64_t& h = digest_[ctx.id()];
    h = Mix(h, ctx.Messages().size());
    FoldInbox(ctx, h);
    MaybeBurst(ctx);
  }

  const std::vector<std::uint64_t>& digest() const { return digest_; }

  KCORE_DIGEST_RANK_STATE()

 private:
  void MaybeBurst(NodeContext& ctx) {
    if (ctx.round() % 4 != 1) return;
    const auto nbrs = ctx.neighbors();
    const NodeId v = ctx.id();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if ((v + i) % 2 != 0) continue;
      ctx.Send(nbrs[i].to, {static_cast<double>(v), 2.0});
    }
  }

  std::vector<std::uint64_t> digest_;
};

// Star funnel: every leaf sends the hub one message per round (the hub's
// inbox concentrates n - 1 sender-sorted messages — the worst case for
// per-receiver offset/order bookkeeping); the hub answers a rotating
// leaf.
class StarFunnel : public distsim::Protocol {
 public:
  explicit StarFunnel(NodeId n) : digest_(n, 0x9e3779b97f4a7c15ULL) {}

  void Init(NodeContext& ctx) override { Send(ctx); }

  void Round(NodeContext& ctx) override {
    FoldInbox(ctx, digest_[ctx.id()]);
    Send(ctx);
  }

  const std::vector<std::uint64_t>& digest() const { return digest_; }

  KCORE_DIGEST_RANK_STATE()

 private:
  void Send(NodeContext& ctx) {
    const auto nbrs = ctx.neighbors();
    const NodeId v = ctx.id();
    const auto r = static_cast<std::size_t>(ctx.round());
    if (nbrs.size() == 1) {
      // Leaf: funnel into the hub.
      ctx.Send(nbrs[0].to, {static_cast<double>(v), static_cast<double>(r)});
    } else if (!nbrs.empty()) {
      // Hub: answer one leaf, rotating.
      ctx.Send(nbrs[r % nbrs.size()].to, {static_cast<double>(r)});
    }
  }

  std::vector<std::uint64_t> digest_;
};

// Randomized gossip through per-node RNG streams (see
// scheduler_determinism_test) — used for the power-law + rebalancing
// case, where the partition changes mid-run.
class SeededGossip : public distsim::Protocol {
 public:
  explicit SeededGossip(NodeId n) : value_(n, 0.0) {}

  void Init(NodeContext& ctx) override {
    value_[ctx.id()] = ctx.Rng().NextDouble();
    ctx.Broadcast({value_[ctx.id()]});
  }

  void Round(NodeContext& ctx) override {
    const NodeId v = ctx.id();
    double& x = value_[v];
    for (const InMessage& m : ctx.Messages()) x += m.payload[0];
    const auto nbrs = ctx.neighbors();
    if (!nbrs.empty()) {
      const std::size_t pick = ctx.Rng().NextBounded(nbrs.size());
      ctx.Send(nbrs[pick].to, {x + ctx.Rng().NextDouble()});
    }
    if (ctx.Rng().NextBool(0.5)) ctx.Broadcast({x});
  }

  const std::vector<double>& value() const { return value_; }

  bool SupportsRankCompute() const override { return true; }
  void SaveNodeState(NodeId v, util::WireAppender& out) const override {
    out.Double(value_[v]);
  }
  void LoadNodeState(NodeId v, util::WireReader& in) override {
    value_[v] = in.Double();
  }

 private:
  std::vector<double> value_;
};

template <typename Proto>
void RunRounds(Engine& engine, Proto& proto, int rounds) {
  engine.Start(proto);
  for (int t = 0; t < rounds; ++t) engine.Step(proto);
}

class TransportConformance : public ::testing::TestWithParam<TransportKind> {};

INSTANTIATE_TEST_SUITE_P(
    Transports, TransportConformance,
    ::testing::Values(TransportKind::kSharedMemory,
                      TransportKind::kSerialized, TransportKind::kProcess),
    [](const ::testing::TestParamInfo<TransportKind>& info) {
      return distsim::TransportKindName(info.param);
    });

constexpr int kThreadCounts[] = {1, 2, 8};

TEST_P(TransportConformance, P2PHeavyMatchesSequentialBaseline) {
  util::Rng rng(301);
  const graph::Graph g = graph::BarabasiAlbert(1200, 4, rng);
  P2PWave base(g.num_nodes());
  Engine eb(g, 1);
  RunRounds(eb, base, 12);

  std::vector<std::size_t> reference_bytes;
  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    P2PWave p(g.num_nodes());
    Engine e(g, threads);
    e.SetParallelCutoff(1);  // force real sharding even at small n
    UseTransport(e, GetParam(), threads);
    RunRounds(e, p, 12);
    EXPECT_EQ(p.digest(), base.digest());
    ExpectSameLogicalHistory(e.history(), eb.history());
    ExpectSameInboxes(e, eb);
    ExpectWireAccounting(e, GetParam());
    if (GetParam() != TransportKind::kSharedMemory) {
      // Every round staged p2p, so every round has wire traffic...
      for (const RoundStats& r : e.history()) {
        EXPECT_GT(r.bytes_sent, 0u) << "round " << r.round;
      }
      // ...and the byte counts are partition-independent: identical at
      // every thread count (and, for the process backend, rank count —
      // the 1/2/8 sweep varies both together here).
      if (reference_bytes.empty()) {
        reference_bytes = BytesPerRound(e);
      } else {
        EXPECT_EQ(BytesPerRound(e), reference_bytes);
      }
    }
  }
}

TEST_P(TransportConformance, BroadcastOnlyNeverTouchesTheWire) {
  util::Rng rng(302);
  const graph::Graph g = graph::BarabasiAlbert(1000, 3, rng);
  BroadcastOnly base(g.num_nodes());
  Engine eb(g, 1);
  RunRounds(eb, base, 10);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    BroadcastOnly p(g.num_nodes());
    Engine e(g, threads);
    e.SetParallelCutoff(1);
    UseTransport(e, GetParam(), threads);
    RunRounds(e, p, 10);
    EXPECT_EQ(p.digest(), base.digest());
    ExpectSameLogicalHistory(e.history(), eb.history());
    // No p2p staged => the transport is never invoked: zero wire volume
    // for EVERY kind, serialized included.
    for (const RoundStats& r : e.history()) {
      EXPECT_EQ(r.bytes_sent, 0u) << "round " << r.round;
      EXPECT_EQ(r.bytes_received, 0u) << "round " << r.round;
    }
  }
}

TEST_P(TransportConformance, EmptyRoundsClearStaleInboxes) {
  util::Rng rng(303);
  const graph::Graph g = graph::BarabasiAlbert(900, 3, rng);
  BurstySilence base(g.num_nodes());
  Engine eb(g, 1);
  RunRounds(eb, base, 14);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    BurstySilence p(g.num_nodes());
    Engine e(g, threads);
    e.SetParallelCutoff(1);
    UseTransport(e, GetParam(), threads);
    RunRounds(e, p, 14);
    EXPECT_EQ(p.digest(), base.digest());
    ExpectSameLogicalHistory(e.history(), eb.history());
    ExpectSameInboxes(e, eb);
    ExpectWireAccounting(e, GetParam());
  }
}

TEST_P(TransportConformance, SelfLoopFreeStarFunnel) {
  const graph::Graph g = graph::Star(600);
  ASSERT_FALSE(g.has_self_loops());
  StarFunnel base(g.num_nodes());
  Engine eb(g, 1);
  RunRounds(eb, base, 12);
  // The hub really concentrates the traffic.
  ASSERT_EQ(eb.inbox(0).size(), 599u);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    StarFunnel p(g.num_nodes());
    Engine e(g, threads);
    e.SetParallelCutoff(1);
    UseTransport(e, GetParam(), threads);
    RunRounds(e, p, 12);
    EXPECT_EQ(p.digest(), base.digest());
    ExpectSameLogicalHistory(e.history(), eb.history());
    ExpectSameInboxes(e, eb);
    ExpectWireAccounting(e, GetParam());
  }
}

TEST_P(TransportConformance, PowerLawWithRebalancingGossip) {
  util::Rng rng(304);
  const graph::Graph g = graph::PowerLawConfiguration(1500, 2.1, 2, 150, rng);
  SeededGossip base(g.num_nodes());
  Engine eb(g, 1);
  eb.SetSeed(777);
  RunRounds(eb, base, 15);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    SeededGossip p(g.num_nodes());
    Engine e(g, threads);
    e.SetSeed(777);
    e.SetParallelCutoff(1);
    // Weighted shards rebuilt every 3 rounds: the serialized pack/unpack
    // partition changes mid-run; results must not care.
    e.SetShardBalancing(true);
    e.SetRebalanceInterval(3);
    UseTransport(e, GetParam(), threads);
    RunRounds(e, p, 15);
    EXPECT_EQ(p.value(), base.value());
    ExpectSameLogicalHistory(e.history(), eb.history());
    ExpectSameInboxes(e, eb);
    ExpectWireAccounting(e, GetParam());
  }
}

TEST_P(TransportConformance, CompactCorenessAcrossThreadCounts) {
  util::Rng rng(305);
  const graph::Graph g = graph::BarabasiAlbert(800, 4, rng);
  core::CompactOptions base_opts;
  base_opts.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  const core::CompactResult base = core::RunCompactElimination(g, base_opts);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    core::CompactOptions opts = base_opts;
    opts.num_threads = threads;
    opts.transport = GetParam();
    if (GetParam() == TransportKind::kProcess) opts.ranks = threads;
    const core::CompactResult res = core::RunCompactElimination(g, opts);
    EXPECT_EQ(res.b, base.b);
    ExpectSameLogicalHistory(res.history, base.history);
  }
}

TEST_P(TransportConformance, MontresorCorenessAcrossThreadCounts) {
  util::Rng rng(306);
  const graph::Graph g = graph::BarabasiAlbert(800, 3, rng);
  const core::ConvergenceResult base = core::RunToConvergence(g, -1, 1);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    const core::ConvergenceResult res = core::RunToConvergence(
        g, -1, threads, distsim::kDefaultMasterSeed, /*balance_shards=*/false,
        GetParam(),
        /*ranks=*/GetParam() == TransportKind::kProcess ? threads : 1);
    EXPECT_EQ(res.coreness, base.coreness);
    EXPECT_EQ(res.rounds_executed, base.rounds_executed);
    ExpectSameLogicalHistory(res.history, base.history);
  }
}

// ---------------------------------------------------------------------
// The three non-k-core protocol families, driven through the same sweep:
// hyperedge-incidence updates (hypergraph elimination over the clique
// expansion), presence-coded in/out-degree pairs (directed d-core over
// the support substrate), and the four-phase densest pipeline with its
// density-ratio convergecast. Message shapes the k-core protocols never
// stage — same contract, same baselines.
// ---------------------------------------------------------------------

TEST_P(TransportConformance, HyperEliminationAcrossThreadCounts) {
  util::Rng rng(310);
  const hyper::Hypergraph h = hyper::RandomUniform(500, 1000, 3, rng);
  hyper::HyperElimOptions base_opts;
  base_opts.rounds = 5;
  const hyper::HyperElimResult base = RunHyperElimination(h, base_opts);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    hyper::HyperElimOptions opts = base_opts;
    opts.num_threads = threads;
    opts.transport = GetParam();
    if (GetParam() == TransportKind::kProcess) opts.ranks = threads;
    const hyper::HyperElimResult res = RunHyperElimination(h, opts);
    EXPECT_EQ(res.b, base.b);
    ExpectSameLogicalHistory(res.history, base.history);
  }
}

TEST_P(TransportConformance, DCoreEliminationAcrossThreadCounts) {
  util::Rng rng(311);
  const directed::Digraph g = directed::RandomDigraph(500, 0.012, rng);
  directed::DCoreElimOptions base_opts;
  base_opts.rounds = 5;
  const directed::DCoreElimResult base =
      RunDCoreElimination(g, 2.0, base_opts);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    directed::DCoreElimOptions opts = base_opts;
    opts.num_threads = threads;
    opts.transport = GetParam();
    if (GetParam() == TransportKind::kProcess) opts.ranks = threads;
    const directed::DCoreElimResult res = RunDCoreElimination(g, 2.0, opts);
    EXPECT_EQ(res.b, base.b);
    EXPECT_EQ(res.active, base.active);
    ExpectSameLogicalHistory(res.history, base.history);
  }
}

TEST_P(TransportConformance, WeakDensestAcrossThreadCounts) {
  util::Rng rng(312);
  const graph::Graph g = graph::BarabasiAlbert(400, 3, rng);
  core::WeakDensestOptions base_opts;
  base_opts.gamma = 3.0;
  const core::WeakDensestResult base = RunWeakDensest(g, base_opts);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    core::WeakDensestOptions opts = base_opts;
    opts.num_threads = threads;
    opts.transport = GetParam();
    if (GetParam() == TransportKind::kProcess) opts.ranks = threads;
    const core::WeakDensestResult res = RunWeakDensest(g, opts);
    EXPECT_EQ(res.b, base.b);
    EXPECT_EQ(res.selected, base.selected);
    EXPECT_EQ(res.leader_of, base.leader_of);
    EXPECT_EQ(res.best_density, base.best_density);
    EXPECT_EQ(res.subsets.size(), base.subsets.size());
    EXPECT_EQ(res.totals.messages, base.totals.messages);
    EXPECT_EQ(res.totals.entries, base.totals.entries);
  }
}

// ---------------------------------------------------------------------
// Process-backend-specific cases: rank topology, worker lifecycle, and
// the killed-worker failure mode.
// ---------------------------------------------------------------------

// The rank partition is independent of the thread shards: a sequential
// engine can exchange over 8 worker processes, an 8-thread engine over
// 2, and a 2-thread engine over 5 — all bit-identical to the sequential
// baseline, with byte counts equal to the serialized backend's (the
// segment encoding is shared, and absolute).
TEST(ProcessTransportTopology, RanksOrthogonalToThreads) {
  util::Rng rng(307);
  const graph::Graph g = graph::BarabasiAlbert(900, 4, rng);
  P2PWave base(g.num_nodes());
  Engine eb(g, 1);
  RunRounds(eb, base, 10);

  P2PWave pser(g.num_nodes());
  Engine eser(g, 1);
  eser.SetTransport(MakeTransport(TransportKind::kSerialized));
  RunRounds(eser, pser, 10);
  const std::vector<std::size_t> serialized_bytes = BytesPerRound(eser);

  constexpr struct {
    int threads;
    int ranks;
  } kConfigs[] = {{1, 8}, {8, 2}, {2, 5}};
  for (const auto& cfg : kConfigs) {
    SCOPED_TRACE(::testing::Message()
                 << "threads=" << cfg.threads << " ranks=" << cfg.ranks);
    P2PWave p(g.num_nodes());
    Engine e(g, cfg.threads);
    e.SetParallelCutoff(1);
    UseTransport(e, TransportKind::kProcess, cfg.threads, cfg.ranks);
    RunRounds(e, p, 10);
    EXPECT_EQ(e.num_ranks(), cfg.ranks);
    EXPECT_EQ(p.digest(), base.digest());
    ExpectSameLogicalHistory(e.history(), eb.history());
    ExpectSameInboxes(e, eb);
    ExpectWireAccounting(e, TransportKind::kProcess);
    EXPECT_EQ(BytesPerRound(e), serialized_bytes);
  }
}

// Workers are live for the engine's run and reaped on teardown: an
// explicit Shutdown() reports a clean exit for every rank and the pids
// are gone afterwards (no zombies — waitpid ran), and the implicit
// destructor path does the same when the engine dies.
TEST(ProcessTransportLifecycle, ShutdownReapsAllWorkers) {
  util::Rng rng(308);
  const graph::Graph g = graph::BarabasiAlbert(400, 3, rng);
  auto owned = std::make_unique<ProcessTransport>();
  ProcessTransport* transport = owned.get();

  P2PWave p(g.num_nodes());
  Engine e(g, 1);
  e.SetRankCount(4);
  e.SetTransport(std::move(owned));
  RunRounds(e, p, 4);

  ASSERT_TRUE(transport->started());
  ASSERT_EQ(transport->num_workers(), 4);
  std::vector<pid_t> pids;
  for (int r = 0; r < 4; ++r) {
    pids.push_back(transport->worker_pid(r));
    EXPECT_EQ(::kill(pids.back(), 0), 0) << "worker " << r << " not running";
  }

  EXPECT_TRUE(transport->Shutdown()) << "a worker exited uncleanly";
  EXPECT_TRUE(transport->Shutdown()) << "Shutdown must be idempotent";
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(::kill(pids[r], 0), 0)
        << "worker " << r << " (pid " << pids[r] << ") survived shutdown";
  }
}

TEST(ProcessTransportLifecycle, EngineDestructorTearsWorkersDown) {
  util::Rng rng(309);
  const graph::Graph g = graph::BarabasiAlbert(400, 3, rng);
  std::vector<pid_t> pids;
  {
    auto owned = std::make_unique<ProcessTransport>();
    ProcessTransport* transport = owned.get();
    P2PWave p(g.num_nodes());
    Engine e(g, 2);
    e.SetParallelCutoff(1);
    e.SetRankCount(3);
    e.SetTransport(std::move(owned));
    RunRounds(e, p, 4);
    for (int r = 0; r < transport->num_workers(); ++r) {
      pids.push_back(transport->worker_pid(r));
      ASSERT_EQ(::kill(pids.back(), 0), 0);
    }
  }
  for (pid_t pid : pids) {
    EXPECT_NE(::kill(pid, 0), 0) << "worker pid " << pid
                                 << " survived the engine destructor";
  }
}

// A worker killed mid-run must surface as an abort naming the rank on
// the next exchange (EPIPE/EOF on its socketpair), never as a hang or a
// silently wrong result.
TEST(ProcessTransportDeathTest, KilledWorkerAbortsWithRank) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  util::Rng rng(310);
  const graph::Graph g = graph::BarabasiAlbert(300, 3, rng);
  EXPECT_DEATH(
      {
        auto owned = std::make_unique<ProcessTransport>();
        ProcessTransport* transport = owned.get();
        P2PWave p(g.num_nodes());
        Engine e(g, 1);
        e.SetRankCount(4);
        e.SetTransport(std::move(owned));
        e.Start(p);
        e.Step(p);
        const pid_t victim = transport->worker_pid(2);
        ::kill(victim, SIGKILL);
        int status = 0;
        ::waitpid(victim, &status, 0);  // it is really gone, not dying
        for (int t = 0; t < 50; ++t) e.Step(p);
      },
      "process transport rank 2 died");
}

// A worker killed mid-run, then an ORDERLY Shutdown (no exchange in
// between, so ReportDeadWorker never fires): the dead rank is reaped
// exactly once, counted unclean exactly once, and the second Shutdown
// repeats the verdict without touching waitpid again (a double reap of a
// recycled pid would be a stranger's process).
TEST(ProcessTransportLifecycle, KillThenShutdownCountsUncleanOnce) {
  util::Rng rng(311);
  const graph::Graph g = graph::BarabasiAlbert(400, 3, rng);
  auto owned = std::make_unique<ProcessTransport>();
  ProcessTransport* transport = owned.get();
  P2PWave p(g.num_nodes());
  Engine e(g, 1);
  e.SetRankCount(4);
  e.SetTransport(std::move(owned));
  RunRounds(e, p, 3);

  std::vector<pid_t> pids;
  for (int r = 0; r < 4; ++r) pids.push_back(transport->worker_pid(r));
  ::kill(pids[1], SIGKILL);

  EXPECT_FALSE(transport->Shutdown()) << "a SIGKILLed worker is not clean";
  EXPECT_FALSE(transport->Shutdown()) << "the verdict must be stable";
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(::kill(pids[r], 0), 0)
        << "worker " << r << " survived shutdown";
  }
  // Every worker was reaped by the first Shutdown: no children remain
  // anywhere on this process (a leftover zombie would show up here).
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

// ---------------------------------------------------------------------
// Startup failure path (TryStart): a socketpair() or fork() failing
// mid-topology must leak neither file descriptors nor child processes.
// InjectStartFault makes the Nth resource allocation fail with a
// synthetic EMFILE; with 4 ranks the build makes 4 parent pairs, 6 peer
// pairs, and 4 forks = 14 allocations, so the sweep hits every phase of
// the construction (first/last socketpair, first/mid/last fork).
// ---------------------------------------------------------------------

std::size_t CountOpenFds() {
  std::size_t count = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (::readdir(d) != nullptr) ++count;
  ::closedir(d);
  return count;
}

TEST(ProcessTransportStartFailure, NthAllocationFailureLeaksNothing) {
  const graph::NodeId n = 300;
  const std::uint64_t bounds[] = {0, 75, 150, 225, 300};
  const int kAllocations = 4 + 6 + 4;  // parent pairs + peer pairs + forks
  for (int nth = 1; nth <= kAllocations; ++nth) {
    SCOPED_TRACE(::testing::Message() << "failing allocation " << nth);
    ProcessTransport t;
    const std::size_t fds_before = CountOpenFds();
    ProcessTransport::InjectStartFault(nth);
    std::string error;
    EXPECT_FALSE(t.TryStart(n, 4, bounds, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(t.started());
    EXPECT_EQ(CountOpenFds(), fds_before) << "fd leak: " << error;
    // Every already-forked worker was killed and reaped before TryStart
    // returned — no children (zombie or live) outlive the failure.
    errno = 0;
    EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1) << error;
    EXPECT_EQ(errno, ECHILD) << error;
  }
  // The failure is not sticky: a fresh attempt builds the full topology.
  ProcessTransport t;
  std::string error;
  EXPECT_TRUE(t.TryStart(n, 4, bounds, &error)) << error;
  EXPECT_TRUE(t.started());
  EXPECT_TRUE(t.Shutdown());
}

// ---------------------------------------------------------------------
// Per-rank compute: the compute phase runs INSIDE the rank workers
// (Engine::SetPerRankCompute) — each worker owns its slice's protocol
// state, RNG streams, and broadcasts, exchanges p2p + broadcast fan-out
// peer-to-peer, and returns stats partials. Everything observable must
// stay bit-identical to the in-engine compute path at every rank/thread
// combination; the engine's thread count must be completely orthogonal
// (workers compute sequentially — threads only ever touched the
// in-engine phases).
// ---------------------------------------------------------------------

constexpr struct {
  int ranks;
  int threads;
} kPerRankMatrix[] = {{1, 1}, {1, 8}, {2, 1}, {2, 8}, {8, 1}, {8, 8}};

TEST(PerRankCompute, P2PWaveMatrixMatchesSequentialBaseline) {
  util::Rng rng(401);
  const graph::Graph g = graph::BarabasiAlbert(900, 4, rng);
  P2PWave base(g.num_nodes());
  Engine eb(g, 1);
  eb.SetTransport(MakeTransport(TransportKind::kSerialized));
  RunRounds(eb, base, 10);
  const std::vector<std::size_t> reference_bytes = BytesPerRound(eb);

  for (const auto& cfg : kPerRankMatrix) {
    SCOPED_TRACE(::testing::Message()
                 << "ranks=" << cfg.ranks << " threads=" << cfg.threads);
    P2PWave p(g.num_nodes());
    Engine e(g, cfg.threads);
    e.SetParallelCutoff(1);
    UseTransport(e, TransportKind::kProcess, cfg.threads, cfg.ranks);
    e.SetPerRankCompute(true);
    RunRounds(e, p, 10);
    e.FetchRankState(p);
    EXPECT_EQ(p.digest(), base.digest());
    ExpectSameLogicalHistory(e.history(), eb.history());
    ExpectWireAccounting(e, TransportKind::kProcess);
    // p2p byte accounting is the shared absolute encoding: identical to
    // the serialized backend's at every rank count.
    EXPECT_EQ(BytesPerRound(e), reference_bytes);
  }
}

TEST(PerRankCompute, SilentRoundsReportZeroBytes) {
  util::Rng rng(402);
  const graph::Graph g = graph::BarabasiAlbert(700, 3, rng);
  BurstySilence base(g.num_nodes());
  Engine eb(g, 1);
  eb.SetTransport(MakeTransport(TransportKind::kSerialized));
  RunRounds(eb, base, 13);

  BurstySilence p(g.num_nodes());
  Engine e(g, 1);
  UseTransport(e, TransportKind::kProcess, 1, 4);
  e.SetPerRankCompute(true);
  RunRounds(e, p, 13);
  e.FetchRankState(p);
  EXPECT_EQ(p.digest(), base.digest());
  // The workers run their peer exchange every round, but framing
  // overhead is not payload: silent rounds report exactly 0 bytes, just
  // like the in-engine path — and loud rounds the identical count.
  EXPECT_EQ(BytesPerRound(e), BytesPerRound(eb));
  for (const RoundStats& r : e.history()) {
    if (r.round % 4 != 1) EXPECT_EQ(r.bytes_sent, 0u) << "round " << r.round;
  }
}

TEST(PerRankCompute, SeededGossipRngStreamsBitIdentical) {
  util::Rng rng(403);
  const graph::Graph g = graph::PowerLawConfiguration(1100, 2.2, 2, 120, rng);
  SeededGossip base(g.num_nodes());
  Engine eb(g, 1);
  eb.SetSeed(777);
  RunRounds(eb, base, 12);

  for (const auto& cfg : kPerRankMatrix) {
    SCOPED_TRACE(::testing::Message()
                 << "ranks=" << cfg.ranks << " threads=" << cfg.threads);
    SeededGossip p(g.num_nodes());
    Engine e(g, cfg.threads);
    e.SetSeed(777);
    e.SetParallelCutoff(1);
    UseTransport(e, TransportKind::kProcess, cfg.threads, cfg.ranks);
    e.SetPerRankCompute(true);
    RunRounds(e, p, 12);
    e.FetchRankState(p);
    // The workers rebuild their nodes' RNG streams from the master seed
    // (ForkKeyed is state-pure), so every draw matches the in-engine
    // streams bit for bit.
    EXPECT_EQ(p.value(), base.value());
    ExpectSameLogicalHistory(e.history(), eb.history());
  }
}

TEST(PerRankCompute, CompactCorenessMatrixBitIdentical) {
  util::Rng rng(404);
  const graph::Graph g = graph::BarabasiAlbert(800, 4, rng);
  core::CompactOptions base_opts;
  base_opts.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  base_opts.track_orientation = true;
  const core::CompactResult base = core::RunCompactElimination(g, base_opts);

  for (const auto& cfg : kPerRankMatrix) {
    SCOPED_TRACE(::testing::Message()
                 << "ranks=" << cfg.ranks << " threads=" << cfg.threads);
    core::CompactOptions opts = base_opts;
    opts.num_threads = cfg.threads;
    opts.transport = TransportKind::kProcess;
    opts.ranks = cfg.ranks;
    opts.per_rank_compute = true;
    const core::CompactResult res = core::RunCompactElimination(g, opts);
    EXPECT_EQ(res.b, base.b);
    EXPECT_EQ(res.in_sets, base.in_sets);
    ExpectSameLogicalHistory(res.history, base.history);
  }
}

TEST(PerRankCompute, MontresorQuiescenceMatchesInEngine) {
  util::Rng rng(405);
  const graph::Graph g = graph::BarabasiAlbert(600, 3, rng);
  const core::ConvergenceResult base = core::RunToConvergence(g, -1, 1);

  for (int ranks : {2, 8}) {
    SCOPED_TRACE(ranks);
    const core::ConvergenceResult res = core::RunToConvergence(
        g, -1, 1, distsim::kDefaultMasterSeed, /*balance_shards=*/false,
        TransportKind::kProcess, ranks, /*per_rank_compute=*/true);
    EXPECT_EQ(res.coreness, base.coreness);
    // Distributed quiescence (OR of per-slice change flags) detects the
    // fixpoint in exactly the same round as the global predicate.
    EXPECT_EQ(res.rounds_executed, base.rounds_executed);
    EXPECT_EQ(res.last_change_round, base.last_change_round);
    ExpectSameLogicalHistory(res.history, base.history);
  }
}

TEST(PerRankCompute, TwoPhaseOrientationMatchesInEngine) {
  util::Rng rng(406);
  const graph::Graph g = graph::BarabasiAlbert(500, 4, rng);
  const int t = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  const core::TwoPhaseResult base = core::RunTwoPhaseOrientation(g, t, 0.5);

  const core::TwoPhaseResult res = core::RunTwoPhaseOrientation(
      g, t, 0.5, -1, 1, distsim::kDefaultMasterSeed,
      /*balance_shards=*/false, TransportKind::kProcess, /*ranks=*/4,
      /*per_rank_compute=*/true);
  EXPECT_EQ(res.b, base.b);
  // Peeling halts nodes worker-side; the merged halted census drives the
  // driver's stopping rule to the identical round.
  EXPECT_EQ(res.phase2_rounds, base.phase2_rounds);
  EXPECT_EQ(res.forced_edges, base.forced_edges);
  ExpectSameLogicalHistory(res.phase2_history, base.phase2_history);
}

// SetGraphPath switches the init frames from wire-serialized slices to
// worker-side LoadBinarySlice against the binary graph format — the
// rank_bounds ingestion contract of graph/binio.h. Results must not
// care which road the slice took.
TEST(PerRankCompute, BinioSliceLoadMatchesWireSerializedSlice) {
  util::Rng rng(409);
  const graph::Graph g = graph::BarabasiAlbert(650, 4, rng);
  const std::string path =
      std::string(::testing::TempDir()) + "/per_rank_slice.kcg";
  ASSERT_TRUE(graph::SaveBinary(g, path));

  P2PWave base(g.num_nodes());
  Engine eb(g, 1);
  RunRounds(eb, base, 9);

  for (int ranks : {2, 5}) {
    SCOPED_TRACE(ranks);
    P2PWave p(g.num_nodes());
    Engine e(g, 1);
    UseTransport(e, TransportKind::kProcess, 1, ranks);
    e.SetPerRankCompute(true);
    e.SetGraphPath(path);
    RunRounds(e, p, 9);
    e.FetchRankState(p);
    EXPECT_EQ(p.digest(), base.digest());
    ExpectSameLogicalHistory(e.history(), eb.history());
  }
  std::remove(path.c_str());
}

// The broadcast fan-out accounting: the coordinator's ANALYTIC census
// (in-engine compute, rank topology known) must equal the workers'
// MEASURED bytes (per-rank compute, actual fan-out segments packed) —
// round by round, field by field.
TEST(PerRankCompute, BroadcastFanOutAnalyticMatchesMeasured) {
  util::Rng rng(407);
  const graph::Graph g = graph::BarabasiAlbert(700, 4, rng);
  core::CompactOptions opts;
  opts.rounds = core::RoundsForEpsilon(g.num_nodes(), 0.5);
  opts.transport = TransportKind::kProcess;
  opts.ranks = 4;
  const core::CompactResult analytic = core::RunCompactElimination(g, opts);
  opts.per_rank_compute = true;
  const core::CompactResult measured = core::RunCompactElimination(g, opts);

  ASSERT_EQ(analytic.history.size(), measured.history.size());
  for (std::size_t i = 0; i < analytic.history.size(); ++i) {
    EXPECT_EQ(measured.history[i].bcast_bytes_sent,
              analytic.history[i].bcast_bytes_sent)
        << "round " << i;
    EXPECT_EQ(measured.history[i].bcast_bytes_received,
              analytic.history[i].bcast_bytes_received)
        << "round " << i;
    EXPECT_EQ(measured.history[i].bcast_bytes_per_neighbor,
              analytic.history[i].bcast_bytes_per_neighbor)
        << "round " << i;
    // What ships is what lands: fan-out copies are point-to-point.
    EXPECT_EQ(measured.history[i].bcast_bytes_sent,
              measured.history[i].bcast_bytes_received)
        << "round " << i;
  }
  EXPECT_EQ(measured.totals.bcast_bytes_sent, analytic.totals.bcast_bytes_sent);
  EXPECT_EQ(measured.totals.bcast_bytes_per_neighbor,
            analytic.totals.bcast_bytes_per_neighbor);
}

// On a dense graph the fan-out rule is the whole point: one copy per
// remote neighbor-owning rank beats one per remote neighbor STRICTLY —
// K_64 over 4 ranks fans each broadcast to at most 3 rank copies instead
// of 48 per-neighbor copies.
TEST(PerRankCompute, DenseGraphFanOutBeatsPerNeighborStrictly) {
  const graph::Graph g = graph::Complete(64);
  core::CompactOptions opts;
  opts.rounds = 4;
  opts.transport = TransportKind::kProcess;
  opts.ranks = 4;
  opts.per_rank_compute = true;
  const core::CompactResult res = core::RunCompactElimination(g, opts);
  EXPECT_GT(res.totals.bcast_bytes_sent, 0u);
  EXPECT_LT(res.totals.bcast_bytes_sent,
            res.totals.bcast_bytes_per_neighbor);
  // The exact ratio on K_64 / 4 ranks: every node has 48 remote
  // neighbors in exactly 3 remote ranks.
  EXPECT_EQ(res.totals.bcast_bytes_per_neighbor,
            res.totals.bcast_bytes_sent / 3 * 48);
  // Coreness is untouched by the topology: K_64 is its own 63-core
  // (weighted degree 63 for every node).
  for (double b : res.b) EXPECT_GE(b, 63.0);
}

// At a single rank there is no remote neighbor, hence no fan-out and no
// broadcast bytes at all — and the in-engine path only reports the
// analytic numbers when a real rank topology exists.
TEST(PerRankCompute, SingleRankHasZeroBroadcastBytes) {
  util::Rng rng(408);
  const graph::Graph g = graph::BarabasiAlbert(300, 3, rng);
  for (bool per_rank : {false, true}) {
    SCOPED_TRACE(per_rank);
    core::CompactOptions opts;
    opts.rounds = 5;
    opts.transport = TransportKind::kProcess;
    opts.ranks = 1;
    opts.per_rank_compute = per_rank;
    const core::CompactResult res = core::RunCompactElimination(g, opts);
    EXPECT_EQ(res.totals.bcast_bytes_sent, 0u);
    EXPECT_EQ(res.totals.bcast_bytes_received, 0u);
    EXPECT_EQ(res.totals.bcast_bytes_per_neighbor, 0u);
  }
}

// The three ported families through the full per-rank matrix: every
// phase's node state — surviving numbers and tie-break permutations,
// activity flags, forest pointers, per-round survival arrays, and
// aggregated density ratios — ships via SaveNodeState/LoadNodeState and
// must come back bit-identical.

TEST(PerRankCompute, HyperEliminationMatrixBitIdentical) {
  util::Rng rng(420);
  const hyper::Hypergraph h = hyper::RandomUniform(500, 1000, 3, rng);
  hyper::HyperElimOptions base_opts;
  base_opts.rounds = 5;
  const hyper::HyperElimResult base = RunHyperElimination(h, base_opts);

  for (const auto& cfg : kPerRankMatrix) {
    SCOPED_TRACE(::testing::Message()
                 << "ranks=" << cfg.ranks << " threads=" << cfg.threads);
    hyper::HyperElimOptions opts = base_opts;
    opts.num_threads = cfg.threads;
    opts.transport = TransportKind::kProcess;
    opts.ranks = cfg.ranks;
    opts.per_rank_compute = true;
    const hyper::HyperElimResult res = RunHyperElimination(h, opts);
    EXPECT_EQ(res.b, base.b);
    ExpectSameLogicalHistory(res.history, base.history);
  }
}

TEST(PerRankCompute, DCoreEliminationMatrixBitIdentical) {
  util::Rng rng(421);
  const directed::Digraph g = directed::RandomDigraph(500, 0.012, rng);
  directed::DCoreElimOptions base_opts;
  base_opts.rounds = 5;
  const directed::DCoreElimResult base =
      RunDCoreElimination(g, 2.0, base_opts);

  for (const auto& cfg : kPerRankMatrix) {
    SCOPED_TRACE(::testing::Message()
                 << "ranks=" << cfg.ranks << " threads=" << cfg.threads);
    directed::DCoreElimOptions opts = base_opts;
    opts.num_threads = cfg.threads;
    opts.transport = TransportKind::kProcess;
    opts.ranks = cfg.ranks;
    opts.per_rank_compute = true;
    const directed::DCoreElimResult res = RunDCoreElimination(g, 2.0, opts);
    EXPECT_EQ(res.b, base.b);
    EXPECT_EQ(res.active, base.active);
    ExpectSameLogicalHistory(res.history, base.history);
  }
}

TEST(PerRankCompute, WeakDensestMatrixBitIdentical) {
  util::Rng rng(422);
  const graph::Graph g = graph::BarabasiAlbert(400, 3, rng);
  core::WeakDensestOptions base_opts;
  base_opts.gamma = 3.0;
  const core::WeakDensestResult base = RunWeakDensest(g, base_opts);

  for (const auto& cfg : kPerRankMatrix) {
    SCOPED_TRACE(::testing::Message()
                 << "ranks=" << cfg.ranks << " threads=" << cfg.threads);
    core::WeakDensestOptions opts = base_opts;
    opts.num_threads = cfg.threads;
    opts.transport = TransportKind::kProcess;
    opts.ranks = cfg.ranks;
    opts.per_rank_compute = true;
    const core::WeakDensestResult res = RunWeakDensest(g, opts);
    EXPECT_EQ(res.b, base.b);
    EXPECT_EQ(res.selected, base.selected);
    EXPECT_EQ(res.leader_of, base.leader_of);
    EXPECT_EQ(res.best_density, base.best_density);
    EXPECT_EQ(res.totals.messages, base.totals.messages);
    EXPECT_EQ(res.totals.entries, base.totals.entries);
  }
}

}  // namespace
}  // namespace kcore
