// Tests for the diameter-dependent baselines: the Sarma et al.-style
// distributed densest subset and the Bahmani streaming algorithm.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/densest.h"
#include "core/sarma.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "seq/densest_exact.h"
#include "seq/streaming.h"
#include "util/rng.h"

namespace kcore {
namespace {

using graph::Graph;
using graph::NodeId;

// Bahmani guarantee: rho(returned) >= rho* / (2(1+eps)).
class StreamingGuarantee : public ::testing::TestWithParam<int> {};

TEST_P(StreamingGuarantee, WithinTwoOnePlusEps) {
  util::Rng rng(1700 + static_cast<std::uint64_t>(GetParam()));
  const double eps = 0.1 + 0.3 * (GetParam() % 3);
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(80));
  Graph g = graph::ErdosRenyiGnp(n, 0.1, rng);
  if (GetParam() % 2 == 0) g = graph::WithUniformWeights(g, 0.3, 2.0, rng);
  const auto r = seq::StreamingDensest(g, eps);
  const double rho = seq::MaxDensity(g);
  EXPECT_GE(r.density * 2.0 * (1 + eps) + 1e-7, rho);
  EXPECT_LE(r.density, rho + 1e-7);
  EXPECT_NEAR(g.InducedDensity(r.in_set), r.density, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingGuarantee, ::testing::Range(0, 20));

TEST(Streaming, PassCountLogarithmic) {
  util::Rng rng(3);
  const Graph g = graph::BarabasiAlbert(3000, 4, rng);
  const auto r = seq::StreamingDensest(g, 0.5);
  // ceil(log_{1.5} 3000) ~ 20; passes must stay within that ballpark.
  EXPECT_LE(r.passes, 24);
  EXPECT_GE(r.passes, 2);
}

TEST(Streaming, EdgelessAndEmpty) {
  graph::GraphBuilder b(5);
  const auto r = seq::StreamingDensest(std::move(b).Build(), 0.5);
  EXPECT_DOUBLE_EQ(r.density, 0.0);
  graph::GraphBuilder b0(0);
  const auto r0 = seq::StreamingDensest(std::move(b0).Build(), 0.5);
  EXPECT_DOUBLE_EQ(r0.density, 0.0);
}

// Sarma-style baseline: 2(1+eps) guarantee, but diameter-dependent rounds.
class SarmaGuarantee : public ::testing::TestWithParam<int> {};

TEST_P(SarmaGuarantee, DensityWithinBound) {
  util::Rng rng(1800 + static_cast<std::uint64_t>(GetParam()));
  const double eps = 0.5;
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(60));
  Graph g = graph::ErdosRenyiGnp(n, 0.12, rng);
  if (GetParam() % 2 == 0) g = graph::WithUniformWeights(g, 0.5, 2.0, rng);
  const auto r = core::RunSarmaDensest(g, eps);
  const double rho = seq::MaxDensity(g);
  EXPECT_GE(r.density * 2.0 * (1 + eps) + 1e-7, rho)
      << "n=" << n << " rho=" << rho;
  EXPECT_LE(r.density, rho + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SarmaGuarantee, ::testing::Range(0, 20));

TEST(Sarma, RoundsScaleWithDiameter) {
  // On a long path the BFS phase alone costs ~n rounds; the paper's weak
  // algorithm stays logarithmic. This is the diameter barrier, measured.
  const NodeId n = 301;
  const Graph path = graph::Path(n);
  const auto sarma = core::RunSarmaDensest(path, 0.5);
  EXPECT_GE(sarma.rounds_bfs, static_cast<int>(n) / 2);
  EXPECT_GE(sarma.tree_depth, static_cast<int>(n) / 2);

  const auto weak = core::RunWeakDensest(path, 3.0);
  EXPECT_LT(weak.rounds_total, sarma.rounds_total / 2)
      << "the weak formulation must beat the diameter-bound baseline";
  // Both achieve the density guarantee (rho* = (n-1)/n for a path).
  const double rho = seq::MaxDensity(path);
  EXPECT_GE(sarma.density * 3.0 + 1e-7, rho);
  EXPECT_GE(weak.best_density * 3.0 + 1e-7, rho);
}

TEST(Sarma, CliqueFoundExactly) {
  const Graph g = graph::Complete(16);
  const auto r = core::RunSarmaDensest(g, 0.5);
  EXPECT_NEAR(r.density, 7.5, 1e-9);
  std::size_t size = 0;
  for (char c : r.in_set) size += c ? 1 : 0;
  EXPECT_EQ(size, 16u);
}

TEST(Sarma, DisconnectedComponentsHandled) {
  // K6 and K4 in separate components; the K6 component's root returns it.
  graph::GraphBuilder b(10);
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = i + 1; j < 6; ++j) b.AddEdge(i, j);
  }
  for (NodeId i = 6; i < 10; ++i) {
    for (NodeId j = i + 1; j < 10; ++j) b.AddEdge(i, j);
  }
  const Graph g = std::move(b).Build();
  const auto r = core::RunSarmaDensest(g, 0.5);
  EXPECT_GE(r.density * 3.0 + 1e-7, 2.5);  // rho* = 2.5 (K6)
}

TEST(Sarma, BfsDepthMatchesEccentricity) {
  util::Rng rng(4);
  const Graph g = graph::BarabasiAlbert(200, 2, rng);
  const auto r = core::RunSarmaDensest(g, 0.5);
  // The tree is rooted at the max-id node; its depth equals that node's
  // eccentricity.
  EXPECT_EQ(r.tree_depth,
            static_cast<int>(graph::Eccentricity(g, g.num_nodes() - 1)));
}

}  // namespace
}  // namespace kcore
