#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/update.h"
#include "util/rng.h"

namespace kcore::core {
namespace {

std::vector<std::uint32_t> Identity(std::size_t d) {
  std::vector<std::uint32_t> order(d);
  std::iota(order.begin(), order.end(), 0u);
  return order;
}

TEST(UpdateStep, EmptyInput) {
  std::vector<std::uint32_t> order;
  const UpdateResult r = UpdateStep({}, {}, order);
  EXPECT_DOUBLE_EQ(r.b, 0.0);
  EXPECT_TRUE(r.chosen.empty());
}

TEST(UpdateStep, SingleNeighbor) {
  // One neighbor with value 5, weight 2: the best b with
  // sum_{b_i >= b} w_i >= b is b = 2 (s <= b_1 case).
  std::vector<double> values{5.0};
  std::vector<double> weights{2.0};
  auto order = Identity(1);
  const UpdateResult r = UpdateStep(values, weights, order);
  EXPECT_DOUBLE_EQ(r.b, 2.0);
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], 0u);
}

TEST(UpdateStep, SingleNeighborValueCaps) {
  // Value 1.5, weight 10: b capped by the neighbor's value.
  std::vector<double> values{1.5};
  std::vector<double> weights{10.0};
  auto order = Identity(1);
  const UpdateResult r = UpdateStep(values, weights, order);
  EXPECT_DOUBLE_EQ(r.b, 1.5);
  // N must satisfy sum_{N} w <= b: the neighbor (weight 10) cannot be in.
  EXPECT_TRUE(r.chosen.empty());
}

TEST(UpdateStep, AllInfiniteValuesGiveDegree) {
  // Round 1 of the compact procedure: all neighbors broadcast +inf, so
  // b becomes the weighted degree and N contains everyone.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> values{inf, inf, inf};
  std::vector<double> weights{1.0, 2.0, 3.0};
  auto order = Identity(3);
  const UpdateResult r = UpdateStep(values, weights, order);
  EXPECT_DOUBLE_EQ(r.b, 6.0);
  EXPECT_EQ(r.chosen.size(), 3u);
}

TEST(UpdateStep, PaperStyleExample) {
  // values 1,2,3 weights 1 each: f(b)=|{i: b_i>=b}|. b=2: f=2>=2. b=3:
  // f=1 < 3. So max b = 2; N = {indices with value >= 2} trimmed to
  // sum <= 2 -> both (weights 1+1 = 2 <= 2).
  std::vector<double> values{1.0, 2.0, 3.0};
  std::vector<double> weights{1.0, 1.0, 1.0};
  auto order = Identity(3);
  const UpdateResult r = UpdateStep(values, weights, order);
  EXPECT_DOUBLE_EQ(r.b, 2.0);
  std::vector<std::uint32_t> chosen = r.chosen;
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(chosen, (std::vector<std::uint32_t>{1, 2}));
}

TEST(UpdateStep, InvariantSumAtMostB) {
  util::Rng rng(1);
  for (int it = 0; it < 500; ++it) {
    const std::size_t d = 1 + rng.NextBounded(12);
    std::vector<double> values(d);
    std::vector<double> weights(d);
    for (std::size_t i = 0; i < d; ++i) {
      values[i] = rng.NextDouble(0, 10);
      weights[i] = rng.NextDouble(0.1, 3);
    }
    auto order = Identity(d);
    const UpdateResult r = UpdateStep(values, weights, order);
    double sum = 0.0;
    for (std::uint32_t i : r.chosen) {
      sum += weights[i];
      // Every chosen neighbor must have value >= b.
      EXPECT_GE(values[i], r.b - 1e-12);
    }
    EXPECT_LE(sum, r.b + 1e-9) << "Definition III.7 first invariant";
  }
}

TEST(UpdateStep, MatchesBruteForceMaximum) {
  util::Rng rng(2);
  for (int it = 0; it < 500; ++it) {
    const std::size_t d = 1 + rng.NextBounded(10);
    std::vector<double> values(d);
    std::vector<double> weights(d);
    for (std::size_t i = 0; i < d; ++i) {
      // Use small integers so brute-force candidate enumeration is exact.
      values[i] = static_cast<double>(rng.NextBounded(8));
      weights[i] = static_cast<double>(1 + rng.NextBounded(4));
    }
    auto order = Identity(d);
    const UpdateResult r = UpdateStep(values, weights, order);
    const double brute = UpdateValueBruteForce(values, weights);
    EXPECT_NEAR(r.b, brute, 1e-9);
  }
}

TEST(UpdateStep, ResultSatisfiesFeasibility) {
  // f(b) = sum_{values >= b} w >= b must hold at the returned b, and fail
  // for slightly larger b (maximality).
  util::Rng rng(3);
  for (int it = 0; it < 300; ++it) {
    const std::size_t d = 1 + rng.NextBounded(10);
    std::vector<double> values(d);
    std::vector<double> weights(d);
    for (std::size_t i = 0; i < d; ++i) {
      values[i] = rng.NextDouble(0, 5);
      weights[i] = rng.NextDouble(0.1, 2);
    }
    auto order = Identity(d);
    const UpdateResult r = UpdateStep(values, weights, order);
    const auto f = [&](double b) {
      double s = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        if (values[i] >= b) s += weights[i];
      }
      return s;
    };
    EXPECT_GE(f(r.b), r.b - 1e-9);
    const double bump = r.b * 1e-6 + 1e-9;
    EXPECT_LT(f(r.b + bump), r.b + bump) << "b not maximal";
  }
}

TEST(UpdateStep, StableTieBreakPrefersEarlierOrder) {
  // Two neighbors with identical values: the persistent order decides who
  // enters N when only one fits.
  std::vector<double> values{2.0, 2.0};
  std::vector<double> weights{2.0, 2.0};
  auto order = Identity(2);
  const UpdateResult r = UpdateStep(values, weights, order);
  // b = 2 (f(2) = 4 >= 2); N keeps sum <= 2 -> exactly one neighbor, the
  // LAST in sorted order; stability keeps {0,1} order, so neighbor 1.
  EXPECT_DOUBLE_EQ(r.b, 2.0);
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], 1u);
}

TEST(UpdateStep, OrderPersistsAcrossCalls) {
  // After sorting by round-1 values, a tie in round 2 must preserve the
  // round-1 order (most-recent-first lexicographic rule).
  std::vector<double> v1{3.0, 1.0, 2.0};
  std::vector<double> w{1.0, 1.0, 1.0};
  auto order = Identity(3);
  (void)UpdateStep(v1, w, order);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 0}));
  // Round 2: all equal -> stable sort keeps {1, 2, 0}.
  std::vector<double> v2{5.0, 5.0, 5.0};
  (void)UpdateStep(v2, w, order);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(UpdateStep, ZeroWeightsHandled) {
  std::vector<double> values{4.0, 4.0};
  std::vector<double> weights{0.0, 0.0};
  auto order = Identity(2);
  const UpdateResult r = UpdateStep(values, weights, order);
  EXPECT_DOUBLE_EQ(r.b, 0.0);
}

TEST(UpdateStep, MonotoneInValues) {
  // Raising any neighbor's value can only raise (or keep) b.
  util::Rng rng(4);
  for (int it = 0; it < 200; ++it) {
    const std::size_t d = 1 + rng.NextBounded(8);
    std::vector<double> values(d);
    std::vector<double> weights(d);
    for (std::size_t i = 0; i < d; ++i) {
      values[i] = rng.NextDouble(0, 5);
      weights[i] = rng.NextDouble(0.1, 2);
    }
    auto o1 = Identity(d);
    const double b1 = UpdateStep(values, weights, o1).b;
    auto bumped = values;
    bumped[rng.NextBounded(d)] += rng.NextDouble(0, 3);
    auto o2 = Identity(d);
    const double b2 = UpdateStep(bumped, weights, o2).b;
    EXPECT_GE(b2, b1 - 1e-12);
  }
}

}  // namespace
}  // namespace kcore::core
