#include <gtest/gtest.h>

#include <algorithm>

#include "dynamic/maintain.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/rng.h"

namespace kcore::dynamic {
namespace {

void ExpectMatchesScratch(const DynamicCoreMaintenance& m) {
  const graph::Graph g = m.Snapshot();
  const auto scratch = seq::WeightedCoreness(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(m.coreness()[v], scratch[v], 1e-9) << "node " << v;
  }
}

TEST(DynamicCore, StartsAtZero) {
  DynamicCoreMaintenance m(5);
  for (double c : m.coreness()) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_EQ(m.num_edges(), 0u);
}

TEST(DynamicCore, BuildTriangleIncrementally) {
  DynamicCoreMaintenance m(4);
  m.InsertEdge(0, 1);
  EXPECT_DOUBLE_EQ(m.coreness()[0], 1.0);
  m.InsertEdge(1, 2);
  EXPECT_DOUBLE_EQ(m.coreness()[1], 1.0);
  m.InsertEdge(0, 2);
  // Triangle: everyone coreness 2.
  EXPECT_DOUBLE_EQ(m.coreness()[0], 2.0);
  EXPECT_DOUBLE_EQ(m.coreness()[1], 2.0);
  EXPECT_DOUBLE_EQ(m.coreness()[2], 2.0);
  EXPECT_DOUBLE_EQ(m.coreness()[3], 0.0);
  // Break it again.
  m.DeleteEdge(0, 1);
  EXPECT_DOUBLE_EQ(m.coreness()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.coreness()[2], 1.0);
}

TEST(DynamicCore, FromGraphMatchesScratch) {
  util::Rng rng(1);
  const graph::Graph g = graph::BarabasiAlbert(120, 3, rng);
  DynamicCoreMaintenance m(g);
  ExpectMatchesScratch(m);
}

class RandomUpdateSequence : public ::testing::TestWithParam<int> {};

TEST_P(RandomUpdateSequence, AlwaysMatchesScratch) {
  util::Rng rng(2500 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(30));
  DynamicCoreMaintenance m(n);
  // Track live edges for deletion sampling.
  std::vector<std::tuple<NodeId, NodeId, double>> live;
  for (int step = 0; step < 60; ++step) {
    const bool del = !live.empty() && rng.NextBool(0.35);
    if (del) {
      const std::size_t idx = rng.NextBounded(live.size());
      const auto [u, v, w] = live[idx];
      live[idx] = live.back();
      live.pop_back();
      m.DeleteEdge(u, v, w);
    } else {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (u == v) v = (v + 1) % n;
      const double w =
          GetParam() % 2 == 0
              ? 1.0
              : static_cast<double>(1 + rng.NextBounded(4));
      m.InsertEdge(u, v, w);
      live.emplace_back(u, v, w);
    }
    if (step % 10 == 9) ExpectMatchesScratch(m);
  }
  ExpectMatchesScratch(m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomUpdateSequence, ::testing::Range(0, 15));

TEST(DynamicCore, PendantDeletionIsLocal) {
  // Deleting a TRUE pendant edge (fresh degree-1 node) must only touch
  // the pendant and the hub's immediate neighborhood — the locality win
  // of the worklist descent.
  util::Rng rng(2);
  const graph::Graph g = graph::BarabasiAlbert(2000, 3, rng);
  // Rebuild over n+1 nodes so node 2000 starts isolated.
  DynamicCoreMaintenance m(2001);
  for (const graph::Edge& e : g.edges()) m.InsertEdge(e.u, e.v, e.w);
  const auto before = m.coreness();
  m.InsertEdge(0, 2000);
  EXPECT_DOUBLE_EQ(m.coreness()[2000], 1.0);
  const UpdateStats del = m.DeleteEdge(0, 2000);
  EXPECT_DOUBLE_EQ(m.coreness()[2000], 0.0);
  // The descent pops the two endpoints plus (at most) the hub's direct
  // neighbors re-checked after the pendant's change.
  EXPECT_LT(del.recomputations, g.Degree(0) + 8)
      << "pendant deletion should stay local";
  for (NodeId v = 0; v < 2000; ++v) {
    ASSERT_DOUBLE_EQ(m.coreness()[v], before[v]);
  }
}

TEST(DynamicCore, PendantInsertIsLocal) {
  // Regression for the O(n)-per-insert lift: attaching a fresh pendant
  // must recompute only the pendant's neighborhood. The localized region
  // closure starts from eligible endpoints only; the hub is not eligible
  // (its coreness cannot rise past c(pendant)+w = 1), so the region is
  // {pendant} and the descent touches the pendant plus the one neighbor
  // re-checked after its change.
  util::Rng rng(3);
  const graph::Graph g = graph::BarabasiAlbert(2000, 3, rng);
  DynamicCoreMaintenance m(2001);
  for (const graph::Edge& e : g.edges()) m.InsertEdge(e.u, e.v, e.w);
  const auto before = m.coreness();
  const UpdateStats ins = m.InsertEdge(0, 2000);
  EXPECT_DOUBLE_EQ(m.coreness()[2000], 1.0);
  EXPECT_LE(ins.region, 2u) << "region must not spread past the endpoints";
  EXPECT_LE(ins.recomputations, 8u)
      << "pendant insert must be O(neighborhood), not O(n)";
  for (NodeId v = 0; v < 2000; ++v) {
    ASSERT_DOUBLE_EQ(m.coreness()[v], before[v]);
  }
}

TEST(DynamicCore, LocalizedInsertMatchesGlobalOracleBitExact) {
  // 500 mixed ops applied to two instances: the localized InsertEdge
  // and the retained global lift-and-descend oracle. Both descents
  // start from states that dominate the new greatest fixpoint, so with
  // exactly-representable weights they converge to the SAME doubles bit
  // for bit — EXPECT_EQ, not NEAR.
  util::Rng rng(77);
  const NodeId n = 120;
  DynamicCoreMaintenance fast(n);
  DynamicCoreMaintenance oracle(n);
  const double kWeights[] = {0.5, 1.0, 1.5, 2.0, 3.0, 4.0};
  std::vector<std::tuple<NodeId, NodeId, double>> live;
  for (int step = 0; step < 500; ++step) {
    if (!live.empty() && rng.NextBool(0.3)) {
      const std::size_t idx = rng.NextBounded(live.size());
      const auto [u, v, w] = live[idx];
      live[idx] = live.back();
      live.pop_back();
      fast.DeleteEdge(u, v, w);
      oracle.DeleteEdge(u, v, w);
    } else {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (u == v) v = (v + 1) % n;
      const double w = kWeights[rng.NextBounded(6)];
      fast.InsertEdge(u, v, w);
      oracle.InsertEdgeGlobalOracle(u, v, w);
      live.emplace_back(u, v, w);
    }
    const auto& a = fast.coreness();
    const auto& b = oracle.coreness();
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(a[v], b[v]) << "fixpoints diverged at step " << step
                            << ", node " << v;
    }
  }
  ExpectMatchesScratch(fast);
}

TEST(DynamicCore, ParallelEdgesSupported) {
  DynamicCoreMaintenance m(2);
  m.InsertEdge(0, 1, 1.0);
  m.InsertEdge(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(m.coreness()[0], 3.0);
  m.DeleteEdge(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(m.coreness()[0], 2.0);
  EXPECT_TRUE(m.HasEdge(0, 1, 2.0));
  EXPECT_FALSE(m.HasEdge(0, 1, 1.0));
}

TEST(DynamicCore, DeleteMissingEdgeDies) {
  DynamicCoreMaintenance m(3);
  m.InsertEdge(0, 1);
  EXPECT_DEATH(m.DeleteEdge(1, 2), "not present");
}

}  // namespace
}  // namespace kcore::dynamic
