// Exit-code contract of the example binaries' shared flag helpers
// (examples/transport_flag.h): junk --transport/--ranks values, rank
// topologies that don't fit the graph, and --per-rank-compute on a
// transport that can't ship it must all exit 2 with a clear message —
// never fall through to an engine-internal abort.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "transport_flag.h"
#include "util/flags.h"

namespace kcore::examples {
namespace {

// Parse a flag vector the way the tools' main() does.
util::Flags ParseArgs(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.push_back("tool");
  for (const auto& s : args) argv.push_back(s.c_str());
  util::Flags flags;
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  return flags;
}

TEST(ToolFlags, AcceptsTheDocumentedValues) {
  const auto flags = ParseArgs({"--transport=process", "--ranks=4",
                                "--per-rank-compute=true"});
  const auto kind = TransportFromFlags(flags);
  EXPECT_EQ(kind, distsim::TransportKind::kProcess);
  EXPECT_EQ(RanksFromFlags(flags), 4);
  EXPECT_TRUE(PerRankComputeFromFlags(flags, kind));
  ValidateRankTopology(4, 100);  // fits: no exit
}

TEST(ToolFlagsDeath, JunkTransportExitsTwo) {
  const auto flags = ParseArgs({"--transport=carrier-pigeon"});
  EXPECT_EXIT(TransportFromFlags(flags), ::testing::ExitedWithCode(2),
              "unknown --transport");
}

TEST(ToolFlagsDeath, JunkRanksExitsTwo) {
  EXPECT_EXIT(RanksFromFlags(ParseArgs({"--ranks=0"})),
              ::testing::ExitedWithCode(2), "out of range");
  EXPECT_EXIT(RanksFromFlags(ParseArgs({"--ranks=-3"})),
              ::testing::ExitedWithCode(2), "out of range");
  EXPECT_EXIT(RanksFromFlags(ParseArgs({"--ranks=17"})),
              ::testing::ExitedWithCode(2), "out of range");
}

TEST(ToolFlagsDeath, MoreRanksThanNodesExitsTwo) {
  EXPECT_EXIT(ValidateRankTopology(8, 5), ::testing::ExitedWithCode(2),
              "exceeds the graph's node count");
}

TEST(ToolFlagsDeath, PerRankComputeNeedsProcessTransport) {
  const auto flags = ParseArgs({"--per-rank-compute=true"});
  EXPECT_EXIT(
      PerRankComputeFromFlags(flags, distsim::TransportKind::kSharedMemory),
      ::testing::ExitedWithCode(2), "requires --transport=process");
  EXPECT_EXIT(
      PerRankComputeFromFlags(flags, distsim::TransportKind::kSerialized),
      ::testing::ExitedWithCode(2), "requires --transport=process");
  // false is fine on any transport.
  EXPECT_FALSE(PerRankComputeFromFlags(
      ParseArgs({"--per-rank-compute=false"}),
      distsim::TransportKind::kSharedMemory));
}

}  // namespace
}  // namespace kcore::examples
