#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "directed/dcore.h"
#include "directed/dcore_protocol.h"
#include "directed/digraph.h"
#include "distsim/transport.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/rng.h"

namespace kcore::directed {
namespace {

TEST(Digraph, BuildAndDegrees) {
  DigraphBuilder b(3);
  b.AddArc(0, 1, 2.0).AddArc(1, 2, 1.0).AddArc(2, 0, 3.0).AddArc(0, 2, 1.0);
  const Digraph g = std::move(b).Build();
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_DOUBLE_EQ(g.OutDegree(0), 3.0);
  EXPECT_DOUBLE_EQ(g.InDegree(0), 3.0);
  EXPECT_DOUBLE_EQ(g.InDegree(2), 2.0);
  EXPECT_EQ(g.OutNeighbors(0).size(), 2u);
  EXPECT_EQ(g.InNeighbors(2).size(), 2u);
}

TEST(DCore, DirectedCycle) {
  // Directed cycle: every node has in = out = 1, so the (1,1)-core is the
  // whole cycle and nothing survives l > 1.
  DigraphBuilder b(5);
  for (NodeId v = 0; v < 5; ++v) b.AddArc(v, (v + 1) % 5, 1.0);
  const Digraph g = std::move(b).Build();
  const DCoreResult r1 = DCoreDecomposition(g, 1.0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(r1.in_zero_l_core[v]);
    EXPECT_DOUBLE_EQ(r1.in_coreness[v], 1.0);
  }
  const DCoreResult r2 = DCoreDecomposition(g, 2.0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_FALSE(r2.in_zero_l_core[v]);
    EXPECT_DOUBLE_EQ(r2.in_coreness[v], 0.0);
  }
}

TEST(DCore, SymmetricClosureMatchesUndirectedCores) {
  // (k, k)-cores of the symmetric closure == k-cores of the base graph:
  // in the closure, in-degree == out-degree == undirected degree.
  util::Rng rng(5);
  const graph::Graph base = graph::ErdosRenyiGnp(40, 0.2, rng);
  const Digraph closure = SymmetricClosure(base);
  const auto undirected = seq::UnweightedCoreness(base);
  // For l = k: a node is in the (k, k)-core iff its undirected coreness
  // >= k.
  for (double k : {1.0, 2.0, 3.0, 4.0}) {
    const DCoreResult r = DCoreDecomposition(closure, k);
    for (NodeId v = 0; v < base.num_nodes(); ++v) {
      const bool in_kk = r.in_coreness[v] >= k && r.in_zero_l_core[v];
      EXPECT_EQ(in_kk, undirected[v] >= k)
          << "k=" << k << " v=" << v << " c=" << undirected[v]
          << " dcore=" << r.in_coreness[v];
    }
  }
}

class DCoreVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(DCoreVsBrute, AgreesOnSmallDigraphs) {
  util::Rng rng(1900 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(4 + rng.NextBounded(6));
  const Digraph g = RandomDigraph(n, 0.35, rng);
  const double l = static_cast<double>(GetParam() % 3);
  const DCoreResult fast = DCoreDecomposition(g, l);
  const auto brute = BruteDCore(g, l);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(fast.in_coreness[v], brute[v], 1e-9)
        << "v=" << v << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DCoreVsBrute, ::testing::Range(0, 40));

class DCoreSurvivingUpperBound : public ::testing::TestWithParam<int> {};

TEST_P(DCoreSurvivingUpperBound, BetaDominatesCoreness) {
  // The directed surviving numbers inherit Lemma III.2: beta >= coreness
  // at every round count.
  util::Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(8 + rng.NextBounded(20));
  const Digraph g = RandomDigraph(n, 0.25, rng);
  const double l = 1.0;
  const DCoreResult exact = DCoreDecomposition(g, l);
  for (int T : {1, 2, 4, 8}) {
    const auto beta = DCoreSurvivingNumbers(g, l, T);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_GE(beta[v], exact.in_coreness[v] - 1e-9)
          << "T=" << T << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DCoreSurvivingUpperBound,
                         ::testing::Range(0, 20));

TEST(DCoreSurviving, ConvergesToCorenessOnSmallGraphs) {
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const NodeId n = static_cast<NodeId>(5 + rng.NextBounded(8));
    const Digraph g = RandomDigraph(n, 0.3, rng);
    const DCoreResult exact = DCoreDecomposition(g, 1.0);
    const auto beta = DCoreSurvivingNumbers(g, 1.0, static_cast<int>(n) + 2);
    for (NodeId v = 0; v < n; ++v) {
      // At convergence, beta is a fixpoint >= coreness. For the directed
      // case the fixpoint may strictly exceed the (k, l)-coreness (the
      // in/out constraints interact), so only the direction is asserted.
      EXPECT_GE(beta[v], exact.in_coreness[v] - 1e-9);
    }
  }
}

// ---------------------------------------------------------------------
// Engine port: RunDCoreElimination must reproduce the sequential oracle
// DCoreSurvivingNumbers bit for bit, under every engine configuration.

void ExpectBitsEqual(const std::vector<double>& got,
                     const std::vector<double>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[v]),
              std::bit_cast<std::uint64_t>(want[v]))
        << label << " v=" << v << " got=" << got[v] << " want=" << want[v];
  }
}

class DCoreElimEngineVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(DCoreElimEngineVsOracle, BitExactOnRandomDigraphs) {
  util::Rng rng(6100 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(10 + rng.NextBounded(30));
  const Digraph g = RandomDigraph(n, 0.15, rng);
  for (double l : {0.0, 1.0, 2.0, 3.0}) {
    for (int T : {1, 2, 5}) {
      const auto oracle = DCoreSurvivingNumbers(g, l, T);
      DCoreElimOptions opts;
      opts.rounds = T;
      const auto engine = RunDCoreElimination(g, l, opts);
      ExpectBitsEqual(engine.b, oracle, "shared/1thr");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DCoreElimEngineVsOracle,
                         ::testing::Range(0, 12));

TEST(DCoreElimEngine, ThreadsTransportsRanksBitIdentical) {
  util::Rng rng(6200);
  const Digraph g = RandomDigraph(300, 0.02, rng);
  const double l = 2.0;
  const int T = 4;
  const auto oracle = DCoreSurvivingNumbers(g, l, T);

  struct Config {
    const char* label;
    distsim::TransportKind transport;
    int threads;
    int ranks;
    bool per_rank;
  };
  const Config configs[] = {
      {"shared/1thr", distsim::TransportKind::kSharedMemory, 1, 1, false},
      {"shared/8thr", distsim::TransportKind::kSharedMemory, 8, 1, false},
      {"serialized/8thr", distsim::TransportKind::kSerialized, 8, 1, false},
      {"process/1thr/2ranks", distsim::TransportKind::kProcess, 1, 2, false},
      {"process/8thr/8ranks", distsim::TransportKind::kProcess, 8, 8, false},
      {"per-rank/1thr/2ranks", distsim::TransportKind::kProcess, 1, 2, true},
      {"per-rank/8thr/8ranks", distsim::TransportKind::kProcess, 8, 8, true},
  };
  for (const Config& c : configs) {
    DCoreElimOptions opts;
    opts.rounds = T;
    opts.num_threads = c.threads;
    opts.transport = c.transport;
    opts.ranks = c.ranks;
    opts.per_rank_compute = c.per_rank;
    const auto engine = RunDCoreElimination(g, l, opts);
    ExpectBitsEqual(engine.b, oracle, c.label);
  }
}

TEST(DCoreElimEngine, DeactivatedNodesEndAtZero) {
  util::Rng rng(6300);
  const Digraph g = RandomDigraph(60, 0.1, rng);
  DCoreElimOptions opts;
  opts.rounds = 8;
  const auto res = RunDCoreElimination(g, 3.0, opts);
  for (NodeId v = 0; v < 60; ++v) {
    if (!res.active[v]) {
      EXPECT_EQ(res.b[v], 0.0) << "v=" << v;
    } else {
      EXPECT_GT(res.b[v], 0.0) << "v=" << v;
    }
  }
}

TEST(DCoreElimEngine, DirectedCycleSurvivesExactlyAtOne) {
  DigraphBuilder b(5);
  for (NodeId v = 0; v < 5; ++v) b.AddArc(v, (v + 1) % 5, 1.0);
  const Digraph g = std::move(b).Build();
  DCoreElimOptions opts;
  opts.rounds = 6;
  const auto keep = RunDCoreElimination(g, 1.0, opts);
  const auto kill = RunDCoreElimination(g, 2.0, opts);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(keep.active[v]);
    EXPECT_DOUBLE_EQ(keep.b[v], 1.0);
    EXPECT_FALSE(kill.active[v]);
    EXPECT_DOUBLE_EQ(kill.b[v], 0.0);
  }
  // The oracles agree on both thresholds.
  ExpectBitsEqual(keep.b, DCoreSurvivingNumbers(g, 1.0, 6), "cycle l=1");
  ExpectBitsEqual(kill.b, DCoreSurvivingNumbers(g, 2.0, 6), "cycle l=2");
}

TEST(DCoreElimEngine, HistoryShowsDeactivationAsHalts) {
  // Once a node fails the out-degree constraint it halts; active_nodes
  // in the history must be non-increasing after init.
  util::Rng rng(6400);
  const Digraph g = RandomDigraph(80, 0.08, rng);
  DCoreElimOptions opts;
  opts.rounds = 6;
  const auto res = RunDCoreElimination(g, 2.0, opts);
  ASSERT_GE(res.history.size(), 2u);
  for (std::size_t i = 2; i < res.history.size(); ++i) {
    EXPECT_LE(res.history[i].active_nodes, res.history[i - 1].active_nodes);
  }
}

}  // namespace
}  // namespace kcore::directed
