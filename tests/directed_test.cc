#include <gtest/gtest.h>

#include <algorithm>

#include "directed/dcore.h"
#include "directed/digraph.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/rng.h"

namespace kcore::directed {
namespace {

TEST(Digraph, BuildAndDegrees) {
  DigraphBuilder b(3);
  b.AddArc(0, 1, 2.0).AddArc(1, 2, 1.0).AddArc(2, 0, 3.0).AddArc(0, 2, 1.0);
  const Digraph g = std::move(b).Build();
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_DOUBLE_EQ(g.OutDegree(0), 3.0);
  EXPECT_DOUBLE_EQ(g.InDegree(0), 3.0);
  EXPECT_DOUBLE_EQ(g.InDegree(2), 2.0);
  EXPECT_EQ(g.OutNeighbors(0).size(), 2u);
  EXPECT_EQ(g.InNeighbors(2).size(), 2u);
}

TEST(DCore, DirectedCycle) {
  // Directed cycle: every node has in = out = 1, so the (1,1)-core is the
  // whole cycle and nothing survives l > 1.
  DigraphBuilder b(5);
  for (NodeId v = 0; v < 5; ++v) b.AddArc(v, (v + 1) % 5, 1.0);
  const Digraph g = std::move(b).Build();
  const DCoreResult r1 = DCoreDecomposition(g, 1.0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(r1.in_zero_l_core[v]);
    EXPECT_DOUBLE_EQ(r1.in_coreness[v], 1.0);
  }
  const DCoreResult r2 = DCoreDecomposition(g, 2.0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_FALSE(r2.in_zero_l_core[v]);
    EXPECT_DOUBLE_EQ(r2.in_coreness[v], 0.0);
  }
}

TEST(DCore, SymmetricClosureMatchesUndirectedCores) {
  // (k, k)-cores of the symmetric closure == k-cores of the base graph:
  // in the closure, in-degree == out-degree == undirected degree.
  util::Rng rng(5);
  const graph::Graph base = graph::ErdosRenyiGnp(40, 0.2, rng);
  const Digraph closure = SymmetricClosure(base);
  const auto undirected = seq::UnweightedCoreness(base);
  // For l = k: a node is in the (k, k)-core iff its undirected coreness
  // >= k.
  for (double k : {1.0, 2.0, 3.0, 4.0}) {
    const DCoreResult r = DCoreDecomposition(closure, k);
    for (NodeId v = 0; v < base.num_nodes(); ++v) {
      const bool in_kk = r.in_coreness[v] >= k && r.in_zero_l_core[v];
      EXPECT_EQ(in_kk, undirected[v] >= k)
          << "k=" << k << " v=" << v << " c=" << undirected[v]
          << " dcore=" << r.in_coreness[v];
    }
  }
}

class DCoreVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(DCoreVsBrute, AgreesOnSmallDigraphs) {
  util::Rng rng(1900 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(4 + rng.NextBounded(6));
  const Digraph g = RandomDigraph(n, 0.35, rng);
  const double l = static_cast<double>(GetParam() % 3);
  const DCoreResult fast = DCoreDecomposition(g, l);
  const auto brute = BruteDCore(g, l);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(fast.in_coreness[v], brute[v], 1e-9)
        << "v=" << v << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DCoreVsBrute, ::testing::Range(0, 40));

class DCoreSurvivingUpperBound : public ::testing::TestWithParam<int> {};

TEST_P(DCoreSurvivingUpperBound, BetaDominatesCoreness) {
  // The directed surviving numbers inherit Lemma III.2: beta >= coreness
  // at every round count.
  util::Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(8 + rng.NextBounded(20));
  const Digraph g = RandomDigraph(n, 0.25, rng);
  const double l = 1.0;
  const DCoreResult exact = DCoreDecomposition(g, l);
  for (int T : {1, 2, 4, 8}) {
    const auto beta = DCoreSurvivingNumbers(g, l, T);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_GE(beta[v], exact.in_coreness[v] - 1e-9)
          << "T=" << T << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DCoreSurvivingUpperBound,
                         ::testing::Range(0, 20));

TEST(DCoreSurviving, ConvergesToCorenessOnSmallGraphs) {
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const NodeId n = static_cast<NodeId>(5 + rng.NextBounded(8));
    const Digraph g = RandomDigraph(n, 0.3, rng);
    const DCoreResult exact = DCoreDecomposition(g, 1.0);
    const auto beta = DCoreSurvivingNumbers(g, 1.0, static_cast<int>(n) + 2);
    for (NodeId v = 0; v < n; ++v) {
      // At convergence, beta is a fixpoint >= coreness. For the directed
      // case the fixpoint may strictly exceed the (k, l)-coreness (the
      // in/out constraints interact), so only the direction is asserted.
      EXPECT_GE(beta[v], exact.in_coreness[v] - 1e-9);
    }
  }
}

}  // namespace
}  // namespace kcore::directed
