#include <gtest/gtest.h>

#include <algorithm>

#include "core/async.h"
#include "core/montresor.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "util/rng.h"

namespace kcore::core {
namespace {

using graph::Graph;
using graph::NodeId;

// Asynchrony never changes the answer: chaotic iteration of the monotone
// update from the top converges to the greatest fixpoint = coreness.
// Helper keeping the call sites tidy.
AsyncResult DistsimAsyncRun(const Graph& g, util::Rng& rng) {
  return RunAsyncCoreness(g, rng, 8.0);
}

class AsyncConvergence : public ::testing::TestWithParam<int> {};

TEST_P(AsyncConvergence, MatchesExactCorenessUnderRandomDelays) {
  util::Rng graph_rng(2600 + static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(10 + graph_rng.NextBounded(60));
  Graph g = graph::ErdosRenyiGnp(n, 0.15, graph_rng);
  if (GetParam() % 2 == 0) {
    g = graph::WithUniformWeights(g, 0.5, 2.0, graph_rng);
  }
  const auto exact = seq::WeightedCoreness(g);
  // Several adversarial delay seeds per graph.
  for (std::uint64_t delay_seed = 0; delay_seed < 3; ++delay_seed) {
    util::Rng rng(9000 + delay_seed);
    const auto r = DistsimAsyncRun(g, rng);
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_NEAR(r.b[v], exact[v], 1e-9)
          << "v=" << v << " delay_seed=" << delay_seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncConvergence, ::testing::Range(0, 15));

TEST(Async, ExtremeDelaysStillConverge) {
  util::Rng grng(7);
  const Graph g = graph::BarabasiAlbert(100, 3, grng);
  const auto exact = seq::WeightedCoreness(g);
  for (double max_delay : {1.0, 64.0, 1024.0}) {
    util::Rng rng(11);
    const auto r = RunAsyncCoreness(g, rng, max_delay);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_NEAR(r.b[v], exact[v], 1e-9) << "delay=" << max_delay;
    }
  }
}

TEST(Async, MessageCountsAreReasonable) {
  util::Rng grng(8);
  const Graph g = graph::BarabasiAlbert(200, 3, grng);
  util::Rng rng(13);
  const auto r = RunAsyncCoreness(g, rng);
  EXPECT_GT(r.stats.messages_delivered, 2 * g.num_edges());
  EXPECT_GT(r.stats.virtual_makespan, 0.0);
  EXPECT_GT(r.stats.peak_in_flight, 0u);
  // Compare against the synchronous run-to-convergence message total: the
  // async run only sends on change, so it is typically cheaper.
  const auto sync = RunToConvergence(g);
  EXPECT_LT(r.stats.messages_delivered, sync.totals.messages);
}

TEST(Async, BudgetCapStopsEarlyButSoundly) {
  // Failure injection: a message budget truncates convergence; values
  // must remain upper bounds on the coreness (the iteration descends
  // from above and never undershoots).
  util::Rng grng(9);
  const Graph g = graph::BarabasiAlbert(150, 3, grng);
  const auto exact = seq::WeightedCoreness(g);
  util::Rng rng(17);
  const auto r = RunAsyncCoreness(g, rng, 8.0, /*message_budget=*/500);
  EXPECT_LE(r.stats.messages_delivered, 500u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(r.b[v], exact[v] - 1e-9) << "v=" << v;
  }
}

TEST(Async, IsolatedAndEmptyGraphs) {
  graph::GraphBuilder b(3);
  const Graph g = std::move(b).Build();
  util::Rng rng(1);
  const auto r = RunAsyncCoreness(g, rng);
  for (double v : r.b) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace kcore::core
